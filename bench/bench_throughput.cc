// Throughput benchmark for the parallel execution engine: multi-threaded
// index construction and the concurrent batch-query API
// (MetricIndex::RangeQueryBatch / KnnQueryBatch) on the paper's 20-d
// synthetic workload.
//
// For each index (LAESA, EPT*) and each thread count in a power-of-two
// sweep, the run measures build wall time, batch MRQ and batch MkNNQ wall
// time (best-of repeats), and reports QPS plus speedup vs. the 1-thread
// run.  Before timing, it pins the engine's equivalence contract: per
// -query result sets and total compdists must be identical at every
// thread count.  Exit status reflects the equivalence checks only --
// speedup depends on the hardware (a single-core container measures ~1x
// by construction) and is reported, not asserted.
//
// A second section, batch_blocking, pits the frozen query-major path
// (BatchMode::kQueryMajor) against the block-major batch engine across
// batch sizes {1, 8, 64, 256} on LAESA and EPT*, single-threaded so the
// measured ratio is pure cache blocking.  Before timing, it asserts the
// engine's exactness contract: per-query results AND per-query
// compdists must be bit-identical between the two modes.  The
// acceptance target is >= 1.3x MRQ/kNN QPS at batch >= 64.
//
// A third section, concurrent_mixed, measures the epoch-versioned
// MetricDB facade under a mixed workload: N reader threads issue batch
// MRQ queries through MetricDB::Query (each pinning an immutable
// version, no locks) while one writer thread churns remove/insert
// batches through MetricDB::Apply (shadow-copy clone + atomic publish).
// Reported per reader count: aggregate reader QPS, writer batches/s,
// and whether every read succeeded.  Like the thread sweep, the
// absolute numbers are hardware-dependent and warn-only downstream;
// the hard assertion is that no read ever fails mid-churn.
//
// Emits one JSON document to stdout (progress chatter on stderr):
//
//   ./bench_throughput --threads 8 | python3 -m json.tool
//
// Environment: PMI_TP_N (cardinality, default 20000), PMI_TP_QUERIES
// (batch size, default 200), PMI_TP_REPEATS (best-of, default 3),
// PMI_TP_THREADS (max thread count, default 4; --threads overrides),
// PMI_TP_BATCH_N (batch_blocking cardinality, default 60000 -- sized so
// the pivot table overflows L2 and the re-streaming cost is visible).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/metric_db.h"

#include "src/core/counters.h"
#include "src/core/pivot_selection.h"
#include "src/core/rng.h"
#include "src/core/thread_pool.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/harness/workload.h"
#include "src/tables/ept.h"
#include "src/tables/laesa.h"

namespace pmi {
namespace {

struct JsonWriter {
  bool first = true;
  void Begin() { std::printf("{\n  \"results\": [\n"); }
  void Result(const std::string& name, const std::string& fields) {
    std::printf("%s    {\"name\": \"%s\", %s}", first ? "" : ",\n",
                name.c_str(), fields.c_str());
    first = false;
  }
  void End(const std::string& trailer) {
    std::printf("\n  ],\n%s\n}\n", trailer.c_str());
  }
};

std::string Num(const char* key, double v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6g", key, v);
  return buf;
}

/// Reference answers (built once at 1 thread) every other thread count
/// must reproduce exactly.
struct Reference {
  std::vector<std::vector<ObjectId>> mrq;  // sorted per query
  std::vector<std::vector<Neighbor>> knn;
  uint64_t build_compdists = 0;
  uint64_t mrq_compdists = 0;
  uint64_t knn_compdists = 0;
};

struct SweepPoint {
  unsigned threads = 1;
  double build_s = 0;
  double mrq_ms = 0;
  double knn_ms = 0;
  bool results_match = true;
  bool compdists_match = true;
};

template <typename MakeIndexFn>
SweepPoint RunAtThreads(MakeIndexFn&& make_index, const BenchDataset& bd,
                        const PivotSet& pivots,
                        const std::vector<ObjectView>& queries, double r,
                        uint32_t k, uint32_t repeats, unsigned threads,
                        Reference* ref) {
  ThreadPool::SetGlobalThreads(threads);
  SweepPoint p;
  p.threads = threads;

  auto index = make_index();
  OpStats build = index->Build(bd.data, *bd.metric, pivots);
  p.build_s = build.seconds;

  std::vector<std::vector<ObjectId>> mrq;
  std::vector<std::vector<Neighbor>> knn;
  OpStats mrq_stats = index->RangeQueryBatch(queries, r, &mrq);
  OpStats knn_stats = index->KnnQueryBatch(queries, k, &knn);
  for (auto& out : mrq) std::sort(out.begin(), out.end());

  if (ref->mrq.empty()) {  // first (1-thread) run defines the reference
    ref->mrq = mrq;
    ref->knn = knn;
    ref->build_compdists = build.dist_computations;
    ref->mrq_compdists = mrq_stats.dist_computations;
    ref->knn_compdists = knn_stats.dist_computations;
  } else {
    p.compdists_match = build.dist_computations == ref->build_compdists &&
                        mrq_stats.dist_computations == ref->mrq_compdists &&
                        knn_stats.dist_computations == ref->knn_compdists;
    p.results_match = mrq == ref->mrq && knn.size() == ref->knn.size();
    for (size_t i = 0; p.results_match && i < knn.size(); ++i) {
      p.results_match = knn[i].size() == ref->knn[i].size();
      for (size_t j = 0; p.results_match && j < knn[i].size(); ++j) {
        p.results_match = knn[i][j].id == ref->knn[i][j].id &&
                          knn[i][j].dist == ref->knn[i][j].dist;
      }
    }
  }

  // Timed passes: best-of to shed scheduler noise.
  std::vector<std::vector<ObjectId>> mrq_sink;
  std::vector<std::vector<Neighbor>> knn_sink;
  double best_mrq = 1e300, best_knn = 1e300;
  for (uint32_t rep = 0; rep < repeats; ++rep) {
    best_mrq = std::min(
        best_mrq, index->RangeQueryBatch(queries, r, &mrq_sink).seconds);
    best_knn = std::min(
        best_knn, index->KnnQueryBatch(queries, k, &knn_sink).seconds);
  }
  p.mrq_ms = best_mrq * 1e3;
  p.knn_ms = best_knn * 1e3;
  return p;
}

/// One batch_blocking measurement: query-major vs block-major for one
/// (index, batch size) cell, single-threaded.
struct BlockingPoint {
  double mrq_qm_ms = 0, mrq_bm_ms = 0;  // query-major / block-major
  double knn_qm_ms = 0, knn_bm_ms = 0;
  bool match = true;  // results + per-query compdists identical
};

bool SameResults(const std::vector<std::vector<ObjectId>>& a,
                 const std::vector<std::vector<ObjectId>>& b) {
  return a == b;
}

bool SameResults(const std::vector<std::vector<Neighbor>>& a,
                 const std::vector<std::vector<Neighbor>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (a[i][j].id != b[i][j].id || a[i][j].dist != b[i][j].dist) {
        return false;
      }
    }
  }
  return true;
}

bool SamePerQuery(const std::vector<OpStats>& a,
                  const std::vector<OpStats>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].dist_computations != b[i].dist_computations ||
        a[i].page_reads != b[i].page_reads ||
        a[i].page_writes != b[i].page_writes) {
      return false;
    }
  }
  return true;
}

BlockingPoint RunBlockingPoint(MetricIndex* index,
                               const std::vector<ObjectView>& queries,
                               double r, uint32_t k, uint32_t repeats) {
  BlockingPoint p;
  const std::vector<double> radii(queries.size(), r);
  const std::vector<size_t> ks(queries.size(), k);

  // Equivalence first: the two modes must agree on results and
  // per-query compdists before their timings mean anything.
  std::vector<std::vector<ObjectId>> mrq_qm, mrq_bm;
  std::vector<std::vector<Neighbor>> knn_qm, knn_bm;
  std::vector<OpStats> pq_qm, pq_bm;
  index->RangeQueryBatch(queries, radii, &mrq_qm, &pq_qm,
                         BatchMode::kQueryMajor);
  index->RangeQueryBatch(queries, radii, &mrq_bm, &pq_bm, BatchMode::kAuto);
  p.match = SameResults(mrq_qm, mrq_bm) && SamePerQuery(pq_qm, pq_bm);
  index->KnnQueryBatch(queries, ks, &knn_qm, &pq_qm, BatchMode::kQueryMajor);
  index->KnnQueryBatch(queries, ks, &knn_bm, &pq_bm, BatchMode::kAuto);
  p.match = p.match && SameResults(knn_qm, knn_bm) && SamePerQuery(pq_qm, pq_bm);

  double best_mrq_qm = 1e300, best_mrq_bm = 1e300;
  double best_knn_qm = 1e300, best_knn_bm = 1e300;
  for (uint32_t rep = 0; rep < repeats; ++rep) {
    best_mrq_qm = std::min(
        best_mrq_qm, index->RangeQueryBatch(queries, radii, &mrq_qm, nullptr,
                                            BatchMode::kQueryMajor)
                         .seconds);
    best_mrq_bm = std::min(
        best_mrq_bm,
        index->RangeQueryBatch(queries, radii, &mrq_bm).seconds);
    best_knn_qm = std::min(
        best_knn_qm, index->KnnQueryBatch(queries, ks, &knn_qm, nullptr,
                                          BatchMode::kQueryMajor)
                         .seconds);
    best_knn_bm = std::min(best_knn_bm,
                           index->KnnQueryBatch(queries, ks, &knn_bm).seconds);
  }
  p.mrq_qm_ms = best_mrq_qm * 1e3;
  p.mrq_bm_ms = best_mrq_bm * 1e3;
  p.knn_qm_ms = best_knn_qm * 1e3;
  p.knn_bm_ms = best_knn_bm * 1e3;
  return p;
}

}  // namespace
}  // namespace pmi

int main(int argc, char** argv) {
  using namespace pmi;
  const uint32_t n = std::max(EnvU32("PMI_TP_N", 20000), 512u);
  const uint32_t num_queries = std::max(EnvU32("PMI_TP_QUERIES", 200), 1u);
  const uint32_t repeats = std::max(EnvU32("PMI_TP_REPEATS", 3), 1u);
  const uint32_t k = 10;
  // Same [1, 1024] bound as --threads below: an oversized env value must
  // not drive SetGlobalThreads into exhausting OS threads.
  unsigned max_threads = std::min(EnvU32("PMI_TP_THREADS", 4), 1024u);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      // Same strict parse as the env knobs: whole-string, in range, warn
      // on garbage instead of silently running at a different width.
      const char* v = argv[i + 1];
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end != v && *end == '\0' && parsed >= 1 && parsed <= 1024) {
        max_threads = static_cast<unsigned>(parsed);
      } else {
        std::fprintf(stderr,
                     "bench_throughput: ignoring --threads '%s' (want an "
                     "integer in [1, 1024]); using %u\n",
                     v, max_threads);
      }
      ++i;
    }
  }
  std::vector<unsigned> sweep;
  for (unsigned t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);

  std::fprintf(stderr,
               "bench_throughput: n=%u queries=%u repeats=%u max_threads=%u "
               "(hardware: %u)\n",
               n, num_queries, repeats, max_threads,
               std::thread::hardware_concurrency());

  // The acceptance workload: 20-d synthetic integers under L-infinity.
  ThreadPool::SetGlobalThreads(1);  // workload setup is thread-invariant,
                                    // but keep the baseline honest
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, n, 7);
  PivotSelectionOptions po;
  po.sample_size = std::min<uint32_t>(n, 1000);
  po.pair_sample = 400;
  PivotSet pivots = SelectSharedPivots(bd.data, *bd.metric, 5, po);
  DistanceDistribution distribution =
      EstimateDistribution(bd.data, *bd.metric, 4000, 3);
  const double r = distribution.RadiusForSelectivity(0.01);

  Rng rng(99);
  std::vector<uint32_t> qids = SampleDistinct(n, num_queries, rng);
  std::vector<ObjectView> queries;
  queries.reserve(qids.size());
  for (uint32_t q : qids) queries.push_back(bd.data.view(q));

  struct IndexCase {
    const char* name;
    std::function<std::unique_ptr<MetricIndex>()> make;
  };
  const std::vector<IndexCase> cases = {
      {"LAESA", [] { return std::make_unique<Laesa>(); }},
      {"EPT*", [] { return std::make_unique<Ept>(Ept::Variant::kStar); }},
  };

  JsonWriter json;
  json.Begin();
  bool results_match = true, compdists_match = true;
  // Best batch-query speedup at the tracked point: 4 threads when the
  // sweep reaches it (the acceptance metric), else the sweep maximum --
  // never a misleading 0 for "not measured".
  const unsigned tracked_threads = max_threads >= 4 ? 4u : max_threads;
  double tracked_speedup = max_threads == 1 ? 1.0 : 0.0;

  for (const IndexCase& c : cases) {
    Reference ref;
    double base_build_s = 0, base_mrq_ms = 0, base_knn_ms = 0;
    for (unsigned t : sweep) {
      SweepPoint p = RunAtThreads(c.make, bd, pivots, queries, r, k, repeats,
                                  t, &ref);
      results_match &= p.results_match;
      compdists_match &= p.compdists_match;
      if (t == 1) {
        base_build_s = p.build_s;
        base_mrq_ms = p.mrq_ms;
        base_knn_ms = p.knn_ms;
      }
      const double mrq_speedup = p.mrq_ms > 0 ? base_mrq_ms / p.mrq_ms : 0;
      const double knn_speedup = p.knn_ms > 0 ? base_knn_ms / p.knn_ms : 0;
      if (t == tracked_threads) {
        tracked_speedup = std::max({tracked_speedup, mrq_speedup, knn_speedup});
      }
      char extra[512];
      std::snprintf(
          extra, sizeof(extra),
          "\"index\": \"%s\", \"threads\": %u, %s, %s, %s, %s, %s, %s, %s, "
          "%s",
          c.name, t, Num("build_s", p.build_s).c_str(),
          Num("build_speedup", p.build_s > 0 ? base_build_s / p.build_s : 0)
              .c_str(),
          Num("mrq_ms", p.mrq_ms).c_str(),
          Num("mrq_qps", p.mrq_ms > 0 ? num_queries / (p.mrq_ms / 1e3) : 0)
              .c_str(),
          Num("mrq_speedup", mrq_speedup).c_str(),
          Num("knn_ms", p.knn_ms).c_str(),
          Num("knn_qps", p.knn_ms > 0 ? num_queries / (p.knn_ms / 1e3) : 0)
              .c_str(),
          Num("knn_speedup", knn_speedup).c_str());
      json.Result("throughput", extra);
      std::fprintf(stderr,
                   "  %-6s %u threads: build %.3fs, MRQ %.1f ms (%.2fx), "
                   "kNN %.1f ms (%.2fx)\n",
                   c.name, t, p.build_s, p.mrq_ms, mrq_speedup, p.knn_ms,
                   knn_speedup);
    }
  }
  // ---- batch_blocking: query-major (frozen) vs block-major ----------------
  // Single-threaded on its own, larger dataset: the pivot table must
  // overflow the cache hierarchy levels that a per-query re-stream can
  // hide in before the block-major win is measurable.
  ThreadPool::SetGlobalThreads(1);
  const uint32_t batch_n = std::max(EnvU32("PMI_TP_BATCH_N", 60000), 512u);
  std::fprintf(stderr, "batch_blocking: n=%u (single-threaded)\n", batch_n);
  BenchDataset bbd = MakeBenchDataset(BenchDatasetId::kSynthetic, batch_n, 7);
  PivotSelectionOptions bpo;
  bpo.sample_size = std::min<uint32_t>(batch_n, 1000);
  bpo.pair_sample = 400;
  PivotSet bpivots = SelectSharedPivots(bbd.data, *bbd.metric, 5, bpo);
  DistanceDistribution bdist =
      EstimateDistribution(bbd.data, *bbd.metric, 4000, 3);
  const double br = bdist.RadiusForSelectivity(0.01);
  Rng brng(1234);
  std::vector<uint32_t> bqids = SampleDistinct(batch_n, 256, brng);
  std::vector<ObjectView> bqueries;
  bqueries.reserve(bqids.size());
  for (uint32_t q : bqids) bqueries.push_back(bbd.data.view(q));

  bool blocking_match = true;
  // Per index: best speedup observed at batch >= 64 (the acceptance
  // point); the summary reports the minimum across indexes, i.e. "every
  // index reaches at least this".
  double blocking_speedup = 1e300;
  for (const IndexCase& c : cases) {
    auto index = c.make();
    index->Build(bbd.data, *bbd.metric, bpivots);
    double best64 = 0;
    for (uint32_t batch : {1u, 8u, 64u, 256u}) {
      const std::vector<ObjectView> sub(bqueries.begin(),
                                        bqueries.begin() + batch);
      BlockingPoint p = RunBlockingPoint(index.get(), sub, br, k, repeats);
      blocking_match &= p.match;
      const double mrq_speedup =
          p.mrq_bm_ms > 0 ? p.mrq_qm_ms / p.mrq_bm_ms : 0;
      const double knn_speedup =
          p.knn_bm_ms > 0 ? p.knn_qm_ms / p.knn_bm_ms : 0;
      if (batch >= 64) {
        best64 = std::max({best64, mrq_speedup, knn_speedup});
      }
      char extra[768];
      std::snprintf(
          extra, sizeof(extra),
          "\"index\": \"%s\", \"batch\": %u, %s, %s, %s, %s, %s, %s, %s, %s, "
          "%s, %s",
          c.name, batch, Num("mrq_qm_ms", p.mrq_qm_ms).c_str(),
          Num("mrq_bm_ms", p.mrq_bm_ms).c_str(),
          Num("mrq_bm_qps",
              p.mrq_bm_ms > 0 ? batch / (p.mrq_bm_ms / 1e3) : 0)
              .c_str(),
          Num("mrq_speedup", mrq_speedup).c_str(),
          Num("knn_qm_ms", p.knn_qm_ms).c_str(),
          Num("knn_bm_ms", p.knn_bm_ms).c_str(),
          Num("knn_bm_qps",
              p.knn_bm_ms > 0 ? batch / (p.knn_bm_ms / 1e3) : 0)
              .c_str(),
          Num("knn_speedup", knn_speedup).c_str(),
          Num("n", batch_n).c_str(),
          p.match ? "\"match\": true" : "\"match\": false");
      json.Result("batch_blocking", extra);
      std::fprintf(stderr,
                   "  %-6s batch %3u: MRQ %8.2f -> %8.2f ms (%.2fx), "
                   "kNN %8.2f -> %8.2f ms (%.2fx)%s\n",
                   c.name, batch, p.mrq_qm_ms, p.mrq_bm_ms, mrq_speedup,
                   p.knn_qm_ms, p.knn_bm_ms, knn_speedup,
                   p.match ? "" : "  MISMATCH");
    }
    blocking_speedup = std::min(blocking_speedup, best64);
  }
  ThreadPool::SetGlobalThreads(0);  // back to PMI_THREADS / hardware default

  // ---- concurrent_mixed: epoch-versioned readers vs. a churning writer ----
  // The facade path, not the raw engine: every reader batch pins a
  // version through MetricDB::Query while one writer applies
  // remove/insert batches.  Wall time covers the readers' fixed work;
  // the writer churns for the whole window and stops when they finish.
  const uint32_t mixed_rounds = std::max(EnvU32("PMI_TP_MIXED_ROUNDS", 20), 1u);
  const uint32_t mixed_batch = 64;
  std::fprintf(stderr, "concurrent_mixed: n=%u rounds=%u batch=%u\n", n,
               mixed_rounds, mixed_batch);
  const std::vector<ObjectView> mixed_queries(
      queries.begin(),
      queries.begin() + std::min<size_t>(queries.size(), mixed_batch));
  bool concurrent_reads_ok = true;
  for (const IndexCase& c : cases) {
    for (unsigned readers : sweep) {
      auto db = MetricDB::Create(
          MetricDBConfig().WithMetric("Linf").WithIndex(c.name).WithPivots(5),
          bd.data);
      if (!db.ok()) {
        std::fprintf(stderr, "  %-6s: create failed: %s\n", c.name,
                     db.status().ToString().c_str());
        concurrent_reads_ok = false;
        continue;
      }
      std::atomic<bool> stop{false};
      std::atomic<bool> reads_ok{true};
      std::atomic<uint64_t> writer_batches{0};

      const auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> pool;
      pool.reserve(readers);
      for (unsigned t = 0; t < readers; ++t) {
        pool.emplace_back([&] {
          for (uint32_t round = 0; round < mixed_rounds; ++round) {
            auto res = db->Query(QueryRequest::RangeBatch(mixed_queries, r));
            if (!res.ok()) {
              reads_ok.store(false, std::memory_order_relaxed);
              return;
            }
          }
        });
      }
      std::thread writer([&] {
        // Deterministic toggle churn over a coprime stride; each batch
        // removes or re-inserts 8 objects, tracked in a local mirror.
        std::vector<bool> live(bd.data.size(), true);
        uint64_t step = 0;
        while (!stop.load(std::memory_order_acquire)) {
          std::vector<UpdateOp> ops;
          ops.reserve(8);
          for (int i = 0; i < 8; ++i) {
            const ObjectId id =
                static_cast<ObjectId>((++step * 7919) % bd.data.size());
            ops.push_back(live[id] ? UpdateOp::Remove(id)
                                   : UpdateOp::Insert(id));
            live[id] = !live[id];
          }
          if (!db->Apply(ops).ok()) return;  // never expected in-memory
          writer_batches.fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (std::thread& t : pool) t.join();
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      stop.store(true, std::memory_order_release);
      writer.join();

      concurrent_reads_ok &= reads_ok.load();
      const uint64_t total_queries =
          uint64_t{readers} * mixed_rounds * mixed_queries.size();
      const double reader_qps = wall_s > 0 ? total_queries / wall_s : 0;
      const double writer_bps =
          wall_s > 0 ? writer_batches.load() / wall_s : 0;
      char extra[512];
      std::snprintf(extra, sizeof(extra),
                    "\"index\": \"%s\", \"threads\": %u, %s, %s, %s, %s",
                    c.name, readers, Num("reader_qps", reader_qps).c_str(),
                    Num("writer_batches_per_sec", writer_bps).c_str(),
                    Num("wall_ms", wall_s * 1e3).c_str(),
                    reads_ok.load() ? "\"reads_ok\": true"
                                    : "\"reads_ok\": false");
      json.Result("concurrent_mixed", extra);
      std::fprintf(stderr,
                   "  %-6s %u readers: %.0f reads/s, %.0f write batches/s "
                   "(%.0f ms)%s\n",
                   c.name, readers, reader_qps, writer_bps, wall_s * 1e3,
                   reads_ok.load() ? "" : "  READ FAILED");
    }
  }

  char trailer[768];
  std::snprintf(
      trailer, sizeof(trailer),
      "  \"config\": {\"dataset\": \"Synthetic\", \"dim\": 20, \"n\": %u, "
      "\"queries\": %u, \"repeats\": %u, \"max_threads\": %u, "
      "\"hardware_threads\": %u, \"batch_blocking_n\": %u},\n"
      "  \"checks\": {\"results_match\": %s, \"compdists_match\": %s, "
      "\"batch_speedup_threads\": %u, \"batch_speedup\": %.3f, "
      "\"batch_blocking_match\": %s, "
      "\"batch_blocking_min_speedup_batch64\": %.3f, "
      "\"concurrent_reads_ok\": %s}",
      n, num_queries, repeats, max_threads,
      std::thread::hardware_concurrency(), batch_n,
      results_match ? "true" : "false", compdists_match ? "true" : "false",
      tracked_threads, tracked_speedup, blocking_match ? "true" : "false",
      blocking_speedup, concurrent_reads_ok ? "true" : "false");
  json.End(trailer);

  const bool ok = results_match && compdists_match && blocking_match &&
                  concurrent_reads_ok;
  if (!ok) std::fprintf(stderr, "bench_throughput: EQUIVALENCE CHECK FAILED\n");
  return ok ? 0 : 1;
}
