// Throughput benchmark for the parallel execution engine: multi-threaded
// index construction and the concurrent batch-query API
// (MetricIndex::RangeQueryBatch / KnnQueryBatch) on the paper's 20-d
// synthetic workload.
//
// For each index (LAESA, EPT*) and each thread count in a power-of-two
// sweep, the run measures build wall time, batch MRQ and batch MkNNQ wall
// time (best-of repeats), and reports QPS plus speedup vs. the 1-thread
// run.  Before timing, it pins the engine's equivalence contract: per
// -query result sets and total compdists must be identical at every
// thread count.  Exit status reflects the equivalence checks only --
// speedup depends on the hardware (a single-core container measures ~1x
// by construction) and is reported, not asserted.
//
// A second section, batch_blocking, pits the frozen query-major path
// (BatchMode::kQueryMajor) against the block-major batch engine across
// batch sizes {1, 8, 64, 256} on LAESA and EPT*, single-threaded so the
// measured ratio is pure cache blocking.  Before timing, it asserts the
// engine's exactness contract: per-query results AND per-query
// compdists must be bit-identical between the two modes.  The
// acceptance target is >= 1.3x MRQ/kNN QPS at batch >= 64.
//
// A third section, concurrent_mixed, measures the epoch-versioned
// MetricDB facade under a mixed workload: N reader threads issue batch
// MRQ queries through MetricDB::Query (each pinning an immutable
// version, no locks) while one writer thread churns remove/insert
// batches through MetricDB::Apply (shadow-copy clone + atomic publish).
// Reported per reader count: aggregate reader QPS, writer batches/s,
// and whether every read succeeded.  Like the thread sweep, the
// absolute numbers are hardware-dependent and warn-only downstream;
// the hard assertion is that no read ever fails mid-churn.
//
// A fourth section, sharded_service, measures the sharded service layer
// (src/service/sharded_service.h) at shard counts {1, 2, 4} with a
// fixed client count.  Per shard count it first pins the tentpole
// contract -- scatter/gather MRQ and MkNN results bit-identical to an
// unsharded MetricDB oracle holding the same data, before AND after a
// deterministic routed-update stream -- then runs a mixed read/write
// workload (concurrent clients, single-shard apply batches) and reports
// read QPS and apply batches/s.  The 4-shard vs 1-shard apply speedup
// is the headline number (target >= 1.5x: N shards = N writer streams);
// like every other speedup it is hardware-dependent and warn-only.  A
// final overload pass (1 worker, tiny queue, flooding clients) records
// the rejection rate and asserts every refusal is typed
// kResourceExhausted -- that typedness check, and the oracle
// equivalence, gate the exit status.
//
// A fifth section, chaos_recovery, measures the self-healing loop on a
// durable service behind a fault-injecting Env: reader QPS is sampled
// before a torn-write power-loss fault, during the resulting quarantine
// (reads ride the supervisor's pinned stale view), and after recovery,
// plus the wall-clock latency from healing the env to every shard
// writable again.  The QPS numbers are hardware-dependent and warn-only
// downstream; the hard (exit-gating) checks are that every read in all
// three phases succeeds, the service heals within the cap, and a
// post-recovery retried write commits.
//
// A sixth section, buffer_pool, measures the unified page cache on the
// disk indexes (CPT, SPB-tree): batch MRQ/kNN cold (clean frames
// dropped, every page faulted back through the pool) vs warm (fully
// resident), single-threaded on a pool sized to hold the whole page
// file.  The hard (exit-gating) checks are that warm answers are
// bit-identical to cold and that the warm passes do zero physical
// reads; the cold/warm speedup and the logical PA (which the pool must
// not change) are reported.
//
// Emits one JSON document to stdout (progress chatter on stderr):
//
//   ./bench_throughput --threads 8 | python3 -m json.tool
//
// Environment: PMI_TP_N (cardinality, default 20000), PMI_TP_QUERIES
// (batch size, default 200), PMI_TP_REPEATS (best-of, default 3),
// PMI_TP_THREADS (max thread count, default 4; --threads overrides),
// PMI_TP_BATCH_N (batch_blocking cardinality, default 60000 -- sized so
// the pivot table overflows L2 and the re-streaming cost is visible).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/metric_db.h"

#include "src/core/counters.h"
#include "src/core/pivot_selection.h"
#include "src/core/rng.h"
#include "src/core/thread_pool.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/harness/registry.h"
#include "src/harness/workload.h"
#include "src/tables/ept.h"
#include "src/tables/laesa.h"
#include "src/service/retry.h"
#include "src/service/sharded_service.h"
#include "src/storage/fault_env.h"

#include <unistd.h>

namespace pmi {
namespace {

struct JsonWriter {
  bool first = true;
  void Begin() { std::printf("{\n  \"results\": [\n"); }
  void Result(const std::string& name, const std::string& fields) {
    std::printf("%s    {\"name\": \"%s\", %s}", first ? "" : ",\n",
                name.c_str(), fields.c_str());
    first = false;
  }
  void End(const std::string& trailer) {
    std::printf("\n  ],\n%s\n}\n", trailer.c_str());
  }
};

std::string Num(const char* key, double v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6g", key, v);
  return buf;
}

void RemoveTree(const std::string& dir) {
  Env* env = Env::Default();
  StatusOr<std::vector<std::string>> names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      const std::string path = JoinPath(dir, name);
      if (env->RemoveFile(path).ok()) continue;
      RemoveTree(path);
    }
  }
  ::rmdir(dir.c_str());
}

bool AllWritable(const ShardedService& svc) {
  for (const Status& s : svc.write_statuses()) {
    if (!s.ok()) return false;
  }
  return true;
}

/// Reference answers (built once at 1 thread) every other thread count
/// must reproduce exactly.
struct Reference {
  std::vector<std::vector<ObjectId>> mrq;  // sorted per query
  std::vector<std::vector<Neighbor>> knn;
  uint64_t build_compdists = 0;
  uint64_t mrq_compdists = 0;
  uint64_t knn_compdists = 0;
};

struct SweepPoint {
  unsigned threads = 1;
  double build_s = 0;
  double mrq_ms = 0;
  double knn_ms = 0;
  bool results_match = true;
  bool compdists_match = true;
};

template <typename MakeIndexFn>
SweepPoint RunAtThreads(MakeIndexFn&& make_index, const BenchDataset& bd,
                        const PivotSet& pivots,
                        const std::vector<ObjectView>& queries, double r,
                        uint32_t k, uint32_t repeats, unsigned threads,
                        Reference* ref) {
  ThreadPool::SetGlobalThreads(threads);
  SweepPoint p;
  p.threads = threads;

  auto index = make_index();
  OpStats build = index->Build(bd.data, *bd.metric, pivots);
  p.build_s = build.seconds;

  std::vector<std::vector<ObjectId>> mrq;
  std::vector<std::vector<Neighbor>> knn;
  OpStats mrq_stats = index->RangeQueryBatch(queries, r, &mrq);
  OpStats knn_stats = index->KnnQueryBatch(queries, k, &knn);
  for (auto& out : mrq) std::sort(out.begin(), out.end());

  if (ref->mrq.empty()) {  // first (1-thread) run defines the reference
    ref->mrq = mrq;
    ref->knn = knn;
    ref->build_compdists = build.dist_computations;
    ref->mrq_compdists = mrq_stats.dist_computations;
    ref->knn_compdists = knn_stats.dist_computations;
  } else {
    p.compdists_match = build.dist_computations == ref->build_compdists &&
                        mrq_stats.dist_computations == ref->mrq_compdists &&
                        knn_stats.dist_computations == ref->knn_compdists;
    p.results_match = mrq == ref->mrq && knn.size() == ref->knn.size();
    for (size_t i = 0; p.results_match && i < knn.size(); ++i) {
      p.results_match = knn[i].size() == ref->knn[i].size();
      for (size_t j = 0; p.results_match && j < knn[i].size(); ++j) {
        p.results_match = knn[i][j].id == ref->knn[i][j].id &&
                          knn[i][j].dist == ref->knn[i][j].dist;
      }
    }
  }

  // Timed passes: best-of to shed scheduler noise.
  std::vector<std::vector<ObjectId>> mrq_sink;
  std::vector<std::vector<Neighbor>> knn_sink;
  double best_mrq = 1e300, best_knn = 1e300;
  for (uint32_t rep = 0; rep < repeats; ++rep) {
    best_mrq = std::min(
        best_mrq, index->RangeQueryBatch(queries, r, &mrq_sink).seconds);
    best_knn = std::min(
        best_knn, index->KnnQueryBatch(queries, k, &knn_sink).seconds);
  }
  p.mrq_ms = best_mrq * 1e3;
  p.knn_ms = best_knn * 1e3;
  return p;
}

/// One batch_blocking measurement: query-major vs block-major for one
/// (index, batch size) cell, single-threaded.
struct BlockingPoint {
  double mrq_qm_ms = 0, mrq_bm_ms = 0;  // query-major / block-major
  double knn_qm_ms = 0, knn_bm_ms = 0;
  bool match = true;  // results + per-query compdists identical
};

bool SameResults(const std::vector<std::vector<ObjectId>>& a,
                 const std::vector<std::vector<ObjectId>>& b) {
  return a == b;
}

bool SameResults(const std::vector<std::vector<Neighbor>>& a,
                 const std::vector<std::vector<Neighbor>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (a[i][j].id != b[i][j].id || a[i][j].dist != b[i][j].dist) {
        return false;
      }
    }
  }
  return true;
}

bool SamePerQuery(const std::vector<OpStats>& a,
                  const std::vector<OpStats>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].dist_computations != b[i].dist_computations ||
        a[i].page_reads != b[i].page_reads ||
        a[i].page_writes != b[i].page_writes) {
      return false;
    }
  }
  return true;
}

BlockingPoint RunBlockingPoint(MetricIndex* index,
                               const std::vector<ObjectView>& queries,
                               double r, uint32_t k, uint32_t repeats) {
  BlockingPoint p;
  const std::vector<double> radii(queries.size(), r);
  const std::vector<size_t> ks(queries.size(), k);

  // Equivalence first: the two modes must agree on results and
  // per-query compdists before their timings mean anything.
  std::vector<std::vector<ObjectId>> mrq_qm, mrq_bm;
  std::vector<std::vector<Neighbor>> knn_qm, knn_bm;
  std::vector<OpStats> pq_qm, pq_bm;
  index->RangeQueryBatch(queries, radii, &mrq_qm, &pq_qm,
                         BatchMode::kQueryMajor);
  index->RangeQueryBatch(queries, radii, &mrq_bm, &pq_bm, BatchMode::kAuto);
  p.match = SameResults(mrq_qm, mrq_bm) && SamePerQuery(pq_qm, pq_bm);
  index->KnnQueryBatch(queries, ks, &knn_qm, &pq_qm, BatchMode::kQueryMajor);
  index->KnnQueryBatch(queries, ks, &knn_bm, &pq_bm, BatchMode::kAuto);
  p.match = p.match && SameResults(knn_qm, knn_bm) && SamePerQuery(pq_qm, pq_bm);

  double best_mrq_qm = 1e300, best_mrq_bm = 1e300;
  double best_knn_qm = 1e300, best_knn_bm = 1e300;
  for (uint32_t rep = 0; rep < repeats; ++rep) {
    best_mrq_qm = std::min(
        best_mrq_qm, index->RangeQueryBatch(queries, radii, &mrq_qm, nullptr,
                                            BatchMode::kQueryMajor)
                         .seconds);
    best_mrq_bm = std::min(
        best_mrq_bm,
        index->RangeQueryBatch(queries, radii, &mrq_bm).seconds);
    best_knn_qm = std::min(
        best_knn_qm, index->KnnQueryBatch(queries, ks, &knn_qm, nullptr,
                                          BatchMode::kQueryMajor)
                         .seconds);
    best_knn_bm = std::min(best_knn_bm,
                           index->KnnQueryBatch(queries, ks, &knn_bm).seconds);
  }
  p.mrq_qm_ms = best_mrq_qm * 1e3;
  p.mrq_bm_ms = best_mrq_bm * 1e3;
  p.knn_qm_ms = best_knn_qm * 1e3;
  p.knn_bm_ms = best_knn_bm * 1e3;
  return p;
}

}  // namespace
}  // namespace pmi

int main(int argc, char** argv) {
  using namespace pmi;
  const uint32_t n = std::max(EnvU32("PMI_TP_N", 20000), 512u);
  const uint32_t num_queries = std::max(EnvU32("PMI_TP_QUERIES", 200), 1u);
  const uint32_t repeats = std::max(EnvU32("PMI_TP_REPEATS", 3), 1u);
  const uint32_t k = 10;
  // Same [1, 1024] bound as --threads below: an oversized env value must
  // not drive SetGlobalThreads into exhausting OS threads.
  unsigned max_threads = std::min(EnvU32("PMI_TP_THREADS", 4), 1024u);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      // Same strict parse as the env knobs: whole-string, in range, warn
      // on garbage instead of silently running at a different width.
      const char* v = argv[i + 1];
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(v, &end, 10);
      if (end != v && *end == '\0' && parsed >= 1 && parsed <= 1024) {
        max_threads = static_cast<unsigned>(parsed);
      } else {
        std::fprintf(stderr,
                     "bench_throughput: ignoring --threads '%s' (want an "
                     "integer in [1, 1024]); using %u\n",
                     v, max_threads);
      }
      ++i;
    }
  }
  std::vector<unsigned> sweep;
  for (unsigned t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);

  std::fprintf(stderr,
               "bench_throughput: n=%u queries=%u repeats=%u max_threads=%u "
               "(hardware: %u)\n",
               n, num_queries, repeats, max_threads,
               std::thread::hardware_concurrency());

  // The acceptance workload: 20-d synthetic integers under L-infinity.
  ThreadPool::SetGlobalThreads(1);  // workload setup is thread-invariant,
                                    // but keep the baseline honest
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, n, 7);
  PivotSelectionOptions po;
  po.sample_size = std::min<uint32_t>(n, 1000);
  po.pair_sample = 400;
  PivotSet pivots = SelectSharedPivots(bd.data, *bd.metric, 5, po);
  DistanceDistribution distribution =
      EstimateDistribution(bd.data, *bd.metric, 4000, 3);
  const double r = distribution.RadiusForSelectivity(0.01);

  Rng rng(99);
  std::vector<uint32_t> qids = SampleDistinct(n, num_queries, rng);
  std::vector<ObjectView> queries;
  queries.reserve(qids.size());
  for (uint32_t q : qids) queries.push_back(bd.data.view(q));

  struct IndexCase {
    const char* name;
    std::function<std::unique_ptr<MetricIndex>()> make;
  };
  const std::vector<IndexCase> cases = {
      {"LAESA", [] { return std::make_unique<Laesa>(); }},
      {"EPT*", [] { return std::make_unique<Ept>(Ept::Variant::kStar); }},
  };

  JsonWriter json;
  json.Begin();
  bool results_match = true, compdists_match = true;
  // Best batch-query speedup at the tracked point: 4 threads when the
  // sweep reaches it (the acceptance metric), else the sweep maximum --
  // never a misleading 0 for "not measured".
  const unsigned tracked_threads = max_threads >= 4 ? 4u : max_threads;
  double tracked_speedup = max_threads == 1 ? 1.0 : 0.0;

  for (const IndexCase& c : cases) {
    Reference ref;
    double base_build_s = 0, base_mrq_ms = 0, base_knn_ms = 0;
    for (unsigned t : sweep) {
      SweepPoint p = RunAtThreads(c.make, bd, pivots, queries, r, k, repeats,
                                  t, &ref);
      results_match &= p.results_match;
      compdists_match &= p.compdists_match;
      if (t == 1) {
        base_build_s = p.build_s;
        base_mrq_ms = p.mrq_ms;
        base_knn_ms = p.knn_ms;
      }
      const double mrq_speedup = p.mrq_ms > 0 ? base_mrq_ms / p.mrq_ms : 0;
      const double knn_speedup = p.knn_ms > 0 ? base_knn_ms / p.knn_ms : 0;
      if (t == tracked_threads) {
        tracked_speedup = std::max({tracked_speedup, mrq_speedup, knn_speedup});
      }
      char extra[512];
      std::snprintf(
          extra, sizeof(extra),
          "\"index\": \"%s\", \"threads\": %u, %s, %s, %s, %s, %s, %s, %s, "
          "%s",
          c.name, t, Num("build_s", p.build_s).c_str(),
          Num("build_speedup", p.build_s > 0 ? base_build_s / p.build_s : 0)
              .c_str(),
          Num("mrq_ms", p.mrq_ms).c_str(),
          Num("mrq_qps", p.mrq_ms > 0 ? num_queries / (p.mrq_ms / 1e3) : 0)
              .c_str(),
          Num("mrq_speedup", mrq_speedup).c_str(),
          Num("knn_ms", p.knn_ms).c_str(),
          Num("knn_qps", p.knn_ms > 0 ? num_queries / (p.knn_ms / 1e3) : 0)
              .c_str(),
          Num("knn_speedup", knn_speedup).c_str());
      json.Result("throughput", extra);
      std::fprintf(stderr,
                   "  %-6s %u threads: build %.3fs, MRQ %.1f ms (%.2fx), "
                   "kNN %.1f ms (%.2fx)\n",
                   c.name, t, p.build_s, p.mrq_ms, mrq_speedup, p.knn_ms,
                   knn_speedup);
    }
  }
  // ---- batch_blocking: query-major (frozen) vs block-major ----------------
  // Single-threaded on its own, larger dataset: the pivot table must
  // overflow the cache hierarchy levels that a per-query re-stream can
  // hide in before the block-major win is measurable.
  ThreadPool::SetGlobalThreads(1);
  const uint32_t batch_n = std::max(EnvU32("PMI_TP_BATCH_N", 60000), 512u);
  std::fprintf(stderr, "batch_blocking: n=%u (single-threaded)\n", batch_n);
  BenchDataset bbd = MakeBenchDataset(BenchDatasetId::kSynthetic, batch_n, 7);
  PivotSelectionOptions bpo;
  bpo.sample_size = std::min<uint32_t>(batch_n, 1000);
  bpo.pair_sample = 400;
  PivotSet bpivots = SelectSharedPivots(bbd.data, *bbd.metric, 5, bpo);
  DistanceDistribution bdist =
      EstimateDistribution(bbd.data, *bbd.metric, 4000, 3);
  const double br = bdist.RadiusForSelectivity(0.01);
  Rng brng(1234);
  std::vector<uint32_t> bqids = SampleDistinct(batch_n, 256, brng);
  std::vector<ObjectView> bqueries;
  bqueries.reserve(bqids.size());
  for (uint32_t q : bqids) bqueries.push_back(bbd.data.view(q));

  bool blocking_match = true;
  // Per index: best speedup observed at batch >= 64 (the acceptance
  // point); the summary reports the minimum across indexes, i.e. "every
  // index reaches at least this".
  double blocking_speedup = 1e300;
  for (const IndexCase& c : cases) {
    auto index = c.make();
    index->Build(bbd.data, *bbd.metric, bpivots);
    double best64 = 0;
    for (uint32_t batch : {1u, 8u, 64u, 256u}) {
      const std::vector<ObjectView> sub(bqueries.begin(),
                                        bqueries.begin() + batch);
      BlockingPoint p = RunBlockingPoint(index.get(), sub, br, k, repeats);
      blocking_match &= p.match;
      const double mrq_speedup =
          p.mrq_bm_ms > 0 ? p.mrq_qm_ms / p.mrq_bm_ms : 0;
      const double knn_speedup =
          p.knn_bm_ms > 0 ? p.knn_qm_ms / p.knn_bm_ms : 0;
      if (batch >= 64) {
        best64 = std::max({best64, mrq_speedup, knn_speedup});
      }
      char extra[768];
      std::snprintf(
          extra, sizeof(extra),
          "\"index\": \"%s\", \"batch\": %u, %s, %s, %s, %s, %s, %s, %s, %s, "
          "%s, %s",
          c.name, batch, Num("mrq_qm_ms", p.mrq_qm_ms).c_str(),
          Num("mrq_bm_ms", p.mrq_bm_ms).c_str(),
          Num("mrq_bm_qps",
              p.mrq_bm_ms > 0 ? batch / (p.mrq_bm_ms / 1e3) : 0)
              .c_str(),
          Num("mrq_speedup", mrq_speedup).c_str(),
          Num("knn_qm_ms", p.knn_qm_ms).c_str(),
          Num("knn_bm_ms", p.knn_bm_ms).c_str(),
          Num("knn_bm_qps",
              p.knn_bm_ms > 0 ? batch / (p.knn_bm_ms / 1e3) : 0)
              .c_str(),
          Num("knn_speedup", knn_speedup).c_str(),
          Num("n", batch_n).c_str(),
          p.match ? "\"match\": true" : "\"match\": false");
      json.Result("batch_blocking", extra);
      std::fprintf(stderr,
                   "  %-6s batch %3u: MRQ %8.2f -> %8.2f ms (%.2fx), "
                   "kNN %8.2f -> %8.2f ms (%.2fx)%s\n",
                   c.name, batch, p.mrq_qm_ms, p.mrq_bm_ms, mrq_speedup,
                   p.knn_qm_ms, p.knn_bm_ms, knn_speedup,
                   p.match ? "" : "  MISMATCH");
    }
    blocking_speedup = std::min(blocking_speedup, best64);
  }
  ThreadPool::SetGlobalThreads(0);  // back to PMI_THREADS / hardware default

  // ---- concurrent_mixed: epoch-versioned readers vs. a churning writer ----
  // The facade path, not the raw engine: every reader batch pins a
  // version through MetricDB::Query while one writer applies
  // remove/insert batches.  Wall time covers the readers' fixed work;
  // the writer churns for the whole window and stops when they finish.
  const uint32_t mixed_rounds = std::max(EnvU32("PMI_TP_MIXED_ROUNDS", 20), 1u);
  const uint32_t mixed_batch = 64;
  std::fprintf(stderr, "concurrent_mixed: n=%u rounds=%u batch=%u\n", n,
               mixed_rounds, mixed_batch);
  const std::vector<ObjectView> mixed_queries(
      queries.begin(),
      queries.begin() + std::min<size_t>(queries.size(), mixed_batch));
  bool concurrent_reads_ok = true;
  for (const IndexCase& c : cases) {
    for (unsigned readers : sweep) {
      auto db = MetricDB::Create(
          MetricDBConfig().WithMetric("Linf").WithIndex(c.name).WithPivots(5),
          bd.data);
      if (!db.ok()) {
        std::fprintf(stderr, "  %-6s: create failed: %s\n", c.name,
                     db.status().ToString().c_str());
        concurrent_reads_ok = false;
        continue;
      }
      std::atomic<bool> stop{false};
      std::atomic<bool> reads_ok{true};
      std::atomic<uint64_t> writer_batches{0};

      const auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> pool;
      pool.reserve(readers);
      for (unsigned t = 0; t < readers; ++t) {
        pool.emplace_back([&] {
          for (uint32_t round = 0; round < mixed_rounds; ++round) {
            auto res = db->Query(QueryRequest::RangeBatch(mixed_queries, r));
            if (!res.ok()) {
              reads_ok.store(false, std::memory_order_relaxed);
              return;
            }
          }
        });
      }
      std::thread writer([&] {
        // Deterministic toggle churn over a coprime stride; each batch
        // removes or re-inserts 8 objects, tracked in a local mirror.
        std::vector<bool> live(bd.data.size(), true);
        uint64_t step = 0;
        while (!stop.load(std::memory_order_acquire)) {
          std::vector<UpdateOp> ops;
          ops.reserve(8);
          for (int i = 0; i < 8; ++i) {
            const ObjectId id =
                static_cast<ObjectId>((++step * 7919) % bd.data.size());
            ops.push_back(live[id] ? UpdateOp::Remove(id)
                                   : UpdateOp::Insert(id));
            live[id] = !live[id];
          }
          if (!db->Apply(ops).ok()) return;  // never expected in-memory
          writer_batches.fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (std::thread& t : pool) t.join();
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      stop.store(true, std::memory_order_release);
      writer.join();

      concurrent_reads_ok &= reads_ok.load();
      const uint64_t total_queries =
          uint64_t{readers} * mixed_rounds * mixed_queries.size();
      const double reader_qps = wall_s > 0 ? total_queries / wall_s : 0;
      const double writer_bps =
          wall_s > 0 ? writer_batches.load() / wall_s : 0;
      char extra[512];
      std::snprintf(extra, sizeof(extra),
                    "\"index\": \"%s\", \"threads\": %u, %s, %s, %s, %s",
                    c.name, readers, Num("reader_qps", reader_qps).c_str(),
                    Num("writer_batches_per_sec", writer_bps).c_str(),
                    Num("wall_ms", wall_s * 1e3).c_str(),
                    reads_ok.load() ? "\"reads_ok\": true"
                                    : "\"reads_ok\": false");
      json.Result("concurrent_mixed", extra);
      std::fprintf(stderr,
                   "  %-6s %u readers: %.0f reads/s, %.0f write batches/s "
                   "(%.0f ms)%s\n",
                   c.name, readers, reader_qps, writer_bps, wall_s * 1e3,
                   reads_ok.load() ? "" : "  READ FAILED");
    }
  }

  // ---- sharded_service: scatter/gather + admission over N shards ----------
  // Fixed client count across shard counts {1, 2, 4}: the only variable
  // is how many independent writer streams the service has.  Before any
  // timing, each shard count must answer bit-identically to an
  // unsharded oracle -- fresh AND after a deterministic routed-update
  // stream -- which is the section's hard (exit-gating) check.
  const uint32_t svc_clients = std::max(EnvU32("PMI_TP_SVC_CLIENTS", 4), 1u);
  const uint32_t svc_rounds = std::max(EnvU32("PMI_TP_SVC_ROUNDS", 40), 1u);
  std::fprintf(stderr, "sharded_service: n=%u clients=%u rounds=%u\n", n,
               svc_clients, svc_rounds);
  const MetricDBConfig svc_cfg =
      MetricDBConfig().WithMetric("Linf").WithIndex("LAESA").WithPivots(5);

  // Deterministic toggle stream (global ids -- the service rewrites to
  // shard-local internally) and the liveness it leaves behind, replayed
  // identically into the oracle and every service instance.
  std::vector<std::vector<UpdateOp>> toggle_stream;
  std::vector<uint8_t> post_live(n, 1);
  {
    uint64_t step = 0;
    for (int b = 0; b < 24; ++b) {
      std::vector<UpdateOp> ops;
      for (int i = 0; i < 8; ++i) {
        const ObjectId id = static_cast<ObjectId>((++step * 7919) % n);
        ops.push_back(post_live[id] != 0 ? UpdateOp::Remove(id)
                                         : UpdateOp::Insert(id));
        post_live[id] ^= 1;
      }
      toggle_stream.push_back(std::move(ops));
    }
  }

  auto same_as_oracle = [&](MetricDB& oracle, ShardedService& svc) -> bool {
    auto omrq = oracle.Query(QueryRequest::RangeBatch(queries, r));
    auto smrq = svc.Query(QueryRequest::RangeBatch(queries, r));
    auto oknn = oracle.Query(QueryRequest::KnnBatch(queries, size_t{k}));
    auto sknn = svc.Query(QueryRequest::KnnBatch(queries, size_t{k}));
    if (!omrq.ok() || !smrq.ok() || !oknn.ok() || !sknn.ok()) return false;
    if (smrq->ids.size() != queries.size()) return false;
    for (size_t q = 0; q < queries.size(); ++q) {
      std::vector<ObjectId> want = omrq->ids[q];  // service output is sorted
      std::sort(want.begin(), want.end());
      if (smrq->ids[q] != want) return false;
    }
    return SameResults(oknn->neighbors, sknn->neighbors);
  };

  bool sharded_equiv_match = true;
  bool sharded_mixed_ok = true;
  double apply_bps_at_1 = 0, apply_bps_at_4 = 0;
  for (uint32_t num_shards : {1u, 2u, 4u}) {
    auto oracle_or = MetricDB::Create(svc_cfg, bd.data);
    ServiceOptions sopts;
    sopts.num_shards = num_shards;
    sopts.workers = svc_clients;
    sopts.max_queue = 64;
    auto svc_or = ShardedService::Create(svc_cfg, bd.data, sopts);
    if (!oracle_or.ok() || !svc_or.ok()) {
      std::fprintf(stderr, "  %u shards: create failed: %s\n", num_shards,
                   (oracle_or.ok() ? svc_or.status() : oracle_or.status())
                       .ToString()
                       .c_str());
      sharded_equiv_match = false;
      continue;
    }
    MetricDB& oracle = *oracle_or;
    ShardedService& svc = **svc_or;

    bool equiv = same_as_oracle(oracle, svc);  // fresh
    for (const std::vector<UpdateOp>& batch : toggle_stream) {
      if (!oracle.Apply(batch).ok()) equiv = false;
      auto applied = svc.Apply(batch);
      if (!applied.ok() || !applied->all_ok()) equiv = false;
    }
    equiv = equiv && same_as_oracle(oracle, svc);  // after routed updates
    sharded_equiv_match &= equiv;

    // Mixed workload: every client interleaves a light read batch with
    // write-heavy apply traffic.  Apply batches are single-shard (one
    // hot entity group per batch) and each client toggles a disjoint
    // slice of every shard, so N shards really are N independent writer
    // streams with zero cross-client conflicts.
    std::atomic<uint64_t> svc_queries_done{0};
    std::atomic<uint64_t> svc_applies_done{0};
    std::atomic<bool> mixed_ok{true};
    const auto svc_start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(svc_clients);
    for (uint32_t c = 0; c < svc_clients; ++c) {
      clients.emplace_back([&, c] {
        // This client's slice of each shard: members at positions
        // c, c + clients, ... -- disjoint across clients by construction.
        struct Stripe {
          std::vector<ObjectId> ids;
          std::vector<uint8_t> live;
        };
        Rng rng(0xbe7c + c);
        std::vector<Stripe> stripes(num_shards);
        for (uint32_t s = 0; s < num_shards; ++s) {
          const std::vector<ObjectId>& members = svc.router().members(s);
          for (size_t p = c; p < members.size(); p += svc_clients) {
            stripes[s].ids.push_back(members[p]);
            stripes[s].live.push_back(post_live[members[p]]);
          }
        }
        for (uint32_t round = 0; round < svc_rounds; ++round) {
          std::vector<ObjectView> qs;
          for (int i = 0; i < 2; ++i) {
            qs.push_back(queries[(uint64_t{round} * 2 + i) % queries.size()]);
          }
          StatusOr<QueryResult> res =
              (round % 2 == 0)
                  ? svc.Query(QueryRequest::RangeBatch(qs, r))
                  : svc.Query(QueryRequest::KnnBatch(qs, size_t{k}));
          if (res.ok()) {
            svc_queries_done.fetch_add(qs.size(), std::memory_order_relaxed);
          } else {
            mixed_ok.store(false, std::memory_order_relaxed);
          }
          for (int a = 0; a < 2; ++a) {
            Stripe& st = stripes[(c + round + a) % num_shards];
            if (st.ids.empty()) continue;
            // Big batches amortize the per-request admission round trip
            // (which is shard-count independent) so the measured rate
            // tracks the writer-side work -- clone + per-op apply --
            // which scales with the owning shard's size, not the
            // service's.
            std::vector<UpdateOp> ops;
            ops.reserve(384);
            for (int i = 0; i < 384; ++i) {
              const size_t slot = rng() % st.ids.size();
              ops.push_back(st.live[slot] != 0 ? UpdateOp::Remove(st.ids[slot])
                                               : UpdateOp::Insert(st.ids[slot]));
              st.live[slot] ^= 1;
            }
            auto applied = svc.Apply(ops);
            if (applied.ok() && applied->all_ok()) {
              svc_applies_done.fetch_add(1, std::memory_order_relaxed);
            } else {
              mixed_ok.store(false, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double svc_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      svc_start)
            .count();
    sharded_mixed_ok &= mixed_ok.load();
    const double read_qps =
        svc_wall_s > 0 ? svc_queries_done.load() / svc_wall_s : 0;
    const double apply_bps =
        svc_wall_s > 0 ? svc_applies_done.load() / svc_wall_s : 0;
    if (num_shards == 1) apply_bps_at_1 = apply_bps;
    if (num_shards == 4) apply_bps_at_4 = apply_bps;
    const ShardedService::ServiceStats sstats = svc.stats();

    char extra[512];
    std::snprintf(
        extra, sizeof(extra),
        "\"shards\": %u, \"clients\": %u, %s, %s, %s, %s, %s, %s",
        num_shards, svc_clients, Num("read_qps", read_qps).c_str(),
        Num("apply_batches_per_sec", apply_bps).c_str(),
        Num("wall_ms", svc_wall_s * 1e3).c_str(),
        Num("peak_queue_depth", sstats.admission.peak_depth).c_str(),
        equiv ? "\"oracle_match\": true" : "\"oracle_match\": false",
        mixed_ok.load() ? "\"mixed_ok\": true" : "\"mixed_ok\": false");
    json.Result("sharded_service", extra);
    std::fprintf(stderr,
                 "  %u shards: %.0f reads/s, %.0f apply batches/s "
                 "(peak depth %u)%s\n",
                 num_shards, read_qps, apply_bps, sstats.admission.peak_depth,
                 equiv ? "" : "  ORACLE MISMATCH");
    Status closed = svc.Close();
    if (!closed.ok()) sharded_mixed_ok = false;
  }
  const double sharded_apply_speedup =
      apply_bps_at_1 > 0 ? apply_bps_at_4 / apply_bps_at_1 : 0;

  // Overload: one worker, a two-slot queue, and twice the clients
  // flooding heavy kNN batches.  Some requests MUST be refused, and
  // every refusal must be the typed backpressure signal.
  bool sharded_overload_typed = true;
  double sharded_rejection_rate = 0;
  {
    ServiceOptions oopts;
    oopts.num_shards = 2;
    oopts.workers = 1;
    oopts.max_queue = 2;
    auto svc_or = ShardedService::Create(svc_cfg, bd.data, oopts);
    if (!svc_or.ok()) {
      std::fprintf(stderr, "  overload: create failed: %s\n",
                   svc_or.status().ToString().c_str());
      sharded_overload_typed = false;
    } else {
      ShardedService& svc = **svc_or;
      const std::vector<ObjectView> heavy(
          queries.begin(),
          queries.begin() + std::min<size_t>(queries.size(), 64));
      std::atomic<uint64_t> served{0}, refused{0}, untyped{0};
      const uint32_t flooders = std::max(2 * svc_clients, 8u);
      const uint32_t flood_rounds = 25;
      std::vector<std::thread> pool;
      pool.reserve(flooders);
      for (uint32_t c = 0; c < flooders; ++c) {
        pool.emplace_back([&] {
          for (uint32_t i = 0; i < flood_rounds; ++i) {
            auto res = svc.Query(QueryRequest::KnnBatch(heavy, size_t{16}));
            if (res.ok()) {
              served.fetch_add(1, std::memory_order_relaxed);
            } else if (res.status().code() == StatusCode::kResourceExhausted) {
              refused.fetch_add(1, std::memory_order_relaxed);
            } else {
              untyped.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
      for (std::thread& t : pool) t.join();
      const uint64_t issued = served.load() + refused.load() + untyped.load();
      sharded_overload_typed = untyped.load() == 0 && refused.load() > 0;
      sharded_rejection_rate = issued > 0 ? double(refused.load()) / issued : 0;
      char extra[512];
      std::snprintf(extra, sizeof(extra),
                    "\"shards\": %u, \"clients\": %u, \"workers\": 1, "
                    "\"queue\": 2, %s, %s, %s, %s",
                    oopts.num_shards, flooders,
                    Num("served", double(served.load())).c_str(),
                    Num("rejected", double(refused.load())).c_str(),
                    Num("rejection_rate", sharded_rejection_rate).c_str(),
                    sharded_overload_typed ? "\"all_failures_typed\": true"
                                           : "\"all_failures_typed\": false");
      json.Result("sharded_service_overload", extra);
      std::fprintf(stderr,
                   "  overload: %" PRIu64 " served, %" PRIu64
                   " rejected (%.0f%%), %" PRIu64 " untyped\n",
                   served.load(), refused.load(),
                   100.0 * sharded_rejection_rate, untyped.load());
      if (!svc.Close().ok()) sharded_overload_typed = false;
    }
  }

  // ---- chaos_recovery: reader QPS around an injected write fault ----------
  // Durable 3-shard service behind a FaultInjectingEnv.  One reader
  // samples retried query QPS in three phases -- healthy, quarantined
  // (torn-write power loss downed the env; reads ride the pinned stale
  // view), and recovered -- and the time from healing the env to every
  // shard writable again is the headline recovery_ms.
  bool chaos_reads_ok = true;
  bool chaos_healed = false;
  bool chaos_writes_ok = false;
  double chaos_recovery_ms = 0;
  {
    const uint32_t chaos_batches =
        std::max(EnvU32("PMI_TP_CHAOS_BATCHES", 30), 1u);
    const uint64_t chaos_seed = EnvU32("PMI_FAULT_SEED", 20260809);
    const std::vector<ObjectView> cqueries(
        queries.begin(),
        queries.begin() + std::min<size_t>(queries.size(), 32));
    std::fprintf(stderr, "chaos_recovery: n=%u batches/phase=%u seed=%llu\n",
                 n, chaos_batches,
                 static_cast<unsigned long long>(chaos_seed));

    const std::string dir =
        "/tmp/pmi_bench_chaos_" + std::to_string(::getpid());
    RemoveTree(dir);
    FaultInjectingEnv fenv(Env::Default());
    DurabilityOptions dopts;
    dopts.env = &fenv;
    ServiceOptions sopts;
    sopts.num_shards = 3;
    sopts.workers = svc_clients;
    sopts.max_queue = 64;
    sopts.self_heal = true;
    sopts.supervisor.poll_interval_ms = 1;
    sopts.supervisor.initial_backoff_ms = 1;
    sopts.supervisor.max_backoff_ms = 16;
    // The outage is held open for the whole "during" phase; the breaker
    // must not pin the shard mid-measurement, so attempts are
    // effectively unbounded (the 30 s heal cap below bounds the run).
    sopts.supervisor.max_recovery_attempts = 1u << 20;
    sopts.supervisor.seed = chaos_seed;

    auto svc_or =
        ShardedService::CreateDurable(svc_cfg, bd.data, dir, sopts, dopts);
    if (!svc_or.ok()) {
      std::fprintf(stderr, "  chaos: create failed: %s\n",
                   svc_or.status().ToString().c_str());
      chaos_reads_ok = false;
    } else {
      ShardedService& svc = **svc_or;
      RetryPolicy rp;
      rp.max_attempts = 8;
      rp.budget_ms = 4000;
      rp.seed = chaos_seed;

      auto measure_qps = [&](const char* phase) -> double {
        const auto t0 = std::chrono::steady_clock::now();
        uint64_t served = 0;
        for (uint32_t b = 0; b < chaos_batches; ++b) {
          auto res =
              QueryWithRetry(svc, QueryRequest::RangeBatch(cqueries, r), rp);
          if (res.ok()) {
            served += cqueries.size();
          } else {
            chaos_reads_ok = false;
            std::fprintf(stderr, "  chaos %s read failed: %s\n", phase,
                         res.status().ToString().c_str());
          }
        }
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        return s > 0 ? served / s : 0;
      };

      const double qps_before = measure_qps("before");

      // Torn write + power loss a few mutations out; small unretried
      // toggle applies walk the WAL into it.  The env stays down through
      // the "during" phase so the supervisor's recovery attempts keep
      // failing and reads really are served off the pinned view.
      fenv.Arm({FaultKind::kTornWrite, fenv.mutation_count() + 3, chaos_seed});
      std::vector<uint8_t> clive(n, 1);
      for (uint32_t i = 0; i < 1000 && !fenv.triggered(); ++i) {
        const ObjectId id = static_cast<ObjectId>((i * 7919u + 13u) % n);
        (void)svc.Apply({clive[id] != 0 ? UpdateOp::Remove(id)
                                        : UpdateOp::Insert(id)});
        clive[id] ^= 1;
      }
      const bool fault_fired = fenv.triggered();
      if (!fault_fired) {
        std::fprintf(stderr, "  chaos: fault never triggered\n");
        chaos_reads_ok = false;
      }

      const double qps_during = fault_fired ? measure_qps("during") : 0;

      fenv.Arm({FaultKind::kNone, 0, 1});  // heal the env
      const auto t_heal = std::chrono::steady_clock::now();
      while (fault_fired && !AllWritable(svc)) {
        const double waited = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t_heal)
                                  .count();
        if (waited > 30.0) break;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      chaos_healed = fault_fired && AllWritable(svc);
      chaos_recovery_ms = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t_heal)
                              .count() *
                          1e3;

      // A retried write must commit post-recovery (the durable path is
      // genuinely writable again, not just reporting OK).
      {
        std::vector<UpdateOp> ops;
        for (uint32_t i = 0; i < 8; ++i) {
          const ObjectId id = static_cast<ObjectId>((i * 104729u + 7u) % n);
          ops.push_back(clive[id] != 0 ? UpdateOp::Remove(id)
                                       : UpdateOp::Insert(id));
          clive[id] ^= 1;
        }
        auto applied = ApplyWithRetry(svc, ops, rp);
        chaos_writes_ok = applied.ok() && applied->all_ok();
        if (!chaos_writes_ok) {
          std::fprintf(stderr, "  chaos: post-recovery write failed: %s\n",
                       applied.ok()
                           ? applied->Collapse().ToString().c_str()
                           : applied.status().ToString().c_str());
        }
      }

      const double qps_after = chaos_healed ? measure_qps("after") : 0;
      const ShardSupervisor::Stats sup =
          svc.supervisor() ? svc.supervisor()->stats()
                           : ShardSupervisor::Stats{};

      char extra[640];
      std::snprintf(
          extra, sizeof(extra),
          "\"shards\": %u, \"clients\": 1, %s, %s, %s, %s, %s, %s, %s, %s, %s",
          sopts.num_shards, Num("recovery_ms", chaos_recovery_ms).c_str(),
          Num("read_qps_before", qps_before).c_str(),
          Num("read_qps_during", qps_during).c_str(),
          Num("read_qps_after", qps_after).c_str(),
          Num("faults_detected", double(sup.faults_detected)).c_str(),
          Num("recoveries", double(sup.recoveries)).c_str(),
          chaos_reads_ok ? "\"reads_ok\": true" : "\"reads_ok\": false",
          chaos_healed ? "\"healed\": true" : "\"healed\": false",
          chaos_writes_ok ? "\"write_ok\": true" : "\"write_ok\": false");
      json.Result("chaos_recovery", extra);
      std::fprintf(stderr,
                   "  chaos: recovery %.1f ms, reads %.0f -> %.0f -> %.0f "
                   "qps, %" PRIu64 " faults, %" PRIu64 " recoveries%s\n",
                   chaos_recovery_ms, qps_before, qps_during, qps_after,
                   sup.faults_detected, sup.recoveries,
                   chaos_healed ? "" : "  NOT HEALED");
      if (!svc.Close().ok()) chaos_writes_ok = false;
    }
    RemoveTree(dir);
  }

  // ---- buffer_pool: cold vs warm through the unified page cache -----------
  // Disk indexes on one pool big enough to hold every page: the cold
  // pass drops all clean frames first and faults the working set back
  // in; the warm passes must run entirely from residency.  Answers are
  // compared cold vs warm, and the warm physical-read count is the
  // section's hard zero.
  ThreadPool::SetGlobalThreads(1);
  bool pool_match = true;
  bool pool_warm_zero_reads = true;
  std::fprintf(stderr, "buffer_pool: n=%u queries=%u (single-threaded)\n", n,
               num_queries);
  for (const char* pool_index : {"CPT", "SPB-tree"}) {
    IndexOptions popts;
    popts.buffer_pool =
        std::make_shared<BufferPool>(popts.page_size, size_t{1} << 26);
    auto index = MakeIndex(pool_index, popts);
    if (index == nullptr) {
      std::fprintf(stderr, "  %-8s: not in registry\n", pool_index);
      pool_match = false;
      continue;
    }
    index->Build(bd.data, *bd.metric, pivots);

    std::vector<std::vector<ObjectId>> mrq_cold, mrq_warm, mrq_sink;
    std::vector<std::vector<Neighbor>> knn_cold, knn_warm, knn_sink;
    // One untimed priming pass drives the logical LRU simulation to its
    // steady state (its end-of-batch state depends only on the access
    // tail), so every later pass -- cold or warm -- replays identical
    // logical PA and the comparison below is exact.
    index->RangeQueryBatch(queries, r, &mrq_sink);
    index->KnnQueryBatch(queries, k, &knn_sink);
    OpStats cold_mrq, cold_knn;
    double best_cold_mrq = 1e300, best_cold_knn = 1e300;
    for (uint32_t rep = 0; rep < repeats; ++rep) {
      // Build/update write-back leaves frames clean, so this empties
      // the pool of this file's pages without touching the logical sim.
      popts.buffer_pool->DropCleanFrames();
      OpStats s = index->RangeQueryBatch(queries, r, &mrq_sink);
      popts.buffer_pool->DropCleanFrames();
      OpStats sk = index->KnnQueryBatch(queries, k, &knn_sink);
      if (rep == 0) {
        cold_mrq = s;
        cold_knn = sk;
        mrq_cold = mrq_sink;
        knn_cold = knn_sink;
        for (auto& out : mrq_cold) std::sort(out.begin(), out.end());
      }
      best_cold_mrq = std::min(best_cold_mrq, s.seconds);
      best_cold_knn = std::min(best_cold_knn, sk.seconds);
    }

    OpStats warm_mrq, warm_knn;
    double best_warm_mrq = 1e300, best_warm_knn = 1e300;
    uint64_t warm_physical_reads = 0;
    for (uint32_t rep = 0; rep < repeats; ++rep) {
      OpStats s = index->RangeQueryBatch(queries, r, &mrq_sink);
      OpStats sk = index->KnnQueryBatch(queries, k, &knn_sink);
      if (rep == 0) {
        warm_mrq = s;
        warm_knn = sk;
        mrq_warm = mrq_sink;
        knn_warm = knn_sink;
        for (auto& out : mrq_warm) std::sort(out.begin(), out.end());
      }
      warm_physical_reads += s.physical_reads + sk.physical_reads;
      best_warm_mrq = std::min(best_warm_mrq, s.seconds);
      best_warm_knn = std::min(best_warm_knn, sk.seconds);
    }

    const bool match =
        SameResults(mrq_cold, mrq_warm) && SameResults(knn_cold, knn_warm) &&
        cold_mrq.page_accesses() == warm_mrq.page_accesses() &&
        cold_knn.page_accesses() == warm_knn.page_accesses();
    pool_match &= match;
    // The first cold pass must really have gone to the store, and a
    // fully warm pool must never go back.
    pool_warm_zero_reads &=
        cold_mrq.physical_reads > 0 && warm_physical_reads == 0;

    const double mrq_speedup =
        best_warm_mrq > 0 ? best_cold_mrq / best_warm_mrq : 0;
    const double knn_speedup =
        best_warm_knn > 0 ? best_cold_knn / best_warm_knn : 0;
    char extra[768];
    std::snprintf(
        extra, sizeof(extra),
        "\"index\": \"%s\", %s, %s, %s, %s, %s, %s, %s, %s, %s, %s, %s",
        pool_index, Num("mrq_cold_ms", best_cold_mrq * 1e3).c_str(),
        Num("mrq_warm_ms", best_warm_mrq * 1e3).c_str(),
        Num("mrq_warm_speedup", mrq_speedup).c_str(),
        Num("knn_cold_ms", best_cold_knn * 1e3).c_str(),
        Num("knn_warm_ms", best_warm_knn * 1e3).c_str(),
        Num("knn_warm_speedup", knn_speedup).c_str(),
        Num("cold_physical_reads", double(cold_mrq.physical_reads)).c_str(),
        Num("warm_physical_reads", double(warm_physical_reads)).c_str(),
        Num("logical_pa_mrq", double(warm_mrq.page_accesses())).c_str(),
        Num("logical_pa_knn", double(warm_knn.page_accesses())).c_str(),
        match ? "\"match\": true" : "\"match\": false");
    json.Result("buffer_pool", extra);
    std::fprintf(stderr,
                 "  %-8s MRQ %8.2f -> %8.2f ms (%.2fx warm), kNN %8.2f -> "
                 "%8.2f ms (%.2fx), warm phys reads %" PRIu64 "%s\n",
                 pool_index, best_cold_mrq * 1e3, best_warm_mrq * 1e3,
                 mrq_speedup, best_cold_knn * 1e3, best_warm_knn * 1e3,
                 knn_speedup, warm_physical_reads,
                 match ? "" : "  MISMATCH");
  }
  ThreadPool::SetGlobalThreads(0);

  char trailer[1536];
  std::snprintf(
      trailer, sizeof(trailer),
      "  \"config\": {\"dataset\": \"Synthetic\", \"dim\": 20, \"n\": %u, "
      "\"queries\": %u, \"repeats\": %u, \"max_threads\": %u, "
      "\"hardware_threads\": %u, \"batch_blocking_n\": %u},\n"
      "  \"checks\": {\"results_match\": %s, \"compdists_match\": %s, "
      "\"batch_speedup_threads\": %u, \"batch_speedup\": %.3f, "
      "\"batch_blocking_match\": %s, "
      "\"batch_blocking_min_speedup_batch64\": %.3f, "
      "\"concurrent_reads_ok\": %s, "
      "\"sharded_equiv_match\": %s, \"sharded_mixed_ok\": %s, "
      "\"sharded_apply_speedup_4v1\": %.3f, "
      "\"sharded_overload_typed\": %s, \"sharded_rejection_rate\": %.3f, "
      "\"chaos_reads_ok\": %s, \"chaos_healed\": %s, "
      "\"chaos_write_ok\": %s, \"chaos_recovery_ms\": %.3f, "
      "\"pool_match\": %s, \"pool_warm_zero_reads\": %s}",
      n, num_queries, repeats, max_threads,
      std::thread::hardware_concurrency(), batch_n,
      results_match ? "true" : "false", compdists_match ? "true" : "false",
      tracked_threads, tracked_speedup, blocking_match ? "true" : "false",
      blocking_speedup, concurrent_reads_ok ? "true" : "false",
      sharded_equiv_match ? "true" : "false",
      sharded_mixed_ok ? "true" : "false", sharded_apply_speedup,
      sharded_overload_typed ? "true" : "false", sharded_rejection_rate,
      chaos_reads_ok ? "true" : "false", chaos_healed ? "true" : "false",
      chaos_writes_ok ? "true" : "false", chaos_recovery_ms,
      pool_match ? "true" : "false", pool_warm_zero_reads ? "true" : "false");
  json.End(trailer);

  const bool ok = results_match && compdists_match && blocking_match &&
                  concurrent_reads_ok && sharded_equiv_match &&
                  sharded_mixed_ok && sharded_overload_typed &&
                  chaos_reads_ok && chaos_healed && chaos_writes_ok &&
                  pool_match && pool_warm_zero_reads;
  if (!ok) std::fprintf(stderr, "bench_throughput: EQUIVALENCE CHECK FAILED\n");
  return ok ? 0 : 1;
}
