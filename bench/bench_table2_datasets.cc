// Reproduces Table 2: statistics of the datasets used in the experiments
// -- cardinality, dimensionality, intrinsic dimensionality (mu^2/2sigma^2),
// maximum distance, and distance measure -- for the four generated
// stand-in datasets (see DESIGN.md Section 3 for the substitution notes).

#include <cstdio>

#include "src/data/distribution.h"
#include "src/harness/table_printer.h"
#include "src/harness/workload.h"

int main() {
  using namespace pmi;
  BenchConfig config = BenchConfig::FromEnv();
  PrintBanner("Table 2: datasets used in the experiments");
  std::printf("(scaled to %u%% of repo defaults; paper cardinalities in "
              "DESIGN.md)\n\n",
              config.scale_pct);

  TablePrinter table({"Dataset", "Cardinality", "Dim.", "Int. Dim.", "MaxD",
                      "Dis. Measure", "paper Int. Dim."});
  for (BenchDatasetId id : AllBenchDatasets()) {
    uint32_t n = static_cast<uint32_t>(
        uint64_t(DefaultCardinality(id)) * config.scale_pct / 100);
    BenchDataset bd = MakeBenchDataset(id, std::max(n, 500u));
    DistanceDistribution dist =
        EstimateDistribution(bd.data, *bd.metric, 30000, 7);
    std::string dims =
        bd.data.kind() == ObjectKind::kVector
            ? std::to_string(bd.data.dim())
            : std::string("1~34");
    double paper_int_dim = 0;
    switch (id) {
      case BenchDatasetId::kLa: paper_int_dim = 5.4; break;
      case BenchDatasetId::kWords: paper_int_dim = 1.2; break;
      case BenchDatasetId::kColor: paper_int_dim = 6.5; break;
      case BenchDatasetId::kSynthetic: paper_int_dim = 6.6; break;
    }
    table.AddRow({bd.name, FormatCount(bd.data.size()), dims,
                  FormatF(dist.intrinsic_dim, 1), FormatCount(dist.max_distance),
                  bd.metric->name(), FormatF(paper_int_dim, 1)});
  }
  table.Print();
  std::printf(
      "\nNote: Int. Dim. is measured on the generated stand-ins; the paper's\n"
      "values are listed for comparison.  LA's published 5.4 is unattainable\n"
      "for 2-d L2 data (uniform planar data tops out near 2.2); see\n"
      "EXPERIMENTS.md for the discussion.\n");
  return 0;
}
