// google-benchmark micro suite for the hot substrate paths on the metric
// side: the four distance functions the paper's datasets use, the pivot
// mapping, and the filtering lemmas.

#include <benchmark/benchmark.h>

#include "src/core/filtering.h"
#include "src/core/pivot_selection.h"
#include "src/core/pivots.h"
#include "src/data/generators.h"

namespace pmi {
namespace {

void BM_Distance(benchmark::State& state, BenchDatasetId id) {
  BenchDataset bd = MakeBenchDataset(id, 1000, 1);
  Rng rng(7);
  for (auto _ : state) {
    ObjectId a = rng() % bd.data.size();
    ObjectId b = rng() % bd.data.size();
    benchmark::DoNotOptimize(
        bd.metric->Distance(bd.data.view(a), bd.data.view(b)));
  }
}
BENCHMARK_CAPTURE(BM_Distance, L2_2d_LA, BenchDatasetId::kLa);
BENCHMARK_CAPTURE(BM_Distance, Edit_Words, BenchDatasetId::kWords);
BENCHMARK_CAPTURE(BM_Distance, L1_282d_Color, BenchDatasetId::kColor);
BENCHMARK_CAPTURE(BM_Distance, Linf_20d_Synthetic, BenchDatasetId::kSynthetic);

void BM_PivotMapping(benchmark::State& state) {
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 2000, 1);
  PivotSelectionOptions po;
  po.sample_size = 500;
  PerfCounters c;
  DistanceComputer dist(bd.metric.get(), &c);
  PivotSet pivots(bd.data,
                  SelectPivotsHFI(bd.data, dist, state.range(0), po));
  Rng rng(7);
  std::vector<double> phi;
  for (auto _ : state) {
    pivots.Map(bd.data.view(rng() % bd.data.size()), dist, &phi);
    benchmark::DoNotOptimize(phi.data());
  }
}
BENCHMARK(BM_PivotMapping)->Arg(1)->Arg(5)->Arg(9);

void BM_Lemma1Filter(benchmark::State& state) {
  const uint32_t l = static_cast<uint32_t>(state.range(0));
  Rng rng(3);
  std::vector<double> phi_o(l), phi_q(l);
  for (uint32_t i = 0; i < l; ++i) {
    phi_o[i] = double(rng() % 10000);
    phi_q[i] = double(rng() % 10000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PrunedByPivots(phi_o.data(), phi_q.data(), l, 500.0));
  }
}
BENCHMARK(BM_Lemma1Filter)->Arg(1)->Arg(5)->Arg(9);

void BM_PivotSelectionHFI(benchmark::State& state) {
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kLa, 5000, 1);
  PerfCounters c;
  DistanceComputer dist(bd.metric.get(), &c);
  PivotSelectionOptions po;
  po.sample_size = 1000;
  po.pair_sample = 200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SelectPivotsHFI(bd.data, dist, static_cast<uint32_t>(state.range(0)),
                        po));
  }
}
BENCHMARK(BM_PivotSelectionHFI)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pmi

BENCHMARK_MAIN();
