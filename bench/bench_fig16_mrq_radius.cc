// Reproduces Figure 16: MRQ performance (compdists, PA, CPU) of the nine
// figure indexes as the radius selectivity r sweeps {4, 8, 16, 32, 64}%.
// The radius is calibrated so MRQ(q, r) returns that fraction of the
// dataset, matching the paper's definition of r (Section 6.1).

#include <cstdio>

#include "src/harness/registry.h"
#include "src/harness/table_printer.h"
#include "src/harness/workload.h"

int main() {
  using namespace pmi;
  BenchConfig config = BenchConfig::FromEnv();
  const std::vector<double> kSelectivities = {0.04, 0.08, 0.16, 0.32, 0.64};

  for (BenchDatasetId ds : AllBenchDatasets()) {
    Workload w = MakeWorkload(ds, config);
    PrintBanner("Fig 16: MRQ vs radius r -- " + w.bd.name + " (n=" +
                std::to_string(w.data().size()) + ", |P|=5)");
    TablePrinter table({"Index", "Metric", "r=4%", "r=8%", "r=16%", "r=32%",
                        "r=64%"});
    for (const IndexSpec& spec : FigureIndexSpecs()) {
      if (spec.discrete_only && !w.metric().discrete()) continue;
      auto index = spec.make(OptionsFor(spec.name, ds));
      index->Build(w.data(), w.metric(), w.pivots);
      std::vector<std::string> cd = {spec.name, "compdists"};
      std::vector<std::string> pa = {spec.name, "PA"};
      std::vector<std::string> ms = {spec.name, "CPU (ms)"};
      for (double sel : kSelectivities) {
        QueryCost cost = RunMrq(*index, w, w.Radius(sel));
        cd.push_back(FormatCount(cost.compdists));
        pa.push_back(spec.uses_disk ? FormatCount(cost.page_accesses) : "-");
        ms.push_back(FormatMs(cost.cpu_ms));
      }
      table.AddRow(cd);
      table.AddRow(pa);
      table.AddRow(ms);
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper Fig 16): costs grow with r; SPB-tree lowest\n"
      "PA; M-index*/SPB-tree strongest compdists on LA/Words (validation);\n"
      "EPT* strongest on Color; in-memory trees cheapest CPU.\n");
  return 0;
}
