// Ablations for three design choices the paper discusses:
//   1. MVPT arity m -- "as m grows, the pruning ability first increases
//      and then drops" (Section 4.3; the paper settles on m = 5);
//   2. SPB-tree grid resolution -- the SFC discretization trades pruning
//      power for storage (Section 5.4 discussion);
//   3. buffer-pool size -- the 128 KB LRU cache of Section 6.1.

#include <cstdio>

#include "src/harness/registry.h"
#include "src/harness/table_printer.h"
#include "src/harness/workload.h"
#include "src/trees/mvpt.h"
#include "src/external/spb_tree.h"

int main() {
  using namespace pmi;
  BenchConfig config = BenchConfig::FromEnv();

  {
    Workload w = MakeWorkload(BenchDatasetId::kSynthetic, config);
    PrintBanner("Ablation 1: MVPT arity m (Synthetic, MkNNQ k=20, n=" +
                std::to_string(w.data().size()) + ")");
    TablePrinter table({"m", "compdists", "CPU (ms)", "memory"});
    for (uint32_t m : {2u, 3u, 5u, 8u, 13u, 21u}) {
      IndexOptions opts = OptionsFor("MVPT", BenchDatasetId::kSynthetic);
      Mvpt index(opts, m);
      index.Build(w.data(), w.metric(), w.pivots);
      QueryCost cost = RunKnn(index, w, 20);
      table.AddRow({std::to_string(m), FormatCount(cost.compdists),
                    FormatMs(cost.cpu_ms), FormatBytes(index.memory_bytes())});
    }
    table.Print();
    std::printf("Expected: compdists improves then degrades as m grows\n"
                "(fewer levels = fewer pivots on the path); paper picks 5.\n");
  }

  {
    Workload w = MakeWorkload(BenchDatasetId::kLa, config);
    PrintBanner("Ablation 2: SPB-tree bits per dimension (LA, MRQ 16%, n=" +
                std::to_string(w.data().size()) + ")");
    TablePrinter table(
        {"bits/dim", "compdists", "PA", "validated-skip effect", "disk"});
    for (uint32_t bits : {2u, 4u, 6u, 8u, 10u, 12u}) {
      IndexOptions opts = OptionsFor("SPB-tree", BenchDatasetId::kLa);
      opts.spb_bits_per_dim = bits;
      SpbTree index(opts);
      index.Build(w.data(), w.metric(), w.pivots);
      QueryCost cost = RunMrq(index, w, w.Radius(0.16));
      // compdists below result-count means Lemma 4 skipped verifications.
      double skipped = cost.results - cost.compdists;
      table.AddRow({std::to_string(bits), FormatCount(cost.compdists),
                    FormatCount(cost.page_accesses),
                    skipped > 0 ? "+" + FormatCount(skipped) : "0",
                    FormatBytes(index.disk_bytes())});
    }
    table.Print();
    std::printf("Expected: coarse grids weaken Lemma-1/4 (more compdists);\n"
                "fine grids approach exact-distance filtering.\n");
  }

  {
    Workload w = MakeWorkload(BenchDatasetId::kWords, config);
    PrintBanner("Ablation 3: buffer-pool size (SPB-tree, Words, MkNNQ k=20, "
                "n=" + std::to_string(w.data().size()) + ")");
    TablePrinter table({"cache", "PA per query", "CPU (ms)"});
    for (uint32_t kb : {4u, 32u, 128u, 512u, 4096u}) {
      IndexOptions opts = OptionsFor("SPB-tree", BenchDatasetId::kWords);
      opts.cache_bytes = kb * 1024;
      SpbTree index(opts);
      index.Build(w.data(), w.metric(), w.pivots);
      QueryCost cost = RunKnn(index, w, 20);
      table.AddRow({std::to_string(kb) + " KB",
                    FormatCount(cost.page_accesses), FormatMs(cost.cpu_ms)});
    }
    table.Print();
    std::printf("Expected: PA falls as the pool grows (duplicate RAF reads\n"
                "get absorbed); the paper fixes 128 KB for MkNNQ.\n");
  }
  return 0;
}
