// Reproduces Figure 14: EPT vs EPT* MkNNQ performance (CPU time and
// compdists) as k varies over {5, 10, 20, 50, 100}, on all four datasets.
// Expected shape: EPT* below EPT on both metrics (higher-quality PSA
// pivots), at much higher construction cost (see bench_table4).

#include <cstdio>

#include "src/harness/registry.h"
#include "src/harness/table_printer.h"
#include "src/harness/workload.h"

int main() {
  using namespace pmi;
  BenchConfig config = BenchConfig::FromEnv();
  const std::vector<uint32_t> kks = {5, 10, 20, 50, 100};

  for (BenchDatasetId ds : AllBenchDatasets()) {
    Workload w = MakeWorkload(ds, config);
    PrintBanner("Fig 14: EPT vs EPT*, MkNNQ vs k -- " + w.bd.name +
                " (n=" + std::to_string(w.data().size()) + ")");
    TablePrinter table({"Index", "Metric", "k=5", "k=10", "k=20", "k=50",
                        "k=100"});
    for (const char* name : {"EPT", "EPT*"}) {
      auto index = MakeIndex(name, OptionsFor(name, ds));
      index->Build(w.data(), w.metric(), w.pivots);
      std::vector<std::string> cd_row = {name, "compdists"};
      std::vector<std::string> ms_row = {name, "CPU (ms)"};
      for (uint32_t k : kks) {
        QueryCost cost = RunKnn(*index, w, k);
        cd_row.push_back(FormatCount(cost.compdists));
        ms_row.push_back(FormatMs(cost.cpu_ms));
      }
      table.AddRow(cd_row);
      table.AddRow(ms_row);
    }
    table.Print();
  }
  std::printf("\nExpected shape (paper Fig 14): EPT* <= EPT on compdists and\n"
              "CPU across all k and datasets.\n");
  return 0;
}
