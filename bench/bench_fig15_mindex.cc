// Reproduces Figure 15: M-index vs M-index* MkNNQ performance (CPU time,
// compdists, and PA) as k varies, on all four datasets.  Expected shape:
// similar compdists, but the basic M-index pays much higher PA/CPU
// because its incremental-radius MkNNQ re-traverses the index per round
// while M-index* does one best-first pass over cluster MBBs.

#include <cstdio>

#include "src/harness/registry.h"
#include "src/harness/table_printer.h"
#include "src/harness/workload.h"

int main() {
  using namespace pmi;
  BenchConfig config = BenchConfig::FromEnv();
  const std::vector<uint32_t> kks = {5, 10, 20, 50, 100};

  for (BenchDatasetId ds : AllBenchDatasets()) {
    Workload w = MakeWorkload(ds, config);
    PrintBanner("Fig 15: M-index vs M-index*, MkNNQ vs k -- " + w.bd.name +
                " (n=" + std::to_string(w.data().size()) + ")");
    TablePrinter table({"Index", "Metric", "k=5", "k=10", "k=20", "k=50",
                        "k=100"});
    for (const char* name : {"M-index", "M-index*"}) {
      auto index = MakeIndex(name, OptionsFor(name, ds));
      index->Build(w.data(), w.metric(), w.pivots);
      std::vector<std::string> cd = {name, "compdists"};
      std::vector<std::string> pa = {name, "PA"};
      std::vector<std::string> ms = {name, "CPU (ms)"};
      for (uint32_t k : kks) {
        QueryCost cost = RunKnn(*index, w, k);
        cd.push_back(FormatCount(cost.compdists));
        pa.push_back(FormatCount(cost.page_accesses));
        ms.push_back(FormatMs(cost.cpu_ms));
      }
      table.AddRow(cd);
      table.AddRow(pa);
      table.AddRow(ms);
    }
    table.Print();
  }
  std::printf("\nExpected shape (paper Fig 15): M-index* well below M-index\n"
              "on PA and CPU; compdists comparable (both Lemma-1 filter on\n"
              "the same stored distances).\n");
  return 0;
}
