// Reproduces Figure 18: MkNNQ performance (compdists, PA, CPU) as the
// number of pivots |P| sweeps {1, 3, 5, 7, 9}, on LA and Synthetic (the
// datasets the paper uses).  Indexes are rebuilt per |P|; M-index* rows
// appear only for |P| >= 3 (hyperplane partitioning needs two pivots,
// matching the paper's missing series).

#include <cstdio>

#include "src/harness/registry.h"
#include "src/harness/table_printer.h"
#include "src/harness/workload.h"

int main() {
  using namespace pmi;
  BenchConfig config = BenchConfig::FromEnv();
  const std::vector<uint32_t> kPivotCounts = {1, 3, 5, 7, 9};
  const uint32_t k = 20;

  for (BenchDatasetId ds : {BenchDatasetId::kLa, BenchDatasetId::kSynthetic}) {
    // One workload per |P| (pivot selection depends on the count).
    std::vector<Workload> workloads;
    for (uint32_t p : kPivotCounts) {
      workloads.push_back(MakeWorkload(ds, config, p));
    }
    PrintBanner("Fig 18: MkNNQ (k=20) vs |P| -- " + workloads[0].bd.name +
                " (n=" + std::to_string(workloads[0].data().size()) + ")");
    TablePrinter table({"Index", "Metric", "|P|=1", "|P|=3", "|P|=5", "|P|=7",
                        "|P|=9"});
    for (const IndexSpec& spec : FigureIndexSpecs()) {
      if (spec.discrete_only && !workloads[0].metric().discrete()) continue;
      std::vector<std::string> cd = {spec.name, "compdists"};
      std::vector<std::string> pa = {spec.name, "PA"};
      std::vector<std::string> ms = {spec.name, "CPU (ms)"};
      for (size_t i = 0; i < kPivotCounts.size(); ++i) {
        if (kPivotCounts[i] < spec.min_pivots) {
          cd.push_back("-");
          pa.push_back("-");
          ms.push_back("-");
          continue;
        }
        auto index = spec.make(OptionsFor(spec.name, ds));
        index->Build(workloads[i].data(), workloads[i].metric(),
                     workloads[i].pivots);
        QueryCost cost = RunKnn(*index, workloads[i], k);
        cd.push_back(FormatCount(cost.compdists));
        pa.push_back(spec.uses_disk ? FormatCount(cost.page_accesses) : "-");
        ms.push_back(FormatMs(cost.cpu_ms));
      }
      table.AddRow(cd);
      table.AddRow(pa);
      table.AddRow(ms);
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper Fig 18): compdists falls as |P| grows (more\n"
      "pivots = better filtering); PA and CPU first drop then flatten or\n"
      "rise (larger mapped vectors cost I/O); best |P| tracks the\n"
      "intrinsic dimensionality.\n");
  return 0;
}
