// Micro-benchmark for the vectorized pivot-table query engine.  Compares
// the pre-columnar implementations (kept alive here as reference code)
// against the shipping ones on the paper's 20-d synthetic workload:
//
//   table_scan   row-major PrunedByPivots loop  vs  columnar PivotTable
//   kernel       full Distance                  vs  BoundedDistance
//   laesa_range  end-to-end MRQ, pre-PR LAESA   vs  shipping LAESA
//
// Emits one machine-readable JSON document to stdout (progress chatter
// goes to stderr) so successive PRs can track the perf trajectory:
//
//   ./bench_micro_scan | python3 -m json.tool
//
// Environment: PMI_SCAN_N (cardinality, default 20000), PMI_SCAN_QUERIES
// (default 50), PMI_SCAN_REPEATS (timing repeats, best-of, default 3).
// The run self-checks the engine's equivalence claims (same survivors,
// same results, same compdists) and reports them under "checks".

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "src/core/counters.h"
#include "src/core/filtering.h"
#include "src/core/knn_heap.h"
#include "src/core/linear_scan.h"
#include "src/core/pivot_selection.h"
#include "src/core/pivot_table.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/harness/workload.h"
#include "src/tables/laesa.h"

namespace pmi {
namespace {

/// The pre-PR LAESA query path, verbatim: row-major table, branchy
/// per-row Lemma-1 loop, full (non-threshold-aware) verification.
struct RowMajorLaesa {
  const Dataset* data = nullptr;
  const Metric* metric = nullptr;
  const PivotSet* pivots = nullptr;
  std::vector<ObjectId> oids;
  std::vector<double> table;  // row-major rows x |P|
  mutable PerfCounters counters;

  void Build() {
    const uint32_t l = pivots->size();
    DistanceComputer d(metric, &counters);
    std::vector<double> phi;
    table.reserve(size_t(data->size()) * l);
    for (ObjectId id = 0; id < data->size(); ++id) {
      pivots->Map(data->view(id), d, &phi);
      oids.push_back(id);
      table.insert(table.end(), phi.begin(), phi.end());
    }
  }

  void Range(const ObjectView& q, double r, std::vector<ObjectId>* out) const {
    const uint32_t l = pivots->size();
    DistanceComputer d(metric, &counters);
    std::vector<double> phi_q;
    pivots->Map(q, d, &phi_q);
    for (size_t i = 0; i < oids.size(); ++i) {
      if (PrunedByPivots(&table[i * l], phi_q.data(), l, r)) continue;
      if (d(q, data->view(oids[i])) <= r) out->push_back(oids[i]);
    }
  }

  void Knn(const ObjectView& q, size_t k, std::vector<Neighbor>* out) const {
    const uint32_t l = pivots->size();
    DistanceComputer d(metric, &counters);
    std::vector<double> phi_q;
    pivots->Map(q, d, &phi_q);
    KnnHeap heap(k);
    for (size_t i = 0; i < oids.size(); ++i) {
      if (PrunedByPivots(&table[i * l], phi_q.data(), l, heap.radius())) {
        continue;
      }
      heap.Push(oids[i], d(q, data->view(oids[i])));
    }
    heap.TakeSorted(out);
  }
};

struct Timer {
  Stopwatch watch;
  double BestOfMs(uint32_t repeats, const std::function<void()>& fn) {
    double best = 1e300;
    for (uint32_t rep = 0; rep < repeats; ++rep) {
      watch.Restart();
      fn();
      best = std::min(best, watch.Seconds() * 1e3);
    }
    return best;
  }
};

struct JsonWriter {
  bool first = true;
  void Begin() { std::printf("{\n  \"results\": [\n"); }
  void Result(const std::string& name, const std::string& fields) {
    std::printf("%s    {\"name\": \"%s\", %s}", first ? "" : ",\n",
                name.c_str(), fields.c_str());
    first = false;
  }
  void End(const std::string& trailer) {
    std::printf("\n  ],\n%s\n}\n", trailer.c_str());
  }
};

std::string Num(const char* key, double v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6g", key, v);
  return buf;
}

}  // namespace
}  // namespace pmi

int main() {
  using namespace pmi;
  // Floors keep degenerate env values from producing empty datasets or
  // query sets (EnvU32 already rejects garbage with a warning).
  const uint32_t n = std::max(EnvU32("PMI_SCAN_N", 20000), 512u);
  const uint32_t num_queries = std::max(EnvU32("PMI_SCAN_QUERIES", 50), 1u);
  const uint32_t repeats = std::max(EnvU32("PMI_SCAN_REPEATS", 3), 1u);
  const uint32_t kPivots = 5;

  std::fprintf(stderr, "bench_micro_scan: n=%u queries=%u repeats=%u\n", n,
               num_queries, repeats);

  // The acceptance workload: 20-d synthetic integers under L-infinity.
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, n, 7);
  PivotSelectionOptions po;
  po.sample_size = std::min<uint32_t>(n, 1000);
  po.pair_sample = 400;
  PivotSet pivots = SelectSharedPivots(bd.data, *bd.metric, kPivots, po);
  // Selection can return fewer pivots than requested on tiny datasets;
  // everything downstream uses the actual count.
  const uint32_t l = pivots.size();
  DistanceDistribution distribution =
      EstimateDistribution(bd.data, *bd.metric, 4000, 3);

  Rng rng(99);
  std::vector<ObjectId> queries(num_queries);
  for (auto& q : queries) q = rng() % bd.data.size();

  JsonWriter json;
  json.Begin();
  Timer timer;
  bool survivors_match = true, results_match = true, compdists_match = true;

  // -- 1. raw table scan: row-major loop vs columnar blocked scan ------------
  RowMajorLaesa ref;
  ref.data = &bd.data;
  ref.metric = bd.metric.get();
  ref.pivots = &pivots;
  ref.Build();

  PivotTable columnar;
  columnar.Reset(l);
  columnar.Reserve(n);
  for (size_t i = 0; i < ref.oids.size(); ++i) {
    columnar.AppendRow(&ref.table[i * l]);
  }

  {
    PerfCounters scratch;
    DistanceComputer d(bd.metric.get(), &scratch);
    std::vector<double> phi_q;
    std::vector<std::vector<double>> query_phis;
    for (ObjectId q : queries) {
      pivots.Map(bd.data.view(q), d, &phi_q);
      query_phis.push_back(phi_q);
    }
    for (double selectivity : {0.002, 0.01, 0.05}) {
      const double r = distribution.RadiusForSelectivity(selectivity);
      size_t row_major_survivors = 0, columnar_survivors = 0;

      double row_major_ms = timer.BestOfMs(repeats, [&] {
        row_major_survivors = 0;
        for (const auto& pq : query_phis) {
          for (size_t i = 0; i < ref.oids.size(); ++i) {
            row_major_survivors +=
                !PrunedByPivots(&ref.table[i * l], pq.data(), l, r);
          }
        }
      });
      std::vector<uint32_t> surv;
      double columnar_ms = timer.BestOfMs(repeats, [&] {
        columnar_survivors = 0;
        for (const auto& pq : query_phis) {
          surv.clear();
          columnar.RangeScan(pq.data(), r, &surv);
          columnar_survivors += surv.size();
        }
      });
      survivors_match &= row_major_survivors == columnar_survivors;

      char extra[160];
      std::snprintf(extra, sizeof(extra),
                    "\"selectivity\": %g, %s, %s, \"survivors\": %zu",
                    selectivity,
                    Num("row_major_ms", row_major_ms).c_str(),
                    Num("columnar_ms", columnar_ms).c_str(),
                    columnar_survivors);
      json.Result("table_scan", extra);
    }
  }

  // -- 2. distance kernels: full vs threshold-aware --------------------------
  {
    const uint32_t kCalls = 200000;
    std::vector<std::pair<ObjectId, ObjectId>> pairs(kCalls);
    for (auto& p : pairs) {
      p = {ObjectId(rng() % bd.data.size()), ObjectId(rng() % bd.data.size())};
    }
    const double upper = distribution.RadiusForSelectivity(0.01);
    double acc = 0;  // defeats dead-code elimination
    double full_ms = timer.BestOfMs(repeats, [&] {
      for (const auto& [a, b] : pairs) {
        acc += bd.metric->Distance(bd.data.view(a), bd.data.view(b));
      }
    });
    double bounded_ms = timer.BestOfMs(repeats, [&] {
      for (const auto& [a, b] : pairs) {
        acc += bd.metric->BoundedDistance(bd.data.view(a), bd.data.view(b),
                                          upper);
      }
    });
    if (acc == 1e-300) std::fprintf(stderr, "?");
    char extra[200];
    std::snprintf(extra, sizeof(extra),
                  "\"metric\": \"%s\", \"calls\": %u, %s, %s, %s",
                  bd.metric->name().c_str(), kCalls,
                  Num("full_ms", full_ms).c_str(),
                  Num("bounded_ms", bounded_ms).c_str(),
                  Num("upper", upper).c_str());
    json.Result("kernel", extra);
  }

  // -- 3. end-to-end LAESA MRQ: pre-PR reference vs shipping index -----------
  double laesa_speedup = 0;
  {
    Laesa laesa;
    laesa.Build(bd.data, *bd.metric, pivots);

    const double r = distribution.RadiusForSelectivity(0.01);
    std::vector<ObjectId> out_ref, out_new;

    // Correctness + compdists parity first (outside the timed loops).
    for (ObjectId q : queries) {
      ObjectView qv = bd.data.view(q);
      out_ref.clear();
      uint64_t before_ref = ref.counters.dist_computations;
      ref.Range(qv, r, &out_ref);
      uint64_t cd_ref = ref.counters.dist_computations - before_ref;

      out_new.clear();
      OpStats stats = laesa.RangeQuery(qv, r, &out_new);

      std::sort(out_ref.begin(), out_ref.end());
      std::sort(out_new.begin(), out_new.end());
      results_match &= out_ref == out_new;
      compdists_match &= cd_ref == stats.dist_computations;

      // MkNNQ parity: the dynamic scan's per-survivor radius re-check
      // must reproduce the row-by-row loop's verification set exactly.
      std::vector<Neighbor> nn_ref, nn_new;
      before_ref = ref.counters.dist_computations;
      ref.Knn(qv, 10, &nn_ref);
      cd_ref = ref.counters.dist_computations - before_ref;
      stats = laesa.KnnQuery(qv, 10, &nn_new);
      compdists_match &= cd_ref == stats.dist_computations;
      results_match &= nn_ref.size() == nn_new.size();
      for (size_t i = 0; i < nn_ref.size() && i < nn_new.size(); ++i) {
        results_match &= nn_ref[i].dist == nn_new[i].dist;
      }
    }

    std::vector<ObjectId> sink;
    double ref_ms = timer.BestOfMs(repeats, [&] {
      for (ObjectId q : queries) {
        sink.clear();
        ref.Range(bd.data.view(q), r, &sink);
      }
    });
    double new_ms = timer.BestOfMs(repeats, [&] {
      for (ObjectId q : queries) {
        sink.clear();
        laesa.RangeQuery(bd.data.view(q), r, &sink);
      }
    });
    laesa_speedup = new_ms > 0 ? ref_ms / new_ms : 0;

    char extra[200];
    std::snprintf(extra, sizeof(extra), "\"selectivity\": 0.01, %s, %s, %s",
                  Num("row_major_ms", ref_ms).c_str(),
                  Num("columnar_ms", new_ms).c_str(),
                  Num("speedup", laesa_speedup).c_str());
    json.Result("laesa_range", extra);
  }

  char trailer[512];
  std::snprintf(
      trailer, sizeof(trailer),
      "  \"config\": {\"dataset\": \"Synthetic\", \"dim\": 20, \"n\": %u, "
      "\"pivots\": %u, \"queries\": %u, \"repeats\": %u},\n"
      "  \"checks\": {\"survivors_match\": %s, \"results_match\": %s, "
      "\"compdists_match\": %s, \"laesa_range_speedup\": %.3f}",
      n, l, num_queries, repeats, survivors_match ? "true" : "false",
      results_match ? "true" : "false", compdists_match ? "true" : "false",
      laesa_speedup);
  json.End(trailer);

  const bool ok = survivors_match && results_match && compdists_match;
  if (!ok) std::fprintf(stderr, "bench_micro_scan: EQUIVALENCE CHECK FAILED\n");
  return ok ? 0 : 1;
}
