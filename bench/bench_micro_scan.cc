// Micro-benchmark for the vectorized pivot-table query engine.  Compares
// the superseded implementations (kept alive here as reference code)
// against the shipping ones on the paper's 20-d synthetic workload:
//
//   table_scan   row-major PrunedByPivots loop  vs  shipping PivotTable
//   simd_filter  PR-3 f64 columnar filter       vs  f32 SIMD filter,
//                per dispatch level, with filter selectivity and
//                bytes-touched-per-row so bandwidth wins are separable
//                from compute wins
//   kernel       full Distance                  vs  BoundedDistance
//   laesa_range  end-to-end MRQ, pre-PR LAESA   vs  shipping LAESA
//
// Emits one machine-readable JSON document to stdout (progress chatter
// goes to stderr) so successive PRs can track the perf trajectory:
//
//   ./bench_micro_scan | python3 -m json.tool
//
// Environment: PMI_SCAN_N (cardinality, default 20000), PMI_SCAN_QUERIES
// (default 50), PMI_SCAN_REPEATS (timing repeats, best-of, default 3),
// PMI_SIMD (pins the dispatch level the shipping sections run at).
// The run self-checks the engine's equivalence claims (same survivors,
// same results, same compdists, at every supported dispatch level) and
// reports them under "checks".

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "src/core/counters.h"
#include "src/core/filtering.h"
#include "src/core/knn_heap.h"
#include "src/core/linear_scan.h"
#include "src/core/pivot_selection.h"
#include "src/core/pivot_table.h"
#include "src/core/simd.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/harness/workload.h"
#include "src/tables/laesa.h"

namespace pmi {
namespace {

/// The pre-PR LAESA query path, verbatim: row-major table, branchy
/// per-row Lemma-1 loop, full (non-threshold-aware) verification.
struct RowMajorLaesa {
  const Dataset* data = nullptr;
  const Metric* metric = nullptr;
  const PivotSet* pivots = nullptr;
  std::vector<ObjectId> oids;
  std::vector<double> table;  // row-major rows x |P|
  mutable PerfCounters counters;

  void Build() {
    const uint32_t l = pivots->size();
    DistanceComputer d(metric, &counters);
    std::vector<double> phi;
    table.reserve(size_t(data->size()) * l);
    for (ObjectId id = 0; id < data->size(); ++id) {
      pivots->Map(data->view(id), d, &phi);
      oids.push_back(id);
      table.insert(table.end(), phi.begin(), phi.end());
    }
  }

  void Range(const ObjectView& q, double r, std::vector<ObjectId>* out) const {
    const uint32_t l = pivots->size();
    DistanceComputer d(metric, &counters);
    std::vector<double> phi_q;
    pivots->Map(q, d, &phi_q);
    for (size_t i = 0; i < oids.size(); ++i) {
      if (PrunedByPivots(&table[i * l], phi_q.data(), l, r)) continue;
      if (d(q, data->view(oids[i])) <= r) out->push_back(oids[i]);
    }
  }

  void Knn(const ObjectView& q, size_t k, std::vector<Neighbor>* out) const {
    const uint32_t l = pivots->size();
    DistanceComputer d(metric, &counters);
    std::vector<double> phi_q;
    pivots->Map(q, d, &phi_q);
    KnnHeap heap(k);
    for (size_t i = 0; i < oids.size(); ++i) {
      if (PrunedByPivots(&table[i * l], phi_q.data(), l, heap.radius())) {
        continue;
      }
      heap.Push(oids[i], d(q, data->view(oids[i])));
    }
    heap.TakeSorted(out);
  }
};

/// The PR-3 columnar filter, verbatim: blocked double-column MaskSweep +
/// Compact + Refine.  Frozen here as the baseline the f32 SIMD engine is
/// measured against ("filter-throughput improvement over the PR 3
/// baseline").
struct F64ColumnarRef {
  uint32_t l = 0;
  std::vector<std::vector<double>> cols;

  void Build(const std::vector<double>& row_major, uint32_t width) {
    l = width;
    cols.assign(width, {});
    const size_t n = width == 0 ? 0 : row_major.size() / width;
    for (uint32_t p = 0; p < width; ++p) {
      cols[p].resize(n);
      for (size_t i = 0; i < n; ++i) cols[p][i] = row_major[i * width + p];
    }
  }

  size_t rows() const { return l == 0 ? 0 : cols[0].size(); }

  void RangeScan(const double* phi_q, double r,
                 std::vector<uint32_t>* survivors) const {
    constexpr size_t kBlock = 256;
    uint8_t keep[kBlock];
    uint32_t surv[kBlock];
    const size_t n_rows = rows();
    for (size_t base = 0; base < n_rows; base += kBlock) {
      const size_t count = std::min<size_t>(kBlock, n_rows - base);
      const double* __restrict c0 = cols[0].data() + base;
      for (size_t i = 0; i < count; ++i) {
        keep[i] = std::fabs(c0[i] - phi_q[0]) <= r;
      }
      size_t n = 0;
      for (size_t i = 0; i < count; ++i) {
        surv[n] = static_cast<uint32_t>(i);
        n += keep[i];
      }
      for (uint32_t p = 1; p < l && n > 0; ++p) {
        const double* __restrict c = cols[p].data() + base;
        size_t m = 0;
        for (size_t j = 0; j < n; ++j) {
          const uint32_t i = surv[j];
          surv[m] = i;
          m += std::fabs(c[i] - phi_q[p]) <= r;
        }
        n = m;
      }
      for (size_t j = 0; j < n; ++j) {
        survivors->push_back(static_cast<uint32_t>(base) + surv[j]);
      }
    }
  }
};

/// Untimed replay of the exact adaptive cascade, accounting the filter
/// bytes each stage touches -- the bandwidth half of the story.
struct FilterTraffic {
  double bytes_per_row = 0;  // filter bytes / rows scanned
  double selectivity = 0;    // filter survivors / rows
};

// `sweep_cell_bytes` is what the contiguous sweep/AND stages read per
// cell: 4 on the vector levels (f32 filter columns), 8 on the scalar
// level (it works the double columns directly).
FilterTraffic MeasureTraffic(const PivotTable& t,
                             const std::vector<std::vector<double>>& phis,
                             double r, unsigned dense_divisor,
                             size_t sweep_cell_bytes) {
  FilterTraffic ft;
  const uint32_t l = t.width();
  const size_t rows = t.rows();
  if (l == 0 || rows == 0 || phis.empty()) return ft;
  uint64_t bytes = 0, survivors = 0;
  constexpr size_t kBlock = PivotTable::kScanBlock;
  std::vector<uint32_t> surv;
  for (const auto& phi : phis) {
    for (size_t base = 0; base < rows; base += kBlock) {
      const size_t count = std::min<size_t>(kBlock, rows - base);
      // Replays the engine's adaptive cascade byte-for-byte: f32 mask
      // sweeps over the whole block while dense, f64 refines over the
      // survivor list once sparse.  The exact-decision property means
      // the survivor trajectory can be modeled on the double columns.
      surv.clear();
      const double* c0 = t.block_column(0, base);
      bytes += count * sweep_cell_bytes;  // slot-0 sweep
      for (size_t i = 0; i < count; ++i) {
        if (std::fabs(c0[i] - phi[0]) <= r) {
          surv.push_back(static_cast<uint32_t>(i));
        }
      }
      uint32_t p = 1;
      for (; p < l && !surv.empty() && dense_divisor != 0 &&
             surv.size() * dense_divisor >= count;
           ++p) {
        bytes += count * sweep_cell_bytes;  // dense: whole-block mask AND
        const double* c = t.block_column(p, base);
        size_t m = 0;
        for (uint32_t i : surv) {
          surv[m] = i;
          m += std::fabs(c[i] - phi[p]) <= r;
        }
        surv.resize(m);
      }
      for (; p < l && !surv.empty(); ++p) {
        bytes += surv.size() * sizeof(double);  // sparse: f64 survivors
        const double* c = t.block_column(p, base);
        size_t m = 0;
        for (uint32_t i : surv) {
          surv[m] = i;
          m += std::fabs(c[i] - phi[p]) <= r;
        }
        surv.resize(m);
      }
      survivors += surv.size();
    }
  }
  const double scanned = double(rows) * phis.size();
  ft.bytes_per_row = double(bytes) / scanned;
  ft.selectivity = double(survivors) / scanned;
  return ft;
}

struct Timer {
  Stopwatch watch;
  double BestOfMs(uint32_t repeats, const std::function<void()>& fn) {
    double best = 1e300;
    for (uint32_t rep = 0; rep < repeats; ++rep) {
      watch.Restart();
      fn();
      best = std::min(best, watch.Seconds() * 1e3);
    }
    return best;
  }
};

struct JsonWriter {
  bool first = true;
  void Begin() { std::printf("{\n  \"results\": [\n"); }
  void Result(const std::string& name, const std::string& fields) {
    std::printf("%s    {\"name\": \"%s\", %s}", first ? "" : ",\n",
                name.c_str(), fields.c_str());
    first = false;
  }
  void End(const std::string& trailer) {
    std::printf("\n  ],\n%s\n}\n", trailer.c_str());
  }
};

std::string Num(const char* key, double v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6g", key, v);
  return buf;
}

}  // namespace
}  // namespace pmi

int main() {
  using namespace pmi;
  // Floors keep degenerate env values from producing empty datasets or
  // query sets (EnvU32 already rejects garbage with a warning).
  const uint32_t n = std::max(EnvU32("PMI_SCAN_N", 20000), 512u);
  const uint32_t num_queries = std::max(EnvU32("PMI_SCAN_QUERIES", 50), 1u);
  const uint32_t repeats = std::max(EnvU32("PMI_SCAN_REPEATS", 3), 1u);
  const uint32_t kPivots = 5;

  std::fprintf(stderr, "bench_micro_scan: n=%u queries=%u repeats=%u\n", n,
               num_queries, repeats);

  // The acceptance workload: 20-d synthetic integers under L-infinity.
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, n, 7);
  PivotSelectionOptions po;
  po.sample_size = std::min<uint32_t>(n, 1000);
  po.pair_sample = 400;
  PivotSet pivots = SelectSharedPivots(bd.data, *bd.metric, kPivots, po);
  // Selection can return fewer pivots than requested on tiny datasets;
  // everything downstream uses the actual count.
  const uint32_t l = pivots.size();
  DistanceDistribution distribution =
      EstimateDistribution(bd.data, *bd.metric, 4000, 3);

  Rng rng(99);
  std::vector<ObjectId> queries(num_queries);
  for (auto& q : queries) q = rng() % bd.data.size();

  JsonWriter json;
  json.Begin();
  Timer timer;
  bool survivors_match = true, results_match = true, compdists_match = true;

  // -- 1. raw table scan: row-major loop vs columnar blocked scan ------------
  RowMajorLaesa ref;
  ref.data = &bd.data;
  ref.metric = bd.metric.get();
  ref.pivots = &pivots;
  ref.Build();

  PivotTable columnar;
  columnar.Reset(l);
  columnar.Reserve(n);
  for (size_t i = 0; i < ref.oids.size(); ++i) {
    columnar.AppendRow(&ref.table[i * l]);
  }

  std::vector<std::vector<double>> query_phis;
  {
    PerfCounters scratch;
    DistanceComputer d(bd.metric.get(), &scratch);
    std::vector<double> phi_q;
    for (ObjectId q : queries) {
      pivots.Map(bd.data.view(q), d, &phi_q);
      query_phis.push_back(phi_q);
    }
    for (double selectivity : {0.002, 0.01, 0.05}) {
      const double r = distribution.RadiusForSelectivity(selectivity);
      size_t row_major_survivors = 0, columnar_survivors = 0;

      double row_major_ms = timer.BestOfMs(repeats, [&] {
        row_major_survivors = 0;
        for (const auto& pq : query_phis) {
          for (size_t i = 0; i < ref.oids.size(); ++i) {
            row_major_survivors +=
                !PrunedByPivots(&ref.table[i * l], pq.data(), l, r);
          }
        }
      });
      std::vector<uint32_t> surv;
      double columnar_ms = timer.BestOfMs(repeats, [&] {
        columnar_survivors = 0;
        for (const auto& pq : query_phis) {
          surv.clear();
          columnar.RangeScan(pq.data(), r, &surv);
          columnar_survivors += surv.size();
        }
      });
      survivors_match &= row_major_survivors == columnar_survivors;

      char extra[160];
      std::snprintf(extra, sizeof(extra),
                    "\"selectivity\": %g, %s, %s, \"survivors\": %zu",
                    selectivity,
                    Num("row_major_ms", row_major_ms).c_str(),
                    Num("columnar_ms", columnar_ms).c_str(),
                    columnar_survivors);
      json.Result("table_scan", extra);
    }
  }

  // -- 1b. f32 SIMD filter vs the PR-3 f64 columnar filter, per level --------
  // The f64 reference produces the exact survivor set directly; the
  // shipping engine produces it via the f32 superset + double re-check.
  // Both are timed end-to-end (exact survivors out), so the speedup is
  // the honest filter-throughput ratio.  Selectivity and bytes-per-row
  // ride along so bandwidth wins are separable from compute wins.
  double simd_best_speedup = 0;
  bool simd_levels_match = true;
  {
    const char* prev_env = std::getenv("PMI_SIMD");
    const std::string saved = prev_env ? prev_env : "";
    // Two vector workloads: the paper's default pivot count and a wide
    // table (more refine stages -- where the lane-parallel mask path
    // pulls furthest ahead of the per-survivor cascade).
    for (uint32_t num_pivots : {l, 16u}) {
      PivotSet wl_pivots =
          num_pivots == l
              ? pivots
              : SelectSharedPivots(bd.data, *bd.metric, num_pivots, po);
      PivotTable wl_table;
      wl_table.Reset(wl_pivots.size());
      F64ColumnarRef f64;
      std::vector<std::vector<double>> wl_phis;
      {
        PerfCounters scratch;
        DistanceComputer d(bd.metric.get(), &scratch);
        std::vector<double> phi;
        std::vector<double> row_major;
        for (ObjectId id = 0; id < bd.data.size(); ++id) {
          wl_pivots.Map(bd.data.view(id), d, &phi);
          row_major.insert(row_major.end(), phi.begin(), phi.end());
          wl_table.AppendRow(phi.data());
        }
        f64.Build(row_major, wl_pivots.size());
        for (ObjectId q : queries) {
          wl_pivots.Map(bd.data.view(q), d, &phi);
          wl_phis.push_back(phi);
        }
      }
      for (double selectivity : {0.002, 0.01, 0.05}) {
        const double r = distribution.RadiusForSelectivity(selectivity);
        std::vector<uint32_t> surv;
        size_t f64_survivors = 0;
        const double f64_ms = timer.BestOfMs(repeats, [&] {
          f64_survivors = 0;
          for (const auto& pq : wl_phis) {
            surv.clear();
            f64.RangeScan(pq.data(), r, &surv);
            f64_survivors += surv.size();
          }
        });
        for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kNeon,
                                SimdLevel::kAvx2, SimdLevel::kAvx512}) {
          if (!SimdLevelSupported(level)) continue;
          setenv("PMI_SIMD", SimdLevelName(level), 1);
          ReinitSimdDispatch();
          const FilterTraffic traffic = MeasureTraffic(
              wl_table, wl_phis, r, SimdDispatch().dense_divisor,
              SimdDispatch().level == SimdLevel::kScalar ? sizeof(double)
                                                         : sizeof(float));
          size_t level_survivors = 0;
          const double level_ms = timer.BestOfMs(repeats, [&] {
            level_survivors = 0;
            for (const auto& pq : wl_phis) {
              surv.clear();
              wl_table.RangeScan(pq.data(), r, &surv);
              level_survivors += surv.size();
            }
          });
          simd_levels_match &= level_survivors == f64_survivors;
          const double speedup = level_ms > 0 ? f64_ms / level_ms : 0;
          const double rows_per_sec =
              level_ms > 0 ? double(wl_table.rows()) * wl_phis.size() /
                                 (level_ms / 1e3)
                           : 0;
          simd_best_speedup = std::max(simd_best_speedup, speedup);
          char extra[420];
          std::snprintf(
              extra, sizeof(extra),
              "\"level\": \"%s\", \"pivots\": %u, \"selectivity\": %g, %s, "
              "%s, %s, %s, %s, %s",
              SimdLevelName(level), wl_pivots.size(), selectivity,
              Num("f64_ms", f64_ms).c_str(), Num("ms", level_ms).c_str(),
              Num("speedup_vs_f64", speedup).c_str(),
              Num("rows_per_sec", rows_per_sec).c_str(),
              Num("filter_selectivity", traffic.selectivity).c_str(),
              Num("filter_bytes_per_row", traffic.bytes_per_row).c_str());
          json.Result("simd_filter", extra);
        }
      }
    }
    if (saved.empty()) {
      unsetenv("PMI_SIMD");
    } else {
      setenv("PMI_SIMD", saved.c_str(), 1);
    }
    ReinitSimdDispatch();
  }

  // -- 2. distance kernels: full vs threshold-aware --------------------------
  {
    const uint32_t kCalls = 200000;
    std::vector<std::pair<ObjectId, ObjectId>> pairs(kCalls);
    for (auto& p : pairs) {
      p = {ObjectId(rng() % bd.data.size()), ObjectId(rng() % bd.data.size())};
    }
    const double upper = distribution.RadiusForSelectivity(0.01);
    double acc = 0;  // defeats dead-code elimination
    double full_ms = timer.BestOfMs(repeats, [&] {
      for (const auto& [a, b] : pairs) {
        acc += bd.metric->Distance(bd.data.view(a), bd.data.view(b));
      }
    });
    double bounded_ms = timer.BestOfMs(repeats, [&] {
      for (const auto& [a, b] : pairs) {
        acc += bd.metric->BoundedDistance(bd.data.view(a), bd.data.view(b),
                                          upper);
      }
    });
    if (acc == 1e-300) std::fprintf(stderr, "?");
    char extra[200];
    std::snprintf(extra, sizeof(extra),
                  "\"metric\": \"%s\", \"calls\": %u, %s, %s, %s",
                  bd.metric->name().c_str(), kCalls,
                  Num("full_ms", full_ms).c_str(),
                  Num("bounded_ms", bounded_ms).c_str(),
                  Num("upper", upper).c_str());
    json.Result("kernel", extra);
  }

  // -- 3. end-to-end LAESA MRQ: pre-PR reference vs shipping index -----------
  double laesa_speedup = 0;
  {
    Laesa laesa;
    laesa.Build(bd.data, *bd.metric, pivots);

    const double r = distribution.RadiusForSelectivity(0.01);
    std::vector<ObjectId> out_ref, out_new;

    // Correctness + compdists parity first (outside the timed loops).
    for (ObjectId q : queries) {
      ObjectView qv = bd.data.view(q);
      out_ref.clear();
      uint64_t before_ref = ref.counters.dist_computations;
      ref.Range(qv, r, &out_ref);
      uint64_t cd_ref = ref.counters.dist_computations - before_ref;

      out_new.clear();
      OpStats stats = laesa.RangeQuery(qv, r, &out_new);

      std::sort(out_ref.begin(), out_ref.end());
      std::sort(out_new.begin(), out_new.end());
      results_match &= out_ref == out_new;
      compdists_match &= cd_ref == stats.dist_computations;

      // MkNNQ parity: the dynamic scan's per-survivor radius re-check
      // must reproduce the row-by-row loop's verification set exactly.
      std::vector<Neighbor> nn_ref, nn_new;
      before_ref = ref.counters.dist_computations;
      ref.Knn(qv, 10, &nn_ref);
      cd_ref = ref.counters.dist_computations - before_ref;
      stats = laesa.KnnQuery(qv, 10, &nn_new);
      compdists_match &= cd_ref == stats.dist_computations;
      results_match &= nn_ref.size() == nn_new.size();
      for (size_t i = 0; i < nn_ref.size() && i < nn_new.size(); ++i) {
        results_match &= nn_ref[i].dist == nn_new[i].dist;
      }
    }

    std::vector<ObjectId> sink;
    double ref_ms = timer.BestOfMs(repeats, [&] {
      for (ObjectId q : queries) {
        sink.clear();
        ref.Range(bd.data.view(q), r, &sink);
      }
    });
    double new_ms = timer.BestOfMs(repeats, [&] {
      for (ObjectId q : queries) {
        sink.clear();
        laesa.RangeQuery(bd.data.view(q), r, &sink);
      }
    });
    laesa_speedup = new_ms > 0 ? ref_ms / new_ms : 0;

    char extra[200];
    std::snprintf(extra, sizeof(extra), "\"selectivity\": 0.01, %s, %s, %s",
                  Num("row_major_ms", ref_ms).c_str(),
                  Num("columnar_ms", new_ms).c_str(),
                  Num("speedup", laesa_speedup).c_str());
    json.Result("laesa_range", extra);
  }

  char trailer[768];
  std::snprintf(
      trailer, sizeof(trailer),
      "  \"config\": {\"dataset\": \"Synthetic\", \"dim\": 20, \"n\": %u, "
      "\"pivots\": %u, \"queries\": %u, \"repeats\": %u, \"simd\": \"%s\"},\n"
      "  \"checks\": {\"survivors_match\": %s, \"results_match\": %s, "
      "\"compdists_match\": %s, \"simd_levels_match\": %s, "
      "\"laesa_range_speedup\": %.3f, \"simd_best_speedup_vs_f64\": %.3f}",
      n, l, num_queries, repeats, SimdLevelName(SimdLevelInUse()),
      survivors_match ? "true" : "false", results_match ? "true" : "false",
      compdists_match ? "true" : "false",
      simd_levels_match ? "true" : "false", laesa_speedup,
      simd_best_speedup);
  json.End(trailer);

  const bool ok =
      survivors_match && results_match && compdists_match && simd_levels_match;
  if (!ok) std::fprintf(stderr, "bench_micro_scan: EQUIVALENCE CHECK FAILED\n");
  return ok ? 0 : 1;
}
