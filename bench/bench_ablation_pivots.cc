// Ablation: pivot selection strategy.
//
// The paper's central methodological claim (Section 1) is that pivot
// selection dominates query performance, which is why all indexes are
// compared under the shared HFI strategy.  This ablation quantifies the
// claim on our substrate: the same index (LAESA: pure Lemma-1 filtering,
// so compdists isolate pivot quality) under random, HF, and HFI pivots.

#include <cstdio>

#include "src/core/pivot_selection.h"
#include "src/harness/registry.h"
#include "src/harness/table_printer.h"
#include "src/harness/workload.h"

int main() {
  using namespace pmi;
  BenchConfig config = BenchConfig::FromEnv();

  for (BenchDatasetId ds : AllBenchDatasets()) {
    Workload w = MakeWorkload(ds, config);
    PrintBanner("Ablation: pivot selection strategy (LAESA, MkNNQ k=20) -- " +
                w.bd.name + " (n=" + std::to_string(w.data().size()) + ")");
    TablePrinter table({"Strategy", "kNN compdists", "MRQ(16%) compdists",
                        "kNN CPU (ms)"});
    PerfCounters scratch;
    DistanceComputer dc(&w.metric(), &scratch);
    PivotSelectionOptions po;
    po.sample_size = std::min(w.data().size(), 2000u);
    Rng rng(99);

    for (const char* strategy : {"random", "HF", "HFI"}) {
      std::vector<ObjectId> ids;
      if (std::string(strategy) == "random") {
        ids = SelectPivotsRandom(w.data(), 5, rng);
      } else if (std::string(strategy) == "HF") {
        ids = SelectPivotsHF(w.data(), dc, 5, po);
      } else {
        ids = SelectPivotsHFI(w.data(), dc, 5, po);
      }
      PivotSet pivots(w.data(), ids);
      auto index = MakeIndex("LAESA", OptionsFor("LAESA", ds));
      index->Build(w.data(), w.metric(), pivots);
      QueryCost knn;
      QueryCost mrq;
      std::vector<Neighbor> nn;
      std::vector<ObjectId> out;
      for (ObjectId qid : w.query_ids) {
        OpStats s = index->KnnQuery(w.data().view(qid), 20, &nn);
        knn.Accumulate(s, nn.size());
        OpStats t = index->RangeQuery(w.data().view(qid), w.Radius(0.16),
                                      &out);
        mrq.Accumulate(t, out.size());
      }
      knn.FinishAverage(w.query_ids.size());
      mrq.FinishAverage(w.query_ids.size());
      table.AddRow({strategy, FormatCount(knn.compdists),
                    FormatCount(mrq.compdists), FormatMs(knn.cpu_ms)});
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape: HFI <= HF <= random on compdists (the premise of\n"
      "the paper's equal-footing methodology; HF picks outliers, HFI picks\n"
      "outliers that maximize metric/pivot-space similarity).\n");
  return 0;
}
