// Reproduces Table 6 (update costs) and the derived Table 7 rankings.
// An update is the paper's operation: delete a random object, insert it
// back; costs are averaged per update pair.

#include <cstdio>
#include <map>

#include "src/core/rng.h"
#include "src/harness/registry.h"
#include "src/harness/table_printer.h"
#include "src/harness/workload.h"

int main() {
  using namespace pmi;
  BenchConfig config = BenchConfig::FromEnv();
  const uint32_t kUpdates = config.quick ? 5 : 20;

  const std::vector<std::string> kOrder = {
      "LAESA",   "EPT",        "EPT*",     "CPT",      "BKT",
      "FQT",     "MVPT",       "PM-tree",  "OmniSeq",  "OmniB+tree",
      "OmniR-tree", "M-index", "M-index*", "SPB-tree", "EPT*-disk"};

  std::map<std::string, std::map<std::string, double>> rank_time, rank_pa,
      rank_cd;

  for (BenchDatasetId ds : AllBenchDatasets()) {
    Workload w = MakeWorkload(ds, config);
    PrintBanner("Table 6: update costs -- " + w.bd.name + " (n=" +
                std::to_string(w.data().size()) + ", " +
                std::to_string(kUpdates) + " delete+insert pairs)");
    TablePrinter table({"Index", "PA", "Compdists", "Time (ms)"});
    for (const std::string& name : kOrder) {
      const IndexSpec* spec = FindIndexSpec(name);
      if (spec == nullptr) continue;
      if (spec->discrete_only && !w.metric().discrete()) {
        table.AddRow({name, "-", "-", "-"});
        continue;
      }
      auto index = spec->make(OptionsFor(name, ds));
      index->Build(w.data(), w.metric(), w.pivots);
      Rng rng(0xdead);
      OpStats total;
      for (uint32_t u = 0; u < kUpdates; ++u) {
        ObjectId victim = rng() % w.data().size();
        total += index->Remove(victim);
        total += index->Insert(victim);
      }
      double pa = double(total.page_accesses()) / kUpdates;
      double cd = double(total.dist_computations) / kUpdates;
      double ms = total.seconds * 1000.0 / kUpdates;
      table.AddRow({name, spec->uses_disk ? FormatF(pa, 1) : "-",
                    FormatCount(cd), FormatMs(ms)});
      rank_time[w.bd.name][name] = ms;
      rank_cd[w.bd.name][name] = cd;
      if (spec->uses_disk) rank_pa[w.bd.name][name] = pa;
    }
    table.Print();
  }

  PrintBanner("Table 7: ranking according to update costs");
  for (const auto& [ds, scores] : rank_pa) {
    PrintRanking("PA        (" + ds + ")", {scores.begin(), scores.end()});
  }
  for (const auto& [ds, scores] : rank_cd) {
    PrintRanking("Compdists (" + ds + ")", {scores.begin(), scores.end()});
  }
  for (const auto& [ds, scores] : rank_time) {
    PrintRanking("Time      (" + ds + ")", {scores.begin(), scores.end()});
  }
  std::printf(
      "\nExpected shape (paper): BKT/FQT/MVPT fastest (memory trees);\n"
      "SPB-tree best PA among disk indexes; PM-tree/CPT costly (objects in\n"
      "tree); EPT worst compdists (re-estimates pivot means per insert).\n");
  return 0;
}
