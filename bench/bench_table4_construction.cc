// Reproduces Table 4 (construction costs and storage sizes) and the
// derived Table 5 rankings, for every surveyed index on all four
// datasets.  Columns mirror the paper: PA, compdists, time, storage
// (I = main memory, D = disk).

#include <cstdio>
#include <map>
#include <memory>

#include "src/harness/registry.h"
#include "src/harness/table_printer.h"
#include "src/harness/workload.h"

int main() {
  using namespace pmi;
  BenchConfig config = BenchConfig::FromEnv();

  // Paper Table 4 order; OmniSeq / OmniB+tree are repo extras (the paper
  // discusses them but tabulates only the OmniR-tree).
  const std::vector<std::string> kOrder = {
      "LAESA",   "EPT",        "EPT*",       "CPT",      "BKT",
      "FQT",     "MVPT",       "PM-tree",    "OmniSeq",  "OmniB+tree",
      "OmniR-tree", "M-index", "M-index*",   "SPB-tree", "EPT*-disk"};

  std::map<std::string, std::map<std::string, double>> rank_time;
  std::map<std::string, std::map<std::string, double>> rank_pa;
  std::map<std::string, std::map<std::string, double>> rank_cd;
  std::map<std::string, std::map<std::string, double>> rank_storage;

  for (BenchDatasetId ds : AllBenchDatasets()) {
    Workload w = MakeWorkload(ds, config);
    PrintBanner("Table 4: construction cost and storage -- " + w.bd.name +
                " (n=" + std::to_string(w.data().size()) + ", |P|=5)");
    TablePrinter table(
        {"Index", "PA", "Compdists", "Time (s)", "Storage (I)", "Storage (D)"});
    for (const std::string& name : kOrder) {
      const IndexSpec* spec = FindIndexSpec(name);
      if (spec == nullptr) continue;
      bool discrete = w.metric().discrete();
      if (spec->discrete_only && !discrete) {
        table.AddRow({name, "-", "-", "-", "-", "-"});
        continue;
      }
      auto index = spec->make(OptionsFor(name, ds));
      OpStats s = index->Build(w.data(), w.metric(), w.pivots);
      table.AddRow({name,
                    spec->uses_disk ? FormatCount(double(s.page_accesses()))
                                    : "-",
                    FormatCount(double(s.dist_computations)),
                    FormatF(s.seconds, 2), FormatBytes(index->memory_bytes()),
                    spec->uses_disk ? FormatBytes(index->disk_bytes()) : "-"});
      rank_time[w.bd.name][name] = s.seconds;
      rank_cd[w.bd.name][name] = double(s.dist_computations);
      if (spec->uses_disk) {
        rank_pa[w.bd.name][name] = double(s.page_accesses());
      }
      rank_storage[w.bd.name][name] =
          double(index->memory_bytes() + index->disk_bytes());
    }
    table.Print();
  }

  PrintBanner("Table 5: ranking according to construction and storage costs");
  for (const auto& [ds, scores] : rank_pa) {
    PrintRanking("PA        (" + ds + ")", {scores.begin(), scores.end()});
  }
  for (const auto& [ds, scores] : rank_cd) {
    PrintRanking("Compdists (" + ds + ")", {scores.begin(), scores.end()});
  }
  for (const auto& [ds, scores] : rank_time) {
    PrintRanking("Time      (" + ds + ")", {scores.begin(), scores.end()});
  }
  for (const auto& [ds, scores] : rank_storage) {
    PrintRanking("Storage   (" + ds + ")", {scores.begin(), scores.end()});
  }
  std::printf(
      "\nExpected shape (paper): SPB-tree lowest PA; pivot-based trees +\n"
      "LAESA cheapest to build; EPT* most expensive (PSA); CPT/PM-tree\n"
      "largest storage (objects stored inside tree nodes).\n");
  return 0;
}
