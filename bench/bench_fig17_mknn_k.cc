// Reproduces Figure 17: MkNNQ performance (compdists, PA, CPU) of the
// nine figure indexes as k sweeps {5, 10, 20, 50, 100}.

#include <cstdio>

#include "src/harness/registry.h"
#include "src/harness/table_printer.h"
#include "src/harness/workload.h"

int main() {
  using namespace pmi;
  BenchConfig config = BenchConfig::FromEnv();
  const std::vector<uint32_t> kks = {5, 10, 20, 50, 100};

  for (BenchDatasetId ds : AllBenchDatasets()) {
    Workload w = MakeWorkload(ds, config);
    PrintBanner("Fig 17: MkNNQ vs k -- " + w.bd.name + " (n=" +
                std::to_string(w.data().size()) + ", |P|=5)");
    TablePrinter table({"Index", "Metric", "k=5", "k=10", "k=20", "k=50",
                        "k=100"});
    for (const IndexSpec& spec : FigureIndexSpecs()) {
      if (spec.discrete_only && !w.metric().discrete()) continue;
      auto index = spec.make(OptionsFor(spec.name, ds));
      index->Build(w.data(), w.metric(), w.pivots);
      std::vector<std::string> cd = {spec.name, "compdists"};
      std::vector<std::string> pa = {spec.name, "PA"};
      std::vector<std::string> ms = {spec.name, "CPU (ms)"};
      for (uint32_t k : kks) {
        QueryCost cost = RunKnn(*index, w, k);
        cd.push_back(FormatCount(cost.compdists));
        pa.push_back(spec.uses_disk ? FormatCount(cost.page_accesses) : "-");
        ms.push_back(FormatMs(cost.cpu_ms));
      }
      table.AddRow(cd);
      table.AddRow(pa);
      table.AddRow(ms);
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper Fig 17): costs grow with k; EPT*/PM-tree\n"
      "lowest compdists on Color/Words; trees highest compdists but lowest\n"
      "CPU; SPB-tree best PA.\n");
  return 0;
}
