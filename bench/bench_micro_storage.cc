// google-benchmark micro suite for the storage substrates: Hilbert
// encode/decode, B+-tree insert/scan, R-tree bulk load, and buffer-pool
// read paths.

#include <benchmark/benchmark.h>

#include "src/core/rng.h"
#include "src/storage/bptree.h"
#include "src/storage/hilbert.h"
#include "src/storage/paged_file.h"
#include "src/storage/rtree.h"

namespace pmi {
namespace {

void BM_HilbertEncode(benchmark::State& state) {
  const uint32_t dims = static_cast<uint32_t>(state.range(0));
  HilbertCurve h(dims, HilbertCurve::AutoBits(dims));
  Rng rng(5);
  std::vector<uint32_t> coords(dims);
  for (auto& c : coords) c = rng() % (h.max_coord() + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Encode(coords.data()));
  }
}
BENCHMARK(BM_HilbertEncode)->Arg(2)->Arg(5)->Arg(9);

void BM_HilbertDecode(benchmark::State& state) {
  const uint32_t dims = static_cast<uint32_t>(state.range(0));
  HilbertCurve h(dims, HilbertCurve::AutoBits(dims));
  std::vector<uint32_t> coords(dims);
  uint64_t key = 0xDEADBEEF % (1ull << (dims * h.bits()));
  for (auto _ : state) {
    h.Decode(key, coords.data());
    benchmark::DoNotOptimize(coords.data());
  }
}
BENCHMARK(BM_HilbertDecode)->Arg(2)->Arg(5)->Arg(9);

void BM_BPlusTreeInsert(benchmark::State& state) {
  PerfCounters c;
  PagedFile file(4096, 128 * 1024, &c);
  BPlusTree tree(&file, 16);
  Rng rng(11);
  char value[16] = {0};
  for (auto _ : state) {
    tree.Insert(rng(), value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeInsert);

void BM_BPlusTreeScan(benchmark::State& state) {
  PerfCounters c;
  PagedFile file(4096, 1024 * 1024, &c);
  BPlusTree tree(&file, 16);
  std::vector<std::pair<uint64_t, std::vector<char>>> entries;
  for (uint32_t i = 0; i < 100000; ++i) {
    entries.emplace_back(i, std::vector<char>(16, 0));
  }
  tree.BulkLoad(entries);
  Rng rng(13);
  for (auto _ : state) {
    uint64_t lo = rng() % 90000;
    size_t seen = 0;
    tree.Scan(lo, lo + 1000, [&](uint64_t, const char*) {
      ++seen;
      return true;
    });
    benchmark::DoNotOptimize(seen);
  }
}
BENCHMARK(BM_BPlusTreeScan);

void BM_RTreeBulkLoad(benchmark::State& state) {
  Rng rng(17);
  std::vector<RTree::LeafEntry> entries(
      static_cast<size_t>(state.range(0)));
  for (uint32_t i = 0; i < entries.size(); ++i) {
    entries[i].oid = i;
    entries[i].point = {float(rng() % 10000), float(rng() % 10000),
                        float(rng() % 10000), float(rng() % 10000),
                        float(rng() % 10000)};
  }
  for (auto _ : state) {
    PerfCounters c;
    PagedFile file(4096, 128 * 1024, &c);
    RTree tree(&file, 5);
    auto copy = entries;
    tree.BulkLoad(std::move(copy));
    benchmark::DoNotOptimize(tree.root());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_BufferPoolHitVsMiss(benchmark::State& state) {
  const bool fits = state.range(0) != 0;
  PerfCounters c;
  PagedFile file(4096, fits ? 64 * 4096 : 4 * 4096, &c);
  std::vector<PageId> pages;
  for (int i = 0; i < 32; ++i) {
    PageId p = file.Allocate();
    file.Write(p, false);
    pages.push_back(p);
  }
  file.Flush();
  Rng rng(19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(file.Read(pages[rng() % pages.size()]));
  }
  state.counters["page_reads"] =
      benchmark::Counter(double(c.page_reads), benchmark::Counter::kDefaults);
}
BENCHMARK(BM_BufferPoolHitVsMiss)->Arg(0)->Arg(1);

}  // namespace
}  // namespace pmi

BENCHMARK_MAIN();
