#!/usr/bin/env python3
"""Compare a fresh benchmark JSON against a checked-in baseline.

Usage: tools/bench_delta.py BASELINE.json FRESH.json

Matches result entries by their identity fields (name + level / pivots /
selectivity / threads / batch -- whatever the entry carries) and reports
the ratio of every shared timing field (...ms, ...qps).  The output is a
human-readable delta table for the CI log.

This is a *warn-only* tool: CI hardware is noisy shared infrastructure,
so regressions are reported, never enforced -- the checked-in baselines
(BENCH_scan.json / BENCH_throughput.json) exist to make the perf
trajectory visible across PRs, not to gate them.  The exit code is 0
unless an input file is missing or unparsable (a broken bench emitting
garbage JSON should fail the step).
"""

import json
import sys

IDENTITY_KEYS = ("name", "index", "level", "pivots", "selectivity",
                 "threads", "batch", "metric", "dataset", "shards",
                 "clients")
WARN_RATIO = 1.15  # flag slowdowns beyond this; below is likely noise


def identity(entry):
    return tuple((k, entry[k]) for k in IDENTITY_KEYS if k in entry)


def timing_fields(entry):
    for key, value in entry.items():
        if not isinstance(value, (int, float)):
            continue
        if key.endswith("ms") or "qps" in key or key.endswith("per_sec"):
            yield key, float(value)


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            baseline = json.load(f)
        with open(argv[2]) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_delta: cannot read inputs: {e}", file=sys.stderr)
        return 1

    base_by_id = {identity(e): e for e in baseline.get("results", [])}
    warned = 0
    compared = 0
    for entry in fresh.get("results", []):
        base = base_by_id.get(identity(entry))
        if base is None:
            continue
        label = " ".join(f"{k}={v}" for k, v in identity(entry))
        for key, value in timing_fields(entry):
            if key not in base or not isinstance(base[key], (int, float)):
                continue
            old = float(base[key])
            if old <= 0 or value <= 0:
                continue
            compared += 1
            # For *ms lower is better; for qps/per_sec higher is better.
            slower = (value / old) if (key.endswith("ms")) else (old / value)
            flag = ""
            if slower > WARN_RATIO:
                flag = f"  <-- WARNING: {slower:.2f}x slower than baseline"
                warned += 1
            elif slower < 1 / WARN_RATIO:
                flag = f"  ({1 / slower:.2f}x faster)"
            print(f"{label} {key}: baseline={old:.4g} now={value:.4g}{flag}")

    if compared == 0:
        print("bench_delta: no comparable entries (baseline schema changed?)")
    elif warned:
        print(f"bench_delta: {warned}/{compared} timings exceed the "
              f"{WARN_RATIO}x noise threshold (warn-only, see above)")
    else:
        print(f"bench_delta: {compared} timings within noise of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
