// Harness tests: workload construction, radius-for-selectivity
// calibration, cost averaging, the registry, and table formatting.

#include <cstdlib>

#include <gtest/gtest.h>

#include "src/core/linear_scan.h"
#include "src/harness/registry.h"
#include "src/harness/table_printer.h"
#include "src/harness/workload.h"

namespace pmi {
namespace {

TEST(RegistryTest, ContainsAllSurveyedIndexes) {
  // Table 1 of the paper plus the two enhanced variants and AESA.
  for (const char* name :
       {"AESA", "LAESA", "EPT", "EPT*", "CPT", "BKT", "FQT", "FQA", "VPT",
        "MVPT", "PM-tree", "OmniSeq", "OmniB+tree", "OmniR-tree", "M-index",
        "M-index*", "SPB-tree"}) {
    const IndexSpec* spec = FindIndexSpec(name);
    ASSERT_NE(spec, nullptr) << name;
    auto index = spec->make(IndexOptions{});
    EXPECT_EQ(index->name(), name);
    EXPECT_EQ(index->disk_based(), spec->uses_disk) << name;
  }
  EXPECT_EQ(FindIndexSpec("no-such-index"), nullptr);
}

TEST(RegistryTest, FigureIndexesAreThePapersNine) {
  const auto& specs = FigureIndexSpecs();
  ASSERT_EQ(specs.size(), 9u);
  EXPECT_EQ(specs.front().name, "EPT*");
  EXPECT_EQ(specs.back().name, "OmniR-tree");
}

TEST(WorkloadTest, RadiusCalibrationMatchesSelectivity) {
  BenchConfig config;
  config.scale_pct = 20;
  config.queries = 8;
  Workload w = MakeWorkload(BenchDatasetId::kLa, config);
  LinearScan oracle;
  oracle.Build(w.data(), w.metric(), w.pivots);
  for (double sel : {0.04, 0.16, 0.64}) {
    double r = w.Radius(sel);
    double total = 0;
    std::vector<ObjectId> out;
    for (ObjectId q : w.query_ids) {
      oracle.RangeQuery(w.data().view(q), r, &out);
      total += double(out.size());
    }
    double measured = total / (w.query_ids.size() * w.data().size());
    EXPECT_NEAR(measured, sel, sel * 0.8 + 0.02)
        << "selectivity calibration off at " << sel;
  }
}

TEST(WorkloadTest, ScaleEnvControlsCardinality) {
  BenchConfig config;
  config.scale_pct = 10;
  Workload w = MakeWorkload(BenchDatasetId::kWords, config);
  EXPECT_EQ(w.data().size(), DefaultCardinality(BenchDatasetId::kWords) / 10);
  EXPECT_EQ(w.pivots.size(), 5u);
}

TEST(WorkloadTest, PageSizeFollowsThePaper) {
  EXPECT_EQ(PageSizeFor("CPT", BenchDatasetId::kColor), 40960u);
  EXPECT_EQ(PageSizeFor("PM-tree", BenchDatasetId::kSynthetic), 40960u);
  EXPECT_EQ(PageSizeFor("CPT", BenchDatasetId::kLa), 4096u);
  EXPECT_EQ(PageSizeFor("SPB-tree", BenchDatasetId::kColor), 4096u);
}

TEST(WorkloadTest, QueryCostAveraging) {
  QueryCost cost;
  OpStats s;
  s.dist_computations = 10;
  s.page_reads = 4;
  s.seconds = 0.002;
  cost.Accumulate(s, 7);
  cost.Accumulate(s, 9);
  cost.FinishAverage(2);
  EXPECT_DOUBLE_EQ(cost.compdists, 10.0);
  EXPECT_DOUBLE_EQ(cost.page_accesses, 4.0);
  EXPECT_DOUBLE_EQ(cost.results, 8.0);
  EXPECT_NEAR(cost.cpu_ms, 2.0, 1e-9);
}

TEST(TablePrinterTest, Formatting) {
  EXPECT_EQ(FormatCount(-1), "-");
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(1234), "1234");
  EXPECT_EQ(FormatCount(1234567), "1.23e6");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 << 20), "3.0 MB");
  EXPECT_EQ(FormatF(3.14159, 2), "3.14");
  EXPECT_EQ(FormatMs(0.001), "0.0010");
  EXPECT_EQ(FormatMs(123.4), "123.4");
}

}  // namespace
}  // namespace pmi
