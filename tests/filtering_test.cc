// Soundness tests for the four pruning/validation lemmas (Section 2.3).
//
// The property under test is the paper's: whenever a lemma prunes, the
// pruned object/region truly contains no result; whenever Lemma 4
// validates, the object truly is a result.  Verified against brute force
// on random metric data.

#include <vector>

#include <gtest/gtest.h>

#include "src/core/filtering.h"
#include "src/core/pivot_selection.h"
#include "src/core/pivots.h"
#include "src/data/generators.h"

namespace pmi {
namespace {

class FilteringTest : public ::testing::TestWithParam<BenchDatasetId> {
 protected:
  void SetUp() override {
    bd_ = MakeBenchDataset(GetParam(), 300, /*seed=*/5);
    PerfCounters c;
    DistanceComputer dist(bd_.metric.get(), &c);
    PivotSelectionOptions opts;
    opts.sample_size = 300;
    pivots_ = PivotSet(bd_.data, SelectPivotsHFI(bd_.data, dist, 4, opts));
  }

  std::vector<double> Map(const ObjectView& o) {
    PerfCounters c;
    DistanceComputer dist(bd_.metric.get(), &c);
    std::vector<double> phi;
    pivots_.Map(o, dist, &phi);
    return phi;
  }

  BenchDataset bd_{.name = "", .data = Dataset::Vectors(0),
                   .metric = nullptr, .id = BenchDatasetId::kLa};
  PivotSet pivots_;
};

TEST_P(FilteringTest, Lemma1NeverPrunesTrueResults) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    ObjectId qid = rng() % bd_.data.size();
    ObjectView q = bd_.data.view(qid);
    std::vector<double> phi_q = Map(q);
    double r = bd_.metric->max_distance() * 0.02 * (1 + trial % 5);
    for (ObjectId o = 0; o < bd_.data.size(); ++o) {
      std::vector<double> phi_o = Map(bd_.data.view(o));
      double d = bd_.metric->Distance(q, bd_.data.view(o));
      if (PrunedByPivots(phi_o.data(), phi_q.data(), pivots_.size(), r)) {
        EXPECT_GT(d, r) << "Lemma 1 pruned a true result";
      }
      EXPECT_LE(PivotLowerBound(phi_o.data(), phi_q.data(), pivots_.size()),
                d + 1e-9);
      EXPECT_GE(PivotUpperBound(phi_o.data(), phi_q.data(), pivots_.size()),
                d - 1e-9);
    }
  }
}

TEST_P(FilteringTest, Lemma4OnlyValidatesTrueResults) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    ObjectId qid = rng() % bd_.data.size();
    ObjectView q = bd_.data.view(qid);
    std::vector<double> phi_q = Map(q);
    double r = bd_.metric->max_distance() * 0.05 * (1 + trial % 4);
    for (ObjectId o = 0; o < bd_.data.size(); ++o) {
      std::vector<double> phi_o = Map(bd_.data.view(o));
      if (ValidatedByPivots(phi_o.data(), phi_q.data(), pivots_.size(), r)) {
        double d = bd_.metric->Distance(q, bd_.data.view(o));
        EXPECT_LE(d, r + 1e-9) << "Lemma 4 validated a non-result";
      }
    }
  }
}

TEST_P(FilteringTest, Lemma2BallPruningIsSound) {
  // Build a random ball region: center pivot + covering radius over a
  // random subset, then check pruning decisions against every member.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    ObjectId center = rng() % bd_.data.size();
    ObjectView cv = bd_.data.view(center);
    std::vector<ObjectId> members;
    double region_r = 0;
    for (int i = 0; i < 50; ++i) {
      ObjectId o = rng() % bd_.data.size();
      members.push_back(o);
      region_r = std::max(
          region_r, bd_.metric->Distance(cv, bd_.data.view(o)));
    }
    ObjectId qid = rng() % bd_.data.size();
    ObjectView q = bd_.data.view(qid);
    double d_q_c = bd_.metric->Distance(q, cv);
    double r = bd_.metric->max_distance() * 0.03;
    if (PrunedByBall(d_q_c, region_r, r)) {
      for (ObjectId o : members) {
        EXPECT_GT(bd_.metric->Distance(q, bd_.data.view(o)), r);
      }
    }
    // The ball lower bound must never exceed a true member distance.
    for (ObjectId o : members) {
      EXPECT_LE(BallLowerBound(d_q_c, region_r),
                bd_.metric->Distance(q, bd_.data.view(o)) + 1e-9);
    }
  }
}

TEST_P(FilteringTest, Lemma3HyperplanePruningIsSound) {
  // Partition by two pivots; objects nearer pi than pj form Ri.
  Rng rng(19);
  ObjectView pi = pivots_.pivot(0);
  ObjectView pj = pivots_.pivot(1);
  for (int trial = 0; trial < 30; ++trial) {
    ObjectId qid = rng() % bd_.data.size();
    ObjectView q = bd_.data.view(qid);
    double d_q_pi = bd_.metric->Distance(q, pi);
    double d_q_pj = bd_.metric->Distance(q, pj);
    double r = bd_.metric->max_distance() * 0.02;
    if (!PrunedByHyperplane(d_q_pi, d_q_pj, r)) continue;
    for (ObjectId o = 0; o < bd_.data.size(); ++o) {
      ObjectView ov = bd_.data.view(o);
      if (bd_.metric->Distance(ov, pi) <= bd_.metric->Distance(ov, pj)) {
        EXPECT_GT(bd_.metric->Distance(q, ov), r)
            << "Lemma 3 pruned a true result";
      }
    }
  }
}

TEST_P(FilteringTest, MbbBoundsAreSound) {
  // An MBB over a set of mapped points must never be pruned while a
  // member is a result, and its lower bound must underestimate every
  // member distance.
  Rng rng(23);
  const uint32_t l = pivots_.size();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ObjectId> members;
    std::vector<double> lo(l, 1e18), hi(l, -1e18);
    for (int i = 0; i < 40; ++i) {
      ObjectId o = rng() % bd_.data.size();
      members.push_back(o);
      std::vector<double> phi = Map(bd_.data.view(o));
      for (uint32_t j = 0; j < l; ++j) {
        lo[j] = std::min(lo[j], phi[j]);
        hi[j] = std::max(hi[j], phi[j]);
      }
    }
    ObjectId qid = rng() % bd_.data.size();
    ObjectView q = bd_.data.view(qid);
    std::vector<double> phi_q = Map(q);
    double r = bd_.metric->max_distance() * 0.03;
    bool pruned = MbbPrunedByPivots(lo.data(), hi.data(), phi_q.data(), l, r);
    double bound = MbbLowerBound(lo.data(), hi.data(), phi_q.data(), l);
    for (ObjectId o : members) {
      double d = bd_.metric->Distance(q, bd_.data.view(o));
      if (pruned) {
        EXPECT_GT(d, r);
      }
      EXPECT_LE(bound, d + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, FilteringTest,
                         ::testing::Values(BenchDatasetId::kLa,
                                           BenchDatasetId::kWords,
                                           BenchDatasetId::kColor,
                                           BenchDatasetId::kSynthetic),
                         [](const auto& info) {
                           switch (info.param) {
                             case BenchDatasetId::kLa: return "LA";
                             case BenchDatasetId::kWords: return "Words";
                             case BenchDatasetId::kColor: return "Color";
                             default: return "Synthetic";
                           }
                         });

}  // namespace
}  // namespace pmi
