// SIMD/scalar equivalence fuzz for the f32 filter engine.
//
// The engine's exactness contract (src/core/simd.h, pivot_table.h) is
// that survivor lists are bit-identical to the row-major *double* loop
// at every dispatch level PMI_SIMD can force: the f32 bulk filter may
// only ever keep a superset, and the double re-check must narrow it back
// to exactly the reference set.  This suite fuzzes that contract across
//   - widths 1..32 (every lane-tail shape of the 8/16-wide kernels),
//   - block-tail row counts (0, 1, kScanBlock-1, kScanBlock,
//     kScanBlock+1, multi-block + ragged tail),
//   - extreme radii (0, denormal, huge, +/-inf),
//   - denormal / huge / float-overflowing cell distances,
// and pins end-to-end index conformance (results + compdists) across
// dispatch levels.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/filtering.h"
#include "src/core/pivot_selection.h"
#include "src/core/pivot_table.h"
#include "src/core/rng.h"
#include "src/core/simd.h"
#include "src/data/generators.h"
#include "src/harness/workload.h"
#include "src/tables/ept.h"
#include "src/tables/laesa.h"

namespace pmi {
namespace {

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> out;
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kNeon,
                          SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (SimdLevelSupported(level)) out.push_back(level);
  }
  return out;
}

void ForceLevel(SimdLevel level) {
  ASSERT_EQ(setenv("PMI_SIMD", SimdLevelName(level), 1), 0);
  ReinitSimdDispatch();
  ASSERT_EQ(SimdLevelInUse(), level) << SimdLevelName(level);
}

// The CI scalar-dispatch leg pins PMI_SIMD for the whole ctest run, so
// tests that force levels must restore the value the process inherited
// -- clearing it would silently re-widen every later test.
struct InheritedSimdEnv {
  bool had;
  std::string value;
  InheritedSimdEnv() {
    const char* e = getenv("PMI_SIMD");
    had = e != nullptr;
    if (had) value = e;
  }
};
const InheritedSimdEnv kInheritedEnv;

void RestoreDefaultLevel() {
  if (kInheritedEnv.had) {
    setenv("PMI_SIMD", kInheritedEnv.value.c_str(), 1);
  } else {
    unsetenv("PMI_SIMD");
  }
  ReinitSimdDispatch();
}

// Interesting magnitudes for cells / queries: denormals (double and
// float), values that round to float denormals, float-overflowing
// doubles, and plain mid-range values.
double SpecialValue(Rng* rng) {
  static const double kSpecials[] = {
      0.0,      5e-324,  1e-310, 1.4e-45, 1e-38,   1e-20,
      1.0,      100.0,   1e20,   3.4e38,  7e38,    1e300,
  };
  return kSpecials[(*rng)() % (sizeof(kSpecials) / sizeof(kSpecials[0]))];
}

struct FuzzTable {
  PivotTable table;
  std::vector<double> rows;  // row-major reference copy
  uint32_t l = 0;

  std::vector<uint32_t> ReferenceScan(const double* phi_q, double r) const {
    std::vector<uint32_t> out;
    const size_t n = l == 0 ? 0 : rows.size() / l;
    for (size_t i = 0; i < n; ++i) {
      if (!PrunedByPivots(&rows[i * l], phi_q, l, r)) {
        out.push_back(static_cast<uint32_t>(i));
      }
    }
    return out;
  }
};

FuzzTable MakeFuzzShared(size_t n, uint32_t l, uint64_t seed) {
  FuzzTable t;
  t.l = l;
  t.table.Reset(l);
  Rng rng(seed);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  std::vector<double> row(l);
  for (size_t i = 0; i < n; ++i) {
    for (auto& x : row) x = rng() % 8 == 0 ? SpecialValue(&rng) : u(rng);
    t.rows.insert(t.rows.end(), row.begin(), row.end());
    t.table.AppendRow(row.data());
  }
  return t;
}

const double kFuzzRadii[] = {
    0.0,    5e-324, 1e-300, 1e-40, 0.25,
    3.0,    40.0,   1e20,   1e300, std::numeric_limits<double>::infinity(),
    -std::numeric_limits<double>::infinity(),
};

// Widths 1..32: every tail shape of the 4/8/16-lane sweeps and of the
// refine cascade, at a multi-block row count with a ragged tail.
TEST(SimdFilterTest, SharedScanBitIdenticalAcrossLevelsAllWidths) {
  for (uint32_t l = 1; l <= 32; ++l) {
    FuzzTable t = MakeFuzzShared(600, l, 1000 + l);
    Rng rng(l * 7 + 1);
    std::uniform_real_distribution<double> u(0.0, 100.0);
    std::vector<double> phi_q(l);
    for (auto& x : phi_q) x = rng() % 6 == 0 ? SpecialValue(&rng) : u(rng);
    for (double r : kFuzzRadii) {
      const std::vector<uint32_t> want = t.ReferenceScan(phi_q.data(), r);
      for (SimdLevel level : SupportedLevels()) {
        ForceLevel(level);
        std::vector<uint32_t> got;
        t.table.RangeScan(phi_q.data(), r, &got);
        EXPECT_EQ(got, want) << "level=" << SimdLevelName(level)
                             << " l=" << l << " r=" << r;
      }
    }
  }
  RestoreDefaultLevel();
}

// Block-tail row counts around kScanBlock, including empty and single.
TEST(SimdFilterTest, SharedScanBitIdenticalAcrossLevelsBlockTails) {
  const size_t kRowCounts[] = {0,
                               1,
                               PivotTable::kScanBlock - 1,
                               PivotTable::kScanBlock,
                               PivotTable::kScanBlock + 1,
                               3 * PivotTable::kScanBlock + 17};
  for (size_t n : kRowCounts) {
    FuzzTable t = MakeFuzzShared(n, 5, 2000 + n);
    Rng rng(n * 3 + 5);
    std::uniform_real_distribution<double> u(0.0, 100.0);
    std::vector<double> phi_q(5);
    for (auto& x : phi_q) x = u(rng);
    for (double r : kFuzzRadii) {
      const std::vector<uint32_t> want = t.ReferenceScan(phi_q.data(), r);
      for (SimdLevel level : SupportedLevels()) {
        ForceLevel(level);
        std::vector<uint32_t> got;
        t.table.RangeScan(phi_q.data(), r, &got);
        EXPECT_EQ(got, want) << "level=" << SimdLevelName(level)
                             << " rows=" << n << " r=" << r;
      }
    }
  }
  RestoreDefaultLevel();
}

// Per-row-pivot (EPT) layout: the gathered query values go through the
// same conservative-radius machinery, with one widened radius bounding
// the whole pool.
TEST(SimdFilterTest, IndirectScanBitIdenticalAcrossLevels) {
  const uint32_t kPool = 24;
  for (uint32_t l : {1u, 2u, 3u, 4u, 7u, 8u, 15u, 16u, 31u, 32u}) {
    PivotTable table;
    table.Reset(l, /*per_row_pivots=*/true);
    std::vector<double> ref_d;
    std::vector<uint32_t> ref_i;
    Rng rng(4000 + l);
    std::uniform_real_distribution<double> u(0.0, 100.0);
    std::vector<double> rd(l);
    std::vector<uint32_t> ri(l);
    const size_t n = 2 * PivotTable::kScanBlock + 9;
    for (size_t i = 0; i < n; ++i) {
      for (uint32_t j = 0; j < l; ++j) {
        rd[j] = rng() % 8 == 0 ? SpecialValue(&rng) : u(rng);
        ri[j] = rng() % kPool;
      }
      ref_d.insert(ref_d.end(), rd.begin(), rd.end());
      ref_i.insert(ref_i.end(), ri.begin(), ri.end());
      table.AppendRow(rd.data(), ri.data());
    }
    std::vector<double> d_qp(kPool);
    for (auto& x : d_qp) x = rng() % 6 == 0 ? SpecialValue(&rng) : u(rng);

    for (double r : kFuzzRadii) {
      std::vector<uint32_t> want;
      for (size_t i = 0; i < n; ++i) {
        bool pruned = false;
        for (uint32_t j = 0; j < l && !pruned; ++j) {
          pruned = std::fabs(ref_d[i * l + j] - d_qp[ref_i[i * l + j]]) > r;
        }
        if (!pruned) want.push_back(static_cast<uint32_t>(i));
      }
      for (SimdLevel level : SupportedLevels()) {
        ForceLevel(level);
        std::vector<uint32_t> got;
        table.RangeScanIndirect(d_qp.data(), kPool, r, &got);
        EXPECT_EQ(got, want) << "level=" << SimdLevelName(level)
                             << " l=" << l << " r=" << r;
      }
    }
  }
  RestoreDefaultLevel();
}

// Adversarial cells clustered exactly around the query +/- r boundary,
// where a one-ulp filter mistake would flip a decision.
TEST(SimdFilterTest, BoundaryValuesNeverFlipDecisions) {
  const uint32_t l = 3;
  const double q0 = 12.345678901234567;
  const double r = 1.0000000000000002;
  FuzzTable t;
  t.l = l;
  t.table.Reset(l);
  std::vector<double> row(l);
  for (int k = -40; k <= 40; ++k) {
    for (double base : {q0 - r, q0 + r, q0}) {
      double v = base;
      for (int s = 0; s < std::abs(k); ++s) {
        v = std::nextafter(v, k < 0 ? -1e30 : 1e30);
      }
      row[0] = v;
      row[1] = q0;  // always inside on later slots
      row[2] = q0;
      t.rows.insert(t.rows.end(), row.begin(), row.end());
      t.table.AppendRow(row.data());
    }
  }
  std::vector<double> phi_q = {q0, q0, q0};
  const std::vector<uint32_t> want = t.ReferenceScan(phi_q.data(), r);
  EXPECT_FALSE(want.empty());
  EXPECT_LT(want.size(), t.table.rows());  // both sides of the boundary hit
  for (SimdLevel level : SupportedLevels()) {
    ForceLevel(level);
    std::vector<uint32_t> got;
    t.table.RangeScan(phi_q.data(), r, &got);
    EXPECT_EQ(got, want) << "level=" << SimdLevelName(level);
  }
  RestoreDefaultLevel();
}

// End-to-end conformance: LAESA (shared) and EPT/EPT* (indirect) must
// produce bit-identical query results, survivor-driven verification
// orders, and compdists at every dispatch level.
TEST(SimdFilterTest, IndexQueriesBitIdenticalAcrossLevels) {
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 1500, 7);
  PivotSelectionOptions po;
  po.sample_size = 400;
  po.pair_sample = 200;
  PivotSet pivots = SelectSharedPivots(bd.data, *bd.metric, 5, po);
  Rng rng(31);
  std::vector<ObjectId> queries(8);
  for (auto& q : queries) q = rng() % bd.data.size();
  const double kRadii[] = {5.0, 60.0, 400.0};

  Laesa laesa;
  laesa.Build(bd.data, *bd.metric, pivots);
  Ept ept(Ept::Variant::kClassic);
  ept.Build(bd.data, *bd.metric, pivots);
  Ept ept_star(Ept::Variant::kStar);
  ept_star.Build(bd.data, *bd.metric, pivots);
  MetricIndex* indexes[] = {&laesa, &ept, &ept_star};

  struct Capture {
    std::vector<std::vector<ObjectId>> range;
    std::vector<std::vector<Neighbor>> knn;
    std::vector<uint64_t> compdists;
  };
  std::vector<Capture> captures;
  for (SimdLevel level : SupportedLevels()) {
    ForceLevel(level);
    Capture c;
    for (MetricIndex* index : indexes) {
      for (ObjectId q : queries) {
        ObjectView qv = bd.data.view(q);
        for (double r : kRadii) {
          std::vector<ObjectId> out;
          OpStats s = index->RangeQuery(qv, r, &out);
          c.range.push_back(std::move(out));
          c.compdists.push_back(s.dist_computations);
        }
        std::vector<Neighbor> nn;
        OpStats s = index->KnnQuery(qv, 10, &nn);
        c.knn.push_back(std::move(nn));
        c.compdists.push_back(s.dist_computations);
      }
    }
    captures.push_back(std::move(c));
  }
  RestoreDefaultLevel();

  ASSERT_GE(captures.size(), 1u);
  for (size_t i = 1; i < captures.size(); ++i) {
    EXPECT_EQ(captures[i].compdists, captures[0].compdists);
    ASSERT_EQ(captures[i].range.size(), captures[0].range.size());
    // Survivor order is part of the contract: compare unsorted.
    for (size_t j = 0; j < captures[0].range.size(); ++j) {
      EXPECT_EQ(captures[i].range[j], captures[0].range[j]);
    }
    ASSERT_EQ(captures[i].knn.size(), captures[0].knn.size());
    for (size_t j = 0; j < captures[0].knn.size(); ++j) {
      ASSERT_EQ(captures[i].knn[j].size(), captures[0].knn[j].size());
      for (size_t k = 0; k < captures[0].knn[j].size(); ++k) {
        EXPECT_EQ(captures[i].knn[j][k].id, captures[0].knn[j][k].id);
        EXPECT_EQ(captures[i].knn[j][k].dist, captures[0].knn[j][k].dist);
      }
    }
  }
}

// Block-major multi-query scan (the batch engine's FilterBlockMulti /
// mask_sweep_multi path): for every batch size covering the
// kMultiQueryTile and register-group tails, each query's survivor list
// must equal its own single-query RangeScan at every dispatch level --
// adversarial cell magnitudes included.
TEST(SimdFilterTest, BlockMajorScanMatchesPerQueryScanAcrossLevels) {
  FuzzTable t = MakeFuzzShared(3 * PivotTable::kScanBlock + 29, 5, 97);
  for (size_t nq : {1u, 3u, 4u, 5u, 15u, 16u, 17u, 37u}) {
    Rng rng(500 + nq);
    std::uniform_real_distribution<double> u(0.0, 100.0);
    std::vector<std::vector<double>> phi(nq, std::vector<double>(5));
    std::vector<double> radii(nq);
    for (size_t qi = 0; qi < nq; ++qi) {
      for (auto& x : phi[qi]) {
        x = rng() % 6 == 0 ? SpecialValue(&rng) : u(rng);
      }
      radii[qi] = kFuzzRadii[rng() % (sizeof(kFuzzRadii) /
                                      sizeof(kFuzzRadii[0]))];
    }
    for (SimdLevel level : SupportedLevels()) {
      ForceLevel(level);
      std::vector<std::vector<uint32_t>> got(nq);
      t.table.ScanBlockMajor(
          nq, [&](size_t qi) { return phi[qi].data(); },
          [&](size_t qi) { return radii[qi]; },
          [&](size_t qi, size_t row) {
            got[qi].push_back(static_cast<uint32_t>(row));
          },
          [](size_t, size_t) {});
      for (size_t qi = 0; qi < nq; ++qi) {
        std::vector<uint32_t> want;
        t.table.RangeScan(phi[qi].data(), radii[qi], &want);
        EXPECT_EQ(got[qi], want)
            << "level=" << SimdLevelName(level) << " nq=" << nq
            << " qi=" << qi << " r=" << radii[qi];
      }
    }
  }
  RestoreDefaultLevel();
}

// Batches past kScanBatchTile reuse the per-tile FilterQuery scratch.
// A uniform radius across the whole batch is the adversarial case: if
// the radius cache survived re-preparation, tile 2's queries would
// filter with tile 1's widened f32 radii -- which are derived from tile
// 1's QUERY VALUES, so a tile-1 query of tiny magnitude leaves a
// too-narrow wide radius behind for a larger-magnitude tile-2 query.
// The cells here sit in the float rounding sliver around q + r where
// exactly that one-in-2^22 difference flips survival, so a stale cache
// drops true survivors (verified by mutation: disabling the
// re-preparation reset fails this test on the vector levels).
TEST(SimdFilterTest, BlockMajorScanTileBoundaryWithUniformRadius) {
  // Constructed near-tie roundings: q0 sits just under the midpoint of
  // its float grid cell (rounds DOWN to g), the cell value x just above
  // the midpoint of grid point h = g + 1 + ulp (rounds UP), so the
  // float distance overshoots the true double distance by one full
  // float ulp -- inside the correct conservative radius for |q0|~12,
  // OUTSIDE the one a zero-magnitude query leaves behind.
  const double ulp = std::ldexp(1.0, -20);  // float ulp in [8, 16)
  const double g = double(12.3456789f);
  const double h = g + 1.0 + ulp;
  const double eps = 1e-12;
  const double q0 = g + ulp / 2 - eps;
  const double x = h - ulp / 2 + eps;
  const double r = 1.00000000001;
  ASSERT_LE(std::fabs(x - q0), r);  // a true double survivor...
  const float d_f = std::fabs(FilterValue(x) - FilterValue(q0));
  // ...whose float distance sits strictly between the stale (qmax = 0)
  // and correct (qmax = |q0|) conservative radii.  These assertions pin
  // the premise; if the radius formulas change, the test says so
  // instead of silently losing its teeth.
  ASSERT_GT(d_f, ConservativeFilterRadius(0.0, r));
  ASSERT_LE(d_f, ConservativeFilterRadius(std::fabs(q0), r));

  const size_t nq = PivotTable::kScanBatchTile + 8;
  FuzzTable t;
  t.l = 2;
  t.table.Reset(2);
  const double row[2] = {x, q0};  // slot 1 always inside
  t.rows.insert(t.rows.end(), row, row + 2);
  t.table.AppendRow(row);
  // Tile 1 slots: zero-magnitude queries (narrowest conservative
  // radii); the final tile's queries are the boundary-sensitive ones
  // that would inherit those radii if the cache leaked across tiles.
  std::vector<std::vector<double>> phi(nq, std::vector<double>{0.0, 0.0});
  for (size_t qi = PivotTable::kScanBatchTile; qi < nq; ++qi) {
    phi[qi] = {q0, q0};
  }
  for (SimdLevel level : SupportedLevels()) {
    ForceLevel(level);
    std::vector<std::vector<uint32_t>> got(nq);
    t.table.ScanBlockMajor(
        nq, [&](size_t qi) { return phi[qi].data(); },
        [&](size_t) { return r; },
        [&](size_t qi, size_t row_id) {
          got[qi].push_back(static_cast<uint32_t>(row_id));
        },
        [](size_t, size_t) {});
    for (size_t qi = 0; qi < nq; ++qi) {
      std::vector<uint32_t> want;
      t.table.RangeScan(phi[qi].data(), r, &want);
      EXPECT_EQ(got[qi], want)
          << "level=" << SimdLevelName(level) << " qi=" << qi;
    }
    // In particular the second tile's boundary query keeps the row.
    EXPECT_EQ(got[nq - 1].size(), 1u) << "level=" << SimdLevelName(level);
  }
  RestoreDefaultLevel();
}

// Indirect (per-row-pivot) form of the block-major fuzz.
TEST(SimdFilterTest, BlockMajorIndirectScanMatchesPerQueryScan) {
  const uint32_t kPool = 24, l = 4;
  PivotTable table;
  table.Reset(l, /*per_row_pivots=*/true);
  Rng rng(4242);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  std::vector<double> rd(l);
  std::vector<uint32_t> ri(l);
  const size_t n = 2 * PivotTable::kScanBlock + 13;
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < l; ++j) {
      rd[j] = rng() % 8 == 0 ? SpecialValue(&rng) : u(rng);
      ri[j] = rng() % kPool;
    }
    table.AppendRow(rd.data(), ri.data());
  }
  for (size_t nq : {1u, 4u, 9u, 16u, 21u}) {
    std::vector<std::vector<double>> d_qp(nq, std::vector<double>(kPool));
    std::vector<double> radii(nq);
    for (size_t qi = 0; qi < nq; ++qi) {
      for (auto& x : d_qp[qi]) {
        x = rng() % 6 == 0 ? SpecialValue(&rng) : u(rng);
      }
      radii[qi] = kFuzzRadii[rng() % (sizeof(kFuzzRadii) /
                                      sizeof(kFuzzRadii[0]))];
    }
    for (SimdLevel level : SupportedLevels()) {
      ForceLevel(level);
      std::vector<std::vector<uint32_t>> got(nq);
      table.ScanBlockMajorIndirect(
          nq, kPool, [&](size_t qi) { return d_qp[qi].data(); },
          [&](size_t qi) { return radii[qi]; },
          [&](size_t qi, size_t row) {
            got[qi].push_back(static_cast<uint32_t>(row));
          },
          [](size_t, size_t) {});
      for (size_t qi = 0; qi < nq; ++qi) {
        std::vector<uint32_t> want;
        table.RangeScanIndirect(d_qp[qi].data(), kPool, radii[qi], &want);
        EXPECT_EQ(got[qi], want)
            << "level=" << SimdLevelName(level) << " nq=" << nq
            << " qi=" << qi << " r=" << radii[qi];
      }
    }
  }
  RestoreDefaultLevel();
}

// The PMI_SIMD knob itself: unknown values fall back to a supported
// level instead of crashing, and "scalar" always pins the scalar table.
TEST(SimdFilterTest, EnvKnobFallsBackSafely) {
  ASSERT_EQ(setenv("PMI_SIMD", "warp9", 1), 0);
  ReinitSimdDispatch();
  EXPECT_TRUE(SimdLevelSupported(SimdLevelInUse()));
  ForceLevel(SimdLevel::kScalar);
  EXPECT_EQ(SimdLevelInUse(), SimdLevel::kScalar);
  RestoreDefaultLevel();
  EXPECT_TRUE(SimdLevelSupported(SimdLevelInUse()));
}

}  // namespace
}  // namespace pmi
