// Facade-layer tests: Status/StatusOr semantics, ValidateOptions as the
// single options gate, TryMakeIndex's recoverable errors, and the
// MetricDB owned-lifetime + unified-query contract.

#include <algorithm>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "src/api/metric_db.h"
#include "src/core/linear_scan.h"
#include "src/core/pivot_selection.h"
#include "src/data/generators.h"
#include "src/harness/registry.h"

namespace pmi {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(OkStatus().ok());
  EXPECT_EQ(OkStatus().ToString(), "OK");
  Status s = InvalidArgumentError("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad knob");
}

TEST(StatusTest, StatusOrHoldsValueOrStatus) {
  StatusOr<int> ok_value(7);
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(*ok_value, 7);

  StatusOr<int> err(NotFoundError("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);

  // Move-only payloads work (the TryMakeIndex return type).
  StatusOr<std::unique_ptr<int>> moved(std::make_unique<int>(3));
  ASSERT_TRUE(moved.ok());
  std::unique_ptr<int> taken = std::move(moved).value();
  EXPECT_EQ(*taken, 3);
}

TEST(ValidateOptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateOptions(IndexOptions{}).ok());
}

TEST(ValidateOptionsTest, RejectsEachBadKnob) {
  {
    IndexOptions o;
    o.page_size = 0;
    EXPECT_EQ(ValidateOptions(o).code(), StatusCode::kInvalidArgument);
  }
  {
    IndexOptions o;
    o.page_size = 16;  // smaller than a page header + one entry
    EXPECT_EQ(ValidateOptions(o).code(), StatusCode::kInvalidArgument);
  }
  {
    IndexOptions o;
    o.cache_bytes = o.page_size - 1;  // pool cannot hold one page
    EXPECT_EQ(ValidateOptions(o).code(), StatusCode::kInvalidArgument);
  }
  {
    IndexOptions o;
    o.mvpt_arity = 1;
    EXPECT_EQ(ValidateOptions(o).code(), StatusCode::kInvalidArgument);
  }
  {
    IndexOptions o;
    o.tree_leaf_capacity = 0;
    EXPECT_EQ(ValidateOptions(o).code(), StatusCode::kInvalidArgument);
  }
  {
    IndexOptions o;
    o.tree_fanout = 0;  // would SEGV inside BKT/FQT bucket sizing
    EXPECT_EQ(ValidateOptions(o).code(), StatusCode::kInvalidArgument);
  }
}

TEST(TryMakeIndexTest, UnknownNameIsRecoverable) {
  auto r = TryMakeIndex("no-such-index");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(TryMakeIndexTest, BadOptionsAreRecoverable) {
  IndexOptions o;
  o.page_size = 0;
  auto r = TryMakeIndex("LAESA", o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TryMakeIndexTest, MinPivotsViolationIsRecoverable) {
  // M-index* needs >= 2 pivots for hyperplane partitioning.
  auto r = TryMakeIndex("M-index*", IndexOptions{}, /*pivot_count=*/1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(TryMakeIndex("M-index*", IndexOptions{}, 2).ok());
}

TEST(TryMakeIndexTest, MakesEveryRegisteredIndexAndLinearScan) {
  for (const IndexSpec& spec : AllIndexSpecs()) {
    auto r = TryMakeIndex(spec.name, IndexOptions{}, spec.min_pivots);
    ASSERT_TRUE(r.ok()) << spec.name << ": " << r.status().ToString();
    EXPECT_NE(*r, nullptr);
  }
  auto scan = TryMakeIndex("LinearScan");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ((*scan)->name(), "LinearScan");
  // ... without perturbing the survey spec lists.
  for (const IndexSpec& spec : AllIndexSpecs()) {
    EXPECT_NE(spec.name, "LinearScan");
  }
}

// -- MetricDB -----------------------------------------------------------------

Dataset SmallVectors(uint32_t n = 400) {
  return MakeLaLike(n, /*seed=*/17);
}

TEST(MetricDBTest, CreateRejectsBadInput) {
  EXPECT_EQ(MetricDB::Create(MetricDBConfig(), Dataset::Vectors(2))
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // empty dataset
  EXPECT_EQ(MetricDB::Create(MetricDBConfig().WithMetric("cosine"),
                             SmallVectors())
                .status()
                .code(),
            StatusCode::kNotFound);  // unknown metric
  EXPECT_EQ(MetricDB::Create(MetricDBConfig().WithMetric("edit"),
                             SmallVectors())
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // metric/dataset kind mismatch
  EXPECT_EQ(MetricDB::Create(MetricDBConfig().WithIndex("no-such-index"),
                             SmallVectors())
                .status()
                .code(),
            StatusCode::kNotFound);  // unknown index
  EXPECT_EQ(MetricDB::Create(MetricDBConfig().WithIndex("BKT"),
                             SmallVectors())
                .status()
                .code(),
            StatusCode::kFailedPrecondition);  // BKT needs a discrete metric
  EXPECT_EQ(MetricDB::Create(MetricDBConfig().WithPivots(0), SmallVectors())
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // no pivots
  EXPECT_EQ(MetricDB::Create(MetricDBConfig().WithPivotMethod("psychic"),
                             SmallVectors())
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // unknown pivot method
  IndexOptions bad;
  bad.mvpt_arity = 0;
  EXPECT_EQ(MetricDB::Create(MetricDBConfig().WithOptions(bad),
                             SmallVectors())
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // options gate
  EXPECT_EQ(MetricDB::Create(MetricDBConfig().WithIndex("M-index*")
                                 .WithPivots(1),
                             SmallVectors())
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // min_pivots via the facade
}

TEST(MetricDBTest, QueriesMatchTheRawHarness) {
  Dataset data = SmallVectors();
  auto db = MetricDB::Create(
      MetricDBConfig().WithMetric("L2").WithIndex("LAESA").WithPivots(3),
      data);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_GT(db->build_stats().dist_computations, 0u);

  // Ground truth through the raw harness on the facade's own members --
  // the facade owns everything the oracle needs.
  LinearScan oracle;
  oracle.Build(db->dataset(), db->metric(), db->pivots());

  for (ObjectId q : {0u, 7u, 201u}) {
    auto range = db->RangeQuery(db->dataset().view(q), 900.0);
    ASSERT_TRUE(range.ok());
    std::vector<ObjectId> truth;
    oracle.RangeQuery(db->dataset().view(q), 900.0, &truth);
    std::vector<ObjectId> got = range->ids[0];
    std::sort(got.begin(), got.end());
    std::sort(truth.begin(), truth.end());
    EXPECT_EQ(got, truth);

    auto knn = db->KnnQuery(db->dataset().view(q), 9);
    ASSERT_TRUE(knn.ok());
    std::vector<Neighbor> knn_truth;
    oracle.KnnQuery(db->dataset().view(q), 9, &knn_truth);
    ASSERT_EQ(knn->neighbors[0].size(), knn_truth.size());
    for (size_t i = 0; i < knn_truth.size(); ++i) {
      EXPECT_EQ(knn->neighbors[0][i].id, knn_truth[i].id);
      EXPECT_EQ(knn->neighbors[0][i].dist, knn_truth[i].dist);
    }
  }
}

TEST(MetricDBTest, FacadeSurvivesMoves) {
  // The index borrows the facade-owned dataset/metric/pivots; moving the
  // facade must not invalidate those borrows (unique_ptr members keep
  // the addresses stable).
  auto created = MetricDB::Create(
      MetricDBConfig().WithMetric("L2").WithIndex("MVPT"), SmallVectors());
  ASSERT_TRUE(created.ok());
  auto first = std::move(created).value();
  auto before = first.KnnQuery(first.dataset().view(3), 5);
  ASSERT_TRUE(before.ok());

  MetricDB second = std::move(first);
  auto after = second.KnnQuery(second.dataset().view(3), 5);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->neighbors[0].size(), before->neighbors[0].size());
  for (size_t i = 0; i < after->neighbors[0].size(); ++i) {
    EXPECT_EQ(after->neighbors[0][i].id, before->neighbors[0][i].id);
  }
}

TEST(MetricDBTest, QueryValidation) {
  auto db = MetricDB::Create(
      MetricDBConfig().WithMetric("L2").WithIndex("LAESA"), SmallVectors());
  ASSERT_TRUE(db.ok());
  ObjectView q = db->dataset().view(0);

  EXPECT_EQ(db->RangeQuery(q, -1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db->KnnQuery(q, 0).status().code(), StatusCode::kInvalidArgument);

  // Wrong payload kind / dimensionality.
  EXPECT_EQ(db->RangeQuery(ObjectView::FromString("hi"), 1.0).status().code(),
            StatusCode::kInvalidArgument);
  float tiny[1] = {0};
  EXPECT_EQ(db->RangeQuery(ObjectView::FromVector(tiny, 1), 1.0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // k > n is graceful: every live object comes back, sorted.
  auto all = db->KnnQuery(q, db->dataset().size() + 50);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->neighbors[0].size(), db->dataset().size());

  // An empty batch is a valid no-op.
  auto empty = db->Query(QueryRequest::RangeBatch({}, 1.0));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->ids.empty());
  EXPECT_EQ(empty->stats.dist_computations, 0u);
}

TEST(MetricDBTest, PerQueryDescriptorsMatchIndividualCalls) {
  Dataset data = SmallVectors();
  auto db = MetricDB::Create(
      MetricDBConfig().WithMetric("L2").WithIndex("LAESA").WithPivots(3),
      data);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  std::vector<ObjectView> queries = {db->dataset().view(1),
                                     db->dataset().view(42),
                                     db->dataset().view(300)};
  std::vector<double> radii = {400.0, 900.0, 1500.0};
  std::vector<size_t> ks = {1, 7, 25};

  auto range = db->Query(QueryRequest::RangeBatch(queries, radii));
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  ASSERT_EQ(range->ids.size(), queries.size());
  auto knn = db->Query(QueryRequest::KnnBatch(queries, ks));
  ASSERT_TRUE(knn.ok()) << knn.status().ToString();
  ASSERT_EQ(knn->neighbors.size(), queries.size());

  for (size_t i = 0; i < queries.size(); ++i) {
    auto one_range = db->RangeQuery(queries[i], radii[i]);
    ASSERT_TRUE(one_range.ok());
    std::vector<ObjectId> got = range->ids[i];
    std::vector<ObjectId> want = one_range->ids[0];
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "radius " << radii[i];

    auto one_knn = db->KnnQuery(queries[i], ks[i]);
    ASSERT_TRUE(one_knn.ok());
    ASSERT_EQ(knn->neighbors[i].size(), one_knn->neighbors[0].size());
    for (size_t j = 0; j < knn->neighbors[i].size(); ++j) {
      EXPECT_EQ(knn->neighbors[i][j].id, one_knn->neighbors[0][j].id);
      EXPECT_EQ(knn->neighbors[i][j].dist, one_knn->neighbors[0][j].dist);
    }
  }

  // Descriptor validation: size mismatch, bad values, cross-type mixes.
  EXPECT_EQ(db->Query(QueryRequest::RangeBatch(queries, {1.0, 2.0}))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db->Query(QueryRequest::KnnBatch(queries, {1, 2})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db->Query(QueryRequest::RangeBatch(queries, {1.0, -2.0, 3.0}))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db->Query(QueryRequest::KnnBatch(queries, {1, 0, 3}))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  QueryRequest crossed = QueryRequest::RangeBatch(queries, radii);
  crossed.ks = ks;
  EXPECT_EQ(db->Query(crossed).status().code(), StatusCode::kInvalidArgument);
}

TEST(MetricDBTest, ReadViewAnswersAtAPinnedSequence) {
  auto db = MetricDB::Create(
      MetricDBConfig().WithMetric("L2").WithIndex("LAESA").WithPivots(3),
      SmallVectors());
  ASSERT_TRUE(db.ok());

  auto view = db->GetReadView();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  uint64_t pinned_seq = view->sequence();
  EXPECT_TRUE(view->alive(5));

  // Mutate the database under the pinned view: the view must keep
  // answering from its own immutable version.
  ASSERT_TRUE(db->Remove(5).ok());
  EXPECT_FALSE(db->alive(5));
  EXPECT_TRUE(view->alive(5));
  EXPECT_EQ(view->sequence(), pinned_seq);
  EXPECT_GT(db->last_sequence(), pinned_seq);

  auto snapshot = view->Query(
      QueryRequest::RangeBatch({db->dataset().view(5)}, 0.0));
  ASSERT_TRUE(snapshot.ok());
  // Distance 0 to itself: the pinned view still sees object 5...
  EXPECT_EQ(snapshot->ids[0], std::vector<ObjectId>{5});
  // ...while a fresh facade query does not.
  auto fresh = db->RangeQuery(db->dataset().view(5), 0.0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->ids[0].empty());
}

TEST(MetricDBTest, WithPivotSetSkipsSelectionAndShares) {
  Dataset data = SmallVectors();
  auto first = MetricDB::Create(
      MetricDBConfig().WithMetric("L2").WithIndex("LAESA").WithPivots(3),
      data);
  ASSERT_TRUE(first.ok());
  // Reuse the first database's pivots; the two databases then share the
  // paper's equal footing without a second selection pass.
  auto second = MetricDB::Create(MetricDBConfig()
                                     .WithMetric("L2")
                                     .WithIndex("MVPT")
                                     .WithPivotSet(first->pivots()),
                                 data);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(second->pivots().size(), first->pivots().size());
  for (uint32_t i = 0; i < first->pivots().size(); ++i) {
    EXPECT_TRUE(second->pivots().pivot(i).PayloadEquals(
        first->pivots().pivot(i)));
  }
  // min_pivots is still enforced against the provided set...
  EXPECT_EQ(MetricDB::Create(MetricDBConfig()
                                 .WithMetric("L2")
                                 .WithIndex("MVPT")
                                 .WithPivotSet(PivotSet()),
                             data)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // ...while a pivot-free baseline accepts an empty set (no selection).
  EXPECT_TRUE(MetricDB::Create(MetricDBConfig()
                                   .WithMetric("L2")
                                   .WithIndex("LinearScan")
                                   .WithPivotSet(PivotSet()),
                               data)
                  .ok());
  // A kind-mismatched injected pivot set is an error, not UB in the
  // metric kernels.
  Dataset words = MakeWordsLike(20, /*seed=*/1);
  PivotSet string_pivots(words, {0, 1});
  EXPECT_EQ(MetricDB::Create(MetricDBConfig()
                                 .WithMetric("L2")
                                 .WithIndex("LAESA")
                                 .WithPivotSet(string_pivots),
                             data)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(MetricDBTest, StringWorkloadEndToEnd) {
  Dataset dict = MakeWordsLike(600, /*seed=*/3);
  dict.AddString("metric");
  auto db = MetricDB::Create(
      MetricDBConfig().WithMetric("edit").WithIndex("MVPT").WithPivots(4),
      dict);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto res = db->RangeQuery(ObjectView::FromString("metricz"), 1.0);
  ASSERT_TRUE(res.ok());
  bool found = false;
  for (ObjectId id : res->ids[0]) {
    found = found || db->dataset().view(id).AsString() == "metric";
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace pmi
