// Concurrent read/write conformance for the epoch-versioned core.
//
// The tentpole acceptance harness: N reader threads run MRQ/MkNN batch
// queries through pinned versions (MetricDB::GetReadView / Query) while
// one writer thread applies seeded insert/remove batches and -- in the
// durable variants -- a checkpointer races Checkpoint() against both.
// Every read is verified bit-identically against a brute-force oracle
// evaluated AT THE PINNED VERSION (view.alive + direct metric
// distances), so a reader observing a half-applied batch, a reclaimed
// version, or a torn liveness bitmap fails loudly.  The suite is built
// to run under ThreadSanitizer in CI (the concurrent-stress job); data
// races are the other half of the acceptance criterion.
//
// Also covered here: the shared buffer pool under parallel readers (two
// disk indexes on one tiny pool, answers vs a serial reference while a
// poller races the stats accessor), the directory LOCK file protocol
// (second-open
// refusal, foreign live owner, stale owners, same-pid reopen after a
// simulated crash) and graceful read-only degradation -- a WAL fault
// mid-stress flips the database read-only and reads must keep
// succeeding from the last published version.
//
// Knobs (harness env-var convention):
//   PMI_STRESS_THREADS  reader thread count (default 4)
//   PMI_STRESS_OPS      scales writer batches (default 2000 -> 100)

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/metric_db.h"
#include "src/core/pivot_selection.h"
#include "src/core/rng.h"
#include "src/data/generators.h"
#include "src/harness/registry.h"
#include "src/harness/workload.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/env.h"
#include "src/storage/fault_env.h"

namespace pmi {
namespace {

constexpr uint64_t kScriptSeed = 20260809;

uint32_t ReaderThreads() {
  return std::max(EnvU32("PMI_STRESS_THREADS", 4), 1u);
}

uint32_t WriterBatches() {
  return std::max(EnvU32("PMI_STRESS_OPS", 2000) / 20, 20u);
}

std::string NewDir(const std::string& name) {
  return ::testing::TempDir() + "pmi_conc_" + name;
}

void RemoveTree(const std::string& dir) {
  Env* env = Env::Default();
  StatusOr<std::vector<std::string>> names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      env->RemoveFile(JoinPath(dir, name));
    }
  }
  ::rmdir(dir.c_str());
}

/// A median-ish distance for query radii, sampled without touching any
/// index counters.
double SampleRadius(const Dataset& data, const Metric& metric) {
  PerfCounters scratch;
  DistanceComputer d(&metric, &scratch);
  std::vector<double> sample;
  Rng rng(kScriptSeed ^ 0xfeed);
  for (int i = 0; i < 64; ++i) {
    ObjectId a = rng() % data.size();
    ObjectId b = rng() % data.size();
    if (a != b) sample.push_back(d(data.view(a), data.view(b)));
  }
  std::sort(sample.begin(), sample.end());
  return sample[sample.size() / 2];
}

/// The single writer's op source: batches of 1..4 toggles, each valid
/// against the writer's own liveness mirror (never removes the last few
/// objects so queries always have something to find).
class WriterScript {
 public:
  WriterScript(uint32_t n, uint64_t seed) : live_(n, 1), rng_(seed) {}

  std::vector<UpdateOp> NextBatch() {
    std::vector<UpdateOp> ops;
    const size_t batch = 1 + rng_() % 4;
    for (size_t i = 0; i < batch; ++i) {
      ObjectId id = rng_() % live_.size();
      if (live_[id] != 0 && LiveCount() > live_.size() / 4) {
        ops.push_back(UpdateOp::Remove(id));
        live_[id] = 0;
      } else if (live_[id] == 0) {
        ops.push_back(UpdateOp::Insert(id));
        live_[id] = 1;
      }
    }
    return ops;
  }

  const std::vector<uint8_t>& live() const { return live_; }

 private:
  size_t LiveCount() const {
    size_t count = 0;
    for (uint8_t b : live_) count += b;
    return count;
  }

  std::vector<uint8_t> live_;
  Rng rng_;
};

/// One reader iteration: pin a view, answer a 4-query batch with
/// per-query radii and per-query ks through it, and verify both against
/// the brute-force oracle at that same pinned version.
void ReadAndVerify(const MetricDB& db, const Dataset& data,
                   const Metric& metric, double base_radius, Rng* rng,
                   uint64_t* last_seen_seq) {
  StatusOr<MetricDB::ReadView> view = db.GetReadView();
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  // Published sequences may only move forward under a reader's feet.
  EXPECT_GE(view->sequence(), *last_seen_seq);
  *last_seen_seq = view->sequence();

  std::vector<ObjectView> queries;
  std::vector<double> radii;
  std::vector<size_t> ks;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(data.view((*rng)() % data.size()));
    radii.push_back(base_radius * (0.5 + 0.25 * ((*rng)() % 4)));
    ks.push_back(1 + (*rng)() % 8);
  }

  PerfCounters scratch;
  DistanceComputer d(&metric, &scratch);

  StatusOr<QueryResult> mrq =
      view->Query(QueryRequest::RangeBatch(queries, radii));
  ASSERT_TRUE(mrq.ok()) << mrq.status().ToString();
  ASSERT_EQ(mrq->ids.size(), queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<ObjectId> oracle;
    for (ObjectId id = 0; id < data.size(); ++id) {
      if (view->alive(id) && d(queries[qi], data.view(id)) <= radii[qi]) {
        oracle.push_back(id);
      }
    }
    std::vector<ObjectId> got = mrq->ids[qi];
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, oracle) << "MRQ mismatch at seq " << view->sequence()
                           << " query " << qi;
  }

  StatusOr<QueryResult> mknn = view->Query(QueryRequest::KnnBatch(queries, ks));
  ASSERT_TRUE(mknn.ok()) << mknn.status().ToString();
  ASSERT_EQ(mknn->neighbors.size(), queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<double> oracle;
    size_t alive_count = 0;
    for (ObjectId id = 0; id < data.size(); ++id) {
      if (!view->alive(id)) continue;
      ++alive_count;
      oracle.push_back(d(queries[qi], data.view(id)));
    }
    std::sort(oracle.begin(), oracle.end());
    oracle.resize(std::min<size_t>(ks[qi], alive_count));
    const std::vector<Neighbor>& got = mknn->neighbors[qi];
    ASSERT_EQ(got.size(), oracle.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(view->alive(got[i].id));
      ASSERT_EQ(got[i].dist, d(queries[qi], data.view(got[i].id)));
      ASSERT_EQ(got[i].dist, oracle[i])
          << "MkNN distance mismatch at seq " << view->sequence()
          << " query " << qi << " rank " << i;
    }
  }
}

struct StressConfig {
  std::string index_name;
  uint32_t pivots = 4;
};

/// Core loop shared by the stress variants: `readers` verify against the
/// oracle until each has done `reads_per_thread` iterations; the writer
/// keeps publishing batches the whole time (at least WriterBatches() of
/// them, then as many as it takes for the readers to finish).
void RunMixedStress(MetricDB* db, const Dataset& data, const Metric& metric,
                    WriterScript* script, uint32_t reads_per_thread,
                    std::atomic<uint64_t>* applied_batches) {
  const uint32_t n_readers = ReaderThreads();
  const uint32_t min_batches = WriterBatches();
  const double base_radius = SampleRadius(data, metric);
  std::atomic<uint32_t> readers_done{0};

  std::vector<std::thread> readers;
  for (uint32_t t = 0; t < n_readers; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(kScriptSeed ^ (0x1000 + t));
      uint64_t last_seq = 0;
      for (uint32_t i = 0; i < reads_per_thread; ++i) {
        ReadAndVerify(*db, data, metric, base_radius, &rng, &last_seq);
        if (::testing::Test::HasFatalFailure()) break;
      }
      readers_done.fetch_add(1, std::memory_order_acq_rel);
    });
  }

  std::thread writer([&] {
    uint64_t batches = 0;
    while (batches < min_batches ||
           readers_done.load(std::memory_order_acquire) < n_readers) {
      std::vector<UpdateOp> ops = script->NextBatch();
      if (!ops.empty()) {
        Status applied = db->Apply(ops);
        ASSERT_TRUE(applied.ok()) << applied.ToString();
      }
      ++batches;
      if (batches > min_batches * 1000) break;  // failed-reader backstop
    }
    applied_batches->store(batches, std::memory_order_release);
  });

  for (std::thread& r : readers) r.join();
  writer.join();
}

class ConcurrentStressTest : public ::testing::TestWithParam<StressConfig> {};

TEST_P(ConcurrentStressTest, ReadersMatchOracleUnderWriterChurn) {
  const StressConfig& config = GetParam();
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 256, 2026);

  auto db = MetricDB::Create(MetricDBConfig()
                                 .WithMetric("Linf")
                                 .WithIndex(config.index_name)
                                 .WithPivots(config.pivots),
                             bd.data);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  WriterScript script(db->dataset().size(), kScriptSeed);
  std::atomic<uint64_t> applied{0};
  RunMixedStress(&*db, db->dataset(), db->metric(), &script,
                 /*reads_per_thread=*/12, &applied);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_GE(applied.load(), WriterBatches());

  // Settled state: the writer's mirror, the facade's bookkeeping, and a
  // fresh pinned view all agree.
  auto view = db->GetReadView();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->sequence(), db->last_sequence());
  for (ObjectId id = 0; id < db->dataset().size(); ++id) {
    ASSERT_EQ(view->alive(id), script.live()[id] != 0) << "object " << id;
    ASSERT_EQ(db->alive(id), script.live()[id] != 0) << "object " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ClonableIndexes, ConcurrentStressTest,
    ::testing::Values(StressConfig{"LinearScan"}, StressConfig{"LAESA"},
                      StressConfig{"EPT*"}, StressConfig{"FQA"},
                      StressConfig{"VPT"}, StressConfig{"MVPT"}),
    [](const ::testing::TestParamInfo<StressConfig>& info) {
      std::string name = info.param.index_name;
      for (char& c : name) {
        if (c == '*') c = 'S';
      }
      return name;
    });

TEST(ConcurrentDurableTest, ApplyRacesCheckpointAndRecoversEquivalently) {
  const std::string dir = NewDir("ckpt_race");
  RemoveTree(dir);
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 200, 31);

  DurabilityOptions dopts;
  dopts.sync_mode = SyncMode::kAlways;
  auto db = MetricDB::CreateDurable(MetricDBConfig()
                                        .WithMetric("Linf")
                                        .WithIndex("LAESA")
                                        .WithPivots(4),
                                    bd.data, dir, dopts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  WriterScript script(db->dataset().size(), kScriptSeed ^ 0xc4);
  std::atomic<bool> writer_done{false};
  std::atomic<uint32_t> checkpoints{0};

  std::thread checkpointer([&] {
    // Race Checkpoint against Apply (and the readers below) until the
    // writer finishes; every call must succeed on a healthy disk.
    while (!writer_done.load(std::memory_order_acquire)) {
      Status ck = db->Checkpoint();
      ASSERT_TRUE(ck.ok()) << ck.ToString();
      checkpoints.fetch_add(1, std::memory_order_acq_rel);
    }
  });

  std::atomic<uint64_t> applied{0};
  RunMixedStress(&*db, db->dataset(), db->metric(), &script,
                 /*reads_per_thread=*/6, &applied);
  writer_done.store(true, std::memory_order_release);
  checkpointer.join();
  if (::testing::Test::HasFatalFailure()) {
    RemoveTree(dir);
    return;
  }
  EXPECT_GE(checkpoints.load(), 1u);

  const uint64_t final_seq = db->last_sequence();
  ASSERT_TRUE(db->Close().ok());

  // Recovery must land on exactly the final acknowledged state, no
  // matter where the checkpoints fell in the update stream.
  auto reopened = MetricDB::OpenDurable(dir, dopts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->last_sequence(), final_seq);
  for (ObjectId id = 0; id < reopened->dataset().size(); ++id) {
    ASSERT_EQ(reopened->alive(id), script.live()[id] != 0) << "object " << id;
  }
  ASSERT_TRUE(reopened->Close().ok());
  RemoveTree(dir);
}

TEST(ConcurrentDurableTest, WriteFaultDegradesToReadOnlyMidStress) {
  const std::string dir = NewDir("degrade");
  RemoveTree(dir);
  FaultInjectingEnv fenv(Env::Default());
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 200, 47);

  DurabilityOptions dopts;
  dopts.sync_mode = SyncMode::kAlways;
  dopts.env = &fenv;
  auto db = MetricDB::CreateDurable(MetricDBConfig()
                                        .WithMetric("Linf")
                                        .WithIndex("LAESA")
                                        .WithPivots(4),
                                    bd.data, dir, dopts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // Arm a failed fsync a few batches into the run: the WAL commit fails,
  // the batch is refused, and the database goes read-only -- while the
  // readers below keep hammering it.
  FaultPlan plan;
  plan.kind = FaultKind::kFailedSync;
  plan.trigger = 24;
  plan.seed = kScriptSeed;
  fenv.Arm(plan);

  const double base_radius = SampleRadius(db->dataset(), db->metric());
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> readers;
  for (uint32_t t = 0; t < ReaderThreads(); ++t) {
    readers.emplace_back([&, t] {
      Rng rng(kScriptSeed ^ (0x2000 + t));
      uint64_t last_seq = 0;
      while (!stop_readers.load(std::memory_order_acquire)) {
        ReadAndVerify(*db, db->dataset(), db->metric(), base_radius, &rng,
                      &last_seq);
        if (::testing::Test::HasFatalFailure()) return;
      }
    });
  }

  // Writer: apply until the fault fires.  The failing batch must be
  // refused atomically (mirror rolls back), and every later batch must
  // be refused with the same sticky status.
  WriterScript script(db->dataset().size(), kScriptSeed ^ 0x9e);
  uint64_t seq_before_fault = 0;
  bool degraded = false;
  for (uint32_t batch = 0; batch < 400 && !degraded; ++batch) {
    seq_before_fault = db->last_sequence();
    std::vector<UpdateOp> ops = script.NextBatch();
    if (ops.empty()) continue;
    Status applied = db->Apply(ops);
    if (!applied.ok()) degraded = true;
  }
  ASSERT_TRUE(degraded) << "fault never fired";
  EXPECT_FALSE(db->write_status().ok());
  EXPECT_EQ(db->last_sequence(), seq_before_fault);
  Status refused = db->Apply({UpdateOp::Remove(0)});
  EXPECT_FALSE(refused.ok());

  // Reads must keep succeeding from the last published version.
  stop_readers.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();
  if (::testing::Test::HasFatalFailure()) {
    RemoveTree(dir);
    return;
  }
  auto view = db->GetReadView();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->sequence(), seq_before_fault);
  auto smoke = db->RangeQuery(db->dataset().view(0), base_radius);
  ASSERT_TRUE(smoke.ok()) << smoke.status().ToString();
  RemoveTree(dir);
}

TEST(ConcurrentCloseTest, CloseRacesInFlightQueries) {
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 256, 63);
  auto db = MetricDB::Create(MetricDBConfig()
                                 .WithMetric("Linf")
                                 .WithIndex("LAESA")
                                 .WithPivots(4),
                             bd.data);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  const double base_radius = SampleRadius(db->dataset(), db->metric());
  std::atomic<uint64_t> ok_reads{0};
  std::vector<std::thread> readers;
  for (uint32_t t = 0; t < ReaderThreads(); ++t) {
    readers.emplace_back([&, t] {
      Rng rng(kScriptSeed ^ (0x3000 + t));
      while (true) {
        std::vector<ObjectView> queries = {
            db->dataset().view(rng() % db->dataset().size())};
        StatusOr<QueryResult> got =
            db->Query(QueryRequest::RangeBatch(queries, base_radius));
        if (!got.ok()) {
          // The only acceptable failure is the typed closed refusal.
          ASSERT_EQ(got.status().code(), StatusCode::kFailedPrecondition)
              << got.status().ToString();
          return;
        }
        ASSERT_EQ(got->ids.size(), 1u);
        ok_reads.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }

  // Let every reader complete at least one query, then yank the rug.
  while (ok_reads.load(std::memory_order_acquire) < ReaderThreads()) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(db->Close().ok());
  for (std::thread& r : readers) r.join();

  EXPECT_FALSE(db->Query(QueryRequest::Range(db->dataset().view(0), 1)).ok());
  EXPECT_FALSE(db->GetReadView().ok());
  EXPECT_FALSE(db->Apply({UpdateOp::Remove(0)}).ok());
  EXPECT_TRUE(db->Close().ok());  // idempotent
}

// -- buffer pool under concurrent readers -------------------------------------

// The pool half of the concurrency acceptance: two disk indexes share
// one deliberately tiny BufferPool while N reader threads hammer both
// with shared batch queries and a poller thread reads pool stats the
// whole time.  Pinned handles must keep every in-flight page alive
// through the constant cross-index eviction churn, answers must stay
// bit-identical to the serial warm-up replay, and the run must be
// TSan-clean (the concurrent-stress CI job).
TEST(ConcurrentPoolStressTest, ParallelBatchReadersShareOneTinyPool) {
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 300, 91);
  PivotSelectionOptions po;
  po.sample_size = 200;
  po.pair_sample = 120;
  PivotSet pivots = SelectSharedPivots(bd.data, *bd.metric, 4, po);

  IndexOptions opts;
  opts.seed = 7;
  // A handful of frames: far smaller than either index's page file, so
  // concurrent readers are constantly evicting each other's pages.  The
  // disk-stress CI job narrows this to a single frame (and widens it)
  // through PMI_CACHE_BYTES.
  const size_t pool_bytes = std::max<size_t>(
      EnvU32("PMI_CACHE_BYTES", 8 * opts.page_size), opts.page_size);
  auto pool = std::make_shared<BufferPool>(opts.page_size, pool_bytes);
  opts.buffer_pool = pool;

  auto cpt = MakeIndex("CPT", opts);
  auto spb = MakeIndex("SPB-tree", opts);
  ASSERT_TRUE(cpt != nullptr && spb != nullptr);
  ASSERT_TRUE(cpt->concurrent_queries());
  ASSERT_TRUE(spb->concurrent_queries());
  cpt->Build(bd.data, *bd.metric, pivots);
  spb->Build(bd.data, *bd.metric, pivots);

  const double base_radius = SampleRadius(bd.data, *bd.metric);
  Rng rng(kScriptSeed ^ 0xb00);
  std::vector<ObjectView> queries;
  std::vector<double> radii;
  std::vector<size_t> ks;
  for (int i = 0; i < 8; ++i) {
    queries.push_back(bd.data.view(rng() % bd.data.size()));
    radii.push_back(base_radius * (0.5 + 0.25 * (rng() % 4)));
    ks.push_back(1 + rng() % 8);
  }

  // Serial warm-up replay: the reference answers every thread must
  // reproduce exactly, and sorted MRQ sets so comparisons are stable.
  struct Reference {
    std::vector<std::vector<ObjectId>> mrq;
    std::vector<std::vector<double>> knn;  // ascending distance profiles
  };
  auto record = [&](MetricIndex* index) {
    Reference ref;
    index->RangeQueryBatchShared(queries, radii, &ref.mrq);
    for (std::vector<ObjectId>& ids : ref.mrq) {
      std::sort(ids.begin(), ids.end());
    }
    std::vector<std::vector<Neighbor>> nn;
    index->KnnQueryBatchShared(queries, ks, &nn);
    for (const std::vector<Neighbor>& q : nn) {
      std::vector<double> profile;
      for (const Neighbor& x : q) profile.push_back(x.dist);
      ref.knn.push_back(std::move(profile));
    }
    return ref;
  };
  const Reference cpt_ref = record(cpt.get());
  const Reference spb_ref = record(spb.get());
  ASSERT_FALSE(cpt_ref.mrq.empty());

  std::atomic<bool> stop_poller{false};
  std::thread poller([&] {
    // Stats reads race the query threads by design; the accessor must
    // be internally synchronized and the counters monotone.
    uint64_t last_faults = 0;
    while (!stop_poller.load(std::memory_order_acquire)) {
      BufferPoolStats s = pool->stats();
      uint64_t faults = s.hits + s.misses;
      EXPECT_GE(faults, last_faults);
      EXPECT_LE(s.write_back_failures, 0u) << "healthy disk faulted";
      last_faults = faults;
      std::this_thread::yield();
    }
  });

  const uint32_t kItersPerThread = 10;
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < ReaderThreads(); ++t) {
    threads.emplace_back([&, t] {
      MetricIndex* index = (t % 2 == 0) ? cpt.get() : spb.get();
      const Reference& ref = (t % 2 == 0) ? cpt_ref : spb_ref;
      for (uint32_t iter = 0; iter < kItersPerThread; ++iter) {
        std::vector<std::vector<ObjectId>> mrq;
        index->RangeQueryBatchShared(queries, radii, &mrq);
        ASSERT_EQ(mrq.size(), ref.mrq.size());
        for (size_t qi = 0; qi < mrq.size(); ++qi) {
          std::sort(mrq[qi].begin(), mrq[qi].end());
          ASSERT_EQ(mrq[qi], ref.mrq[qi])
              << index->name() << " thread " << t << " iter " << iter
              << " query " << qi;
        }
        std::vector<std::vector<Neighbor>> nn;
        index->KnnQueryBatchShared(queries, ks, &nn);
        ASSERT_EQ(nn.size(), ref.knn.size());
        for (size_t qi = 0; qi < nn.size(); ++qi) {
          ASSERT_EQ(nn[qi].size(), ref.knn[qi].size());
          for (size_t j = 0; j < nn[qi].size(); ++j) {
            ASSERT_EQ(nn[qi][j].dist, ref.knn[qi][j])
                << index->name() << " thread " << t << " iter " << iter
                << " query " << qi << " rank " << j;
          }
        }
        if (::testing::Test::HasFatalFailure()) return;
      }
    });
  }
  for (std::thread& r : threads) r.join();
  stop_poller.store(true, std::memory_order_release);
  poller.join();
  if (::testing::Test::HasFatalFailure()) return;

  // The tiny pool really was under pressure, and nothing leaked a pin:
  // overcommit past capacity is bounded by the peak simultaneous pins
  // (a few handles per reader, times the batch engine's shards), never
  // by the number of iterations.
  BufferPoolStats s = pool->stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(pool->resident_frames(),
            pool->capacity_frames() + 16 * ReaderThreads());
  EXPECT_EQ(s.write_back_failures, 0u);
}

// -- VersionedTable teardown --------------------------------------------------

// Regression: a defaulted ~VersionedTable destroyed owner_ (the only
// shared_ptr keeping the current version alive) before domain_'s
// destructor drained pinned readers, so an in-flight reader holding a
// raw TableVersion* dereferenced freed memory.  The destructor must
// block until every ReadPin is released, with the version intact the
// whole time.
TEST(VersionedTableTest, DestructionWaitsForPinnedReaders) {
  auto v = std::make_shared<TableVersion>();
  v->live.assign(64, 1);
  v->sequence = 7;
  auto table = std::make_unique<VersionedTable>(std::move(v));

  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::atomic<bool> destroyed{false};
  std::thread reader([&] {
    VersionedTable::ReadPin pin = table->Pin();
    ASSERT_TRUE(pin);
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // ~VersionedTable has been running for a while by now; the pinned
    // version must still be fully alive.
    EXPECT_EQ(pin->sequence, 7u);
    ASSERT_EQ(pin->live.size(), 64u);
    EXPECT_EQ(pin->live[63], 1);
  });
  while (!pinned.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  std::thread destroyer([&] {
    table.reset();  // must block in the epoch drain until the pin drops
    destroyed.store(true, std::memory_order_release);
  });
  // Give a broken destructor every chance to finish early.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(destroyed.load(std::memory_order_acquire));
  release.store(true, std::memory_order_release);
  reader.join();
  destroyer.join();
  EXPECT_TRUE(destroyed.load(std::memory_order_acquire));
}

// -- directory LOCK file ------------------------------------------------------

MetricDBConfig LockTestConfig() {
  return MetricDBConfig().WithMetric("Linf").WithIndex("LAESA").WithPivots(3);
}

TEST(LockFileTest, SecondOpenWhileHeldIsRefused) {
  const std::string dir = NewDir("lock_held");
  RemoveTree(dir);
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 120, 5);
  auto db = MetricDB::CreateDurable(LockTestConfig(), bd.data, dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(Env::Default()->FileExists(JoinPath(dir, "LOCK")));

  auto second = MetricDB::OpenDurable(dir);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition)
      << second.status().ToString();

  // Close releases the lock; the next open succeeds and re-takes it.
  ASSERT_TRUE(db->Close().ok());
  EXPECT_FALSE(Env::Default()->FileExists(JoinPath(dir, "LOCK")));
  auto third = MetricDB::OpenDurable(dir);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_TRUE(Env::Default()->FileExists(JoinPath(dir, "LOCK")));
  ASSERT_TRUE(third->Close().ok());
  RemoveTree(dir);
}

TEST(LockFileTest, ForeignLiveOwnerIsRefusedWithTypedStatus) {
  const std::string dir = NewDir("lock_foreign");
  RemoveTree(dir);
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  // pid 1 is init: always alive, never us.
  ASSERT_TRUE(
      Env::Default()->CreateExclusive(JoinPath(dir, "LOCK"), "pid 1\n").ok());

  auto opened = MetricDB::OpenDurable(dir);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(opened.status().message().find("locked by process 1"),
            std::string::npos)
      << opened.status().ToString();
  RemoveTree(dir);
}

TEST(LockFileTest, StaleLocksAreBrokenAndReacquired) {
  const std::string dir = NewDir("lock_stale");
  RemoveTree(dir);
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 120, 7);
  {
    auto db = MetricDB::CreateDurable(LockTestConfig(), bd.data, dir);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db->Close().ok());
  }

  // A dead pid (way beyond any real pid space) and an unparsable LOCK
  // both count as stale: protected by nobody, broken and re-acquired.
  for (const char* contents : {"pid 999999999\n", "garbage"}) {
    ASSERT_TRUE(
        Env::Default()->CreateExclusive(JoinPath(dir, "LOCK"), contents).ok());
    auto opened = MetricDB::OpenDurable(dir);
    ASSERT_TRUE(opened.ok())
        << "LOCK contents \"" << contents
        << "\": " << opened.status().ToString();
    ASSERT_TRUE(opened->Close().ok());
    EXPECT_FALSE(Env::Default()->FileExists(JoinPath(dir, "LOCK")));
  }
  RemoveTree(dir);
}

TEST(LockFileTest, SameProcessReopenAfterSimulatedCrash) {
  const std::string dir = NewDir("lock_crash");
  RemoveTree(dir);
  FaultInjectingEnv fenv(Env::Default());
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 120, 9);

  DurabilityOptions dopts;
  dopts.env = &fenv;
  uint64_t acked_seq = 0;
  {
    auto db = MetricDB::CreateDurable(LockTestConfig(), bd.data, dir, dopts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db->Remove(3).ok());
    acked_seq = db->last_sequence();

    // Power loss mid-append: the env goes down, so the destructor's LOCK
    // removal fails silently and the file survives naming OUR live pid.
    FaultPlan plan;
    plan.kind = FaultKind::kTornWrite;
    plan.trigger = 0;  // Arm resets the mutation counter
    plan.seed = 11;
    fenv.Arm(plan);
    EXPECT_FALSE(db->Remove(4).ok());
    EXPECT_TRUE(fenv.crashed());
  }
  EXPECT_TRUE(Env::Default()->FileExists(JoinPath(dir, "LOCK")));

  // Reopen in the same process through a clean Env: the same-pid LOCK is
  // stale by definition (we are running, so we did not die holding it --
  // it can only be crash debris).
  auto reopened = MetricDB::OpenDurable(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GE(reopened->last_sequence(), acked_seq);
  EXPECT_FALSE(reopened->alive(3));
  ASSERT_TRUE(reopened->Close().ok());
  RemoveTree(dir);
}

}  // namespace
}  // namespace pmi
