// Index conformance suite: every surveyed index must return exactly the
// same answers as the LinearScan oracle for MRQ and MkNNQ, across all
// four benchmark datasets, several radii/k values, and through
// delete/re-insert update cycles.  This single parameterized suite is the
// core correctness contract of the library.

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/core/linear_scan.h"
#include "src/core/pivot_selection.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/harness/registry.h"

namespace pmi {
namespace {

struct ConformanceCase {
  std::string index;
  BenchDatasetId dataset;
};

std::string CaseName(const ::testing::TestParamInfo<ConformanceCase>& info) {
  std::string ds;
  switch (info.param.dataset) {
    case BenchDatasetId::kLa: ds = "LA"; break;
    case BenchDatasetId::kWords: ds = "Words"; break;
    case BenchDatasetId::kColor: ds = "Color"; break;
    case BenchDatasetId::kSynthetic: ds = "Synthetic"; break;
  }
  std::string ix = info.param.index;
  for (char& c : ix) {
    if (c == '*') c = 'S';   // gtest name charset
    if (c == '-' || c == '+') c = '_';
  }
  return ix + "_" + ds;
}

std::vector<ConformanceCase> AllCases() {
  std::vector<ConformanceCase> cases;
  for (const IndexSpec& spec : AllIndexSpecs()) {
    for (BenchDatasetId ds :
         {BenchDatasetId::kLa, BenchDatasetId::kWords, BenchDatasetId::kColor,
          BenchDatasetId::kSynthetic}) {
      bool discrete = ds == BenchDatasetId::kWords ||
                      ds == BenchDatasetId::kSynthetic;
      if (spec.discrete_only && !discrete) continue;
      cases.push_back({spec.name, ds});
    }
  }
  return cases;
}

class IndexConformanceTest
    : public ::testing::TestWithParam<ConformanceCase> {
 protected:
  static constexpr uint32_t kN = 900;
  static constexpr uint32_t kPivots = 4;

  void SetUp() override {
    bd_ = MakeBenchDataset(GetParam().dataset, kN, /*seed=*/2024);
    PivotSelectionOptions po;
    po.sample_size = 400;
    po.pair_sample = 200;
    pivots_ = SelectSharedPivots(bd_.data, *bd_.metric, kPivots, po);

    IndexOptions opts;
    opts.seed = 7;
    // Generous pages so even 282-d Color objects fit M-tree/PM-tree nodes.
    opts.page_size = GetParam().dataset == BenchDatasetId::kColor ? 40960
                                                                  : 4096;
    index_ = MakeIndex(GetParam().index, opts);
    index_->Build(bd_.data, *bd_.metric, pivots_);
    oracle_ = std::make_unique<LinearScan>();
    oracle_->Build(bd_.data, *bd_.metric, pivots_);
    distribution_ = EstimateDistribution(bd_.data, *bd_.metric, 4000, 3);
  }

  void ExpectSameRange(const ObjectView& q, double r) {
    std::vector<ObjectId> got, want;
    index_->RangeQuery(q, r, &got);
    oracle_->RangeQuery(q, r, &want);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << index_->name() << " MRQ(r=" << r
                         << ") diverges from linear scan";
  }

  void ExpectSameKnn(const ObjectView& q, size_t k) {
    std::vector<Neighbor> got, want;
    index_->KnnQuery(q, k, &got);
    oracle_->KnnQuery(q, k, &want);
    ASSERT_EQ(got.size(), want.size()) << index_->name() << " k=" << k;
    for (size_t i = 0; i < got.size(); ++i) {
      // Distance ties make ids ambiguous; distances must agree exactly.
      EXPECT_NEAR(got[i].dist, want[i].dist, 1e-9)
          << index_->name() << " kNN rank " << i;
    }
  }

  BenchDataset bd_{.name = "", .data = Dataset::Vectors(0),
                   .metric = nullptr, .id = BenchDatasetId::kLa};
  PivotSet pivots_;
  std::unique_ptr<MetricIndex> index_;
  std::unique_ptr<LinearScan> oracle_;
  DistanceDistribution distribution_;
};

TEST_P(IndexConformanceTest, RangeQueriesMatchLinearScan) {
  Rng rng(99);
  for (double selectivity : {0.004, 0.02, 0.08, 0.3}) {
    double r = distribution_.RadiusForSelectivity(selectivity);
    for (int t = 0; t < 4; ++t) {
      ExpectSameRange(bd_.data.view(rng() % bd_.data.size()), r);
    }
  }
}

TEST_P(IndexConformanceTest, RangeQueryZeroRadiusFindsDuplicates) {
  // r = 0 returns exactly the objects at distance zero (the query object
  // itself plus duplicates).
  Rng rng(3);
  ObjectId qid = rng() % bd_.data.size();
  ExpectSameRange(bd_.data.view(qid), 0.0);
}

TEST_P(IndexConformanceTest, RangeQueryHugeRadiusReturnsEverything) {
  std::vector<ObjectId> got;
  index_->RangeQuery(bd_.data.view(0), bd_.metric->max_distance() * 1.01,
                     &got);
  EXPECT_EQ(got.size(), bd_.data.size());
}

TEST_P(IndexConformanceTest, KnnQueriesMatchLinearScan) {
  Rng rng(1234);
  for (size_t k : {1u, 5u, 20u, 73u}) {
    for (int t = 0; t < 3; ++t) {
      ExpectSameKnn(bd_.data.view(rng() % bd_.data.size()), k);
    }
  }
}

TEST_P(IndexConformanceTest, KnnLargerThanDatasetReturnsAll) {
  std::vector<Neighbor> got;
  index_->KnnQuery(bd_.data.view(5), bd_.data.size() + 50, &got);
  EXPECT_EQ(got.size(), bd_.data.size());
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end(),
                             [](const Neighbor& a, const Neighbor& b) {
                               return a.dist < b.dist;
                             }));
}

TEST_P(IndexConformanceTest, KnnZeroReturnsNothing) {
  std::vector<Neighbor> got;
  index_->KnnQuery(bd_.data.view(1), 0, &got);
  EXPECT_TRUE(got.empty());
}

TEST_P(IndexConformanceTest, UpdatesPreserveCorrectness) {
  // The paper's update operation: delete an object, insert it back
  // (Section 6.3).  Interleave with queries to catch stale state.
  Rng rng(77);
  double r = distribution_.RadiusForSelectivity(0.03);
  for (int round = 0; round < 8; ++round) {
    ObjectId victim = rng() % bd_.data.size();
    index_->Remove(victim);
    oracle_->Remove(victim);
    ExpectSameRange(bd_.data.view(rng() % bd_.data.size()), r);
    index_->Insert(victim);
    oracle_->Insert(victim);
    ExpectSameKnn(bd_.data.view(rng() % bd_.data.size()), 10);
  }
}

TEST_P(IndexConformanceTest, RemovedObjectsStayRemoved) {
  Rng rng(55);
  std::set<ObjectId> removed;
  for (int i = 0; i < 25; ++i) {
    ObjectId victim = rng() % bd_.data.size();
    if (!removed.insert(victim).second) continue;
    index_->Remove(victim);
    oracle_->Remove(victim);
  }
  std::vector<ObjectId> got;
  index_->RangeQuery(bd_.data.view(*removed.begin()),
                     bd_.metric->max_distance() * 1.01, &got);
  EXPECT_EQ(got.size(), bd_.data.size() - removed.size());
  for (ObjectId id : got) EXPECT_EQ(removed.count(id), 0u);
}

TEST_P(IndexConformanceTest, StorageAccountingIsSane) {
  EXPECT_GT(index_->memory_bytes() + index_->disk_bytes(), 0u);
  const IndexSpec* spec = FindIndexSpec(GetParam().index);
  ASSERT_NE(spec, nullptr);
  if (spec->uses_disk) {
    EXPECT_GT(index_->disk_bytes(), 0u)
        << "disk index reports no disk storage";
  } else {
    EXPECT_EQ(index_->disk_bytes(), 0u)
        << "in-memory index reports disk storage";
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexConformanceTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace pmi
