// Metric-axiom and BoundedDistance fuzz for every registered metric.
//
// Every pruning lemma in this library is sound only if the metric axioms
// hold, and the threshold-aware BoundedDistance kernels (early-abandon
// norms, banded edit DP) are only exact under their contract: when
// d(a, b) <= tau the bounded kernel returns the Distance value
// BIT-IDENTICAL, otherwise it returns *some* value certified > tau.
// This suite fuzzes both on the four paper metrics (L2/LA, edit/Words,
// L1/Color, Linf/Synthetic) plus the continuous-Linf variant, over
// generated objects and adversarial ones (duplicates, domain extremes,
// single-coordinate spikes, empty/long strings) -- with tau swept
// through the adversarial one-ulp band around the true distance, where
// an off-by-one-rounding kernel would flip verification decisions.

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/dataset.h"
#include "src/core/metric.h"
#include "src/core/rng.h"
#include "src/data/generators.h"

namespace pmi {
namespace {

constexpr uint32_t kObjects = 160;
constexpr uint32_t kTriples = 600;
constexpr uint32_t kBoundedPairs = 250;

/// One metric under test with its object pool (dataset objects plus
/// adversarial additions of the same kind/dimension).
struct MetricCase {
  std::string label;
  std::unique_ptr<Metric> metric;
  Dataset pool;
  bool adversarial_in_domain = true;  // extras respect max_distance()

  MetricCase(std::string l, std::unique_ptr<Metric> m, Dataset p)
      : label(std::move(l)), metric(std::move(m)), pool(std::move(p)) {}
};

/// Appends adversarial vectors spanning the observed coordinate domain:
/// duplicates, all-min, all-max, one-coordinate spikes, and near-equal
/// pairs one ulp apart.
void AddAdversarialVectors(Dataset* pool) {
  const uint32_t dim = pool->dim();
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  for (uint32_t i = 0; i < pool->size(); ++i) {
    ObjectView v = pool->view(i);
    for (uint32_t j = 0; j < dim; ++j) {
      lo = std::min(lo, v.vec[j]);
      hi = std::max(hi, v.vec[j]);
    }
  }
  std::vector<float> row(dim, lo);
  pool->AddVector(row);              // all-min corner
  row.assign(dim, hi);
  pool->AddVector(row);              // all-max corner
  row.assign(dim, (lo + hi) / 2);
  pool->AddVector(row);              // center
  row[0] = hi;                       // single-coordinate spike
  pool->AddVector(row);
  ObjectView first = pool->view(0);  // exact duplicate of a real object
  pool->Add(first);
  row.assign(first.vec, first.vec + dim);  // one-ulp-off near-duplicate
  row[dim / 2] = std::nextafter(row[dim / 2], hi);
  pool->AddVector(row);
}

void AddAdversarialStrings(Dataset* pool) {
  pool->AddString("");
  pool->AddString("a");
  pool->AddString(std::string(34, 'z'));          // max generator length
  pool->AddString(std::string(17, 'a') + std::string(17, 'b'));
  std::string dup(pool->view(0).AsString());
  pool->AddString(dup);                           // duplicate
  if (!dup.empty()) dup.back() = dup.back() == 'q' ? 'x' : 'q';
  pool->AddString(dup);                           // edit distance 1 away
}

std::vector<MetricCase> MakeCases() {
  std::vector<MetricCase> cases;
  for (BenchDatasetId id :
       {BenchDatasetId::kLa, BenchDatasetId::kWords, BenchDatasetId::kColor,
        BenchDatasetId::kSynthetic}) {
    BenchDataset bd = MakeBenchDataset(id, kObjects, /*seed=*/91);
    if (bd.data.kind() == ObjectKind::kVector) {
      AddAdversarialVectors(&bd.data);
    } else {
      AddAdversarialStrings(&bd.data);
    }
    cases.emplace_back(bd.name, std::move(bd.metric), std::move(bd.data));
  }
  // Continuous L-infinity (the non-discrete configuration BKT/FQT never
  // see, but LAESA and the trees do).
  {
    BenchDataset bd = MakeBenchDataset(BenchDatasetId::kLa, kObjects, 92);
    AddAdversarialVectors(&bd.data);
    cases.emplace_back(
        "Linf-continuous",
        std::make_unique<LInfMetric>(bd.data.dim(), 20000.0, false),
        std::move(bd.data));
  }
  return cases;
}

TEST(MetricPropertyTest, AxiomsHoldOnGeneratedAndAdversarialObjects) {
  for (const MetricCase& c : MakeCases()) {
    SCOPED_TRACE(c.label);
    const uint32_t n = c.pool.size();
    Rng rng(1234);
    for (uint32_t t = 0; t < kTriples; ++t) {
      ObjectView a = c.pool.view(rng() % n);
      ObjectView b = c.pool.view(rng() % n);
      ObjectView x = c.pool.view(rng() % n);
      const double dab = c.metric->Distance(a, b);
      const double dba = c.metric->Distance(b, a);
      const double dax = c.metric->Distance(a, x);
      const double dxb = c.metric->Distance(x, b);
      // Non-negativity and symmetry (bitwise -- both directions must
      // accumulate identically or BoundedDistance's exactness breaks).
      EXPECT_GE(dab, 0.0);
      EXPECT_EQ(dab, dba);
      // Identity of the reflexive form.
      EXPECT_EQ(c.metric->Distance(a, a), 0.0);
      // Triangle inequality, with a relative epsilon for the float
      // accumulations of the vector norms.
      EXPECT_LE(dab, dax + dxb + 1e-9 * (1.0 + dax + dxb));
      // Domain bound claimed by max_distance().
      EXPECT_LE(dab, c.metric->max_distance() * (1 + 1e-12));
    }
  }
}

TEST(MetricPropertyTest, BoundedDistanceAgreesWithDistance) {
  for (const MetricCase& c : MakeCases()) {
    SCOPED_TRACE(c.label);
    const uint32_t n = c.pool.size();
    Rng rng(777);
    for (uint32_t t = 0; t < kBoundedPairs; ++t) {
      ObjectView a = c.pool.view(rng() % n);
      ObjectView b = c.pool.view(rng() % n);
      const double d = c.metric->Distance(a, b);
      const double thresholds[] = {
          d,  // exact boundary: inside by contract (<=)
          std::nextafter(d, std::numeric_limits<double>::infinity()),
          std::nextafter(d, -std::numeric_limits<double>::infinity()),
          d * 0.5,
          d * 2 + 0.125,
          0.0,
          -1.0,
          c.metric->max_distance(),
          std::numeric_limits<double>::infinity(),
      };
      for (double tau : thresholds) {
        const double bounded = c.metric->BoundedDistance(a, b, tau);
        if (d <= tau) {
          // Within the threshold the kernel must reproduce Distance
          // bit for bit: verification sites compare these values.
          EXPECT_EQ(bounded, d) << "tau=" << tau;
        } else {
          // Beyond it, any certified-exceeding value is legal.
          EXPECT_GT(bounded, tau) << "d=" << d;
        }
      }
    }
  }
}

TEST(MetricPropertyTest, DiscreteFlagsMatchThePaper) {
  // Table 1: BKT/FQT applicability hangs on these flags, so pin them.
  EXPECT_FALSE(MakeMetricFor(BenchDatasetId::kLa)->discrete());
  EXPECT_FALSE(MakeMetricFor(BenchDatasetId::kColor)->discrete());
  EXPECT_TRUE(MakeMetricFor(BenchDatasetId::kWords)->discrete());
  EXPECT_TRUE(MakeMetricFor(BenchDatasetId::kSynthetic)->discrete());
}

}  // namespace
}  // namespace pmi
