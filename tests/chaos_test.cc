// The chaos orchestrator -- PR 9's acceptance harness.
//
// One long-lived durable self-healing service takes >= 200 scripted
// fault rounds (5 fault kinds x 40 trigger offsets) while concurrent
// per-shard writers drive toggle batches through ApplyWithRetry and a
// reader hammers MkNN through QueryWithRetry.  Every round must end
// with the service converged back to all-shards-writable (via
// supervisor recovery, or circuit-breaker trip + manual ResetShard),
// with zero crashes and zero untyped errors, and with every shard's
// state equal to a replay of exactly its applied op prefix:
//
//   - each writer owns one shard's id stripe (disjoint ownership, the
//     retry idempotence contract) and stops at the first terminal
//     batch failure, so per round at most ONE batch per shard is in
//     limbo;
//   - at round end the shard's recovered sequence decides the limbo
//     batch both ways: S == acked means the batch (and any WAL orphan
//     of it) never committed, S == acked + |batch| means recovery
//     replayed it.  Any other value -- in particular acked + 2|batch|,
//     the double-apply signature -- fails the test;
//   - liveness is then checked id-by-id against the replayed bitmap,
//     and periodically MRQ/MkNN results are checked bit-identical
//     against a LinearScan oracle built at that bitmap.
//
// kBitFlip is silent media corruption: the write acks, the poison sits
// in the WAL until the next recovery truncates it (PR 6 scopes the ack
// guarantee to reported faults for exactly this reason).  The harness
// checkpoints after each bit-flip round -- the standard scrub defense
// -- so the silent damage cannot masquerade as a recovery bug in a
// later round.
//
// Knobs: PMI_CHAOS_ROUNDS (default 200), PMI_FAULT_SEED, and
// PMI_RECOVERY_LOG (append one line per round for the CI artifact).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/metric_db.h"
#include "src/core/rng.h"
#include "src/data/generators.h"
#include "src/service/retry.h"
#include "src/service/sharded_service.h"
#include "src/storage/env.h"
#include "src/storage/fault_env.h"

namespace pmi {
namespace {

constexpr uint64_t kSeed = 20260809;
constexpr uint32_t kNumShards = 3;
constexpr uint32_t kDatasetN = 180;
constexpr uint32_t kOpsPerBatch = 3;
constexpr uint32_t kBatchesPerWriter = 2;

uint32_t EnvU32(const char* name, uint32_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
}

std::string NewDir(const std::string& name) {
  // Per-process suffix: concurrent invocations (CI shards, a soak loop
  // next to ctest) must not share shard directories.
  return ::testing::TempDir() + "pmi_chaos_" + name + "_" +
         std::to_string(::getpid());
}

void RemoveTree(const std::string& dir) {
  Env* env = Env::Default();
  StatusOr<std::vector<std::string>> names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      const std::string path = JoinPath(dir, name);
      if (env->RemoveFile(path).ok()) continue;
      RemoveTree(path);
    }
  }
  ::rmdir(dir.c_str());
}

bool WaitFor(const std::function<bool()>& pred, double timeout_ms) {
  const auto end = std::chrono::steady_clock::now() +
                   std::chrono::duration<double, std::milli>(timeout_ms);
  while (std::chrono::steady_clock::now() < end) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

bool AllWritable(const ShardedService& svc) {
  for (const Status& s : svc.write_statuses()) {
    if (!s.ok()) return false;
  }
  return true;
}

/// Terminal statuses the chaos contract allows; anything else is an
/// untyped failure and fails the run.
bool IsTypedTerminal(const Status& s) {
  switch (s.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

/// One writer's round outcome for its shard.
struct WriterOutcome {
  uint64_t acked_ops = 0;
  std::vector<UpdateOp> limbo;  // the (single) terminally-failed batch
  Status terminal;              // its collapsed status
  uint64_t untyped = 0;
  uint64_t attempts = 0;
  uint64_t idempotent_skips = 0;
};

/// Aggregate chaos counters for the summary line.
struct ChaosStats {
  uint64_t rounds = 0;
  uint64_t faults_fired = 0;
  uint64_t limbo_batches = 0;
  uint64_t orphan_replays = 0;
  uint64_t breaker_resets = 0;
  uint64_t reads_ok = 0;
  uint64_t reads_typed = 0;
  uint64_t untyped = 0;
  uint64_t retry_attempts = 0;
  uint64_t idempotent_skips = 0;
};

TEST(ChaosTest, ScriptedFaultSweepConvergesAndMatchesOracle) {
  const uint64_t base_seed = EnvU32("PMI_FAULT_SEED", 20260809u);
  const uint32_t rounds = EnvU32("PMI_CHAOS_ROUNDS", 200);
  std::ofstream log;
  if (const char* path = std::getenv("PMI_RECOVERY_LOG")) {
    log.open(path, std::ios::app);
  }

  const std::string dir = NewDir("sweep");
  RemoveTree(dir);
  FaultInjectingEnv fenv(Env::Default());

  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, kDatasetN,
                                     4242);
  const Dataset data = bd.data;

  ServiceOptions sopts;
  sopts.num_shards = kNumShards;
  sopts.workers = 3;
  sopts.max_queue = 128;
  sopts.self_heal = true;
  sopts.supervisor.poll_interval_ms = 1;
  sopts.supervisor.initial_backoff_ms = 1;
  sopts.supervisor.max_backoff_ms = 8;
  // Low enough that a long crash window (torn write) can trip the
  // breaker, exercising the ResetShard path mid-sweep.
  sopts.supervisor.max_recovery_attempts = 6;
  sopts.supervisor.seed = base_seed;
  DurabilityOptions dopts;
  dopts.env = &fenv;
  auto svc_or = ShardedService::CreateDurable(
      MetricDBConfig().WithMetric("Linf").WithIndex("LAESA").WithPivots(4),
      std::move(bd.data), dir, sopts, dopts);
  ASSERT_TRUE(svc_or.ok()) << svc_or.status().ToString();
  ShardedService& svc = **svc_or;

  // Disjoint stripes: writer s owns exactly shard s's members.
  std::vector<std::vector<ObjectId>> stripe(kNumShards);
  for (uint32_t s = 0; s < kNumShards; ++s) stripe[s] = svc.router().members(s);

  // The replayed ground truth: liveness per id, plus each shard's
  // expected sequence.  Updated only from resolved batches.
  std::vector<uint8_t> live(kDatasetN, 1);
  std::vector<uint64_t> acked_seq(kNumShards, 0);

  const FaultKind kKinds[] = {FaultKind::kTornWrite, FaultKind::kShortWrite,
                              FaultKind::kFailedSync, FaultKind::kNoSpace,
                              FaultKind::kBitFlip};
  ChaosStats cs;

  RetryPolicy wpolicy;
  wpolicy.max_attempts = 100;
  wpolicy.backoff = {0.5, 4.0, 2.0};
  RetryPolicy rpolicy;
  rpolicy.max_attempts = 20;
  rpolicy.backoff = {0.25, 2.0, 2.0};

  const auto oracle_check = [&](const std::string& when) {
    StatusOr<MetricDB> oracle = MetricDB::Create(
        MetricDBConfig().WithMetric("Linf").WithIndex("LinearScan"),
        Dataset(data));
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    for (ObjectId id = 0; id < kDatasetN; ++id) {
      if (!live[id]) {
        ASSERT_TRUE(oracle->Remove(id).ok());
      }
    }
    Rng qrng(base_seed ^ 0xfeed);
    std::vector<ObjectView> queries;
    for (int i = 0; i < 5; ++i) queries.push_back(data.view(qrng() % kDatasetN));
    StatusOr<QueryResult> omrq =
        oracle->Query(QueryRequest::RangeBatch(queries, 0.4));
    StatusOr<QueryResult> smrq =
        svc.Query(QueryRequest::RangeBatch(queries, 0.4));
    ASSERT_TRUE(omrq.ok() && smrq.ok()) << when;
    for (size_t q = 0; q < queries.size(); ++q) {
      std::vector<ObjectId> want = omrq->ids[q];
      std::sort(want.begin(), want.end());
      ASSERT_EQ(smrq->ids[q], want) << when << " MRQ query " << q;
    }
    StatusOr<QueryResult> oknn =
        oracle->Query(QueryRequest::KnnBatch(queries, size_t{4}));
    StatusOr<QueryResult> sknn =
        svc.Query(QueryRequest::KnnBatch(queries, size_t{4}));
    ASSERT_TRUE(oknn.ok() && sknn.ok()) << when;
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(sknn->neighbors[q].size(), oknn->neighbors[q].size()) << when;
      for (size_t i = 0; i < oknn->neighbors[q].size(); ++i) {
        ASSERT_EQ(sknn->neighbors[q][i].id, oknn->neighbors[q][i].id) << when;
        ASSERT_EQ(sknn->neighbors[q][i].dist, oknn->neighbors[q][i].dist)
            << when;
      }
    }
  };

  for (uint32_t round = 0; round < rounds; ++round) {
    const FaultKind kind = kKinds[round % 5];
    // A round commits ~12 durability mutations; this modulus keeps most
    // scripted points inside the window that actually fires.
    const uint64_t trigger = (round / 5) % 12;
    SCOPED_TRACE("round " + std::to_string(round) + ": " +
                 FaultKindName(kind) + " at mutation " +
                 std::to_string(trigger));
    fenv.Arm({kind, trigger, base_seed ^ (round * 2654435761ull)});

    // Writers: kBatchesPerWriter toggle batches on this shard's stripe,
    // one op per id per batch (so the fence liveness probe is never
    // ambiguous), stopping at the first terminal failure.
    std::vector<WriterOutcome> out(kNumShards);
    std::atomic<uint32_t> writers_live{kNumShards};
    std::vector<std::thread> writers;
    for (uint32_t s = 0; s < kNumShards; ++s) {
      writers.emplace_back([&, s] {
        for (uint32_t b = 0; b < kBatchesPerWriter; ++b) {
          std::vector<UpdateOp> batch;
          for (uint32_t j = 0; j < kOpsPerBatch; ++j) {
            const ObjectId id =
                stripe[s][(round * kBatchesPerWriter * kOpsPerBatch +
                           b * kOpsPerBatch + j) %
                          stripe[s].size()];
            batch.push_back(live[id] ? UpdateOp::Remove(id)
                                     : UpdateOp::Insert(id));
            // Tentatively toggle so op j+1 sees op j's effect; rolled
            // back below if the batch does not commit.
            live[id] ^= 1;
          }
          RetryStats rs;
          StatusOr<ApplyResult> r = ApplyWithRetry(svc, batch, wpolicy, {}, &rs);
          out[s].attempts += rs.attempts;
          out[s].idempotent_skips += rs.idempotent_skips;
          const Status st = r.ok() ? r->shard_status[s] : r.status();
          if (st.ok()) {
            out[s].acked_ops += batch.size();
            continue;
          }
          // Terminal: roll the tentative toggles back and park the
          // batch in limbo for the round-end sequence check.
          for (const UpdateOp& op : batch) live[op.id] ^= 1;
          out[s].limbo = batch;
          out[s].terminal = st;
          if (!IsTypedTerminal(st)) ++out[s].untyped;
          break;
        }
        --writers_live;
      });
    }

    // Reader: MkNN through the retry layer for the whole writer window.
    uint64_t reads_ok = 0, reads_typed = 0, reads_untyped = 0;
    std::thread reader([&] {
      Rng rrng(base_seed ^ round ^ 0xbeef);
      while (writers_live.load() > 0) {
        std::vector<ObjectView> qs;
        for (int i = 0; i < 3; ++i) qs.push_back(data.view(rrng() % kDatasetN));
        RetryStats rs;
        StatusOr<QueryResult> r =
            QueryWithRetry(svc, QueryRequest::KnnBatch(qs, size_t{3}), rpolicy,
                           {}, &rs);
        if (r.ok()) {
          ++reads_ok;
        } else if (IsTypedTerminal(r.status())) {
          ++reads_typed;
        } else {
          ++reads_untyped;
          ADD_FAILURE() << "untyped read failure: " << r.status().ToString();
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });

    // Heal the env once the fault has fired (or the round turned out
    // not to reach the trigger), then let everything drain.
    WaitFor([&] { return fenv.triggered() || writers_live.load() == 0; },
            5000);
    const bool fired = fenv.triggered();
    if (fired) ++cs.faults_fired;
    if (fired && kind == FaultKind::kTornWrite) {
      // Hold the post-crash powered-off window open long enough for the
      // supervisor to burn a few recovery attempts against it -- the
      // backoff/breaker path must see real failures in the sweep, not
      // only in the unit tests.
      std::this_thread::sleep_for(std::chrono::milliseconds(8));
    }
    fenv.Arm({FaultKind::kNone, 0, 1});
    for (std::thread& t : writers) t.join();
    reader.join();
    cs.reads_ok += reads_ok;
    cs.reads_typed += reads_typed;
    cs.untyped += reads_untyped;

    // Convergence: all shards writable again, with a manual
    // circuit-breaker reset when a long crash window pinned a shard.
    if (!WaitFor([&] { return AllWritable(svc); }, 10000)) {
      std::vector<ShardHealthReport> health = svc.health();
      for (uint32_t s = 0; s < kNumShards; ++s) {
        if (health[s].health == ShardHealth::kPinnedReadOnly) {
          ASSERT_TRUE(svc.ResetShard(s).ok());
          ++cs.breaker_resets;
        }
      }
      const bool converged = WaitFor([&] { return AllWritable(svc); }, 10000);
      std::string detail;
      for (const ShardHealthReport& h : svc.health()) {
        detail += std::string(" [") + ShardHealthName(h.health) +
                  " attempts=" + std::to_string(h.attempts) + " " +
                  h.last_error.ToString() + "]";
      }
      if (!converged) {
        // Liveness probe for the post-mortem: a supervisor whose sweep
        // counter stops advancing is stuck, not backing off.
        const ShardSupervisor::Stats s0 = svc.supervisor()->stats();
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        const ShardSupervisor::Stats s1 = svc.supervisor()->stats();
        detail += " env_crashed=" + std::to_string(fenv.crashed()) +
                  " sweeps=" + std::to_string(s0.health_checks) + "->" +
                  std::to_string(s1.health_checks) +
                  " faults_detected=" + std::to_string(s1.faults_detected) +
                  " recoveries=" + std::to_string(s1.recoveries) +
                  " failed_attempts=" + std::to_string(s1.failed_attempts) +
                  " breaker_trips=" + std::to_string(s1.breaker_trips);
      }
      ASSERT_TRUE(converged)
          << "service did not converge to all-shards-writable:" << detail;
    }

    // Resolve each shard's limbo batch from its recovered sequence.
    // MetricDB logs one WAL record per op, so a torn tail may commit
    // any PREFIX of the batch (in op order); recovery replays exactly
    // that prefix.  S - acked must therefore land in [0, |batch|] --
    // anything above |batch| is the double-apply signature -- and the
    // ground truth absorbs exactly the first S - acked ops.
    const std::vector<uint64_t> seqs = svc.sequences();
    for (uint32_t s = 0; s < kNumShards; ++s) {
      EXPECT_EQ(out[s].untyped, 0u)
          << "untyped write failure on shard " << s << ": "
          << out[s].terminal.ToString();
      cs.untyped += out[s].untyped;
      cs.retry_attempts += out[s].attempts;
      cs.idempotent_skips += out[s].idempotent_skips;
      acked_seq[s] += out[s].acked_ops;
      ASSERT_GE(seqs[s], acked_seq[s])
          << "shard " << s << " recovery lost acknowledged updates";
      const uint64_t extra = seqs[s] - acked_seq[s];
      if (out[s].limbo.empty()) {
        ASSERT_EQ(extra, 0u)
            << "shard " << s << " gained updates nobody issued";
      } else {
        ++cs.limbo_batches;
        ASSERT_LE(extra, out[s].limbo.size())
            << "shard " << s << " applied more than the limbo batch: "
            << "double apply";
        for (uint64_t i = 0; i < extra; ++i) live[out[s].limbo[i].id] ^= 1;
        if (extra > 0) ++cs.orphan_replays;
        acked_seq[s] = seqs[s];
      }
    }

    // Bit-exact liveness against the replayed ground truth.
    for (ObjectId id = 0; id < kDatasetN; ++id) {
      ASSERT_EQ(svc.alive(id), static_cast<bool>(live[id]))
          << "liveness diverged at id " << id;
    }

    if (kind == FaultKind::kBitFlip) {
      // Scrub: absorb the silently corrupted WAL record into a fresh
      // checkpoint so it cannot surface in a later round's recovery.
      ASSERT_TRUE(svc.Checkpoint().ok());
    }
    if (round % 25 == 24) {
      oracle_check("round " + std::to_string(round));
    }

    ++cs.rounds;
    if (log.is_open()) {
      for (uint32_t s = 0; s < kNumShards; ++s) {
        log << "  shard" << s << ":";
        StatusOr<std::vector<std::string>> names =
            Env::Default()->ListDir(dir + "/shard-00" + std::to_string(s));
        if (names.ok()) {
          std::sort(names->begin(), names->end());
          for (const std::string& n : *names) {
            StatusOr<uint64_t> sz = Env::Default()->FileSize(
                dir + "/shard-00" + std::to_string(s) + "/" + n);
            log << " " << n << "=" << (sz.ok() ? *sz : 0);
          }
        }
        log << "\n";
      }
      log << "chaos round=" << round << " kind=" << FaultKindName(kind)
          << " trigger=" << trigger << " fired=" << fired
          << " limbo=" << cs.limbo_batches
          << " orphan_replays=" << cs.orphan_replays
          << " breaker_resets=" << cs.breaker_resets
          << " recoveries=" << svc.supervisor()->stats().recoveries
          << " faults_detected=" << svc.supervisor()->stats().faults_detected
          << " seq=[" << seqs[0] << "," << seqs[1] << "," << seqs[2] << "]"
          << "\n";
    }
  }

  // Final sweep-wide assertions.
  EXPECT_EQ(cs.untyped, 0u);
  EXPECT_GE(cs.rounds, rounds);
  EXPECT_GT(cs.faults_fired, 0u) << "the sweep never actually faulted";
  EXPECT_GT(cs.reads_ok, 0u);
  oracle_check("final");

  const ShardSupervisor::Stats sup = svc.supervisor()->stats();
  ::testing::Test::RecordProperty("chaos_rounds", static_cast<int>(cs.rounds));
  ::testing::Test::RecordProperty("faults_fired",
                                  static_cast<int>(cs.faults_fired));
  ::testing::Test::RecordProperty("recoveries",
                                  static_cast<int>(sup.recoveries));
  ::testing::Test::RecordProperty("breaker_trips",
                                  static_cast<int>(sup.breaker_trips));
  if (log.is_open()) {
    log << "chaos summary rounds=" << cs.rounds << " fired=" << cs.faults_fired
        << " recoveries=" << sup.recoveries
        << " failed_attempts=" << sup.failed_attempts
        << " breaker_trips=" << sup.breaker_trips
        << " limbo=" << cs.limbo_batches
        << " orphan_replays=" << cs.orphan_replays
        << " idempotent_skips=" << cs.idempotent_skips
        << " reads_ok=" << cs.reads_ok << " reads_typed=" << cs.reads_typed
        << " untyped=" << cs.untyped << "\n";
  }
  EXPECT_TRUE(svc.Close().ok());
  if (::testing::Test::HasFailure()) {
    // Preserve the directory for a post-mortem.
    std::fprintf(stderr, "chaos state preserved at %s\n", dir.c_str());
  } else {
    RemoveTree(dir);
  }
}

}  // namespace
}  // namespace pmi
