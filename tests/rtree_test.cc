// R-tree tests: structural invariants (every child MBR bounds its
// subtree), query-by-traversal correctness against brute force, bulk load
// vs dynamic insertion equivalence, and deletion.

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/rng.h"
#include "src/storage/paged_file.h"
#include "src/storage/rtree.h"

namespace pmi {
namespace {

std::vector<RTree::LeafEntry> RandomEntries(uint32_t n, uint32_t dims,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<RTree::LeafEntry> out(n);
  for (uint32_t i = 0; i < n; ++i) {
    out[i].oid = i;
    out[i].ref = {uint64_t(i) * 16, 16};
    out[i].point.resize(dims);
    for (uint32_t d = 0; d < dims; ++d) {
      out[i].point[d] = float(rng() % 10000) / 10.0f;
    }
  }
  return out;
}

// Collects all leaf oids under `page`, verifying MBR containment on the way.
void CollectAndCheck(const RTree& t, PageId page, const float* lo,
                     const float* hi, std::set<ObjectId>* out) {
  RTree::NodeView node = t.ReadNode(page);
  for (uint32_t i = 0; i < node.count; ++i) {
    if (node.is_leaf) {
      const float* pt = node.point(i);
      if (lo != nullptr) {
        for (uint32_t d = 0; d < t.dims(); ++d) {
          EXPECT_GE(pt[d], lo[d]) << "point escapes parent MBR";
          EXPECT_LE(pt[d], hi[d]) << "point escapes parent MBR";
        }
      }
      EXPECT_TRUE(out->insert(node.oid(i)).second) << "duplicate oid";
    } else {
      if (lo != nullptr) {
        for (uint32_t d = 0; d < t.dims(); ++d) {
          EXPECT_GE(node.lo(i)[d], lo[d]);
          EXPECT_LE(node.hi(i)[d], hi[d]);
        }
      }
      CollectAndCheck(t, node.child(i), node.lo(i), node.hi(i), out);
    }
  }
}

class RTreeModes : public ::testing::TestWithParam<bool> {};

TEST_P(RTreeModes, ContainsExactlyTheInsertedPoints) {
  const bool bulk = GetParam();
  PerfCounters c;
  PagedFile f(1024, 128 * 1024, &c);
  RTree t(&f, 3);
  auto entries = RandomEntries(3000, 3, 11);
  if (bulk) {
    t.BulkLoad(entries);
  } else {
    for (auto& e : entries) t.Insert(e);
  }
  std::set<ObjectId> seen;
  CollectAndCheck(t, t.root(), nullptr, nullptr, &seen);
  EXPECT_EQ(seen.size(), entries.size());
}

TEST_P(RTreeModes, RangeSearchMatchesBruteForce) {
  const bool bulk = GetParam();
  PerfCounters c;
  PagedFile f(1024, 128 * 1024, &c);
  RTree t(&f, 2);
  auto entries = RandomEntries(2000, 2, 13);
  if (bulk) {
    t.BulkLoad(entries);
  } else {
    for (auto& e : entries) t.Insert(e);
  }
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    float qlo[2], qhi[2];
    for (int d = 0; d < 2; ++d) {
      float a = float(rng() % 10000) / 10.0f;
      float b = float(rng() % 10000) / 10.0f;
      qlo[d] = std::min(a, b);
      qhi[d] = std::max(a, b);
    }
    std::set<ObjectId> want;
    for (auto& e : entries) {
      bool in = true;
      for (int d = 0; d < 2; ++d) {
        in = in && e.point[d] >= qlo[d] && e.point[d] <= qhi[d];
      }
      if (in) want.insert(e.oid);
    }
    std::set<ObjectId> got;
    std::vector<PageId> stack{t.root()};
    while (!stack.empty()) {
      PageId page = stack.back();
      stack.pop_back();
      RTree::NodeView node = t.ReadNode(page);
      for (uint32_t i = 0; i < node.count; ++i) {
        if (node.is_leaf) {
          const float* pt = node.point(i);
          bool in = true;
          for (int d = 0; d < 2; ++d) {
            in = in && pt[d] >= qlo[d] && pt[d] <= qhi[d];
          }
          if (in) got.insert(node.oid(i));
        } else {
          bool overlap = true;
          for (int d = 0; d < 2; ++d) {
            overlap = overlap && node.lo(i)[d] <= qhi[d] &&
                      node.hi(i)[d] >= qlo[d];
          }
          if (overlap) stack.push_back(node.child(i));
        }
      }
    }
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(BulkAndDynamic, RTreeModes, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "BulkLoad" : "DynamicInsert";
                         });

TEST(RTreeTest, RemoveDropsEntryAndKeepsInvariants) {
  PerfCounters c;
  PagedFile f(1024, 128 * 1024, &c);
  RTree t(&f, 2);
  auto entries = RandomEntries(1000, 2, 29);
  t.BulkLoad(entries);
  Rng rng(31);
  std::set<ObjectId> removed;
  for (int i = 0; i < 300; ++i) {
    uint32_t idx = rng() % entries.size();
    if (removed.count(entries[idx].oid)) continue;
    EXPECT_TRUE(t.Remove(entries[idx].point.data(), entries[idx].oid));
    removed.insert(entries[idx].oid);
  }
  // Double-remove fails cleanly.
  if (!removed.empty()) {
    ObjectId gone = *removed.begin();
    EXPECT_FALSE(t.Remove(entries[gone].point.data(), gone));
  }
  std::set<ObjectId> seen;
  CollectAndCheck(t, t.root(), nullptr, nullptr, &seen);
  EXPECT_EQ(seen.size(), entries.size() - removed.size());
  for (ObjectId r : removed) EXPECT_EQ(seen.count(r), 0u);
}

TEST(RTreeTest, ReinsertAfterRemove) {
  PerfCounters c;
  PagedFile f(1024, 128 * 1024, &c);
  RTree t(&f, 2);
  auto entries = RandomEntries(500, 2, 37);
  t.BulkLoad(entries);
  for (int round = 0; round < 50; ++round) {
    auto& e = entries[round * 7 % entries.size()];
    ASSERT_TRUE(t.Remove(e.point.data(), e.oid));
    t.Insert(e);
  }
  std::set<ObjectId> seen;
  CollectAndCheck(t, t.root(), nullptr, nullptr, &seen);
  EXPECT_EQ(seen.size(), entries.size());
}

TEST(RTreeTest, BulkLoadPacksTighterThanInsertion) {
  PerfCounters c1, c2;
  PagedFile f1(1024, 128 * 1024, &c1), f2(1024, 128 * 1024, &c2);
  RTree a(&f1, 4), b(&f2, 4);
  auto entries = RandomEntries(4000, 4, 41);
  for (auto& e : entries) a.Insert(e);
  b.BulkLoad(entries);
  EXPECT_LT(f2.num_pages(), f1.num_pages());
}

}  // namespace
}  // namespace pmi
