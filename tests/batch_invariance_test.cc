// Batch-engine invariance suite -- the exactness contract of the
// block-major batch engine (extends tests/thread_invariance_test.cc to
// the batch execution axes).
//
// The contract (src/core/index.h, pivot_table.h ScanBlockMajor): batch
// results, total compdists, and per-query OpStats are independent of
//   - execution mode (block-major vs the frozen query-major loop),
//   - batch order (permuting the queries permutes the answers),
//   - batch split (one big batch == concatenated sub-batches),
//   - thread count, and
//   - SIMD dispatch level,
// for every index that opts into block_major_batches() -- LAESA, EPT,
// EPT*, and CPT (whose MRQ batches must additionally replay the
// query-major buffer-pool access sequence exactly, so even page
// accesses are pinned).

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/pivot_selection.h"
#include "src/core/simd.h"
#include "src/core/thread_pool.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/tables/cpt.h"
#include "src/tables/ept.h"
#include "src/tables/laesa.h"

namespace pmi {
namespace {

// 27 queries: an awkward size on purpose -- it exercises the
// kMultiQueryTile=16 tiling, the register groups of 4/8, and the scalar
// tail of the multi kernels, plus ragged ParallelFor chunking.
constexpr uint32_t kN = 1400;
constexpr uint32_t kQueries = 27;

struct World {
  World() : bd(MakeBenchDataset(BenchDatasetId::kSynthetic, kN, 11)) {
    PivotSelectionOptions po;
    po.sample_size = 400;
    po.pair_sample = 200;
    pivots = SelectSharedPivots(bd.data, *bd.metric, 5, po);
    distribution = EstimateDistribution(bd.data, *bd.metric, 2000, 3);
    Rng rng(271);
    for (uint32_t i = 0; i < kQueries; ++i) {
      queries.push_back(bd.data.view(rng() % kN));
    }
    // Mixed per-query thresholds: the batch descriptors carry them, so
    // the invariance axes must hold with heterogeneous batches too.
    for (uint32_t i = 0; i < kQueries; ++i) {
      radii.push_back(
          distribution.RadiusForSelectivity(0.01 + 0.02 * (i % 5)));
      ks.push_back(i % 7 == 0 ? 1 : 3 + (i % 11));
    }
  }

  BenchDataset bd;
  PivotSet pivots;
  DistanceDistribution distribution;
  std::vector<ObjectView> queries;
  std::vector<double> radii;
  std::vector<size_t> ks;
};

World* world = nullptr;

class BatchInvarianceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ThreadPool::SetGlobalThreads(1);
    world = new World();
  }
  static void TearDownTestSuite() {
    delete world;
    world = nullptr;
    ThreadPool::SetGlobalThreads(0);
  }
  void TearDown() override { ThreadPool::SetGlobalThreads(1); }
};

void ExpectSameKnn(const std::vector<std::vector<Neighbor>>& got,
                   const std::vector<std::vector<Neighbor>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size()) << "query " << i;
    for (size_t j = 0; j < got[i].size(); ++j) {
      EXPECT_EQ(got[i][j].id, want[i][j].id) << "query " << i;
      EXPECT_EQ(got[i][j].dist, want[i][j].dist) << "query " << i;
    }
  }
}

void ExpectSamePerQuery(const std::vector<OpStats>& got,
                        const std::vector<OpStats>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].dist_computations, want[i].dist_computations)
        << "query " << i;
    EXPECT_EQ(got[i].page_reads, want[i].page_reads) << "query " << i;
    EXPECT_EQ(got[i].page_writes, want[i].page_writes) << "query " << i;
  }
}

using IndexFactory = std::unique_ptr<MetricIndex> (*)();

const IndexFactory kBlockMajorFactories[] = {
    [] { return std::unique_ptr<MetricIndex>(std::make_unique<Laesa>()); },
    [] {
      return std::unique_ptr<MetricIndex>(
          std::make_unique<Ept>(Ept::Variant::kClassic));
    },
    [] {
      return std::unique_ptr<MetricIndex>(
          std::make_unique<Ept>(Ept::Variant::kStar));
    },
    [] { return std::unique_ptr<MetricIndex>(std::make_unique<Cpt>()); },
};

std::unique_ptr<MetricIndex> BuildFresh(IndexFactory make) {
  auto index = make();
  index->Build(world->bd.data, *world->bd.metric, world->pivots);
  EXPECT_TRUE(index->block_major_batches()) << index->name();
  return index;
}

std::vector<std::unique_ptr<MetricIndex>> BuildBlockMajorIndexes() {
  std::vector<std::unique_ptr<MetricIndex>> out;
  for (IndexFactory make : kBlockMajorFactories) out.push_back(BuildFresh(make));
  return out;
}

// Mode equivalence: block-major answers (results, total stats,
// per-query stats) must equal the frozen query-major path bit for bit.
// Each mode runs on a freshly built instance so CPT's buffer pool
// starts from the identical post-build state -- the page-access replay
// is then pinned exactly, not just the results.
TEST_F(BatchInvarianceTest, BlockMajorMatchesQueryMajor) {
  for (IndexFactory make : kBlockMajorFactories) {
    auto index_qm = BuildFresh(make);
    auto index_bm = BuildFresh(make);
    std::vector<std::vector<ObjectId>> mrq_qm, mrq_bm;
    std::vector<OpStats> pq_qm, pq_bm;
    OpStats qm = index_qm->RangeQueryBatch(world->queries, world->radii,
                                           &mrq_qm, &pq_qm,
                                           BatchMode::kQueryMajor);
    OpStats bm = index_bm->RangeQueryBatch(world->queries, world->radii,
                                           &mrq_bm, &pq_bm,
                                           BatchMode::kAuto);
    EXPECT_EQ(mrq_bm, mrq_qm) << index_qm->name();
    EXPECT_EQ(bm.dist_computations, qm.dist_computations) << index_qm->name();
    EXPECT_EQ(bm.page_reads, qm.page_reads) << index_qm->name();
    EXPECT_EQ(bm.page_writes, qm.page_writes) << index_qm->name();
    ExpectSamePerQuery(pq_bm, pq_qm);
    // Per-query compdists must also partition the total.
    uint64_t sum = 0;
    for (const OpStats& s : pq_bm) sum += s.dist_computations;
    EXPECT_EQ(sum, bm.dist_computations) << index_qm->name();

    std::vector<std::vector<Neighbor>> knn_qm, knn_bm;
    qm = index_qm->KnnQueryBatch(world->queries, world->ks, &knn_qm, &pq_qm,
                                 BatchMode::kQueryMajor);
    bm = index_bm->KnnQueryBatch(world->queries, world->ks, &knn_bm, &pq_bm,
                                 BatchMode::kAuto);
    ExpectSameKnn(knn_bm, knn_qm);
    EXPECT_EQ(bm.dist_computations, qm.dist_computations) << index_qm->name();
    ExpectSamePerQuery(pq_bm, pq_qm);
  }
}

// Batch answers must equal a loop of single-query calls, including the
// heterogeneous-threshold descriptors.
TEST_F(BatchInvarianceTest, BatchMatchesSingleQueryLoop) {
  for (auto& index : BuildBlockMajorIndexes()) {
    std::vector<std::vector<ObjectId>> mrq;
    std::vector<OpStats> pq;
    index->RangeQueryBatch(world->queries, world->radii, &mrq, &pq);
    std::vector<std::vector<Neighbor>> knn;
    std::vector<OpStats> kpq;
    index->KnnQueryBatch(world->queries, world->ks, &knn, &kpq);
    for (size_t i = 0; i < world->queries.size(); ++i) {
      std::vector<ObjectId> one;
      OpStats s =
          index->RangeQuery(world->queries[i], world->radii[i], &one);
      EXPECT_EQ(mrq[i], one) << index->name() << " query " << i;
      EXPECT_EQ(pq[i].dist_computations, s.dist_computations)
          << index->name() << " query " << i;
      std::vector<Neighbor> knn_one;
      s = index->KnnQuery(world->queries[i], world->ks[i], &knn_one);
      ASSERT_EQ(knn[i].size(), knn_one.size()) << index->name();
      for (size_t j = 0; j < knn_one.size(); ++j) {
        EXPECT_EQ(knn[i][j].id, knn_one[j].id);
        EXPECT_EQ(knn[i][j].dist, knn_one[j].dist);
      }
      EXPECT_EQ(kpq[i].dist_computations, s.dist_computations)
          << index->name() << " query " << i;
    }
  }
}

// Permuting the batch permutes the answers and the per-query stats --
// queries share no state inside a batch.
TEST_F(BatchInvarianceTest, BatchOrderInvariance) {
  std::vector<size_t> perm(world->queries.size());
  std::iota(perm.begin(), perm.end(), size_t{0});
  Rng rng(99);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<ObjectView> shuffled;
  std::vector<double> shuffled_r;
  std::vector<size_t> shuffled_k;
  for (size_t p : perm) {
    shuffled.push_back(world->queries[p]);
    shuffled_r.push_back(world->radii[p]);
    shuffled_k.push_back(world->ks[p]);
  }
  for (auto& index : BuildBlockMajorIndexes()) {
    std::vector<std::vector<ObjectId>> base, got;
    std::vector<OpStats> base_pq, got_pq;
    index->RangeQueryBatch(world->queries, world->radii, &base, &base_pq);
    index->RangeQueryBatch(shuffled, shuffled_r, &got, &got_pq);
    for (size_t i = 0; i < perm.size(); ++i) {
      EXPECT_EQ(got[i], base[perm[i]]) << index->name();
      EXPECT_EQ(got_pq[i].dist_computations,
                base_pq[perm[i]].dist_computations)
          << index->name();
    }
    std::vector<std::vector<Neighbor>> kbase, kgot;
    index->KnnQueryBatch(world->queries, world->ks, &kbase);
    index->KnnQueryBatch(shuffled, shuffled_k, &kgot);
    for (size_t i = 0; i < perm.size(); ++i) {
      ASSERT_EQ(kgot[i].size(), kbase[perm[i]].size()) << index->name();
      for (size_t j = 0; j < kgot[i].size(); ++j) {
        EXPECT_EQ(kgot[i][j].id, kbase[perm[i]][j].id);
        EXPECT_EQ(kgot[i][j].dist, kbase[perm[i]][j].dist);
      }
    }
  }
}

// Splitting a batch into sub-batches changes nothing: per-query answers
// and per-query compdists concatenate.
TEST_F(BatchInvarianceTest, BatchSplitInvariance) {
  const size_t kSplits[] = {3, 8, 16};  // 3 + 8 + 16 = kQueries
  for (auto& index : BuildBlockMajorIndexes()) {
    std::vector<std::vector<ObjectId>> whole;
    std::vector<OpStats> whole_pq;
    index->RangeQueryBatch(world->queries, world->radii, &whole, &whole_pq);
    size_t off = 0;
    for (size_t span : kSplits) {
      std::vector<ObjectView> sub(world->queries.begin() + off,
                                  world->queries.begin() + off + span);
      std::vector<double> sub_r(world->radii.begin() + off,
                                world->radii.begin() + off + span);
      std::vector<std::vector<ObjectId>> part;
      std::vector<OpStats> part_pq;
      index->RangeQueryBatch(sub, sub_r, &part, &part_pq);
      for (size_t i = 0; i < span; ++i) {
        EXPECT_EQ(part[i], whole[off + i])
            << index->name() << " split at " << off;
        EXPECT_EQ(part_pq[i].dist_computations,
                  whole_pq[off + i].dist_computations)
            << index->name();
      }
      off += span;
    }
    ASSERT_EQ(off, world->queries.size());
  }
}

// The full cross product: dispatch level x thread count x mode, pinned
// against one reference capture.
TEST_F(BatchInvarianceTest, LevelThreadModeCrossProduct) {
  const char* inherited_env = getenv("PMI_SIMD");
  const std::string inherited = inherited_env ? inherited_env : "";
  const bool had_inherited = inherited_env != nullptr;

  Laesa laesa;
  laesa.Build(world->bd.data, *world->bd.metric, world->pivots);
  Ept ept(Ept::Variant::kStar);
  ept.Build(world->bd.data, *world->bd.metric, world->pivots);
  MetricIndex* indexes[] = {&laesa, &ept};

  struct Capture {
    std::vector<std::vector<ObjectId>> mrq;
    std::vector<std::vector<Neighbor>> knn;
    uint64_t compdists = 0;
  };
  std::vector<Capture> captures;
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kNeon,
                          SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (!SimdLevelSupported(level)) continue;
    ASSERT_EQ(setenv("PMI_SIMD", SimdLevelName(level), 1), 0);
    ReinitSimdDispatch();
    for (unsigned threads : {1u, 2u, 8u}) {
      ThreadPool::SetGlobalThreads(threads);
      for (BatchMode mode : {BatchMode::kAuto, BatchMode::kQueryMajor}) {
        Capture c;
        for (MetricIndex* index : indexes) {
          std::vector<std::vector<ObjectId>> mrq;
          OpStats rs = index->RangeQueryBatch(world->queries, world->radii,
                                              &mrq, nullptr, mode);
          std::vector<std::vector<Neighbor>> knn;
          OpStats ks = index->KnnQueryBatch(world->queries, world->ks, &knn,
                                            nullptr, mode);
          c.compdists += rs.dist_computations + ks.dist_computations;
          for (auto& v : mrq) c.mrq.push_back(std::move(v));
          for (auto& v : knn) c.knn.push_back(std::move(v));
        }
        captures.push_back(std::move(c));
      }
    }
  }
  if (had_inherited) {
    setenv("PMI_SIMD", inherited.c_str(), 1);
  } else {
    unsetenv("PMI_SIMD");
  }
  ReinitSimdDispatch();

  ASSERT_GE(captures.size(), 6u);
  for (size_t i = 1; i < captures.size(); ++i) {
    EXPECT_EQ(captures[i].compdists, captures[0].compdists) << "config " << i;
    ASSERT_EQ(captures[i].mrq.size(), captures[0].mrq.size());
    for (size_t j = 0; j < captures[0].mrq.size(); ++j) {
      EXPECT_EQ(captures[i].mrq[j], captures[0].mrq[j]) << "config " << i;
    }
    ExpectSameKnn(captures[i].knn, captures[0].knn);
  }
}

// Degenerate descriptors through the block-major path: k = 0 prunes
// everything, k > n clamps, r = 0 finds duplicates, all matching the
// query-major loop.
TEST_F(BatchInvarianceTest, DegenerateBatchesMatchQueryMajor) {
  for (auto& index : BuildBlockMajorIndexes()) {
    std::vector<size_t> ks = {0, 1, kN + 50, 0, 5};
    std::vector<ObjectView> queries(world->queries.begin(),
                                    world->queries.begin() + ks.size());
    std::vector<std::vector<Neighbor>> bm, qm;
    index->KnnQueryBatch(queries, ks, &bm, nullptr, BatchMode::kAuto);
    index->KnnQueryBatch(queries, ks, &qm, nullptr, BatchMode::kQueryMajor);
    ExpectSameKnn(bm, qm);
    EXPECT_TRUE(bm[0].empty());
    EXPECT_EQ(bm[2].size(), size_t{kN});

    std::vector<double> radii = {0.0, world->radii[1], -1.0,
                                 world->bd.metric->max_distance() * 1.01,
                                 world->radii[4]};
    std::vector<std::vector<ObjectId>> rbm, rqm;
    index->RangeQueryBatch(queries, radii, &rbm, nullptr, BatchMode::kAuto);
    index->RangeQueryBatch(queries, radii, &rqm, nullptr,
                           BatchMode::kQueryMajor);
    EXPECT_EQ(rbm, rqm) << index->name();
    EXPECT_TRUE(rbm[2].empty());        // negative radius matches nothing
    EXPECT_EQ(rbm[3].size(), size_t{kN});  // max-distance radius matches all
  }
}

}  // namespace
}  // namespace pmi
