// Sharded service conformance.
//
// The scatter/gather acceptance harness: a ShardedService partitioned
// across {1, 2, 4, 7} shards must answer MRQ and MkNN batches
// bit-identically to a single unsharded MetricDB oracle built from the
// same data and config -- exact id sets for MRQ (ascending global id),
// exact (distance, id) sequences for MkNN -- before and after routed
// update batches.  That exactness leans on two PR-8 fixes covered
// here directly: the KnnHeap (distance, id) tie-break (canonical min-k
// independent of visit order) and Mvpt::Clone (trees join the
// epoch-versioned core instead of the serialized fallback).
//
// Also covered: admission control (queue full => typed
// kResourceExhausted, no deadlock, service keeps serving after the
// burst; deadline 0 => typed kDeadlineExceeded), per-shard write-fault
// degradation (one shard read-only, others unaffected), and the durable
// round trip (SERVICE meta + per-shard dirs reopen to the same state).
//
// Knobs: PMI_STRESS_THREADS (overload client count, default 4).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/metric_db.h"
#include "src/core/rng.h"
#include "src/data/generators.h"
#include "src/harness/workload.h"
#include "src/service/sharded_service.h"
#include "src/storage/env.h"
#include "src/storage/fault_env.h"

namespace pmi {
namespace {

constexpr uint64_t kSeed = 20260809;

std::string NewDir(const std::string& name) {
  return ::testing::TempDir() + "pmi_svc_" + name;
}

// Service directories nest shard directories: depth-2 removal.
void RemoveTree(const std::string& dir) {
  Env* env = Env::Default();
  StatusOr<std::vector<std::string>> names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      const std::string path = JoinPath(dir, name);
      if (env->RemoveFile(path).ok()) continue;
      RemoveTree(path);
    }
  }
  ::rmdir(dir.c_str());
}

double SampleRadius(const Dataset& data, const Metric& metric) {
  PerfCounters scratch;
  DistanceComputer d(&metric, &scratch);
  std::vector<double> sample;
  Rng rng(kSeed ^ 0xfeed);
  for (int i = 0; i < 64; ++i) {
    ObjectId a = rng() % data.size();
    ObjectId b = rng() % data.size();
    if (a != b) sample.push_back(d(data.view(a), data.view(b)));
  }
  std::sort(sample.begin(), sample.end());
  return sample[sample.size() / 2];
}

/// Asserts that the service answers `queries` bit-identically to the
/// unsharded oracle: MRQ as exact ascending-id sets, MkNN as exact
/// (distance, id) sequences.
void ExpectBitIdentical(const MetricDB& oracle, const ShardedService& svc,
                        const std::vector<ObjectView>& queries,
                        const std::vector<double>& radii,
                        const std::vector<size_t>& ks) {
  StatusOr<QueryResult> omrq =
      oracle.Query(QueryRequest::RangeBatch(queries, radii));
  StatusOr<QueryResult> smrq =
      svc.Query(QueryRequest::RangeBatch(queries, radii));
  ASSERT_TRUE(omrq.ok()) << omrq.status().ToString();
  ASSERT_TRUE(smrq.ok()) << smrq.status().ToString();
  ASSERT_EQ(smrq->ids.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<ObjectId> want = omrq->ids[q];
    std::sort(want.begin(), want.end());
    ASSERT_EQ(smrq->ids[q], want) << "MRQ mismatch at query " << q;
  }

  StatusOr<QueryResult> oknn = oracle.Query(QueryRequest::KnnBatch(queries, ks));
  StatusOr<QueryResult> sknn = svc.Query(QueryRequest::KnnBatch(queries, ks));
  ASSERT_TRUE(oknn.ok()) << oknn.status().ToString();
  ASSERT_TRUE(sknn.ok()) << sknn.status().ToString();
  ASSERT_EQ(sknn->neighbors.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    const std::vector<Neighbor>& want = oknn->neighbors[q];
    const std::vector<Neighbor>& got = sknn->neighbors[q];
    ASSERT_EQ(got.size(), want.size()) << "MkNN size mismatch at query " << q;
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i].id, want[i].id)
          << "MkNN id mismatch at query " << q << " rank " << i;
      ASSERT_EQ(got[i].dist, want[i].dist)
          << "MkNN distance mismatch at query " << q << " rank " << i;
    }
  }
}

struct EqConfig {
  std::string index_name;
  uint32_t shards;
};

class ServiceEquivalenceTest : public ::testing::TestWithParam<EqConfig> {};

TEST_P(ServiceEquivalenceTest, ScatterGatherMatchesUnshardedOracle) {
  const EqConfig& param = GetParam();
  const uint32_t n = 240;
  MetricDBConfig config = MetricDBConfig()
                              .WithMetric("Linf")
                              .WithIndex(param.index_name)
                              .WithPivots(4);

  // Same deterministic dataset for oracle and service.
  BenchDataset obd = MakeBenchDataset(BenchDatasetId::kSynthetic, n, 4242);
  BenchDataset sbd = MakeBenchDataset(BenchDatasetId::kSynthetic, n, 4242);
  StatusOr<MetricDB> oracle = MetricDB::Create(config, std::move(obd.data));
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  ServiceOptions sopts;
  sopts.num_shards = param.shards;
  sopts.workers = 3;
  sopts.max_queue = 64;
  auto svc_or = ShardedService::Create(config, std::move(sbd.data), sopts);
  ASSERT_TRUE(svc_or.ok()) << svc_or.status().ToString();
  std::unique_ptr<ShardedService> svc = std::move(*svc_or);

  // Router sanity: every object owned exactly once.
  uint32_t total = 0;
  for (uint32_t s : svc->shard_sizes()) {
    EXPECT_GE(s, 1u);
    total += s;
  }
  EXPECT_EQ(total, n);

  const Dataset& data = oracle->dataset();
  const double base_radius = SampleRadius(data, oracle->metric());
  Rng rng(kSeed);
  auto check = [&] {
    std::vector<ObjectView> queries;
    std::vector<double> radii;
    std::vector<size_t> ks;
    for (int i = 0; i < 8; ++i) {
      queries.push_back(data.view(rng() % n));
      radii.push_back(base_radius * (0.5 + 0.25 * (rng() % 4)));
      ks.push_back(1 + rng() % 10);
    }
    ExpectBitIdentical(*oracle, *svc, queries, radii, ks);
  };

  check();
  if (::testing::Test::HasFatalFailure()) return;

  // Routed updates: the same op stream applied to both sides (global
  // ids; the service rewrites to shard-local ids internally).
  std::vector<uint8_t> live(n, 1);
  for (int round = 0; round < 25; ++round) {
    std::vector<UpdateOp> ops;
    for (int i = 0; i < 4; ++i) {
      ObjectId id = rng() % n;
      if (live[id] != 0) {
        ops.push_back(UpdateOp::Remove(id));
        live[id] = 0;
      } else {
        ops.push_back(UpdateOp::Insert(id));
        live[id] = 1;
      }
    }
    ASSERT_TRUE(oracle->Apply(ops).ok());
    StatusOr<ApplyResult> applied = svc->Apply(ops);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    ASSERT_TRUE(applied->all_ok()) << applied->Collapse().ToString();
  }
  for (ObjectId id = 0; id < n; ++id) {
    ASSERT_EQ(svc->alive(id), live[id] != 0) << "object " << id;
    ASSERT_EQ(oracle->alive(id), svc->alive(id)) << "object " << id;
  }
  check();
  if (::testing::Test::HasFatalFailure()) return;

  // The direct (admission-bypassing) ReadView path answers the same.
  auto view = svc->GetReadView();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->sequences(), svc->sequences());
  std::vector<ObjectView> queries{data.view(1), data.view(7)};
  StatusOr<QueryResult> via_view =
      view->Query(QueryRequest::KnnBatch(queries, size_t{5}));
  StatusOr<QueryResult> via_svc =
      svc->Query(QueryRequest::KnnBatch(queries, size_t{5}));
  ASSERT_TRUE(via_view.ok());
  ASSERT_TRUE(via_svc.ok());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(via_view->neighbors[q].size(), via_svc->neighbors[q].size());
    for (size_t i = 0; i < via_view->neighbors[q].size(); ++i) {
      EXPECT_EQ(via_view->neighbors[q][i].id, via_svc->neighbors[q][i].id);
      EXPECT_EQ(via_view->neighbors[q][i].dist, via_svc->neighbors[q][i].dist);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardCounts, ServiceEquivalenceTest,
    ::testing::Values(EqConfig{"LAESA", 1}, EqConfig{"LAESA", 2},
                      EqConfig{"LAESA", 4}, EqConfig{"LAESA", 7},
                      EqConfig{"MVPT", 1}, EqConfig{"MVPT", 2},
                      EqConfig{"MVPT", 4}, EqConfig{"MVPT", 7}),
    [](const ::testing::TestParamInfo<EqConfig>& info) {
      return info.param.index_name + "x" +
             std::to_string(info.param.shards);
    });

// -- kNN tie determinism ------------------------------------------------------

// Every index must return the minimum k of the (distance, id) total
// order, independent of candidate visit order.  Duplicated points force
// equal-distance ties at every rank.
TEST(KnnTieBreakTest, EqualDistancesOrderByIdAcrossIndexes) {
  Dataset data = Dataset::Vectors(4);
  Rng rng(kSeed);
  for (int i = 0; i < 60; ++i) {
    float coords[4];
    for (float& c : coords) c = float(rng() % 5);
    // Three copies of every point: ids i*3, i*3+1, i*3+2 tie exactly.
    for (int copy = 0; copy < 3; ++copy) {
      data.Add(ObjectView::FromVector(coords, 4));
    }
  }
  const uint32_t n = data.size();

  for (const char* index_name : {"LinearScan", "LAESA", "MVPT", "VPT"}) {
    // Rebuild the dataset per index (Create consumes its argument).
    Dataset copy = Dataset::Vectors(4);
    for (ObjectId id = 0; id < n; ++id) copy.Add(data.view(id));
    StatusOr<MetricDB> db = MetricDB::Create(MetricDBConfig()
                                                 .WithMetric("Linf")
                                                 .WithIndex(index_name)
                                                 .WithPivots(4),
                                             std::move(copy));
    ASSERT_TRUE(db.ok()) << index_name << ": " << db.status().ToString();

    PerfCounters scratch;
    DistanceComputer d(&db->metric(), &scratch);
    Rng qrng(kSeed ^ 7);
    for (int qi = 0; qi < 12; ++qi) {
      ObjectView q = data.view(qrng() % n);
      const size_t k = 2 + qrng() % 9;
      StatusOr<QueryResult> got = db->KnnQuery(q, k);
      ASSERT_TRUE(got.ok());
      std::vector<Neighbor> want;
      for (ObjectId id = 0; id < n; ++id) {
        want.push_back({id, d(q, db->dataset().view(id))});
      }
      std::sort(want.begin(), want.end());
      want.resize(std::min(k, want.size()));
      const std::vector<Neighbor>& res = got->neighbors[0];
      ASSERT_EQ(res.size(), want.size()) << index_name;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(res[i].id, want[i].id)
            << index_name << " query " << qi << " rank " << i
            << " (dist " << res[i].dist << ")";
        ASSERT_EQ(res[i].dist, want[i].dist) << index_name;
      }
    }
  }
}

// -- admission control --------------------------------------------------------

std::unique_ptr<ShardedService> MakeAdmissionService(uint32_t workers,
                                                     uint32_t max_queue) {
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 4096, 99);
  ServiceOptions sopts;
  sopts.num_shards = 2;
  sopts.workers = workers;
  sopts.max_queue = max_queue;
  auto svc = ShardedService::Create(MetricDBConfig()
                                        .WithMetric("Linf")
                                        .WithIndex("LinearScan")
                                        .WithPivots(2),
                                    std::move(bd.data), sopts);
  EXPECT_TRUE(svc.ok()) << svc.status().ToString();
  return svc.ok() ? std::move(*svc) : nullptr;
}

QueryRequest HeavyRequest(const Dataset& data) {
  std::vector<ObjectView> queries;
  for (ObjectId id = 0; id < 256; ++id) queries.push_back(data.view(id));
  return QueryRequest::KnnBatch(std::move(queries), size_t{16});
}

TEST(AdmissionTest, QueueFullReturnsResourceExhaustedAndRecovers) {
  std::unique_ptr<ShardedService> svc = MakeAdmissionService(/*workers=*/1,
                                                             /*max_queue=*/1);
  ASSERT_NE(svc, nullptr);
  BenchDataset qbd = MakeBenchDataset(BenchDatasetId::kSynthetic, 4096, 99);
  const QueryRequest heavy = HeavyRequest(qbd.data);

  auto wait_until = [&](auto pred) {
    for (int spin = 0; spin < 20000 && !pred(); ++spin) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return pred();
  };

  bool saw_rejection = false;
  for (int attempt = 0; attempt < 8 && !saw_rejection; ++attempt) {
    // Occupy the single worker, then fill the single queue slot.
    std::thread blocker([&] { ASSERT_TRUE(svc->Query(heavy).ok()); });
    ASSERT_TRUE(wait_until(
        [&] { return svc->stats().admission.in_flight >= 1; }));
    std::thread filler([&] { (void)svc->Query(heavy); });
    ASSERT_TRUE(
        wait_until([&] { return svc->stats().admission.depth >= 1; }));

    StatusOr<QueryResult> refused = svc->Query(heavy);
    if (!refused.ok()) {
      EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted)
          << refused.status().ToString();
      saw_rejection = true;
    }
    blocker.join();
    filler.join();
  }
  EXPECT_TRUE(saw_rejection) << "queue never refused while provably full";
  EXPECT_GE(svc->stats().admission.rejected, 1u);

  // The burst is over: the service keeps serving.
  StatusOr<QueryResult> after =
      svc->Query(QueryRequest::Knn(qbd.data.view(0), 3));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->neighbors[0].size(), 3u);
}

TEST(AdmissionTest, ConcurrentBurstNeverDeadlocksAndFailuresAreTyped) {
  std::unique_ptr<ShardedService> svc = MakeAdmissionService(/*workers=*/2,
                                                             /*max_queue=*/2);
  ASSERT_NE(svc, nullptr);
  BenchDataset qbd = MakeBenchDataset(BenchDatasetId::kSynthetic, 4096, 99);

  const uint32_t clients = std::max(EnvU32("PMI_STRESS_THREADS", 4), 2u);
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> rejected_count{0};
  std::atomic<uint64_t> untyped_failures{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(kSeed ^ t);
      for (int i = 0; i < 40; ++i) {
        StatusOr<QueryResult> r =
            svc->Query(QueryRequest::Knn(qbd.data.view(rng() % 4096), 4));
        if (r.ok()) {
          ok_count.fetch_add(1);
        } else if (r.status().code() == StatusCode::kResourceExhausted) {
          rejected_count.fetch_add(1);
        } else {
          untyped_failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(untyped_failures.load(), 0u);
  EXPECT_GE(ok_count.load(), 1u);
  // Every request is accounted for: served or typed-rejected.
  EXPECT_EQ(ok_count.load() + rejected_count.load(), uint64_t(clients) * 40);
}

TEST(AdmissionTest, ExpiredDeadlineIsTyped) {
  std::unique_ptr<ShardedService> svc = MakeAdmissionService(/*workers=*/2,
                                                             /*max_queue=*/8);
  ASSERT_NE(svc, nullptr);
  BenchDataset qbd = MakeBenchDataset(BenchDatasetId::kSynthetic, 4096, 99);

  RequestOptions expired;
  expired.deadline_ms = 0;  // already expired at submission
  StatusOr<QueryResult> q =
      svc->Query(QueryRequest::Knn(qbd.data.view(0), 3), expired);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kDeadlineExceeded)
      << q.status().ToString();

  StatusOr<ApplyResult> a = svc->Apply({UpdateOp::Remove(0)}, expired);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(svc->stats().deadline_expired, 2u);

  // No deadline: same requests succeed.
  StatusOr<QueryResult> q2 = svc->Query(QueryRequest::Knn(qbd.data.view(0), 3));
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_TRUE(svc->alive(0));
}

// -- per-shard degradation ----------------------------------------------------

TEST(ServiceFaultTest, OneShardWriteFaultDegradesOnlyThatShard) {
  const std::string dir = NewDir("fault");
  RemoveTree(dir);
  FaultInjectingEnv fenv(Env::Default());
  DurabilityOptions dopts;
  dopts.env = &fenv;

  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 200, 11);
  ServiceOptions sopts;
  sopts.num_shards = 4;
  sopts.workers = 2;
  sopts.max_queue = 16;
  auto svc_or = ShardedService::CreateDurable(MetricDBConfig()
                                                  .WithMetric("Linf")
                                                  .WithIndex("LAESA")
                                                  .WithPivots(4),
                                              std::move(bd.data), dir, sopts,
                                              dopts);
  ASSERT_TRUE(svc_or.ok()) << svc_or.status().ToString();
  std::unique_ptr<ShardedService> svc = std::move(*svc_or);

  // Arm a sync failure and hit shard 2 only: the batch's WAL commit is
  // the next durability mutation (kFailedSync leaves the env alive, so
  // nothing else is affected).
  const uint32_t victim = 2;
  fenv.Arm({FaultKind::kFailedSync, /*trigger=*/0, /*seed=*/kSeed});
  std::vector<UpdateOp> ops;
  ops.push_back(UpdateOp::Remove(svc->router().members(victim)[0]));
  ops.push_back(UpdateOp::Remove(svc->router().members(victim)[1]));
  StatusOr<ApplyResult> faulted = svc->Apply(ops);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  ASSERT_TRUE(fenv.triggered());
  EXPECT_FALSE(faulted->all_ok());
  EXPECT_EQ(faulted->shard_status[victim].code(), StatusCode::kUnavailable)
      << faulted->shard_status[victim].ToString();

  // The victim is read-only (typed), every other shard keeps committing.
  std::vector<Status> ws = svc->write_statuses();
  for (uint32_t s = 0; s < 4; ++s) {
    if (s == victim) {
      EXPECT_FALSE(ws[s].ok());
    } else {
      EXPECT_TRUE(ws[s].ok()) << "shard " << s << ": " << ws[s].ToString();
      Status healthy = svc->Remove(svc->router().members(s)[0]);
      EXPECT_TRUE(healthy.ok()) << healthy.ToString();
    }
  }
  // Later updates to the victim are refused with its sticky status.
  Status refused = svc->Remove(svc->router().members(victim)[0]);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), ws[victim].code()) << refused.ToString();

  // Reads still gather all shards, including the read-only one -- and
  // the faulted batch is invisible (all-or-nothing per shard).
  EXPECT_TRUE(svc->alive(svc->router().members(victim)[0]));
  BenchDataset qbd = MakeBenchDataset(BenchDatasetId::kSynthetic, 200, 11);
  StatusOr<QueryResult> q =
      svc->Query(QueryRequest::Knn(qbd.data.view(3), 8));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->neighbors[0].size(), 8u);

  svc.reset();
  RemoveTree(dir);
}

// -- durable round trip -------------------------------------------------------

TEST(ServiceDurabilityTest, ReopensEveryShardToTheSameState) {
  const std::string dir = NewDir("reopen");
  RemoveTree(dir);

  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 180, 33);
  MetricDBConfig config =
      MetricDBConfig().WithMetric("Linf").WithIndex("LAESA").WithPivots(4);
  ServiceOptions sopts;
  sopts.num_shards = 4;
  sopts.workers = 2;
  sopts.max_queue = 16;
  auto created = ShardedService::CreateDurable(config, std::move(bd.data), dir,
                                               sopts);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<ShardedService> svc = std::move(*created);

  std::vector<uint8_t> live(180, 1);
  Rng rng(kSeed ^ 0xd00d);
  for (int round = 0; round < 12; ++round) {
    std::vector<UpdateOp> ops;
    for (int i = 0; i < 3; ++i) {
      ObjectId id = rng() % 180;
      if (live[id] != 0) {
        ops.push_back(UpdateOp::Remove(id));
        live[id] = 0;
      } else {
        ops.push_back(UpdateOp::Insert(id));
        live[id] = 1;
      }
    }
    StatusOr<ApplyResult> applied = svc->Apply(ops);
    ASSERT_TRUE(applied.ok() && applied->all_ok());
  }
  const std::vector<uint64_t> sequences = svc->sequences();
  ASSERT_TRUE(svc->Close().ok());
  svc.reset();

  auto reopened = ShardedService::OpenDurable(dir, sopts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_shards(), 4u);
  EXPECT_EQ((*reopened)->sequences(), sequences);
  for (ObjectId id = 0; id < 180; ++id) {
    ASSERT_EQ((*reopened)->alive(id), live[id] != 0) << "object " << id;
  }

  // Recovered shards answer like a fresh oracle over the same liveness.
  BenchDataset obd = MakeBenchDataset(BenchDatasetId::kSynthetic, 180, 33);
  StatusOr<MetricDB> oracle = MetricDB::Create(config, std::move(obd.data));
  ASSERT_TRUE(oracle.ok());
  std::vector<UpdateOp> sync_ops;
  for (ObjectId id = 0; id < 180; ++id) {
    if (live[id] == 0) sync_ops.push_back(UpdateOp::Remove(id));
  }
  ASSERT_TRUE(oracle->Apply(sync_ops).ok());
  BenchDataset qbd = MakeBenchDataset(BenchDatasetId::kSynthetic, 180, 33);
  std::vector<ObjectView> queries;
  for (int i = 0; i < 6; ++i) queries.push_back(qbd.data.view(i * 17));
  ExpectBitIdentical(*oracle, **reopened, queries,
                     std::vector<double>(queries.size(),
                                         SampleRadius(qbd.data, oracle->metric())),
                     std::vector<size_t>(queries.size(), 7));

  ASSERT_TRUE((*reopened)->Close().ok());
  reopened->reset();
  RemoveTree(dir);
}

// -- SERVICE meta damage ------------------------------------------------------
//
// Degenerate meta files must come back as typed errors, mirroring the
// snapshot damage suite: kDataLoss for anything mangled, and
// kFailedPrecondition for a version this build does not speak.  Never a
// crash, never a service with a bogus router.
class ServiceMetaDamageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = NewDir("meta_damage");
    RemoveTree(dir_);
    BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 96, 17);
    MetricDBConfig config =
        MetricDBConfig().WithMetric("Linf").WithIndex("LAESA").WithPivots(4);
    sopts_.num_shards = 3;
    sopts_.workers = 2;
    sopts_.max_queue = 8;
    auto created =
        ShardedService::CreateDurable(config, std::move(bd.data), dir_, sopts_);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    ASSERT_TRUE((*created)->Close().ok());
    StatusOr<std::string> meta =
        Env::Default()->ReadFileToString(JoinPath(dir_, "SERVICE"));
    ASSERT_TRUE(meta.ok());
    pristine_ = *meta;
  }

  void TearDown() override { RemoveTree(dir_); }

  void Rewrite(const std::string& contents) {
    auto file = Env::Default()->NewWritableFile(JoinPath(dir_, "SERVICE"));
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(contents).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  StatusCode Reopen() {
    auto reopened = ShardedService::OpenDurable(dir_, sopts_);
    if (!reopened.ok()) return reopened.status().code();
    (void)(*reopened)->Close();
    return StatusCode::kOk;
  }

  std::string dir_;
  std::string pristine_;
  ServiceOptions sopts_;
};

TEST_F(ServiceMetaDamageTest, PristineMetaReopens) {
  EXPECT_EQ(Reopen(), StatusCode::kOk);
}

TEST_F(ServiceMetaDamageTest, EmptyMetaIsDataLoss) {
  Rewrite("");
  EXPECT_EQ(Reopen(), StatusCode::kDataLoss);
}

TEST_F(ServiceMetaDamageTest, EveryTruncationIsTyped) {
  for (size_t len = 1; len < pristine_.size(); ++len) {
    Rewrite(pristine_.substr(0, len));
    const StatusCode code = Reopen();
    EXPECT_TRUE(code == StatusCode::kDataLoss ||
                code == StatusCode::kFailedPrecondition)
        << "truncation at " << len << " -> " << StatusCodeName(code);
  }
}

TEST_F(ServiceMetaDamageTest, EveryBitFlipIsTypedOrHarmless) {
  // A flip anywhere in the body must be caught by the CRC; a flip in
  // the checksum line itself mismatches the body.  (kOk is impossible:
  // every byte is covered one way or the other.)
  for (size_t pos = 0; pos < pristine_.size(); ++pos) {
    for (int bit : {0, 3, 7}) {
      std::string bad = pristine_;
      bad[pos] = static_cast<char>(bad[pos] ^ (1u << bit));
      Rewrite(bad);
      const StatusCode code = Reopen();
      EXPECT_TRUE(code == StatusCode::kDataLoss ||
                  code == StatusCode::kFailedPrecondition)
          << "bit " << bit << " at byte " << pos << " -> " << StatusCodeName(code);
    }
  }
}

TEST_F(ServiceMetaDamageTest, FutureVersionIsFailedPrecondition) {
  Rewrite("pmi-sharded-service v3\nshards 3\nobjects 96\nwhatever\n");
  EXPECT_EQ(Reopen(), StatusCode::kFailedPrecondition);
}

TEST_F(ServiceMetaDamageTest, ImplausibleCountsAreDataLoss) {
  // Valid v1 syntax (no checksum to catch it), absurd semantics: more
  // shards than objects can never have been written by CreateDurable.
  Rewrite("pmi-sharded-service v1\nshards 64\nobjects 3\n");
  EXPECT_EQ(Reopen(), StatusCode::kDataLoss);
}

// -- deadline propagation -----------------------------------------------------

TEST(DeadlineBudgetTest, ExpiresMidShardNotJustAtDispatch) {
  // One shard, one fat LinearScan batch: the only place the deadline
  // can trip is INSIDE per-shard execution, between chunks.  A service
  // that checks only at dequeue/dispatch would serve the whole batch
  // and overrun the budget instead of returning the typed error.
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, 4096, 91);
  const Dataset data = bd.data;
  MetricDBConfig config = MetricDBConfig().WithMetric("L2").WithIndex("LinearScan");
  ServiceOptions sopts;
  sopts.num_shards = 1;
  sopts.workers = 1;
  sopts.max_queue = 4;
  auto created = ShardedService::Create(config, std::move(bd.data), sopts);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<ShardedService> svc = std::move(*created);

  std::vector<ObjectView> queries;
  for (int i = 0; i < 2048; ++i) queries.push_back(data.view(i % 4096));
  RequestOptions opts;
  opts.deadline_ms = 2.0;
  StatusOr<QueryResult> r =
      svc->Query(QueryRequest::KnnBatch(queries, size_t{8}), opts);
  ASSERT_FALSE(r.ok()) << "a 2ms budget cannot cover 2048 scans of 4096";
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(r.status().message().find("mid-shard"), std::string::npos)
      << r.status().ToString();
  EXPECT_GE(svc->stats().deadline_expired, 1u);

  // The same batch with room to breathe still answers fully.
  opts.deadline_ms = 60000;
  StatusOr<QueryResult> ok =
      svc->Query(QueryRequest::KnnBatch(queries, size_t{8}), opts);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(svc->Close().ok());
}

}  // namespace
}  // namespace pmi
