// M-tree tests: structural invariants (covering radii and parent
// distances), ball-query correctness via tree traversal against brute
// force, PM-tree MBB invariants, deletion, and the CPT placement hook.

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/metric.h"
#include "src/core/pivot_selection.h"
#include "src/core/pivots.h"
#include "src/data/generators.h"
#include "src/storage/mtree.h"
#include "src/storage/paged_file.h"

namespace pmi {
namespace {

struct Fixture {
  Fixture(BenchDatasetId id, uint32_t n, bool pm_mode, uint32_t l = 4)
      : bd(MakeBenchDataset(id, n, 77)),
        file(4096, 128 * 1024, &counters),
        dist(bd.metric.get(), &counters) {
    MTree::Options opts;
    opts.store_pivot_data = pm_mode;
    opts.num_pivots = pm_mode ? l : 0;
    if (pm_mode) {
      PivotSelectionOptions po;
      po.sample_size = 500;
      pivots = PivotSet(bd.data, SelectPivotsHFI(bd.data, dist, l, po));
    }
    tree = std::make_unique<MTree>(&file, &bd.data, dist, opts,
                                   [this](ObjectId oid, PageId page) {
                                     placement[oid] = page;
                                   });
    for (ObjectId i = 0; i < bd.data.size(); ++i) {
      std::vector<float> phi;
      if (pm_mode) {
        std::vector<double> dphi;
        pivots.Map(bd.data.view(i), dist, &dphi);
        phi.assign(dphi.begin(), dphi.end());
      }
      tree->Insert(i, phi);
    }
  }

  BenchDataset bd;
  PerfCounters counters;
  PagedFile file;
  DistanceComputer dist;
  PivotSet pivots;
  std::map<ObjectId, PageId> placement;
  std::unique_ptr<MTree> tree;
};

// Recursively verifies: every object in a subtree lies within the
// covering radius of the subtree's routing object; pd values match the
// actual distance to the parent RO; PM-tree MBBs bound the phi vectors.
void CheckSubtree(const Fixture& fx, PageId page, const ObjectView* ro,
                  double radius, const float* mbb, uint32_t l,
                  std::set<ObjectId>* seen) {
  MTreeNode node = fx.tree->LoadNode(page);
  if (node.is_leaf) {
    for (const auto& e : node.leaves) {
      EXPECT_TRUE(seen->insert(e.oid).second);
      ObjectView obj = fx.tree->ViewOf(e.obj);
      EXPECT_TRUE(obj.PayloadEquals(fx.bd.data.view(e.oid)));
      if (ro != nullptr) {
        double d = fx.bd.metric->Distance(obj, *ro);
        EXPECT_LE(d, radius + 1e-4) << "object escapes covering radius";
        EXPECT_NEAR(e.pd, d, 1e-3) << "stale parent distance";
      }
      if (mbb != nullptr) {
        for (uint32_t j = 0; j < l; ++j) {
          EXPECT_GE(e.phi[j], mbb[j] - 1e-4f);
          EXPECT_LE(e.phi[j], mbb[l + j] + 1e-4f);
        }
      }
    }
    return;
  }
  for (const auto& e : node.children) {
    ObjectView child_ro = fx.tree->ViewOf(e.ro);
    if (ro != nullptr) {
      double d = fx.bd.metric->Distance(child_ro, *ro);
      EXPECT_NEAR(e.pd, d, 1e-3);
      EXPECT_LE(d + e.radius, radius + radius * 1e-5 + 1e-3)
          << "child ball escapes parent ball";
    }
    if (mbb != nullptr) {
      for (uint32_t j = 0; j < l; ++j) {
        EXPECT_GE(e.mbb[j], mbb[j] - 1e-4f);
        EXPECT_LE(e.mbb[l + j], mbb[l + j] + 1e-4f);
      }
    }
    CheckSubtree(fx, e.child, &child_ro, e.radius,
                 e.mbb.empty() ? nullptr : e.mbb.data(), l, seen);
  }
}

class MTreeDatasets : public ::testing::TestWithParam<BenchDatasetId> {};

TEST_P(MTreeDatasets, InvariantsHoldAfterBuild) {
  Fixture fx(GetParam(), 1500, /*pm_mode=*/false);
  std::set<ObjectId> seen;
  CheckSubtree(fx, fx.tree->root(), nullptr, 0, nullptr, 0, &seen);
  EXPECT_EQ(seen.size(), fx.bd.data.size());
  EXPECT_EQ(fx.tree->size(), fx.bd.data.size());
}

TEST_P(MTreeDatasets, BallQueryViaTraversalMatchesBruteForce) {
  Fixture fx(GetParam(), 800, /*pm_mode=*/false);
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    ObjectView q = fx.bd.data.view(rng() % fx.bd.data.size());
    double r = fx.bd.metric->max_distance() * 0.05;
    std::set<ObjectId> want;
    for (ObjectId i = 0; i < fx.bd.data.size(); ++i) {
      if (fx.bd.metric->Distance(q, fx.bd.data.view(i)) <= r) want.insert(i);
    }
    std::set<ObjectId> got;
    std::vector<PageId> stack{fx.tree->root()};
    while (!stack.empty()) {
      MTreeNode node = fx.tree->LoadNode(stack.back());
      stack.pop_back();
      if (node.is_leaf) {
        for (const auto& e : node.leaves) {
          if (fx.bd.metric->Distance(q, fx.tree->ViewOf(e.obj)) <= r) {
            got.insert(e.oid);
          }
        }
      } else {
        for (const auto& e : node.children) {
          double d = fx.bd.metric->Distance(q, fx.tree->ViewOf(e.ro));
          if (d <= e.radius + r) stack.push_back(e.child);  // Lemma 2
        }
      }
    }
    EXPECT_EQ(got, want);
  }
}

TEST_P(MTreeDatasets, PmModeMbbInvariants) {
  Fixture fx(GetParam(), 1000, /*pm_mode=*/true);
  std::set<ObjectId> seen;
  CheckSubtree(fx, fx.tree->root(), nullptr, 0, nullptr, 4, &seen);
  EXPECT_EQ(seen.size(), fx.bd.data.size());
}

TEST_P(MTreeDatasets, RemoveThenReinsert) {
  Fixture fx(GetParam(), 600, /*pm_mode=*/false);
  Rng rng(23);
  for (int round = 0; round < 40; ++round) {
    ObjectId victim = rng() % fx.bd.data.size();
    ASSERT_TRUE(fx.tree->Remove(victim));
    EXPECT_FALSE(fx.tree->Remove(victim)) << "double remove must fail";
    fx.tree->Insert(victim, {});
  }
  std::set<ObjectId> seen;
  CheckSubtree(fx, fx.tree->root(), nullptr, 0, nullptr, 0, &seen);
  EXPECT_EQ(seen.size(), fx.bd.data.size());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, MTreeDatasets,
                         ::testing::Values(BenchDatasetId::kLa,
                                           BenchDatasetId::kWords,
                                           BenchDatasetId::kSynthetic),
                         [](const auto& info) {
                           switch (info.param) {
                             case BenchDatasetId::kLa: return "LA";
                             case BenchDatasetId::kWords: return "Words";
                             default: return "Synthetic";
                           }
                         });

TEST(MTreeTest, PlacementHookTracksEveryObject) {
  Fixture fx(BenchDatasetId::kLa, 2000, /*pm_mode=*/false);
  ASSERT_EQ(fx.placement.size(), fx.bd.data.size());
  // Every recorded placement must actually hold the object.
  Rng rng(3);
  for (int probe = 0; probe < 200; ++probe) {
    ObjectId oid = rng() % fx.bd.data.size();
    MTreeNode node = fx.tree->LoadNode(fx.placement[oid]);
    ASSERT_TRUE(node.is_leaf);
    bool found = false;
    for (const auto& e : node.leaves) found |= e.oid == oid;
    EXPECT_TRUE(found) << "placement map points to wrong leaf for " << oid;
  }
}

}  // namespace
}  // namespace pmi
