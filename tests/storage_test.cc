// Unit tests for the simulated-disk substrate: PagedFile (PA accounting,
// LRU behaviour), RecordFile, the Hilbert curve, and the buffer pool's
// behaviour over a faulting Env-backed page store.

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/rng.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/fault_env.h"
#include "src/storage/hilbert.h"
#include "src/storage/paged_file.h"
#include "src/storage/raf.h"

namespace pmi {
namespace {

TEST(PagedFileTest, AllocateIsFreeUntilWritten) {
  PerfCounters c;
  PagedFile f(4096, 4 * 4096, &c);
  PageId p = f.Allocate();
  EXPECT_EQ(c.page_accesses(), 0u);
  PageHandle h = f.Write(p, /*load=*/false);
  std::memset(h.mutable_data(), 7, 4096);
  EXPECT_EQ(c.page_reads, 0u);
  EXPECT_EQ(c.page_writes, 0u);  // still dirty in pool
  f.Flush();
  EXPECT_EQ(c.page_writes, 1u);
  f.Flush();
  EXPECT_EQ(c.page_writes, 1u) << "clean page must not be re-flushed";
}

TEST(PagedFileTest, CachedReadIsFree) {
  PerfCounters c;
  PagedFile f(4096, 4 * 4096, &c);
  PageId p = f.Allocate();
  f.Write(p, /*load=*/false);
  f.Flush();
  c.Reset();
  f.Read(p);  // resident
  EXPECT_EQ(c.page_reads, 0u);
  f.DropCache();
  c.Reset();
  f.Read(p);
  EXPECT_EQ(c.page_reads, 1u);
  f.Read(p);
  EXPECT_EQ(c.page_reads, 1u) << "second read must hit the pool";
}

TEST(PagedFileTest, LruEvictionChargesDirtyWriteback) {
  PerfCounters c;
  PagedFile f(4096, 2 * 4096, &c);  // 2 frames
  PageId a = f.Allocate(), b = f.Allocate(), d = f.Allocate();
  f.Write(a, false);
  f.Write(b, false);
  EXPECT_EQ(c.page_writes, 0u);
  f.Write(d, false);  // evicts a (dirty)
  EXPECT_EQ(c.page_writes, 1u);
  c.Reset();
  f.Read(a);  // miss -> read, evicts b (dirty)
  EXPECT_EQ(c.page_reads, 1u);
  EXPECT_EQ(c.page_writes, 1u);
}

TEST(PagedFileTest, LruKeepsHotPages) {
  PerfCounters c;
  PagedFile f(4096, 2 * 4096, &c);
  PageId a = f.Allocate(), b = f.Allocate(), d = f.Allocate();
  f.Read(a);
  f.Read(b);
  c.Reset();
  f.Read(a);         // refresh a
  f.Read(d);         // evicts b, not a
  f.Read(a);
  EXPECT_EQ(c.page_reads, 1u) << "a must stay resident";
}

TEST(PagedFileTest, DataSurvivesEviction) {
  PerfCounters c;
  PagedFile f(256, 256, &c);  // 1 frame
  std::vector<PageId> pages;
  for (int i = 0; i < 10; ++i) {
    PageId p = f.Allocate();
    PageHandle h = f.Write(p, false);
    std::memset(h.mutable_data(), i, 256);
    pages.push_back(p);
  }
  for (int i = 0; i < 10; ++i) {
    PageHandle h = f.Read(pages[i]);
    EXPECT_EQ(h.data()[0], static_cast<char>(i));
    EXPECT_EQ(h.data()[255], static_cast<char>(i));
  }
}

TEST(RafTest, RoundTripsRecords) {
  PerfCounters c;
  PagedFile f(4096, 128 * 1024, &c);
  RecordFile raf(&f);
  Rng rng(3);
  std::vector<std::pair<RafRef, std::vector<char>>> recs;
  for (int i = 0; i < 500; ++i) {
    uint32_t len = 1 + rng() % 200;
    std::vector<char> data(len);
    for (auto& ch : data) ch = static_cast<char>(rng());
    recs.emplace_back(raf.Append(data.data(), len), data);
  }
  std::vector<char> out;
  for (auto& [ref, expect] : recs) {
    ASSERT_TRUE(raf.ReadRecord(ref, &out).ok());
    EXPECT_EQ(out, expect);
  }
}

TEST(RafTest, RecordsDoNotStraddlePagesWhenTheyFit) {
  PerfCounters c;
  PagedFile f(256, 1024, &c);
  RecordFile raf(&f);
  std::vector<char> blob(200, 'x');
  raf.Append(blob.data(), 200);  // fills most of page 0
  RafRef second = raf.Append(blob.data(), 200);
  EXPECT_EQ(second.offset % 256, 0u) << "record should start a fresh page";
  f.DropCache();
  c.Reset();
  std::vector<char> out;
  ASSERT_TRUE(raf.ReadRecord(second, &out).ok());
  EXPECT_EQ(c.page_reads, 1u) << "a fitting record costs one page read";
}

TEST(RafTest, LargeRecordsSpanPagesAndChargeEachPage) {
  PerfCounters c;
  PagedFile f(256, 4 * 256, &c);
  RecordFile raf(&f);
  std::vector<char> blob(700);
  for (int i = 0; i < 700; ++i) blob[i] = static_cast<char>(i % 128);
  RafRef ref = raf.Append(blob.data(), 700);
  f.DropCache();
  c.Reset();
  std::vector<char> out;
  ASSERT_TRUE(raf.ReadRecord(ref, &out).ok());
  EXPECT_EQ(out, blob);
  EXPECT_EQ(c.page_reads, 3u);
}

TEST(RafTest, OutOfBoundsRefIsDataLossNotUb) {
  PerfCounters c;
  PagedFile f(256, 1024, &c);
  RecordFile raf(&f);
  std::vector<char> blob(100, 'x');
  raf.Append(blob.data(), 100);
  std::vector<char> out;
  // Past-the-end offset, overlong length, and an offset+length overflow
  // (as a corrupt snapshot could produce) must all surface as kDataLoss.
  EXPECT_EQ(raf.ReadRecord({200, 10}, &out).code(), StatusCode::kDataLoss);
  EXPECT_EQ(raf.ReadRecord({0, 101}, &out).code(), StatusCode::kDataLoss);
  EXPECT_EQ(raf.ReadRecord({UINT64_MAX, 16}, &out).code(),
            StatusCode::kDataLoss);
  EXPECT_TRUE(raf.ReadRecord({0, 100}, &out).ok());
}

TEST(PagedFileTest, OutOfRangePageIsDataLoss) {
  PerfCounters c;
  PagedFile f(256, 1024, &c);
  f.Allocate();
  EXPECT_TRUE(f.ReadPage(0).ok());
  EXPECT_EQ(f.ReadPage(1).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(f.WritePage(7).status().code(), StatusCode::kDataLoss);
}

TEST(BufferPoolFaultTest, FaultedWriteBackSurfacesTypedErrorAndRecovers) {
  const std::string path =
      ::testing::TempDir() + "pmi_pool_fault_sync.pages";
  FaultInjectingEnv fenv(Env::Default());
  EnvPageStore store(&fenv, path, 256);
  ASSERT_TRUE(store.Open().ok());
  BufferPool pool(256, 2 * 256);
  uint64_t sid = pool.RegisterStore(&store, nullptr);
  {
    auto h = pool.Pin(sid, 0, /*for_write=*/true, /*load=*/false);
    ASSERT_TRUE(h.ok());
    std::memset(h->mutable_data(), 'a', 256);
  }
  // The write-back is one Append + one Sync; fail the Sync.  The store
  // must surface the typed error and keep the old (empty) version as
  // the durable one -- and the pool must keep the frame dirty and
  // resident so nothing is lost.
  fenv.Arm({FaultKind::kFailedSync, /*trigger=*/1, /*seed=*/3});
  Status s = pool.FlushStore(sid);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
  EXPECT_TRUE(fenv.triggered());
  EXPECT_EQ(pool.stats().write_back_failures, 1u);
  EXPECT_EQ(pool.resident_frames(), 1u) << "faulted victim must stay cached";
  // The env is alive again (kFailedSync does not crash); a retry flushes.
  fenv.Arm({FaultKind::kNone, 0, 1});
  ASSERT_TRUE(pool.FlushStore(sid).ok());
  // Prove durability by dropping the frame and re-reading through the
  // store: the bytes must come back from the file, not the cache.
  pool.DropStore(sid);
  EXPECT_EQ(pool.resident_frames(), 0u);
  auto h = pool.Pin(sid, 0, /*for_write=*/false);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->data()[0], 'a');
  EXPECT_EQ(h->data()[255], 'a');
  h->Reset();
  pool.UnregisterStore(sid);
  ASSERT_TRUE(Env::Default()->RemoveFile(path).ok());
}

TEST(BufferPoolFaultTest, BitFlipIsCaughtByPageChecksum) {
  const std::string path =
      ::testing::TempDir() + "pmi_pool_fault_flip.pages";
  FaultInjectingEnv fenv(Env::Default());
  EnvPageStore store(&fenv, path, 256);
  ASSERT_TRUE(store.Open().ok());
  BufferPool pool(256, 2 * 256);
  uint64_t sid = pool.RegisterStore(&store, nullptr);
  {
    auto h = pool.Pin(sid, 0, /*for_write=*/true, /*load=*/false);
    ASSERT_TRUE(h.ok());
    std::memset(h->mutable_data(), 'b', 256);
  }
  // Flip one bit inside the appended record: the write "succeeds"
  // (silent media corruption), so the flush reports OK...
  fenv.Arm({FaultKind::kBitFlip, /*trigger=*/0, /*seed=*/7});
  ASSERT_TRUE(pool.FlushStore(sid).ok());
  EXPECT_TRUE(fenv.triggered());
  // ...and the corruption must surface as kDataLoss on the next
  // physical read, never as silently wrong page bytes.
  pool.DropStore(sid);
  auto h = pool.Pin(sid, 0, /*for_write=*/false);
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kDataLoss) << h.status().ToString();
  pool.UnregisterStore(sid);
  ASSERT_TRUE(Env::Default()->RemoveFile(path).ok());
}

TEST(HilbertTest, BijectiveExhaustiveSmall) {
  for (uint32_t dims = 1; dims <= 3; ++dims) {
    for (uint32_t bits = 1; bits <= 4; ++bits) {
      HilbertCurve h(dims, bits);
      uint64_t cells = 1ull << (dims * bits);
      std::set<uint64_t> seen;
      uint32_t coords[3], back[3];
      for (uint64_t cell = 0; cell < cells; ++cell) {
        uint64_t rest = cell;
        for (uint32_t d = 0; d < dims; ++d) {
          coords[d] = rest & h.max_coord();
          rest >>= bits;
        }
        uint64_t key = h.Encode(coords);
        EXPECT_LT(key, cells);
        EXPECT_TRUE(seen.insert(key).second) << "duplicate key " << key;
        h.Decode(key, back);
        for (uint32_t d = 0; d < dims; ++d) EXPECT_EQ(back[d], coords[d]);
      }
    }
  }
}

TEST(HilbertTest, BijectiveRandomHighDim) {
  for (uint32_t dims : {5u, 7u, 9u}) {
    uint32_t bits = HilbertCurve::AutoBits(dims);
    EXPECT_LE(dims * bits, 63u);
    HilbertCurve h(dims, bits);
    Rng rng(17);
    std::vector<uint32_t> coords(dims), back(dims);
    for (int trial = 0; trial < 2000; ++trial) {
      for (uint32_t d = 0; d < dims; ++d) coords[d] = rng() % (h.max_coord() + 1);
      uint64_t key = h.Encode(coords.data());
      h.Decode(key, back.data());
      EXPECT_EQ(back, coords);
    }
  }
}

TEST(HilbertTest, CurveIsContinuous) {
  // Successive curve positions differ by exactly 1 in exactly one axis --
  // the defining locality property the SPB-tree relies on.
  HilbertCurve h(2, 5);
  uint32_t prev[2], cur[2];
  h.Decode(0, prev);
  for (uint64_t key = 1; key < (1ull << 10); ++key) {
    h.Decode(key, cur);
    uint32_t moved = 0, dist = 0;
    for (int d = 0; d < 2; ++d) {
      uint32_t diff = cur[d] > prev[d] ? cur[d] - prev[d] : prev[d] - cur[d];
      if (diff) ++moved;
      dist += diff;
    }
    EXPECT_EQ(moved, 1u) << "at key " << key;
    EXPECT_EQ(dist, 1u) << "at key " << key;
    prev[0] = cur[0];
    prev[1] = cur[1];
  }
}

}  // namespace
}  // namespace pmi
