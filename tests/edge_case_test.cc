// Degenerate-input tests for every index: tiny datasets, duplicate-only
// datasets, and determinism of repeated builds.  These exercise split,
// quantile, and partition code on inputs where most metric-index bugs
// hide (zero-variance distances, single-element nodes, ties everywhere).

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "src/core/linear_scan.h"
#include "src/core/pivot_selection.h"
#include "src/harness/registry.h"

namespace pmi {
namespace {

// A tiny discrete vector dataset every index (incl. BKT/FQT/FQA) accepts.
struct TinyWorld {
  TinyWorld(uint32_t n, bool duplicates_only)
      : data(Dataset::Vectors(2)), metric(2, 100.0, /*discrete=*/true) {
    Rng rng(31);
    for (uint32_t i = 0; i < n; ++i) {
      float p[2];
      if (duplicates_only) {
        p[0] = 7;
        p[1] = 7;
      } else {
        p[0] = float(rng() % 100);
        p[1] = float(rng() % 100);
      }
      data.AddVector(p);
    }
    uint32_t want = std::min(3u, std::max(1u, n / 2));
    PivotSelectionOptions po;
    po.sample_size = n;
    pivots = SelectSharedPivots(data, metric, want, po);
  }

  Dataset data;
  LInfMetric metric;
  PivotSet pivots;
};

class EdgeCaseTest : public ::testing::TestWithParam<std::string> {};

std::vector<std::string> AllNames() {
  std::vector<std::string> names;
  for (const IndexSpec& s : AllIndexSpecs()) names.push_back(s.name);
  return names;
}

std::string SafeName(const ::testing::TestParamInfo<std::string>& info) {
  std::string n = info.param;
  for (char& c : n) {
    if (c == '*') c = 'S';
    if (c == '-' || c == '+') c = '_';
  }
  return n;
}

TEST_P(EdgeCaseTest, SingleObjectDataset) {
  TinyWorld world(1, false);
  const IndexSpec* spec = FindIndexSpec(GetParam());
  if (spec->min_pivots > world.pivots.size()) GTEST_SKIP();
  auto index = spec->make(IndexOptions{});
  index->Build(world.data, world.metric, world.pivots);
  std::vector<ObjectId> range;
  index->RangeQuery(world.data.view(0), 0.0, &range);
  EXPECT_EQ(range.size(), 1u);
  std::vector<Neighbor> knn;
  index->KnnQuery(world.data.view(0), 5, &knn);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].dist, 0.0);
}

TEST_P(EdgeCaseTest, AllDuplicateObjects) {
  TinyWorld world(200, /*duplicates_only=*/true);
  const IndexSpec* spec = FindIndexSpec(GetParam());
  if (spec->min_pivots > world.pivots.size()) GTEST_SKIP();
  auto index = spec->make(IndexOptions{});
  index->Build(world.data, world.metric, world.pivots);
  std::vector<ObjectId> range;
  index->RangeQuery(world.data.view(0), 0.0, &range);
  EXPECT_EQ(range.size(), 200u) << "all duplicates are at distance 0";
  std::vector<Neighbor> knn;
  index->KnnQuery(world.data.view(3), 10, &knn);
  ASSERT_EQ(knn.size(), 10u);
  for (const Neighbor& nb : knn) EXPECT_EQ(nb.dist, 0.0);
}

TEST_P(EdgeCaseTest, SmallDatasetFullCycleOfUpdates) {
  TinyWorld world(40, false);
  const IndexSpec* spec = FindIndexSpec(GetParam());
  if (spec->min_pivots > world.pivots.size()) GTEST_SKIP();
  auto index = spec->make(IndexOptions{});
  index->Build(world.data, world.metric, world.pivots);
  // Remove everything, then re-insert everything; results must be intact.
  for (ObjectId id = 0; id < world.data.size(); ++id) index->Remove(id);
  std::vector<ObjectId> range;
  index->RangeQuery(world.data.view(0), 1000.0, &range);
  EXPECT_TRUE(range.empty()) << "index must be empty after removing all";
  for (ObjectId id = 0; id < world.data.size(); ++id) index->Insert(id);
  index->RangeQuery(world.data.view(0), 1000.0, &range);
  EXPECT_EQ(range.size(), world.data.size());
}

TEST_P(EdgeCaseTest, RepeatedBuildsAreDeterministic) {
  TinyWorld world(300, false);
  const IndexSpec* spec = FindIndexSpec(GetParam());
  if (spec->min_pivots > world.pivots.size()) GTEST_SKIP();
  IndexOptions opts;
  opts.seed = 99;
  auto a = spec->make(opts);
  auto b = spec->make(opts);
  OpStats sa = a->Build(world.data, world.metric, world.pivots);
  OpStats sb = b->Build(world.data, world.metric, world.pivots);
  EXPECT_EQ(sa.dist_computations, sb.dist_computations)
      << "same seed, same data => identical build cost";
  std::vector<Neighbor> ka, kb;
  OpStats qa = a->KnnQuery(world.data.view(7), 9, &ka);
  OpStats qb = b->KnnQuery(world.data.view(7), 9, &kb);
  EXPECT_EQ(qa.dist_computations, qb.dist_computations);
  ASSERT_EQ(ka.size(), kb.size());
  for (size_t i = 0; i < ka.size(); ++i) {
    EXPECT_EQ(ka[i].dist, kb[i].dist);
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, EdgeCaseTest,
                         ::testing::ValuesIn(AllNames()), SafeName);

}  // namespace
}  // namespace pmi
