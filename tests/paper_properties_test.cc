// Paper-shape property tests: the qualitative findings of Section 6 that
// must hold on our substrate at test scale.  These are the guardrails
// that keep the reproduction honest -- each test encodes one claim from
// the paper's evaluation and fails if an implementation change breaks
// the corresponding behaviour.

#include <memory>

#include <gtest/gtest.h>

#include "src/core/pivot_selection.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/harness/registry.h"
#include "src/harness/workload.h"

namespace pmi {
namespace {

struct Fixture {
  explicit Fixture(BenchDatasetId id, uint32_t n, uint32_t num_pivots = 5)
      : bd(MakeBenchDataset(id, n, 11)) {
    distribution = EstimateDistribution(bd.data, *bd.metric, 8000, 3);
    PivotSelectionOptions po;
    po.sample_size = std::min(n, 1500u);
    pivots = SelectSharedPivots(bd.data, *bd.metric, num_pivots, po);
    Rng rng(5150);
    for (int i = 0; i < 8; ++i) query_ids.push_back(rng() % n);
  }

  std::unique_ptr<MetricIndex> Build(const std::string& name) {
    IndexOptions opts;
    opts.page_size =
        bd.id == BenchDatasetId::kColor &&
                (name == "CPT" || name == "PM-tree")
            ? 40960
            : 4096;
    auto index = MakeIndex(name, opts);
    index->Build(bd.data, *bd.metric, pivots);
    return index;
  }

  OpStats KnnTotal(MetricIndex& index, uint32_t k) {
    OpStats total;
    std::vector<Neighbor> out;
    for (ObjectId q : query_ids) {
      total += index.KnnQuery(bd.data.view(q), k, &out);
    }
    return total;
  }

  OpStats MrqTotal(MetricIndex& index, double selectivity) {
    OpStats total;
    std::vector<ObjectId> out;
    double r = distribution.RadiusForSelectivity(selectivity);
    for (ObjectId q : query_ids) {
      total += index.RangeQuery(bd.data.view(q), r, &out);
    }
    return total;
  }

  BenchDataset bd;
  DistanceDistribution distribution;
  PivotSet pivots;
  std::vector<ObjectId> query_ids;
};

// Section 6.4 / Fig 14: EPT* answers MkNNQs with fewer distance
// computations than EPT (higher-quality PSA pivots).
TEST(PaperShapeTest, EptStarBeatsEptOnSynthetic) {
  Fixture fx(BenchDatasetId::kSynthetic, 6000);
  auto ept = fx.Build("EPT");
  auto star = fx.Build("EPT*");
  uint64_t cd_ept = fx.KnnTotal(*ept, 20).dist_computations;
  uint64_t cd_star = fx.KnnTotal(*star, 20).dist_computations;
  EXPECT_LT(cd_star, cd_ept);
}

// Table 4: EPT* construction is far more expensive than EPT's, which is
// more expensive than LAESA's.
TEST(PaperShapeTest, ConstructionCostOrderingOfTables) {
  Fixture fx(BenchDatasetId::kSynthetic, 4000);
  IndexOptions opts;
  auto laesa = MakeIndex("LAESA", opts);
  auto ept = MakeIndex("EPT", opts);
  auto star = MakeIndex("EPT*", opts);
  uint64_t cd_laesa =
      laesa->Build(fx.bd.data, *fx.bd.metric, fx.pivots).dist_computations;
  uint64_t cd_ept =
      ept->Build(fx.bd.data, *fx.bd.metric, fx.pivots).dist_computations;
  uint64_t cd_star =
      star->Build(fx.bd.data, *fx.bd.metric, fx.pivots).dist_computations;
  EXPECT_LT(cd_laesa, cd_ept);
  EXPECT_LT(cd_ept, cd_star);
}

// Fig 15: the basic M-index re-traverses the index for MkNNQ
// (incremental radii), costing more page accesses than M-index*'s
// single best-first pass.
TEST(PaperShapeTest, MIndexStarUsesFewerPagesForKnn) {
  Fixture fx(BenchDatasetId::kWords, 8000);
  auto basic = fx.Build("M-index");
  auto star = fx.Build("M-index*");
  uint64_t pa_basic = fx.KnnTotal(*basic, 20).page_accesses();
  uint64_t pa_star = fx.KnnTotal(*star, 20).page_accesses();
  EXPECT_LT(pa_star, pa_basic);
}

// Section 6.5.1: SPB-tree has the lowest I/O cost of the external
// indexes (SFC-compacted keys + curve-ordered RAF).
TEST(PaperShapeTest, SpbTreeHasLowestMrqPageAccesses) {
  Fixture fx(BenchDatasetId::kWords, 8000);
  auto spb = fx.Build("SPB-tree");
  auto omnir = fx.Build("OmniR-tree");
  auto pm = fx.Build("PM-tree");
  uint64_t pa_spb = fx.MrqTotal(*spb, 0.08).page_accesses();
  uint64_t pa_omnir = fx.MrqTotal(*omnir, 0.08).page_accesses();
  uint64_t pa_pm = fx.MrqTotal(*pm, 0.08).page_accesses();
  EXPECT_LT(pa_spb, pa_omnir);
  EXPECT_LT(pa_spb, pa_pm);
}

// Section 6.2 storage discussion: SPB-tree stores less than the
// OmniR-tree (SFC integers vs full mapped vectors + R-tree directory).
TEST(PaperShapeTest, SpbTreeSmallerThanOmniR) {
  Fixture fx(BenchDatasetId::kWords, 8000);
  auto spb = fx.Build("SPB-tree");
  auto omnir = fx.Build("OmniR-tree");
  EXPECT_LT(spb->disk_bytes(), omnir->disk_bytes());
}

// Section 6.5.1: the in-memory trees store only split values, so their
// pruning is coarser -- more distance computations than LAESA's full
// table under the same pivots.
TEST(PaperShapeTest, TreesTradeCompdistsForMemory) {
  Fixture fx(BenchDatasetId::kLa, 8000);
  auto laesa = fx.Build("LAESA");
  auto mvpt = fx.Build("MVPT");
  OpStats s_laesa = fx.MrqTotal(*laesa, 0.04);
  OpStats s_mvpt = fx.MrqTotal(*mvpt, 0.04);
  EXPECT_GE(s_mvpt.dist_computations, s_laesa.dist_computations);
  EXPECT_LT(mvpt->memory_bytes(), laesa->memory_bytes());
}

// Section 6.5.3 / Fig 18: more pivots means better filtering -- LAESA's
// MkNNQ compdists fall monotonically (modulo noise) from 1 to 9 pivots.
TEST(PaperShapeTest, MorePivotsFewerCompdists) {
  uint64_t prev = UINT64_MAX;
  for (uint32_t p : {1u, 5u, 9u}) {
    Fixture fx(BenchDatasetId::kSynthetic, 5000, p);
    auto laesa = fx.Build("LAESA");
    uint64_t cd = fx.KnnTotal(*laesa, 20).dist_computations;
    EXPECT_LT(cd, prev) << "at |P|=" << p;
    prev = cd;
  }
}

// Lemma 4 effect (Section 6.5.1): with validation, M-index* answers
// large-radius MRQs with fewer verifications than distance-only
// verification would need -- compdists stays below the result count.
TEST(PaperShapeTest, ValidationSkipsVerifications) {
  Fixture fx(BenchDatasetId::kLa, 6000);
  auto star = fx.Build("M-index*");
  double r = fx.distribution.RadiusForSelectivity(0.64);
  std::vector<ObjectId> out;
  OpStats s = star->RangeQuery(fx.bd.data.view(fx.query_ids[0]), r, &out);
  EXPECT_LT(s.dist_computations, out.size())
      << "Lemma 4 should validate most of a 64%-selectivity result set";
}

// Buffer pool behaviour (Section 6.1): with a pool large enough to hold
// the query's touch set, repeating the query costs no page accesses;
// with the paper's small 128 KB pool, repeats still pay (LRU turnover).
TEST(PaperShapeTest, WarmCacheAbsorbsRepeatedQueries) {
  Fixture fx(BenchDatasetId::kWords, 6000);
  IndexOptions opts;
  opts.cache_bytes = 16 * 1024 * 1024;  // everything stays resident
  auto spb = MakeIndex("SPB-tree", opts);
  spb->Build(fx.bd.data, *fx.bd.metric, fx.pivots);
  std::vector<Neighbor> out;
  OpStats cold = spb->KnnQuery(fx.bd.data.view(fx.query_ids[0]), 20, &out);
  OpStats warm = spb->KnnQuery(fx.bd.data.view(fx.query_ids[0]), 20, &out);
  EXPECT_EQ(warm.page_accesses(), 0u);
  EXPECT_LE(warm.page_accesses(), cold.page_accesses());
}

// Equal-footing sanity (Section 6.2): with the same pivots, the pure
// Lemma-1 indexes do identical construction distance computations.
TEST(PaperShapeTest, SharedPivotIndexesHaveIdenticalBuildCompdists) {
  Fixture fx(BenchDatasetId::kLa, 4000);
  IndexOptions opts;
  uint64_t expected = uint64_t(fx.bd.data.size()) * fx.pivots.size();
  for (const char* name : {"LAESA", "OmniSeq", "OmniR-tree", "SPB-tree"}) {
    auto index = MakeIndex(name, opts);
    OpStats s = index->Build(fx.bd.data, *fx.bd.metric, fx.pivots);
    EXPECT_EQ(s.dist_computations, expected) << name;
  }
}

}  // namespace
}  // namespace pmi
