// Thread-count invariance of the parallel execution engine.
//
// The engine's contract (src/core/thread_pool.h, README "Execution
// model") is that parallelism is an implementation detail: build
// artifacts, query results, and every accounted cost must be
// bit-identical whether the pool has 1, 2, or 8 slots.  This suite pins
// that contract for the parallelized construction paths (pivot
// selection, EstimateDistribution, the LAESA/EPT*/CPT table fills) and
// for the batch-query API, which must also match a serial loop of
// single-query calls exactly.

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/pivot_selection.h"
#include "src/core/simd.h"
#include "src/core/thread_pool.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/tables/cpt.h"
#include "src/tables/ept.h"
#include "src/tables/laesa.h"

namespace pmi {
namespace {

constexpr uint32_t kN = 1200;
constexpr uint32_t kQueries = 12;
constexpr double kRadiusSel = 0.05;
const std::vector<unsigned> kThreadCounts = {1, 2, 8};

/// Flattened copy of a PivotTable (distances, plus pool indices for the
/// per-row-pivot layout) for exact comparison.
struct TableDump {
  std::vector<double> dist;
  std::vector<uint32_t> pidx;

  bool operator==(const TableDump&) const = default;
};

TableDump Dump(const PivotTable& t) {
  TableDump d;
  for (size_t row = 0; row < t.rows(); ++row) {
    for (uint32_t slot = 0; slot < t.width(); ++slot) {
      d.dist.push_back(t.distance(row, slot));
      if (t.per_row_pivots()) d.pidx.push_back(t.pivot_index(row, slot));
    }
  }
  return d;
}

/// Everything the engine promises to keep invariant, captured at one
/// thread count for one index.
struct IndexSnapshot {
  TableDump table;
  uint64_t build_compdists = 0;
  std::vector<std::vector<ObjectId>> mrq;     // sorted per query
  std::vector<std::vector<Neighbor>> knn;
  uint64_t mrq_compdists = 0;
  uint64_t knn_compdists = 0;

  void ExpectEq(const IndexSnapshot& o) const {
    EXPECT_EQ(table, o.table);
    EXPECT_EQ(build_compdists, o.build_compdists);
    EXPECT_EQ(mrq_compdists, o.mrq_compdists);
    EXPECT_EQ(knn_compdists, o.knn_compdists);
    ASSERT_EQ(mrq.size(), o.mrq.size());
    for (size_t i = 0; i < mrq.size(); ++i) EXPECT_EQ(mrq[i], o.mrq[i]);
    ASSERT_EQ(knn.size(), o.knn.size());
    for (size_t i = 0; i < knn.size(); ++i) {
      ASSERT_EQ(knn[i].size(), o.knn[i].size());
      for (size_t j = 0; j < knn[i].size(); ++j) {
        EXPECT_EQ(knn[i][j].id, o.knn[i][j].id);
        EXPECT_EQ(knn[i][j].dist, o.knn[i][j].dist);
      }
    }
  }
};

struct World {
  World() : bd(MakeBenchDataset(BenchDatasetId::kSynthetic, kN, 7)) {
    PivotSelectionOptions po;
    po.sample_size = 400;
    po.pair_sample = 200;
    pivots = SelectSharedPivots(bd.data, *bd.metric, 5, po);
    distribution = EstimateDistribution(bd.data, *bd.metric, 2000, 3);
    Rng rng(77);
    for (uint32_t i = 0; i < kQueries; ++i) {
      queries.push_back(bd.data.view(rng() % kN));
    }
  }

  BenchDataset bd;
  PivotSet pivots;
  DistanceDistribution distribution;
  std::vector<ObjectView> queries;
};

/// Builds `index` and runs the batch query mix, all at the current
/// global thread count.
IndexSnapshot Snapshot(const World& w, MetricIndex* index,
                       const PivotTable& table) {
  IndexSnapshot s;
  OpStats build = index->Build(w.bd.data, *w.bd.metric, w.pivots);
  s.build_compdists = build.dist_computations;
  s.table = Dump(table);

  const double r = w.distribution.RadiusForSelectivity(kRadiusSel);
  OpStats mrq = index->RangeQueryBatch(w.queries, r, &s.mrq);
  s.mrq_compdists = mrq.dist_computations;
  for (auto& out : s.mrq) std::sort(out.begin(), out.end());

  OpStats knn = index->KnnQueryBatch(w.queries, 10, &s.knn);
  s.knn_compdists = knn.dist_computations;
  return s;
}

class ThreadInvarianceTest : public ::testing::Test {
 protected:
  // One dataset + shared pivots for the whole suite, built at 1 thread so
  // the workload itself never depends on the count under test.
  static void SetUpTestSuite() {
    ThreadPool::SetGlobalThreads(1);
    world_ = new World();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
    ThreadPool::SetGlobalThreads(0);
  }
  void TearDown() override { ThreadPool::SetGlobalThreads(1); }

  static World* world_;
};

World* ThreadInvarianceTest::world_ = nullptr;

TEST_F(ThreadInvarianceTest, LaesaBuildAndQueriesAreIdentical) {
  std::vector<IndexSnapshot> snaps;
  for (unsigned t : kThreadCounts) {
    ThreadPool::SetGlobalThreads(t);
    Laesa laesa;
    snaps.push_back(Snapshot(*world_, &laesa, laesa.table()));
  }
  for (size_t i = 1; i < snaps.size(); ++i) snaps[i].ExpectEq(snaps[0]);
}

TEST_F(ThreadInvarianceTest, EptStarBuildAndQueriesAreIdentical) {
  std::vector<IndexSnapshot> snaps;
  for (unsigned t : kThreadCounts) {
    ThreadPool::SetGlobalThreads(t);
    Ept ept(Ept::Variant::kStar);
    snaps.push_back(Snapshot(*world_, &ept, ept.table()));
  }
  for (size_t i = 1; i < snaps.size(); ++i) snaps[i].ExpectEq(snaps[0]);
}

TEST_F(ThreadInvarianceTest, CptBuildAndQueriesAreIdentical) {
  std::vector<IndexSnapshot> snaps;
  std::vector<uint64_t> page_accesses;
  for (unsigned t : kThreadCounts) {
    ThreadPool::SetGlobalThreads(t);
    Cpt cpt;
    OpStats build = cpt.Build(world_->bd.data, *world_->bd.metric,
                              world_->pivots);
    IndexSnapshot s;
    s.build_compdists = build.dist_computations;
    s.table = Dump(cpt.table());
    const double r = world_->distribution.RadiusForSelectivity(kRadiusSel);
    OpStats mrq = cpt.RangeQueryBatch(world_->queries, r, &s.mrq);
    s.mrq_compdists = mrq.dist_computations;
    for (auto& out : s.mrq) std::sort(out.begin(), out.end());
    OpStats knn = cpt.KnnQueryBatch(world_->queries, 10, &s.knn);
    s.knn_compdists = knn.dist_computations;
    snaps.push_back(std::move(s));
    // Build is serial and batch MRQs run block-major on one thread, so
    // their logical page accesses must be invariant.  MkNNQ batches run
    // query-major and, since the buffer-pool PR, in parallel: the
    // logical LRU interleaving is then schedule-dependent, so kNN PA is
    // deliberately outside this pin (results and compdists above still
    // cover it).
    page_accesses.push_back(build.page_accesses() + mrq.page_accesses());
  }
  for (size_t i = 1; i < snaps.size(); ++i) {
    snaps[i].ExpectEq(snaps[0]);
    EXPECT_EQ(page_accesses[i], page_accesses[0]);
  }
}

TEST_F(ThreadInvarianceTest, PivotSelectionIsIdentical) {
  std::vector<std::vector<ObjectId>> hf, hfi;
  std::vector<uint64_t> compdists;
  PivotSelectionOptions po;
  po.sample_size = 400;
  po.pair_sample = 200;
  for (unsigned t : kThreadCounts) {
    ThreadPool::SetGlobalThreads(t);
    PerfCounters pc;
    DistanceComputer d(world_->bd.metric.get(), &pc);
    hf.push_back(SelectPivotsHF(world_->bd.data, d, 8, po));
    hfi.push_back(SelectPivotsHFI(world_->bd.data, d, 5, po));
    compdists.push_back(pc.dist_computations);
  }
  for (size_t i = 1; i < hf.size(); ++i) {
    EXPECT_EQ(hf[i], hf[0]);
    EXPECT_EQ(hfi[i], hfi[0]);
    EXPECT_EQ(compdists[i], compdists[0]);
  }
}

TEST_F(ThreadInvarianceTest, EstimateDistributionIsIdentical) {
  std::vector<DistanceDistribution> dists;
  for (unsigned t : kThreadCounts) {
    ThreadPool::SetGlobalThreads(t);
    dists.push_back(
        EstimateDistribution(world_->bd.data, *world_->bd.metric, 2000, 3));
  }
  for (size_t i = 1; i < dists.size(); ++i) {
    EXPECT_EQ(dists[i].sample, dists[0].sample);
    EXPECT_EQ(dists[i].mean, dists[0].mean);
    EXPECT_EQ(dists[i].variance, dists[0].variance);
    EXPECT_EQ(dists[i].max_distance, dists[0].max_distance);
  }
}

TEST_F(ThreadInvarianceTest, ResultsInvariantAcrossSimdLevelsAndThreads) {
  // The SIMD dispatch level must be as invisible as the thread count:
  // identical batch results and compdists whether the filter runs
  // scalar, AVX2, or AVX-512, at any pool size -- and, since PR 5,
  // whether the batch executes block-major (the kAuto default for the
  // table indexes) or through the frozen query-major loop.  (The
  // dispatch table is only swapped between batches -- ReinitSimdDispatch
  // is not query-concurrent-safe.)
  // The CI scalar-dispatch leg pins PMI_SIMD for the whole run: restore
  // the inherited value afterward rather than clearing it.
  const char* inherited_env = getenv("PMI_SIMD");
  const std::string inherited = inherited_env ? inherited_env : "";
  const bool had_inherited = inherited_env != nullptr;
  Laesa laesa;
  laesa.Build(world_->bd.data, *world_->bd.metric, world_->pivots);
  const double r = world_->distribution.RadiusForSelectivity(kRadiusSel);
  std::vector<std::vector<std::vector<ObjectId>>> mrq;
  std::vector<std::vector<std::vector<Neighbor>>> knn;
  std::vector<uint64_t> compdists;
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kNeon,
                          SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (!SimdLevelSupported(level)) continue;
    ASSERT_EQ(setenv("PMI_SIMD", SimdLevelName(level), 1), 0);
    ReinitSimdDispatch();
    for (unsigned t : kThreadCounts) {
      ThreadPool::SetGlobalThreads(t);
      for (BatchMode mode : {BatchMode::kAuto, BatchMode::kQueryMajor}) {
        const std::vector<double> radii(world_->queries.size(), r);
        const std::vector<size_t> ks_vec(world_->queries.size(), 10);
        std::vector<std::vector<ObjectId>> range_out;
        OpStats rs = laesa.RangeQueryBatch(world_->queries, radii,
                                           &range_out, nullptr, mode);
        for (auto& out : range_out) std::sort(out.begin(), out.end());
        std::vector<std::vector<Neighbor>> knn_out;
        OpStats ks = laesa.KnnQueryBatch(world_->queries, ks_vec, &knn_out,
                                         nullptr, mode);
        mrq.push_back(std::move(range_out));
        knn.push_back(std::move(knn_out));
        compdists.push_back(rs.dist_computations + ks.dist_computations);
      }
    }
  }
  if (had_inherited) {
    setenv("PMI_SIMD", inherited.c_str(), 1);
  } else {
    unsetenv("PMI_SIMD");
  }
  ReinitSimdDispatch();
  ASSERT_GE(mrq.size(), kThreadCounts.size());
  for (size_t i = 1; i < mrq.size(); ++i) {
    EXPECT_EQ(compdists[i], compdists[0]);
    ASSERT_EQ(mrq[i].size(), mrq[0].size());
    for (size_t j = 0; j < mrq[0].size(); ++j) EXPECT_EQ(mrq[i][j], mrq[0][j]);
    ASSERT_EQ(knn[i].size(), knn[0].size());
    for (size_t j = 0; j < knn[0].size(); ++j) {
      ASSERT_EQ(knn[i][j].size(), knn[0][j].size());
      for (size_t k = 0; k < knn[0][j].size(); ++k) {
        EXPECT_EQ(knn[i][j][k].id, knn[0][j][k].id);
        EXPECT_EQ(knn[i][j][k].dist, knn[0][j][k].dist);
      }
    }
  }
}

TEST_F(ThreadInvarianceTest, BatchMatchesSerialQueryLoop) {
  // The batch entry points must be pure fan-out: same per-query results
  // and the same summed compdists as looping the single-query API.
  ThreadPool::SetGlobalThreads(8);
  for (auto variant : {Ept::Variant::kClassic, Ept::Variant::kStar}) {
    Ept ept(variant);
    ept.Build(world_->bd.data, *world_->bd.metric, world_->pivots);
    const double r = world_->distribution.RadiusForSelectivity(kRadiusSel);

    std::vector<std::vector<ObjectId>> batch;
    OpStats bs = ept.RangeQueryBatch(world_->queries, r, &batch);
    uint64_t serial_cd = 0;
    for (size_t i = 0; i < world_->queries.size(); ++i) {
      std::vector<ObjectId> one;
      serial_cd += ept.RangeQuery(world_->queries[i], r, &one)
                       .dist_computations;
      std::sort(one.begin(), one.end());
      std::sort(batch[i].begin(), batch[i].end());
      EXPECT_EQ(batch[i], one);
    }
    EXPECT_EQ(bs.dist_computations, serial_cd);

    std::vector<std::vector<Neighbor>> kbatch;
    OpStats ks = ept.KnnQueryBatch(world_->queries, 10, &kbatch);
    serial_cd = 0;
    for (size_t i = 0; i < world_->queries.size(); ++i) {
      std::vector<Neighbor> one;
      serial_cd += ept.KnnQuery(world_->queries[i], 10, &one)
                       .dist_computations;
      ASSERT_EQ(kbatch[i].size(), one.size());
      for (size_t j = 0; j < one.size(); ++j) {
        EXPECT_EQ(kbatch[i][j].id, one[j].id);
        EXPECT_EQ(kbatch[i][j].dist, one[j].dist);
      }
    }
    EXPECT_EQ(ks.dist_computations, serial_cd);
  }
}

}  // namespace
}  // namespace pmi
