// Pivot selection tests: determinism, distinctness, and the quality
// ordering HFI >= HF >= random that motivates the paper's equal-footing
// methodology (Section 1).

#include <set>

#include <gtest/gtest.h>

#include "src/core/filtering.h"
#include "src/core/pivot_selection.h"
#include "src/data/generators.h"

namespace pmi {
namespace {

// Mean tightness of the Lemma-1 lower bound over random pairs: the HFI
// objective.  Higher is better.
double PivotQuality(const Dataset& data, const Metric& metric,
                    const std::vector<ObjectId>& ids) {
  PivotSet pivots(data, ids);
  PerfCounters c;
  DistanceComputer dist(&metric, &c);
  Rng rng(4242);
  double sum = 0;
  int used = 0;
  std::vector<double> pa, pb;
  for (int i = 0; i < 300; ++i) {
    ObjectId a = rng() % data.size(), b = rng() % data.size();
    double d = metric.Distance(data.view(a), data.view(b));
    if (d <= 0) continue;
    pivots.Map(data.view(a), dist, &pa);
    pivots.Map(data.view(b), dist, &pb);
    sum += PivotLowerBound(pa.data(), pb.data(), pivots.size()) / d;
    ++used;
  }
  return used > 0 ? sum / used : 0;
}

class PivotSelectionTest : public ::testing::TestWithParam<BenchDatasetId> {};

TEST_P(PivotSelectionTest, ReturnsDistinctValidIds) {
  BenchDataset bd = MakeBenchDataset(GetParam(), 800, 3);
  PerfCounters c;
  DistanceComputer dist(bd.metric.get(), &c);
  PivotSelectionOptions po;
  po.sample_size = 400;
  for (uint32_t count : {1u, 3u, 7u}) {
    for (int which = 0; which < 2; ++which) {
      std::vector<ObjectId> ids =
          which == 0 ? SelectPivotsHF(bd.data, dist, count, po)
                     : SelectPivotsHFI(bd.data, dist, count, po);
      EXPECT_EQ(ids.size(), count);
      std::set<ObjectId> uniq(ids.begin(), ids.end());
      EXPECT_EQ(uniq.size(), ids.size()) << "duplicate pivots";
      for (ObjectId id : ids) EXPECT_LT(id, bd.data.size());
    }
  }
}

TEST_P(PivotSelectionTest, DeterministicForFixedSeed) {
  BenchDataset bd = MakeBenchDataset(GetParam(), 600, 3);
  PerfCounters c;
  DistanceComputer dist(bd.metric.get(), &c);
  PivotSelectionOptions po;
  po.sample_size = 300;
  po.seed = 777;
  EXPECT_EQ(SelectPivotsHFI(bd.data, dist, 5, po),
            SelectPivotsHFI(bd.data, dist, 5, po));
  EXPECT_EQ(SelectPivotsHF(bd.data, dist, 5, po),
            SelectPivotsHF(bd.data, dist, 5, po));
}

TEST_P(PivotSelectionTest, HfiBeatsRandomOnLowerBoundQuality) {
  BenchDataset bd = MakeBenchDataset(GetParam(), 1500, 3);
  PerfCounters c;
  DistanceComputer dist(bd.metric.get(), &c);
  PivotSelectionOptions po;
  po.sample_size = 800;
  double hfi = PivotQuality(bd.data, *bd.metric,
                            SelectPivotsHFI(bd.data, dist, 5, po));
  // Average several random draws to avoid a lucky sample.
  double random = 0;
  Rng rng(1);
  for (int rep = 0; rep < 5; ++rep) {
    random +=
        PivotQuality(bd.data, *bd.metric, SelectPivotsRandom(bd.data, 5, rng));
  }
  random /= 5;
  EXPECT_GT(hfi, random * 0.98)
      << "HFI should not lose to random pivot selection";
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, PivotSelectionTest,
                         ::testing::Values(BenchDatasetId::kLa,
                                           BenchDatasetId::kWords,
                                           BenchDatasetId::kColor,
                                           BenchDatasetId::kSynthetic),
                         [](const auto& info) {
                           switch (info.param) {
                             case BenchDatasetId::kLa: return "LA";
                             case BenchDatasetId::kWords: return "Words";
                             case BenchDatasetId::kColor: return "Color";
                             default: return "Synthetic";
                           }
                         });

TEST(PivotSelectionTest, HfPicksOutliers) {
  // On a clustered 2-d set with a known far point, HF must include it.
  Dataset data = Dataset::Vectors(2);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    float p[2] = {float(rng() % 100), float(rng() % 100)};
    data.AddVector(p);
  }
  float far[2] = {9000, 9000};
  ObjectId far_id = data.AddVector(far);
  L2Metric metric(2, 10000);
  PerfCounters c;
  DistanceComputer dist(&metric, &c);
  PivotSelectionOptions po;
  po.sample_size = 501;
  std::vector<ObjectId> foci = SelectPivotsHF(data, dist, 3, po);
  EXPECT_TRUE(std::find(foci.begin(), foci.end(), far_id) != foci.end())
      << "hull-of-foci missed the dominant outlier";
}

TEST(PivotSelectionTest, SharedPivotsCopySurviveDatasetGrowth) {
  Dataset data = Dataset::Vectors(2);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    float p[2] = {float(rng() % 1000), float(rng() % 1000)};
    data.AddVector(p);
  }
  L2Metric metric(2, 1000);
  PivotSet pivots = SelectSharedPivots(data, metric, 4);
  std::vector<float> before(8);
  for (uint32_t i = 0; i < 4; ++i) {
    before[2 * i] = pivots.pivot(i).vec[0];
    before[2 * i + 1] = pivots.pivot(i).vec[1];
  }
  for (int i = 0; i < 5000; ++i) {  // force reallocation of the arena
    float p[2] = {1, 2};
    data.AddVector(p);
  }
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pivots.pivot(i).vec[0], before[2 * i]);
    EXPECT_EQ(pivots.pivot(i).vec[1], before[2 * i + 1]);
  }
}

}  // namespace
}  // namespace pmi
