// Crash-recovery conformance for the durability subsystem.
//
// Three layers of coverage:
//   1. WAL unit tests: record format (CRC32C known answers, encode/
//      decode), graceful tail truncation, sequence-gap refusal, group
//      commit, sticky writer failure.
//   2. Durable lifecycle: CreateDurable/OpenDurable round trips, WAL
//      replay after a clean kill, checkpoint rotation + generation
//      pruning, fallback past a corrupt newest checkpoint.
//   3. The fault-point sweep (the PR's acceptance criterion): one fixed
//      update script runs against a FaultInjectingEnv; every
//      durability-relevant mutation of the script is a fault point, and
//      for every fault kind x every fault point the run is crashed and
//      recovered through a clean Env.  Recovery must either land on
//      exactly the acknowledged history (>= acked under SyncMode::
//      kAlways; any valid prefix for silent bit-flips) or return a
//      typed non-OK Status -- never crash, and the recovered database
//      must answer MRQ/MkNN bit-identically to a LinearScan oracle
//      replaying the same acknowledged prefix.
//
// Knobs (the harness env-var convention):
//   PMI_FAULT_POINTS  cap on fault points per kind (0 = every point)
//   PMI_FAULT_SEED    base seed for fault randomization
//   PMI_RECOVERY_LOG  append a per-point outcome line to this file

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/metric_db.h"
#include "src/api/snapshot.h"
#include "src/core/rng.h"
#include "src/data/generators.h"
#include "src/harness/workload.h"
#include "src/service/sharded_service.h"
#include "src/storage/env.h"
#include "src/storage/fault_env.h"
#include "src/storage/wal.h"

namespace pmi {
namespace {

constexpr uint32_t kDatasetN = 300;
constexpr uint64_t kDataSeed = 77;
constexpr uint32_t kScriptOps = 60;
constexpr uint64_t kScriptSeed = 20260808;

std::string NewDir(const std::string& name) {
  return ::testing::TempDir() + "pmi_wal_" + name;
}

void RemoveTree(const std::string& dir) {
  Env* env = Env::Default();
  StatusOr<std::vector<std::string>> names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      env->RemoveFile(JoinPath(dir, name));
    }
  }
  ::rmdir(dir.c_str());
}

// -- WAL format ---------------------------------------------------------------

TEST(WalFormatTest, Crc32cKnownAnswers) {
  // The canonical CRC32C check value (RFC 3720 appendix B.4).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(WalFormatTest, ParseSyncModeRoundTrips) {
  EXPECT_EQ(*ParseSyncMode("always"), SyncMode::kAlways);
  EXPECT_EQ(*ParseSyncMode("interval"), SyncMode::kInterval);
  EXPECT_EQ(*ParseSyncMode("never"), SyncMode::kNever);
  EXPECT_EQ(ParseSyncMode("sometimes").status().code(),
            StatusCode::kInvalidArgument);
}

class WalFileTest : public ::testing::Test {
 protected:
  void SetUp() override { path_ = ::testing::TempDir() + "pmi_wal_file.log"; }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteBytes(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), bytes.size());
  }

  static std::string EncodeRecords(const std::vector<WalRecord>& records) {
    std::string bytes;
    for (const WalRecord& r : records) AppendWalRecord(r, &bytes);
    return bytes;
  }

  std::string path_;
};

TEST_F(WalFileTest, RoundTripsRecords) {
  WriteBytes(EncodeRecords({{WalOp::kRemove, 1, 7},
                            {WalOp::kInsert, 2, 7},
                            {WalOp::kRemove, 3, 250}}));
  auto replay = ReadWalFile(Env::Default(), path_, 1);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_FALSE(replay->truncated_tail);
  EXPECT_EQ(replay->records[0].op, WalOp::kRemove);
  EXPECT_EQ(replay->records[1].op, WalOp::kInsert);
  EXPECT_EQ(replay->records[2].id, 250u);
  EXPECT_EQ(replay->records[2].seq, 3u);
}

TEST_F(WalFileTest, EveryTruncationYieldsAValidPrefix) {
  std::string bytes = EncodeRecords(
      {{WalOp::kRemove, 5, 1}, {WalOp::kInsert, 6, 1}, {WalOp::kRemove, 7, 2}});
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteBytes(bytes.substr(0, len));
    auto replay = ReadWalFile(Env::Default(), path_, 5);
    ASSERT_TRUE(replay.ok()) << "truncated at " << len;
    // Whole records up to the cut survive; the partial tail is flagged.
    EXPECT_EQ(replay->records.size(), len / 21) << "truncated at " << len;
    EXPECT_EQ(replay->truncated_tail, len % 21 != 0) << "at " << len;
    EXPECT_EQ(replay->valid_bytes, (len / 21) * 21);
  }
}

TEST_F(WalFileTest, BitFlipTruncatesAtTheDamagedRecord) {
  std::string bytes =
      EncodeRecords({{WalOp::kRemove, 1, 3}, {WalOp::kInsert, 2, 3}});
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string bad = bytes;
    bad[pos] = char(bad[pos] ^ 0x10);
    WriteBytes(bad);
    auto replay = ReadWalFile(Env::Default(), path_, 1);
    if (!replay.ok()) {
      // A flip may forge a record: a valid-CRC unknown op or a sequence
      // break are typed refusals, never silent acceptance.
      EXPECT_TRUE(replay.status().code() == StatusCode::kDataLoss ||
                  replay.status().code() == StatusCode::kFailedPrecondition)
          << "flip at " << pos << ": " << replay.status().ToString();
      continue;
    }
    EXPECT_LE(replay->records.size(), 2u);
    if (pos < 21) {
      // Damage in record 1 must not surface record 1.
      EXPECT_TRUE(replay->truncated_tail) << "flip at " << pos;
      EXPECT_EQ(replay->records.size(), 0u) << "flip at " << pos;
    }
  }
}

TEST_F(WalFileTest, SequenceGapIsDataLoss) {
  WriteBytes(EncodeRecords({{WalOp::kRemove, 1, 3}, {WalOp::kInsert, 3, 3}}));
  auto replay = ReadWalFile(Env::Default(), path_, 1);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);

  // Wrong starting sequence against the checkpoint's expectation.
  WriteBytes(EncodeRecords({{WalOp::kRemove, 4, 3}}));
  auto replay2 = ReadWalFile(Env::Default(), path_, 2);
  ASSERT_FALSE(replay2.ok());
  EXPECT_EQ(replay2.status().code(), StatusCode::kDataLoss);

  // expect_first_seq = 0 accepts any start (mid-history log files).
  auto replay3 = ReadWalFile(Env::Default(), path_, 0);
  ASSERT_TRUE(replay3.ok());
  EXPECT_EQ(replay3->records.size(), 1u);
}

TEST_F(WalFileTest, MissingFileIsNotFound) {
  auto replay = ReadWalFile(Env::Default(), path_ + ".nope", 1);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kNotFound);
}

/// WritableFile that records every Append/Sync for group-commit checks.
class CapturingFile final : public WritableFile {
 public:
  struct Log {
    std::vector<std::string> appends;
    int syncs = 0;
    Status next_status;
  };
  explicit CapturingFile(Log* log) : log_(log) {}
  Status Append(std::string_view data) override {
    PMI_RETURN_IF_ERROR(log_->next_status);
    log_->appends.emplace_back(data);
    return OkStatus();
  }
  Status Sync() override {
    PMI_RETURN_IF_ERROR(log_->next_status);
    ++log_->syncs;
    return OkStatus();
  }
  Status Close() override { return OkStatus(); }

 private:
  Log* log_;
};

TEST(WalWriterTest, GroupCommitIsOneAppend) {
  CapturingFile::Log log;
  WalWriter writer(std::make_unique<CapturingFile>(&log), SyncMode::kAlways,
                   1);
  for (uint64_t i = 1; i <= 5; ++i) writer.Add({WalOp::kRemove, i, 0});
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(log.appends.size(), 1u) << "one batch, one write";
  EXPECT_EQ(log.appends[0].size(), 5 * 21u);
  EXPECT_EQ(log.syncs, 1);
}

TEST(WalWriterTest, IntervalModeSyncsEveryNCommits) {
  CapturingFile::Log log;
  WalWriter writer(std::make_unique<CapturingFile>(&log), SyncMode::kInterval,
                   4);
  for (uint64_t i = 1; i <= 8; ++i) {
    writer.Add({WalOp::kRemove, i, 0});
    ASSERT_TRUE(writer.Commit().ok());
  }
  EXPECT_EQ(log.syncs, 2);
}

TEST(WalWriterTest, FailureIsSticky) {
  CapturingFile::Log log;
  WalWriter writer(std::make_unique<CapturingFile>(&log), SyncMode::kAlways,
                   1);
  writer.Add({WalOp::kRemove, 1, 0});
  log.next_status = UnavailableError("disk on fire");
  EXPECT_FALSE(writer.Commit().ok());
  log.next_status = OkStatus();
  writer.Add({WalOp::kRemove, 2, 0});
  Status second = writer.Commit();
  ASSERT_FALSE(second.ok()) << "writer must refuse work after a failure";
  EXPECT_EQ(second.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(log.appends.empty());
}

// -- shared sweep machinery ---------------------------------------------------

/// A fixed, liveness-valid update script (same construction idea as the
/// differential stress harness: the generator tracks liveness itself).
std::vector<UpdateOp> MakeUpdateScript(uint32_t n, uint32_t num_ops,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> live(n, 1);
  std::vector<uint32_t> removed;
  std::vector<UpdateOp> ops;
  while (ops.size() < num_ops) {
    if (!removed.empty() && rng() % 3 == 0) {
      size_t pick = rng() % removed.size();
      uint32_t id = removed[pick];
      removed.erase(removed.begin() + pick);
      live[id] = 1;
      ops.push_back(UpdateOp::Insert(id));
    } else {
      uint32_t id = rng() % n;
      while (live[id] == 0) id = (id + 1) % n;
      live[id] = 0;
      removed.push_back(id);
      ops.push_back(UpdateOp::Remove(id));
    }
  }
  return ops;
}

/// The durable database under test shares one pivot selection across
/// every sweep point (selection cost is irrelevant to durability).
const PivotSet& SharedPivots() {
  static const PivotSet* pivots = [] {
    Dataset data = MakeLaLike(kDatasetN, kDataSeed);
    auto db = MetricDB::Create(
        MetricDBConfig().WithMetric("L2").WithIndex("LAESA").WithPivots(3),
        std::move(data));
    CheckOk(db.ok() ? OkStatus() : db.status(), "pivot selection");
    return new PivotSet(db->pivots());
  }();
  return *pivots;
}

MetricDBConfig SweepConfig(const std::string& index) {
  return MetricDBConfig().WithMetric("L2").WithIndex(index).WithPivotSet(
      index == "LinearScan" ? PivotSet() : SharedPivots());
}

struct RunOutcome {
  bool created = false;    // CreateDurable returned OK
  uint64_t acked = 0;      // last sequence whose Apply returned OK
  uint64_t attempted = 0;  // acked, +1 if a final batch reached the WAL
};

/// Replays the script through `dopts.env`, checkpointing once
/// mid-script, stopping at the first refusal (the database is read-only
/// from then on by contract).
RunOutcome RunScript(const std::vector<UpdateOp>& ops, const std::string& dir,
                     const std::string& index, DurabilityOptions dopts) {
  RunOutcome out;
  auto db = MetricDB::CreateDurable(SweepConfig(index),
                                    MakeLaLike(kDatasetN, kDataSeed), dir,
                                    dopts);
  if (!db.ok()) return out;
  out.created = true;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i == ops.size() / 2 && !db->Checkpoint().ok()) break;
    Status applied = db->Apply({ops[i]});
    if (!applied.ok()) {
      // The op may or may not have reached the log before the fault;
      // recovery is allowed to surface it but never anything beyond.
      out.attempted = out.acked + 1;
      break;
    }
    out.acked = out.attempted = db->last_sequence();
  }
  return out;
}

/// Expected liveness after the first `seq` script ops.
std::vector<uint8_t> PrefixLiveness(const std::vector<UpdateOp>& ops,
                                    uint64_t seq) {
  std::vector<uint8_t> live(kDatasetN, 1);
  for (uint64_t i = 0; i < seq; ++i) {
    live[ops[i].id] = ops[i].op == WalOp::kInsert ? 1 : 0;
  }
  return live;
}

/// Differential check: the recovered database must answer bit-identically
/// to a LinearScan oracle replaying the same acknowledged prefix.
void ExpectMatchesOracle(const MetricDB& recovered,
                         const std::vector<UpdateOp>& ops,
                         const std::string& context) {
  const uint64_t seq = recovered.last_sequence();
  ASSERT_LE(seq, ops.size()) << context;
  auto oracle = MetricDB::Create(SweepConfig("LinearScan"),
                                 MakeLaLike(kDatasetN, kDataSeed));
  ASSERT_TRUE(oracle.ok()) << context << ": " << oracle.status().ToString();
  for (uint64_t i = 0; i < seq; ++i) {
    ASSERT_TRUE(oracle->Apply({ops[i]}).ok()) << context;
  }

  std::vector<uint8_t> live = PrefixLiveness(ops, seq);
  for (ObjectId id = 0; id < kDatasetN; ++id) {
    ASSERT_EQ(recovered.alive(id), live[id] != 0)
        << context << ": liveness of object " << id << " diverged";
  }

  for (ObjectId q : {17u, 94u, 203u}) {
    ObjectView view = oracle->dataset().view(q);
    for (double radius : {0.0, 650.0}) {
      auto got = recovered.RangeQuery(recovered.dataset().view(q), radius);
      auto want = oracle->RangeQuery(view, radius);
      ASSERT_TRUE(got.ok() && want.ok()) << context;
      std::vector<ObjectId> got_ids = got->ids[0], want_ids = want->ids[0];
      std::sort(got_ids.begin(), got_ids.end());
      std::sort(want_ids.begin(), want_ids.end());
      ASSERT_EQ(got_ids, want_ids)
          << context << ": MRQ(q=" << q << ", r=" << radius << ") diverged";
    }
    for (size_t k : {1ul, 10ul}) {
      auto got = recovered.KnnQuery(recovered.dataset().view(q), k);
      auto want = oracle->KnnQuery(view, k);
      ASSERT_TRUE(got.ok() && want.ok()) << context;
      ASSERT_EQ(got->neighbors[0].size(), want->neighbors[0].size())
          << context;
      for (size_t j = 0; j < want->neighbors[0].size(); ++j) {
        ASSERT_EQ(got->neighbors[0][j].dist, want->neighbors[0][j].dist)
            << context << ": MkNN(q=" << q << ", k=" << k
            << ") distance " << j << " diverged";
      }
    }
  }
}

// -- durable lifecycle --------------------------------------------------------

TEST(DurableLifecycleTest, CleanKillReplaysTheWalTail) {
  const std::string dir = NewDir("clean_kill");
  RemoveTree(dir);
  std::vector<UpdateOp> ops = MakeUpdateScript(kDatasetN, 20, kScriptSeed);
  {
    auto db = MetricDB::CreateDurable(SweepConfig("LAESA"),
                                      MakeLaLike(kDatasetN, kDataSeed), dir);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_TRUE(db->durable());
    for (const UpdateOp& op : ops) ASSERT_TRUE(db->Apply({op}).ok());
    EXPECT_EQ(db->last_sequence(), ops.size());
    // No Save, no Checkpoint: the process "dies" here and the WAL is
    // the only carrier of all 20 updates.
  }
  auto recovered = MetricDB::OpenDurable(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->last_sequence(), ops.size());
  ExpectMatchesOracle(*recovered, ops, "clean kill");
  RemoveTree(dir);
}

TEST(DurableLifecycleTest, BatchApplyIsAtomicAndValidated) {
  const std::string dir = NewDir("batch");
  RemoveTree(dir);
  auto db = MetricDB::CreateDurable(SweepConfig("LAESA"),
                                    MakeLaLike(kDatasetN, kDataSeed), dir);
  ASSERT_TRUE(db.ok());
  // In-batch dependencies validate against the would-be state...
  ASSERT_TRUE(db
                  ->Apply({UpdateOp::Remove(4), UpdateOp::Insert(4),
                           UpdateOp::Remove(4)})
                  .ok());
  EXPECT_FALSE(db->alive(4));
  EXPECT_EQ(db->last_sequence(), 3u);
  // ...and an invalid op anywhere rejects the whole batch.
  Status bad = db->Apply({UpdateOp::Remove(5), UpdateOp::Remove(5)});
  EXPECT_EQ(bad.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(db->alive(5));
  EXPECT_EQ(db->last_sequence(), 3u);
  EXPECT_EQ(db->Apply({UpdateOp::Remove(kDatasetN)}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(db->write_status().ok()) << "validation failures are not "
                                          "I/O faults; the DB stays writable";
  RemoveTree(dir);
}

TEST(DurableLifecycleTest, CheckpointRotatesAndPrunesGenerations) {
  const std::string dir = NewDir("rotate");
  RemoveTree(dir);
  auto db = MetricDB::CreateDurable(SweepConfig("LAESA"),
                                    MakeLaLike(kDatasetN, kDataSeed), dir);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Remove(1).ok());
  ASSERT_TRUE(db->Checkpoint().ok());  // gen 2
  ASSERT_TRUE(db->Remove(2).ok());
  ASSERT_TRUE(db->Checkpoint().ok());  // gen 3; gen 1 leaves the window
  Env* env = Env::Default();
  EXPECT_FALSE(env->FileExists(JoinPath(dir, "ckpt-000001.pmidb")));
  EXPECT_FALSE(env->FileExists(JoinPath(dir, "wal-000001.log")));
  EXPECT_TRUE(env->FileExists(JoinPath(dir, "ckpt-000002.pmidb")));
  EXPECT_TRUE(env->FileExists(JoinPath(dir, "ckpt-000003.pmidb")));
  ASSERT_TRUE(db->Close().ok());  // release the LOCK before reopening
  auto recovered = MetricDB::OpenDurable(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->last_sequence(), 2u);
  EXPECT_FALSE(recovered->alive(1));
  EXPECT_FALSE(recovered->alive(2));
  RemoveTree(dir);
}

TEST(DurableLifecycleTest, CorruptNewestCheckpointFallsBackOneGeneration) {
  const std::string dir = NewDir("fallback");
  RemoveTree(dir);
  std::vector<UpdateOp> ops = MakeUpdateScript(kDatasetN, 12, kScriptSeed + 1);
  {
    auto db = MetricDB::CreateDurable(SweepConfig("LAESA"),
                                      MakeLaLike(kDatasetN, kDataSeed), dir);
    ASSERT_TRUE(db.ok());
    for (size_t i = 0; i < 6; ++i) ASSERT_TRUE(db->Apply({ops[i]}).ok());
    ASSERT_TRUE(db->Checkpoint().ok());  // gen 2 holds seq 6
    for (size_t i = 6; i < ops.size(); ++i) {
      ASSERT_TRUE(db->Apply({ops[i]}).ok());
    }
  }
  // Flip a byte in the middle of the newest checkpoint.
  {
    const std::string newest = JoinPath(dir, "ckpt-000002.pmidb");
    std::fstream f(newest,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size / 2);
    f.put(char(0x5a));
  }
  // Recovery falls back to gen 1 and re-derives the full history from
  // the WAL chain wal-1 + wal-2.
  auto recovered = MetricDB::OpenDurable(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->last_sequence(), ops.size());
  ExpectMatchesOracle(*recovered, ops, "checkpoint fallback");
  RemoveTree(dir);
}

TEST(DurableLifecycleTest, RelaxedSyncModesRecoverAValidPrefix) {
  for (SyncMode mode : {SyncMode::kInterval, SyncMode::kNever}) {
    const std::string dir = NewDir("relaxed");
    RemoveTree(dir);
    std::vector<UpdateOp> ops =
        MakeUpdateScript(kDatasetN, 24, kScriptSeed + 2);
    DurabilityOptions dopts;
    dopts.sync_mode = mode;
    dopts.sync_interval_commits = 8;
    {
      auto db = MetricDB::CreateDurable(SweepConfig("LAESA"),
                                        MakeLaLike(kDatasetN, kDataSeed), dir,
                                        dopts);
      ASSERT_TRUE(db.ok());
      for (const UpdateOp& op : ops) ASSERT_TRUE(db->Apply({op}).ok());
    }
    auto recovered = MetricDB::OpenDurable(dir);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    // A clean process exit loses nothing even unsynced (the OS kept the
    // pages); the guarantee under test is prefix-validity.
    EXPECT_LE(recovered->last_sequence(), ops.size());
    ExpectMatchesOracle(*recovered, ops, "relaxed sync");
    RemoveTree(dir);
  }
}

TEST(DurabilityOptionsTest, FromEnvParsesTheKnobs) {
  // The CI soak matrix drives the sweep below through these same
  // variables, so restore whatever was set rather than unsetting.
  const char* old_sync = std::getenv("PMI_WAL_SYNC");
  const char* old_interval = std::getenv("PMI_WAL_SYNC_INTERVAL");
  ::setenv("PMI_WAL_SYNC", "interval", 1);
  ::setenv("PMI_WAL_SYNC_INTERVAL", "16", 1);
  DurabilityOptions o = DurabilityOptions::FromEnv();
  EXPECT_EQ(o.sync_mode, SyncMode::kInterval);
  EXPECT_EQ(o.sync_interval_commits, 16u);
  ::setenv("PMI_WAL_SYNC", "bogus", 1);
  ::setenv("PMI_WAL_SYNC_INTERVAL", "zero", 1);
  o = DurabilityOptions::FromEnv();
  EXPECT_EQ(o.sync_mode, SyncMode::kAlways) << "unparsable keeps the default";
  EXPECT_EQ(o.sync_interval_commits, 32u);
  if (old_sync) ::setenv("PMI_WAL_SYNC", old_sync, 1);
  else ::unsetenv("PMI_WAL_SYNC");
  if (old_interval) ::setenv("PMI_WAL_SYNC_INTERVAL", old_interval, 1);
  else ::unsetenv("PMI_WAL_SYNC_INTERVAL");
}

// -- the fault-point sweep ----------------------------------------------------

struct SweepStats {
  uint64_t points = 0;
  uint64_t recovered_ok = 0;
  uint64_t typed_errors = 0;
};

void SweepKind(FaultKind kind, uint64_t mutation_count,
               const std::vector<UpdateOp>& ops, const std::string& index,
               SyncMode sync_mode, uint64_t base_seed, uint32_t max_points,
               std::ofstream* log, SweepStats* stats) {
  // Visit every fault point, or an evenly-spaced subset when capped.
  const uint64_t step =
      max_points != 0 && mutation_count > max_points
          ? (mutation_count + max_points - 1) / max_points
          : 1;
  for (uint64_t trigger = 0; trigger < mutation_count; trigger += step) {
    SCOPED_TRACE(std::string(FaultKindName(kind)) + " at mutation " +
                 std::to_string(trigger));
    const std::string dir = NewDir("sweep");
    RemoveTree(dir);
    FaultInjectingEnv fault_env(Env::Default());
    fault_env.Arm({kind, trigger, base_seed ^ (trigger * 2654435761u)});
    DurabilityOptions dopts;
    dopts.sync_mode = sync_mode;
    dopts.env = &fault_env;
    RunOutcome run = RunScript(ops, dir, index, dopts);

    // The machine is now "powered off"; recover through a clean Env.
    auto recovered = MetricDB::OpenDurable(dir);
    ++stats->points;
    if (recovered.ok()) {
      ++stats->recovered_ok;
      const uint64_t seq = recovered->last_sequence();
      EXPECT_LE(seq, run.attempted)
          << "recovery surfaced updates that were never attempted";
      if (kind != FaultKind::kBitFlip && run.created &&
          sync_mode == SyncMode::kAlways) {
        // Reported faults keep the ack guarantee; only silent media
        // corruption may eat acknowledged records (detected, prefix).
        EXPECT_GE(seq, run.acked)
            << "recovery lost acknowledged updates (acked=" << run.acked
            << ")";
      }
      ExpectMatchesOracle(*recovered, ops, "sweep");
    } else {
      ++stats->typed_errors;
      EXPECT_NE(recovered.status().code(), StatusCode::kOk);
    }
    if (log != nullptr && log->is_open()) {
      *log << index << " " << FaultKindName(kind) << " trigger=" << trigger
           << " created=" << run.created << " acked=" << run.acked
           << " attempted=" << run.attempted << " outcome="
           << (recovered.ok()
                   ? "recovered seq=" +
                         std::to_string(recovered->last_sequence())
                   : recovered.status().ToString())
           << "\n";
    }
    RemoveTree(dir);
  }
}

TEST(FaultSweepTest, EveryFaultPointRecoversOrFailsTyped) {
  std::vector<UpdateOp> ops =
      MakeUpdateScript(kDatasetN, kScriptOps, kScriptSeed);

  // The CI soak matrix sweeps sync modes through PMI_WAL_SYNC; the
  // assertions below scope themselves to the mode's guarantee.
  const SyncMode sweep_mode = DurabilityOptions::FromEnv().sync_mode;

  // Calibration pass: count the script's durability-relevant mutations
  // with an unarmed env; the sweep then visits each one.
  const std::string calib_dir = NewDir("calibrate");
  RemoveTree(calib_dir);
  FaultInjectingEnv calib_env(Env::Default());
  calib_env.Arm({FaultKind::kNone, 0, 1});
  DurabilityOptions calib_opts;
  calib_opts.sync_mode = sweep_mode;
  calib_opts.env = &calib_env;
  RunOutcome calib = RunScript(ops, calib_dir, "LAESA", calib_opts);
  RemoveTree(calib_dir);
  ASSERT_TRUE(calib.created);
  ASSERT_EQ(calib.acked, ops.size()) << "unarmed run must ack everything";
  const uint64_t mutation_count = calib_env.mutation_count();
  if (sweep_mode == SyncMode::kAlways) {
    ASSERT_GE(mutation_count, 100u)
        << "script too small to give the sweep its >= 500 fault points";
  }

  const uint64_t base_seed = EnvU32("PMI_FAULT_SEED", 20260808);
  const uint32_t max_points = EnvU32("PMI_FAULT_POINTS", 0);
  std::ofstream log;
  if (const char* path = std::getenv("PMI_RECOVERY_LOG")) {
    log.open(path, std::ios::app);
  }

  SweepStats stats;
  for (FaultKind kind :
       {FaultKind::kTornWrite, FaultKind::kShortWrite, FaultKind::kFailedSync,
        FaultKind::kNoSpace, FaultKind::kBitFlip}) {
    SweepKind(kind, mutation_count, ops, "LAESA", sweep_mode, base_seed,
              max_points, log.is_open() ? &log : nullptr, &stats);
  }
  if (max_points == 0 && sweep_mode == SyncMode::kAlways) {
    EXPECT_GE(stats.points, 500u) << "acceptance criterion: >= 500 points";
  }
  // Most fault points must actually recover; typed failure is the
  // exception (e.g. a fault during the very first checkpoint).
  EXPECT_GT(stats.recovered_ok, stats.points / 2);
  if (log.is_open()) {
    log << "total points=" << stats.points
        << " recovered=" << stats.recovered_ok
        << " typed_errors=" << stats.typed_errors << "\n";
  }
}

TEST(FaultSweepTest, RebuildOnOpenIndexSurvivesTornWrites) {
  // SPB-tree has no persisted index state: recovery must rebuild and
  // then replay removes for dead ids.  A thinner sweep (one kind,
  // sampled points) keeps the runtime sane.
  std::vector<UpdateOp> ops = MakeUpdateScript(kDatasetN, 16, kScriptSeed + 3);
  const std::string calib_dir = NewDir("calibrate_spb");
  RemoveTree(calib_dir);
  FaultInjectingEnv calib_env(Env::Default());
  calib_env.Arm({FaultKind::kNone, 0, 1});
  DurabilityOptions calib_opts;
  calib_opts.env = &calib_env;
  RunOutcome calib = RunScript(ops, calib_dir, "SPB-tree", calib_opts);
  RemoveTree(calib_dir);
  ASSERT_TRUE(calib.created);
  ASSERT_EQ(calib.acked, ops.size());

  SweepStats stats;
  SweepKind(FaultKind::kTornWrite, calib_env.mutation_count(), ops,
            "SPB-tree", SyncMode::kAlways, 7, /*max_points=*/12, nullptr,
            &stats);
  EXPECT_GT(stats.recovered_ok, 0u);
}

TEST(FaultSweepTest, TornWritesUnderRelaxedSyncStayPrefixValid) {
  std::vector<UpdateOp> ops = MakeUpdateScript(kDatasetN, 24, kScriptSeed + 4);
  const std::string calib_dir = NewDir("calibrate_relaxed");
  RemoveTree(calib_dir);
  FaultInjectingEnv calib_env(Env::Default());
  calib_env.Arm({FaultKind::kNone, 0, 1});
  DurabilityOptions calib_opts;
  calib_opts.env = &calib_env;
  calib_opts.sync_mode = SyncMode::kNever;
  RunOutcome calib = RunScript(ops, calib_dir, "LAESA", calib_opts);
  RemoveTree(calib_dir);
  ASSERT_TRUE(calib.created);

  // Under kNever an acked update may die with the crash; the sweep's
  // assertions reduce to prefix-validity + oracle agreement, which
  // SweepKind already scopes by sync mode.
  SweepStats stats;
  SweepKind(FaultKind::kTornWrite, calib_env.mutation_count(), ops, "LAESA",
            SyncMode::kNever, 11, /*max_points=*/20, nullptr, &stats);
  EXPECT_GT(stats.recovered_ok, 0u);
}

// -- sharded service shard-level crash recovery -------------------------------

// Service directories nest per-shard durability dirs; depth-first removal.
void RemoveServiceTree(const std::string& dir) {
  Env* env = Env::Default();
  StatusOr<std::vector<std::string>> names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      const std::string path = JoinPath(dir, name);
      if (env->RemoveFile(path).ok()) continue;
      RemoveServiceTree(path);
    }
  }
  ::rmdir(dir.c_str());
}

TEST(ServiceShardRecoveryTest, TornShardWalRecoversAllShardsToAckedPrefix) {
  // A ShardedService survives losing power mid-Apply: the WAL of the
  // first routed shard tears, every shard of the in-flight batch fails
  // typed, and reopening through a clean Env recovers EVERY shard to
  // exactly its acknowledged prefix (SyncMode::kAlways).
  const std::string dir = NewDir("svc_shard_crash");
  RemoveServiceTree(dir);
  FaultInjectingEnv fenv(Env::Default());
  DurabilityOptions dopts;
  dopts.env = &fenv;

  constexpr uint32_t kN = 160;
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, kN, 21);
  MetricDBConfig config =
      MetricDBConfig().WithMetric("Linf").WithIndex("LAESA").WithPivots(4);
  ServiceOptions sopts;
  sopts.num_shards = 3;
  sopts.workers = 2;
  sopts.max_queue = 16;
  auto created =
      ShardedService::CreateDurable(config, std::move(bd.data), dir, sopts,
                                    dopts);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<ShardedService> svc = std::move(*created);

  // Acknowledged prefix: toggle batches, mirrored on success.
  std::vector<uint8_t> live(kN, 1);
  Rng rng(kScriptSeed + 9);
  for (int round = 0; round < 10; ++round) {
    std::vector<UpdateOp> ops;
    std::vector<uint8_t> next = live;
    for (int i = 0; i < 3; ++i) {
      ObjectId id = rng() % kN;
      if (next[id] != 0) {
        ops.push_back(UpdateOp::Remove(id));
        next[id] = 0;
      } else {
        ops.push_back(UpdateOp::Insert(id));
        next[id] = 1;
      }
    }
    StatusOr<ApplyResult> applied = svc->Apply(ops);
    ASSERT_TRUE(applied.ok() && applied->all_ok());
    live = std::move(next);
  }
  const std::vector<uint64_t> acked_sequences = svc->sequences();

  // Power loss at the very next WAL mutation: the first routed shard's
  // append tears, and every later mutation fails "powered off".  One
  // Remove per shard makes the batch touch all three.
  fenv.Arm({FaultKind::kTornWrite, /*trigger=*/0, /*seed=*/kScriptSeed});
  std::vector<UpdateOp> doomed;
  for (uint32_t s = 0; s < 3; ++s) {
    for (ObjectId id : svc->router().members(s)) {
      if (live[id] != 0) {
        doomed.push_back(UpdateOp::Remove(id));
        break;
      }
    }
  }
  ASSERT_EQ(doomed.size(), 3u);
  StatusOr<ApplyResult> crashed = svc->Apply(doomed);
  ASSERT_TRUE(crashed.ok()) << crashed.status().ToString();
  ASSERT_TRUE(fenv.crashed());
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_FALSE(crashed->shard_status[s].ok()) << "shard " << s;
  }
  svc.reset();  // teardown through the powered-off env; errors ignored

  // Recovery through a clean Env: every shard lands on its acked prefix.
  auto reopened = ShardedService::OpenDurable(dir, sopts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->sequences(), acked_sequences);
  for (ObjectId id = 0; id < kN; ++id) {
    ASSERT_EQ((*reopened)->alive(id), live[id] != 0) << "object " << id;
  }

  // And the recovered service answers like an oracle replaying that
  // same acknowledged history.
  BenchDataset obd = MakeBenchDataset(BenchDatasetId::kSynthetic, kN, 21);
  StatusOr<MetricDB> oracle = MetricDB::Create(config, std::move(obd.data));
  ASSERT_TRUE(oracle.ok());
  std::vector<UpdateOp> removes;
  for (ObjectId id = 0; id < kN; ++id) {
    if (live[id] == 0) removes.push_back(UpdateOp::Remove(id));
  }
  ASSERT_TRUE(oracle->Apply(removes).ok());
  BenchDataset qbd = MakeBenchDataset(BenchDatasetId::kSynthetic, kN, 21);
  for (int qi = 0; qi < 6; ++qi) {
    ObjectView q = qbd.data.view((qi * 29) % kN);
    StatusOr<QueryResult> want = oracle->KnnQuery(q, 6);
    StatusOr<QueryResult> got = (*reopened)->Query(QueryRequest::Knn(q, 6));
    ASSERT_TRUE(want.ok() && got.ok());
    ASSERT_EQ(got->neighbors[0].size(), want->neighbors[0].size());
    for (size_t i = 0; i < want->neighbors[0].size(); ++i) {
      ASSERT_EQ(got->neighbors[0][i].id, want->neighbors[0][i].id);
      ASSERT_EQ(got->neighbors[0][i].dist, want->neighbors[0][i].dist);
    }
  }

  ASSERT_TRUE((*reopened)->Close().ok());
  reopened->reset();
  RemoveServiceTree(dir);
}

}  // namespace
}  // namespace pmi
