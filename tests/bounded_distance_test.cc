// Property tests for the threshold-aware distance kernels (the
// verification half of the vectorized query engine).  The contract under
// test, for every metric the paper uses:
//
//   d(a, b) <= upper  =>  BoundedDistance(a, b, upper) == Distance(a, b)
//                         (bit-identical, not approximately equal)
//   d(a, b) >  upper  =>  BoundedDistance(a, b, upper) >  upper
//
// Every verification site in the library relies on this equivalence: the
// conformance suite only proves end-to-end agreement, while these tests
// pin the kernel-level contract directly, including adversarial bounds
// sitting exactly on the true distance.

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/core/metric.h"
#include "src/core/rng.h"
#include "src/data/generators.h"

namespace pmi {
namespace {

class BoundedDistanceTest : public ::testing::TestWithParam<BenchDatasetId> {};

TEST_P(BoundedDistanceTest, AgreesWithDistanceUnderRandomBounds) {
  BenchDataset bd = MakeBenchDataset(GetParam(), 400, /*seed=*/31);
  const Metric& m = *bd.metric;
  Rng rng(2077);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int trial = 0; trial < 4000; ++trial) {
    ObjectView a = bd.data.view(rng() % bd.data.size());
    ObjectView b = bd.data.view(rng() % bd.data.size());
    double exact = m.Distance(a, b);
    // Bounds spread over [0, 2 d]: half the draws force an abandon.
    double upper = 2.0 * exact * unit(rng);
    double got = m.BoundedDistance(a, b, upper);
    if (exact <= upper) {
      EXPECT_EQ(got, exact) << m.name() << ": completed run must be "
                            << "bit-identical (upper=" << upper << ")";
    } else {
      EXPECT_GT(got, upper) << m.name() << ": abandoned run must report "
                            << "> upper (exact=" << exact << ")";
    }
  }
}

TEST_P(BoundedDistanceTest, BoundExactlyAtDistanceCompletes) {
  // upper == d(a, b) is the tightest completing bound; any rounding slack
  // taken by an abandon test must not fire here.
  BenchDataset bd = MakeBenchDataset(GetParam(), 200, /*seed=*/77);
  const Metric& m = *bd.metric;
  Rng rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    ObjectView a = bd.data.view(rng() % bd.data.size());
    ObjectView b = bd.data.view(rng() % bd.data.size());
    double exact = m.Distance(a, b);
    EXPECT_EQ(m.BoundedDistance(a, b, exact), exact) << m.name();
  }
}

TEST_P(BoundedDistanceTest, InfiniteBoundEqualsDistance) {
  BenchDataset bd = MakeBenchDataset(GetParam(), 100, /*seed=*/13);
  const Metric& m = *bd.metric;
  Rng rng(9);
  const double inf = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < 500; ++trial) {
    ObjectView a = bd.data.view(rng() % bd.data.size());
    ObjectView b = bd.data.view(rng() % bd.data.size());
    EXPECT_EQ(m.BoundedDistance(a, b, inf), m.Distance(a, b)) << m.name();
  }
}

TEST_P(BoundedDistanceTest, NegativeBoundAlwaysAbandons) {
  BenchDataset bd = MakeBenchDataset(GetParam(), 50, /*seed=*/3);
  const Metric& m = *bd.metric;
  // KnnHeap::radius() is -inf for k = 0; every candidate must test > upper.
  for (double upper : {-1.0, -std::numeric_limits<double>::infinity()}) {
    for (ObjectId i = 0; i < 20; ++i) {
      EXPECT_GT(m.BoundedDistance(bd.data.view(i), bd.data.view(49 - i),
                                  upper),
                upper)
          << m.name();
    }
  }
}

TEST_P(BoundedDistanceTest, ZeroBoundIdentifiesDuplicates) {
  BenchDataset bd = MakeBenchDataset(GetParam(), 60, /*seed=*/21);
  const Metric& m = *bd.metric;
  for (ObjectId i = 0; i < bd.data.size(); ++i) {
    EXPECT_EQ(m.BoundedDistance(bd.data.view(i), bd.data.view(i), 0.0), 0.0)
        << m.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, BoundedDistanceTest,
    ::testing::Values(BenchDatasetId::kLa, BenchDatasetId::kWords,
                      BenchDatasetId::kColor, BenchDatasetId::kSynthetic),
    [](const auto& info) {
      switch (info.param) {
        case BenchDatasetId::kLa: return "L2_LA";
        case BenchDatasetId::kWords: return "Edit_Words";
        case BenchDatasetId::kColor: return "L1_Color";
        case BenchDatasetId::kSynthetic: return "Linf_Synthetic";
      }
      return "unknown";
    });

// -- edit-distance band corner cases -----------------------------------------

TEST(BoundedEditDistanceTest, HandCheckedBands) {
  EditDistanceMetric m(34);
  auto bounded = [&](std::string_view a, std::string_view b, double ub) {
    return m.BoundedDistance(ObjectView::FromString(a),
                             ObjectView::FromString(b), ub);
  };
  // Completing bands return the exact distance.
  EXPECT_EQ(bounded("kitten", "sitting", 3.0), 3.0);
  EXPECT_EQ(bounded("kitten", "sitting", 3.9), 3.0);
  EXPECT_EQ(bounded("flaw", "lawn", 2.0), 2.0);
  EXPECT_EQ(bounded("", "abc", 5.0), 3.0);
  EXPECT_EQ(bounded("abc", "", 3.0), 3.0);
  EXPECT_EQ(bounded("", "", 0.0), 0.0);
  // Abandoning bands report > upper.
  EXPECT_GT(bounded("kitten", "sitting", 2.0), 2.0);
  EXPECT_GT(bounded("kitten", "sitting", 2.99), 2.99);
  EXPECT_GT(bounded("abc", "", 2.0), 2.0);
  EXPECT_GT(bounded("defoliate", "citrate", 3.0), 3.0);
  // Length-difference shortcut.
  EXPECT_GT(bounded("a", "aaaaaaaaaa", 4.0), 4.0);
}

TEST(BoundedEditDistanceTest, RandomizedStringsAllBands) {
  // Dense sweep of every integer band for short random strings; catches
  // off-by-one band-boundary bugs the dataset-driven test might miss.
  EditDistanceMetric m(34);
  Rng rng(4242);
  auto random_word = [&](uint32_t max_len) {
    std::string w(rng() % (max_len + 1), 'a');
    for (char& c : w) c = static_cast<char>('a' + rng() % 4);
    return w;
  };
  for (int trial = 0; trial < 3000; ++trial) {
    std::string a = random_word(12), b = random_word(12);
    ObjectView va = ObjectView::FromString(a);
    ObjectView vb = ObjectView::FromString(b);
    double exact = m.Distance(va, vb);
    for (uint32_t ub = 0; ub <= 13; ++ub) {
      double got = m.BoundedDistance(va, vb, ub);
      if (exact <= ub) {
        EXPECT_EQ(got, exact) << '"' << a << "\" vs \"" << b << "\" ub=" << ub;
      } else {
        EXPECT_GT(got, double(ub))
            << '"' << a << "\" vs \"" << b << "\" ub=" << ub;
      }
    }
  }
}

// -- DistanceComputer accounting ----------------------------------------------

TEST(DistanceComputerBoundedTest, CountsAbandonedCallsAsOneComputation) {
  // compdists measures examined pairs; an early abandon is still one
  // examination.  The acceptance bar "speedup with compdists unchanged"
  // depends on this.
  L2Metric m(4, 10.0);
  PerfCounters counters;
  DistanceComputer dc(&m, &counters);
  float a[4] = {0, 0, 0, 0}, b[4] = {9, 9, 9, 9};
  ObjectView va = ObjectView::FromVector(a, 4);
  ObjectView vb = ObjectView::FromVector(b, 4);
  for (int i = 0; i < 5; ++i) dc.Bounded(va, vb, 0.5);   // abandons
  for (int i = 0; i < 3; ++i) dc.Bounded(va, vb, 1e9);   // completes
  EXPECT_EQ(counters.dist_computations, 8u);
}

}  // namespace
}  // namespace pmi
