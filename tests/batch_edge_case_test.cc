// Batch-query edge cases through both API layers: the raw
// RangeQueryBatch/KnnQueryBatch contract is graceful (empty batches,
// k == 0, k > n, and r < 0 degrade to empty or clamped results), while
// the MetricDB facade converts the nonsensical ones (k == 0, r < 0) into
// kInvalidArgument.  Both a concurrent index (LAESA fans batches across
// the pool) and a serial one (SPB-tree runs the fallback loop) are
// covered, so the edge handling is proven independent of the execution
// path.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/metric_db.h"
#include "src/core/pivot_selection.h"
#include "src/data/generators.h"
#include "src/harness/registry.h"

namespace pmi {
namespace {

class RawBatchEdgeTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    bd_ = MakeBenchDataset(BenchDatasetId::kLa, 600);
    pivots_ = SelectSharedPivots(bd_.data, *bd_.metric, 3);
    index_ = MakeIndex(GetParam());
    index_->Build(bd_.data, *bd_.metric, pivots_);
    for (ObjectId q = 0; q < 6; ++q) queries_.push_back(bd_.data.view(q));
  }

  BenchDataset bd_{.name = "", .data = Dataset::Vectors(0)};
  PivotSet pivots_;
  std::unique_ptr<MetricIndex> index_;
  std::vector<ObjectView> queries_;
};

TEST_P(RawBatchEdgeTest, EmptyBatchIsANoOp) {
  std::vector<std::vector<ObjectId>> range_out = {{1, 2, 3}};
  OpStats s = index_->RangeQueryBatch({}, 100.0, &range_out);
  EXPECT_TRUE(range_out.empty());
  EXPECT_EQ(s.dist_computations, 0u);

  std::vector<std::vector<Neighbor>> knn_out = {{Neighbor{1, 2.0}}};
  s = index_->KnnQueryBatch({}, 5, &knn_out);
  EXPECT_TRUE(knn_out.empty());
  EXPECT_EQ(s.dist_computations, 0u);
}

TEST_P(RawBatchEdgeTest, KZeroYieldsEmptyResults) {
  std::vector<std::vector<Neighbor>> out;
  index_->KnnQueryBatch(queries_, 0, &out);
  ASSERT_EQ(out.size(), queries_.size());
  for (const auto& per_query : out) EXPECT_TRUE(per_query.empty());
}

TEST_P(RawBatchEdgeTest, KBeyondNReturnsEveryObjectSorted) {
  const size_t n = bd_.data.size();
  std::vector<std::vector<Neighbor>> out;
  index_->KnnQueryBatch(queries_, n + 100, &out);
  ASSERT_EQ(out.size(), queries_.size());
  for (const auto& per_query : out) {
    ASSERT_EQ(per_query.size(), n);
    for (size_t i = 1; i < per_query.size(); ++i) {
      EXPECT_LE(per_query[i - 1].dist, per_query[i].dist);
    }
  }
}

TEST_P(RawBatchEdgeTest, NegativeRadiusMatchesNothing) {
  std::vector<std::vector<ObjectId>> out;
  index_->RangeQueryBatch(queries_, -1.0, &out);
  ASSERT_EQ(out.size(), queries_.size());
  for (const auto& per_query : out) EXPECT_TRUE(per_query.empty());
}

TEST_P(RawBatchEdgeTest, BatchEqualsSerialLoopOnEdgeK) {
  // The batch fan-out must agree with the one-by-one loop on the edge
  // values too (k == n exactly, k == 1).
  for (size_t k : {size_t(1), size_t(bd_.data.size())}) {
    std::vector<std::vector<Neighbor>> batch;
    index_->KnnQueryBatch(queries_, k, &batch);
    for (size_t i = 0; i < queries_.size(); ++i) {
      std::vector<Neighbor> solo;
      index_->KnnQuery(queries_[i], k, &solo);
      ASSERT_EQ(batch[i].size(), solo.size());
      for (size_t j = 0; j < solo.size(); ++j) {
        EXPECT_EQ(batch[i][j].id, solo[j].id);
        EXPECT_EQ(batch[i][j].dist, solo[j].dist);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ConcurrentAndSerial, RawBatchEdgeTest,
                         // LAESA opts into concurrent batches; SPB-tree
                         // (disk-based) runs the serial fallback.
                         ::testing::Values("LAESA", "SPB-tree"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return n;
                         });

class FacadeBatchEdgeTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    Dataset data = MakeLaLike(600, /*seed=*/2);
    auto db = MetricDB::Create(MetricDBConfig()
                                   .WithMetric("L2")
                                   .WithIndex(GetParam())
                                   .WithPivots(3),
                               data);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::make_unique<MetricDB>(std::move(db).value());
    for (ObjectId q = 0; q < 6; ++q) {
      queries_.push_back(db_->dataset().view(q));
    }
  }

  std::unique_ptr<MetricDB> db_;
  std::vector<ObjectView> queries_;
};

TEST_P(FacadeBatchEdgeTest, EmptyBatchSucceedsEmpty) {
  auto r = db_->Query(QueryRequest::RangeBatch({}, 10.0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->ids.empty());
  auto k = db_->Query(QueryRequest::KnnBatch({}, 3));
  ASSERT_TRUE(k.ok());
  EXPECT_TRUE(k->neighbors.empty());
}

TEST_P(FacadeBatchEdgeTest, KZeroIsInvalidArgument) {
  auto r = db_->Query(QueryRequest::KnnBatch(queries_, 0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(FacadeBatchEdgeTest, NegativeRadiusIsInvalidArgument) {
  auto r = db_->Query(QueryRequest::RangeBatch(queries_, -0.5));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(FacadeBatchEdgeTest, KBeyondNClampsToN) {
  auto r = db_->Query(
      QueryRequest::KnnBatch(queries_, db_->dataset().size() + 9));
  ASSERT_TRUE(r.ok());
  for (const auto& per_query : r->neighbors) {
    EXPECT_EQ(per_query.size(), db_->dataset().size());
  }
}

INSTANTIATE_TEST_SUITE_P(ConcurrentAndSerial, FacadeBatchEdgeTest,
                         ::testing::Values("LAESA", "SPB-tree"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace pmi
