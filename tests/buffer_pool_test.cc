// Pool-invariant tests for the shared buffer pool (satellite of the
// unified-buffer-pool PR; see src/storage/buffer_pool.h for the
// invariants pinned here):
//
//   * capacity-1 pools make progress under nested pins (overcommit),
//   * pinned pages are never evicted and their data pointers are stable,
//   * dirty pages are written back exactly once, in eviction/flush order,
//   * a faulted write-back surfaces a typed Status and loses nothing,
//   * stats and PerfCounters charges match a hand-computed script,
//   * the logical PA of a PagedFile is invariant under physical pool
//     size -- the two-level accounting the whole design rests on.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/counters.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/paged_file.h"

namespace pmi {
namespace {

constexpr uint32_t kPage = 256;

/// In-memory PageStore with injectable write faults and an order log.
class VecStore final : public PageStore {
 public:
  Status ReadInto(PageId page, char* dst) override {
    ++reads;
    if (page < pages.size()) {
      std::memcpy(dst, pages[page].data(), kPage);
    } else {
      std::memset(dst, 0, kPage);
    }
    return OkStatus();
  }

  Status WriteBack(PageId page, const char* src) override {
    if (fail_writes) {
      return UnavailableError("injected write-back fault");
    }
    if (page >= pages.size()) pages.resize(page + 1, std::string(kPage, '\0'));
    pages[page].assign(src, kPage);
    write_order.push_back(page);
    return OkStatus();
  }

  std::vector<std::string> pages;
  std::vector<PageId> write_order;
  int reads = 0;
  bool fail_writes = false;
};

TEST(BufferPoolTest, CapacityOneMakesProgressWithNestedPins) {
  VecStore store;
  BufferPool pool(kPage, kPage);  // exactly one frame
  ASSERT_EQ(pool.capacity_frames(), 1u);
  uint64_t sid = pool.RegisterStore(&store, nullptr);

  // Parent and child pinned at once (the B+-tree descent shape): the
  // pool must overcommit rather than deadlock or evict the pinned page.
  auto parent = pool.Pin(sid, 0, /*for_write=*/true, /*load=*/false);
  ASSERT_TRUE(parent.ok());
  std::memset(parent->mutable_data(), 'P', kPage);
  auto child = pool.Pin(sid, 1, /*for_write=*/true, /*load=*/false);
  ASSERT_TRUE(child.ok());
  std::memset(child->mutable_data(), 'C', kPage);
  EXPECT_EQ(parent->data()[0], 'P') << "parent must survive the child pin";
  EXPECT_EQ(pool.resident_frames(), 2u) << "one frame overcommitted";

  parent->Reset();
  child->Reset();
  ASSERT_TRUE(pool.FlushStore(sid).ok());
  ASSERT_EQ(store.pages.size(), 2u);
  EXPECT_EQ(store.pages[0][0], 'P');
  EXPECT_EQ(store.pages[1][0], 'C');
  pool.UnregisterStore(sid);
}

TEST(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  VecStore store;
  BufferPool pool(kPage, 2 * kPage);
  uint64_t sid = pool.RegisterStore(&store, nullptr);

  auto pinned = pool.Pin(sid, 0, /*for_write=*/true, /*load=*/false);
  ASSERT_TRUE(pinned.ok());
  std::memset(pinned->mutable_data(), 'X', kPage);
  const char* stable = pinned->data();

  // Churn far more pages than the pool holds; the pinned frame must
  // neither move nor be evicted.
  for (PageId p = 1; p <= 16; ++p) {
    auto h = pool.Pin(sid, p, /*for_write=*/true, /*load=*/false);
    ASSERT_TRUE(h.ok());
    std::memset(h->mutable_data(), char('a' + p % 26), kPage);
  }
  EXPECT_EQ(pinned->data(), stable);
  EXPECT_EQ(pinned->data()[0], 'X');
  EXPECT_EQ(pinned->data()[kPage - 1], 'X');
  // Eviction kept up: the pool never grew past capacity + the pinned
  // overcommit slack.
  EXPECT_LE(pool.resident_frames(), pool.capacity_frames() + 1);

  pinned->Reset();
  ASSERT_TRUE(pool.FlushStore(sid).ok());
  EXPECT_EQ(store.pages[0][0], 'X');
  pool.UnregisterStore(sid);
}

TEST(BufferPoolTest, DirtyPagesWriteBackExactlyOnceInOrder) {
  VecStore store;
  BufferPool pool(kPage, 2 * kPage);
  uint64_t sid = pool.RegisterStore(&store, nullptr);

  for (PageId p = 0; p < 2; ++p) {
    auto h = pool.Pin(sid, p, /*for_write=*/true, /*load=*/false);
    ASSERT_TRUE(h.ok());
    std::memset(h->mutable_data(), char('0' + p), kPage);
  }
  EXPECT_TRUE(store.write_order.empty()) << "write-back is lazy";

  // Reading a third page forces one eviction; CLOCK takes page 0 (both
  // candidates start referenced, the sweep clears in insertion order).
  auto h = pool.Pin(sid, 2, /*for_write=*/false);
  ASSERT_TRUE(h.ok());
  h->Reset();
  ASSERT_EQ(store.write_order, (std::vector<PageId>{0}));

  // Flush writes the remaining dirty page; a second flush writes
  // nothing -- every dirty page goes back exactly once.
  ASSERT_TRUE(pool.FlushStore(sid).ok());
  ASSERT_EQ(store.write_order, (std::vector<PageId>{0, 1}));
  ASSERT_TRUE(pool.FlushStore(sid).ok());
  EXPECT_EQ(store.write_order, (std::vector<PageId>{0, 1}));
  EXPECT_EQ(pool.stats().write_backs, 2u);
  pool.UnregisterStore(sid);
}

TEST(BufferPoolTest, FaultedWriteBackReturnsTypedStatusAndLosesNothing) {
  VecStore store;
  BufferPool pool(kPage, kPage);  // one frame: maximum pressure
  uint64_t sid = pool.RegisterStore(&store, nullptr);
  {
    auto h = pool.Pin(sid, 0, /*for_write=*/true, /*load=*/false);
    ASSERT_TRUE(h.ok());
    std::memset(h->mutable_data(), 'D', kPage);
  }

  store.fail_writes = true;
  // Explicit eviction surfaces the typed error; the page stays resident
  // and dirty.
  Status s = pool.EvictPage(sid, 0);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
  EXPECT_EQ(pool.resident_frames(), 1u);
  EXPECT_EQ(pool.stats().write_back_failures, 1u);

  // Cache pressure cannot force the loss either: with the only frame
  // dirty behind a faulted store, a new pin overcommits instead.
  const int reads_before = store.reads;
  auto h2 = pool.Pin(sid, 1, /*for_write=*/false);
  ASSERT_TRUE(h2.ok());
  h2->Reset();
  EXPECT_GE(pool.stats().write_back_failures, 2u)
      << "the sweep must have tried (and failed) the dirty victim";

  // The dirty data is still served from cache, not the (stale) store.
  auto h3 = pool.Pin(sid, 0, /*for_write=*/false);
  ASSERT_TRUE(h3.ok());
  EXPECT_EQ(h3->data()[0], 'D');
  EXPECT_EQ(store.reads, reads_before + 1)  // page 1 only
      << "the dirty page must hit the cache, never re-read the store";
  h3->Reset();

  // Once the store heals, the data lands.
  store.fail_writes = false;
  ASSERT_TRUE(pool.FlushStore(sid).ok());
  ASSERT_EQ(store.pages.size(), 1u);
  EXPECT_EQ(store.pages[0][0], 'D');
  pool.UnregisterStore(sid);
}

TEST(BufferPoolTest, StatsAndCountersMatchKnownAnswerScript) {
  VecStore store;
  store.pages.assign(4, std::string(kPage, 'z'));
  PerfCounters pc;
  BufferPool pool(kPage, 4 * kPage);
  uint64_t sid = pool.RegisterStore(&store, &pc);

  { auto h = pool.Pin(sid, 0, false); ASSERT_TRUE(h.ok()); }  // miss+read
  { auto h = pool.Pin(sid, 0, false); ASSERT_TRUE(h.ok()); }  // hit
  {  // miss, no store read (wholesale overwrite)
    auto h = pool.Pin(sid, 1, /*for_write=*/true, /*load=*/false);
    ASSERT_TRUE(h.ok());
  }
  ASSERT_TRUE(pool.FlushStore(sid).ok());   // one dirty write-back
  ASSERT_TRUE(pool.EvictPage(sid, 0).ok()); // one eviction, clean
  pool.Readahead(sid, 2, 2);                // two readahead loads
  { auto h = pool.Pin(sid, 2, false); ASSERT_TRUE(h.ok()); }  // hit

  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.write_backs, 1u);
  EXPECT_EQ(s.write_back_failures, 0u);
  EXPECT_EQ(s.readaheads, 2u);

  // The same script through the PerfCounters seam: physical reads are
  // the demand load plus the two readaheads.
  EXPECT_EQ(pc.pool_hits, 2u);
  EXPECT_EQ(pc.physical_reads, 3u);
  EXPECT_EQ(pc.physical_writes, 1u);
  EXPECT_EQ(pc.pa_physical(), 4u);
  EXPECT_EQ(store.reads, 3);
  pool.UnregisterStore(sid);
}

TEST(BufferPoolTest, ReadaheadNeverEvictsResidentPages) {
  VecStore store;
  store.pages.assign(8, std::string(kPage, 'r'));
  BufferPool pool(kPage, 2 * kPage);
  uint64_t sid = pool.RegisterStore(&store, nullptr);

  // Fill the pool with two resident (unpinned) pages.
  { auto h = pool.Pin(sid, 0, false); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Pin(sid, 1, false); ASSERT_TRUE(h.ok()); }
  ASSERT_EQ(pool.resident_frames(), 2u);

  // No free frames and no growth headroom: readahead must do nothing
  // rather than evict what queries may still want.
  pool.Readahead(sid, 2, 4);
  EXPECT_EQ(pool.stats().readaheads, 0u);
  EXPECT_EQ(pool.resident_frames(), 2u);
  EXPECT_TRUE(pool.Pin(sid, 0, false).ok()) << "page 0 still resident";
  EXPECT_EQ(pool.stats().hits, 1u);
  pool.UnregisterStore(sid);
}

TEST(BufferPoolTest, DropCleanFramesSparesDirtyOnes) {
  VecStore store;
  BufferPool pool(kPage, 4 * kPage);
  uint64_t sid = pool.RegisterStore(&store, nullptr);
  { auto h = pool.Pin(sid, 0, false); ASSERT_TRUE(h.ok()); }  // clean
  {
    auto h = pool.Pin(sid, 1, /*for_write=*/true, /*load=*/false);  // dirty
    ASSERT_TRUE(h.ok());
  }
  pool.DropCleanFrames();  // the benchmark cold-cache reset
  EXPECT_EQ(pool.resident_frames(), 1u) << "dirty page must stay";
  ASSERT_TRUE(pool.FlushStore(sid).ok());
  ASSERT_EQ(store.pages.size(), 2u);
  pool.UnregisterStore(sid);
}

// -- the two-level accounting contract ---------------------------------------

struct PaTrace {
  uint64_t reads = 0, writes = 0;
  bool operator==(const PaTrace&) const = default;
};

/// Runs a mixed page workload on a PagedFile wired to `pool` and
/// returns its logical PA trace.
PaTrace RunWorkload(std::shared_ptr<BufferPool> pool) {
  PerfCounters c;
  // Logical simulation fixed at 4 frames regardless of the pool.
  PagedFile f(kPage, 4 * kPage, &c, std::move(pool));
  std::vector<PageId> pages;
  for (int i = 0; i < 12; ++i) pages.push_back(f.Allocate());
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < pages.size(); ++i) {
      if ((i + round) % 3 == 0) {
        PageHandle h = f.Write(pages[i], /*load=*/round != 0);
        std::memset(h.mutable_data(), char(i), kPage);
      } else {
        PageHandle h = f.Read(pages[i]);
        (void)h.data()[0];
      }
    }
  }
  f.Flush();
  return PaTrace{c.page_reads, c.page_writes};
}

TEST(BufferPoolTest, LogicalPaIsInvariantUnderPhysicalPoolSize) {
  // The paper's PA numbers come from the logical LRU simulation; the
  // physical pool underneath may be any size without moving them.
  PaTrace one = RunWorkload(std::make_shared<BufferPool>(kPage, kPage));
  PaTrace tiny = RunWorkload(std::make_shared<BufferPool>(kPage, 3 * kPage));
  PaTrace huge =
      RunWorkload(std::make_shared<BufferPool>(kPage, 1024 * kPage));
  PaTrace priv = RunWorkload(nullptr);  // PagedFile's private pool
  EXPECT_EQ(one, tiny);
  EXPECT_EQ(one, huge);
  EXPECT_EQ(one, priv);
  EXPECT_GT(one.reads + one.writes, 0u);
}

TEST(BufferPoolTest, SharedPoolServesMultipleFilesWithPrivateAccounting) {
  auto pool = std::make_shared<BufferPool>(kPage, 2 * kPage);
  PerfCounters ca, cb;
  PagedFile fa(kPage, 4 * kPage, &ca, pool);
  PagedFile fb(kPage, 4 * kPage, &cb, pool);
  PageId pa = fa.Allocate(), pb = fb.Allocate();
  {
    PageHandle h = fa.Write(pa, false);
    std::memset(h.mutable_data(), 'A', kPage);
  }
  {
    PageHandle h = fb.Write(pb, false);
    std::memset(h.mutable_data(), 'B', kPage);
  }
  // Same page id in different stores must never alias a frame.
  {
    PageHandle ha = fa.Read(pa);
    PageHandle hb = fb.Read(pb);
    EXPECT_EQ(ha.data()[0], 'A');
    EXPECT_EQ(hb.data()[0], 'B');
  }
  // Each file's logical accounting is its own.
  EXPECT_EQ(ca.page_writes + cb.page_writes, 0u) << "nothing flushed yet";
  fa.Flush();
  EXPECT_EQ(ca.page_writes, 1u);
  EXPECT_EQ(cb.page_writes, 0u);
  fb.Flush();
  EXPECT_EQ(cb.page_writes, 1u);
}

}  // namespace
}  // namespace pmi
