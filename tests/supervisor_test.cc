// Supervisor + retry-layer conformance: the self-healing loop's edge
// cases, each deterministic and fast.
//
//   - backoff schedules are bit-identical under a fixed seed (and
//     capped, and Reset()-reproducible);
//   - a write-faulted shard is quarantined and recovered IN PLACE, and
//     post-recovery answers match a LinearScan oracle at the recovered
//     liveness;
//   - a ReadView bundle pinned on the victim BEFORE the fault keeps
//     answering bit-identically across the hot-swap;
//   - the circuit breaker pins a shard whose recovery keeps failing,
//     writes carry "manual reset required", and ResetShard re-arms
//     recovery to full health;
//   - a quarantined shard serves stale reads and typed kUnavailable
//     writes (shard id + retry-after parseable);
//   - recovery racing Close() neither deadlocks nor crashes, across a
//     spread of interleavings;
//   - ApplyWithRetry never double-applies a batch whose "failed" WAL
//     commit was recovered from the orphaned record (sequence-fence
//     idempotence, sequence-verified).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/metric_db.h"
#include "src/core/rng.h"
#include "src/data/generators.h"
#include "src/harness/workload.h"
#include "src/service/backoff.h"
#include "src/service/retry.h"
#include "src/service/sharded_service.h"
#include "src/storage/env.h"
#include "src/storage/fault_env.h"

namespace pmi {
namespace {

constexpr uint64_t kSeed = 20260809;

std::string NewDir(const std::string& name) {
  return ::testing::TempDir() + "pmi_sup_" + name;
}

// Service directories nest shard directories: depth-2 removal.
void RemoveTree(const std::string& dir) {
  Env* env = Env::Default();
  StatusOr<std::vector<std::string>> names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      const std::string path = JoinPath(dir, name);
      if (env->RemoveFile(path).ok()) continue;
      RemoveTree(path);
    }
  }
  ::rmdir(dir.c_str());
}

/// Polls `pred` (a cheap service introspection) until it holds or
/// `timeout_ms` elapses; returns whether it held.
bool WaitFor(const std::function<bool()>& pred, double timeout_ms = 5000) {
  const auto end = std::chrono::steady_clock::now() +
                   std::chrono::duration<double, std::milli>(timeout_ms);
  while (std::chrono::steady_clock::now() < end) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

bool AllWritable(const ShardedService& svc) {
  for (const Status& s : svc.write_statuses()) {
    if (!s.ok()) return false;
  }
  return true;
}

/// Supervisor tuned for millisecond-scale test convergence.
SupervisorOptions FastSupervisor() {
  SupervisorOptions o;
  o.poll_interval_ms = 1;
  o.initial_backoff_ms = 1;
  o.max_backoff_ms = 8;
  o.max_recovery_attempts = 200;  // tests that want the breaker lower it
  o.seed = kSeed;
  return o;
}

struct Rig {
  std::string dir;
  std::unique_ptr<FaultInjectingEnv> fenv;
  std::unique_ptr<ShardedService> svc;
  Dataset data = Dataset::Vectors(1);  // the full dataset (oracle input)

  Rig() = default;
  Rig(Rig&&) = default;
  Rig& operator=(Rig&&) = default;

  ~Rig() {
    if (svc != nullptr) svc->Close();
    svc.reset();
    RemoveTree(dir);
  }
};

/// A 3-shard durable self-healing LAESA service over a fault env.
Rig MakeRig(const std::string& name, SupervisorOptions sup = FastSupervisor(),
            uint32_t n = 120) {
  Rig rig;
  rig.dir = NewDir(name);
  RemoveTree(rig.dir);
  rig.fenv = std::make_unique<FaultInjectingEnv>(Env::Default());

  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, n, 4242);
  rig.data = bd.data;  // copy for oracle construction

  ServiceOptions sopts;
  sopts.num_shards = 3;
  sopts.workers = 2;
  sopts.max_queue = 64;
  sopts.self_heal = true;
  sopts.supervisor = sup;
  DurabilityOptions dopts;
  dopts.env = rig.fenv.get();
  auto svc_or = ShardedService::CreateDurable(
      MetricDBConfig().WithMetric("Linf").WithIndex("LAESA").WithPivots(4),
      std::move(bd.data), rig.dir, sopts, dopts);
  EXPECT_TRUE(svc_or.ok()) << svc_or.status().ToString();
  if (svc_or.ok()) rig.svc = std::move(*svc_or);
  return rig;
}

/// LinearScan oracle at the service's CURRENT liveness: brute force,
/// no index smarts to share a bug with.
StatusOr<MetricDB> OracleAtServiceState(const Rig& rig) {
  StatusOr<MetricDB> oracle = MetricDB::Create(
      MetricDBConfig().WithMetric("Linf").WithIndex("LinearScan"),
      Dataset(rig.data));
  if (!oracle.ok()) return oracle;
  for (ObjectId id = 0; id < rig.data.size(); ++id) {
    if (!rig.svc->alive(id)) {
      PMI_RETURN_IF_ERROR(oracle->Remove(id));
    }
  }
  return oracle;
}

void ExpectMatchesOracle(const Rig& rig) {
  StatusOr<MetricDB> oracle = OracleAtServiceState(rig);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  Rng rng(kSeed ^ 0xabc);
  std::vector<ObjectView> queries;
  for (int i = 0; i < 6; ++i) {
    queries.push_back(rig.data.view(rng() % rig.data.size()));
  }
  const double radius = 0.4;
  StatusOr<QueryResult> omrq =
      oracle->Query(QueryRequest::RangeBatch(queries, radius));
  StatusOr<QueryResult> smrq =
      rig.svc->Query(QueryRequest::RangeBatch(queries, radius));
  ASSERT_TRUE(omrq.ok()) << omrq.status().ToString();
  ASSERT_TRUE(smrq.ok()) << smrq.status().ToString();
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<ObjectId> want = omrq->ids[q];
    std::sort(want.begin(), want.end());
    EXPECT_EQ(smrq->ids[q], want) << "MRQ mismatch at query " << q;
  }
  StatusOr<QueryResult> oknn =
      oracle->Query(QueryRequest::KnnBatch(queries, size_t{5}));
  StatusOr<QueryResult> sknn =
      rig.svc->Query(QueryRequest::KnnBatch(queries, size_t{5}));
  ASSERT_TRUE(oknn.ok()) << oknn.status().ToString();
  ASSERT_TRUE(sknn.ok()) << sknn.status().ToString();
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(sknn->neighbors[q].size(), oknn->neighbors[q].size());
    for (size_t i = 0; i < oknn->neighbors[q].size(); ++i) {
      EXPECT_EQ(sknn->neighbors[q][i].id, oknn->neighbors[q][i].id);
      EXPECT_EQ(sknn->neighbors[q][i].dist, oknn->neighbors[q][i].dist);
    }
  }
}

// -- backoff determinism ------------------------------------------------------

TEST(BackoffTest, ScheduleDeterministicUnderFixedSeed) {
  BackoffPolicy policy{1.0, 64.0, 2.0};
  Backoff a(policy, 77);
  Backoff b(policy, 77);
  std::vector<double> da, db;
  for (int i = 0; i < 12; ++i) {
    da.push_back(a.NextDelayMs());
    db.push_back(b.NextDelayMs());
  }
  EXPECT_EQ(da, db) << "same seed must give a bit-identical schedule";

  // Capped exponential shape with jitter in [0.75, 1.25).
  for (int i = 0; i < 12; ++i) {
    const double nominal = std::min(64.0, 1.0 * (1 << i));
    EXPECT_GE(da[i], 0.75 * nominal) << "attempt " << i;
    EXPECT_LT(da[i], 1.25 * nominal) << "attempt " << i;
  }

  // Reset() replays the schedule exactly.
  a.Reset();
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(a.NextDelayMs(), da[i]) << "attempt " << i;
  }

  // A different seed jitters differently somewhere.
  Backoff c(policy, 78);
  bool any_diff = false;
  for (int i = 0; i < 12; ++i) {
    if (c.NextDelayMs() != da[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// -- typed-error plumbing -----------------------------------------------------

TEST(RetryPolicyTest, ErrorClassificationAndParsing) {
  const Status quarantined =
      ShardUnavailableError(2, 12.5, "quarantined after a write fault");
  EXPECT_EQ(quarantined.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryableError(quarantined, /*query=*/false));
  ASSERT_TRUE(ParseRetryAfterMs(quarantined).has_value());
  EXPECT_DOUBLE_EQ(*ParseRetryAfterMs(quarantined), 12.5);
  ASSERT_TRUE(ParseUnavailableShard(quarantined).has_value());
  EXPECT_EQ(*ParseUnavailableShard(quarantined), 2u);

  const Status pinned = ShardUnavailableError(
      1, -1, "pinned read-only by the circuit breaker");
  EXPECT_FALSE(IsRetryableError(pinned, /*query=*/false))
      << "pinned shards are terminal until manual reset";
  EXPECT_LT(*ParseRetryAfterMs(pinned), 0);

  EXPECT_TRUE(IsRetryableError(ResourceExhaustedError("queue full"), false));
  EXPECT_TRUE(IsRetryableError(
      DeadlineExceededError("request deadline expired while queued"), false));
  EXPECT_TRUE(IsRetryableError(
      DeadlineExceededError("request deadline expired before dispatch to "
                            "shard 1"),
      false));
  EXPECT_FALSE(IsRetryableError(
      DeadlineExceededError("request deadline expired mid-gather"), false))
      << "a mid-gather Apply expiry is not provably pre-dispatch";
  EXPECT_TRUE(IsRetryableError(
      DeadlineExceededError("request deadline expired mid-gather"), true))
      << "reads are idempotent";
  EXPECT_FALSE(IsRetryableError(FailedPreconditionError("closed"), false));
  EXPECT_FALSE(IsRetryableError(InvalidArgumentError("bad id"), false));

  const Status fence = SequenceFenceError(7, 5);
  EXPECT_TRUE(IsSequenceFenceMismatch(fence));
  EXPECT_FALSE(IsRetryableError(fence, false))
      << "fence mismatches route through the liveness probe, not blind "
         "retry";
}

// -- recovery happy path ------------------------------------------------------

TEST(SupervisorTest, RecoversFaultedShardInPlace) {
  Rig rig = MakeRig("recover");
  ASSERT_NE(rig.svc, nullptr);
  const uint32_t victim = 1;
  const ObjectId a = rig.svc->router().members(victim)[0];
  const ObjectId b = rig.svc->router().members(victim)[1];

  rig.fenv->Arm({FaultKind::kFailedSync, /*trigger=*/0, /*seed=*/kSeed});
  StatusOr<ApplyResult> faulted =
      rig.svc->Apply({UpdateOp::Remove(a), UpdateOp::Remove(b)});
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(faulted->shard_status[victim].code(), StatusCode::kUnavailable)
      << faulted->shard_status[victim].ToString();

  // Heal the env and let the supervisor close the loop.
  rig.fenv->Arm({FaultKind::kNone, 0, kSeed});
  ASSERT_TRUE(WaitFor([&] { return AllWritable(*rig.svc); }))
      << "service did not converge back to all-shards-writable";

  const ShardSupervisor::Stats stats = rig.svc->supervisor()->stats();
  EXPECT_GE(stats.faults_detected, 1u);
  EXPECT_GE(stats.recoveries, 1u);
  EXPECT_GT(stats.last_recovery_ms, 0);

  // The failed-sync batch reached the WAL before the sync fault, so
  // recovery replays it: the shard recovered PAST the acked prefix, to
  // a valid prefix of issued history (the PR 6 contract).
  EXPECT_FALSE(rig.svc->alive(a));
  EXPECT_FALSE(rig.svc->alive(b));
  EXPECT_EQ(rig.svc->sequences()[victim], 2u);

  // Writable again, and answers match a LinearScan oracle at the
  // recovered liveness.
  ASSERT_TRUE(rig.svc->Insert(a).ok());
  ASSERT_TRUE(rig.svc->Remove(a).ok());
  ExpectMatchesOracle(rig);
  for (const ShardHealthReport& h : rig.svc->health()) {
    EXPECT_EQ(h.health, ShardHealth::kHealthy) << ShardHealthName(h.health);
  }
}

// -- idempotent retries -------------------------------------------------------

TEST(SupervisorTest, RetriedApplyNeverDoubleAppliesAfterOrphanReplay) {
  Rig rig = MakeRig("idempotent");
  ASSERT_NE(rig.svc, nullptr);
  const uint32_t victim = 1;
  const ObjectId a = rig.svc->router().members(victim)[0];
  const ObjectId b = rig.svc->router().members(victim)[1];
  ASSERT_EQ(rig.svc->sequences()[victim], 0u);

  rig.fenv->Arm({FaultKind::kFailedSync, /*trigger=*/0, /*seed=*/kSeed});

  // Retry in a client thread; the orchestrator heals the env once the
  // fault has fired, and the supervisor recovers the shard mid-retry.
  RetryPolicy policy;
  policy.max_attempts = 200;
  policy.backoff = {1.0, 8.0, 2.0};
  policy.seed = kSeed;
  RetryStats rstats;
  StatusOr<ApplyResult> result = InternalError("not run");
  std::thread client([&] {
    result = ApplyWithRetry(*rig.svc, {UpdateOp::Remove(a), UpdateOp::Remove(b)},
                            policy, {}, &rstats);
  });
  ASSERT_TRUE(WaitFor([&] { return rig.fenv->triggered(); }));
  rig.fenv->Arm({FaultKind::kNone, 0, kSeed});
  client.join();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->all_ok()) << result->Collapse().ToString();
  EXPECT_GE(rstats.attempts, 2u) << "first attempt must have failed";

  // Sequence-verified: the batch is applied EXACTLY once.  The orphaned
  // WAL record advanced the shard to sequence 2 during recovery; a
  // blind retry would have pushed it to 4 (or double-removed).  The
  // fence caught it as an idempotent skip instead.
  ASSERT_TRUE(WaitFor([&] { return AllWritable(*rig.svc); }));
  EXPECT_EQ(rig.svc->sequences()[victim], 2u);
  EXPECT_EQ(rstats.idempotent_skips, 1u);
  EXPECT_FALSE(rig.svc->alive(a));
  EXPECT_FALSE(rig.svc->alive(b));
  ExpectMatchesOracle(rig);
}

// -- hot swap vs pinned views -------------------------------------------------

TEST(SupervisorTest, HotSwapPreservesPinnedReadViews) {
  Rig rig = MakeRig("pinned_views");
  ASSERT_NE(rig.svc, nullptr);
  const uint32_t victim = 0;
  const ObjectId a = rig.svc->router().members(victim)[0];

  StatusOr<ShardedService::ReadView> bundle = rig.svc->GetReadView();
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  const std::vector<uint64_t> pinned_seqs = bundle->sequences();
  Rng rng(kSeed ^ 0x77);
  std::vector<ObjectView> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(rig.data.view(rng() % rig.data.size()));
  }
  StatusOr<QueryResult> before =
      bundle->Query(QueryRequest::KnnBatch(queries, size_t{4}));
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  rig.fenv->Arm({FaultKind::kFailedSync, /*trigger=*/0, /*seed=*/kSeed});
  StatusOr<ApplyResult> faulted = rig.svc->Apply({UpdateOp::Remove(a)});
  ASSERT_TRUE(faulted.ok());
  EXPECT_FALSE(faulted->all_ok());
  rig.fenv->Arm({FaultKind::kNone, 0, kSeed});
  ASSERT_TRUE(WaitFor([&] { return AllWritable(*rig.svc); }));

  // The bundle predates the fault; the hot-swap must not invalidate it.
  EXPECT_EQ(bundle->sequences(), pinned_seqs);
  StatusOr<QueryResult> after =
      bundle->Query(QueryRequest::KnnBatch(queries, size_t{4}));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(after->neighbors[q].size(), before->neighbors[q].size());
    for (size_t i = 0; i < before->neighbors[q].size(); ++i) {
      EXPECT_EQ(after->neighbors[q][i].id, before->neighbors[q][i].id);
      EXPECT_EQ(after->neighbors[q][i].dist, before->neighbors[q][i].dist);
    }
  }
  // And the service itself moved on (the orphaned remove replayed).
  EXPECT_FALSE(rig.svc->alive(a));
  EXPECT_TRUE(bundle->alive(a)) << "pinned view must predate the fault";
}

// -- circuit breaker + manual reset -------------------------------------------

TEST(SupervisorTest, CircuitBreakerTripsAndManualResetRecovers) {
  SupervisorOptions sup = FastSupervisor();
  sup.max_recovery_attempts = 2;
  Rig rig = MakeRig("breaker", sup);
  ASSERT_NE(rig.svc, nullptr);
  const uint32_t victim = 2;
  const ObjectId a = rig.svc->router().members(victim)[0];

  // A torn write crashes the whole fault env: every later mutation --
  // including the supervisor's OpenDurable attempts -- fails until the
  // env is re-armed, so the breaker trips deterministically.  Only the
  // victim shard sees writes, so only it quarantines.
  rig.fenv->Arm({FaultKind::kTornWrite, /*trigger=*/0, /*seed=*/kSeed});
  StatusOr<ApplyResult> faulted = rig.svc->Apply({UpdateOp::Remove(a)});
  ASSERT_TRUE(faulted.ok());
  EXPECT_FALSE(faulted->all_ok());

  ASSERT_TRUE(WaitFor([&] {
    return rig.svc->health()[victim].health == ShardHealth::kPinnedReadOnly;
  })) << "circuit breaker never tripped";

  const ShardHealthReport pinned = rig.svc->health()[victim];
  EXPECT_EQ(pinned.attempts, 2u);
  EXPECT_LT(pinned.retry_after_ms, 0);
  EXPECT_FALSE(pinned.last_error.ok());
  EXPECT_GE(rig.svc->supervisor()->stats().breaker_trips, 1u);

  // Pinned: writes are terminal typed kUnavailable naming the shard...
  Status refused = rig.svc->Remove(a);
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable) << refused.ToString();
  EXPECT_EQ(ParseUnavailableShard(refused).value_or(999), victim);
  EXPECT_LT(ParseRetryAfterMs(refused).value_or(0), 0);
  EXPECT_FALSE(IsRetryableError(refused, /*query=*/false));
  // ...and reads still flow from the stale quarantine view.
  EXPECT_TRUE(rig.svc->alive(a));
  StatusOr<QueryResult> read = rig.svc->Query(
      QueryRequest::Knn(rig.data.view(a), size_t{3}));
  EXPECT_TRUE(read.ok()) << read.status().ToString();

  // Resetting while the env is still broken restarts the attempt
  // counter but cannot heal; the breaker trips again.
  ASSERT_TRUE(rig.svc->ResetShard(victim).ok());
  ASSERT_TRUE(WaitFor([&] {
    return rig.svc->health()[victim].health == ShardHealth::kPinnedReadOnly;
  }));

  // Heal the env, reset again: the shard comes back for real.
  rig.fenv->Arm({FaultKind::kNone, 0, kSeed});
  ASSERT_TRUE(rig.svc->ResetShard(victim).ok());
  ASSERT_TRUE(WaitFor([&] { return AllWritable(*rig.svc); }))
      << "manual reset did not recover the shard";
  // The torn record was truncated on replay: the remove never
  // committed, and the shard is writable from its pre-batch state.
  EXPECT_TRUE(rig.svc->alive(a));
  EXPECT_TRUE(rig.svc->Remove(a).ok());
  ExpectMatchesOracle(rig);

  // ResetShard contract checks.
  EXPECT_EQ(rig.svc->ResetShard(victim).code(),
            StatusCode::kFailedPrecondition)
      << "healthy shard has nothing to reset";
  EXPECT_EQ(rig.svc->ResetShard(99).code(), StatusCode::kInvalidArgument);
}

// -- quarantine read/write contract -------------------------------------------

TEST(SupervisorTest, QuarantinedShardServesStaleReadsAndTypedWrites) {
  SupervisorOptions sup = FastSupervisor();
  sup.initial_backoff_ms = 60000;  // park recovery far in the future
  sup.max_backoff_ms = 60000;
  Rig rig = MakeRig("quarantine", sup);
  ASSERT_NE(rig.svc, nullptr);
  const uint32_t victim = 1;
  const ObjectId a = rig.svc->router().members(victim)[0];
  const ObjectId other = rig.svc->router().members(0)[0];

  rig.fenv->Arm({FaultKind::kFailedSync, /*trigger=*/0, /*seed=*/kSeed});
  StatusOr<ApplyResult> faulted = rig.svc->Apply({UpdateOp::Remove(a)});
  ASSERT_TRUE(faulted.ok());
  EXPECT_FALSE(faulted->all_ok());
  rig.fenv->Arm({FaultKind::kNone, 0, kSeed});

  ASSERT_TRUE(WaitFor([&] {
    return rig.svc->health()[victim].health == ShardHealth::kQuarantined;
  }));

  // Writes: typed kUnavailable carrying shard id + a positive
  // retry-after hint (recovery is parked an hour away).
  Status refused = rig.svc->Remove(a);
  ASSERT_EQ(refused.code(), StatusCode::kUnavailable) << refused.ToString();
  EXPECT_EQ(ParseUnavailableShard(refused).value_or(999), victim);
  EXPECT_GT(ParseRetryAfterMs(refused).value_or(-1), 0);
  EXPECT_TRUE(IsRetryableError(refused, /*query=*/false));

  // Reads: the stale view answers (the un-acked remove is not visible
  // there), and a fresh ReadView bundle still assembles.
  EXPECT_TRUE(rig.svc->alive(a));
  StatusOr<QueryResult> read =
      rig.svc->Query(QueryRequest::Knn(rig.data.view(a), size_t{3}));
  EXPECT_TRUE(read.ok()) << read.status().ToString();
  StatusOr<ShardedService::ReadView> bundle = rig.svc->GetReadView();
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();

  // Healthy shards are untouched by the quarantine.
  EXPECT_TRUE(rig.svc->Remove(other).ok());

  // Closing a service with a quarantined shard must be clean.
  EXPECT_TRUE(rig.svc->Close().ok());
}

// -- recovery racing Close ----------------------------------------------------

TEST(SupervisorTest, RecoveryRacingCloseDoesNotDeadlockOrCrash) {
  // Sweep sleep offsets so Close lands before, during, and after the
  // recovery attempt across runs.
  const uint32_t kRounds = 8;
  for (uint32_t round = 0; round < kRounds; ++round) {
    Rig rig = MakeRig("close_race_" + std::to_string(round));
    ASSERT_NE(rig.svc, nullptr);
    const uint32_t victim = round % 3;
    const ObjectId a = rig.svc->router().members(victim)[0];

    rig.fenv->Arm({FaultKind::kFailedSync, /*trigger=*/0, /*seed=*/kSeed});
    StatusOr<ApplyResult> faulted = rig.svc->Apply({UpdateOp::Remove(a)});
    ASSERT_TRUE(faulted.ok());
    rig.fenv->Arm({FaultKind::kNone, 0, kSeed});

    std::this_thread::sleep_for(std::chrono::microseconds(137 * round * round));
    // Close while the supervisor may be mid-quarantine or mid-recovery:
    // Close stops the supervisor FIRST, so whatever instance ends up in
    // the slot is closed exactly once, and the shard directory LOCK is
    // always released.
    EXPECT_TRUE(rig.svc->Close().ok());
    rig.svc.reset();

    // The directory must reopen cleanly -- no leaked LOCK, no torn
    // meta, a valid per-shard WAL/checkpoint chain.
    DurabilityOptions dopts;
    dopts.env = rig.fenv.get();
    ServiceOptions sopts;
    sopts.self_heal = true;
    sopts.supervisor = FastSupervisor();
    auto reopened = ShardedService::OpenDurable(rig.dir, sopts, dopts);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_TRUE(AllWritable(**reopened));
    EXPECT_TRUE((*reopened)->Close().ok());
  }
}

}  // namespace
}  // namespace pmi
