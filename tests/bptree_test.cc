// B+-tree unit and property tests: ordered iteration, duplicates, removal,
// bulk load equivalence, MBB aggregate maintenance, and scan correctness
// against a sorted-vector model.

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/rng.h"
#include "src/storage/bptree.h"
#include "src/storage/paged_file.h"

namespace pmi {
namespace {

std::vector<char> Val(uint32_t v) {
  std::vector<char> out(4);
  std::memcpy(out.data(), &v, 4);
  return out;
}

uint32_t UnVal(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

TEST(BPlusTreeTest, InsertScanSmall) {
  PerfCounters c;
  PagedFile f(256, 128 * 1024, &c);
  BPlusTree t(&f, 4);
  for (uint32_t i = 0; i < 100; ++i) t.Insert(i * 2, Val(i).data());
  std::vector<uint64_t> keys;
  t.Scan(0, UINT64_MAX, [&](uint64_t k, const char* v) {
    keys.push_back(k);
    EXPECT_EQ(UnVal(v) * 2, k);
    return true;
  });
  ASSERT_EQ(keys.size(), 100u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_GT(t.height(), 1u);
}

TEST(BPlusTreeTest, RangeScanBoundsInclusive) {
  PerfCounters c;
  PagedFile f(256, 128 * 1024, &c);
  BPlusTree t(&f, 4);
  for (uint32_t i = 0; i < 50; ++i) t.Insert(i * 10, Val(i).data());
  std::vector<uint64_t> keys;
  t.Scan(100, 200, [&](uint64_t k, const char*) {
    keys.push_back(k);
    return true;
  });
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_EQ(keys.front(), 100u);
  EXPECT_EQ(keys.back(), 200u);
}

TEST(BPlusTreeTest, DuplicateKeysAllStored) {
  PerfCounters c;
  PagedFile f(256, 128 * 1024, &c);
  BPlusTree t(&f, 4);
  for (uint32_t i = 0; i < 300; ++i) t.Insert(42, Val(i).data());
  std::vector<uint32_t> vals;
  t.Scan(42, 42, [&](uint64_t, const char* v) {
    vals.push_back(UnVal(v));
    return true;
  });
  ASSERT_EQ(vals.size(), 300u);
  std::sort(vals.begin(), vals.end());
  for (uint32_t i = 0; i < 300; ++i) EXPECT_EQ(vals[i], i);
}

TEST(BPlusTreeTest, RemoveSpecificDuplicate) {
  PerfCounters c;
  PagedFile f(256, 128 * 1024, &c);
  BPlusTree t(&f, 4);
  for (uint32_t i = 0; i < 200; ++i) t.Insert(7, Val(i).data());
  EXPECT_TRUE(t.Remove(7, Val(123).data(), 4));
  EXPECT_FALSE(t.Remove(7, Val(123).data(), 4)) << "already removed";
  EXPECT_FALSE(t.Remove(8, Val(0).data(), 4)) << "absent key";
  size_t n = 0;
  bool saw_123 = false;
  t.Scan(0, UINT64_MAX, [&](uint64_t, const char* v) {
    ++n;
    saw_123 |= UnVal(v) == 123;
    return true;
  });
  EXPECT_EQ(n, 199u);
  EXPECT_FALSE(saw_123);
}

TEST(BPlusTreeTest, RandomizedAgainstModel) {
  PerfCounters c;
  PagedFile f(512, 128 * 1024, &c);
  BPlusTree t(&f, 4);
  std::multimap<uint64_t, uint32_t> model;
  Rng rng(99);
  for (int op = 0; op < 5000; ++op) {
    if (model.empty() || rng() % 3 != 0) {
      uint64_t k = rng() % 500;
      uint32_t v = static_cast<uint32_t>(rng());
      t.Insert(k, Val(v).data());
      model.emplace(k, v);
    } else {
      auto it = model.begin();
      std::advance(it, rng() % model.size());
      EXPECT_TRUE(t.Remove(it->first, Val(it->second).data(), 4));
      model.erase(it);
    }
  }
  std::vector<std::pair<uint64_t, uint32_t>> got, want;
  t.Scan(0, UINT64_MAX, [&](uint64_t k, const char* v) {
    got.emplace_back(k, UnVal(v));
    return true;
  });
  for (auto& [k, v] : model) want.emplace_back(k, v);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  EXPECT_EQ(t.entry_count(), model.size());
}

TEST(BPlusTreeTest, BulkLoadMatchesInsertion) {
  PerfCounters c1, c2;
  PagedFile f1(512, 128 * 1024, &c1), f2(512, 128 * 1024, &c2);
  BPlusTree a(&f1, 4), b(&f2, 4);
  std::vector<std::pair<uint64_t, std::vector<char>>> entries;
  Rng rng(5);
  for (uint32_t i = 0; i < 2000; ++i) {
    entries.emplace_back(rng() % 10000, Val(i));
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](auto& x, auto& y) { return x.first < y.first; });
  for (auto& [k, v] : entries) a.Insert(k, v.data());
  b.BulkLoad(entries);
  std::vector<std::pair<uint64_t, uint32_t>> got_a, got_b;
  a.Scan(0, UINT64_MAX, [&](uint64_t k, const char* v) {
    got_a.emplace_back(k, UnVal(v));
    return true;
  });
  b.Scan(0, UINT64_MAX, [&](uint64_t k, const char* v) {
    got_b.emplace_back(k, UnVal(v));
    return true;
  });
  std::sort(got_a.begin(), got_a.end());
  std::sort(got_b.begin(), got_b.end());
  EXPECT_EQ(got_a, got_b);
  EXPECT_LT(f2.num_pages(), f1.num_pages())
      << "bulk load should pack tighter than repeated insertion";
}

// Aggregate adapter used below: value = 2 float coords.
void TwoDPoint(uint64_t, const char* value, float* coords) {
  std::memcpy(coords, value, 8);
}

std::vector<char> PointVal(float x, float y) {
  std::vector<char> out(8);
  std::memcpy(out.data(), &x, 4);
  std::memcpy(out.data() + 4, &y, 4);
  return out;
}

// Walks every internal entry and checks its stored MBB exactly bounds the
// leaf points below it.
void CheckAggregates(const BPlusTree& t, PageId page, float* out_lo,
                     float* out_hi) {
  BPlusTree::NodeView node = t.ReadNode(page);
  const uint32_t d = t.agg_dims();
  for (uint32_t j = 0; j < d; ++j) {
    out_lo[j] = 1e30f;
    out_hi[j] = -1e30f;
  }
  std::vector<float> coords(d), clo(d), chi(d);
  for (uint32_t i = 0; i < node.count; ++i) {
    if (node.is_leaf) {
      TwoDPoint(node.key(i), node.value(i), coords.data());
      for (uint32_t j = 0; j < d; ++j) {
        out_lo[j] = std::min(out_lo[j], coords[j]);
        out_hi[j] = std::max(out_hi[j], coords[j]);
      }
    } else {
      CheckAggregates(t, node.child(i), clo.data(), chi.data());
      for (uint32_t j = 0; j < d; ++j) {
        EXPECT_FLOAT_EQ(node.agg_lo(i)[j], clo[j]);
        EXPECT_FLOAT_EQ(node.agg_hi(i)[j], chi[j]);
        out_lo[j] = std::min(out_lo[j], clo[j]);
        out_hi[j] = std::max(out_hi[j], chi[j]);
      }
    }
  }
}

TEST(BPlusTreeTest, AggregatesTrackLeavesThroughInsertAndRemove) {
  PerfCounters c;
  PagedFile f(512, 128 * 1024, &c);
  BPlusTree t(&f, 8, 2, TwoDPoint);
  Rng rng(31);
  std::vector<std::pair<uint64_t, std::vector<char>>> inserted;
  for (int i = 0; i < 1500; ++i) {
    uint64_t k = rng() % 4096;
    auto v = PointVal(float(rng() % 1000), float(rng() % 1000));
    t.Insert(k, v.data());
    inserted.emplace_back(k, v);
  }
  for (int i = 0; i < 700; ++i) {
    size_t idx = rng() % inserted.size();
    EXPECT_TRUE(
        t.Remove(inserted[idx].first, inserted[idx].second.data(), 8));
    inserted.erase(inserted.begin() + idx);
  }
  float lo[2], hi[2];
  CheckAggregates(t, t.root(), lo, hi);
}

TEST(BPlusTreeTest, ScanPageAccessesScaleWithRange) {
  PerfCounters c;
  PagedFile f(4096, 8 * 4096, &c);
  BPlusTree t(&f, 4);
  std::vector<std::pair<uint64_t, std::vector<char>>> entries;
  for (uint32_t i = 0; i < 20000; ++i) entries.emplace_back(i, Val(i));
  t.BulkLoad(entries);
  f.DropCache();
  c.Reset();
  t.Scan(0, 10, [](uint64_t, const char*) { return true; });
  uint64_t small = c.page_reads;
  f.DropCache();
  c.Reset();
  t.Scan(0, 10000, [](uint64_t, const char*) { return true; });
  uint64_t big = c.page_reads;
  EXPECT_LT(small, 5u);
  EXPECT_GT(big, small * 4);
}

}  // namespace
}  // namespace pmi
