// Save/Open round-trip conformance: for every index implementing
// persistence, a database restored from a snapshot must answer exactly
// like the instance that was saved -- identical results, identical
// per-request compdists, identical memory/disk footprints -- and the
// table indexes must restore without a single distance computation.
// Damaged files (truncation, bit flips, version bumps, wrong magic) must
// come back as errors, never as crashes.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/metric_db.h"
#include "src/api/snapshot.h"
#include "src/core/serialize.h"
#include "src/data/generators.h"

namespace pmi {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "pmi_" + name + ".pmidb";
}

std::string SafeName(std::string n) {
  for (char& c : n) {
    if (c == '*') c = 'S';
    if (c == '-' || c == '+') c = '_';
  }
  return n;
}

struct Case {
  std::string index;
  bool persists;      // SaveState implemented (vs rebuild-on-open)
  bool zero_compdist; // Open must compute no distances at all
};

class SnapshotRoundTripTest : public ::testing::TestWithParam<Case> {};

TEST_P(SnapshotRoundTripTest, RoundTripsExactly) {
  const Case& c = GetParam();
  Dataset data = MakeLaLike(1500, /*seed=*/11);
  auto built = MetricDB::Create(MetricDBConfig()
                                    .WithMetric("L2")
                                    .WithIndex(c.index)
                                    .WithPivots(4),
                                data);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  std::vector<ObjectView> queries;
  for (ObjectId q = 0; q < 12; ++q) queries.push_back(data.view(q * 101 % data.size()));
  auto range0 = built->Query(QueryRequest::RangeBatch(queries, 650.0));
  auto knn0 = built->Query(QueryRequest::KnnBatch(queries, 10));
  ASSERT_TRUE(range0.ok() && knn0.ok());

  const std::string path = TempPath(SafeName(c.index));
  ASSERT_TRUE(built->Save(path).ok());

  auto reopened = MetricDB::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->restored_from_snapshot(), c.persists);
  if (c.zero_compdist) {
    EXPECT_EQ(reopened->build_stats().dist_computations, 0u)
        << c.index << " must restore without distance computations";
  }
  if (!c.persists) {
    // Rebuild-on-open recomputes exactly what Create computed.
    EXPECT_EQ(reopened->build_stats().dist_computations,
              built->build_stats().dist_computations);
  }

  // Footprints carry over exactly.
  EXPECT_EQ(reopened->index().memory_bytes(), built->index().memory_bytes());
  EXPECT_EQ(reopened->index().disk_bytes(), built->index().disk_bytes());

  // Bit-identical results and compdists, query by query.  Queries come
  // from the REOPENED dataset to prove the snapshot's own data serves.
  std::vector<ObjectView> queries2;
  for (ObjectId q = 0; q < 12; ++q) {
    queries2.push_back(reopened->dataset().view(q * 101 % data.size()));
  }
  auto range1 = reopened->Query(QueryRequest::RangeBatch(queries2, 650.0));
  auto knn1 = reopened->Query(QueryRequest::KnnBatch(queries2, 10));
  ASSERT_TRUE(range1.ok() && knn1.ok());
  EXPECT_EQ(range1->ids, range0->ids);
  EXPECT_EQ(range1->stats.dist_computations, range0->stats.dist_computations);
  ASSERT_EQ(knn1->neighbors.size(), knn0->neighbors.size());
  for (size_t i = 0; i < knn0->neighbors.size(); ++i) {
    ASSERT_EQ(knn1->neighbors[i].size(), knn0->neighbors[i].size());
    for (size_t j = 0; j < knn0->neighbors[i].size(); ++j) {
      EXPECT_EQ(knn1->neighbors[i][j].id, knn0->neighbors[i][j].id);
      EXPECT_EQ(knn1->neighbors[i][j].dist, knn0->neighbors[i][j].dist);
    }
  }
  EXPECT_EQ(knn1->stats.dist_computations, knn0->stats.dist_computations);

  // CI artifact hook: keep one snapshot around for upload when asked.
  if (const char* artifact = std::getenv("PMI_SNAPSHOT_ARTIFACT");
      artifact != nullptr && c.index == "LAESA") {
    EXPECT_TRUE(built->Save(artifact).ok());
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllPersistingIndexes, SnapshotRoundTripTest,
    ::testing::Values(Case{"LAESA", true, true},
                      Case{"EPT", true, true},
                      Case{"EPT*", true, true},
                      Case{"CPT", true, true},
                      Case{"MVPT", true, true},
                      Case{"VPT", true, true},
                      Case{"LinearScan", true, true},
                      // No SaveImpl: the snapshot degrades to
                      // rebuild-on-open and must still round-trip.
                      Case{"SPB-tree", false, false}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return SafeName(info.param.index);
    });

TEST(SnapshotRoundTripTest, StringDatasetRoundTrips) {
  Dataset dict = MakeWordsLike(900, /*seed=*/6);
  auto built = MetricDB::Create(
      MetricDBConfig().WithMetric("edit").WithIndex("MVPT").WithPivots(3),
      dict);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::string path = TempPath("words_mvpt");
  ASSERT_TRUE(built->Save(path).ok());
  auto reopened = MetricDB::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->build_stats().dist_computations, 0u);
  ObjectView q = dict.view(42);
  auto a = built->RangeQuery(q, 2.0);
  auto b = reopened->RangeQuery(q, 2.0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ids, b->ids);
  EXPECT_EQ(a->stats.dist_computations, b->stats.dist_computations);
  std::remove(path.c_str());
}

TEST(SnapshotRoundTripTest, UpdatesSurviveTheRoundTrip) {
  // Persistence must capture the CURRENT state, not the built state:
  // remove some objects, snapshot, and check the hole is still there.
  Dataset data = MakeLaLike(500, /*seed=*/23);
  auto built = MetricDB::Create(
      MetricDBConfig().WithMetric("L2").WithIndex("LinearScan"), data);
  ASSERT_TRUE(built.ok());
  // Facade keeps update surface minimal; drive the owned index directly.
  const_cast<MetricIndex&>(built->index()).Remove(7);
  const std::string path = TempPath("after_update");
  ASSERT_TRUE(built->Save(path).ok());
  auto reopened = MetricDB::Open(path);
  ASSERT_TRUE(reopened.ok());
  auto res = reopened->RangeQuery(reopened->dataset().view(7), 0.0);
  ASSERT_TRUE(res.ok());
  for (ObjectId id : res->ids[0]) EXPECT_NE(id, 7u);
  std::remove(path.c_str());
}

// -- damage -------------------------------------------------------------------

class SnapshotDamageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dataset data = MakeLaLike(300, /*seed=*/9);
    auto db = MetricDB::Create(
        MetricDBConfig().WithMetric("L2").WithIndex("LAESA").WithPivots(3),
        data);
    ASSERT_TRUE(db.ok());
    path_ = TempPath("damage");
    ASSERT_TRUE(db->Save(path_).ok());
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void Rewrite(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), bytes.size());
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotDamageTest, MissingFileIsNotFound) {
  auto r = MetricDB::Open(TempPath("does_not_exist"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotDamageTest, WrongMagicIsInvalidArgument) {
  std::string bad = bytes_;
  bad[0] = 'X';
  Rewrite(bad);
  auto r = MetricDB::Open(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotDamageTest, VersionBumpIsFailedPrecondition) {
  std::string bad = bytes_;
  bad[8] = char(kSnapshotFormatVersion + 1);  // u32 version, little-endian
  Rewrite(bad);
  auto r = MetricDB::Open(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotDamageTest, EveryTruncationErrorsOutCleanly) {
  // Chop the file at many lengths; every prefix must produce an error --
  // no crash, no bogus success.
  for (size_t len : {0ul, 5ul, 12ul, 19ul, 20ul, 64ul, bytes_.size() / 2,
                     bytes_.size() - 9, bytes_.size() - 1}) {
    Rewrite(bytes_.substr(0, len));
    auto r = MetricDB::Open(path_);
    EXPECT_FALSE(r.ok()) << "truncation at " << len << " bytes";
  }
}

TEST_F(SnapshotDamageTest, EmptyFileIsError) {
  Rewrite("");
  auto r = MetricDB::Open(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotDamageTest, DirectoryIsError) {
  // TempDir itself: a directory is never a snapshot, and must be refused
  // by the I/O layer, not discovered via a garbage read.
  auto r = MetricDB::Open(::testing::TempDir());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
}

TEST_F(SnapshotDamageTest, EveryEighthBoundaryTruncationErrorsOutCleanly) {
  for (int k = 0; k < 8; ++k) {
    size_t len = bytes_.size() * k / 8;
    Rewrite(bytes_.substr(0, len));
    auto r = MetricDB::Open(path_);
    EXPECT_FALSE(r.ok()) << "truncation at " << k << "/8 = " << len
                         << " bytes";
  }
}

TEST(SnapshotDurableDamageTest, ValidCheckpointWithGarbageWalTailRecovers) {
  // The WAL reader's contract: a checkpoint that is intact plus a log
  // holding pure garbage recovers to exactly the checkpoint state (the
  // garbage reads as a torn tail of zero valid records).
  const std::string dir = ::testing::TempDir() + "pmi_garbage_wal";
  Dataset data = MakeLaLike(300, /*seed=*/9);
  auto db = MetricDB::CreateDurable(
      MetricDBConfig().WithMetric("L2").WithIndex("LAESA").WithPivots(3),
      data, dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db->Remove(5).ok());
  ASSERT_TRUE(db->Remove(6).ok());
  const uint64_t seq = db->last_sequence();
  // Both removes are fsynced; release the LOCK so the reopen below is
  // the crashed-process recovery it models, not a second live opener.
  ASSERT_TRUE(db->Close().ok());

  // Overwrite the live WAL with garbage that never checksums.
  {
    std::ofstream out(dir + "/wal-000001.log",
                      std::ios::binary | std::ios::trunc);
    for (int i = 0; i < 64; ++i) out.put(char(0xa5));
  }
  auto reopened = MetricDB::OpenDurable(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // The two removes lived only in the clobbered WAL: recovery lands on
  // the checkpoint prefix (seq 0), not on an error and not past it.
  EXPECT_EQ(seq, 2u);
  EXPECT_EQ(reopened->last_sequence(), 0u);
  EXPECT_TRUE(reopened->alive(5));
  EXPECT_TRUE(reopened->alive(6));
}

TEST_F(SnapshotDamageTest, PayloadBitFlipIsDataLoss) {
  for (size_t pos : {21ul, bytes_.size() / 2, bytes_.size() - 9}) {
    std::string bad = bytes_;
    bad[pos] = char(bad[pos] ^ 0x5a);
    Rewrite(bad);
    auto r = MetricDB::Open(path_);
    ASSERT_FALSE(r.ok()) << "bit flip at " << pos;
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  }
}

TEST(SnapshotDamageUnitTest, AbsurdPivotTableHeaderIsDataLossNotBadAlloc) {
  // A crafted (checksum-valid) snapshot can claim any table geometry;
  // implausible width/rows must be rejected before any allocation.
  struct Geometry {
    uint32_t width;
    uint64_t rows;
  };
  for (Geometry g : {Geometry{0xFFFFFFFFu, 0}, Geometry{0xFFFFFFFFu, 1},
                     Geometry{50000, 1u << 20}}) {
    ByteSink sink;
    sink.PutU8(0);
    sink.PutU32(g.width);
    sink.PutU64(g.rows);
    ByteSource source(sink.bytes());
    PivotTable table;
    Status s = DeserializePivotTable(&source, &table);
    ASSERT_FALSE(s.ok()) << "width=" << g.width << " rows=" << g.rows;
    EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  }
}

TEST(SnapshotEmptyTableTest, DrainedPivotTableRoundTrips) {
  // A table whose every row was removed serializes as width > 0,
  // rows == 0 with nothing after it; the plausibility guard must not
  // mistake that for a truncated payload (it once did, which made a
  // checkpoint of a fully drained shard unreadable).
  PivotTable table;
  table.Reset(4, /*per_row=*/false);
  ByteSink sink;
  SerializePivotTable(table, &sink);
  ByteSource source(sink.bytes());
  PivotTable restored;
  Status s = DeserializePivotTable(&source, &restored);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(restored.width(), 4u);
  EXPECT_EQ(restored.rows(), 0u);
  EXPECT_EQ(source.remaining(), 0u);
}

TEST(SnapshotEmptyTableTest, FullyDrainedDatabaseReopensFromSnapshot) {
  // End-to-end: remove every object, snapshot, reopen.  The restored
  // instance must know the objects are dead and resurrect them on
  // insert.
  Dataset data = MakeLaLike(64, /*seed=*/7);
  auto built = MetricDB::Create(MetricDBConfig()
                                    .WithMetric("L2")
                                    .WithIndex("LAESA")
                                    .WithPivots(4),
                                data);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  for (ObjectId id = 0; id < data.size(); ++id) {
    ASSERT_TRUE(built->Remove(id).ok());
  }
  const std::string path = TempPath("drained");
  ASSERT_TRUE(built->Save(path).ok());
  auto reopened = MetricDB::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  for (ObjectId id = 0; id < data.size(); ++id) {
    EXPECT_FALSE(reopened->alive(id)) << "id " << id;
  }
  auto knn = reopened->Query(QueryRequest::KnnBatch({data.view(0)}, 3));
  ASSERT_TRUE(knn.ok()) << knn.status().ToString();
  EXPECT_TRUE(knn->neighbors[0].empty());
  ASSERT_TRUE(reopened->Insert(5).ok());
  EXPECT_TRUE(reopened->alive(5));
  std::remove(path.c_str());
}

TEST_F(SnapshotDamageTest, TrailingGarbageIsDataLoss) {
  Rewrite(bytes_ + "extra");
  auto r = MetricDB::Open(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace pmi
