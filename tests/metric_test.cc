// Metric axiom property tests (Section 2.1): symmetry, non-negativity,
// identity, and the triangle inequality, for every metric the paper uses,
// plus hand-checked distance values.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/core/metric.h"
#include "src/core/rng.h"
#include "src/data/generators.h"

namespace pmi {
namespace {

struct MetricCase {
  const char* name;
  BenchDatasetId id;
};

class MetricAxiomsTest : public ::testing::TestWithParam<MetricCase> {};

TEST_P(MetricAxiomsTest, SatisfiesMetricAxioms) {
  BenchDataset bd = MakeBenchDataset(GetParam().id, 200, /*seed=*/99);
  const Metric& m = *bd.metric;
  const Dataset& data = bd.data;
  Rng rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    ObjectId a = rng() % data.size();
    ObjectId b = rng() % data.size();
    ObjectId c = rng() % data.size();
    double dab = m.Distance(data.view(a), data.view(b));
    double dba = m.Distance(data.view(b), data.view(a));
    double dac = m.Distance(data.view(a), data.view(c));
    double dcb = m.Distance(data.view(c), data.view(b));
    EXPECT_DOUBLE_EQ(dab, dba) << "symmetry violated";
    EXPECT_GE(dab, 0.0) << "non-negativity violated";
    EXPECT_LE(dab, dac + dcb + 1e-9) << "triangle inequality violated";
    EXPECT_LE(dab, m.max_distance() * (1 + 1e-12)) << "max_distance too low";
    if (a == b) {
      EXPECT_DOUBLE_EQ(dab, 0.0);
    }
  }
}

TEST_P(MetricAxiomsTest, IdentityOfIndiscernibles) {
  BenchDataset bd = MakeBenchDataset(GetParam().id, 50, /*seed=*/7);
  for (ObjectId i = 0; i < bd.data.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        bd.metric->Distance(bd.data.view(i), bd.data.view(i)), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, MetricAxiomsTest,
    ::testing::Values(MetricCase{"L2_LA", BenchDatasetId::kLa},
                      MetricCase{"Edit_Words", BenchDatasetId::kWords},
                      MetricCase{"L1_Color", BenchDatasetId::kColor},
                      MetricCase{"Linf_Synthetic",
                                 BenchDatasetId::kSynthetic}),
    [](const auto& info) { return info.param.name; });

TEST(L2MetricTest, KnownValues) {
  L2Metric m(2, 10.0);
  float a[2] = {0, 0}, b[2] = {3, 4};
  EXPECT_DOUBLE_EQ(
      m.Distance(ObjectView::FromVector(a, 2), ObjectView::FromVector(b, 2)),
      5.0);
  EXPECT_DOUBLE_EQ(m.max_distance(), 10.0 * std::sqrt(2.0));
  EXPECT_FALSE(m.discrete());
}

TEST(L1MetricTest, KnownValues) {
  L1Metric m(3, 10.0);
  float a[3] = {1, 2, 3}, b[3] = {4, 0, 3};
  EXPECT_DOUBLE_EQ(
      m.Distance(ObjectView::FromVector(a, 3), ObjectView::FromVector(b, 3)),
      5.0);
  EXPECT_DOUBLE_EQ(m.max_distance(), 30.0);
}

TEST(LInfMetricTest, KnownValuesAndDiscreteness) {
  LInfMetric m(3, 100.0, /*discrete_domain=*/true);
  float a[3] = {1, 50, 3}, b[3] = {4, 0, 3};
  EXPECT_DOUBLE_EQ(
      m.Distance(ObjectView::FromVector(a, 3), ObjectView::FromVector(b, 3)),
      50.0);
  EXPECT_TRUE(m.discrete());
  EXPECT_DOUBLE_EQ(m.max_distance(), 100.0);
}

TEST(EditDistanceTest, PaperExample) {
  // Section 2.1: MRQ("defoliate", 1) over the example word set.
  EditDistanceMetric m(34);
  auto d = [&](std::string_view a, std::string_view b) {
    return m.Distance(ObjectView::FromString(a), ObjectView::FromString(b));
  };
  EXPECT_DOUBLE_EQ(d("defoliate", "defoliates"), 1.0);
  EXPECT_DOUBLE_EQ(d("defoliate", "defoliated"), 1.0);
  EXPECT_DOUBLE_EQ(d("defoliate", "defoliation"), 3.0);
  EXPECT_DOUBLE_EQ(d("defoliate", "defoliating"), 3.0);
  EXPECT_GT(d("defoliate", "citrate"), 3.0);
}

TEST(EditDistanceTest, EdgeCases) {
  EditDistanceMetric m(34);
  auto d = [&](std::string_view a, std::string_view b) {
    return m.Distance(ObjectView::FromString(a), ObjectView::FromString(b));
  };
  EXPECT_DOUBLE_EQ(d("", ""), 0.0);
  EXPECT_DOUBLE_EQ(d("", "abc"), 3.0);
  EXPECT_DOUBLE_EQ(d("abc", ""), 3.0);
  EXPECT_DOUBLE_EQ(d("kitten", "sitting"), 3.0);
  EXPECT_DOUBLE_EQ(d("flaw", "lawn"), 2.0);
  EXPECT_DOUBLE_EQ(d("a", "a"), 0.0);
}

TEST(DistanceComputerTest, CountsEveryCall) {
  L2Metric m(2, 10.0);
  PerfCounters counters;
  DistanceComputer dc(&m, &counters);
  float a[2] = {0, 0}, b[2] = {1, 1};
  ObjectView va = ObjectView::FromVector(a, 2);
  ObjectView vb = ObjectView::FromVector(b, 2);
  for (int i = 0; i < 17; ++i) dc(va, vb);
  EXPECT_EQ(counters.dist_computations, 17u);
  EXPECT_EQ(counters.page_accesses(), 0u);
}

}  // namespace
}  // namespace pmi
