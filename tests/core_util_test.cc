// Unit tests for the small core utilities: KnnHeap, Dataset, ObjectView,
// RNG sampling, and the OpStats accounting plumbing of MetricIndex.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/core/dataset.h"
#include "src/core/knn_heap.h"
#include "src/core/linear_scan.h"
#include "src/core/pivot_selection.h"
#include "src/core/rng.h"
#include "src/data/generators.h"

namespace pmi {
namespace {

TEST(KnnHeapTest, KeepsKSmallest) {
  KnnHeap heap(3);
  for (int i = 20; i >= 1; --i) heap.Push(i, double(i));
  std::vector<Neighbor> out;
  heap.TakeSorted(&out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].dist, 1.0);
  EXPECT_EQ(out[1].dist, 2.0);
  EXPECT_EQ(out[2].dist, 3.0);
}

TEST(KnnHeapTest, RadiusTightensAsHeapFills) {
  KnnHeap heap(2);
  EXPECT_TRUE(std::isinf(heap.radius()));
  heap.Push(1, 10.0);
  EXPECT_TRUE(std::isinf(heap.radius())) << "not full yet";
  heap.Push(2, 5.0);
  EXPECT_EQ(heap.radius(), 10.0);
  heap.Push(3, 1.0);
  EXPECT_EQ(heap.radius(), 5.0);
  heap.Push(4, 100.0);  // worse than radius: ignored
  EXPECT_EQ(heap.radius(), 5.0);
}

TEST(KnnHeapTest, SortedOutputBreaksTiesById) {
  KnnHeap heap(4);
  heap.Push(9, 1.0);
  heap.Push(3, 1.0);
  heap.Push(7, 1.0);
  heap.Push(1, 0.5);
  std::vector<Neighbor> out;
  heap.TakeSorted(&out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 3u);
  EXPECT_EQ(out[2].id, 7u);
  EXPECT_EQ(out[3].id, 9u);
}

TEST(DatasetTest, VectorRoundTrip) {
  Dataset d = Dataset::Vectors(3);
  float a[3] = {1.5f, -2.5f, 3.5f};
  ObjectId id = d.AddVector(a);
  ObjectView v = d.view(id);
  EXPECT_EQ(v.kind, ObjectKind::kVector);
  EXPECT_EQ(v.dim, 3u);
  EXPECT_EQ(v.vec[1], -2.5f);
  EXPECT_EQ(v.payload_bytes(), 12u);
  std::string buf;
  d.SerializeObject(id, &buf);
  ASSERT_EQ(buf.size(), 12u);
  std::vector<char> aligned(buf.begin(), buf.end());
  ObjectView back = d.DeserializeObject(aligned.data(), 12);
  EXPECT_TRUE(back.PayloadEquals(v));
}

TEST(DatasetTest, StringRoundTripIncludingEmpty) {
  Dataset d = Dataset::Strings();
  ObjectId e = d.AddString("");
  ObjectId w = d.AddString("hello");
  EXPECT_EQ(d.view(e).len, 0u);
  EXPECT_EQ(d.view(w).AsString(), "hello");
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.total_payload_bytes(), 5u);
  std::string buf;
  d.SerializeObject(w, &buf);
  EXPECT_EQ(buf, "hello");
}

TEST(DatasetTest, CrossDatasetCopy) {
  Dataset a = Dataset::Strings();
  a.AddString("alpha");
  Dataset b = Dataset::Strings();
  ObjectId id = b.Add(a.view(0));
  EXPECT_TRUE(b.view(id).PayloadEquals(a.view(0)));
}

TEST(RngTest, SampleDistinctProperties) {
  Rng rng(9);
  for (uint32_t n : {10u, 100u, 10000u}) {
    for (uint32_t count : {1u, 5u, n / 2, n, n + 10}) {
      std::vector<uint32_t> s = SampleDistinct(n, count, rng);
      EXPECT_EQ(s.size(), std::min(count, n));
      std::set<uint32_t> uniq(s.begin(), s.end());
      EXPECT_EQ(uniq.size(), s.size());
      for (uint32_t v : s) EXPECT_LT(v, n);
    }
  }
}

TEST(OpStatsTest, QueriesDoNotLeakAcrossMeasurements) {
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kLa, 400, 3);
  PivotSet pivots = SelectSharedPivots(bd.data, *bd.metric, 3);
  LinearScan index;
  index.Build(bd.data, *bd.metric, pivots);
  std::vector<ObjectId> out;
  OpStats first = index.RangeQuery(bd.data.view(0), 100.0, &out);
  OpStats second = index.RangeQuery(bd.data.view(1), 100.0, &out);
  // Both scans cost exactly n distance computations -- the second must
  // not include the first's counts.
  EXPECT_EQ(first.dist_computations, bd.data.size());
  EXPECT_EQ(second.dist_computations, bd.data.size());
  EXPECT_GE(first.seconds, 0.0);
}

TEST(OpStatsTest, AccumulationOperator) {
  OpStats a, b;
  a.dist_computations = 10;
  a.page_reads = 3;
  a.page_writes = 1;
  a.seconds = 0.5;
  b.dist_computations = 5;
  b.page_reads = 2;
  b.page_writes = 4;
  b.seconds = 0.25;
  a += b;
  EXPECT_EQ(a.dist_computations, 15u);
  EXPECT_EQ(a.page_accesses(), 10u);
  EXPECT_DOUBLE_EQ(a.seconds, 0.75);
}

TEST(GeneratorsTest, DomainsMatchThePaper) {
  Dataset la = MakeLaLike(2000, 1);
  ASSERT_EQ(la.dim(), 2u);
  for (ObjectId i = 0; i < la.size(); ++i) {
    for (uint32_t d = 0; d < 2; ++d) {
      EXPECT_GE(la.view(i).vec[d], 0.0f);
      EXPECT_LE(la.view(i).vec[d], 10000.0f);
    }
  }
  Dataset color = MakeColorLike(200, 1);
  ASSERT_EQ(color.dim(), 282u);
  for (ObjectId i = 0; i < color.size(); ++i) {
    for (uint32_t d = 0; d < 282; ++d) {
      EXPECT_GE(color.view(i).vec[d], -255.0f);
      EXPECT_LE(color.view(i).vec[d], 255.0f);
    }
  }
  Dataset words = MakeWordsLike(2000, 1);
  for (ObjectId i = 0; i < words.size(); ++i) {
    EXPECT_GE(words.view(i).len, 1u);
    EXPECT_LE(words.view(i).len, 34u);
  }
}

TEST(GeneratorsTest, SyntheticFollowsPaperRecipe) {
  Dataset s = MakeSyntheticPaper(1000, 1);
  ASSERT_EQ(s.dim(), 20u);
  for (ObjectId i = 0; i < s.size(); ++i) {
    for (uint32_t d = 0; d < 20; ++d) {
      float v = s.view(i).vec[d];
      EXPECT_EQ(v, std::floor(v)) << "values must be integers";
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 10000.0f);
    }
    // Dims 5..19 are convex combinations of dims 0..4, hence bounded by
    // the base dims' range.
    float base_max = 0;
    for (uint32_t d = 0; d < 5; ++d) {
      base_max = std::max(base_max, s.view(i).vec[d]);
    }
    for (uint32_t d = 5; d < 20; ++d) {
      EXPECT_LE(s.view(i).vec[d], base_max + 1);
    }
  }
}

TEST(GeneratorsTest, DeterministicPerSeedDistinctAcrossSeeds) {
  Dataset a = MakeWordsLike(100, 7);
  Dataset b = MakeWordsLike(100, 7);
  Dataset c = MakeWordsLike(100, 8);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal_ab = true, all_equal_ac = true;
  for (ObjectId i = 0; i < a.size(); ++i) {
    all_equal_ab &= a.view(i).PayloadEquals(b.view(i));
    all_equal_ac &= a.view(i).PayloadEquals(c.view(i));
  }
  EXPECT_TRUE(all_equal_ab);
  EXPECT_FALSE(all_equal_ac);
}

}  // namespace
}  // namespace pmi
