// Randomized differential stress harness: the cheap insurance that lets
// future PRs keep rewriting the query hot path aggressively.
//
// A seeded RNG generates one fixed script of ~2k interleaved operations
// (MRQ / MkNN / remove / insert over a Synthetic workload).  A LinearScan
// oracle replays the script once to record the expected answer and its
// brute-force compdists for every query op; every in-memory index of the
// registry then replays the identical script under each supported
// PMI_SIMD dispatch level x {1, 4} threads and must
//   - return exactly the oracle's MRQ result sets and MkNN distances,
//   - stay within the pruning compdist bound (oracle cost + a fixed
//     allowance for pivot mappings / tree-node pivots), and
//   - keep per-query compdists monotone in the radius (a larger search
//     region can only examine more objects -- the Lemma-1 pruning
//     direction), probed on a sample of queries.
// The op count scales with PMI_STRESS_OPS (default 2000); the CI stress
// job runs 5x under ASan.
//
// A smaller Words (edit distance) script covers the string metric's
// banded verification kernels under interleaved updates.

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/linear_scan.h"
#include "src/core/pivot_selection.h"
#include "src/core/simd.h"
#include "src/core/thread_pool.h"
#include "src/data/distribution.h"
#include "src/data/generators.h"
#include "src/harness/registry.h"
#include "src/harness/workload.h"

namespace pmi {
namespace {

constexpr uint64_t kScriptSeed = 20260729;
// Pivot mappings, EPT pools (m*l <= 64 here), and tree-node pivots all
// cost distance computations the brute-force oracle does not pay; at
// these cardinalities none of them exceeds this allowance.
constexpr uint64_t kCompdistAllowance = 256;

struct Op {
  enum Kind { kMrq, kKnn, kRemove, kInsert };
  Kind kind;
  uint32_t target = 0;  // query object id, or the update victim
  double r = 0;
  uint32_t k = 0;
};

struct Script {
  std::vector<Op> ops;
  uint32_t num_queries = 0;  // number of kMrq + kKnn ops
};

/// Generates the op mix.  The generator tracks liveness itself so every
/// remove targets a live object and every insert a removed one -- the
/// script is valid by construction and identical for every replayer.
Script MakeScript(uint32_t n, uint32_t num_ops,
                  const DistanceDistribution& distribution, uint64_t seed) {
  Script script;
  Rng rng(seed);
  std::vector<bool> live(n, true);
  std::vector<uint32_t> removed;
  uint32_t live_count = n;
  const double radii[] = {
      0.0,
      distribution.RadiusForSelectivity(0.002),
      distribution.RadiusForSelectivity(0.01),
      distribution.RadiusForSelectivity(0.05),
      distribution.RadiusForSelectivity(0.2),
  };
  const uint32_t ks[] = {1, 3, 10, 40};
  for (uint32_t i = 0; i < num_ops; ++i) {
    Op op;
    const uint32_t roll = rng() % 100;
    if (roll < 55) {
      op.kind = Op::kMrq;
      op.target = rng() % n;
      op.r = radii[rng() % (sizeof(radii) / sizeof(radii[0]))];
      ++script.num_queries;
    } else if (roll < 80) {
      op.kind = Op::kKnn;
      op.target = rng() % n;
      op.k = ks[rng() % (sizeof(ks) / sizeof(ks[0]))];
      ++script.num_queries;
    } else if (roll < 90 && live_count > n / 2) {
      op.kind = Op::kRemove;
      uint32_t victim = rng() % n;
      while (!live[victim]) victim = (victim + 1) % n;
      op.target = victim;
      live[victim] = false;
      removed.push_back(victim);
      --live_count;
    } else if (!removed.empty()) {
      op.kind = Op::kInsert;
      const uint32_t j = rng() % removed.size();
      op.target = removed[j];
      removed[j] = removed.back();
      removed.pop_back();
      live[op.target] = true;
      ++live_count;
    } else {  // nothing to insert yet: fall back to a query
      op.kind = Op::kMrq;
      op.target = rng() % n;
      op.r = radii[rng() % (sizeof(radii) / sizeof(radii[0]))];
      ++script.num_queries;
    }
    script.ops.push_back(op);
  }
  return script;
}

/// What the oracle saw for one query op.
struct Expected {
  std::vector<ObjectId> mrq;  // sorted; kMrq only
  std::vector<double> knn;    // ascending distances; kKnn only
  uint64_t compdists = 0;
};

std::vector<Expected> ReplayOracle(const Script& script, const Dataset& data,
                                   const Metric& metric,
                                   const PivotSet& pivots) {
  LinearScan oracle;
  oracle.Build(data, metric, pivots);
  std::vector<Expected> expected;
  expected.reserve(script.num_queries);
  for (const Op& op : script.ops) {
    switch (op.kind) {
      case Op::kMrq: {
        Expected e;
        e.compdists =
            oracle.RangeQuery(data.view(op.target), op.r, &e.mrq)
                .dist_computations;
        std::sort(e.mrq.begin(), e.mrq.end());
        expected.push_back(std::move(e));
        break;
      }
      case Op::kKnn: {
        Expected e;
        std::vector<Neighbor> nn;
        e.compdists = oracle.KnnQuery(data.view(op.target), op.k, &nn)
                          .dist_computations;
        for (const Neighbor& x : nn) e.knn.push_back(x.dist);
        expected.push_back(std::move(e));
        break;
      }
      case Op::kRemove:
        oracle.Remove(op.target);
        break;
      case Op::kInsert:
        oracle.Insert(op.target);
        break;
    }
  }
  return expected;
}

/// Replays (a prefix of) the script on a freshly built `index`, checking
/// every query op against the oracle record.
void ReplayAndCheck(MetricIndex* index, const Script& script,
                    const std::vector<Expected>& expected,
                    const Dataset& data, const Metric& metric,
                    const PivotSet& pivots, const std::string& config,
                    size_t max_ops = SIZE_MAX) {
  index->Build(data, metric, pivots);
  size_t qi = 0;
  size_t op_index = 0;
  for (const Op& op : script.ops) {
    if (op_index >= max_ops) break;
    SCOPED_TRACE(index->name() + " [" + config + "] op " +
                 std::to_string(op_index));
    switch (op.kind) {
      case Op::kMrq: {
        std::vector<ObjectId> got;
        OpStats s = index->RangeQuery(data.view(op.target), op.r, &got);
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, expected[qi].mrq);
        EXPECT_LE(s.dist_computations,
                  expected[qi].compdists + kCompdistAllowance);
        // Monotone compdist probe: widening the region can only examine
        // more objects.  Sampled -- three extra scans per probe.
        if (op_index % 64 == 0) {
          ObjectView q = data.view(op.target);
          uint64_t prev = s.dist_computations;
          for (double r2 : {op.r * 1.5 + 1.0, op.r * 2.25 + 2.0}) {
            std::vector<ObjectId> wider;
            uint64_t cd =
                index->RangeQuery(q, r2, &wider).dist_computations;
            EXPECT_GE(cd, prev) << "compdists shrank as r grew to " << r2;
            prev = cd;
          }
        }
        ++qi;
        break;
      }
      case Op::kKnn: {
        std::vector<Neighbor> nn;
        OpStats s = index->KnnQuery(data.view(op.target), op.k, &nn);
        ASSERT_EQ(nn.size(), expected[qi].knn.size());
        for (size_t j = 0; j < nn.size(); ++j) {
          // Distance ties make ids ambiguous; the sorted distance
          // profile must match the oracle exactly.
          EXPECT_EQ(nn[j].dist, expected[qi].knn[j]) << "rank " << j;
        }
        EXPECT_LE(s.dist_computations,
                  expected[qi].compdists + kCompdistAllowance);
        ++qi;
        break;
      }
      case Op::kRemove:
        index->Remove(op.target);
        break;
      case Op::kInsert:
        index->Insert(op.target);
        break;
    }
    if (::testing::Test::HasFatalFailure()) return;
    ++op_index;
  }
  if (max_ops >= script.ops.size()) {
    EXPECT_EQ(qi, expected.size());
  }
}

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> out;
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kNeon,
                          SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (SimdLevelSupported(level)) out.push_back(level);
  }
  return out;
}

/// Replay budget per index.  Every in-memory index replays the full
/// script (FQA included -- its quantized-window scan binary-searches to
/// each distance value actually present instead of probing every
/// integer in the window, so stress radii no longer blow it up); the
/// PivotTable-backed table indexes -- the only query paths that touch
/// the SIMD dispatch or the thread pool -- additionally sweep every
/// PMI_SIMD level x {1, 4} threads.
struct ReplayPlan {
  std::string name;
  bool sweep_configs = false;
  size_t max_ops = SIZE_MAX;
};

std::vector<ReplayPlan> InMemoryReplayPlans(size_t) {
  std::vector<ReplayPlan> plans;
  for (const IndexSpec& spec : AllIndexSpecs()) {
    if (spec.uses_disk) continue;
    ReplayPlan plan;
    plan.name = spec.name;
    plan.sweep_configs = spec.name == "LAESA" || spec.name == "EPT" ||
                         spec.name == "EPT*";
    plans.push_back(std::move(plan));
  }
  return plans;
}

TEST(DifferentialStressTest, InMemoryIndexesMatchOracleAcrossConfigs) {
  const char* inherited_env = getenv("PMI_SIMD");
  const std::string inherited = inherited_env ? inherited_env : "";
  const bool had_inherited = inherited_env != nullptr;

  const uint32_t kN = 400;
  const uint32_t num_ops = std::max(EnvU32("PMI_STRESS_OPS", 2000), 64u);
  ThreadPool::SetGlobalThreads(1);
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, kN, 2026);
  PivotSelectionOptions po;
  po.sample_size = 300;
  po.pair_sample = 150;
  PivotSet pivots = SelectSharedPivots(bd.data, *bd.metric, 4, po);
  DistanceDistribution distribution =
      EstimateDistribution(bd.data, *bd.metric, 3000, 3);
  const Script script = MakeScript(kN, num_ops, distribution, kScriptSeed);
  const std::vector<Expected> expected =
      ReplayOracle(script, bd.data, *bd.metric, pivots);

  IndexOptions opts;
  opts.seed = 7;
  for (const ReplayPlan& plan : InMemoryReplayPlans(num_ops)) {
    if (!plan.sweep_configs) {
      auto index = MakeIndex(plan.name, opts);
      ReplayAndCheck(index.get(), script, expected, bd.data, *bd.metric,
                     pivots, "default", plan.max_ops);
      if (::testing::Test::HasFatalFailure()) break;
      continue;
    }
    for (SimdLevel level : SupportedLevels()) {
      ASSERT_EQ(setenv("PMI_SIMD", SimdLevelName(level), 1), 0);
      ReinitSimdDispatch();
      for (unsigned threads : {1u, 4u}) {
        ThreadPool::SetGlobalThreads(threads);
        const std::string config = std::string(SimdLevelName(level)) + "/" +
                                   std::to_string(threads) + "t";
        auto index = MakeIndex(plan.name, opts);
        ReplayAndCheck(index.get(), script, expected, bd.data, *bd.metric,
                       pivots, config, plan.max_ops);
      }
    }
    ThreadPool::SetGlobalThreads(1);
    if (had_inherited) {
      setenv("PMI_SIMD", inherited.c_str(), 1);
    } else {
      unsetenv("PMI_SIMD");
    }
    ReinitSimdDispatch();
    if (::testing::Test::HasFatalFailure()) break;
  }
  ThreadPool::SetGlobalThreads(1);
  if (had_inherited) {
    setenv("PMI_SIMD", inherited.c_str(), 1);
  } else {
    unsetenv("PMI_SIMD");
  }
  ReinitSimdDispatch();
}

// -- disk indexes through the buffer pool ------------------------------------
//
// The pool contract under test: physical pool size is invisible to
// everything the paper measures.  Each disk index replays the script
// once per pool configuration -- the default private pool (the pre-pool
// serial baseline shape), a 1-page pool (maximum eviction pressure), a
// tiny pool, and an effectively unbounded one -- and every replay must
// produce bit-identical results, compdists, and logical PA.  CI widens
// the sweep through PMI_CACHE_BYTES.

/// Everything a disk-index replay produces, recorded per op for exact
/// cross-configuration comparison.
struct DiskTrace {
  std::vector<std::vector<ObjectId>> mrq;   // sorted result sets
  std::vector<std::vector<double>> knn;     // ascending distance profiles
  std::vector<uint64_t> compdists;          // query ops only
  std::vector<uint64_t> logical_pa;         // every op, updates included
  uint64_t build_pa = 0;

  bool operator==(const DiskTrace&) const = default;
};

DiskTrace ReplayDisk(MetricIndex* index, const Script& script,
                     const Dataset& data, const Metric& metric,
                     const PivotSet& pivots) {
  DiskTrace t;
  t.build_pa = index->Build(data, metric, pivots).page_accesses();
  for (const Op& op : script.ops) {
    switch (op.kind) {
      case Op::kMrq: {
        std::vector<ObjectId> got;
        OpStats s = index->RangeQuery(data.view(op.target), op.r, &got);
        std::sort(got.begin(), got.end());
        t.mrq.push_back(std::move(got));
        t.compdists.push_back(s.dist_computations);
        t.logical_pa.push_back(s.page_accesses());
        break;
      }
      case Op::kKnn: {
        std::vector<Neighbor> nn;
        OpStats s = index->KnnQuery(data.view(op.target), op.k, &nn);
        std::vector<double> profile;
        for (const Neighbor& x : nn) profile.push_back(x.dist);
        t.knn.push_back(std::move(profile));
        t.compdists.push_back(s.dist_computations);
        t.logical_pa.push_back(s.page_accesses());
        break;
      }
      case Op::kRemove:
        t.logical_pa.push_back(index->Remove(op.target).page_accesses());
        break;
      case Op::kInsert:
        t.logical_pa.push_back(index->Insert(op.target).page_accesses());
        break;
    }
  }
  return t;
}

/// The reference replay must itself match the oracle.
void CheckTraceAgainstOracle(const DiskTrace& t, const Script& script,
                             const std::vector<Expected>& expected) {
  size_t qi = 0, mi = 0, ki = 0;
  for (const Op& op : script.ops) {
    if (op.kind == Op::kMrq) {
      SCOPED_TRACE("mrq " + std::to_string(mi));
      EXPECT_EQ(t.mrq[mi], expected[qi].mrq);
      ++mi;
      ++qi;
    } else if (op.kind == Op::kKnn) {
      SCOPED_TRACE("knn " + std::to_string(ki));
      ASSERT_EQ(t.knn[ki].size(), expected[qi].knn.size());
      for (size_t j = 0; j < t.knn[ki].size(); ++j) {
        EXPECT_EQ(t.knn[ki][j], expected[qi].knn[j]) << "rank " << j;
      }
      ++ki;
      ++qi;
    }
  }
  EXPECT_EQ(qi, expected.size());
}

TEST(DifferentialStressTest, DiskIndexesAreInvariantUnderPoolSize) {
  const uint32_t kN = 300;
  const uint32_t num_ops =
      std::max(EnvU32("PMI_STRESS_OPS", 2000), 64u) / 4;
  ThreadPool::SetGlobalThreads(1);
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kSynthetic, kN, 4242);
  PivotSelectionOptions po;
  po.sample_size = 200;
  po.pair_sample = 120;
  PivotSet pivots = SelectSharedPivots(bd.data, *bd.metric, 4, po);
  DistanceDistribution distribution =
      EstimateDistribution(bd.data, *bd.metric, 2500, 3);
  const Script script =
      MakeScript(kN, num_ops, distribution, kScriptSeed ^ 0xD15C);
  const std::vector<Expected> expected =
      ReplayOracle(script, bd.data, *bd.metric, pivots);

  IndexOptions base;
  base.seed = 7;
  // Physical pool sizes (bytes): 1 page, tiny, effectively unbounded.
  std::vector<size_t> pool_bytes = {base.page_size, 4 * size_t{base.page_size},
                                    size_t{1} << 26};
  const uint32_t env_bytes = EnvU32("PMI_CACHE_BYTES", 0);
  if (env_bytes != 0 &&
      std::find(pool_bytes.begin(), pool_bytes.end(), size_t{env_bytes}) ==
          pool_bytes.end()) {
    pool_bytes.push_back(env_bytes);
  }

  for (const char* name : {"CPT", "SPB-tree", "M-index*"}) {
    SCOPED_TRACE(name);
    // Reference: the default private pool (sized cache_bytes), serial --
    // the exact shape of the pre-pool code path.
    auto ref_index = MakeIndex(name, base);
    const DiskTrace reference =
        ReplayDisk(ref_index.get(), script, bd.data, *bd.metric, pivots);
    CheckTraceAgainstOracle(reference, script, expected);
    if (::testing::Test::HasFatalFailure()) break;
    EXPECT_GT(reference.build_pa, 0u) << "disk index must touch pages";

    for (size_t bytes : pool_bytes) {
      SCOPED_TRACE("pool_bytes=" + std::to_string(bytes));
      IndexOptions opts = base;
      opts.buffer_pool = std::make_shared<BufferPool>(opts.page_size, bytes);
      auto index = MakeIndex(name, opts);
      const DiskTrace got =
          ReplayDisk(index.get(), script, bd.data, *bd.metric, pivots);
      // Results, compdists, and the paper's logical PA: bit-identical
      // at every physical pool size, down to a single frame.
      EXPECT_EQ(got, reference);
    }
  }
  ThreadPool::SetGlobalThreads(0);
}

// String workload: the banded edit-distance verification kernels under
// interleaved updates, on the table + tree indexes that matter most.
TEST(DifferentialStressTest, WordsWorkloadMatchesOracle) {
  const uint32_t kN = 200;
  const uint32_t num_ops =
      std::max(EnvU32("PMI_STRESS_OPS", 2000), 64u) / 4;
  ThreadPool::SetGlobalThreads(1);
  BenchDataset bd = MakeBenchDataset(BenchDatasetId::kWords, kN, 77);
  PivotSelectionOptions po;
  po.sample_size = 150;
  po.pair_sample = 100;
  PivotSet pivots = SelectSharedPivots(bd.data, *bd.metric, 4, po);
  DistanceDistribution distribution =
      EstimateDistribution(bd.data, *bd.metric, 2000, 3);
  const Script script =
      MakeScript(kN, num_ops, distribution, kScriptSeed ^ 0x5757);
  const std::vector<Expected> expected =
      ReplayOracle(script, bd.data, *bd.metric, pivots);

  IndexOptions opts;
  opts.seed = 7;
  for (const char* name : {"LAESA", "EPT*", "MVPT", "BKT"}) {
    auto index = MakeIndex(name, opts);
    ReplayAndCheck(index.get(), script, expected, bd.data, *bd.metric,
                   pivots, "words");
    if (::testing::Test::HasFatalFailure()) break;
  }
  ThreadPool::SetGlobalThreads(0);
}

}  // namespace
}  // namespace pmi
