// Structural white-box tests for index internals that the black-box
// conformance suite cannot see: EPT row invariants, FQA sort order,
// M-index cluster-tree invariants, SPB-tree key stability, CPT leaf
// pointers, and EPT group-size estimation.

#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "src/core/pivot_selection.h"
#include "src/data/generators.h"
#include "src/external/spb_tree.h"
#include "src/harness/registry.h"
#include "src/tables/ept.h"
#include "src/tables/psa.h"

namespace pmi {
namespace {

struct World {
  explicit World(BenchDatasetId id, uint32_t n)
      : bd(MakeBenchDataset(id, n, 21)) {
    PivotSelectionOptions po;
    po.sample_size = std::min(n, 1000u);
    pivots = SelectSharedPivots(bd.data, *bd.metric, 5, po);
  }
  BenchDataset bd;
  PivotSet pivots;
};

TEST(EptInternalsTest, GroupSizeEstimationStaysInRange) {
  World w(BenchDatasetId::kSynthetic, 3000);
  IndexOptions opts;
  opts.ept_group_size = 0;  // force Equation (1) estimation
  Ept ept(Ept::Variant::kClassic, opts);
  ept.Build(w.bd.data, *w.bd.metric, w.pivots);
  EXPECT_GE(ept.group_size(), 2u);
  EXPECT_LE(ept.group_size(), 16u);
}

TEST(EptInternalsTest, ExplicitGroupSizeIsHonored) {
  World w(BenchDatasetId::kLa, 2000);
  IndexOptions opts;
  opts.ept_group_size = 7;
  Ept ept(Ept::Variant::kClassic, opts);
  ept.Build(w.bd.data, *w.bd.metric, w.pivots);
  EXPECT_EQ(ept.group_size(), 7u);
}

TEST(PsaSelectorTest, StoredDistancesAreExact) {
  // The (pivot, distance) pairs PSA emits must be the true distances to
  // the chosen pool pivots -- Lemma 1 soundness depends on it.
  World w(BenchDatasetId::kColor, 600);
  PerfCounters c;
  DistanceComputer dist(w.bd.metric.get(), &c);
  PsaSelector psa;
  psa.Build(w.bd.data, dist, 40, 32, 9);
  uint32_t pidx[4];
  double pdist[4];
  for (ObjectId id = 0; id < 50; ++id) {
    psa.SelectForObject(w.bd.data.view(id), dist, 4, pidx, pdist);
    std::set<uint32_t> uniq(pidx, pidx + 4);
    EXPECT_EQ(uniq.size(), 4u) << "PSA must pick distinct pivots";
    for (int j = 0; j < 4; ++j) {
      ASSERT_LT(pidx[j], psa.pool().size());
      double truth = w.bd.metric->Distance(w.bd.data.view(id),
                                           psa.pool().pivot(pidx[j]));
      EXPECT_DOUBLE_EQ(pdist[j], truth);
    }
  }
}

TEST(PsaSelectorTest, FirstPivotMaximizesTheObjective) {
  // Greedy round 1 must pick the candidate with the highest mean
  // |d(o,c) - d(s,c)| / d(o,s); verify against a brute-force evaluation.
  World w(BenchDatasetId::kLa, 500);
  PerfCounters c;
  DistanceComputer dist(w.bd.metric.get(), &c);
  PsaSelector psa;
  psa.Build(w.bd.data, dist, 20, 16, 9);
  // Rebuild the sample the same way the selector does to cross-check.
  Rng rng(9 ^ 0x97a);
  std::vector<ObjectId> sample_ids =
      SelectPivotsRandom(w.bd.data, 16, rng);
  uint32_t pidx[1];
  double pdist[1];
  ObjectView o = w.bd.data.view(123);
  psa.SelectForObject(o, dist, 1, pidx, pdist);
  double best_score = -1;
  uint32_t best_c = 0;
  for (uint32_t cand = 0; cand < psa.pool().size(); ++cand) {
    double score = 0;
    for (ObjectId s : sample_ids) {
      double dos = w.bd.metric->Distance(o, w.bd.data.view(s));
      if (dos <= 0) continue;
      double doc = w.bd.metric->Distance(o, psa.pool().pivot(cand));
      double dsc = w.bd.metric->Distance(w.bd.data.view(s),
                                         psa.pool().pivot(cand));
      score += std::fabs(doc - dsc) / dos;
    }
    if (score > best_score) {
      best_score = score;
      best_c = cand;
    }
  }
  EXPECT_EQ(pidx[0], best_c);
}

TEST(SpbInternalsTest, KeysAreStableAcrossRemoveInsert) {
  // Remove + re-insert must regenerate the identical Hilbert key, or the
  // B+-tree would accumulate ghosts.  Exercised via repeated cycles.
  World w(BenchDatasetId::kWords, 2000);
  SpbTree spb;
  spb.Build(w.bd.data, *w.bd.metric, w.pivots);
  size_t disk_before = spb.disk_bytes();
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (ObjectId id = 0; id < 100; ++id) {
      spb.Remove(id);
      spb.Insert(id);
    }
  }
  std::vector<ObjectId> out;
  spb.RangeQuery(w.bd.data.view(0), w.bd.metric->max_distance(), &out);
  EXPECT_EQ(out.size(), w.bd.data.size()) << "ghost or lost entries";
  // RAF grows (appends), but boundedly: 300 re-inserted word records.
  EXPECT_LT(spb.disk_bytes(), disk_before + 400 * 1024);
}

TEST(MIndexInternalsTest, ClusterSplitPreservesResults) {
  // Force splits with a tiny maxnum and verify nothing is lost.
  World w(BenchDatasetId::kSynthetic, 3000);
  IndexOptions opts;
  opts.mindex_maxnum = 64;  // far below the paper's 1600: many splits
  auto star = MakeIndex("M-index*", opts);
  star->Build(w.bd.data, *w.bd.metric, w.pivots);
  std::vector<ObjectId> out;
  star->RangeQuery(w.bd.data.view(1), w.bd.metric->max_distance() * 1.01,
                   &out);
  EXPECT_EQ(out.size(), w.bd.data.size());
  // Dynamic splits on insert: remove + re-insert everything.
  for (ObjectId id = 0; id < 500; ++id) {
    star->Remove(id);
    star->Insert(id);
  }
  star->RangeQuery(w.bd.data.view(1), w.bd.metric->max_distance() * 1.01,
                   &out);
  EXPECT_EQ(out.size(), w.bd.data.size());
}

TEST(TreeInternalsTest, LeafCapacityShapesTheTreeNotTheAnswers) {
  // Sweeping leaf capacity changes memory/compdists but never results.
  World w(BenchDatasetId::kWords, 2500);
  std::vector<Neighbor> reference;
  for (uint32_t cap : {4u, 16u, 64u, 256u}) {
    IndexOptions opts;
    opts.tree_leaf_capacity = cap;
    auto mvpt = MakeIndex("MVPT", opts);
    mvpt->Build(w.bd.data, *w.bd.metric, w.pivots);
    std::vector<Neighbor> out;
    mvpt->KnnQuery(w.bd.data.view(9), 15, &out);
    if (reference.empty()) {
      reference = out;
    } else {
      ASSERT_EQ(out.size(), reference.size());
      for (size_t i = 0; i < out.size(); ++i) {
        EXPECT_DOUBLE_EQ(out[i].dist, reference[i].dist) << "cap=" << cap;
      }
    }
  }
}

TEST(TreeInternalsTest, FanoutShapesBktNotTheAnswers) {
  World w(BenchDatasetId::kSynthetic, 2500);
  std::vector<Neighbor> reference;
  for (uint32_t fanout : {4u, 16u, 64u}) {
    IndexOptions opts;
    opts.tree_fanout = fanout;
    auto bkt = MakeIndex("BKT", opts);
    bkt->Build(w.bd.data, *w.bd.metric, w.pivots);
    std::vector<Neighbor> out;
    bkt->KnnQuery(w.bd.data.view(3), 10, &out);
    if (reference.empty()) {
      reference = out;
    } else {
      ASSERT_EQ(out.size(), reference.size());
      for (size_t i = 0; i < out.size(); ++i) {
        EXPECT_DOUBLE_EQ(out[i].dist, reference[i].dist);
      }
    }
  }
}

}  // namespace
}  // namespace pmi
