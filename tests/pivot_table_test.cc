// Equivalence tests for the columnar PivotTable: every scan must make
// byte-for-byte the same pruning decisions as the naive row-major
// Lemma-1 loop it replaced (PrunedByPivots over an |P|-strided row), for
// both the shared-pivot and the per-row-pivot (EPT) layouts, across
// block-boundary row counts, radii, and swap-removals.

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/filtering.h"
#include "src/core/pivot_table.h"
#include "src/core/rng.h"

namespace pmi {
namespace {

// Reference model: the pre-columnar row-major table and scan loops.
struct RowMajorTable {
  uint32_t l = 0;
  std::vector<double> dist;   // rows x l
  std::vector<uint32_t> idx;  // rows x l (per-row-pivot only)

  size_t rows() const { return l == 0 ? 0 : dist.size() / l; }

  std::vector<uint32_t> RangeScan(const std::vector<double>& phi_q,
                                  double r) const {
    std::vector<uint32_t> out;
    for (size_t i = 0; i < rows(); ++i) {
      if (!PrunedByPivots(&dist[i * l], phi_q.data(), l, r)) {
        out.push_back(static_cast<uint32_t>(i));
      }
    }
    return out;
  }

  std::vector<uint32_t> RangeScanIndirect(const std::vector<double>& d_qp,
                                          double r) const {
    std::vector<uint32_t> out;
    for (size_t i = 0; i < rows(); ++i) {
      bool pruned = false;
      for (uint32_t j = 0; j < l && !pruned; ++j) {
        pruned = std::fabs(dist[i * l + j] - d_qp[idx[i * l + j]]) > r;
      }
      if (!pruned) out.push_back(static_cast<uint32_t>(i));
    }
    return out;
  }
};

struct Tables {
  RowMajorTable ref;
  PivotTable columnar;
};

Tables MakeShared(size_t rows, uint32_t l, uint64_t seed) {
  Tables t;
  t.ref.l = l;
  t.columnar.Reset(l);
  Rng rng(seed);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  std::vector<double> row(l);
  for (size_t i = 0; i < rows; ++i) {
    for (uint32_t p = 0; p < l; ++p) row[p] = u(rng);
    t.ref.dist.insert(t.ref.dist.end(), row.begin(), row.end());
    t.columnar.AppendRow(row.data());
  }
  return t;
}

Tables MakeIndirect(size_t rows, uint32_t l, uint32_t pool, uint64_t seed) {
  Tables t;
  t.ref.l = l;
  t.columnar.Reset(l, /*per_row_pivots=*/true);
  Rng rng(seed);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  std::vector<double> rd(l);
  std::vector<uint32_t> ri(l);
  for (size_t i = 0; i < rows; ++i) {
    for (uint32_t j = 0; j < l; ++j) {
      rd[j] = u(rng);
      ri[j] = rng() % pool;
    }
    t.ref.dist.insert(t.ref.dist.end(), rd.begin(), rd.end());
    t.ref.idx.insert(t.ref.idx.end(), ri.begin(), ri.end());
    t.columnar.AppendRow(rd.data(), ri.data());
  }
  return t;
}

// Row counts probing the 256-row block machinery: empty, single, partial
// block, exact block, one over, multiple blocks with ragged tail.
const size_t kRowCounts[] = {0, 1, 100, 255, 256, 257, 1000, 2048};

TEST(PivotTableTest, SharedScanMatchesRowMajorReference) {
  for (size_t rows : kRowCounts) {
    for (uint32_t l : {1u, 3u, 5u, 8u}) {
      Tables t = MakeShared(rows, l, 42 + rows + l);
      Rng rng(7);
      std::uniform_real_distribution<double> u(0.0, 100.0);
      for (double r : {0.0, 3.0, 10.0, 40.0, 80.0, 120.0}) {
        std::vector<double> phi_q(l);
        for (auto& x : phi_q) x = u(rng);
        std::vector<uint32_t> got;
        t.columnar.RangeScan(phi_q.data(), r, &got);
        EXPECT_EQ(got, t.ref.RangeScan(phi_q, r))
            << "rows=" << rows << " l=" << l << " r=" << r;
      }
    }
  }
}

TEST(PivotTableTest, IndirectScanMatchesRowMajorReference) {
  const uint32_t kPool = 24;
  for (size_t rows : kRowCounts) {
    for (uint32_t l : {1u, 4u}) {
      Tables t = MakeIndirect(rows, l, kPool, 99 + rows + l);
      Rng rng(13);
      std::uniform_real_distribution<double> u(0.0, 100.0);
      for (double r : {0.0, 5.0, 25.0, 75.0}) {
        std::vector<double> d_qp(kPool);
        for (auto& x : d_qp) x = u(rng);
        std::vector<uint32_t> got;
        t.columnar.RangeScanIndirect(d_qp.data(), kPool, r, &got);
        EXPECT_EQ(got, t.ref.RangeScanIndirect(d_qp, r))
            << "rows=" << rows << " l=" << l << " r=" << r;
      }
    }
  }
}

TEST(PivotTableTest, ScanDynamicWithFixedRadiusMatchesRangeScan) {
  Tables t = MakeShared(1500, 4, 5);
  std::vector<double> phi_q = {50, 20, 80, 44};
  for (double r : {1.0, 15.0, 60.0}) {
    std::vector<uint32_t> fixed, dynamic;
    t.columnar.RangeScan(phi_q.data(), r, &fixed);
    t.columnar.ScanDynamic(
        phi_q.data(), [&] { return r; },
        [&](size_t row) { dynamic.push_back(static_cast<uint32_t>(row)); });
    EXPECT_EQ(dynamic, fixed) << "r=" << r;
  }
}

TEST(PivotTableTest, ScanDynamicShrinkingRadiusYieldsSubset) {
  // A radius that tightens mid-scan (the MkNNQ pattern) must only ever
  // remove rows relative to the loosest radius, and keep everything the
  // tightest radius keeps.
  Tables t = MakeShared(3000, 3, 17);
  std::vector<double> phi_q = {30, 60, 10};
  const double r_start = 50, r_end = 10;
  std::vector<uint32_t> loose, tight, shrinking;
  t.columnar.RangeScan(phi_q.data(), r_start, &loose);
  t.columnar.RangeScan(phi_q.data(), r_end, &tight);
  size_t seen = 0;
  t.columnar.ScanDynamic(
      phi_q.data(),
      [&] { return seen < 1000 ? r_start : r_end; },
      [&](size_t row) {
        seen = row;
        shrinking.push_back(static_cast<uint32_t>(row));
      });
  for (uint32_t row : tight) {
    if (row >= 1280) {  // strictly past every loose-radius block
      EXPECT_TRUE(std::find(shrinking.begin(), shrinking.end(), row) !=
                  shrinking.end());
    }
  }
  for (uint32_t row : shrinking) {
    EXPECT_TRUE(std::find(loose.begin(), loose.end(), row) != loose.end());
  }
}

TEST(PivotTableTest, RemoveRowSwapMovesLastRow) {
  Tables t = MakeIndirect(10, 2, 8, 3);
  const double last_d0 = t.columnar.distance(9, 0);
  const double last_d1 = t.columnar.distance(9, 1);
  const uint32_t last_i0 = t.columnar.pivot_index(9, 0);
  const uint32_t last_i1 = t.columnar.pivot_index(9, 1);
  t.columnar.RemoveRowSwap(4);
  ASSERT_EQ(t.columnar.rows(), 9u);
  EXPECT_EQ(t.columnar.distance(4, 0), last_d0);
  EXPECT_EQ(t.columnar.distance(4, 1), last_d1);
  EXPECT_EQ(t.columnar.pivot_index(4, 0), last_i0);
  EXPECT_EQ(t.columnar.pivot_index(4, 1), last_i1);
  // Removing the final row needs no swap and must not read freed memory.
  t.columnar.RemoveRowSwap(8);
  EXPECT_EQ(t.columnar.rows(), 8u);
}

TEST(PivotTableTest, RemovalKeepsScansConsistent) {
  Tables t = MakeShared(600, 3, 11);
  Rng rng(1);
  // Mirror removals in the reference (same swap-with-last order).
  auto remove_both = [&](size_t row) {
    const size_t last = t.ref.rows() - 1;
    for (uint32_t p = 0; p < 3; ++p) {
      t.ref.dist[row * 3 + p] = t.ref.dist[last * 3 + p];
    }
    t.ref.dist.resize(last * 3);
    t.columnar.RemoveRowSwap(row);
  };
  for (int i = 0; i < 300; ++i) remove_both(rng() % t.columnar.rows());
  std::vector<double> phi_q = {10, 90, 50};
  for (double r : {5.0, 30.0, 70.0}) {
    std::vector<uint32_t> got;
    t.columnar.RangeScan(phi_q.data(), r, &got);
    EXPECT_EQ(got, t.ref.RangeScan(phi_q, r)) << "r=" << r;
  }
}

TEST(PivotTableTest, InfiniteAndNegativeRadii) {
  Tables t = MakeShared(400, 2, 23);
  std::vector<double> phi_q = {1, 2};
  std::vector<uint32_t> got;
  t.columnar.RangeScan(phi_q.data(),
                       std::numeric_limits<double>::infinity(), &got);
  EXPECT_EQ(got.size(), 400u);  // nothing prunes at r = inf
  got.clear();
  // KnnHeap::radius() is -inf for k = 0: everything must prune.
  t.columnar.RangeScan(phi_q.data(),
                       -std::numeric_limits<double>::infinity(), &got);
  EXPECT_TRUE(got.empty());
}

TEST(PivotTableTest, ZeroWidthTableNeverPrunes) {
  PivotTable table;
  table.Reset(0);
  for (int i = 0; i < 300; ++i) table.AppendRow(nullptr);
  std::vector<uint32_t> got;
  table.RangeScan(nullptr, 1.0, &got);
  EXPECT_EQ(got.size(), 300u);
}

TEST(PivotTableTest, MemoryAccounting) {
  // Each cell carries its double plus the derived f32 filter mirror
  // (plus the pool-index column in per-row-pivot mode).
  Tables shared = MakeShared(100, 4, 2);
  EXPECT_EQ(shared.columnar.memory_bytes(),
            100u * 4 * (sizeof(double) + sizeof(float)));
  Tables indirect = MakeIndirect(100, 4, 8, 2);
  EXPECT_EQ(indirect.columnar.memory_bytes(),
            100u * 4 * (sizeof(double) + sizeof(float) + sizeof(uint32_t)));
}

// Every mutator must keep the derived f32 filter columns cell-coherent
// with the double columns: fcol[row] == FilterValue(col[row]) always.
void ExpectFilterCoherent(const PivotTable& t) {
  for (uint32_t p = 0; p < t.width(); ++p) {
    for (size_t row = 0; row < t.rows(); ++row) {
      EXPECT_EQ(t.filter_value(row, p), FilterValue(t.distance(row, p)))
          << "slot=" << p << " row=" << row;
    }
  }
}

TEST(PivotTableTest, FilterColumnsStayCoherentUnderMutation) {
  PivotTable t;
  t.Reset(3);
  // ResizeRows + SetRow (the parallel-build path).
  t.ResizeRows(600);
  Rng rng(5);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  std::vector<double> row(3);
  for (size_t i = 0; i < 600; ++i) {
    for (auto& x : row) x = u(rng);
    t.SetRow(i, row.data());
  }
  ExpectFilterCoherent(t);
  // AppendRow, including values past the float range and denormals.
  const double specials[][3] = {{1e300, -1e300, 5e-324},
                               {1e-40, 3.4028235e38, 0.0}};
  for (const auto& s : specials) t.AppendRow(s);
  ExpectFilterCoherent(t);
  // SetCell (the snapshot-load path).
  t.SetCell(3, 1, 7e205);
  t.SetCell(0, 0, 1e-320);
  ExpectFilterCoherent(t);
  // RemoveRowSwap keeps the moved row's mirror.
  for (int i = 0; i < 250; ++i) t.RemoveRowSwap(rng() % t.rows());
  ExpectFilterCoherent(t);
  // Shrinking ResizeRows resets to zeroed coherent state.
  t.ResizeRows(10);
  ExpectFilterCoherent(t);

  // Per-row-pivot layout through the same mutations.
  PivotTable ti;
  ti.Reset(2, /*per_row_pivots=*/true);
  double rd[2];
  uint32_t ri[2];
  for (size_t i = 0; i < 300; ++i) {
    rd[0] = u(rng);
    rd[1] = i % 7 == 0 ? 1e39 : u(rng);
    ri[0] = rng() % 8;
    ri[1] = rng() % 8;
    ti.AppendRow(rd, ri);
  }
  ExpectFilterCoherent(ti);
  for (int i = 0; i < 120; ++i) ti.RemoveRowSwap(rng() % ti.rows());
  ExpectFilterCoherent(ti);
}

}  // namespace
}  // namespace pmi
