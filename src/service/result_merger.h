// Scatter/gather result merging for the sharded service.
//
// Each shard answers the full query batch against its own slice of the
// data with shard-LOCAL ids.  The merger translates them back to global
// ids through the router and combines per query:
//
//   * MRQ: the union of per-shard result sets, canonicalized to
//     ascending global id.
//   * MkNN: a k-way merge of the per-shard neighbor lists.  Each list is
//     sorted by (distance, local id); because the router assigns local
//     ids in ascending global-id order, that equals (distance, global
//     id) after translation, so a cursor-heap merge with the same
//     tie-break reproduces the unsharded oracle's exact sequence.
//
// Stats are summed across shards (the logical cost of the scattered
// query); `seconds` is overwritten by the service with the gather wall
// clock.

#ifndef PMI_SERVICE_RESULT_MERGER_H_
#define PMI_SERVICE_RESULT_MERGER_H_

#include <vector>

#include "src/api/metric_db.h"
#include "src/service/shard_router.h"

namespace pmi {

/// Merges `per_shard[s]` (the answer of shard s, local ids, one entry
/// per router shard) into one global-result QueryResult for `request`.
QueryResult MergeShardResults(const ShardRouter& router,
                              const QueryRequest& request,
                              std::vector<QueryResult> per_shard);

}  // namespace pmi

#endif  // PMI_SERVICE_RESULT_MERGER_H_
