// ShardSupervisor -- the self-healing loop of the sharded service.
//
// A MetricDB shard that hits a write-path I/O fault goes sticky
// read-only (write_status() non-OK) and, before this supervisor
// existed, stayed that way forever.  The supervisor closes the loop:
// a background thread health-checks every shard (sticky write status
// plus admission-queue depth as a load signal), quarantines a faulted
// shard, and recovers it IN PLACE from its own WAL/checkpoint chain --
// close the faulted instance (releasing the directory LOCK), run
// MetricDB::OpenDurable on the shard directory, and atomically hot-swap
// the fresh instance into the shard slot.  Healthy shards are never
// touched, so their in-flight ReadViews stay valid; the victim keeps
// serving reads from a stale pinned view captured at quarantine time
// (MetricDB ReadViews co-own their version and outlive the facade).
//
// Shard lifecycle (see also README "Self-healing & retries"):
//
//        +-----------+  write fault   +---------------+
//        |  healthy  | -------------> |  quarantined  | <---+
//        +-----------+                +---------------+     | attempt
//              ^                        | backoff due       | failed
//              | OpenDurable ok         v                   |
//              |                      +---------------+ ----+
//              +--------------------- |  recovering   |
//                                     +---------------+
//                                       | attempts >= N (circuit breaker)
//                                       v
//                                 +------------------+
//                                 | pinned read-only |  (manual
//                                 +------------------+   ResetShard)
//
// Recovery attempts run under capped exponential backoff with
// deterministic seeded jitter (retry.h Backoff): schedules are exactly
// reproducible for a fixed SupervisorOptions::seed.  After
// max_recovery_attempts consecutive failures the circuit breaker pins
// the shard read-only: reads keep flowing from the stale view, writes
// return typed kUnavailable naming the shard and "manual reset
// required", and only ShardedService::ResetShard re-arms recovery.

#ifndef PMI_SERVICE_SUPERVISOR_H_
#define PMI_SERVICE_SUPERVISOR_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "src/core/status.h"

namespace pmi {

class ShardedService;

/// Where a shard sits in the self-healing lifecycle.
enum class ShardHealth : uint8_t {
  kHealthy = 0,        ///< serving reads and writes from a live MetricDB
  kQuarantined,        ///< fault detected; reads from stale view, writes
                       ///< typed kUnavailable; next recovery scheduled
  kRecovering,         ///< recovery attempt in flight (old instance
                       ///< closed, OpenDurable running)
  kPinnedReadOnly,     ///< circuit breaker tripped; ResetShard required
};

const char* ShardHealthName(ShardHealth h);

/// Supervisor knobs.  The defaults suit tests and the chaos harness
/// (millisecond-scale convergence); a real deployment would stretch the
/// poll interval and backoff by a few orders of magnitude.
struct SupervisorOptions {
  /// Health-check cadence (the loop also wakes early when nudged by a
  /// write path that just observed a fault).
  double poll_interval_ms = 2.0;
  /// First retry delay after a failed recovery attempt.
  double initial_backoff_ms = 1.0;
  /// Backoff cap; delays are jittered in [0.75, 1.25) of nominal.
  double max_backoff_ms = 100.0;
  double backoff_multiplier = 2.0;
  /// Circuit breaker: consecutive failed recoveries before the shard is
  /// pinned read-only awaiting ShardedService::ResetShard.
  uint32_t max_recovery_attempts = 8;
  /// Seed for the deterministic backoff jitter (per shard the stream is
  /// seeded with seed ^ shard id, so schedules never sync up).
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// Per-shard health snapshot (ShardedService::health()).
struct ShardHealthReport {
  ShardHealth health = ShardHealth::kHealthy;
  /// The sticky fault that caused quarantine, or the last failed
  /// recovery attempt's status.  OK while healthy.
  Status last_error;
  /// Failed recovery attempts since the current fault was detected.
  uint32_t attempts = 0;
  /// Advertised delay until the next recovery attempt; < 0 once the
  /// circuit breaker has tripped (manual reset required).
  double retry_after_ms = 0;
};

class ShardSupervisor {
 public:
  struct Stats {
    uint64_t health_checks = 0;    ///< full sweeps of every shard
    uint64_t faults_detected = 0;  ///< healthy -> quarantined edges
    uint64_t recoveries = 0;       ///< successful hot-swaps
    uint64_t failed_attempts = 0;  ///< OpenDurable attempts that failed
    uint64_t breaker_trips = 0;    ///< quarantined -> pinned edges
    double last_recovery_ms = 0;   ///< fault detection -> healthy swap
    uint32_t peak_queue_depth = 0; ///< admission depth high-water seen
  };

  /// `service` owns this supervisor and must outlive it; Start() spawns
  /// the loop, Stop() joins it (idempotent, called by the destructor
  /// and by ShardedService::Close BEFORE shards are closed, so a
  /// recovery attempt never races shutdown).
  ShardSupervisor(ShardedService* service, const SupervisorOptions& opts);
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  void Start();
  void Stop();

  /// Wakes the loop immediately -- called by a write path that just saw
  /// a shard fault so quarantine does not wait out the poll interval.
  void Nudge();

  Stats stats() const;
  const SupervisorOptions& options() const { return opts_; }

 private:
  void Loop();
  /// One health sweep over every shard; performs at most one state
  /// transition per shard per sweep.
  void PollOnce();

  ShardedService* service_;  // borrowed; outlives the supervisor
  SupervisorOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  uint64_t nudges_ = 0;  // wakeup generation counter
  std::thread thread_;
  Stats stats_;
};

}  // namespace pmi

#endif  // PMI_SERVICE_SUPERVISOR_H_
