#include "src/service/admission.h"

#include <algorithm>
#include <utility>

namespace pmi {

AdmissionQueue::AdmissionQueue(uint32_t workers, uint32_t capacity)
    : capacity_(std::max(capacity, 1u)) {
  workers_.reserve(std::max(workers, 1u));
  for (uint32_t i = 0; i < std::max(workers, 1u); ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionQueue::~AdmissionQueue() { Shutdown(); }

bool AdmissionQueue::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= capacity_) {
      ++stats_.rejected;
      return false;
    }
    queue_.push_back(std::move(task));
    ++stats_.accepted;
    stats_.depth = static_cast<uint32_t>(queue_.size());
    stats_.peak_depth = std::max(stats_.peak_depth, stats_.depth);
  }
  cv_.notify_one();
  return true;
}

void AdmissionQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

AdmissionQueue::Stats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AdmissionQueue::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-before-exit: accepted tasks run even during shutdown
      // (synchronous submitters are blocked on their completion).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      stats_.depth = static_cast<uint32_t>(queue_.size());
      ++stats_.in_flight;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --stats_.in_flight;
      ++stats_.executed;
    }
  }
}

}  // namespace pmi
