// ShardedService -- the multi-writer scaling layer over MetricDB.
//
// One logical metric database, hash-partitioned by object id across N
// independent MetricDB shards (ShardRouter decides placement).  Each
// shard has its own single writer, its own epoch-versioned published
// versions, and -- in durable mode -- its own WAL/checkpoint directory,
// so N shards give N concurrent writer streams where one MetricDB gives
// one.
//
// Request path: every Query/Apply is admitted through a bounded queue +
// worker pool (src/service/admission.h).  A full queue is typed
// backpressure -- kResourceExhausted, never unbounded queueing -- and a
// per-request deadline turns stragglers into typed kDeadlineExceeded.
// The deadline budget is propagated INTO per-shard work: queries are
// executed in bounded chunks with the budget re-checked between chunks
// (chunking is bit-identical by the batch split-invariance guarantee),
// and Apply re-checks before each shard's sub-commit, so a request
// cannot overrun its deadline inside a slow shard.
//
// Reads scatter/gather: the worker pins a ReadView per shard (lock-free
// epoch pin), runs the block-major batch engine inside each shard, and
// merges -- union for MRQ, a k-way merge with (distance, id) tie-break
// for MkNN -- so results are bit-identical to an unsharded MetricDB
// holding the same data (see result_merger.h for why).
//
// Self-healing: each shard lives in a hot-swappable slot
// (shared_ptr<MetricDB> + ShardHealth).  When a write fault makes a
// shard sticky read-only, the ShardSupervisor (supervisor.h)
// quarantines it -- reads continue from a stale pinned view, writes
// return typed kUnavailable carrying the shard id and a retry-after
// hint -- then recovers it in place from its own WAL/checkpoint chain
// and swaps the fresh MetricDB into the slot.  Healthy shards and any
// in-flight ReadViews are untouched.  Enable with
// ServiceOptions::self_heal on a durable service.
//
// Consistency model: per-shard sequences.  A shard is internally
// consistent (its ReadView is one published version); across shards a
// gather observes each shard at whatever version its pin caught --
// there is no global sequence and no cross-shard atomicity.  Apply
// routes each op to its owning shard and commits per shard: a batch
// touching several shards is atomic WITHIN each shard, and ApplyResult
// reports one Status per shard so a single read-only shard (WAL fault)
// is a typed partial failure while healthy shards keep accepting both
// reads and writes.

#ifndef PMI_SERVICE_SHARDED_SERVICE_H_
#define PMI_SERVICE_SHARDED_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/api/metric_db.h"
#include "src/service/admission.h"
#include "src/service/backoff.h"
#include "src/service/shard_router.h"
#include "src/service/supervisor.h"

namespace pmi {

/// Service shape: shard count plus admission knobs.
struct ServiceOptions {
  /// Independent MetricDB shards (>= 1).  Every shard must own at least
  /// one object, so num_shards cannot exceed the dataset size.
  uint32_t num_shards = 4;
  /// Admission worker threads draining the request queue (>= 1).
  uint32_t workers = 4;
  /// Bounded request queue capacity (>= 1); a submit beyond it returns
  /// kResourceExhausted.
  uint32_t max_queue = 64;
  /// Default per-request deadline in milliseconds; negative = none.
  double default_deadline_ms = -1;
  /// Durable services only: run a ShardSupervisor that quarantines and
  /// recovers write-faulted shards in place (supervisor.h).
  bool self_heal = false;
  SupervisorOptions supervisor;
};

/// Per-request overrides.
struct RequestOptions {
  /// Deadline in milliseconds from submission.  Unset = the service
  /// default; >= 0 = hard deadline (0 is already expired -- useful for
  /// deterministic timeout tests); negative = no deadline.
  std::optional<double> deadline_ms;
  /// Per-shard sequence fences for Apply (ignored by Query).  When
  /// entry s is set, shard s's sub-batch commits only if the shard's
  /// last_sequence() still equals the fence; a mismatch is a typed
  /// SequenceFenceError and applies nothing to that shard.  Empty (the
  /// default) = no fences.  This is how retry.h makes retried batches
  /// idempotent.
  std::vector<std::optional<uint64_t>> sequence_fences;
};

/// Outcome of a routed update batch: one Status per shard.  Shards the
/// batch did not touch report OK.  Commit is atomic per shard, not
/// across shards -- a non-OK entry means that shard rejected (or could
/// not log) ITS sub-batch while other entries committed normally.
struct ApplyResult {
  std::vector<Status> shard_status;

  bool all_ok() const {
    for (const Status& s : shard_status) {
      if (!s.ok()) return false;
    }
    return true;
  }
  /// First non-OK shard status, or OK when every shard committed.
  Status Collapse() const {
    for (const Status& s : shard_status) {
      if (!s.ok()) return s;
    }
    return OkStatus();
  }
};

/// The typed error a quarantined / recovering / pinned shard returns
/// for writes (and for reads only when no stale view is available):
/// kUnavailable carrying the shard id and a retry-after hint.
/// retry_after_ms < 0 marks the pinned-read-only terminal state.
Status ShardUnavailableError(uint32_t shard, double retry_after_ms,
                             const std::string& detail);

class ShardedService {
 public:
  /// Request-layer counters: admission queue stats plus the number of
  /// requests that expired in queue (kDeadlineExceeded).
  struct ServiceStats {
    AdmissionQueue::Stats admission;
    uint64_t deadline_expired = 0;
  };

  /// Builds an in-memory sharded service: partitions `data` by id with
  /// ShardRouter, resolves the metric parameter ONCE from the full
  /// dataset (so every shard -- and FQA's quantization -- matches an
  /// unsharded oracle exactly), then MetricDB::Create()s each shard.
  static StatusOr<std::unique_ptr<ShardedService>> Create(
      const MetricDBConfig& config, Dataset data,
      const ServiceOptions& sopts = {});

  /// Create() plus a durability home: `dir` gets a small SERVICE meta
  /// file (shard count + object count, enough to rebuild the router)
  /// and one `shard-NNN/` durable MetricDB directory per shard, each
  /// with its own WAL and checkpoints.
  static StatusOr<std::unique_ptr<ShardedService>> CreateDurable(
      const MetricDBConfig& config, Dataset data, const std::string& dir,
      const ServiceOptions& sopts = {}, const DurabilityOptions& dopts = {});

  /// Crash recovery: reads the SERVICE meta, rebuilds the deterministic
  /// router, and MetricDB::OpenDurable()s every shard -- each shard
  /// recovers independently to its own acknowledged prefix.
  /// sopts.num_shards is ignored (the meta file decides).
  static StatusOr<std::unique_ptr<ShardedService>> OpenDurable(
      const std::string& dir, const ServiceOptions& sopts = {},
      const DurabilityOptions& dopts = {});

  /// Shuts the service down: stops the supervisor, refuses new
  /// requests, drains the admission queue, joins the workers, closes
  /// every shard.  Idempotent; returns the first shard Close error.
  Status Close();

  ~ShardedService();
  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Answers `request` through admission + scatter/gather.  Blocks the
  /// calling thread until the request completes (or is refused).
  /// Errors: kResourceExhausted (queue full), kDeadlineExceeded,
  /// kFailedPrecondition (closed), kUnavailable (a shard is under
  /// recovery with no stale view), plus anything a shard query returns.
  /// Safe from any number of client threads.
  StatusOr<QueryResult> Query(const QueryRequest& request,
                              const RequestOptions& opts = {}) const;

  /// Routes `ops` to their owning shards and group-commits one
  /// sub-batch per shard (see ApplyResult for the atomicity contract).
  /// The outer StatusOr rejects the whole batch untouched:
  /// kInvalidArgument (id out of range), kResourceExhausted,
  /// kDeadlineExceeded, kFailedPrecondition (closed).  Per-shard
  /// statuses: kUnavailable while the supervisor has the shard
  /// (quarantined/recovering/pinned -- message carries shard id +
  /// retry-after), kDeadlineExceeded when the budget expired before
  /// that shard's dispatch (nothing applied there), SequenceFenceError
  /// on a stale fence, or the shard's own commit error.
  StatusOr<ApplyResult> Apply(const std::vector<UpdateOp>& ops,
                              const RequestOptions& opts = {});

  /// Single-op conveniences; collapse the per-shard result.
  Status Insert(ObjectId id);
  Status Remove(ObjectId id);

  /// Durable services only: checkpoints every shard; first error wins.
  Status Checkpoint();

  /// A consistent per-shard snapshot bundle: one pinned ReadView per
  /// shard, taken in shard order.  Queries through it bypass admission
  /// (direct read path) and answer against exactly these versions; the
  /// view may outlive the service.  kFailedPrecondition when a shard's
  /// index does not support versioned reads or the service is closed.
  class ReadView {
   public:
    /// Per-shard pinned sequences (the service's consistency token).
    std::vector<uint64_t> sequences() const;

    /// Liveness of global `id` at its shard's pinned version.
    bool alive(ObjectId id) const;

    /// Scatter/gather against the pinned versions -- same merge (and
    /// same oracle equivalence) as ShardedService::Query.
    StatusOr<QueryResult> Query(const QueryRequest& request) const;

   private:
    friend class ShardedService;
    ReadView(std::shared_ptr<const ShardRouter> router,
             std::vector<MetricDB::ReadView> shards)
        : router_(std::move(router)), shards_(std::move(shards)) {}

    std::shared_ptr<const ShardRouter> router_;
    std::vector<MetricDB::ReadView> shards_;
  };

  StatusOr<ReadView> GetReadView() const;

  // -- self-healing --------------------------------------------------------

  /// Per-shard health snapshot (healthy / quarantined / recovering /
  /// pinned-read-only), in shard order.
  std::vector<ShardHealthReport> health() const;

  /// Manual circuit-breaker reset: re-arms recovery on a pinned (or
  /// quarantined) shard -- attempts and backoff restart from zero and
  /// the supervisor retries immediately.  kFailedPrecondition when the
  /// shard is healthy or the service has no supervisor; kInvalidArgument
  /// for a bad shard id.
  Status ResetShard(uint32_t shard);

  /// The supervisor, when self_heal is on (else nullptr).  Borrowed.
  const ShardSupervisor* supervisor() const { return supervisor_.get(); }

  // -- introspection -------------------------------------------------------

  uint32_t num_shards() const { return router_->num_shards(); }
  const ShardRouter& router() const { return *router_; }
  const ServiceOptions& options() const { return sopts_; }
  /// The effective per-shard config (metric param already resolved).
  const MetricDBConfig& config() const;

  /// Writer-side views, like MetricDB::last_sequence()/alive(): exact
  /// only when no Apply is in flight (e.g. after joining clients).
  /// During recovery a shard answers from its stale quarantine view.
  bool alive(ObjectId id) const;
  std::vector<uint64_t> sequences() const;
  /// Per-shard write availability: OK iff the shard is healthy AND its
  /// MetricDB write_status() is OK; a supervised shard reports its
  /// typed kUnavailable while quarantined/recovering/pinned.
  std::vector<Status> write_statuses() const;

  /// Objects owned per shard (router view -- placement, not liveness).
  std::vector<uint32_t> shard_sizes() const;

  ServiceStats stats() const;

 private:
  friend class ShardSupervisor;

  using Deadline = std::optional<std::chrono::steady_clock::time_point>;

  /// A hot-swappable shard: the live MetricDB (shared so in-flight
  /// requests keep their instance across a swap), its health state, and
  /// the stale pinned view that serves reads while the instance is
  /// closed for recovery.  The slot mutex guards only the fields --
  /// shard work (Apply/Query) runs on a copied shared_ptr outside it.
  struct ShardSlot {
    mutable std::mutex mu;
    std::shared_ptr<MetricDB> db;
    ShardHealth health = ShardHealth::kHealthy;
    std::optional<MetricDB::ReadView> stale_view;
    Status last_error;
    uint32_t attempts = 0;
    /// Advertised delay until the next recovery attempt (< 0: pinned).
    double retry_after_ms = 0;
    std::chrono::steady_clock::time_point next_attempt{};
    std::chrono::steady_clock::time_point fault_detected_at{};
    std::unique_ptr<Backoff> backoff;  // armed at quarantine time
  };

  ShardedService() = default;

  static StatusOr<std::unique_ptr<ShardedService>> Build(
      const MetricDBConfig& config, Dataset data, const ServiceOptions& sopts,
      const std::string& dir, const DurabilityOptions& dopts, bool durable);

  Deadline ResolveDeadline(const RequestOptions& opts) const;
  static bool Expired(const Deadline& d) {
    return d.has_value() && std::chrono::steady_clock::now() >= *d;
  }

  /// Runs `fn` through the admission queue and blocks for its result.
  /// `fn` runs on a worker unless the queue refuses.  T is the
  /// StatusOr result type.
  template <typename T>
  T Submit(const Deadline& deadline, std::function<T()> fn) const;

  StatusOr<QueryResult> ExecuteQuery(const QueryRequest& request,
                                     const Deadline& deadline) const;
  StatusOr<ApplyResult> ExecuteApply(const std::vector<UpdateOp>& ops,
                                     const RequestOptions& opts,
                                     const Deadline& deadline);

  /// Snapshot of a slot for one request (copied under the slot mutex).
  struct SlotView {
    std::shared_ptr<MetricDB> db;
    ShardHealth health = ShardHealth::kHealthy;
    std::optional<MetricDB::ReadView> stale_view;
    double retry_after_ms = 0;
  };
  SlotView SnapshotSlot(uint32_t shard) const;

  /// Directory of shard `s` (durable services).
  std::string ShardDir(uint32_t s) const;

  ServiceOptions sopts_;
  MetricDBConfig shard_config_;  // metric param resolved at build time
  std::shared_ptr<const ShardRouter> router_;
  std::vector<std::unique_ptr<ShardSlot>> slots_;
  std::unique_ptr<AdmissionQueue> queue_;
  std::unique_ptr<ShardSupervisor> supervisor_;
  std::atomic<bool> closed_{false};
  mutable std::atomic<uint64_t> deadline_expired_{0};

  // Durable services only.
  bool durable_ = false;
  std::string dir_;
  DurabilityOptions dopts_;  // env_ kept in sync below
  Env* env_ = nullptr;       // borrowed; outlives the service
};

}  // namespace pmi

#endif  // PMI_SERVICE_SHARDED_SERVICE_H_
