// ShardedService -- the multi-writer scaling layer over MetricDB.
//
// One logical metric database, hash-partitioned by object id across N
// independent MetricDB shards (ShardRouter decides placement).  Each
// shard has its own single writer, its own epoch-versioned published
// versions, and -- in durable mode -- its own WAL/checkpoint directory,
// so N shards give N concurrent writer streams where one MetricDB gives
// one.
//
// Request path: every Query/Apply is admitted through a bounded queue +
// worker pool (src/service/admission.h).  A full queue is typed
// backpressure -- kResourceExhausted, never unbounded queueing -- and a
// per-request deadline turns stragglers into typed kDeadlineExceeded
// (checked at dequeue and between shard dispatches; a shard query
// already executing runs to completion).
//
// Reads scatter/gather: the worker pins a ReadView per shard (lock-free
// epoch pin), runs the block-major batch engine inside each shard, and
// merges -- union for MRQ, a k-way merge with (distance, id) tie-break
// for MkNN -- so results are bit-identical to an unsharded MetricDB
// holding the same data (see result_merger.h for why).
//
// Consistency model: per-shard sequences.  A shard is internally
// consistent (its ReadView is one published version); across shards a
// gather observes each shard at whatever version its pin caught --
// there is no global sequence and no cross-shard atomicity.  Apply
// routes each op to its owning shard and commits per shard: a batch
// touching several shards is atomic WITHIN each shard, and ApplyResult
// reports one Status per shard so a single read-only shard (WAL fault)
// is a typed partial failure while healthy shards keep accepting both
// reads and writes.

#ifndef PMI_SERVICE_SHARDED_SERVICE_H_
#define PMI_SERVICE_SHARDED_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/api/metric_db.h"
#include "src/service/admission.h"
#include "src/service/shard_router.h"

namespace pmi {

/// Service shape: shard count plus admission knobs.
struct ServiceOptions {
  /// Independent MetricDB shards (>= 1).  Every shard must own at least
  /// one object, so num_shards cannot exceed the dataset size.
  uint32_t num_shards = 4;
  /// Admission worker threads draining the request queue (>= 1).
  uint32_t workers = 4;
  /// Bounded request queue capacity (>= 1); a submit beyond it returns
  /// kResourceExhausted.
  uint32_t max_queue = 64;
  /// Default per-request deadline in milliseconds; negative = none.
  double default_deadline_ms = -1;
};

/// Per-request overrides.
struct RequestOptions {
  /// Deadline in milliseconds from submission.  Unset = the service
  /// default; >= 0 = hard deadline (0 is already expired -- useful for
  /// deterministic timeout tests); negative = no deadline.
  std::optional<double> deadline_ms;
};

/// Outcome of a routed update batch: one Status per shard.  Shards the
/// batch did not touch report OK.  Commit is atomic per shard, not
/// across shards -- a non-OK entry means that shard rejected (or could
/// not log) ITS sub-batch while other entries committed normally.
struct ApplyResult {
  std::vector<Status> shard_status;

  bool all_ok() const {
    for (const Status& s : shard_status) {
      if (!s.ok()) return false;
    }
    return true;
  }
  /// First non-OK shard status, or OK when every shard committed.
  Status Collapse() const {
    for (const Status& s : shard_status) {
      if (!s.ok()) return s;
    }
    return OkStatus();
  }
};

class ShardedService {
 public:
  /// Request-layer counters: admission queue stats plus the number of
  /// requests that expired in queue (kDeadlineExceeded).
  struct ServiceStats {
    AdmissionQueue::Stats admission;
    uint64_t deadline_expired = 0;
  };

  /// Builds an in-memory sharded service: partitions `data` by id with
  /// ShardRouter, resolves the metric parameter ONCE from the full
  /// dataset (so every shard -- and FQA's quantization -- matches an
  /// unsharded oracle exactly), then MetricDB::Create()s each shard.
  static StatusOr<std::unique_ptr<ShardedService>> Create(
      const MetricDBConfig& config, Dataset data,
      const ServiceOptions& sopts = {});

  /// Create() plus a durability home: `dir` gets a small SERVICE meta
  /// file (shard count + object count, enough to rebuild the router)
  /// and one `shard-NNN/` durable MetricDB directory per shard, each
  /// with its own WAL and checkpoints.
  static StatusOr<std::unique_ptr<ShardedService>> CreateDurable(
      const MetricDBConfig& config, Dataset data, const std::string& dir,
      const ServiceOptions& sopts = {}, const DurabilityOptions& dopts = {});

  /// Crash recovery: reads the SERVICE meta, rebuilds the deterministic
  /// router, and MetricDB::OpenDurable()s every shard -- each shard
  /// recovers independently to its own acknowledged prefix.
  /// sopts.num_shards is ignored (the meta file decides).
  static StatusOr<std::unique_ptr<ShardedService>> OpenDurable(
      const std::string& dir, const ServiceOptions& sopts = {},
      const DurabilityOptions& dopts = {});

  /// Shuts the service down: refuses new requests, drains the admission
  /// queue, joins the workers, closes every shard.  Idempotent; returns
  /// the first shard Close error.
  Status Close();

  ~ShardedService();
  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Answers `request` through admission + scatter/gather.  Blocks the
  /// calling thread until the request completes (or is refused).
  /// Errors: kResourceExhausted (queue full), kDeadlineExceeded,
  /// kFailedPrecondition (closed), plus anything a shard query returns.
  /// Safe from any number of client threads.
  StatusOr<QueryResult> Query(const QueryRequest& request,
                              const RequestOptions& opts = {}) const;

  /// Routes `ops` to their owning shards and group-commits one
  /// sub-batch per shard (see ApplyResult for the atomicity contract).
  /// The outer StatusOr rejects the whole batch untouched:
  /// kInvalidArgument (id out of range), kResourceExhausted,
  /// kDeadlineExceeded, kFailedPrecondition (closed).
  StatusOr<ApplyResult> Apply(const std::vector<UpdateOp>& ops,
                              const RequestOptions& opts = {});

  /// Single-op conveniences; collapse the per-shard result.
  Status Insert(ObjectId id);
  Status Remove(ObjectId id);

  /// Durable services only: checkpoints every shard; first error wins.
  Status Checkpoint();

  /// A consistent per-shard snapshot bundle: one pinned ReadView per
  /// shard, taken in shard order.  Queries through it bypass admission
  /// (direct read path) and answer against exactly these versions; the
  /// view may outlive the service.  kFailedPrecondition when a shard's
  /// index does not support versioned reads or the service is closed.
  class ReadView {
   public:
    /// Per-shard pinned sequences (the service's consistency token).
    std::vector<uint64_t> sequences() const;

    /// Liveness of global `id` at its shard's pinned version.
    bool alive(ObjectId id) const;

    /// Scatter/gather against the pinned versions -- same merge (and
    /// same oracle equivalence) as ShardedService::Query.
    StatusOr<QueryResult> Query(const QueryRequest& request) const;

   private:
    friend class ShardedService;
    ReadView(std::shared_ptr<const ShardRouter> router,
             std::vector<MetricDB::ReadView> shards)
        : router_(std::move(router)), shards_(std::move(shards)) {}

    std::shared_ptr<const ShardRouter> router_;
    std::vector<MetricDB::ReadView> shards_;
  };

  StatusOr<ReadView> GetReadView() const;

  // -- introspection -------------------------------------------------------

  uint32_t num_shards() const { return router_->num_shards(); }
  const ShardRouter& router() const { return *router_; }
  const ServiceOptions& options() const { return sopts_; }
  /// The effective per-shard config (metric param already resolved).
  const MetricDBConfig& config() const { return shards_[0]->config(); }

  /// Writer-side views, like MetricDB::last_sequence()/alive(): exact
  /// only when no Apply is in flight (e.g. after joining clients).
  bool alive(ObjectId id) const;
  std::vector<uint64_t> sequences() const;
  std::vector<Status> write_statuses() const;

  /// Objects owned per shard (router view -- placement, not liveness).
  std::vector<uint32_t> shard_sizes() const;

  ServiceStats stats() const;

 private:
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;

  ShardedService() = default;

  static StatusOr<std::unique_ptr<ShardedService>> Build(
      const MetricDBConfig& config, Dataset data, const ServiceOptions& sopts,
      const std::string& dir, const DurabilityOptions& dopts, bool durable);

  Deadline ResolveDeadline(const RequestOptions& opts) const;
  static bool Expired(const Deadline& d) {
    return d.has_value() && std::chrono::steady_clock::now() >= *d;
  }

  /// Runs `fn` through the admission queue and blocks for its result.
  /// `fn` runs on a worker unless the queue refuses.  T is the
  /// StatusOr result type.
  template <typename T>
  T Submit(const Deadline& deadline, std::function<T()> fn) const;

  StatusOr<QueryResult> ExecuteQuery(const QueryRequest& request,
                                     const Deadline& deadline) const;
  StatusOr<ApplyResult> ExecuteApply(const std::vector<UpdateOp>& ops,
                                     const Deadline& deadline);

  ServiceOptions sopts_;
  std::shared_ptr<const ShardRouter> router_;
  std::vector<std::unique_ptr<MetricDB>> shards_;
  std::unique_ptr<AdmissionQueue> queue_;
  std::atomic<bool> closed_{false};
  mutable std::atomic<uint64_t> deadline_expired_{0};

  // Durable services only.
  bool durable_ = false;
  std::string dir_;
  Env* env_ = nullptr;  // borrowed; outlives the service
};

}  // namespace pmi

#endif  // PMI_SERVICE_SHARDED_SERVICE_H_
