#include "src/service/result_merger.h"

#include <algorithm>
#include <cstddef>

#include "src/core/knn_heap.h"

namespace pmi {
namespace {

// One read position in shard `shard`'s neighbor list during the k-way
// merge; ordered as a min-heap on the (distance, global id) total order.
struct Cursor {
  Neighbor head;  // already translated to a global id
  uint32_t shard;
  size_t pos;

  bool operator>(const Cursor& o) const { return o.head < head; }
};

}  // namespace

QueryResult MergeShardResults(const ShardRouter& router,
                              const QueryRequest& request,
                              std::vector<QueryResult> per_shard) {
  const size_t nq = request.batch.size();
  const uint32_t ns = router.num_shards();
  QueryResult merged;
  for (const QueryResult& r : per_shard) merged.stats += r.stats;

  if (request.type == QueryType::kRange) {
    merged.ids.resize(nq);
    for (size_t q = 0; q < nq; ++q) {
      std::vector<ObjectId>& out = merged.ids[q];
      for (uint32_t s = 0; s < ns; ++s) {
        for (ObjectId local : per_shard[s].ids[q]) {
          out.push_back(router.global_of(s, local));
        }
      }
      // Shards are disjoint, so the union is a plain concatenation;
      // ascending global id is the service's canonical MRQ order.
      std::sort(out.begin(), out.end());
    }
    return merged;
  }

  merged.neighbors.resize(nq);
  for (size_t q = 0; q < nq; ++q) {
    const size_t k = request.ks.empty() ? request.k : request.ks[q];
    std::vector<Cursor> heap;
    heap.reserve(ns);
    for (uint32_t s = 0; s < ns; ++s) {
      const std::vector<Neighbor>& list = per_shard[s].neighbors[q];
      if (list.empty()) continue;
      heap.push_back({{router.global_of(s, list[0].id), list[0].dist}, s, 0});
    }
    std::make_heap(heap.begin(), heap.end(), std::greater<>());
    std::vector<Neighbor>& out = merged.neighbors[q];
    while (!heap.empty() && out.size() < k) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>());
      Cursor cur = heap.back();
      heap.pop_back();
      out.push_back(cur.head);
      const std::vector<Neighbor>& list = per_shard[cur.shard].neighbors[q];
      if (++cur.pos < list.size()) {
        cur.head = {router.global_of(cur.shard, list[cur.pos].id),
                    list[cur.pos].dist};
        heap.push_back(cur);
        std::push_heap(heap.begin(), heap.end(), std::greater<>());
      }
    }
  }
  return merged;
}

}  // namespace pmi
