// Deterministic hash partitioning of object ids across shards.
//
// The sharded service (src/service/sharded_service.h) splits one logical
// dataset across N independent MetricDB shards.  The router is the single
// source of truth for that placement: global id -> (shard, local id) and
// back.  Placement is a pure function of (total objects, shard count) --
// a SplitMix64 hash of the global id -- so a durable service can rebuild
// the exact same routing on reopen from the two integers alone, with no
// routing table on disk.
//
// Local ids are assigned in ascending global-id order within each shard.
// That monotonicity is load-bearing for exact kNN merging: a shard-local
// KnnHeap tie-break by (distance, local id) then agrees with the global
// (distance, global id) order, so the k-way merge of per-shard results
// reproduces the unsharded oracle bit-for-bit.

#ifndef PMI_SERVICE_SHARD_ROUTER_H_
#define PMI_SERVICE_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

#include "src/core/object.h"

namespace pmi {

class ShardRouter {
 public:
  /// Partitions global ids [0, total) across `num_shards` shards.
  /// num_shards must be >= 1.
  ShardRouter(uint32_t total, uint32_t num_shards);

  uint32_t num_shards() const { return num_shards_; }
  /// Total number of routed global ids.
  uint32_t size() const { return static_cast<uint32_t>(shard_of_.size()); }

  /// Owning shard of global id `id` (id must be < size()).
  uint32_t shard_of(ObjectId id) const { return shard_of_[id]; }

  /// Local id of global id `id` within its owning shard.
  ObjectId local_of(ObjectId id) const { return local_of_[id]; }

  /// Global id of local id `local` in shard `shard`.
  ObjectId global_of(uint32_t shard, ObjectId local) const {
    return members_[shard][local];
  }

  /// Number of objects owned by `shard`.
  uint32_t shard_size(uint32_t shard) const {
    return static_cast<uint32_t>(members_[shard].size());
  }

  /// Global ids owned by `shard`, ascending.
  const std::vector<ObjectId>& members(uint32_t shard) const {
    return members_[shard];
  }

 private:
  uint32_t num_shards_;
  std::vector<uint32_t> shard_of_;             // global id -> shard
  std::vector<ObjectId> local_of_;             // global id -> local id
  std::vector<std::vector<ObjectId>> members_; // shard -> global ids, asc
};

}  // namespace pmi

#endif  // PMI_SERVICE_SHARD_ROUTER_H_
