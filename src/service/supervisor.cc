#include "src/service/supervisor.h"

#include <chrono>
#include <memory>
#include <utility>

#include "src/service/sharded_service.h"

namespace pmi {

namespace {
using SteadyClock = std::chrono::steady_clock;

SteadyClock::duration MsDuration(double ms) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}
}  // namespace

const char* ShardHealthName(ShardHealth h) {
  switch (h) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kQuarantined:
      return "quarantined";
    case ShardHealth::kRecovering:
      return "recovering";
    case ShardHealth::kPinnedReadOnly:
      return "pinned-read-only";
  }
  return "unknown";
}

ShardSupervisor::ShardSupervisor(ShardedService* service,
                                 const SupervisorOptions& opts)
    : service_(service), opts_(opts) {}

ShardSupervisor::~ShardSupervisor() { Stop(); }

void ShardSupervisor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  stop_ = false;
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void ShardSupervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void ShardSupervisor::Nudge() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++nudges_;
  }
  cv_.notify_all();
}

ShardSupervisor::Stats ShardSupervisor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ShardSupervisor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const uint64_t seen = nudges_;
    cv_.wait_for(lock, MsDuration(opts_.poll_interval_ms),
                 [&] { return stop_ || nudges_ != seen; });
    if (stop_) break;
    lock.unlock();
    PollOnce();
    lock.lock();
  }
}

void ShardSupervisor::PollOnce() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.health_checks;
    // Admission depth is a health INPUT (an overloaded service is worth
    // seeing next to shard faults), not a quarantine trigger: queue
    // pressure already degrades gracefully through kResourceExhausted.
    const uint32_t depth = service_->queue_->stats().depth;
    if (depth > stats_.peak_queue_depth) stats_.peak_queue_depth = depth;
  }

  const SteadyClock::time_point now = SteadyClock::now();
  for (uint32_t s = 0; s < service_->slots_.size(); ++s) {
    ShardedService::ShardSlot& slot = *service_->slots_[s];

    // At most one state transition per shard per sweep.  Decide it
    // under the slot lock; run slow I/O (Close/OpenDurable) outside.
    std::shared_ptr<MetricDB> old_db;
    bool recover = false;
    SteadyClock::time_point fault_at{};
    {
      std::lock_guard<std::mutex> lock(slot.mu);
      switch (slot.health) {
        case ShardHealth::kHealthy: {
          if (slot.db == nullptr || slot.db->write_status().ok()) break;
          // Sticky write fault -> quarantine.  Pin a stale view first:
          // MetricDB ReadViews co-own their version, so reads keep
          // flowing while the instance is closed for recovery.
          slot.last_error = slot.db->write_status();
          StatusOr<MetricDB::ReadView> view = slot.db->GetReadView();
          if (view.ok()) slot.stale_view = std::move(*view);
          slot.health = ShardHealth::kQuarantined;
          slot.attempts = 0;
          slot.fault_detected_at = now;
          slot.backoff = std::make_unique<Backoff>(
              BackoffPolicy{opts_.initial_backoff_ms, opts_.max_backoff_ms,
                            opts_.backoff_multiplier},
              opts_.seed ^ (0x9e3779b97f4a7c15ull * (s + 1)));
          const double delay = slot.backoff->NextDelayMs();
          slot.retry_after_ms = delay;
          slot.next_attempt = now + MsDuration(delay);
          std::lock_guard<std::mutex> slock(mu_);
          ++stats_.faults_detected;
          break;
        }
        case ShardHealth::kQuarantined: {
          if (now < slot.next_attempt) break;
          slot.health = ShardHealth::kRecovering;
          old_db = std::move(slot.db);
          fault_at = slot.fault_detected_at;
          recover = true;
          break;
        }
        case ShardHealth::kRecovering:
        case ShardHealth::kPinnedReadOnly:
          break;
      }
    }
    if (!recover) continue;

    // In-place recovery: close the faulted instance (releasing the
    // shard directory LOCK -- OpenDurable must re-take it), then replay
    // the shard's own checkpoint + WAL chain.  In-flight requests that
    // copied the old shared_ptr finish on it; the last owner destroys
    // it after its call returns.
    if (old_db != nullptr) {
      old_db->Close();
      old_db.reset();
    }
    StatusOr<MetricDB> opened =
        MetricDB::OpenDurable(service_->ShardDir(s), service_->dopts_);

    const SteadyClock::time_point done = SteadyClock::now();
    std::lock_guard<std::mutex> lock(slot.mu);
    if (opened.ok()) {
      // Hot-swap: only this slot changes; healthy shards' instances and
      // every already-pinned ReadView stay untouched.
      slot.db = std::make_shared<MetricDB>(std::move(*opened));
      slot.health = ShardHealth::kHealthy;
      slot.stale_view.reset();
      slot.last_error = OkStatus();
      slot.attempts = 0;
      slot.retry_after_ms = 0;
      slot.backoff.reset();
      std::lock_guard<std::mutex> slock(mu_);
      ++stats_.recoveries;
      stats_.last_recovery_ms =
          std::chrono::duration<double, std::milli>(done - fault_at).count();
    } else {
      slot.last_error = opened.status();
      ++slot.attempts;
      {
        std::lock_guard<std::mutex> slock(mu_);
        ++stats_.failed_attempts;
      }
      if (slot.attempts >= opts_.max_recovery_attempts) {
        // Circuit breaker: stop burning I/O on a shard that will not
        // come back; reads keep serving from the stale view, writes
        // stay typed kUnavailable until ResetShard re-arms recovery.
        slot.health = ShardHealth::kPinnedReadOnly;
        slot.retry_after_ms = -1;
        std::lock_guard<std::mutex> slock(mu_);
        ++stats_.breaker_trips;
      } else {
        slot.health = ShardHealth::kQuarantined;
        const double delay = slot.backoff != nullptr
                                 ? slot.backoff->NextDelayMs()
                                 : opts_.initial_backoff_ms;
        slot.retry_after_ms = delay;
        slot.next_attempt = done + MsDuration(delay);
      }
    }
  }
}

}  // namespace pmi
