// Deterministic capped-exponential backoff, shared by the supervisor's
// recovery schedule (supervisor.h) and the client retry layer
// (retry.h).  Determinism is the point: chaos runs and the
// backoff-schedule tests replay bit-identically for a fixed seed.

#ifndef PMI_SERVICE_BACKOFF_H_
#define PMI_SERVICE_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "src/core/rng.h"

namespace pmi {

/// Capped exponential backoff shape.
struct BackoffPolicy {
  double initial_ms = 1.0;
  double max_ms = 100.0;
  double multiplier = 2.0;
};

/// Deterministic backoff schedule: attempt i gets
/// min(max_ms, initial_ms * multiplier^i) jittered by a seeded factor
/// in [0.75, 1.25).  Two Backoff instances with the same policy and
/// seed produce bit-identical schedules.
class Backoff {
 public:
  Backoff(const BackoffPolicy& policy, uint64_t seed)
      : policy_(policy), seed_(seed), rng_(seed) {}

  /// Delay for the next attempt; advances the schedule.
  double NextDelayMs() {
    double nominal = policy_.initial_ms;
    for (uint32_t i = 0; i < attempt_ && nominal < policy_.max_ms; ++i) {
      nominal *= policy_.multiplier;
    }
    nominal = std::min(nominal, policy_.max_ms);
    ++attempt_;
    // 53-bit mantissa draw -> jitter factor in [0.75, 1.25).
    const double u =
        static_cast<double>(rng_() >> 11) * (1.0 / 9007199254740992.0);
    return nominal * (0.75 + 0.5 * u);
  }

  /// Rewinds to attempt 0 and re-seeds the jitter stream, so a Reset
  /// schedule equals a freshly constructed one.
  void Reset() {
    attempt_ = 0;
    rng_.seed(seed_);
  }

  uint32_t attempts() const { return attempt_; }

 private:
  BackoffPolicy policy_;
  uint64_t seed_;
  uint32_t attempt_ = 0;
  Rng rng_;
};

}  // namespace pmi

#endif  // PMI_SERVICE_BACKOFF_H_
