// Bounded admission queue + worker pool: the service's backpressure
// seam.
//
// Every ShardedService request (query or update) is admitted through
// this queue.  Admission is fail-fast: TrySubmit never blocks and never
// queues beyond the configured capacity -- when the queue is full the
// caller gets `false` and surfaces a typed kResourceExhausted instead of
// stacking latency unboundedly.  A fixed pool of worker threads drains
// the queue FIFO; deadline enforcement happens in the task wrapper the
// service builds (a task whose deadline elapsed while queued completes
// immediately with kDeadlineExceeded rather than burning a worker on a
// dead request).
//
// Shutdown() stops admission, then lets the workers DRAIN the queue
// before joining -- queued tasks carry completion slots that synchronous
// callers are blocked on, so dropping them would deadlock those callers.

#ifndef PMI_SERVICE_ADMISSION_H_
#define PMI_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pmi {

class AdmissionQueue {
 public:
  /// Point-in-time load/throughput counters (test + driver
  /// introspection).  accepted = TrySubmit successes; rejected =
  /// fail-fast refusals; executed = tasks a worker completed.
  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t executed = 0;
    uint32_t depth = 0;       // queued, not yet picked up
    uint32_t peak_depth = 0;  // high-water mark of depth
    uint32_t in_flight = 0;   // currently executing on a worker
  };

  /// Spawns `workers` worker threads (>= 1) over a queue holding at most
  /// `capacity` (>= 1) pending tasks.
  AdmissionQueue(uint32_t workers, uint32_t capacity);

  /// Shutdown() if the caller has not already.
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Enqueues `task` unless the queue is at capacity or shut down.
  /// Never blocks.  Returns false on refusal (the task is untouched).
  bool TrySubmit(std::function<void()> task);

  /// Stops admission, drains already-accepted tasks, joins the workers.
  /// Idempotent.
  void Shutdown();

  Stats stats() const;

 private:
  void WorkerLoop();

  const uint32_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace pmi

#endif  // PMI_SERVICE_ADMISSION_H_
