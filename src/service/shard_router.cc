#include "src/service/shard_router.h"

namespace pmi {
namespace {

// SplitMix64 finalizer: a fixed, platform-independent mixing of the
// global id.  Any change here is a routing format change -- a durable
// service reopened under a different hash would scatter ids to the
// wrong shard directories.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ShardRouter::ShardRouter(uint32_t total, uint32_t num_shards)
    : num_shards_(num_shards == 0 ? 1 : num_shards) {
  shard_of_.resize(total);
  local_of_.resize(total);
  members_.resize(num_shards_);
  // Ascending scan => local ids are monotone in global id per shard.
  for (uint32_t id = 0; id < total; ++id) {
    uint32_t s = static_cast<uint32_t>(Mix64(id) % num_shards_);
    shard_of_[id] = s;
    local_of_[id] = static_cast<ObjectId>(members_[s].size());
    members_[s].push_back(id);
  }
}

}  // namespace pmi
