#include "src/service/retry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unordered_map>

namespace pmi {
namespace {

using Clock = std::chrono::steady_clock;

double RemainingMs(const std::optional<Clock::time_point>& end) {
  if (!end.has_value()) return -1;  // unbounded
  return std::chrono::duration<double, std::milli>(*end - Clock::now())
      .count();
}

std::optional<Clock::time_point> ResolveBudget(const RetryPolicy& policy,
                                               const RequestOptions& opts) {
  double budget_ms = -1;
  if (policy.budget_ms.has_value()) {
    budget_ms = *policy.budget_ms;
  } else if (opts.deadline_ms.has_value() && *opts.deadline_ms >= 0) {
    budget_ms = *opts.deadline_ms;
  }
  if (budget_ms < 0) return std::nullopt;
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                budget_ms));
}

void SleepMs(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Net liveness a sub-batch leaves behind (last op per id wins) -- the
/// post-state probe for fence mismatches.
bool AllInPostState(const ShardedService& svc,
                    const std::vector<UpdateOp>& ops) {
  std::unordered_map<ObjectId, bool> last;
  for (const UpdateOp& op : ops) last[op.id] = op.op == WalOp::kInsert;
  for (const auto& [id, live] : last) {
    if (svc.alive(id) != live) return false;
  }
  return true;
}

/// Net liveness a sub-batch requires beforehand (first op per id:
/// Insert needs dead, Remove needs live) -- the pre-state probe.
bool AllInPreState(const ShardedService& svc,
                   const std::vector<UpdateOp>& ops) {
  std::unordered_map<ObjectId, bool> first;
  for (const UpdateOp& op : ops) {
    first.emplace(op.id, op.op == WalOp::kRemove);
  }
  for (const auto& [id, live] : first) {
    if (svc.alive(id) != live) return false;
  }
  return true;
}

/// Liveness attributes ops to the partial orphan only when no id
/// repeats within the sub-batch.
bool IdsUnique(const std::vector<UpdateOp>& ops) {
  std::unordered_map<ObjectId, int> seen;
  for (const UpdateOp& op : ops) {
    if (++seen[op.id] > 1) return false;
  }
  return true;
}

}  // namespace

bool IsRetryableError(const Status& s, bool query) {
  switch (s.code()) {
    case StatusCode::kResourceExhausted:
      // Admission refusal: nothing was dispatched.
      return true;
    case StatusCode::kUnavailable: {
      // Quarantine/recovery, or the fault that triggers it; NOT the
      // pinned-read-only terminal state.
      std::optional<double> ra = ParseRetryAfterMs(s);
      return !(ra.has_value() && *ra < 0);
    }
    case StatusCode::kDeadlineExceeded:
      if (query) return true;  // reads are idempotent
      // Apply: only pre-dispatch expiries are safe to re-send, and the
      // service types exactly those two ("while queued" as the whole-
      // request error, "before dispatch" per shard).
      return s.message().find("while queued") != std::string::npos ||
             s.message().find("before dispatch") != std::string::npos;
    default:
      return false;
  }
}

std::optional<double> ParseRetryAfterMs(const Status& s) {
  if (s.code() != StatusCode::kUnavailable) return std::nullopt;
  if (s.message().find("manual reset required") != std::string::npos) {
    return -1.0;
  }
  const size_t pos = s.message().find("retry after ");
  if (pos == std::string::npos) return std::nullopt;
  return std::strtod(s.message().c_str() + pos + 12, nullptr);
}

std::optional<uint32_t> ParseUnavailableShard(const Status& s) {
  if (s.code() != StatusCode::kUnavailable) return std::nullopt;
  uint32_t shard = 0;
  if (std::sscanf(s.message().c_str(), "shard %u unavailable", &shard) != 1) {
    return std::nullopt;
  }
  return shard;
}

StatusOr<QueryResult> QueryWithRetry(const ShardedService& svc,
                                     const QueryRequest& request,
                                     const RetryPolicy& policy,
                                     const RequestOptions& opts,
                                     RetryStats* stats) {
  RetryStats local;
  RetryStats* st = stats != nullptr ? stats : &local;
  *st = RetryStats{};
  const uint32_t max_attempts = std::max(policy.max_attempts, 1u);
  const std::optional<Clock::time_point> budget = ResolveBudget(policy, opts);
  Backoff backoff(policy.backoff, policy.seed);

  Status last = DeadlineExceededError("retry budget exhausted before dispatch");
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    RequestOptions aopts = opts;
    if (budget.has_value()) {
      const double rem = RemainingMs(budget);
      if (rem <= 0) break;
      aopts.deadline_ms = rem;  // each attempt runs on what's left
    }
    StatusOr<QueryResult> r = svc.Query(request, aopts);
    ++st->attempts;
    if (r.ok()) return r;
    if (!IsRetryableError(r.status(), /*query=*/true)) return r.status();
    last = r.status();
    if (attempt + 1 == max_attempts) break;
    double delay = backoff.NextDelayMs();
    const std::optional<double> ra = ParseRetryAfterMs(last);
    if (ra.has_value() && *ra > delay) delay = *ra;
    if (budget.has_value()) delay = std::min(delay, RemainingMs(budget));
    SleepMs(delay);
    if (delay > 0) st->slept_ms += delay;
  }
  return last;
}

StatusOr<ApplyResult> ApplyWithRetry(ShardedService& svc,
                                     const std::vector<UpdateOp>& ops,
                                     const RetryPolicy& policy,
                                     const RequestOptions& opts,
                                     RetryStats* stats) {
  RetryStats local;
  RetryStats* st = stats != nullptr ? stats : &local;
  *st = RetryStats{};
  const uint32_t max_attempts = std::max(policy.max_attempts, 1u);
  const std::optional<Clock::time_point> budget = ResolveBudget(policy, opts);
  Backoff backoff(policy.backoff, policy.seed);
  const ShardRouter& router = svc.router();
  const uint32_t num_shards = svc.num_shards();

  // Validate ids up front so routing below is safe; mirrors the typed
  // error ShardedService::Apply would return.
  for (const UpdateOp& op : ops) {
    if (op.id >= router.size()) {
      return InvalidArgumentError("update id " + std::to_string(op.id) +
                                  " out of range [0, " +
                                  std::to_string(router.size()) + ")");
    }
  }

  // Sub-batches keyed by owning shard, in GLOBAL ids (resent through
  // the service, which re-routes).
  std::vector<std::vector<UpdateOp>> by_shard(num_shards);
  for (const UpdateOp& op : ops) {
    by_shard[router.shard_of(op.id)].push_back(op);
  }
  std::vector<bool> pending(num_shards, false);
  size_t pending_count = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (!by_shard[s].empty()) {
      pending[s] = true;
      ++pending_count;
    }
  }

  // Sequence fences are armed LAZILY, per shard, at that shard's first
  // failed sub-commit: the fence is the shard's last_sequence() captured
  // just before the attempt that might have orphaned a WAL record, so a
  // recovered "failed" commit mismatches instead of double-applying
  // (see file comment in retry.h).  The first attempt runs unfenced --
  // nothing can have orphaned yet, and an up-front fence would turn
  // every concurrent foreign commit on the shard into a spurious CAS
  // failure.  Caller-provided fences win and apply from the start.
  std::vector<std::optional<uint64_t>> fences(num_shards);
  for (uint32_t s = 0; s < num_shards && s < opts.sequence_fences.size();
       ++s) {
    if (pending[s]) fences[s] = opts.sequence_fences[s];
  }

  ApplyResult result;
  result.shard_status.resize(num_shards);
  Status last_outer;
  // Rounds that only lost a fence CAS to a foreign writer are bounded
  // separately from failed attempts: they are contention on a healthy
  // shard, not service pressure, and must not eat the caller's attempt
  // budget (or trigger its backoff).
  constexpr uint32_t kMaxFenceRounds = 64;
  uint32_t attempt = 0;
  uint32_t fence_rounds = 0;
  while (pending_count > 0 && attempt < max_attempts &&
         fence_rounds < kMaxFenceRounds) {
    if (budget.has_value() && RemainingMs(budget) <= 0) break;
    std::vector<UpdateOp> batch;
    RequestOptions aopts = opts;
    aopts.sequence_fences.assign(num_shards, std::nullopt);
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (!pending[s]) continue;
      batch.insert(batch.end(), by_shard[s].begin(), by_shard[s].end());
      aopts.sequence_fences[s] = fences[s];
    }
    if (budget.has_value()) aopts.deadline_ms = RemainingMs(budget);
    if (attempt + fence_rounds > 0) st->retried_shards += pending_count;

    const std::vector<uint64_t> pre_seqs = svc.sequences();
    StatusOr<ApplyResult> r = svc.Apply(batch, aopts);
    ++st->attempts;
    bool fence_only = true;
    if (!r.ok()) {
      if (!IsRetryableError(r.status(), /*query=*/false)) return r.status();
      last_outer = r.status();  // whole batch refused, nothing applied
      fence_only = false;
    } else {
      for (uint32_t s = 0; s < num_shards; ++s) {
        if (!pending[s]) continue;
        const Status& shard_st = r->shard_status[s];
        if (shard_st.ok()) {
          result.shard_status[s] = OkStatus();
          pending[s] = false;
          --pending_count;
        } else if (IsSequenceFenceMismatch(shard_st)) {
          // Either our earlier "failed" commit was recovered from the
          // WAL (batch is already in), or a foreign writer moved the
          // shard.  The ops' net liveness decides.
          if (AllInPostState(svc, by_shard[s])) {
            result.shard_status[s] = OkStatus();
            pending[s] = false;
            --pending_count;
            ++st->idempotent_skips;
          } else if (AllInPreState(svc, by_shard[s])) {
            fences[s] = svc.sequences()[s];  // re-arm and retry
            result.shard_status[s] = shard_st;
          } else if (IdsUnique(by_shard[s])) {
            // Partially replayed orphan (one WAL record per op; a torn
            // tail can commit a prefix of the sub-batch).  Disjoint
            // ownership means the ops already in post state are OURS:
            // complete the batch by re-sending just the remainder.
            std::vector<UpdateOp> rest;
            for (const UpdateOp& op : by_shard[s]) {
              if (svc.alive(op.id) != (op.op == WalOp::kInsert)) {
                rest.push_back(op);
              }
            }
            by_shard[s] = std::move(rest);
            fences[s] = svc.sequences()[s];
            ++st->partial_completions;
            result.shard_status[s] = shard_st;
          } else {
            result.shard_status[s] = FailedPreconditionError(
                "retry state ambiguous for shard " + std::to_string(s) +
                " (concurrent writer on the same ids?): " +
                shard_st.message());
            pending[s] = false;
            --pending_count;
          }
        } else if (IsRetryableError(shard_st, /*query=*/false)) {
          result.shard_status[s] = shard_st;  // retry next round
          // This attempt may have left an orphaned WAL record behind
          // the failure; fence the retry with the pre-attempt sequence.
          // Only the FIRST failure arms it -- an existing fence already
          // covers an older (still unresolved) attempt.
          if (!fences[s].has_value()) fences[s] = pre_seqs[s];
          fence_only = false;
        } else {
          result.shard_status[s] = shard_st;  // terminal for this shard
          pending[s] = false;
          --pending_count;
        }
      }
    }
    if (pending_count == 0) break;
    if (fence_only) {
      // Lost the fence CAS to foreign commits; the fences were re-armed
      // above, the shard itself is healthy -- go again immediately.
      ++fence_rounds;
      continue;
    }
    ++attempt;
    if (attempt == max_attempts) break;
    double delay = backoff.NextDelayMs();
    // A quarantined shard's retry-after hint floors the delay.
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (!pending[s]) continue;
      const std::optional<double> ra =
          ParseRetryAfterMs(result.shard_status[s]);
      if (ra.has_value() && *ra > delay) delay = *ra;
    }
    if (budget.has_value()) delay = std::min(delay, RemainingMs(budget));
    SleepMs(delay);
    if (delay > 0) st->slept_ms += delay;
  }

  // Budget/attempts exhausted with shards still pending: make sure each
  // carries a non-OK typed status (an outer refusal never wrote one).
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (pending[s] && result.shard_status[s].ok()) {
      result.shard_status[s] =
          !last_outer.ok()
              ? last_outer
              : DeadlineExceededError("retry budget exhausted for shard " +
                                      std::to_string(s));
    }
  }
  return result;
}

}  // namespace pmi
