// Client-side retry layer for ShardedService -- typed-error-aware
// retries with deterministic backoff inside the caller's deadline
// budget.
//
// Only SAFELY retryable typed errors are retried:
//   - kResourceExhausted: the admission queue refused the request;
//     nothing was dispatched.
//   - kDeadlineExceeded, pre-dispatch only: "expired while queued" as a
//     whole-request error, or a per-shard status taken BEFORE that
//     shard's sub-batch was dispatched (ExecuteApply checks the budget
//     before each shard commit).  In both cases nothing was applied.
//   - kUnavailable during quarantine/recovery: the supervisor has the
//     shard; the error carries the shard id and a retry-after hint that
//     floors the next backoff delay.  A pinned-read-only kUnavailable
//     ("manual reset required") is terminal and is NOT retried.
// Queries are additionally idempotent by nature, so a mid-gather
// kDeadlineExceeded query is also safe to retry with fresh budget.
//
// Idempotence contract for ApplyWithRetry (the interesting half): a
// retried batch must never double-apply.  The hazard is real -- a WAL
// commit can fail AFTER its record reached the log (failed fsync), the
// supervisor then recovers the shard by replaying the WAL, and the
// "failed" batch is suddenly applied.  The guard is the existing
// per-shard sequence numbers: every RETRY attempt carries a per-shard
// sequence fence (RequestOptions::sequence_fences) -- the shard's
// last_sequence() captured just before the attempt that failed -- and
// MetricDB::Apply commits only if the fence still matches.  The first
// attempt runs unfenced (nothing can have orphaned yet), so concurrent
// clients sharing a shard do not fail each other's clean commits; a
// fence armed by a failure CAN still go stale under such foreign
// writers, which costs a bounded re-arm round, not an attempt.  If
// recovery replayed the orphaned record the fence mismatches, and the
// retry layer probes the ops' liveness: all already in post-op state
// means the batch landed (counted as an idempotent skip, reported OK);
// all in pre-op state means a foreign writer moved the shard, so the
// fence is re-armed and the sub-batch retried.
//
// A MIXED probe is possible too: MetricDB logs one WAL record per op,
// so a torn/short write can leave a durable PREFIX of the sub-batch's
// records, and recovery then replays only part of it.  When every id
// appears once in the sub-batch, liveness identifies exactly which ops
// landed, and -- because the contract already forbids concurrent
// writers on the same ids -- the mixed state can only be our own
// partial orphan.  The retry layer then COMPLETES the batch: it
// re-sends just the not-yet-applied ops under a fresh fence (counted in
// RetryStats::partial_completions).  If an id repeats in the sub-batch
// liveness cannot attribute ops, and the mixed state is surfaced as a
// typed kFailedPrecondition instead.  The exactly-once guarantee
// therefore requires that no concurrent writer touches the same ids --
// the same disjoint-stripe ownership every driver and test here uses.

#ifndef PMI_SERVICE_RETRY_H_
#define PMI_SERVICE_RETRY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/service/backoff.h"
#include "src/service/sharded_service.h"

namespace pmi {

/// Client retry knobs.
struct RetryPolicy {
  /// Total tries including the first (>= 1).
  uint32_t max_attempts = 6;
  BackoffPolicy backoff;
  /// Jitter seed (deterministic schedules, like the supervisor's).
  uint64_t seed = 0x5eed;
  /// Overall wall-clock budget across attempts AND backoff sleeps.
  /// Unset: RequestOptions::deadline_ms (when set) is the budget;
  /// otherwise attempts are bounded only by max_attempts.
  std::optional<double> budget_ms;
};

/// Observability for a retried call.
struct RetryStats {
  uint32_t attempts = 0;         ///< service calls actually issued
  uint64_t retried_shards = 0;   ///< per-shard sub-batches re-sent
  uint64_t idempotent_skips = 0; ///< fence caught an already-applied batch
  /// Fence caught a partially replayed orphan; the remainder was
  /// re-sent (file comment).
  uint64_t partial_completions = 0;
  double slept_ms = 0;           ///< total backoff sleep
};

/// True for errors the retry layer may safely re-issue (see file
/// comment).  `query` relaxes the kDeadlineExceeded pre-dispatch
/// restriction, since reads are idempotent.
bool IsRetryableError(const Status& s, bool query);

/// Parses the "retry after <ms> ms" hint a quarantined shard's
/// kUnavailable carries; nullopt when absent, negative when the status
/// says the shard is pinned awaiting manual reset.
std::optional<double> ParseRetryAfterMs(const Status& s);

/// Parses the shard id out of a service-typed kUnavailable.
std::optional<uint32_t> ParseUnavailableShard(const Status& s);

/// Query with retries.  Each attempt runs under the REMAINING budget
/// (the per-attempt deadline shrinks as budget is spent), so the call
/// as a whole never overruns the caller's deadline.
StatusOr<QueryResult> QueryWithRetry(const ShardedService& svc,
                                     const QueryRequest& request,
                                     const RetryPolicy& policy = {},
                                     const RequestOptions& opts = {},
                                     RetryStats* stats = nullptr);

/// Apply with per-shard retries under the sequence-fence idempotence
/// contract (file comment).  Returns the cumulative ApplyResult: a
/// shard's entry is OK once its sub-batch committed (possibly on a
/// retry, possibly as an idempotent skip), or the last typed error when
/// the budget/attempts ran out first.  The outer StatusOr is non-OK
/// only for non-retryable whole-request rejections (e.g.
/// kInvalidArgument, kFailedPrecondition service-closed).
StatusOr<ApplyResult> ApplyWithRetry(ShardedService& svc,
                                     const std::vector<UpdateOp>& ops,
                                     const RetryPolicy& policy = {},
                                     const RequestOptions& opts = {},
                                     RetryStats* stats = nullptr);

}  // namespace pmi

#endif  // PMI_SERVICE_RETRY_H_
