#include "src/service/sharded_service.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <utility>

#include "src/service/result_merger.h"

namespace pmi {
namespace {

using SteadyClock = std::chrono::steady_clock;

// The SERVICE meta file: the two integers that, with the SplitMix64
// router, fully determine object placement -- enough to reopen a
// durable service with zero routing state per object.
constexpr char kMetaName[] = "SERVICE";
constexpr char kMetaFormat[] = "pmi-sharded-service v1\nshards %u\nobjects %u\n";

std::string ShardDirName(const std::string& dir, uint32_t shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%03u", shard);
  return JoinPath(dir, buf);
}

Status WriteMeta(Env* env, const std::string& dir, uint32_t shards,
                 uint32_t objects) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), kMetaFormat, shards, objects);
  StatusOr<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(JoinPath(dir, kMetaName));
  if (!file.ok()) return file.status();
  PMI_RETURN_IF_ERROR((*file)->Append(buf));
  PMI_RETURN_IF_ERROR((*file)->Sync());
  PMI_RETURN_IF_ERROR((*file)->Close());
  return env->SyncDir(dir);
}

Status ReadMeta(Env* env, const std::string& dir, uint32_t* shards,
                uint32_t* objects) {
  StatusOr<std::string> contents = env->ReadFileToString(JoinPath(dir, kMetaName));
  if (!contents.ok()) return contents.status();
  if (std::sscanf(contents->c_str(), kMetaFormat, shards, objects) != 2 ||
      *shards == 0 || *objects == 0) {
    return DataLossError("unparsable SERVICE meta file in " + dir);
  }
  return OkStatus();
}

Dataset SplitShard(const Dataset& full, const std::vector<ObjectId>& members) {
  Dataset out = full.kind() == ObjectKind::kVector ? Dataset::Vectors(full.dim())
                                                   : Dataset::Strings();
  for (ObjectId id : members) out.Add(full.view(id));
  return out;
}

double SecondsSince(SteadyClock::time_point t0) {
  return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

/// Scatter/gather against an already-pinned view bundle (the direct
/// read path shared by ReadView::Query).
StatusOr<QueryResult> GatherAtViews(const ShardRouter& router,
                                    const std::vector<MetricDB::ReadView>& views,
                                    const QueryRequest& request) {
  SteadyClock::time_point t0 = SteadyClock::now();
  std::vector<QueryResult> per_shard;
  per_shard.reserve(views.size());
  for (const MetricDB::ReadView& view : views) {
    StatusOr<QueryResult> r = view.Query(request);
    if (!r.ok()) return r.status();
    per_shard.push_back(std::move(*r));
  }
  QueryResult merged = MergeShardResults(router, request, std::move(per_shard));
  merged.stats.seconds = SecondsSince(t0);
  return merged;
}

}  // namespace

// -- construction -------------------------------------------------------------

StatusOr<std::unique_ptr<ShardedService>> ShardedService::Build(
    const MetricDBConfig& config, Dataset data, const ServiceOptions& sopts,
    const std::string& dir, const DurabilityOptions& dopts, bool durable) {
  if (sopts.num_shards < 1) {
    return InvalidArgumentError("num_shards must be >= 1");
  }
  if (data.empty()) return InvalidArgumentError("dataset must be non-empty");
  auto router = std::make_shared<ShardRouter>(
      static_cast<uint32_t>(data.size()), sopts.num_shards);
  for (uint32_t s = 0; s < router->num_shards(); ++s) {
    if (router->shard_size(s) == 0) {
      return InvalidArgumentError(
          "shard " + std::to_string(s) +
          " owns no objects; lower num_shards for this dataset size");
    }
  }

  // One metric parameter, derived from the FULL dataset, pinned into
  // every shard: per-shard derivation could diverge (narrower domain),
  // and FQA's quantization step depends on it.
  MetricDBConfig shard_config = config;
  PMI_ASSIGN_OR_RETURN(
      shard_config.metric_param,
      ResolveMetricParam(config.metric_name, data, config.metric_param));

  std::unique_ptr<ShardedService> svc(new ShardedService());
  svc->sopts_ = sopts;
  svc->router_ = router;
  svc->durable_ = durable;
  if (durable) {
    svc->dir_ = dir;
    svc->env_ = dopts.env != nullptr ? dopts.env : Env::Default();
    PMI_RETURN_IF_ERROR(svc->env_->CreateDir(dir));
  }
  svc->shards_.reserve(router->num_shards());
  for (uint32_t s = 0; s < router->num_shards(); ++s) {
    Dataset shard_data = SplitShard(data, router->members(s));
    StatusOr<MetricDB> db =
        durable ? MetricDB::CreateDurable(shard_config, std::move(shard_data),
                                          ShardDirName(dir, s), dopts)
                : MetricDB::Create(shard_config, std::move(shard_data));
    if (!db.ok()) return db.status();
    svc->shards_.push_back(std::make_unique<MetricDB>(std::move(*db)));
  }
  if (durable) {
    PMI_RETURN_IF_ERROR(WriteMeta(svc->env_, dir, router->num_shards(),
                                  router->size()));
  }
  svc->queue_ = std::make_unique<AdmissionQueue>(sopts.workers, sopts.max_queue);
  return svc;
}

StatusOr<std::unique_ptr<ShardedService>> ShardedService::Create(
    const MetricDBConfig& config, Dataset data, const ServiceOptions& sopts) {
  return Build(config, std::move(data), sopts, "", DurabilityOptions{},
               /*durable=*/false);
}

StatusOr<std::unique_ptr<ShardedService>> ShardedService::CreateDurable(
    const MetricDBConfig& config, Dataset data, const std::string& dir,
    const ServiceOptions& sopts, const DurabilityOptions& dopts) {
  return Build(config, std::move(data), sopts, dir, dopts, /*durable=*/true);
}

StatusOr<std::unique_ptr<ShardedService>> ShardedService::OpenDurable(
    const std::string& dir, const ServiceOptions& sopts,
    const DurabilityOptions& dopts) {
  Env* env = dopts.env != nullptr ? dopts.env : Env::Default();
  uint32_t num_shards = 0;
  uint32_t objects = 0;
  PMI_RETURN_IF_ERROR(ReadMeta(env, dir, &num_shards, &objects));

  std::unique_ptr<ShardedService> svc(new ShardedService());
  svc->sopts_ = sopts;
  svc->sopts_.num_shards = num_shards;
  svc->router_ = std::make_shared<ShardRouter>(objects, num_shards);
  svc->durable_ = true;
  svc->dir_ = dir;
  svc->env_ = env;
  svc->shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    StatusOr<MetricDB> db = MetricDB::OpenDurable(ShardDirName(dir, s), dopts);
    if (!db.ok()) return db.status();
    if (db->dataset().size() != svc->router_->shard_size(s)) {
      return DataLossError("shard " + std::to_string(s) +
                           " dataset size does not match the SERVICE meta");
    }
    svc->shards_.push_back(std::make_unique<MetricDB>(std::move(*db)));
  }
  svc->queue_ = std::make_unique<AdmissionQueue>(svc->sopts_.workers,
                                                 svc->sopts_.max_queue);
  return svc;
}

Status ShardedService::Close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return OkStatus();
  queue_->Shutdown();
  Status first;
  for (std::unique_ptr<MetricDB>& shard : shards_) {
    Status s = shard->Close();
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

ShardedService::~ShardedService() {
  if (queue_ != nullptr) Close();
}

// -- request path -------------------------------------------------------------

ShardedService::Deadline ShardedService::ResolveDeadline(
    const RequestOptions& opts) const {
  const double ms =
      opts.deadline_ms.has_value() ? *opts.deadline_ms : sopts_.default_deadline_ms;
  if (ms < 0) return std::nullopt;
  return SteadyClock::now() +
         std::chrono::duration_cast<SteadyClock::duration>(
             std::chrono::duration<double, std::milli>(ms));
}

template <typename T>
T ShardedService::Submit(const Deadline& deadline, std::function<T()> fn) const {
  struct Slot {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::optional<T> result;
  };
  // shared_ptr: during shutdown the drain may complete a task after the
  // submitter's stack frame would normally be the only owner.
  auto slot = std::make_shared<Slot>();
  bool accepted =
      queue_->TrySubmit([this, deadline, fn = std::move(fn), slot] {
        std::optional<T> r;
        if (Expired(deadline)) {
          deadline_expired_.fetch_add(1, std::memory_order_relaxed);
          r.emplace(
              DeadlineExceededError("request deadline expired while queued"));
        } else {
          r.emplace(fn());
        }
        {
          std::lock_guard<std::mutex> lock(slot->m);
          slot->result = std::move(r);
          slot->done = true;
        }
        slot->cv.notify_all();
      });
  if (!accepted) {
    return T(ResourceExhaustedError(
        "admission queue full (capacity " + std::to_string(sopts_.max_queue) +
        ") or service shutting down"));
  }
  std::unique_lock<std::mutex> lock(slot->m);
  slot->cv.wait(lock, [&] { return slot->done; });
  return std::move(*slot->result);
}

StatusOr<QueryResult> ShardedService::ExecuteQuery(const QueryRequest& request,
                                                   const Deadline& deadline) const {
  SteadyClock::time_point t0 = SteadyClock::now();
  std::vector<QueryResult> per_shard;
  per_shard.reserve(shards_.size());
  for (const std::unique_ptr<MetricDB>& shard : shards_) {
    if (Expired(deadline)) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      return DeadlineExceededError("request deadline expired mid-gather");
    }
    // Versioned shards answer at a pinned epoch version; indexes
    // without clone support fall back to the shard's serialized path.
    StatusOr<MetricDB::ReadView> view = shard->GetReadView();
    StatusOr<QueryResult> r =
        view.ok() ? view->Query(request) : shard->Query(request);
    if (!r.ok()) return r.status();
    per_shard.push_back(std::move(*r));
  }
  QueryResult merged =
      MergeShardResults(*router_, request, std::move(per_shard));
  merged.stats.seconds = SecondsSince(t0);
  return merged;
}

StatusOr<ApplyResult> ShardedService::ExecuteApply(
    const std::vector<UpdateOp>& ops, const Deadline& deadline) {
  if (Expired(deadline)) {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    return DeadlineExceededError("request deadline expired while queued");
  }
  // Route to owning shards, rewriting to local ids; op order within a
  // shard follows batch order, so per-shard liveness validation sees
  // the same sequence an unsharded Apply would.
  std::vector<std::vector<UpdateOp>> routed(shards_.size());
  for (const UpdateOp& op : ops) {
    routed[router_->shard_of(op.id)].push_back(
        {op.op, router_->local_of(op.id)});
  }
  ApplyResult result;
  result.shard_status.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (routed[s].empty()) continue;
    result.shard_status[s] = shards_[s]->Apply(routed[s]);
  }
  return result;
}

StatusOr<QueryResult> ShardedService::Query(const QueryRequest& request,
                                            const RequestOptions& opts) const {
  if (closed_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("service is closed");
  }
  Deadline deadline = ResolveDeadline(opts);
  return Submit<StatusOr<QueryResult>>(
      deadline, [this, &request, deadline] {
        return ExecuteQuery(request, deadline);
      });
}

StatusOr<ApplyResult> ShardedService::Apply(const std::vector<UpdateOp>& ops,
                                            const RequestOptions& opts) {
  if (closed_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("service is closed");
  }
  for (const UpdateOp& op : ops) {
    if (op.id >= router_->size()) {
      return InvalidArgumentError("update id " + std::to_string(op.id) +
                                  " out of range [0, " +
                                  std::to_string(router_->size()) + ")");
    }
  }
  Deadline deadline = ResolveDeadline(opts);
  return Submit<StatusOr<ApplyResult>>(deadline, [this, &ops, deadline] {
    return ExecuteApply(ops, deadline);
  });
}

Status ShardedService::Insert(ObjectId id) {
  StatusOr<ApplyResult> r = Apply({UpdateOp::Insert(id)});
  return r.ok() ? r->Collapse() : r.status();
}

Status ShardedService::Remove(ObjectId id) {
  StatusOr<ApplyResult> r = Apply({UpdateOp::Remove(id)});
  return r.ok() ? r->Collapse() : r.status();
}

Status ShardedService::Checkpoint() {
  if (closed_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("service is closed");
  }
  Status first;
  for (std::unique_ptr<MetricDB>& shard : shards_) {
    Status s = shard->Checkpoint();
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

// -- read views ---------------------------------------------------------------

StatusOr<ShardedService::ReadView> ShardedService::GetReadView() const {
  if (closed_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("service is closed");
  }
  std::vector<MetricDB::ReadView> views;
  views.reserve(shards_.size());
  for (const std::unique_ptr<MetricDB>& shard : shards_) {
    StatusOr<MetricDB::ReadView> view = shard->GetReadView();
    if (!view.ok()) return view.status();
    views.push_back(std::move(*view));
  }
  return ReadView(router_, std::move(views));
}

std::vector<uint64_t> ShardedService::ReadView::sequences() const {
  std::vector<uint64_t> out;
  out.reserve(shards_.size());
  for (const MetricDB::ReadView& v : shards_) out.push_back(v.sequence());
  return out;
}

bool ShardedService::ReadView::alive(ObjectId id) const {
  if (id >= router_->size()) return false;
  return shards_[router_->shard_of(id)].alive(router_->local_of(id));
}

StatusOr<QueryResult> ShardedService::ReadView::Query(
    const QueryRequest& request) const {
  return GatherAtViews(*router_, shards_, request);
}

// -- introspection ------------------------------------------------------------

bool ShardedService::alive(ObjectId id) const {
  if (id >= router_->size()) return false;
  return shards_[router_->shard_of(id)]->alive(router_->local_of(id));
}

std::vector<uint64_t> ShardedService::sequences() const {
  std::vector<uint64_t> out;
  out.reserve(shards_.size());
  for (const std::unique_ptr<MetricDB>& shard : shards_) {
    out.push_back(shard->last_sequence());
  }
  return out;
}

std::vector<Status> ShardedService::write_statuses() const {
  std::vector<Status> out;
  out.reserve(shards_.size());
  for (const std::unique_ptr<MetricDB>& shard : shards_) {
    out.push_back(shard->write_status());
  }
  return out;
}

std::vector<uint32_t> ShardedService::shard_sizes() const {
  std::vector<uint32_t> out;
  out.reserve(router_->num_shards());
  for (uint32_t s = 0; s < router_->num_shards(); ++s) {
    out.push_back(router_->shard_size(s));
  }
  return out;
}

ShardedService::ServiceStats ShardedService::stats() const {
  return {queue_->stats(), deadline_expired_.load(std::memory_order_relaxed)};
}

}  // namespace pmi
