#include "src/service/sharded_service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "src/service/result_merger.h"
#include "src/storage/wal.h"

namespace pmi {
namespace {

using SteadyClock = std::chrono::steady_clock;

// The SERVICE meta file: the two integers that, with the SplitMix64
// router, fully determine object placement -- enough to reopen a
// durable service with zero routing state per object.  v2 appends a
// CRC32C line over the body so a truncated or bit-flipped meta is a
// typed kDataLoss, never a crash or a bogus router; v1 (no checksum)
// is still accepted on read.
constexpr char kMetaName[] = "SERVICE";
constexpr char kMetaVersionPrefix[] = "pmi-sharded-service v";
constexpr char kMetaBodyFormat[] = "pmi-sharded-service v2\nshards %u\nobjects %u\n";
constexpr char kMetaV1Format[] = "pmi-sharded-service v1\nshards %u\nobjects %u\n";

std::string ShardDirName(const std::string& dir, uint32_t shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%03u", shard);
  return JoinPath(dir, buf);
}

Status WriteMeta(Env* env, const std::string& dir, uint32_t shards,
                 uint32_t objects) {
  char body[96];
  std::snprintf(body, sizeof(body), kMetaBodyFormat, shards, objects);
  char crc_line[24];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08x\n",
                Crc32c(body, std::strlen(body)));
  StatusOr<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(JoinPath(dir, kMetaName));
  if (!file.ok()) return file.status();
  PMI_RETURN_IF_ERROR((*file)->Append(body));
  PMI_RETURN_IF_ERROR((*file)->Append(crc_line));
  PMI_RETURN_IF_ERROR((*file)->Sync());
  PMI_RETURN_IF_ERROR((*file)->Close());
  return env->SyncDir(dir);
}

Status ReadMeta(Env* env, const std::string& dir, uint32_t* shards,
                uint32_t* objects) {
  StatusOr<std::string> contents =
      env->ReadFileToString(JoinPath(dir, kMetaName));
  if (!contents.ok()) return contents.status();
  if (contents->empty()) {
    return DataLossError("empty SERVICE meta file in " + dir);
  }
  if (contents->rfind(kMetaVersionPrefix, 0) != 0) {
    return DataLossError("unrecognized SERVICE meta header in " + dir);
  }
  char* end = nullptr;
  const long version = std::strtol(
      contents->c_str() + std::strlen(kMetaVersionPrefix), &end, 10);
  if (end == nullptr || *end != '\n') {
    return DataLossError("mangled SERVICE meta version in " + dir);
  }
  if (version != 1 && version != 2) {
    return FailedPreconditionError(
        "SERVICE meta version v" + std::to_string(version) +
        " is not supported by this build (" + dir + ")");
  }
  if (version == 2) {
    // The checksum line covers every byte before it; verify FIRST so a
    // bit-flipped count can never size a router.
    const size_t crc_pos = contents->rfind("crc ");
    if (crc_pos == std::string::npos || crc_pos == 0 ||
        (*contents)[crc_pos - 1] != '\n') {
      return DataLossError("SERVICE meta missing checksum line in " + dir);
    }
    uint32_t stored = 0;
    if (std::sscanf(contents->c_str() + crc_pos, "crc %x", &stored) != 1) {
      return DataLossError("unparsable SERVICE meta checksum in " + dir);
    }
    if (stored != Crc32c(contents->data(), crc_pos)) {
      return DataLossError("SERVICE meta checksum mismatch in " + dir);
    }
    // The checksum line is exactly "crc XXXXXXXX\n" and ends the file;
    // the CRC cannot vouch for bytes after itself, so any slack there
    // (or a clipped digit sscanf happily under-parses) is damage.
    if (contents->size() != crc_pos + 13 || contents->back() != '\n') {
      return DataLossError("malformed SERVICE meta checksum line in " + dir);
    }
    if (std::sscanf(contents->c_str(), kMetaBodyFormat, shards, objects) != 2) {
      return DataLossError("unparsable SERVICE meta body in " + dir);
    }
  } else {
    if (std::sscanf(contents->c_str(), kMetaV1Format, shards, objects) != 2) {
      return DataLossError("unparsable SERVICE meta file in " + dir);
    }
  }
  if (*shards == 0 || *objects == 0 || *shards > *objects) {
    return DataLossError("implausible SERVICE meta (shards=" +
                         std::to_string(*shards) + ", objects=" +
                         std::to_string(*objects) + ") in " + dir);
  }
  return OkStatus();
}

Dataset SplitShard(const Dataset& full, const std::vector<ObjectId>& members) {
  Dataset out = full.kind() == ObjectKind::kVector ? Dataset::Vectors(full.dim())
                                                   : Dataset::Strings();
  for (ObjectId id : members) out.Add(full.view(id));
  return out;
}

double SecondsSince(SteadyClock::time_point t0) {
  return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

/// Scatter/gather against an already-pinned view bundle (the direct
/// read path shared by ReadView::Query).
StatusOr<QueryResult> GatherAtViews(const ShardRouter& router,
                                    const std::vector<MetricDB::ReadView>& views,
                                    const QueryRequest& request) {
  SteadyClock::time_point t0 = SteadyClock::now();
  std::vector<QueryResult> per_shard;
  per_shard.reserve(views.size());
  for (const MetricDB::ReadView& view : views) {
    StatusOr<QueryResult> r = view.Query(request);
    if (!r.ok()) return r.status();
    per_shard.push_back(std::move(*r));
  }
  QueryResult merged = MergeShardResults(router, request, std::move(per_shard));
  merged.stats.seconds = SecondsSince(t0);
  return merged;
}

const char* HealthDetail(ShardHealth h) {
  switch (h) {
    case ShardHealth::kQuarantined:
      return "quarantined after a write fault";
    case ShardHealth::kRecovering:
      return "recovery in progress";
    case ShardHealth::kPinnedReadOnly:
      return "pinned read-only by the circuit breaker";
    default:
      return "unavailable";
  }
}

/// Deadline-budgeted per-shard execution: when a deadline is set, the
/// shard's batch runs in bounded chunks with the budget re-checked
/// between chunks.  Chunking is result-invariant (the PR 5 batch
/// split-invariance guarantee), so merged output is bit-identical to a
/// single-shot query; only the typed-expiry granularity changes.
constexpr size_t kDeadlineChunkQueries = 32;

QueryRequest SliceRequest(const QueryRequest& request, size_t begin,
                          size_t count) {
  QueryRequest sub;
  sub.type = request.type;
  sub.radius = request.radius;
  sub.k = request.k;
  sub.batch.assign(request.batch.begin() + begin,
                   request.batch.begin() + begin + count);
  if (!request.radii.empty()) {
    sub.radii.assign(request.radii.begin() + begin,
                     request.radii.begin() + begin + count);
  }
  if (!request.ks.empty()) {
    sub.ks.assign(request.ks.begin() + begin,
                  request.ks.begin() + begin + count);
  }
  return sub;
}

void AppendChunk(QueryResult* acc, QueryResult&& part) {
  for (auto& v : part.ids) acc->ids.push_back(std::move(v));
  for (auto& v : part.neighbors) acc->neighbors.push_back(std::move(v));
  acc->stats += part.stats;
}

}  // namespace

Status ShardUnavailableError(uint32_t shard, double retry_after_ms,
                             const std::string& detail) {
  char hint[48];
  if (retry_after_ms < 0) {
    std::snprintf(hint, sizeof(hint), "manual reset required");
  } else {
    std::snprintf(hint, sizeof(hint), "retry after %.3f ms", retry_after_ms);
  }
  return UnavailableError("shard " + std::to_string(shard) +
                          " unavailable: " + detail + " (" + hint + ")");
}

// -- construction -------------------------------------------------------------

StatusOr<std::unique_ptr<ShardedService>> ShardedService::Build(
    const MetricDBConfig& config, Dataset data, const ServiceOptions& sopts,
    const std::string& dir, const DurabilityOptions& dopts, bool durable) {
  if (sopts.num_shards < 1) {
    return InvalidArgumentError("num_shards must be >= 1");
  }
  if (data.empty()) return InvalidArgumentError("dataset must be non-empty");
  if (sopts.self_heal && !durable) {
    return InvalidArgumentError(
        "self_heal requires a durable service (recovery replays the "
        "shard's WAL/checkpoint chain)");
  }
  auto router = std::make_shared<ShardRouter>(
      static_cast<uint32_t>(data.size()), sopts.num_shards);
  for (uint32_t s = 0; s < router->num_shards(); ++s) {
    if (router->shard_size(s) == 0) {
      return InvalidArgumentError(
          "shard " + std::to_string(s) +
          " owns no objects; lower num_shards for this dataset size");
    }
  }

  // One metric parameter, derived from the FULL dataset, pinned into
  // every shard: per-shard derivation could diverge (narrower domain),
  // and FQA's quantization step depends on it.
  MetricDBConfig shard_config = config;
  PMI_ASSIGN_OR_RETURN(
      shard_config.metric_param,
      ResolveMetricParam(config.metric_name, data, config.metric_param));
  // One physical page cache across all shards: cache_bytes is the
  // service-wide budget, not a per-shard one, so N shards cannot use N
  // times the memory.  Shard PA accounting is unaffected (the logical
  // simulation is per PagedFile).
  if (shard_config.options.buffer_pool == nullptr) {
    shard_config.options.buffer_pool = std::make_shared<BufferPool>(
        shard_config.options.page_size, shard_config.options.cache_bytes);
  }

  std::unique_ptr<ShardedService> svc(new ShardedService());
  svc->sopts_ = sopts;
  svc->router_ = router;
  svc->durable_ = durable;
  svc->shard_config_ = shard_config;
  if (durable) {
    svc->dir_ = dir;
    svc->env_ = dopts.env != nullptr ? dopts.env : Env::Default();
    svc->dopts_ = dopts;
    svc->dopts_.env = svc->env_;
    PMI_RETURN_IF_ERROR(svc->env_->CreateDir(dir));
  }
  svc->slots_.reserve(router->num_shards());
  for (uint32_t s = 0; s < router->num_shards(); ++s) {
    Dataset shard_data = SplitShard(data, router->members(s));
    StatusOr<MetricDB> db =
        durable ? MetricDB::CreateDurable(shard_config, std::move(shard_data),
                                          ShardDirName(dir, s), dopts)
                : MetricDB::Create(shard_config, std::move(shard_data));
    if (!db.ok()) return db.status();
    auto slot = std::make_unique<ShardSlot>();
    slot->db = std::make_shared<MetricDB>(std::move(*db));
    svc->slots_.push_back(std::move(slot));
  }
  if (durable) {
    PMI_RETURN_IF_ERROR(WriteMeta(svc->env_, dir, router->num_shards(),
                                  router->size()));
  }
  svc->queue_ = std::make_unique<AdmissionQueue>(sopts.workers, sopts.max_queue);
  if (durable && sopts.self_heal) {
    svc->supervisor_ =
        std::make_unique<ShardSupervisor>(svc.get(), sopts.supervisor);
    svc->supervisor_->Start();
  }
  return svc;
}

StatusOr<std::unique_ptr<ShardedService>> ShardedService::Create(
    const MetricDBConfig& config, Dataset data, const ServiceOptions& sopts) {
  return Build(config, std::move(data), sopts, "", DurabilityOptions{},
               /*durable=*/false);
}

StatusOr<std::unique_ptr<ShardedService>> ShardedService::CreateDurable(
    const MetricDBConfig& config, Dataset data, const std::string& dir,
    const ServiceOptions& sopts, const DurabilityOptions& dopts) {
  return Build(config, std::move(data), sopts, dir, dopts, /*durable=*/true);
}

StatusOr<std::unique_ptr<ShardedService>> ShardedService::OpenDurable(
    const std::string& dir, const ServiceOptions& sopts,
    const DurabilityOptions& dopts) {
  Env* env = dopts.env != nullptr ? dopts.env : Env::Default();
  uint32_t num_shards = 0;
  uint32_t objects = 0;
  PMI_RETURN_IF_ERROR(ReadMeta(env, dir, &num_shards, &objects));

  std::unique_ptr<ShardedService> svc(new ShardedService());
  svc->sopts_ = sopts;
  svc->sopts_.num_shards = num_shards;
  svc->router_ = std::make_shared<ShardRouter>(objects, num_shards);
  svc->durable_ = true;
  svc->dir_ = dir;
  svc->env_ = env;
  svc->dopts_ = dopts;
  svc->dopts_.env = env;
  svc->slots_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    StatusOr<MetricDB> db = MetricDB::OpenDurable(ShardDirName(dir, s), dopts);
    if (!db.ok()) return db.status();
    if (db->dataset().size() != svc->router_->shard_size(s)) {
      return DataLossError("shard " + std::to_string(s) +
                           " dataset size does not match the SERVICE meta");
    }
    auto slot = std::make_unique<ShardSlot>();
    slot->db = std::make_shared<MetricDB>(std::move(*db));
    svc->slots_.push_back(std::move(slot));
  }
  svc->shard_config_ = svc->slots_[0]->db->config();
  svc->queue_ = std::make_unique<AdmissionQueue>(svc->sopts_.workers,
                                                 svc->sopts_.max_queue);
  if (svc->sopts_.self_heal) {
    svc->supervisor_ =
        std::make_unique<ShardSupervisor>(svc.get(), svc->sopts_.supervisor);
    svc->supervisor_->Start();
  }
  return svc;
}

Status ShardedService::Close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return OkStatus();
  // Supervisor first: after Stop() returns no recovery attempt is in
  // flight, so every slot's instance (possibly freshly swapped) is ours
  // to close.
  if (supervisor_ != nullptr) supervisor_->Stop();
  queue_->Shutdown();
  Status first;
  for (std::unique_ptr<ShardSlot>& slot : slots_) {
    std::shared_ptr<MetricDB> db;
    {
      std::lock_guard<std::mutex> lock(slot->mu);
      db = std::move(slot->db);
      slot->stale_view.reset();
    }
    if (db == nullptr) continue;  // abandoned mid-recovery
    Status s = db->Close();
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

ShardedService::~ShardedService() {
  if (queue_ != nullptr) Close();
}

const MetricDBConfig& ShardedService::config() const { return shard_config_; }

std::string ShardedService::ShardDir(uint32_t s) const {
  return ShardDirName(dir_, s);
}

ShardedService::SlotView ShardedService::SnapshotSlot(uint32_t shard) const {
  const ShardSlot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mu);
  return SlotView{slot.db, slot.health, slot.stale_view, slot.retry_after_ms};
}

// -- request path -------------------------------------------------------------

ShardedService::Deadline ShardedService::ResolveDeadline(
    const RequestOptions& opts) const {
  const double ms =
      opts.deadline_ms.has_value() ? *opts.deadline_ms : sopts_.default_deadline_ms;
  if (ms < 0) return std::nullopt;
  return SteadyClock::now() +
         std::chrono::duration_cast<SteadyClock::duration>(
             std::chrono::duration<double, std::milli>(ms));
}

template <typename T>
T ShardedService::Submit(const Deadline& deadline, std::function<T()> fn) const {
  struct Slot {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::optional<T> result;
  };
  // shared_ptr: during shutdown the drain may complete a task after the
  // submitter's stack frame would normally be the only owner.
  auto slot = std::make_shared<Slot>();
  bool accepted =
      queue_->TrySubmit([this, deadline, fn = std::move(fn), slot] {
        std::optional<T> r;
        if (Expired(deadline)) {
          deadline_expired_.fetch_add(1, std::memory_order_relaxed);
          r.emplace(
              DeadlineExceededError("request deadline expired while queued"));
        } else {
          r.emplace(fn());
        }
        {
          std::lock_guard<std::mutex> lock(slot->m);
          slot->result = std::move(r);
          slot->done = true;
        }
        slot->cv.notify_all();
      });
  if (!accepted) {
    return T(ResourceExhaustedError(
        "admission queue full (capacity " + std::to_string(sopts_.max_queue) +
        ") or service shutting down"));
  }
  std::unique_lock<std::mutex> lock(slot->m);
  slot->cv.wait(lock, [&] { return slot->done; });
  return std::move(*slot->result);
}

StatusOr<QueryResult> ShardedService::ExecuteQuery(const QueryRequest& request,
                                                   const Deadline& deadline) const {
  SteadyClock::time_point t0 = SteadyClock::now();

  // Chunked single-source execution with the deadline budget re-checked
  // between chunks (see kDeadlineChunkQueries).
  auto run_chunked =
      [&](const std::function<StatusOr<QueryResult>(const QueryRequest&)>& run)
      -> StatusOr<QueryResult> {
    if (!deadline.has_value() ||
        request.batch.size() <= kDeadlineChunkQueries) {
      return run(request);
    }
    QueryResult acc;
    for (size_t begin = 0; begin < request.batch.size();
         begin += kDeadlineChunkQueries) {
      if (Expired(deadline)) {
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
        return DeadlineExceededError(
            "request deadline expired mid-shard (deadline budget "
            "propagates into per-shard chunks)");
      }
      const size_t count =
          std::min(kDeadlineChunkQueries, request.batch.size() - begin);
      StatusOr<QueryResult> part = run(SliceRequest(request, begin, count));
      if (!part.ok()) return part.status();
      AppendChunk(&acc, std::move(*part));
    }
    return acc;
  };

  std::vector<QueryResult> per_shard;
  per_shard.reserve(slots_.size());
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    if (Expired(deadline)) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      return DeadlineExceededError("request deadline expired mid-gather");
    }
    SlotView sv = SnapshotSlot(s);
    StatusOr<QueryResult> r = [&]() -> StatusOr<QueryResult> {
      if (sv.health == ShardHealth::kHealthy && sv.db != nullptr) {
        // Versioned shards answer at a pinned epoch version; indexes
        // without clone support fall back to the shard's serialized
        // path.
        StatusOr<MetricDB::ReadView> view = sv.db->GetReadView();
        StatusOr<QueryResult> live =
            view.ok()
                ? run_chunked(
                      [&](const QueryRequest& q) { return view->Query(q); })
                : run_chunked(
                      [&](const QueryRequest& q) { return sv.db->Query(q); });
        if (live.ok() ||
            live.status().code() == StatusCode::kDeadlineExceeded) {
          return live;
        }
        // The instance may have been hot-swapped (closed) under us; if
        // the slot left the healthy state, fall back to its stale view
        // rather than surfacing an untyped internal error.
        sv = SnapshotSlot(s);
        if (sv.health == ShardHealth::kHealthy) return live;
      }
      if (sv.stale_view.has_value()) {
        return run_chunked(
            [&](const QueryRequest& q) { return sv.stale_view->Query(q); });
      }
      return ShardUnavailableError(
          s, sv.retry_after_ms,
          std::string(HealthDetail(sv.health)) + ", no stale view");
    }();
    if (!r.ok()) return r.status();
    per_shard.push_back(std::move(*r));
  }
  QueryResult merged =
      MergeShardResults(*router_, request, std::move(per_shard));
  merged.stats.seconds = SecondsSince(t0);
  return merged;
}

StatusOr<ApplyResult> ShardedService::ExecuteApply(
    const std::vector<UpdateOp>& ops, const RequestOptions& opts,
    const Deadline& deadline) {
  if (Expired(deadline)) {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    return DeadlineExceededError("request deadline expired while queued");
  }
  // Route to owning shards, rewriting to local ids; op order within a
  // shard follows batch order, so per-shard liveness validation sees
  // the same sequence an unsharded Apply would.
  std::vector<std::vector<UpdateOp>> routed(slots_.size());
  for (const UpdateOp& op : ops) {
    routed[router_->shard_of(op.id)].push_back(
        {op.op, router_->local_of(op.id)});
  }
  ApplyResult result;
  result.shard_status.resize(slots_.size());
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    if (routed[s].empty()) continue;
    // Budget check BEFORE dispatch: an expired shard gets a typed
    // pre-dispatch kDeadlineExceeded with nothing applied there, so the
    // retry layer may safely re-send that sub-batch.
    if (Expired(deadline)) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      result.shard_status[s] = DeadlineExceededError(
          "request deadline expired before dispatch to shard " +
          std::to_string(s));
      continue;
    }
    SlotView sv = SnapshotSlot(s);
    if (sv.health != ShardHealth::kHealthy || sv.db == nullptr) {
      result.shard_status[s] =
          ShardUnavailableError(s, sv.retry_after_ms, HealthDetail(sv.health));
      continue;
    }
    MetricDB::ApplyOptions aopts;
    if (s < opts.sequence_fences.size() &&
        opts.sequence_fences[s].has_value()) {
      aopts.expected_sequence = *opts.sequence_fences[s];
    }
    Status st = sv.db->Apply(routed[s], aopts);
    if (!st.ok()) {
      if (st.code() == StatusCode::kUnavailable) {
        // Fresh write fault: the shard just went sticky read-only.
        // Wake the supervisor so quarantine does not wait out the poll.
        if (supervisor_ != nullptr) supervisor_->Nudge();
      } else if (!IsSequenceFenceMismatch(st)) {
        // A hot-swap may have closed the instance between our snapshot
        // and the Apply; keep the error typed for the retry layer.
        SlotView now = SnapshotSlot(s);
        if (now.health != ShardHealth::kHealthy) {
          st = ShardUnavailableError(
              s, now.retry_after_ms,
              std::string(HealthDetail(now.health)) + " (" + st.message() +
                  ")");
        }
      }
    }
    result.shard_status[s] = st;
  }
  return result;
}

StatusOr<QueryResult> ShardedService::Query(const QueryRequest& request,
                                            const RequestOptions& opts) const {
  if (closed_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("service is closed");
  }
  Deadline deadline = ResolveDeadline(opts);
  return Submit<StatusOr<QueryResult>>(
      deadline, [this, &request, deadline] {
        return ExecuteQuery(request, deadline);
      });
}

StatusOr<ApplyResult> ShardedService::Apply(const std::vector<UpdateOp>& ops,
                                            const RequestOptions& opts) {
  if (closed_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("service is closed");
  }
  for (const UpdateOp& op : ops) {
    if (op.id >= router_->size()) {
      return InvalidArgumentError("update id " + std::to_string(op.id) +
                                  " out of range [0, " +
                                  std::to_string(router_->size()) + ")");
    }
  }
  Deadline deadline = ResolveDeadline(opts);
  return Submit<StatusOr<ApplyResult>>(deadline, [this, &ops, &opts, deadline] {
    return ExecuteApply(ops, opts, deadline);
  });
}

Status ShardedService::Insert(ObjectId id) {
  StatusOr<ApplyResult> r = Apply({UpdateOp::Insert(id)});
  return r.ok() ? r->Collapse() : r.status();
}

Status ShardedService::Remove(ObjectId id) {
  StatusOr<ApplyResult> r = Apply({UpdateOp::Remove(id)});
  return r.ok() ? r->Collapse() : r.status();
}

Status ShardedService::Checkpoint() {
  if (closed_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("service is closed");
  }
  Status first;
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    SlotView sv = SnapshotSlot(s);
    Status st = (sv.health == ShardHealth::kHealthy && sv.db != nullptr)
                    ? sv.db->Checkpoint()
                    : ShardUnavailableError(s, sv.retry_after_ms,
                                            HealthDetail(sv.health));
    if (first.ok() && !st.ok()) first = st;
  }
  return first;
}

// -- read views ---------------------------------------------------------------

StatusOr<ShardedService::ReadView> ShardedService::GetReadView() const {
  if (closed_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("service is closed");
  }
  std::vector<MetricDB::ReadView> views;
  views.reserve(slots_.size());
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    SlotView sv = SnapshotSlot(s);
    if (sv.health == ShardHealth::kHealthy && sv.db != nullptr) {
      StatusOr<MetricDB::ReadView> view = sv.db->GetReadView();
      if (!view.ok()) return view.status();
      views.push_back(std::move(*view));
    } else if (sv.stale_view.has_value()) {
      // Quarantined/recovering shards pin their quarantine-time view:
      // still one consistent version, just not the freshest.
      views.push_back(*sv.stale_view);
    } else {
      return ShardUnavailableError(
          s, sv.retry_after_ms,
          std::string(HealthDetail(sv.health)) + ", no stale view");
    }
  }
  return ReadView(router_, std::move(views));
}

std::vector<uint64_t> ShardedService::ReadView::sequences() const {
  std::vector<uint64_t> out;
  out.reserve(shards_.size());
  for (const MetricDB::ReadView& v : shards_) out.push_back(v.sequence());
  return out;
}

bool ShardedService::ReadView::alive(ObjectId id) const {
  if (id >= router_->size()) return false;
  return shards_[router_->shard_of(id)].alive(router_->local_of(id));
}

StatusOr<QueryResult> ShardedService::ReadView::Query(
    const QueryRequest& request) const {
  return GatherAtViews(*router_, shards_, request);
}

// -- self-healing -------------------------------------------------------------

std::vector<ShardHealthReport> ShardedService::health() const {
  std::vector<ShardHealthReport> out;
  out.reserve(slots_.size());
  for (const std::unique_ptr<ShardSlot>& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    ShardHealthReport r;
    r.health = slot->health;
    r.last_error = slot->last_error;
    r.attempts = slot->attempts;
    r.retry_after_ms = slot->retry_after_ms;
    out.push_back(std::move(r));
  }
  return out;
}

Status ShardedService::ResetShard(uint32_t shard) {
  if (shard >= slots_.size()) {
    return InvalidArgumentError("shard " + std::to_string(shard) +
                                " out of range [0, " +
                                std::to_string(slots_.size()) + ")");
  }
  if (supervisor_ == nullptr) {
    return FailedPreconditionError(
        "service has no supervisor (ServiceOptions::self_heal is off)");
  }
  ShardSlot& slot = *slots_[shard];
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.health == ShardHealth::kHealthy) {
      return FailedPreconditionError("shard " + std::to_string(shard) +
                                     " is healthy; nothing to reset");
    }
    slot.attempts = 0;
    if (slot.backoff != nullptr) slot.backoff->Reset();
    slot.retry_after_ms = 0;
    slot.next_attempt = SteadyClock::now();
    // A recovery attempt already in flight keeps running; it simply
    // counts from zero now.  Pinned shards re-enter the retry loop.
    if (slot.health == ShardHealth::kPinnedReadOnly) {
      slot.health = ShardHealth::kQuarantined;
    }
  }
  supervisor_->Nudge();
  return OkStatus();
}

// -- introspection ------------------------------------------------------------

bool ShardedService::alive(ObjectId id) const {
  if (id >= router_->size()) return false;
  const uint32_t s = router_->shard_of(id);
  const ObjectId local = router_->local_of(id);
  SlotView sv = SnapshotSlot(s);
  if (sv.health == ShardHealth::kHealthy && sv.db != nullptr) {
    return sv.db->alive(local);
  }
  if (sv.stale_view.has_value()) return sv.stale_view->alive(local);
  return false;
}

std::vector<uint64_t> ShardedService::sequences() const {
  std::vector<uint64_t> out;
  out.reserve(slots_.size());
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    SlotView sv = SnapshotSlot(s);
    if (sv.health == ShardHealth::kHealthy && sv.db != nullptr) {
      out.push_back(sv.db->last_sequence());
    } else if (sv.stale_view.has_value()) {
      out.push_back(sv.stale_view->sequence());
    } else {
      out.push_back(0);
    }
  }
  return out;
}

std::vector<Status> ShardedService::write_statuses() const {
  std::vector<Status> out;
  out.reserve(slots_.size());
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    SlotView sv = SnapshotSlot(s);
    if (sv.health == ShardHealth::kHealthy && sv.db != nullptr) {
      out.push_back(sv.db->write_status());
    } else {
      out.push_back(
          ShardUnavailableError(s, sv.retry_after_ms, HealthDetail(sv.health)));
    }
  }
  return out;
}

std::vector<uint32_t> ShardedService::shard_sizes() const {
  std::vector<uint32_t> out;
  out.reserve(router_->num_shards());
  for (uint32_t s = 0; s < router_->num_shards(); ++s) {
    out.push_back(router_->shard_size(s));
  }
  return out;
}

ShardedService::ServiceStats ShardedService::stats() const {
  return {queue_->stats(), deadline_expired_.load(std::memory_order_relaxed)};
}

}  // namespace pmi
