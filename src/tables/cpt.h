// CPT -- Clustered Pivot Table (Mosko, Lokoc, Skopal [20]; Section 3.3).
//
// Keeps the LAESA distance table in main memory but moves the objects
// themselves into a disk-resident M-tree so similar objects cluster on
// the same pages.  Each table row carries a pointer to the M-tree leaf
// holding its object; a candidate that survives Lemma 1 is verified by
// reading that leaf page (the per-candidate I/O the paper charges CPT
// for).  Updates must maintain both structures, which is why Table 6
// ranks CPT near the bottom.

#ifndef PMI_TABLES_CPT_H_
#define PMI_TABLES_CPT_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/index.h"
#include "src/core/pivot_table.h"
#include "src/storage/mtree.h"
#include "src/storage/paged_file.h"

namespace pmi {

/// In-memory pivot table + on-disk M-tree object store.
class Cpt final : public MetricIndex {
 public:
  explicit Cpt(IndexOptions options = {}) : MetricIndex(options) {}

  std::string name() const override { return "CPT"; }
  bool disk_based() const override { return true; }
  // Audited: the query path reads leaf pages through pinned buffer-pool
  // handles and keeps all scratch local; counters (both levels) are
  // redirected per thread by the batch entry points, and the logical LRU
  // simulation is mutex-guarded inside PagedFile.
  bool concurrent_queries() const override { return true; }
  // Batch MRQs run block-major over the in-memory table half; the disk
  // verification phase then replays the query-major page-access sequence
  // exactly (see RangeBatchBlockImpl).  MkNNQ batches stay query-major:
  // the shrinking radius interleaves verification I/O with the scan, so
  // reordering would change which buffer-pool accesses miss -- and PA is
  // an accounted cost here, not a hint.
  bool block_major_batches() const override { return true; }
  size_t memory_bytes() const override;
  size_t disk_bytes() const override;

  /// Read-only view of the in-memory distance table (see Laesa).
  const PivotTable& table() const { return table_; }

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;
  bool RangeBatchBlockImpl(const std::vector<ObjectView>& queries,
                           const double* radii,
                           std::vector<std::vector<ObjectId>>* out,
                           PerfCounters* per_query) const override;
  Status SaveImpl(ByteSink* out) const override;
  Status LoadImpl(ByteSource* in) override;

 private:
  /// Reads object `id` from its M-tree leaf (charging the page access)
  /// and returns its distance to `q`, early-abandoning past `upper` (see
  /// Metric::BoundedDistance).
  double VerifyFromDisk(const ObjectView& q, ObjectId id,
                        double upper) const;

  std::vector<ObjectId> oids_;
  PivotTable table_;  // columnar in-memory half (same layout as LAESA)
  std::unordered_map<ObjectId, PageId> leaf_of_;  // the table's "ptr" column

  std::unique_ptr<PagedFile> file_;
  std::unique_ptr<MTree> mtree_;
};

}  // namespace pmi

#endif  // PMI_TABLES_CPT_H_
