#include "src/tables/ept.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/core/knn_heap.h"
#include "src/core/pivot_selection.h"
#include "src/core/simd.h"
#include "src/core/rng.h"
#include "src/core/thread_pool.h"

namespace pmi {

void Ept::BuildImpl() {
  l_ = std::max<uint32_t>(1, pivots_.size());
  oids_.clear();
  table_.Reset(l_, /*per_row_pivots=*/true);
  Rng rng(options_.seed ^ 0xe97u);

  if (variant_ == Variant::kClassic) {
    if (options_.ept_group_size > 0) {
      m_ = options_.ept_group_size;
    } else {
      EstimateGroupSize();
    }
    // l groups of m random pivots form one flat pool of m*l entries;
    // group g owns pool indices [g*m, (g+1)*m).
    std::vector<ObjectId> ids =
        SelectPivotsRandom(data(), m_ * l_, rng);
    // Random selection may return fewer ids than requested on tiny
    // datasets; shrink m to fit, then cut the surplus.  SelectClassic
    // indexes the pool as g * m + j, so the pool must hold exactly m * l
    // entries -- when even m = 1 cannot be satisfied (n < l), recycle
    // ids to fill the remaining group slots.
    while (size_t(m_) * l_ > ids.size() && m_ > 1) --m_;
    if (size_t(m_) * l_ <= ids.size()) {
      ids.resize(size_t(m_) * l_);
    } else if (!ids.empty()) {
      const size_t base = ids.size();
      for (size_t i = 0; ids.size() < size_t(m_) * l_; ++i) {
        ids.push_back(ids[i % base]);
      }
    }
    pool_ = PivotSet(data(), ids);
    EstimateMus();
  } else {
    // EPT*: HF outlier candidates (Algorithm 1 line 2, cp_scale = 40)
    // plus the PSA object sample S -- shared with EPT*-disk via
    // PsaSelector.
    DistanceComputer d = dist();
    psa_.Build(data(), d, options_.ept_cp_scale, options_.ept_sample_size,
               options_.seed);
  }

  // The per-object pivot selection (the dominant construction cost) only
  // reads the pool/mu/PSA state fixed above, so the row fill fans out
  // over fixed object chunks with per-thread scratch and counter shards;
  // rows land by index and are bit-identical to the serial fill.
  const uint32_t n = data().size();
  oids_.resize(n);
  table_.ResizeRows(n);
  ThreadPool& pool = ThreadPool::Global();
  std::vector<CounterShard> shards(pool.size());
  ParallelFor(pool, n, [&](size_t begin, size_t end, unsigned slot) {
    DistanceComputer d(&metric(), &shards[slot].counters);
    std::vector<uint32_t> pidx(l_);
    std::vector<double> pdist(l_);
    for (size_t id = begin; id < end; ++id) {
      ComputeRow(ObjectId(id), d, pidx.data(), pdist.data());
      oids_[id] = ObjectId(id);
      table_.SetRow(id, pdist.data(), pidx.data());
    }
  });
  FoldCounters(shards, &counters_);
}

// Equation (1): cost(m) = m*l + n * Pr(object survives all l groups).
// The survival probability is estimated by Monte Carlo on sampled
// (query, object, group) triples at a kNN-typical radius.
void Ept::EstimateGroupSize() {
  DistanceComputer d = dist();
  Rng rng(options_.seed ^ 0x5eed);
  const uint32_t n = data().size();
  const uint32_t kPairs = 128;
  // Radius of a ~20-NN query: the 20/n quantile of pairwise distances.
  std::vector<double> dists;
  dists.reserve(kPairs);
  for (uint32_t i = 0; i < kPairs; ++i) {
    dists.push_back(
        d(data().view(rng() % n), data().view(rng() % n)));
  }
  std::sort(dists.begin(), dists.end());
  double frac = std::min(0.25, std::max(0.001, 20.0 / n));
  double r_hat = dists[size_t(frac * (dists.size() - 1))];

  // Pre-sample pivots/objects/queries once; reuse across m candidates.
  const uint32_t kTrials = 96, kPool = 24;
  std::vector<ObjectId> povs(kPool), objs(kTrials), qrys(kTrials);
  for (auto& x : povs) x = rng() % n;
  for (auto& x : objs) x = rng() % n;
  for (auto& x : qrys) x = rng() % n;
  std::vector<double> mu(kPool, 0);
  std::vector<double> d_op(size_t(kTrials) * kPool), d_qp(size_t(kTrials) * kPool);
  for (uint32_t t = 0; t < kTrials; ++t) {
    for (uint32_t p = 0; p < kPool; ++p) {
      d_op[size_t(t) * kPool + p] = d(data().view(objs[t]), data().view(povs[p]));
      d_qp[size_t(t) * kPool + p] = d(data().view(qrys[t]), data().view(povs[p]));
    }
  }
  for (uint32_t p = 0; p < kPool; ++p) {
    for (uint32_t t = 0; t < kTrials; ++t) mu[p] += d_op[size_t(t) * kPool + p];
    mu[p] /= kTrials;
  }

  double best_cost = std::numeric_limits<double>::max();
  uint32_t best_m = 2;
  for (uint32_t m = 1; m <= 16; m *= 2) {
    double survive = 0;
    for (uint32_t t = 0; t < kTrials; ++t) {
      // One simulated group: m pivots drawn from the pool; the object
      // keeps the pivot with max |d(o,p) - mu_p|.
      uint32_t best_p = 0;
      double best_dev = -1;
      for (uint32_t j = 0; j < m; ++j) {
        uint32_t p = (t + j * 7 + 3) % kPool;  // deterministic spread
        double dev = std::fabs(d_op[size_t(t) * kPool + p] - mu[p]);
        if (dev > best_dev) {
          best_dev = dev;
          best_p = p;
        }
      }
      double lb = std::fabs(d_op[size_t(t) * kPool + best_p] -
                            d_qp[size_t(t) * kPool + best_p]);
      if (lb <= r_hat) survive += 1;
    }
    double p_survive_group = survive / kTrials;
    double cost = double(m) * l_ +
                  double(data().size()) * std::pow(p_survive_group, l_);
    if (cost < best_cost) {
      best_cost = cost;
      best_m = m;
    }
  }
  m_ = std::max<uint32_t>(2, best_m);
}

void Ept::EstimateMus() {
  DistanceComputer d = dist();
  Rng rng(options_.seed ^ 0x3a7);
  uint32_t sample = std::min<uint32_t>(options_.ept_sample_size, data().size());
  pool_mu_.assign(pool_.size(), 0);
  std::vector<ObjectId> ids = SelectPivotsRandom(data(), sample, rng);
  for (uint32_t p = 0; p < pool_.size(); ++p) {
    double sum = 0;
    for (ObjectId id : ids) sum += d(pool_.pivot(p), data().view(id));
    pool_mu_[p] = ids.empty() ? 0 : sum / ids.size();
  }
}

void Ept::SelectClassic(ObjectId id, const DistanceComputer& d,
                        uint32_t* pidx, double* pdist) const {
  ObjectView o = data().view(id);
  for (uint32_t g = 0; g < l_; ++g) {
    uint32_t best = g * m_;
    double best_dev = -1, best_d = 0;
    for (uint32_t j = 0; j < m_; ++j) {
      uint32_t p = g * m_ + j;
      double dd = d(o, pool_.pivot(p));
      double dev = std::fabs(dd - pool_mu_[p]);
      if (dev > best_dev) {
        best_dev = dev;
        best = p;
        best_d = dd;
      }
    }
    pidx[g] = best;
    pdist[g] = best_d;
  }
}

void Ept::SelectStar(ObjectId id, const DistanceComputer& d, uint32_t* pidx,
                     double* pdist) const {
  psa_.SelectForObject(data().view(id), d, l_, pidx, pdist);
}

void Ept::ComputeRow(ObjectId id, const DistanceComputer& d, uint32_t* pidx,
                     double* pdist) const {
  if (variant_ == Variant::kClassic) {
    SelectClassic(id, d, pidx, pdist);
  } else {
    SelectStar(id, d, pidx, pdist);
  }
}

void Ept::AppendRow(ObjectId id) {
  // Member scratch: the serial insert path is timed per operation, so
  // per-call vector allocations would show up as malloc noise in the
  // update measurements.  (The parallel build uses per-thread locals
  // instead -- this scratch is never touched concurrently.)
  DistanceComputer d = dist();
  row_pidx_.resize(l_);
  row_pdist_.resize(l_);
  ComputeRow(id, d, row_pidx_.data(), row_pdist_.data());
  oids_.push_back(id);
  table_.AppendRow(row_pdist_.data(), row_pidx_.data());
}

void Ept::MapQueryToPool(const ObjectView& q, std::vector<double>* out) const {
  MapQueryToPool(q, dist(), out);
}

void Ept::MapQueryToPool(const ObjectView& q, const DistanceComputer& d,
                         std::vector<double>* out) const {
  const PivotSet& pool = query_pool();
  out->resize(pool.size());
  for (uint32_t p = 0; p < pool.size(); ++p) (*out)[p] = d(q, pool.pivot(p));
}

void Ept::RangeImpl(const ObjectView& q, double r,
                    std::vector<ObjectId>* out) const {
  DistanceComputer d = dist();
  std::vector<double> d_qp;
  MapQueryToPool(q, &d_qp);
  std::vector<uint32_t> candidates;
  table_.RangeScanIndirect(d_qp.data(),
                           static_cast<uint32_t>(d_qp.size()), r,
                           &candidates);
  VerifyCandidatesWithPrefetch(candidates, oids_, data(), d, q, r, out);
}

void Ept::KnnImpl(const ObjectView& q, size_t k,
                  std::vector<Neighbor>* out) const {
  DistanceComputer d = dist();
  std::vector<double> d_qp;
  MapQueryToPool(q, &d_qp);
  KnnHeap heap(k);
  table_.ScanDynamicIndirect(
      d_qp.data(), static_cast<uint32_t>(d_qp.size()),
      [&] { return heap.radius(); },
      [&](size_t row) {
        const ObjectId id = oids_[row];
        heap.Push(id, d.Bounded(q, data().view(id), heap.radius()));
      },
      [&](size_t row) {
        PrefetchRead(data().view(oids_[row]).payload_ptr());
      });
  heap.TakeSorted(out);
}

// Block-major batch paths: the indirect-form mirror of Laesa's (see
// laesa.cc) -- queries map against the pivot pool, then the per-row-
// pivot table streams once per query chunk via ScanBlockMajorIndirect.
bool Ept::RangeBatchBlockImpl(const std::vector<ObjectView>& queries,
                              const double* radii,
                              std::vector<std::vector<ObjectId>>* out,
                              PerfCounters* per_query) const {
  ParallelQueryChunks(
      concurrent_queries(), queries.size(), [&](size_t qb, size_t qe) {
        const size_t m = qe - qb;
        // Worker-private shards, folded once at chunk end (see
        // Laesa::RangeBatchBlockImpl).
        std::vector<PerfCounters> local(m);
        std::vector<std::vector<double>> d_qp(m);
        for (size_t j = 0; j < m; ++j) {
          DistanceComputer d(&metric(), &local[j]);
          MapQueryToPool(queries[qb + j], d, &d_qp[j]);
        }
        table_.ScanBlockMajorIndirect(
            m, query_pool().size(), [&](size_t j) { return d_qp[j].data(); },
            [&](size_t j) { return radii[qb + j]; },
            [&](size_t j, size_t row) {
              const size_t i = qb + j;
              const ObjectId id = oids_[row];
              DistanceComputer d(&metric(), &local[j]);
              if (d.Bounded(queries[i], data().view(id), radii[i]) <=
                  radii[i]) {
                (*out)[i].push_back(id);
              }
            },
            [&](size_t, size_t row) {
              PrefetchRead(data().view(oids_[row]).payload_ptr());
            });
        for (size_t j = 0; j < m; ++j) per_query[qb + j] += local[j];
      });
  return true;
}

bool Ept::KnnBatchBlockImpl(const std::vector<ObjectView>& queries,
                            const size_t* ks,
                            std::vector<std::vector<Neighbor>>* out,
                            PerfCounters* per_query) const {
  ParallelQueryChunks(
      concurrent_queries(), queries.size(), [&](size_t qb, size_t qe) {
        const size_t m = qe - qb;
        std::vector<PerfCounters> local(m);  // see RangeBatchBlockImpl
        std::vector<std::vector<double>> d_qp(m);
        std::vector<KnnHeap> heaps;
        heaps.reserve(m);
        for (size_t j = 0; j < m; ++j) {
          DistanceComputer d(&metric(), &local[j]);
          MapQueryToPool(queries[qb + j], d, &d_qp[j]);
          heaps.emplace_back(ks[qb + j]);
        }
        table_.ScanBlockMajorIndirect(
            m, query_pool().size(), [&](size_t j) { return d_qp[j].data(); },
            [&](size_t j) { return heaps[j].radius(); },
            [&](size_t j, size_t row) {
              const size_t i = qb + j;
              const ObjectId id = oids_[row];
              DistanceComputer d(&metric(), &local[j]);
              heaps[j].Push(
                  id, d.Bounded(queries[i], data().view(id),
                                heaps[j].radius()));
            },
            [&](size_t, size_t row) {
              PrefetchRead(data().view(oids_[row]).payload_ptr());
            });
        for (size_t j = 0; j < m; ++j) {
          heaps[j].TakeSorted(&(*out)[qb + j]);
          per_query[qb + j] += local[j];
        }
      });
  return true;
}

void Ept::InsertImpl(ObjectId id) {
  if (variant_ == Variant::kClassic) {
    // The mean distances the selection criterion relies on drift as the
    // dataset changes, so classic EPT re-estimates them per insertion --
    // the high estimation cost the paper reports in Table 6.
    EstimateMus();
  }
  AppendRow(id);
}

void Ept::RemoveImpl(ObjectId id) {
  // O(n) victim scan, then O(l) swap-with-last compaction -- the scan
  // table is order-independent.
  for (size_t i = 0; i < oids_.size(); ++i) {
    if (oids_[i] != id) continue;
    oids_[i] = oids_.back();
    oids_.pop_back();
    table_.RemoveRowSwap(i);
    return;
  }
}

std::unique_ptr<MetricIndex> Ept::Clone() const {
  auto clone = std::make_unique<Ept>(variant_, options_);
  clone->CopyBaseFrom(*this);
  clone->l_ = l_;
  clone->m_ = m_;
  clone->pool_ = pool_;
  clone->pool_mu_ = pool_mu_;
  clone->psa_ = psa_;  // PivotSet/PivotTable members copy COW-shared
  clone->oids_ = oids_;
  clone->table_ = table_;  // copy-on-write: shares all 256-row blocks
  return clone;
}

Status Ept::SaveImpl(ByteSink* out) const {
  out->PutU8(variant_ == Variant::kClassic ? 0 : 1);
  out->PutU32(l_);
  out->PutU32(m_);
  SerializePivotSet(pool_, out);
  out->PutVector(pool_mu_);
  psa_.SerializeTo(out);
  out->PutVector(oids_);
  SerializePivotTable(table_, out);
  return OkStatus();
}

Status Ept::LoadImpl(ByteSource* in) {
  // Restores the pivot pool (own or PSA's), the per-pivot means, and the
  // per-row-pivot table verbatim -- no distance computations.
  uint8_t variant = 0;
  PMI_RETURN_IF_ERROR(in->GetU8(&variant));
  if (variant != (variant_ == Variant::kClassic ? 0 : 1)) {
    return DataLossError("EPT snapshot variant does not match this index");
  }
  PMI_RETURN_IF_ERROR(in->GetU32(&l_));
  PMI_RETURN_IF_ERROR(in->GetU32(&m_));
  PMI_ASSIGN_OR_RETURN(pool_, DeserializePivotSet(in));
  PMI_RETURN_IF_ERROR(in->GetVector(&pool_mu_));
  PMI_RETURN_IF_ERROR(psa_.DeserializeFrom(in));
  PMI_RETURN_IF_ERROR(in->GetVector(&oids_));
  PMI_RETURN_IF_ERROR(DeserializePivotTable(in, &table_));
  if (!table_.per_row_pivots() || table_.width() != l_ ||
      table_.rows() != oids_.size() || pool_mu_.size() != pool_.size()) {
    return DataLossError("EPT snapshot state is inconsistent");
  }
  // The query scan gathers d(q, pool[c]) by stored pool index; an
  // out-of-range index in a damaged snapshot must fail the load, not the
  // first query.
  const uint32_t pool_size = query_pool().size();
  for (uint32_t slot = 0; slot < table_.width(); ++slot) {
    for (size_t row = 0; row < table_.rows(); ++row) {
      if (table_.pivot_index(row, slot) >= pool_size) {
        return DataLossError("EPT snapshot references a pivot outside pool");
      }
    }
  }
  for (ObjectId id : oids_) {
    if (id >= data().size()) {
      return DataLossError("EPT snapshot references object " +
                           std::to_string(id) + " outside the dataset");
    }
  }
  return OkStatus();
}

size_t Ept::memory_bytes() const {
  return table_.memory_bytes() + oids_.size() * sizeof(ObjectId) +
         pool_.memory_bytes() + psa_.memory_bytes() +
         data().total_payload_bytes();
}

}  // namespace pmi
