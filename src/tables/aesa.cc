#include "src/tables/aesa.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/core/knn_heap.h"

namespace pmi {

void Aesa::BuildImpl() {
  n_ = data().size();
  assert(n_ <= 20000 && "AESA is quadratic; use LAESA for larger datasets");
  matrix_.assign(size_t(n_) * n_, 0);
  live_.assign(n_, true);
  DistanceComputer d = dist();
  for (ObjectId i = 0; i < n_; ++i) {
    for (ObjectId j = i + 1; j < n_; ++j) {
      double dd = d(data().view(i), data().view(j));
      matrix_[size_t(i) * n_ + j] = dd;
      matrix_[size_t(j) * n_ + i] = dd;
    }
  }
}

// Successive pivoting shared by both query types: repeatedly verify the
// active object with the smallest lower bound, using its true distance to
// tighten every other active object's bound via the matrix row.
void Aesa::RangeImpl(const ObjectView& q, double r,
                     std::vector<ObjectId>* out) const {
  DistanceComputer d = dist();
  std::vector<double> lb(n_, 0);
  std::vector<bool> active = live_;
  while (true) {
    ObjectId best = kInvalidObjectId;
    double best_lb = std::numeric_limits<double>::infinity();
    for (ObjectId i = 0; i < n_; ++i) {
      if (active[i] && lb[i] < best_lb) {
        best_lb = lb[i];
        best = i;
      }
    }
    if (best == kInvalidObjectId || best_lb > r) break;
    active[best] = false;
    double dq = d(q, data().view(best));
    if (dq <= r) out->push_back(best);
    const double* mrow = &matrix_[size_t(best) * n_];
    for (ObjectId i = 0; i < n_; ++i) {
      if (active[i]) lb[i] = std::max(lb[i], std::fabs(dq - mrow[i]));
    }
  }
}

void Aesa::KnnImpl(const ObjectView& q, size_t k,
                   std::vector<Neighbor>* out) const {
  DistanceComputer d = dist();
  KnnHeap heap(k);
  std::vector<double> lb(n_, 0);
  std::vector<bool> active = live_;
  while (true) {
    ObjectId best = kInvalidObjectId;
    double best_lb = std::numeric_limits<double>::infinity();
    for (ObjectId i = 0; i < n_; ++i) {
      if (active[i] && lb[i] < best_lb) {
        best_lb = lb[i];
        best = i;
      }
    }
    if (best == kInvalidObjectId || best_lb > heap.radius()) break;
    active[best] = false;
    double dq = d(q, data().view(best));
    heap.Push(best, dq);
    const double* mrow = &matrix_[size_t(best) * n_];
    for (ObjectId i = 0; i < n_; ++i) {
      if (active[i]) lb[i] = std::max(lb[i], std::fabs(dq - mrow[i]));
    }
  }
  heap.TakeSorted(out);
}

void Aesa::InsertImpl(ObjectId id) {
  // The matrix row/column is recomputed: re-insertion costs n distances,
  // the honest price of keeping the full matrix current.
  DistanceComputer d = dist();
  for (ObjectId j = 0; j < n_; ++j) {
    if (j == id || !live_[j]) continue;
    double dd = d(data().view(id), data().view(j));
    matrix_[size_t(id) * n_ + j] = dd;
    matrix_[size_t(j) * n_ + id] = dd;
  }
  live_[id] = true;
}

void Aesa::RemoveImpl(ObjectId id) { live_[id] = false; }

size_t Aesa::memory_bytes() const {
  return matrix_.size() * sizeof(double) + live_.size() / 8 +
         data().total_payload_bytes();
}

}  // namespace pmi
