// LAESA -- Linear AESA (Mico, Oncina, Carrasco [19]; Section 3.1).
//
// Stores the distances from every object to each of the |P| shared pivots
// in a flat table.  MRQ computes the |P| query-pivot distances, then scans
// the table pruning with Lemma 1; MkNNQ scans in storage order with a
// radius tightened by the running kth-NN distance -- the paper notes this
// order is suboptimal, and the measured costs reflect that faithfully.
//
// The table is held in the columnar PivotTable layout and survivors are
// verified with the threshold-aware distance kernels; both decisions and
// results are identical to the naive row-major scan, only faster (see
// src/core/pivot_table.h and bench/bench_micro_scan.cc).
//
// Deletion scans the id column for the victim row (the sequential-deletion
// cost the paper attributes to the table-based indexes in Section 6.3),
// then compacts by swapping the last row in -- scan tables are
// order-independent, so no O(n) shift is needed.

#ifndef PMI_TABLES_LAESA_H_
#define PMI_TABLES_LAESA_H_

#include <vector>

#include "src/core/index.h"
#include "src/core/pivot_table.h"

namespace pmi {

/// Pivot table over the shared pivot set.
class Laesa final : public MetricIndex {
 public:
  explicit Laesa(IndexOptions options = {}) : MetricIndex(options) {}

  std::string name() const override { return "LAESA"; }
  bool disk_based() const override { return false; }
  // Audited: the query path uses only local state + dist() (counters
  // are redirected per thread by the batch entry points).
  bool concurrent_queries() const override { return true; }
  // Batches run block-major: one pivot-table pass for the whole batch
  // (src/core/pivot_table.h ScanBlockMajor), bit-identical to the
  // query-major loop.
  bool block_major_batches() const override { return true; }
  std::unique_ptr<MetricIndex> Clone() const override;
  size_t memory_bytes() const override;

  /// Read-only view of the distance table (thread-invariance tests pin
  /// its contents bit-for-bit against the serial build).
  const PivotTable& table() const { return table_; }

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;
  bool RangeBatchBlockImpl(const std::vector<ObjectView>& queries,
                           const double* radii,
                           std::vector<std::vector<ObjectId>>* out,
                           PerfCounters* per_query) const override;
  bool KnnBatchBlockImpl(const std::vector<ObjectView>& queries,
                         const size_t* ks,
                         std::vector<std::vector<Neighbor>>* out,
                         PerfCounters* per_query) const override;
  Status SaveImpl(ByteSink* out) const override;
  Status LoadImpl(ByteSource* in) override;

 private:
  std::vector<ObjectId> oids_;  // row -> object id
  PivotTable table_;            // columnar |rows| x |P|
};

}  // namespace pmi

#endif  // PMI_TABLES_LAESA_H_
