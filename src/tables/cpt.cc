#include "src/tables/cpt.h"

#include <cassert>

#include "src/core/knn_heap.h"
#include "src/core/thread_pool.h"

namespace pmi {

void Cpt::BuildImpl() {
  const uint32_t l = pivots_.size();
  const uint32_t n = data().size();
  leaf_of_.clear();
  file_ = std::make_unique<PagedFile>(options_.page_size,
                                      options_.cache_bytes, &counters_);
  MTree::Options mo;
  mo.seed = options_.seed;
  mtree_ = std::make_unique<MTree>(
      file_.get(), data_, dist(), mo,
      [this](ObjectId oid, PageId page) { leaf_of_[oid] = page; });

  // The in-memory pivot-table half fills in parallel (same fixed
  // partitioning as LAESA); the M-tree half stays serial because every
  // insert mutates the shared buffer pool and the split sampling RNG.
  // The insert sequence is unchanged, so tree shape, leaf pointers, and
  // total build cost are identical at any thread count.
  oids_.resize(n);
  table_.Reset(l);
  table_.ResizeRows(n);
  ThreadPool& pool = ThreadPool::Global();
  std::vector<CounterShard> shards(pool.size());
  ParallelFor(pool, n, [&](size_t begin, size_t end, unsigned slot) {
    DistanceComputer d(&metric(), &shards[slot].counters);
    std::vector<double> phi;
    for (size_t id = begin; id < end; ++id) {
      pivots_.Map(data().view(ObjectId(id)), d, &phi);
      oids_[id] = ObjectId(id);
      table_.SetRow(id, phi.data());
    }
  });
  FoldCounters(shards, &counters_);
  for (ObjectId id = 0; id < n; ++id) mtree_->Insert(id, {});
  file_->Flush();
}

double Cpt::VerifyFromDisk(const ObjectView& q, ObjectId id,
                           double upper) const {
  auto it = leaf_of_.find(id);
  assert(it != leaf_of_.end());
  MTreeNode node = mtree_->LoadNode(it->second);
  DistanceComputer d = dist();
  for (const auto& e : node.leaves) {
    if (e.oid == id) return d.Bounded(q, mtree_->ViewOf(e.obj), upper);
  }
  assert(false && "leaf pointer out of date");
  return 0;
}

void Cpt::RangeImpl(const ObjectView& q, double r,
                    std::vector<ObjectId>* out) const {
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  std::vector<uint32_t> candidates;
  table_.RangeScan(phi_q.data(), r, &candidates);
  for (uint32_t row : candidates) {
    const ObjectId id = oids_[row];
    if (VerifyFromDisk(q, id, r) <= r) out->push_back(id);
  }
}

void Cpt::KnnImpl(const ObjectView& q, size_t k,
                  std::vector<Neighbor>* out) const {
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  KnnHeap heap(k);
  table_.ScanDynamic(
      phi_q.data(), [&] { return heap.radius(); },
      [&](size_t row) {
        const ObjectId id = oids_[row];
        heap.Push(id, VerifyFromDisk(q, id, heap.radius()));
      });
  heap.TakeSorted(out);
}

void Cpt::InsertImpl(ObjectId id) {
  DistanceComputer d = dist();
  std::vector<double> phi;
  pivots_.Map(data().view(id), d, &phi);
  oids_.push_back(id);
  table_.AppendRow(phi.data());
  mtree_->Insert(id, {});
  file_->Flush();
}

void Cpt::RemoveImpl(ObjectId id) {
  for (size_t i = 0; i < oids_.size(); ++i) {
    if (oids_[i] != id) continue;
    oids_[i] = oids_.back();
    oids_.pop_back();
    table_.RemoveRowSwap(i);
    break;
  }
  mtree_->Remove(id);
  leaf_of_.erase(id);
  file_->Flush();
}

size_t Cpt::memory_bytes() const {
  return table_.memory_bytes() + oids_.size() * sizeof(ObjectId) +
         leaf_of_.size() * (sizeof(ObjectId) + sizeof(PageId) + 16) +
         pivots_.memory_bytes();
}

size_t Cpt::disk_bytes() const { return file_ ? file_->bytes() : 0; }

}  // namespace pmi
