#include "src/tables/cpt.h"

#include <cassert>

#include "src/core/knn_heap.h"
#include "src/core/thread_pool.h"

namespace pmi {

void Cpt::BuildImpl() {
  const uint32_t l = pivots_.size();
  const uint32_t n = data().size();
  leaf_of_.clear();
  file_ = std::make_unique<PagedFile>(options_.page_size, options_.cache_bytes,
                                      &counters_, options_.buffer_pool);
  MTree::Options mo;
  mo.seed = options_.seed;
  mtree_ = std::make_unique<MTree>(
      file_.get(), data_, dist(), mo,
      [this](ObjectId oid, PageId page) { leaf_of_[oid] = page; });

  // The in-memory pivot-table half fills in parallel (same fixed
  // partitioning as LAESA); the M-tree half stays serial because every
  // insert mutates the shared buffer pool and the split sampling RNG.
  // The insert sequence is unchanged, so tree shape, leaf pointers, and
  // total build cost are identical at any thread count.
  oids_.resize(n);
  table_.Reset(l);
  table_.ResizeRows(n);
  ThreadPool& pool = ThreadPool::Global();
  std::vector<CounterShard> shards(pool.size());
  ParallelFor(pool, n, [&](size_t begin, size_t end, unsigned slot) {
    DistanceComputer d(&metric(), &shards[slot].counters);
    std::vector<double> phi;
    for (size_t id = begin; id < end; ++id) {
      pivots_.Map(data().view(ObjectId(id)), d, &phi);
      oids_[id] = ObjectId(id);
      table_.SetRow(id, phi.data());
    }
  });
  FoldCounters(shards, &counters_);
  for (ObjectId id = 0; id < n; ++id) mtree_->Insert(id, {});
  file_->Flush();
}

double Cpt::VerifyFromDisk(const ObjectView& q, ObjectId id,
                           double upper) const {
  auto it = leaf_of_.find(id);
  assert(it != leaf_of_.end());
  MTreeNode node = mtree_->LoadNode(it->second);
  DistanceComputer d = dist();
  for (const auto& e : node.leaves) {
    if (e.oid == id) return d.Bounded(q, mtree_->ViewOf(e.obj), upper);
  }
  assert(false && "leaf pointer out of date");
  return 0;
}

void Cpt::RangeImpl(const ObjectView& q, double r,
                    std::vector<ObjectId>* out) const {
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  std::vector<uint32_t> candidates;
  // The bulk filter runs on the f32 SIMD path like LAESA's, but CPT
  // verifies from M-tree leaf pages through the buffer pool, so the
  // in-memory object-prefetch batching does not apply here.
  table_.RangeScan(phi_q.data(), r, &candidates);
  for (uint32_t row : candidates) {
    const ObjectId id = oids_[row];
    if (VerifyFromDisk(q, id, r) <= r) out->push_back(id);
  }
}

void Cpt::KnnImpl(const ObjectView& q, size_t k,
                  std::vector<Neighbor>* out) const {
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  KnnHeap heap(k);
  table_.ScanDynamic(
      phi_q.data(), [&] { return heap.radius(); },
      [&](size_t row) {
        const ObjectId id = oids_[row];
        heap.Push(id, VerifyFromDisk(q, id, heap.radius()));
      });
  heap.TakeSorted(out);
}

// Block-major batch MRQ, in two phases.  Phase 1 (pure main memory, no
// page accesses): map every query, then stream the in-memory table once
// for the whole batch, collecting each query's exact candidate rows.
// Phase 2: verify from disk query by query, in batch order -- the same
// VerifyFromDisk calls, in the same order, as a query-major loop, so
// the logical LRU hit/miss pattern and the PA accounting are replayed
// exactly, not just the results.  The whole batch runs on the calling
// thread, which keeps the logical access order deterministic (the
// parallel query-major path cannot promise that; see index.h).
bool Cpt::RangeBatchBlockImpl(const std::vector<ObjectView>& queries,
                              const double* radii,
                              std::vector<std::vector<ObjectId>>* out,
                              PerfCounters* per_query) const {
  const size_t nq = queries.size();
  std::vector<std::vector<double>> phi(nq);
  for (size_t i = 0; i < nq; ++i) {
    DistanceComputer d(&metric(), &per_query[i]);
    pivots_.Map(queries[i], d, &phi[i]);
  }
  std::vector<std::vector<uint32_t>> candidates(nq);
  table_.ScanBlockMajor(
      nq, [&](size_t i) { return phi[i].data(); },
      [&](size_t i) { return radii[i]; },
      [&](size_t i, size_t row) {
        candidates[i].push_back(static_cast<uint32_t>(row));
      },
      [](size_t, size_t) {});
  for (size_t i = 0; i < nq; ++i) {
    // VerifyFromDisk counts distances through dist(); the scope routes
    // them -- and the M-tree page accesses, both logical and physical --
    // to this query's shard.
    CounterScope scope(&per_query[i]);
    for (uint32_t row : candidates[i]) {
      const ObjectId id = oids_[row];
      if (VerifyFromDisk(queries[i], id, radii[i]) <= radii[i]) {
        (*out)[i].push_back(id);
      }
    }
  }
  return true;
}

void Cpt::InsertImpl(ObjectId id) {
  DistanceComputer d = dist();
  std::vector<double> phi;
  pivots_.Map(data().view(id), d, &phi);
  oids_.push_back(id);
  table_.AppendRow(phi.data());
  mtree_->Insert(id, {});
  file_->Flush();
}

void Cpt::RemoveImpl(ObjectId id) {
  for (size_t i = 0; i < oids_.size(); ++i) {
    if (oids_[i] != id) continue;
    oids_[i] = oids_.back();
    oids_.pop_back();
    table_.RemoveRowSwap(i);
    break;
  }
  mtree_->Remove(id);
  leaf_of_.erase(id);
  file_->Flush();
}

Status Cpt::SaveImpl(ByteSink* out) const {
  out->PutVector(oids_);
  SerializePivotTable(table_, out);
  out->PutU64(leaf_of_.size());
  for (const auto& [oid, page] : leaf_of_) {
    out->PutU32(oid);
    out->PutU32(page);
  }
  // The disk half is copied wholesale: raw page images plus the M-tree's
  // root/height/size.  Raw access bypasses the buffer pool, so saving
  // charges no page accesses.
  out->PutU32(file_->page_size());
  out->PutU32(file_->num_pages());
  for (PageId p = 0; p < file_->num_pages(); ++p) {
    out->Raw(file_->RawPage(p), file_->page_size());
  }
  out->PutU32(mtree_->root());
  out->PutU32(mtree_->height());
  out->PutU64(mtree_->size());
  return OkStatus();
}

Status Cpt::LoadImpl(ByteSource* in) {
  PMI_RETURN_IF_ERROR(in->GetVector(&oids_));
  PMI_RETURN_IF_ERROR(DeserializePivotTable(in, &table_));
  if (table_.per_row_pivots() || table_.width() != pivots_.size() ||
      table_.rows() != oids_.size()) {
    return DataLossError("CPT snapshot state is inconsistent");
  }
  uint64_t entries = 0;
  PMI_RETURN_IF_ERROR(in->GetU64(&entries));
  if (entries > data().size()) {
    return DataLossError("CPT snapshot has more leaf pointers than objects");
  }
  leaf_of_.clear();
  leaf_of_.reserve(entries);
  for (uint64_t i = 0; i < entries; ++i) {
    uint32_t oid = 0, page = 0;
    PMI_RETURN_IF_ERROR(in->GetU32(&oid));
    PMI_RETURN_IF_ERROR(in->GetU32(&page));
    leaf_of_[oid] = page;
  }
  uint32_t page_size = 0, num_pages = 0;
  PMI_RETURN_IF_ERROR(in->GetU32(&page_size));
  PMI_RETURN_IF_ERROR(in->GetU32(&num_pages));
  if (page_size != options_.page_size) {
    return DataLossError("CPT snapshot page_size does not match options");
  }
  file_ = std::make_unique<PagedFile>(options_.page_size, options_.cache_bytes,
                                      &counters_, options_.buffer_pool);
  MTree::Options mo;
  mo.seed = options_.seed;
  mtree_ = std::make_unique<MTree>(
      file_.get(), data_, dist(), mo,
      [this](ObjectId oid, PageId page) { leaf_of_[oid] = page; });
  // The MTree constructor allocates a fresh root; drop it and refill the
  // file with the snapshot's page images (no PA charged), then point the
  // tree at the restored root.
  file_->ResetPages();
  for (uint32_t p = 0; p < num_pages; ++p) {
    PMI_RETURN_IF_ERROR(in->Raw(file_->AppendRawPage(), page_size));
  }
  uint32_t root = 0, height = 0;
  uint64_t size = 0;
  PMI_RETURN_IF_ERROR(in->GetU32(&root));
  PMI_RETURN_IF_ERROR(in->GetU32(&height));
  PMI_RETURN_IF_ERROR(in->GetU64(&size));
  if (root >= num_pages) {
    return DataLossError("CPT snapshot M-tree root outside the page file");
  }
  for (const auto& [oid, page] : leaf_of_) {
    if (page >= num_pages || oid >= data().size()) {
      return DataLossError("CPT snapshot leaf pointer is out of range");
    }
  }
  // Every table row is verified through its leaf pointer at query time
  // (VerifyFromDisk dereferences the map hit unchecked under NDEBUG), so
  // a row without one must fail here, not at the first query.
  for (ObjectId id : oids_) {
    if (id >= data().size() || leaf_of_.find(id) == leaf_of_.end()) {
      return DataLossError(
          "CPT snapshot row references an object without a leaf pointer");
    }
  }
  mtree_->RestoreState(root, height, size);
  return OkStatus();
}

size_t Cpt::memory_bytes() const {
  return table_.memory_bytes() + oids_.size() * sizeof(ObjectId) +
         leaf_of_.size() * (sizeof(ObjectId) + sizeof(PageId) + 16) +
         pivots_.memory_bytes();
}

size_t Cpt::disk_bytes() const { return file_ ? file_->bytes() : 0; }

}  // namespace pmi
