#include "src/tables/cpt.h"

#include <cassert>

#include "src/core/filtering.h"
#include "src/core/knn_heap.h"

namespace pmi {

void Cpt::BuildImpl() {
  const uint32_t l = pivots_.size();
  const uint32_t n = data().size();
  oids_.clear();
  table_.clear();
  leaf_of_.clear();
  file_ = std::make_unique<PagedFile>(options_.page_size,
                                      options_.cache_bytes, &counters_);
  MTree::Options mo;
  mo.seed = options_.seed;
  mtree_ = std::make_unique<MTree>(
      file_.get(), data_, dist(), mo,
      [this](ObjectId oid, PageId page) { leaf_of_[oid] = page; });

  DistanceComputer d = dist();
  std::vector<double> phi;
  oids_.reserve(n);
  table_.reserve(size_t(n) * l);
  for (ObjectId id = 0; id < n; ++id) {
    pivots_.Map(data().view(id), d, &phi);
    oids_.push_back(id);
    table_.insert(table_.end(), phi.begin(), phi.end());
    mtree_->Insert(id, {});
  }
  file_->Flush();
}

double Cpt::VerifyFromDisk(const ObjectView& q, ObjectId id) const {
  auto it = leaf_of_.find(id);
  assert(it != leaf_of_.end());
  MTreeNode node = mtree_->LoadNode(it->second);
  DistanceComputer d = dist();
  for (const auto& e : node.leaves) {
    if (e.oid == id) return d(q, mtree_->ViewOf(e.obj));
  }
  assert(false && "leaf pointer out of date");
  return 0;
}

void Cpt::RangeImpl(const ObjectView& q, double r,
                    std::vector<ObjectId>* out) const {
  const uint32_t l = pivots_.size();
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  for (size_t i = 0; i < oids_.size(); ++i) {
    if (PrunedByPivots(row(i), phi_q.data(), l, r)) continue;
    if (VerifyFromDisk(q, oids_[i]) <= r) out->push_back(oids_[i]);
  }
}

void Cpt::KnnImpl(const ObjectView& q, size_t k,
                  std::vector<Neighbor>* out) const {
  const uint32_t l = pivots_.size();
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  KnnHeap heap(k);
  for (size_t i = 0; i < oids_.size(); ++i) {
    if (PrunedByPivots(row(i), phi_q.data(), l, heap.radius())) continue;
    heap.Push(oids_[i], VerifyFromDisk(q, oids_[i]));
  }
  heap.TakeSorted(out);
}

void Cpt::InsertImpl(ObjectId id) {
  DistanceComputer d = dist();
  std::vector<double> phi;
  pivots_.Map(data().view(id), d, &phi);
  oids_.push_back(id);
  table_.insert(table_.end(), phi.begin(), phi.end());
  mtree_->Insert(id, {});
  file_->Flush();
}

void Cpt::RemoveImpl(ObjectId id) {
  const uint32_t l = pivots_.size();
  for (size_t i = 0; i < oids_.size(); ++i) {
    if (oids_[i] != id) continue;
    oids_.erase(oids_.begin() + i);
    table_.erase(table_.begin() + i * l, table_.begin() + (i + 1) * l);
    break;
  }
  mtree_->Remove(id);
  leaf_of_.erase(id);
  file_->Flush();
}

size_t Cpt::memory_bytes() const {
  return table_.size() * sizeof(double) + oids_.size() * sizeof(ObjectId) +
         leaf_of_.size() * (sizeof(ObjectId) + sizeof(PageId) + 16) +
         pivots_.memory_bytes();
}

size_t Cpt::disk_bytes() const { return file_ ? file_->bytes() : 0; }

}  // namespace pmi
