// PSA -- the Pivot Selection Algorithm of EPT* (Algorithm 1), extracted
// as a reusable component so both the in-memory EPT* and the disk-based
// EPT* extension (the paper's Section 7 future-work direction) share one
// implementation.
//
// PSA draws cp_scale HF outlier candidates and, per object o, greedily
// picks the l candidates maximizing the mean lower-bound ratio
// D(o,s)/d(o,s) over a fixed object sample S.  The |S| x |CP| distance
// matrix is memoized (see DESIGN.md Section 3.4).

#ifndef PMI_TABLES_PSA_H_
#define PMI_TABLES_PSA_H_

#include <cstdint>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/metric.h"
#include "src/core/pivot_table.h"
#include "src/core/pivots.h"
#include "src/core/serialize.h"
#include "src/core/status.h"

namespace pmi {

/// Per-object pivot selector (EPT*'s Algorithm 1).
class PsaSelector {
 public:
  /// Draws the HF candidate pool and the PSA sample; distance
  /// computations are attributed through `dist`.
  void Build(const Dataset& data, const DistanceComputer& dist,
             uint32_t cp_scale, uint32_t sample_size, uint64_t seed);

  /// Candidate pivot pool (HF outliers, copied objects).
  const PivotSet& pool() const { return pool_; }

  /// Selects `l` pivots for object `o`: fills pool indices and the
  /// pre-computed distances.  Costs |CP| + |S| distance computations.
  void SelectForObject(const ObjectView& o, const DistanceComputer& dist,
                       uint32_t l, uint32_t* pidx, double* pdist) const;

  size_t memory_bytes() const {
    return pool_.memory_bytes() + sample_.memory_bytes() +
           sample_cand_.memory_bytes();
  }

  /// Snapshot support: persists the candidate pool, the object sample,
  /// and the memoized distance matrix, so a restored selector computes no
  /// distances until the next SelectForObject call.
  void SerializeTo(ByteSink* out) const;
  Status DeserializeFrom(ByteSource* in);

 private:
  PivotSet pool_;
  PivotSet sample_;
  /// |S| x |CP| memoized candidate-sample distances, columnar so the
  /// greedy selection's per-candidate inner loops over the sample run on
  /// contiguous memory (one column per candidate).
  PivotTable sample_cand_;
};

}  // namespace pmi

#endif  // PMI_TABLES_PSA_H_
