// AESA -- Approximating and Eliminating Search Algorithm (Vidal [28];
// Section 3.1).
//
// Stores the full O(n^2) pairwise distance matrix, which the paper calls
// "a theoretical metric index": excluded from its experiments for storage
// reasons, but included here for completeness and as the strongest
// compdists baseline.  Search uses the classic successive-pivoting
// strategy: the next verified object is the active object with the
// smallest accumulated lower bound, and every verification tightens the
// bounds of all remaining objects for free.

#ifndef PMI_TABLES_AESA_H_
#define PMI_TABLES_AESA_H_

#include <vector>

#include "src/core/index.h"

namespace pmi {

/// Full-matrix AESA.  Build refuses datasets above ~20k objects (the
/// matrix is quadratic); use LAESA beyond that.
class Aesa final : public MetricIndex {
 public:
  explicit Aesa(IndexOptions options = {}) : MetricIndex(options) {}

  std::string name() const override { return "AESA"; }
  bool disk_based() const override { return false; }
  // Audited: the query path uses only local state + dist() (counters
  // are redirected per thread by the batch entry points).
  bool concurrent_queries() const override { return true; }
  size_t memory_bytes() const override;

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;

 private:
  double cell(ObjectId a, ObjectId b) const { return matrix_[size_t(a) * n_ + b]; }

  uint32_t n_ = 0;
  std::vector<double> matrix_;  // n x n
  std::vector<bool> live_;
};

}  // namespace pmi

#endif  // PMI_TABLES_AESA_H_
