#include "src/tables/psa.h"

#include <algorithm>
#include <cmath>

#include "src/core/pivot_selection.h"
#include "src/core/rng.h"
#include "src/core/thread_pool.h"

namespace pmi {

void PsaSelector::Build(const Dataset& data, const DistanceComputer& dist,
                        uint32_t cp_scale, uint32_t sample_size,
                        uint64_t seed) {
  PivotSelectionOptions po;
  po.seed = seed;
  po.sample_size = std::min<uint32_t>(data.size(), 2000);
  pool_ = PivotSet(data, SelectPivotsHF(data, dist, cp_scale, po));

  Rng rng(seed ^ 0x97a);
  std::vector<ObjectId> sample_ids = SelectPivotsRandom(
      data, std::min<uint32_t>(sample_size, data.size()), rng);
  sample_ = PivotSet(data, sample_ids);
  // One table row per sample object; column c is then the contiguous
  // vector <d(s, cp_c)> over all samples s, which is exactly the access
  // pattern of SelectForObject's scoring loops.  The |S| x |CP| memo fill
  // fans out over sample chunks -- rows land by index, shards fold into
  // the caller's counter sink at the barrier.
  sample_cand_.Reset(pool_.size());
  sample_cand_.ResizeRows(sample_.size());
  ThreadPool& pool = ThreadPool::Global();
  std::vector<CounterShard> shards(pool.size());
  ParallelFor(pool, sample_.size(),
              [&](size_t begin, size_t end, unsigned slot) {
                DistanceComputer local(&dist.metric(), &shards[slot].counters);
                std::vector<double> row(pool_.size());
                for (size_t s = begin; s < end; ++s) {
                  for (uint32_t c = 0; c < pool_.size(); ++c) {
                    row[c] = local(sample_.pivot(static_cast<uint32_t>(s)),
                                   pool_.pivot(c));
                  }
                  sample_cand_.SetRow(s, row.data());
                }
              });
  FoldCounters(shards, dist.counters());
}

void PsaSelector::SerializeTo(ByteSink* out) const {
  SerializePivotSet(pool_, out);
  SerializePivotSet(sample_, out);
  SerializePivotTable(sample_cand_, out);
}

Status PsaSelector::DeserializeFrom(ByteSource* in) {
  PMI_ASSIGN_OR_RETURN(pool_, DeserializePivotSet(in));
  PMI_ASSIGN_OR_RETURN(sample_, DeserializePivotSet(in));
  PMI_RETURN_IF_ERROR(DeserializePivotTable(in, &sample_cand_));
  if (sample_cand_.per_row_pivots() || sample_cand_.width() != pool_.size() ||
      sample_cand_.rows() != sample_.size()) {
    return DataLossError("PSA snapshot state is inconsistent");
  }
  return OkStatus();
}

void PsaSelector::SelectForObject(const ObjectView& o,
                                  const DistanceComputer& dist, uint32_t l,
                                  uint32_t* pidx, double* pdist) const {
  const uint32_t nc = pool_.size();
  const uint32_t ns = sample_.size();
  std::vector<double> d_oc(nc), d_os(ns);
  for (uint32_t c = 0; c < nc; ++c) d_oc[c] = dist(o, pool_.pivot(c));
  for (uint32_t s = 0; s < ns; ++s) d_os[s] = dist(o, sample_.pivot(s));

  std::vector<double> current(ns, 0);
  std::vector<bool> used(nc, false);
  for (uint32_t round = 0; round < l; ++round) {
    double best_score = -1;
    uint32_t best_c = 0;
    for (uint32_t c = 0; c < nc; ++c) {
      if (used[c]) continue;
      // The division (not a precomputed reciprocal) keeps the scores --
      // and therefore the selected pivots -- bit-identical to the
      // row-major implementation; the win here is the contiguous
      // per-candidate column, walked block by block (s ascending, so
      // the accumulation order is unchanged by the chunked storage).
      const double d_oc_c = d_oc[c];
      double score = 0;
      for (uint32_t base = 0; base < ns; base += PivotTable::kScanBlock) {
        const double* __restrict col = sample_cand_.block_column(c, base);
        const uint32_t hi = std::min(ns, base + PivotTable::kScanBlock);
        for (uint32_t s = base; s < hi; ++s) {
          if (d_os[s] <= 0) continue;
          double diff = std::fabs(d_oc_c - col[s - base]);
          score += std::max(current[s], diff) / d_os[s];
        }
      }
      if (score > best_score) {
        best_score = score;
        best_c = c;
      }
    }
    used[best_c] = true;
    pidx[round] = best_c;
    pdist[round] = d_oc[best_c];
    for (uint32_t base = 0; base < ns; base += PivotTable::kScanBlock) {
      const double* __restrict col = sample_cand_.block_column(best_c, base);
      const uint32_t hi = std::min(ns, base + PivotTable::kScanBlock);
      for (uint32_t s = base; s < hi; ++s) {
        double diff = std::fabs(d_oc[best_c] - col[s - base]);
        current[s] = std::max(current[s], diff);
      }
    }
  }
}

}  // namespace pmi
