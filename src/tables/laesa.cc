#include "src/tables/laesa.h"

#include <cassert>

#include "src/core/filtering.h"
#include "src/core/knn_heap.h"

namespace pmi {

void Laesa::BuildImpl() {
  const uint32_t l = pivots_.size();
  const uint32_t n = data().size();
  oids_.clear();
  table_.clear();
  oids_.reserve(n);
  table_.reserve(size_t(n) * l);
  DistanceComputer d = dist();
  std::vector<double> phi;
  for (ObjectId id = 0; id < n; ++id) {
    pivots_.Map(data().view(id), d, &phi);
    oids_.push_back(id);
    table_.insert(table_.end(), phi.begin(), phi.end());
  }
}

void Laesa::RangeImpl(const ObjectView& q, double r,
                      std::vector<ObjectId>* out) const {
  const uint32_t l = pivots_.size();
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  for (size_t i = 0; i < oids_.size(); ++i) {
    if (PrunedByPivots(row(i), phi_q.data(), l, r)) continue;
    if (d(q, data().view(oids_[i])) <= r) out->push_back(oids_[i]);
  }
}

void Laesa::KnnImpl(const ObjectView& q, size_t k,
                    std::vector<Neighbor>* out) const {
  const uint32_t l = pivots_.size();
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  KnnHeap heap(k);
  for (size_t i = 0; i < oids_.size(); ++i) {
    if (PrunedByPivots(row(i), phi_q.data(), l, heap.radius())) continue;
    heap.Push(oids_[i], d(q, data().view(oids_[i])));
  }
  heap.TakeSorted(out);
}

void Laesa::InsertImpl(ObjectId id) {
  DistanceComputer d = dist();
  std::vector<double> phi;
  pivots_.Map(data().view(id), d, &phi);
  oids_.push_back(id);
  table_.insert(table_.end(), phi.begin(), phi.end());
}

void Laesa::RemoveImpl(ObjectId id) {
  const uint32_t l = pivots_.size();
  // Sequential scan for the victim row, then compaction -- the deletion
  // behaviour of a scan table.
  for (size_t i = 0; i < oids_.size(); ++i) {
    if (oids_[i] != id) continue;
    oids_.erase(oids_.begin() + i);
    table_.erase(table_.begin() + i * l, table_.begin() + (i + 1) * l);
    return;
  }
}

size_t Laesa::memory_bytes() const {
  return table_.size() * sizeof(double) + oids_.size() * sizeof(ObjectId) +
         pivots_.memory_bytes() + data().total_payload_bytes();
}

}  // namespace pmi
