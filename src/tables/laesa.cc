#include "src/tables/laesa.h"

#include <cassert>

#include "src/core/knn_heap.h"
#include "src/core/simd.h"
#include "src/core/thread_pool.h"

namespace pmi {

void Laesa::BuildImpl() {
  const uint32_t l = pivots_.size();
  const uint32_t n = data().size();
  // The n x l fill is embarrassingly parallel: rows are preallocated and
  // each worker maps its contiguous chunk of objects into its own rows,
  // counting into a per-slot shard folded at the barrier.  Table
  // contents, oids_, and build compdists are identical at any thread
  // count.
  oids_.resize(n);
  table_.Reset(l);
  table_.ResizeRows(n);
  ThreadPool& pool = ThreadPool::Global();
  std::vector<CounterShard> shards(pool.size());
  ParallelFor(pool, n, [&](size_t begin, size_t end, unsigned slot) {
    DistanceComputer d(&metric(), &shards[slot].counters);
    std::vector<double> phi;
    for (size_t id = begin; id < end; ++id) {
      pivots_.Map(data().view(ObjectId(id)), d, &phi);
      oids_[id] = ObjectId(id);
      table_.SetRow(id, phi.data());
    }
  });
  FoldCounters(shards, &counters_);
}

void Laesa::RangeImpl(const ObjectView& q, double r,
                      std::vector<ObjectId>* out) const {
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  std::vector<uint32_t> candidates;
  table_.RangeScan(phi_q.data(), r, &candidates);
  VerifyCandidatesWithPrefetch(candidates, oids_, data(), d, q, r, out);
}

void Laesa::KnnImpl(const ObjectView& q, size_t k,
                    std::vector<Neighbor>* out) const {
  DistanceComputer d = dist();
  std::vector<double> phi_q;
  pivots_.Map(q, d, &phi_q);
  KnnHeap heap(k);
  table_.ScanDynamic(
      phi_q.data(), [&] { return heap.radius(); },
      [&](size_t row) {
        const ObjectId id = oids_[row];
        heap.Push(id, d.Bounded(q, data().view(id), heap.radius()));
      },
      [&](size_t row) {
        PrefetchRead(data().view(oids_[row]).payload_ptr());
      });
  heap.TakeSorted(out);
}

// Block-major batch MRQ: queries are fixed-partitioned into contiguous
// chunks (one per pool slot); each chunk maps its queries, then streams
// the pivot table ONCE for the whole chunk via ScanBlockMajor -- every
// 1 KB column slab filters all chunk queries while cache-resident.  Per
// query the mapping (|P| compdists) and the verification calls (one
// Bounded per exact survivor, ascending row order) are exactly what
// RangeImpl performs, counted into that query's shard.
bool Laesa::RangeBatchBlockImpl(const std::vector<ObjectView>& queries,
                                const double* radii,
                                std::vector<std::vector<ObjectId>>* out,
                                PerfCounters* per_query) const {
  ParallelQueryChunks(
      concurrent_queries(), queries.size(), [&](size_t qb, size_t qe) {
        const size_t m = qe - qb;
        // Worker-private counter shards, folded into the (cache-line-
        // adjacent, cross-worker) per_query array once at chunk end --
        // the hot path never writes a line another worker touches.
        std::vector<PerfCounters> local(m);
        std::vector<std::vector<double>> phi(m);
        for (size_t j = 0; j < m; ++j) {
          DistanceComputer d(&metric(), &local[j]);
          pivots_.Map(queries[qb + j], d, &phi[j]);
        }
        table_.ScanBlockMajor(
            m, [&](size_t j) { return phi[j].data(); },
            [&](size_t j) { return radii[qb + j]; },
            [&](size_t j, size_t row) {
              const size_t i = qb + j;
              const ObjectId id = oids_[row];
              DistanceComputer d(&metric(), &local[j]);
              if (d.Bounded(queries[i], data().view(id), radii[i]) <=
                  radii[i]) {
                (*out)[i].push_back(id);
              }
            },
            [&](size_t, size_t row) {
              PrefetchRead(data().view(oids_[row]).payload_ptr());
            });
        for (size_t j = 0; j < m; ++j) per_query[qb + j] += local[j];
      });
  return true;
}

// Block-major batch MkNNQ: same chunking; each query carries its own
// heap, whose shrinking radius re-enters the filter at every block
// boundary exactly as in the single-query ScanDynamic.
bool Laesa::KnnBatchBlockImpl(const std::vector<ObjectView>& queries,
                              const size_t* ks,
                              std::vector<std::vector<Neighbor>>* out,
                              PerfCounters* per_query) const {
  ParallelQueryChunks(
      concurrent_queries(), queries.size(), [&](size_t qb, size_t qe) {
        const size_t m = qe - qb;
        std::vector<PerfCounters> local(m);  // see RangeBatchBlockImpl
        std::vector<std::vector<double>> phi(m);
        std::vector<KnnHeap> heaps;
        heaps.reserve(m);
        for (size_t j = 0; j < m; ++j) {
          DistanceComputer d(&metric(), &local[j]);
          pivots_.Map(queries[qb + j], d, &phi[j]);
          heaps.emplace_back(ks[qb + j]);
        }
        table_.ScanBlockMajor(
            m, [&](size_t j) { return phi[j].data(); },
            [&](size_t j) { return heaps[j].radius(); },
            [&](size_t j, size_t row) {
              const size_t i = qb + j;
              const ObjectId id = oids_[row];
              DistanceComputer d(&metric(), &local[j]);
              heaps[j].Push(
                  id, d.Bounded(queries[i], data().view(id),
                                heaps[j].radius()));
            },
            [&](size_t, size_t row) {
              PrefetchRead(data().view(oids_[row]).payload_ptr());
            });
        for (size_t j = 0; j < m; ++j) {
          heaps[j].TakeSorted(&(*out)[qb + j]);
          per_query[qb + j] += local[j];
        }
      });
  return true;
}

void Laesa::InsertImpl(ObjectId id) {
  DistanceComputer d = dist();
  std::vector<double> phi;
  pivots_.Map(data().view(id), d, &phi);
  oids_.push_back(id);
  table_.AppendRow(phi.data());
}

void Laesa::RemoveImpl(ObjectId id) {
  // Sequential scan for the victim row (the deletion behaviour of a scan
  // table), then O(l) swap-with-last compaction.
  for (size_t i = 0; i < oids_.size(); ++i) {
    if (oids_[i] != id) continue;
    oids_[i] = oids_.back();
    oids_.pop_back();
    table_.RemoveRowSwap(i);
    return;
  }
}

std::unique_ptr<MetricIndex> Laesa::Clone() const {
  auto clone = std::make_unique<Laesa>(options_);
  clone->CopyBaseFrom(*this);
  clone->oids_ = oids_;
  clone->table_ = table_;  // copy-on-write: shares all 256-row blocks
  return clone;
}

Status Laesa::SaveImpl(ByteSink* out) const {
  out->PutVector(oids_);
  SerializePivotTable(table_, out);
  return OkStatus();
}

Status Laesa::LoadImpl(ByteSource* in) {
  // Pure state restore: the distance table is read back verbatim, so a
  // load performs zero distance computations.
  PMI_RETURN_IF_ERROR(in->GetVector(&oids_));
  PMI_RETURN_IF_ERROR(DeserializePivotTable(in, &table_));
  if (table_.per_row_pivots() || table_.width() != pivots_.size() ||
      table_.rows() != oids_.size()) {
    return DataLossError("LAESA snapshot state is inconsistent");
  }
  for (ObjectId id : oids_) {
    if (id >= data().size()) {
      return DataLossError("LAESA snapshot references object " +
                           std::to_string(id) + " outside the dataset");
    }
  }
  return OkStatus();
}

size_t Laesa::memory_bytes() const {
  return table_.memory_bytes() + oids_.size() * sizeof(ObjectId) +
         pivots_.memory_bytes() + data().total_payload_bytes();
}

}  // namespace pmi
