// EPT and EPT* -- Extreme Pivot Tables (Ruiz et al. [24]; Section 3.2).
//
// Unlike LAESA, EPT assigns *different* pivots to different objects: l
// pivot groups of m random pivots each; an object keeps, per group, the
// pivot maximizing |d(o,p) - mu_p| (the deviation from that pivot's mean
// distance), which maximizes the chance the stored distance prunes.
//
// EPT* is the paper's improvement: the Pivot Selection Algorithm (PSA,
// Algorithm 1) draws candidate pivots from HF outliers (cp_scale = 40) and
// per object greedily selects the l candidates maximizing the mean
// lower-bound ratio D(o,s)/d(o,s) over a fixed object sample S.
//
// Implementation note (documented in DESIGN.md Section 3): PSA memoizes
// the |S| x |CP| candidate-sample distance matrix and each object's |CP|
// candidate distances, so EPT*'s construction compdists exceed EPT's by a
// factor of ~(|CP|+|S|)/(m*l) rather than the paper's ~1000x naive
// recomputation; the ordering (EPT* costliest to build, cheapest to
// query) is preserved.

#ifndef PMI_TABLES_EPT_H_
#define PMI_TABLES_EPT_H_

#include <vector>

#include "src/core/index.h"
#include "src/core/pivot_table.h"
#include "src/core/pivots.h"
#include "src/tables/psa.h"

namespace pmi {

/// Extreme pivot table; variant selects classic EPT or EPT*.
class Ept final : public MetricIndex {
 public:
  enum class Variant { kClassic, kStar };

  explicit Ept(Variant variant, IndexOptions options = {})
      : MetricIndex(options), variant_(variant) {}

  std::string name() const override {
    return variant_ == Variant::kClassic ? "EPT" : "EPT*";
  }
  bool disk_based() const override { return false; }
  // Audited: the query path uses only local state + dist() (counters
  // are redirected per thread by the batch entry points).
  bool concurrent_queries() const override { return true; }
  // Batches run block-major over the per-row-pivot table (see Laesa).
  bool block_major_batches() const override { return true; }
  std::unique_ptr<MetricIndex> Clone() const override;
  size_t memory_bytes() const override;

  /// Group size m actually used (after Equation (1) estimation).
  uint32_t group_size() const { return m_; }

  /// Read-only view of the per-row-pivot distance table (see Laesa).
  const PivotTable& table() const { return table_; }

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;
  bool RangeBatchBlockImpl(const std::vector<ObjectView>& queries,
                           const double* radii,
                           std::vector<std::vector<ObjectId>>* out,
                           PerfCounters* per_query) const override;
  bool KnnBatchBlockImpl(const std::vector<ObjectView>& queries,
                         const size_t* ks,
                         std::vector<std::vector<Neighbor>>* out,
                         PerfCounters* per_query) const override;
  Status SaveImpl(ByteSink* out) const override;
  Status LoadImpl(ByteSource* in) override;

 private:
  uint32_t per_object() const { return l_; }

  void EstimateGroupSize();
  void EstimateMus();
  /// Selects the l (pool index, distance) pairs of one row.  Distances go
  /// through `d`, which the parallel build binds to a per-thread counter
  /// shard; the selection reads only build-time-constant state
  /// (pool_/pool_mu_/psa_), so concurrent calls on distinct ids are safe
  /// and the row contents are independent of thread count.
  void ComputeRow(ObjectId id, const DistanceComputer& d, uint32_t* pidx,
                  double* pdist) const;
  void SelectClassic(ObjectId id, const DistanceComputer& d, uint32_t* pidx,
                     double* pdist) const;
  void SelectStar(ObjectId id, const DistanceComputer& d, uint32_t* pidx,
                  double* pdist) const;
  void AppendRow(ObjectId id);
  void MapQueryToPool(const ObjectView& q, std::vector<double>* out) const;
  /// Batch form: the pool mapping counted through an explicit computer
  /// (the block-major paths bind one per query shard).
  void MapQueryToPool(const ObjectView& q, const DistanceComputer& d,
                      std::vector<double>* out) const;

  Variant variant_;
  uint32_t l_ = 0;  // pivots per object (= |P| of the shared setting)
  uint32_t m_ = 0;  // group size (classic)

  PivotSet pool_;                // classic: m*l random pivots
  std::vector<double> pool_mu_;  // classic: estimated E[d(o, p)] per pivot
  PsaSelector psa_;              // star: shared Algorithm-1 machinery

  /// The pivot pool queries map against (classic's own or PSA's).
  const PivotSet& query_pool() const {
    return variant_ == Variant::kClassic ? pool_ : psa_.pool();
  }

  std::vector<ObjectId> oids_;  // row -> object id
  /// Columnar rows x l table of (pool index, pre-computed distance) pairs
  /// in the per-row-pivot layout (see src/core/pivot_table.h).
  PivotTable table_;
  std::vector<uint32_t> row_pidx_;  // AppendRow (serial insert) scratch
  std::vector<double> row_pdist_;
};

}  // namespace pmi

#endif  // PMI_TABLES_EPT_H_
