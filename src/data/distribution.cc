#include "src/data/distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pmi {

double DistanceDistribution::RadiusForSelectivity(double fraction) const {
  assert(!sample.empty());
  fraction = std::clamp(fraction, 0.0, 1.0);
  size_t idx = static_cast<size_t>(fraction * (sample.size() - 1));
  return sample[idx];
}

DistanceDistribution EstimateDistribution(const Dataset& data,
                                          const Metric& metric,
                                          uint32_t pairs, uint64_t seed) {
  DistanceDistribution out;
  if (data.size() < 2) return out;
  Rng rng(seed);
  out.sample.reserve(pairs);
  double sum = 0, sum2 = 0;
  for (uint32_t i = 0; i < pairs; ++i) {
    ObjectId a = rng() % data.size();
    ObjectId b = rng() % data.size();
    if (a == b) continue;
    double d = metric.Distance(data.view(a), data.view(b));
    out.sample.push_back(d);
    sum += d;
    sum2 += d * d;
    out.max_distance = std::max(out.max_distance, d);
  }
  std::sort(out.sample.begin(), out.sample.end());
  const double n = static_cast<double>(out.sample.size());
  if (n > 0) {
    out.mean = sum / n;
    out.variance = std::max(0.0, sum2 / n - out.mean * out.mean);
    if (out.variance > 0) {
      out.intrinsic_dim = out.mean * out.mean / (2 * out.variance);
    }
  }
  return out;
}

}  // namespace pmi
