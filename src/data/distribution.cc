#include "src/data/distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/core/thread_pool.h"

namespace pmi {

double DistanceDistribution::RadiusForSelectivity(double fraction) const {
  assert(!sample.empty());
  fraction = std::clamp(fraction, 0.0, 1.0);
  size_t idx = static_cast<size_t>(fraction * (sample.size() - 1));
  return sample[idx];
}

DistanceDistribution EstimateDistribution(const Dataset& data,
                                          const Metric& metric,
                                          uint32_t pairs, uint64_t seed) {
  DistanceDistribution out;
  if (data.size() < 2) return out;
  Rng rng(seed);
  // The pair ids are drawn serially from the single seeded RNG (the draw
  // sequence never depends on thread count); only the distance
  // evaluations -- the expensive part -- fan out, each writing its own
  // slot.  The moment accumulation below then re-walks the results in
  // draw order, so sample, sum, and max are bit-identical to the fully
  // serial loop.
  std::vector<ObjectId> as(pairs), bs(pairs);
  for (uint32_t i = 0; i < pairs; ++i) {
    as[i] = rng() % data.size();
    bs[i] = rng() % data.size();
  }
  std::vector<double> dists(pairs, 0);
  ParallelFor(ThreadPool::Global(), pairs,
              [&](size_t begin, size_t end, unsigned /*slot*/) {
                for (size_t i = begin; i < end; ++i) {
                  if (as[i] == bs[i]) continue;  // skipped below too
                  dists[i] = metric.Distance(data.view(as[i]), data.view(bs[i]));
                }
              });
  out.sample.reserve(pairs);
  double sum = 0, sum2 = 0;
  for (uint32_t i = 0; i < pairs; ++i) {
    if (as[i] == bs[i]) continue;
    double d = dists[i];
    out.sample.push_back(d);
    sum += d;
    sum2 += d * d;
    out.max_distance = std::max(out.max_distance, d);
  }
  std::sort(out.sample.begin(), out.sample.end());
  const double n = static_cast<double>(out.sample.size());
  if (n > 0) {
    out.mean = sum / n;
    out.variance = std::max(0.0, sum2 / n - out.mean * out.mean);
    if (out.variance > 0) {
      out.intrinsic_dim = out.mean * out.mean / (2 * out.variance);
    }
  }
  return out;
}

}  // namespace pmi
