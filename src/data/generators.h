// Dataset generators (Section 6.1, Table 2).
//
// The paper evaluates three real datasets (LA, Words, Color) and one
// synthetic dataset.  The real datasets are public but cannot ship here,
// so each generator below produces a statistically matched stand-in:
// identical dimensionality, value domain, and distance measure, with
// cluster/correlation structure tuned toward the paper's reported
// intrinsic dimensionality.  MakeSyntheticPaper follows the paper's own
// synthetic recipe exactly.  DESIGN.md Section 3 documents the
// substitution rationale.

#ifndef PMI_DATA_GENERATORS_H_
#define PMI_DATA_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/dataset.h"
#include "src/core/metric.h"

namespace pmi {

/// LA stand-in: 2-d geographic-like points on [0, 10000]^2, L2-norm.
/// A Gaussian mixture mimics urban clustering: a dense core plus suburbs
/// and sparse outskirts.
Dataset MakeLaLike(uint32_t n, uint64_t seed = 1);

/// Words stand-in: English-like words of length 1..34 from a syllable
/// Markov generator with a natural (skewed short) length distribution;
/// edit distance.
Dataset MakeWordsLike(uint32_t n, uint64_t seed = 2);

/// Color stand-in: 282-d MPEG-7-like features on [-255, 255], L1-norm.
/// Low-rank latent-factor structure keeps the intrinsic dimensionality
/// near the paper's 6.5 despite the 282 ambient dimensions.
Dataset MakeColorLike(uint32_t n, uint64_t seed = 3);

/// The paper's synthetic recipe: 20 integer dimensions on [0, 10000],
/// 5 drawn uniformly at random and 15 linear combinations of those 5;
/// L-infinity norm (discrete, enabling BKT/FQT).
Dataset MakeSyntheticPaper(uint32_t n, uint64_t seed = 4);

/// Identifier of one of the four benchmark datasets.
enum class BenchDatasetId { kLa, kWords, kColor, kSynthetic };

/// A generated dataset together with its paper-mandated metric.
struct BenchDataset {
  std::string name;
  Dataset data;
  std::unique_ptr<Metric> metric;
  BenchDatasetId id;
};

/// Builds one of the four benchmark datasets at cardinality `n`.
BenchDataset MakeBenchDataset(BenchDatasetId id, uint32_t n,
                              uint64_t seed = 0);

/// The metric the paper pairs with each dataset, as a fresh instance.
std::unique_ptr<Metric> MakeMetricFor(BenchDatasetId id);

}  // namespace pmi

#endif  // PMI_DATA_GENERATORS_H_
