#include "src/data/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "src/core/rng.h"

namespace pmi {
namespace {

float ClampTo(double v, double lo, double hi) {
  return static_cast<float>(std::clamp(v, lo, hi));
}

}  // namespace

Dataset MakeLaLike(uint32_t n, uint64_t seed) {
  // Urban geography: a handful of dense centers (downtown cores), a ring
  // of suburbs around each, and a thin uniform background.  Coordinates
  // are mapped to [0, 10000] as in the paper.
  Dataset data = Dataset::Vectors(2);
  Rng rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  constexpr int kCenters = 24;
  std::vector<std::pair<double, double>> centers;
  std::vector<double> spread;
  for (int c = 0; c < kCenters; ++c) {
    centers.emplace_back(500 + 9000 * unit(rng), 500 + 9000 * unit(rng));
    spread.push_back(120 + 600 * unit(rng));
  }
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (uint32_t i = 0; i < n; ++i) {
    float pt[2];
    double roll = unit(rng);
    if (roll < 0.92) {
      // Zipf-ish preference for earlier (bigger) centers.
      int c = static_cast<int>(kCenters * std::pow(unit(rng), 1.8));
      c = std::min(c, kCenters - 1);
      pt[0] = ClampTo(centers[c].first + spread[c] * gauss(rng), 0, 10000);
      pt[1] = ClampTo(centers[c].second + spread[c] * gauss(rng), 0, 10000);
    } else {
      pt[0] = ClampTo(10000 * unit(rng), 0, 10000);
      pt[1] = ClampTo(10000 * unit(rng), 0, 10000);
    }
    data.AddVector(pt);
  }
  return data;
}

Dataset MakeWordsLike(uint32_t n, uint64_t seed) {
  // Syllable-chain generator: words are alternating onset/vowel/coda
  // fragments with common English affixes, lengths skewed short
  // (mode ~7) and capped at 34 like the Moby word list.
  static const char* kOnsets[] = {"b",  "c",  "d",  "f",  "g",  "h",  "j",
                                  "k",  "l",  "m",  "n",  "p",  "r",  "s",
                                  "t",  "v",  "w",  "z",  "ch", "sh", "th",
                                  "ph", "st", "tr", "br", "cr", "pl", "gr"};
  static const char* kVowels[] = {"a",  "e",  "i",  "o",  "u",  "ai",
                                  "ea", "ee", "io", "ou", "oo", "ie"};
  static const char* kCodas[] = {"",   "n",  "r",  "s",   "t",   "l",
                                 "m",  "d",  "ck", "ng",  "rd",  "st",
                                 "nt", "sh", "mp", "lt",  "ns",  "x"};
  static const char* kSuffixes[] = {"",     "",    "",     "ing", "ed",
                                    "s",    "er",  "tion", "ness", "ly",
                                    "ment", "ous", "al",   "ive",  "ism"};
  Dataset data = Dataset::Strings();
  Rng rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::string w;
  for (uint32_t i = 0; i < n; ++i) {
    w.clear();
    // 1..8 syllables with a heavy tail (the Moby list mixes short words
    // with long compounds/proper nouns; the wide length spread is what
    // drives its very low intrinsic dimensionality of ~1.2).
    int syllables = 1;
    while (syllables < 8 && unit(rng) < 0.58) ++syllables;
    for (int s = 0; s < syllables; ++s) {
      w += kOnsets[rng() % std::size(kOnsets)];
      w += kVowels[rng() % std::size(kVowels)];
      if (unit(rng) < 0.55) w += kCodas[rng() % std::size(kCodas)];
    }
    w += kSuffixes[rng() % std::size(kSuffixes)];
    // Occasional very short tokens (acronyms) and long compounds.
    double roll = unit(rng);
    if (roll < 0.06) {
      w.resize(std::min<size_t>(w.size(), 1 + rng() % 3));
    } else if (roll < 0.16) {
      w += '-';
      int extra = 1 + int(rng() % 3);
      for (int s = 0; s < extra; ++s) {
        w += kOnsets[rng() % std::size(kOnsets)];
        w += kVowels[rng() % std::size(kVowels)];
      }
    }
    if (w.size() > 34) w.resize(34);
    data.AddString(w);
  }
  return data;
}

Dataset MakeColorLike(uint32_t n, uint64_t seed) {
  // MPEG-7 style features: 282 ambient dimensions driven by a small
  // number of latent factors (image-level properties), plus per-dimension
  // noise.  The factor loadings are fixed per dataset (seeded), the
  // factors per object.  Values mapped to [-255, 255] as in the paper.
  constexpr uint32_t kDim = 282;
  constexpr uint32_t kFactors = 6;  // tuned: measured int.dim ~= paper's 6.5
  Dataset data = Dataset::Vectors(kDim);
  Rng rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);

  // Loading matrix A: kDim x kFactors, sparse-ish rows so different
  // feature blocks respond to different factors (as MPEG-7 descriptors do).
  std::vector<double> loading(kDim * kFactors);
  for (uint32_t d = 0; d < kDim; ++d) {
    for (uint32_t f = 0; f < kFactors; ++f) {
      double l = gauss(rng);
      // Emphasize a "home" factor per dimension block.
      if (f == (d * kFactors) / kDim) l *= 3.0;
      loading[d * kFactors + f] = l;
    }
  }

  std::vector<double> z(kFactors);
  std::vector<float> x(kDim);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t f = 0; f < kFactors; ++f) z[f] = gauss(rng);
    for (uint32_t d = 0; d < kDim; ++d) {
      double v = 0;
      const double* row = &loading[d * kFactors];
      for (uint32_t f = 0; f < kFactors; ++f) v += row[f] * z[f];
      v = v * 45.0 + 8.0 * gauss(rng);  // scale + noise
      x[d] = ClampTo(v, -255, 255);
    }
    data.AddVector(x);
  }
  return data;
}

Dataset MakeSyntheticPaper(uint32_t n, uint64_t seed) {
  // Paper recipe: "five dimension values are generated randomly, and the
  // remaining dimension values are linear combinations of the previous
  // ones"; integer values on [0, 10000]; Linf-norm.
  constexpr uint32_t kDim = 20;
  constexpr uint32_t kBase = 5;
  Dataset data = Dataset::Vectors(kDim);
  Rng rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Fixed random combination weights (rows sum to 1 so values stay in
  // domain), seeded separately from the per-object draws.
  double weights[kDim][kBase];
  for (uint32_t d = kBase; d < kDim; ++d) {
    double sum = 0;
    for (uint32_t b = 0; b < kBase; ++b) {
      weights[d][b] = unit(rng);
      sum += weights[d][b];
    }
    for (uint32_t b = 0; b < kBase; ++b) weights[d][b] /= sum;
  }

  std::vector<float> x(kDim);
  for (uint32_t i = 0; i < n; ++i) {
    double base[kBase];
    for (uint32_t b = 0; b < kBase; ++b) {
      base[b] = std::floor(10001 * unit(rng));
      x[b] = static_cast<float>(base[b]);
    }
    for (uint32_t d = kBase; d < kDim; ++d) {
      double v = 0;
      for (uint32_t b = 0; b < kBase; ++b) v += weights[d][b] * base[b];
      x[d] = static_cast<float>(std::floor(v));  // integer-valued
    }
    data.AddVector(x);
  }
  return data;
}

std::unique_ptr<Metric> MakeMetricFor(BenchDatasetId id) {
  switch (id) {
    case BenchDatasetId::kLa:
      return std::make_unique<L2Metric>(2, 10000.0);
    case BenchDatasetId::kWords:
      return std::make_unique<EditDistanceMetric>(34);
    case BenchDatasetId::kColor:
      return std::make_unique<L1Metric>(282, 510.0);
    case BenchDatasetId::kSynthetic:
      return std::make_unique<LInfMetric>(20, 10000.0,
                                          /*discrete_domain=*/true);
  }
  return nullptr;
}

BenchDataset MakeBenchDataset(BenchDatasetId id, uint32_t n, uint64_t seed) {
  BenchDataset out{.name = "", .data = Dataset::Vectors(0), .metric = nullptr,
                   .id = id};
  switch (id) {
    case BenchDatasetId::kLa:
      out.name = "LA";
      out.data = MakeLaLike(n, seed ^ 1);
      break;
    case BenchDatasetId::kWords:
      out.name = "Words";
      out.data = MakeWordsLike(n, seed ^ 2);
      break;
    case BenchDatasetId::kColor:
      out.name = "Color";
      out.data = MakeColorLike(n, seed ^ 3);
      break;
    case BenchDatasetId::kSynthetic:
      out.name = "Synthetic";
      out.data = MakeSyntheticPaper(n, seed ^ 4);
      break;
  }
  out.metric = MakeMetricFor(id);
  return out;
}

}  // namespace pmi
