// Distance-distribution statistics (Table 2, Section 6.1).
//
// The paper characterizes each dataset by its intrinsic dimensionality
// rho = mu^2 / (2 sigma^2) over the pairwise distance distribution, and
// specifies MRQ radii as *selectivities* ("the value of the radius r
// denotes the percentage of objects in the dataset that are result
// objects").  Both are estimated here by pair sampling.

#ifndef PMI_DATA_DISTRIBUTION_H_
#define PMI_DATA_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/metric.h"
#include "src/core/rng.h"

namespace pmi {

/// Summary of the pairwise distance distribution of a dataset.
struct DistanceDistribution {
  double mean = 0;
  double variance = 0;
  double max_distance = 0;
  /// Intrinsic dimensionality mu^2 / (2 sigma^2) (Chavez et al. [11]).
  double intrinsic_dim = 0;
  /// Sorted sample of pairwise distances (for quantile queries).
  std::vector<double> sample;

  /// Distance below which approximately `fraction` of all objects fall,
  /// i.e. the MRQ radius with expected selectivity `fraction`.
  double RadiusForSelectivity(double fraction) const;
};

/// Estimates the distribution from `pairs` random object pairs.
DistanceDistribution EstimateDistribution(const Dataset& data,
                                          const Metric& metric,
                                          uint32_t pairs = 20000,
                                          uint64_t seed = 7);

}  // namespace pmi

#endif  // PMI_DATA_DISTRIBUTION_H_
