// Fault-injection Env wrapper for crash-recovery testing.
//
// FaultInjectingEnv delegates to a base Env while counting every
// durability-relevant mutation (WritableFile::Append, Sync, and
// Env::RenameFile).  A FaultPlan arms one fault at the k-th such
// mutation:
//
//   kTornWrite   the write persists only a random prefix and the
//                "process" loses power: every later mutation fails with
//                kUnavailable ("simulated crash").  Models power loss
//                mid-write -- the caller never observes an error for
//                the torn bytes themselves.
//   kShortWrite  a random prefix is written and the call returns
//                kUnavailable; the environment stays alive (the caller
//                sees the failure and must stop acknowledging).
//   kFailedSync  Sync returns kUnavailable without syncing; alive.
//                After this, the durable state of unsynced bytes is
//                unknown (the fsync-gate), so callers must go
//                read-only.
//   kNoSpace     the write persists nothing and returns kUnavailable
//                (ENOSPC); alive.
//   kBitFlip     one random bit of the buffer is flipped and the write
//                "succeeds" -- silent media corruption the CRC/checksum
//                layers must catch at recovery.
//
// Crash() forces the powered-off state at any time (e.g. at the end of
// a scripted run); recovery tests then reopen the same files through a
// clean Env.  Counting is deterministic, so a calibration pass with an
// unarmed env yields the mutation count M and a sweep over trigger in
// [0, M) visits every fault point of the script.

#ifndef PMI_STORAGE_FAULT_ENV_H_
#define PMI_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "src/core/rng.h"
#include "src/storage/env.h"

namespace pmi {

enum class FaultKind : uint8_t {
  kNone = 0,
  kTornWrite,
  kShortWrite,
  kFailedSync,
  kNoSpace,
  kBitFlip,
};

inline const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTornWrite: return "torn_write";
    case FaultKind::kShortWrite: return "short_write";
    case FaultKind::kFailedSync: return "failed_sync";
    case FaultKind::kNoSpace: return "no_space";
    case FaultKind::kBitFlip: return "bit_flip";
  }
  return "unknown";
}

/// One scripted fault: `kind` fires at the `trigger`-th mutation
/// (0-based); `seed` randomizes the torn prefix length / flipped bit.
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  uint64_t trigger = 0;
  uint64_t seed = 1;
};

class FaultInjectingEnv final : public Env {
 public:
  /// `base` must outlive this env.
  explicit FaultInjectingEnv(Env* base) : base_(base), rng_(1) {}

  /// Installs `plan` and resets the mutation counter and crash state.
  void Arm(const FaultPlan& plan);

  /// Mutations observed since the last Arm (the sweep domain).
  uint64_t mutation_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return mutations_;
  }

  /// True once the armed fault has fired.
  bool triggered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return triggered_;
  }

  /// True while simulating the post-crash powered-off state.
  bool crashed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }

  /// Forces the powered-off state: every later mutation fails.
  void Crash() {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_ = true;
  }

  // -- Env ----------------------------------------------------------------
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Status CreateExclusive(const std::string& path,
                         std::string_view contents) override;
  StatusOr<std::unique_ptr<FileLock>> LockFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;


 private:
  friend class FaultWritableFile;  // defined in fault_env.cc

  /// Registers one mutation; returns the fault to inject now (kNone for
  /// a clean pass-through) or kUnavailable when already crashed.
  Status NextMutation(FaultKind* inject);

  /// Uniform draw in [0, n) from the shared plan RNG.
  size_t RandomBelow(size_t n);

  /// Re-arms a kFailedSync that landed on an Append so it fires at the
  /// next mutation instead (see FaultWritableFile::Append).
  void RearmSyncFault();

  /// All mutable state sits behind one mutex: a concurrent stress run
  /// drives one env from a writer thread and N reader threads at once,
  /// and the counting must stay exact (it is the fault-sweep domain).
  mutable std::mutex mu_;
  Env* base_;
  FaultPlan plan_;
  Rng rng_;
  uint64_t mutations_ = 0;
  bool triggered_ = false;
  bool crashed_ = false;
};

}  // namespace pmi

#endif  // PMI_STORAGE_FAULT_ENV_H_
