#include "src/storage/wal.h"

#include <algorithm>
#include <cstring>

namespace pmi {

namespace {

constexpr uint32_t kWalBodyBytes = 1 + 8 + 4;  // op + seq + id
constexpr uint32_t kWalHeadBytes = 4 + 4;      // length + crc
// Geometry sanity bound: bodies are fixed-size today; anything larger
// is future format growth, anything beyond this is garbage read as a
// length field.
constexpr uint32_t kWalMaxBodyBytes = 1 << 20;

uint32_t CrcTableEntry(uint32_t i) {
  uint32_t c = i;
  for (int k = 0; k < 8; ++k) {
    c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;  // reflected CRC32C poly
  }
  return c;
}

struct CrcTable {
  uint32_t entries[256];
  CrcTable() {
    for (uint32_t i = 0; i < 256; ++i) entries[i] = CrcTableEntry(i);
  }
};

}  // namespace

uint32_t Crc32c(const void* data, size_t n) {
  static const CrcTable table;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

StatusOr<SyncMode> ParseSyncMode(const std::string& name) {
  if (name == "always") return SyncMode::kAlways;
  if (name == "interval") return SyncMode::kInterval;
  if (name == "never") return SyncMode::kNever;
  return InvalidArgumentError("unknown sync mode \"" + name +
                              "\" (supported: always, interval, never)");
}

void AppendWalRecord(const WalRecord& record, std::string* out) {
  char body[kWalBodyBytes];
  body[0] = static_cast<char>(record.op);
  std::memcpy(body + 1, &record.seq, 8);
  std::memcpy(body + 9, &record.id, 4);
  uint32_t len = kWalBodyBytes;
  uint32_t crc = Crc32c(body, kWalBodyBytes);
  out->append(reinterpret_cast<const char*>(&len), 4);
  out->append(reinterpret_cast<const char*>(&crc), 4);
  out->append(body, kWalBodyBytes);
}

WalWriter::WalWriter(std::unique_ptr<WritableFile> file, SyncMode mode,
                     uint32_t sync_interval_commits)
    : file_(std::move(file)),
      mode_(mode),
      sync_interval_commits_(std::max<uint32_t>(1, sync_interval_commits)) {}

void WalWriter::Add(const WalRecord& record) {
  AppendWalRecord(record, &pending_);
}

Status WalWriter::Commit() {
  if (!status_.ok()) return status_;
  if (!pending_.empty()) {
    Status s = file_->Append(pending_);
    if (!s.ok()) {
      // The file may now hold a torn batch; everything after it would
      // replay out of sequence.  Go sticky-failed.
      status_ = s;
      return s;
    }
    pending_.clear();
  }
  ++commits_since_sync_;
  bool want_sync = mode_ == SyncMode::kAlways ||
                   (mode_ == SyncMode::kInterval &&
                    commits_since_sync_ >= sync_interval_commits_);
  if (want_sync) {
    Status s = file_->Sync();
    if (!s.ok()) {
      // Failed fsync: the durable state of the tail is unknown (the
      // fsync-gate).  Never acknowledge past it.
      status_ = s;
      return s;
    }
    commits_since_sync_ = 0;
  }
  return OkStatus();
}

Status WalWriter::Sync() {
  if (!status_.ok()) return status_;
  Status s = file_->Sync();
  if (!s.ok()) status_ = s;
  commits_since_sync_ = 0;
  return s;
}

StatusOr<WalReplay> ReadWalFile(Env* env, const std::string& path,
                                uint64_t expect_first_seq) {
  PMI_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
  WalReplay replay;
  size_t pos = 0;
  uint64_t expect_seq = expect_first_seq;
  while (bytes.size() - pos >= kWalHeadBytes) {
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (len < kWalBodyBytes || len > kWalMaxBodyBytes ||
        len > bytes.size() - pos - kWalHeadBytes) {
      replay.truncated_tail = true;  // torn length field or torn body
      break;
    }
    const char* body = bytes.data() + pos + kWalHeadBytes;
    if (Crc32c(body, len) != crc) {
      replay.truncated_tail = true;  // torn or bit-flipped record
      break;
    }
    WalRecord record;
    uint8_t op = static_cast<uint8_t>(body[0]);
    if (op != static_cast<uint8_t>(WalOp::kInsert) &&
        op != static_cast<uint8_t>(WalOp::kRemove)) {
      // CRC-valid but semantically unknown: written by a future format.
      return FailedPreconditionError(
          "WAL \"" + path + "\" holds record op " + std::to_string(op) +
          " this build does not understand");
    }
    record.op = static_cast<WalOp>(op);
    std::memcpy(&record.seq, body + 1, 8);
    std::memcpy(&record.id, body + 9, 4);
    if (expect_seq != 0 && record.seq != expect_seq) {
      return DataLossError(
          "WAL \"" + path + "\" has a sequence gap: expected " +
          std::to_string(expect_seq) + ", found " +
          std::to_string(record.seq) +
          " -- replaying across it would serve a non-prefix state");
    }
    expect_seq = record.seq + 1;
    replay.records.push_back(record);
    pos += kWalHeadBytes + len;
    replay.valid_bytes = pos;
  }
  if (pos < bytes.size() && !replay.truncated_tail) {
    replay.truncated_tail = true;  // trailing partial head
  }
  return replay;
}

}  // namespace pmi
