// Shared, thread-safe page cache for the disk-resident indexes.
//
// PagedFile (src/storage/paged_file.h) keeps the paper's fixed-size LRU
// *accounting simulation* -- the logical PA numbers every conformance
// test pins.  BufferPool is the *physical* layer underneath it: one
// cache of page frames, shared by any number of stores (each PagedFile
// registers itself as a PageStore), handed out through RAII pin/unpin
// PageHandles so concurrent readers can hold page bytes without copying
// and without racing eviction.
//
// Invariants the pool guarantees (and tests/buffer_pool_test.cc pins):
//
//   * A pinned frame is never evicted and never moves: handle data
//     pointers stay valid for the life of the handle.
//   * Eviction uses the CLOCK sweep and only takes frames with zero
//     pins and a clear reference bit; dirty victims are written back
//     through the Status-based PageStore seam *before* the frame is
//     reused -- a page is never torn.
//   * A faulted write-back never loses data: the victim stays resident
//     and dirty, the failure is counted, and the sweep moves on.  The
//     explicit EvictPage / FlushStore entry points surface the typed
//     Status to the caller.
//   * Progress never deadlocks: when every frame is pinned (e.g. a
//     capacity-1 pool with a parent and child page pinned at once) the
//     pool overcommits a frame past capacity rather than blocking.
//
// Cost accounting: a pool hit charges `pool_hits`, a miss that reaches
// the store charges `physical_reads`, and a write-back charges
// `physical_writes` -- all through CounterScope::Active so parallel
// batch shards attribute physical I/O exactly like logical I/O.  The
// logical page_reads/page_writes are charged by PagedFile's simulation
// and are untouched by pool size: logical PA is bit-identical whether
// the pool holds one frame or the whole file.
//
// Locking: one mutex serializes pool metadata and store I/O (simple and
// TSan-clean; the stores are memcpy-fast in the common in-memory case).
// Pin counts are atomic so handle release never takes the lock, and the
// eviction sweep's pins==0 check (acquire) pairs with the release
// decrement in PageHandle to order a writer's last stores before any
// write-back read of the frame.

#ifndef PMI_STORAGE_BUFFER_POOL_H_
#define PMI_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/counters.h"
#include "src/core/status.h"
#include "src/storage/env.h"

namespace pmi {

/// Identifier of a page within one store (one PagedFile).
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = UINT32_MAX;

class PageHandle;

/// The backing-store seam under the pool: where page bytes come from on
/// a miss and go to on a write-back.  Both calls are made with the pool
/// mutex held, so implementations need no locking of their own, but
/// must not call back into the pool.
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Fills `dst` (page_size bytes) with the stored contents of `page`.
  virtual Status ReadInto(PageId page, char* dst) = 0;

  /// Durably stores the page_size bytes at `src` as the new contents of
  /// `page`.  On a non-OK return the previously stored contents must
  /// still be readable (no torn page).
  virtual Status WriteBack(PageId page, const char* src) = 0;
};

/// Cumulative pool-wide statistics; readable concurrently with queries.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t write_backs = 0;
  uint64_t write_back_failures = 0;
  uint64_t readaheads = 0;
};

class BufferPool {
 public:
  /// One cached page plus its bookkeeping.  Public only so PageHandle
  /// can inline data access; not part of the API surface.
  struct Frame {
    std::unique_ptr<char[]> data;
    uint64_t store_id = 0;
    PageId page = kInvalidPageId;
    std::atomic<uint32_t> pins{0};
    bool valid = false;       // holds a live page (in map_)
    bool dirty = false;       // frame newer than the store
    bool referenced = false;  // CLOCK second-chance bit
  };

  /// `cache_bytes` rounds down to whole frames (>= 1 frame).
  BufferPool(uint32_t page_size, size_t cache_bytes);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Adds a store to the pool.  `fallback_counters` receives this
  /// store's physical-I/O charges when no CounterScope is open (may be
  /// null for uncounted stores).  Returns the id used in every other
  /// call.  The store must stay alive until UnregisterStore.
  uint64_t RegisterStore(PageStore* store, PerfCounters* fallback_counters);

  /// Discards the store's frames (dirty ones too, without write-back --
  /// the caller flushed first if it cared) and forgets the store.
  void UnregisterStore(uint64_t store_id);

  /// Pins `page` of `store_id` into a frame and returns a handle.  A
  /// write pin (`for_write`) marks the frame dirty at pin time.  `load`
  /// = false skips the store read on a miss and hands back a zeroed
  /// frame (wholesale overwrite).  Fails only on a store read error or
  /// an unknown store; never on cache pressure (see overcommit above).
  StatusOr<PageHandle> Pin(uint64_t store_id, PageId page, bool for_write,
                           bool load = true);

  /// Best-effort: loads up to `count` pages starting at `first` into
  /// unpinned frames without evicting anything.  Stops early at cache
  /// pressure or a store error.  Charges physical_reads for pages read.
  void Readahead(uint64_t store_id, PageId first, uint32_t count);

  /// Writes back every dirty frame of the store (charging
  /// physical_writes).  On store failure the frame stays dirty and
  /// resident; the first error is returned after all frames are tried.
  Status FlushStore(uint64_t store_id);

  /// Writes back `page` if it is resident and dirty -- uncharged: the
  /// snapshot path uses this to make raw store bytes current, which
  /// models copying the file wholesale, not a paged workload.
  Status FlushPageIfDirty(uint64_t store_id, PageId page);

  /// Evicts one page: write-back if dirty (charged), then frees the
  /// frame.  Not resident is OK.  Pinned is kFailedPrecondition.  A
  /// faulted write-back returns the store's typed error and leaves the
  /// page resident and dirty -- nothing is lost.
  Status EvictPage(uint64_t store_id, PageId page);

  /// Discards the store's frames without write-back (dirty ones too);
  /// the store stays registered.  Used by snapshot load, which replaces
  /// the backing bytes wholesale.
  void DropStore(uint64_t store_id);

  /// Evicts every clean unpinned frame (no store I/O): the cold-cache
  /// reset used by benchmarks.  Dirty frames stay resident.
  void DropCleanFrames();

  BufferPoolStats stats() const;

  uint32_t page_size() const { return page_size_; }
  size_t capacity_frames() const { return capacity_frames_; }

  /// Frames currently holding a live page (may exceed capacity while
  /// overcommitted under pin pressure).
  size_t resident_frames() const;

 private:
  friend class PageHandle;

  struct StoreEntry {
    PageStore* store = nullptr;
    PerfCounters* counters = nullptr;
  };

  static uint64_t FrameKey(uint64_t store_id, PageId page) {
    return (store_id << 32) | uint64_t{page};
  }

  /// A frame ready for reuse: free list, then growth to capacity, then
  /// CLOCK eviction, then overcommit.  Never fails.
  Frame* AcquireFrameLocked();
  Frame* NewFrameLocked();
  Frame* FindVictimLocked();
  void DetachFrameLocked(Frame* f);

  const uint32_t page_size_;
  const size_t capacity_frames_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<Frame*> free_;
  size_t clock_hand_ = 0;
  std::unordered_map<uint64_t, Frame*> map_;        // FrameKey -> frame
  std::unordered_map<uint64_t, StoreEntry> stores_;  // store_id -> entry
  uint64_t next_store_id_ = 1;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> write_backs_{0};
  std::atomic<uint64_t> write_back_failures_{0};
  std::atomic<uint64_t> readaheads_{0};
};

/// RAII pin on one pool frame.  While any handle to a frame lives, the
/// frame is not evicted and its data pointer is stable.  Copying
/// re-pins; releasing the last handle makes the frame evictable again
/// (it stays cached until the CLOCK sweep takes it).
class PageHandle {
 public:
  PageHandle() = default;

  PageHandle(const PageHandle& o)
      : pool_(o.pool_), frame_(o.frame_), writable_(o.writable_) {
    // Re-pinning from a live pin: the count is already nonzero, so a
    // relaxed increment cannot race eviction's pins==0 check.
    if (frame_ != nullptr) {
      frame_->pins.fetch_add(1, std::memory_order_relaxed);
    }
  }

  PageHandle& operator=(const PageHandle& o) {
    if (this == &o) return *this;
    if (o.frame_ != nullptr) {
      o.frame_->pins.fetch_add(1, std::memory_order_relaxed);
    }
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    writable_ = o.writable_;
    return *this;
  }

  PageHandle(PageHandle&& o) noexcept
      : pool_(o.pool_), frame_(o.frame_), writable_(o.writable_) {
    o.pool_ = nullptr;
    o.frame_ = nullptr;
    o.writable_ = false;
  }

  PageHandle& operator=(PageHandle&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      frame_ = o.frame_;
      writable_ = o.writable_;
      o.pool_ = nullptr;
      o.frame_ = nullptr;
      o.writable_ = false;
    }
    return *this;
  }

  ~PageHandle() { Release(); }

  /// Read access to the pinned page bytes.
  const char* data() const {
    assert(frame_ != nullptr);
    return frame_->data.get();
  }

  /// Write access; only valid on a handle pinned for_write.
  char* mutable_data() const {
    assert(frame_ != nullptr && writable_);
    return frame_->data.get();
  }

  bool writable() const { return writable_; }
  PageId page() const { return frame_ != nullptr ? frame_->page : kInvalidPageId; }
  explicit operator bool() const { return frame_ != nullptr; }

  /// Drops the pin early (idempotent).
  void Reset() { Release(); }

 private:
  friend class BufferPool;

  PageHandle(BufferPool* pool, BufferPool::Frame* frame, bool writable)
      : pool_(pool), frame_(frame), writable_(writable) {}

  void Release() {
    if (frame_ != nullptr) {
      // Release: orders this handle's stores before any write-back read
      // by an evictor that observes pins == 0 (acquire) under the pool
      // mutex.
      frame_->pins.fetch_sub(1, std::memory_order_release);
      frame_ = nullptr;
      pool_ = nullptr;
      writable_ = false;
    }
  }

  BufferPool* pool_ = nullptr;
  BufferPool::Frame* frame_ = nullptr;
  bool writable_ = false;
};

/// Log-structured PageStore over the Env seam, for exercising the pool
/// against real (and fault-injected) file I/O.  Every write-back
/// appends a [page_id][crc][bytes] record and syncs; the offset map
/// advances only after a successful sync, so a torn or failed append
/// leaves the previous version of the page readable -- the pool's
/// "never a torn page" contract holds down to the file layer.  Reads of
/// never-written pages return zeroes (a sparse store).
class EnvPageStore : public PageStore {
 public:
  /// `env` must outlive the store; `path` is created/truncated on Open.
  EnvPageStore(Env* env, std::string path, uint32_t page_size);
  ~EnvPageStore() override;

  Status Open();

  Status ReadInto(PageId page, char* dst) override;
  Status WriteBack(PageId page, const char* src) override;

  /// Page ids in durable write-back order (test hook for the crash-safe
  /// ordering invariant).
  const std::vector<PageId>& write_order() const { return write_order_; }

 private:
  Env* env_;
  std::string path_;
  uint32_t page_size_;
  std::unique_ptr<WritableFile> file_;
  std::unordered_map<PageId, uint64_t> offsets_;  // latest durable record
  uint64_t next_offset_ = 0;
  bool resync_needed_ = false;  // failed append left a partial record
  std::vector<PageId> write_order_;
};

}  // namespace pmi

#endif  // PMI_STORAGE_BUFFER_POOL_H_
