#include "src/storage/paged_file.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace pmi {

PagedFile::PagedFile(uint32_t page_size, uint32_t cache_bytes,
                     PerfCounters* counters, std::shared_ptr<BufferPool> pool)
    : page_size_(page_size),
      capacity_frames_(std::max<uint32_t>(1, cache_bytes / page_size)),
      counters_(counters),
      pool_(std::move(pool)) {
  assert(page_size_ >= 64);
  if (pool_ == nullptr) {
    pool_ = std::make_shared<BufferPool>(page_size_, cache_bytes);
  }
  assert(pool_->page_size() == page_size_);
  store_id_ = pool_->RegisterStore(this, counters_);
}

PagedFile::~PagedFile() { pool_->UnregisterStore(store_id_); }

PageId PagedFile::Allocate() {
  pages_.push_back(std::make_unique<char[]>(page_size_));
  std::memset(pages_.back().get(), 0, page_size_);
  return num_pages() - 1;
}

namespace {

Status PageOutOfRange(const char* verb, PageId id, uint32_t num_pages) {
  return DataLossError(std::string("page ") + verb + " out of range: page " +
                       std::to_string(id) + " of a " +
                       std::to_string(num_pages) + "-page file");
}

}  // namespace

Status PagedFile::ReadInto(PageId page, char* dst) {
  assert(page < pages_.size());
  std::memcpy(dst, pages_[page].get(), page_size_);
  return OkStatus();
}

Status PagedFile::WriteBack(PageId page, const char* src) {
  assert(page < pages_.size());
  std::memcpy(pages_[page].get(), src, page_size_);
  return OkStatus();
}

StatusOr<PageHandle> PagedFile::ReadPage(PageId id) const {
  if (id >= pages_.size()) return PageOutOfRange("read", id, num_pages());
  {
    std::lock_guard<std::mutex> lock(sim_mu_);
    TouchLocked(id, /*dirty=*/false);
  }
  return pool_->Pin(store_id_, id, /*for_write=*/false);
}

StatusOr<PageHandle> PagedFile::WritePage(PageId id, bool load) {
  if (id >= pages_.size()) return PageOutOfRange("write", id, num_pages());
  {
    std::lock_guard<std::mutex> lock(sim_mu_);
    // A wholesale overwrite (load == false) skips the read charge a real
    // buffer manager would also skip; either way the frame becomes dirty.
    auto it = resident_.find(id);
    if (it == resident_.end() && load) {
      ++CounterScope::Active(counters_)->page_reads;
    }
    TouchLocked(id, /*dirty=*/true);
  }
  return pool_->Pin(store_id_, id, /*for_write=*/true, load);
}

PageHandle PagedFile::Read(PageId id) const {
  StatusOr<PageHandle> page = ReadPage(id);
  CheckOk(page.ok() ? OkStatus() : page.status(), "PagedFile::Read");
  return std::move(page).value();
}

PageHandle PagedFile::Write(PageId id, bool load) {
  StatusOr<PageHandle> page = WritePage(id, load);
  CheckOk(page.ok() ? OkStatus() : page.status(), "PagedFile::Write");
  return std::move(page).value();
}

void PagedFile::ReadaheadPages(PageId first, uint32_t count) const {
  if (first >= pages_.size()) return;
  uint32_t avail = num_pages() - first;
  pool_->Readahead(store_id_, first, std::min(count, avail));
}

void PagedFile::Flush() {
  {
    std::lock_guard<std::mutex> lock(sim_mu_);
    for (SimFrame& f : lru_) {
      if (f.dirty) {
        ++CounterScope::Active(counters_)->page_writes;
        f.dirty = false;
      }
    }
  }
  // The in-memory backing store never fails a write-back.
  CheckOk(pool_->FlushStore(store_id_), "PagedFile::Flush");
}

void PagedFile::DropCache() {
  Flush();
  {
    std::lock_guard<std::mutex> lock(sim_mu_);
    lru_.clear();
    resident_.clear();
  }
  pool_->DropStore(store_id_);
}

const char* PagedFile::RawPage(PageId id) const {
  CheckOk(pool_->FlushPageIfDirty(store_id_, id), "PagedFile::RawPage");
  return pages_[id].get();
}

void PagedFile::ResetPages() {
  pool_->DropStore(store_id_);
  {
    std::lock_guard<std::mutex> lock(sim_mu_);
    lru_.clear();
    resident_.clear();
  }
  pages_.clear();
}

char* PagedFile::AppendRawPage() {
  pages_.push_back(std::make_unique<char[]>(page_size_));
  char* p = pages_.back().get();
  std::memset(p, 0, page_size_);
  return p;
}

void PagedFile::TouchLocked(PageId id, bool dirty) const {
  auto it = resident_.find(id);
  if (it != resident_.end()) {
    it->second->dirty |= dirty;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (!dirty) {
    ++CounterScope::Active(counters_)->page_reads;  // pool miss, read path
  }
  lru_.push_front(SimFrame{id, dirty});
  resident_[id] = lru_.begin();
  EvictIfNeeded();
}

void PagedFile::EvictIfNeeded() const {
  while (lru_.size() > capacity_frames_) {
    SimFrame victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim.id);
    if (victim.dirty) ++CounterScope::Active(counters_)->page_writes;
  }
}

}  // namespace pmi
