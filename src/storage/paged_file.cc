#include "src/storage/paged_file.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace pmi {

PagedFile::PagedFile(uint32_t page_size, uint32_t cache_bytes,
                     PerfCounters* counters)
    : page_size_(page_size),
      capacity_frames_(std::max<uint32_t>(1, cache_bytes / page_size)),
      counters_(counters) {
  assert(page_size_ >= 64);
}

PageId PagedFile::Allocate() {
  pages_.push_back(std::make_unique<char[]>(page_size_));
  std::memset(pages_.back().get(), 0, page_size_);
  return num_pages() - 1;
}

namespace {

Status PageOutOfRange(const char* verb, PageId id, uint32_t num_pages) {
  return DataLossError(std::string("page ") + verb + " out of range: page " +
                       std::to_string(id) + " of a " +
                       std::to_string(num_pages) + "-page file");
}

}  // namespace

StatusOr<const char*> PagedFile::ReadPage(PageId id) const {
  if (id >= pages_.size()) return PageOutOfRange("read", id, num_pages());
  Touch(id, /*dirty=*/false);
  return static_cast<const char*>(pages_[id].get());
}

StatusOr<char*> PagedFile::WritePage(PageId id, bool load) {
  if (id >= pages_.size()) return PageOutOfRange("write", id, num_pages());
  // A wholesale overwrite (load == false) skips the read charge a real
  // buffer manager would also skip; either way the frame becomes dirty.
  auto it = resident_.find(id);
  if (it == resident_.end() && load) {
    ++counters_->page_reads;
  }
  Touch(id, /*dirty=*/true);
  return pages_[id].get();
}

const char* PagedFile::Read(PageId id) const {
  StatusOr<const char*> page = ReadPage(id);
  CheckOk(page.ok() ? OkStatus() : page.status(), "PagedFile::Read");
  return *page;
}

char* PagedFile::Write(PageId id, bool load) {
  StatusOr<char*> page = WritePage(id, load);
  CheckOk(page.ok() ? OkStatus() : page.status(), "PagedFile::Write");
  return *page;
}

void PagedFile::Flush() {
  for (Frame& f : lru_) {
    if (f.dirty) {
      ++counters_->page_writes;
      f.dirty = false;
    }
  }
}

void PagedFile::DropCache() {
  Flush();
  lru_.clear();
  resident_.clear();
}

void PagedFile::Touch(PageId id, bool dirty) const {
  auto it = resident_.find(id);
  if (it != resident_.end()) {
    it->second->dirty |= dirty;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (!dirty) ++counters_->page_reads;  // pool miss on a read path
  lru_.push_front(Frame{id, dirty});
  resident_[id] = lru_.begin();
  EvictIfNeeded();
}

void PagedFile::EvictIfNeeded() const {
  while (lru_.size() > capacity_frames_) {
    Frame victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim.id);
    if (victim.dirty) ++counters_->page_writes;
  }
}

}  // namespace pmi
