// Record file for object payloads.
//
// The Omni-family, M-index, and SPB-tree keep data objects out of their
// index structures in a separate random access file (Sections 5.2-5.4),
// so index node size is independent of object size.  RecordFile is that
// store: an append-only byte store over a PagedFile where reading a
// record charges one page read per touched page (minus buffer-pool
// hits), which reproduces the paper's duplicate-RAF-page-access
// behaviour for MkNNQ.  (The OS-file abstraction of the same name lives
// in src/storage/env.h; this class is the paper's "RAF" record store.)

#ifndef PMI_STORAGE_RAF_H_
#define PMI_STORAGE_RAF_H_

#include <cstdint>
#include <vector>

#include "src/core/status.h"
#include "src/storage/paged_file.h"

namespace pmi {

/// Location of a stored record.
struct RafRef {
  uint64_t offset = 0;
  uint32_t length = 0;
};

/// Append-only record store over a PagedFile.
class RecordFile {
 public:
  explicit RecordFile(PagedFile* file) : file_(file) {}

  /// Appends `len` bytes; returns where they landed.
  RafRef Append(const char* data, uint32_t len);

  /// Reads a record into `out` (resized).  The caller may reinterpret the
  /// buffer start as float data: the vector's allocation is suitably
  /// aligned and records are copied to offset 0.  A ref outside the
  /// appended byte range is kDataLoss, never an out-of-bounds read.
  Status ReadRecord(const RafRef& ref, std::vector<char>* out) const;

  uint64_t size_bytes() const { return end_; }
  size_t disk_bytes() const { return file_->bytes(); }

 private:
  PagedFile* file_;
  std::vector<PageId> pages_;  // RAF byte space -> file pages, in order
  uint64_t end_ = 0;           // append position
};

}  // namespace pmi

#endif  // PMI_STORAGE_RAF_H_
