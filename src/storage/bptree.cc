#include "src/storage/bptree.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

namespace pmi {
namespace {

constexpr uint32_t kHeaderSize = 8;  // u8 leaf | u8 pad | u16 count | u32 next

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void StoreU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }

}  // namespace

BPlusTree::BPlusTree(PagedFile* file, uint32_t value_size, uint32_t agg_dims,
                     PointFn point_fn)
    : file_(file),
      value_size_(value_size),
      agg_dims_(agg_dims),
      point_fn_(std::move(point_fn)) {
  assert(agg_dims_ == 0 || point_fn_);
  // One slot per node stays in reserve so an insert can temporarily
  // overfill the page image before the immediate split.
  uint32_t leaf_slots = (file_->page_size() - kHeaderSize) / leaf_entry_size();
  uint32_t internal_slots =
      (file_->page_size() - kHeaderSize) / internal_entry_size();
  assert(leaf_slots >= 3 && internal_slots >= 3);
  leaf_capacity_ = leaf_slots - 1;
  internal_capacity_ = internal_slots - 1;
  root_ = file_->Allocate();
  SetHeader(file_->Write(root_, /*load=*/false).mutable_data(), /*leaf=*/true,
            0, kInvalidPageId);
}

// -- raw page accessors -------------------------------------------------------

bool BPlusTree::IsLeaf(const char* p) { return p[0] != 0; }

uint32_t BPlusTree::Count(const char* p) {
  uint16_t c;
  std::memcpy(&c, p + 2, 2);
  return c;
}

void BPlusTree::SetHeader(char* p, bool leaf, uint32_t count, PageId next) {
  p[0] = leaf ? 1 : 0;
  p[1] = 0;
  uint16_t c = static_cast<uint16_t>(count);
  std::memcpy(p + 2, &c, 2);
  StoreU32(p + 4, next);
}

void BPlusTree::SetCount(char* p, uint32_t count) {
  uint16_t c = static_cast<uint16_t>(count);
  std::memcpy(p + 2, &c, 2);
}

PageId BPlusTree::Next(const char* p) { return LoadU32(p + 4); }

void BPlusTree::SetNext(char* p, PageId next) { StoreU32(p + 4, next); }

char* BPlusTree::LeafEntry(char* p, uint32_t i) const {
  return p + kHeaderSize + size_t(i) * leaf_entry_size();
}

const char* BPlusTree::LeafEntry(const char* p, uint32_t i) const {
  return p + kHeaderSize + size_t(i) * leaf_entry_size();
}

char* BPlusTree::InternalEntry(char* p, uint32_t i) const {
  return p + kHeaderSize + size_t(i) * internal_entry_size();
}

const char* BPlusTree::InternalEntry(const char* p, uint32_t i) const {
  return p + kHeaderSize + size_t(i) * internal_entry_size();
}

// Internal entry layout: [child u32][sep u64][agg lo/hi floats].

uint64_t BPlusTree::NodeView::key(uint32_t i) const {
  if (is_leaf) return LoadU64(raw + kHeaderSize + size_t(i) * tree->leaf_entry_size());
  return LoadU64(raw + kHeaderSize + size_t(i) * tree->internal_entry_size() + 4);
}

const char* BPlusTree::NodeView::value(uint32_t i) const {
  return raw + kHeaderSize + size_t(i) * tree->leaf_entry_size() + 8;
}

PageId BPlusTree::NodeView::child(uint32_t i) const {
  return LoadU32(raw + kHeaderSize + size_t(i) * tree->internal_entry_size());
}

const float* BPlusTree::NodeView::agg_lo(uint32_t i) const {
  return reinterpret_cast<const float*>(
      raw + kHeaderSize + size_t(i) * tree->internal_entry_size() + 12);
}

const float* BPlusTree::NodeView::agg_hi(uint32_t i) const {
  return agg_lo(i) + tree->agg_dims_;
}

PageId BPlusTree::NodeView::next() const { return Next(raw); }

BPlusTree::NodeView BPlusTree::ReadNode(PageId page) const {
  NodeView v;
  v.pin = file_->Read(page);
  v.raw = v.pin.data();
  v.is_leaf = IsLeaf(v.raw);
  v.count = Count(v.raw);
  v.tree = this;
  return v;
}

// -- summaries ----------------------------------------------------------------

BPlusTree::Summary BPlusTree::ComputeSummary(PageId page) const {
  PageHandle h = file_->Read(page);
  const char* p = h.data();
  Summary s;
  s.agg.assign(2 * agg_dims_, 0);
  for (uint32_t d = 0; d < agg_dims_; ++d) {
    s.agg[d] = std::numeric_limits<float>::max();
    s.agg[agg_dims_ + d] = std::numeric_limits<float>::lowest();
  }
  uint32_t n = Count(p);
  std::vector<float> coords(agg_dims_);
  for (uint32_t i = 0; i < n; ++i) {
    if (IsLeaf(p)) {
      const char* e = LeafEntry(p, i);
      s.max_key = std::max(s.max_key, LoadU64(e));
      if (agg_dims_ > 0) {
        point_fn_(LoadU64(e), e + 8, coords.data());
        for (uint32_t d = 0; d < agg_dims_; ++d) {
          s.agg[d] = std::min(s.agg[d], coords[d]);
          s.agg[agg_dims_ + d] = std::max(s.agg[agg_dims_ + d], coords[d]);
        }
      }
    } else {
      const char* e = InternalEntry(p, i);
      s.max_key = std::max(s.max_key, LoadU64(e + 4));
      if (agg_dims_ > 0) {
        const float* lo = reinterpret_cast<const float*>(e + 12);
        const float* hi = lo + agg_dims_;
        for (uint32_t d = 0; d < agg_dims_; ++d) {
          s.agg[d] = std::min(s.agg[d], lo[d]);
          s.agg[agg_dims_ + d] = std::max(s.agg[agg_dims_ + d], hi[d]);
        }
      }
    }
  }
  return s;
}

void BPlusTree::WriteInternalEntry(char* node, uint32_t i, PageId child,
                                   const Summary& s) const {
  char* e = InternalEntry(node, i);
  StoreU32(e, child);
  StoreU64(e + 4, s.max_key);
  if (agg_dims_ > 0) {
    std::memcpy(e + 12, s.agg.data(), 8 * agg_dims_);
  }
}

// -- insertion ----------------------------------------------------------------

BPlusTree::SplitResult BPlusTree::InsertRec(PageId page, uint64_t key,
                                            const char* value) {
  PageHandle ph = file_->Write(page);
  char* p = ph.mutable_data();
  SplitResult res;
  if (IsLeaf(p)) {
    uint32_t n = Count(p);
    // Position: after the last entry with key <= new key (append-friendly).
    uint32_t pos = n;
    while (pos > 0 && LoadU64(LeafEntry(p, pos - 1)) > key) --pos;
    std::memmove(LeafEntry(p, pos + 1), LeafEntry(p, pos),
                 size_t(n - pos) * leaf_entry_size());
    char* e = LeafEntry(p, pos);
    StoreU64(e, key);
    std::memcpy(e + 8, value, value_size_);
    SetCount(p, ++n);
    ++entry_count_;
    if (n <= leaf_capacity_) {
      res.left = ComputeSummary(page);
      return res;
    }
    // Split: left keeps ceil(n/2).
    uint32_t left_n = n / 2;
    uint32_t right_n = n - left_n;
    PageId right = file_->Allocate();
    PageHandle rh = file_->Write(right, /*load=*/false);
    char* rp = rh.mutable_data();
    SetHeader(rp, /*leaf=*/true, right_n, Next(p));
    std::memcpy(LeafEntry(rp, 0), LeafEntry(p, left_n),
                size_t(right_n) * leaf_entry_size());
    SetCount(p, left_n);
    SetNext(p, right);
    res.split = true;
    res.right_page = right;
    res.left = ComputeSummary(page);
    res.right = ComputeSummary(right);
    return res;
  }

  // Internal: first child whose separator (max key) >= key, else last.
  uint32_t n = Count(p);
  assert(n > 0);
  uint32_t idx = 0;
  while (idx + 1 < n && LoadU64(InternalEntry(p, idx) + 4) < key) ++idx;
  PageId child = LoadU32(InternalEntry(p, idx));
  SplitResult sub = InsertRec(child, key, value);
  ph = file_->Write(page);  // re-touch (child writes shifted the LRU)
  p = ph.mutable_data();
  WriteInternalEntry(p, idx, child, sub.left);
  if (sub.split) {
    std::memmove(InternalEntry(p, idx + 2), InternalEntry(p, idx + 1),
                 size_t(n - idx - 1) * internal_entry_size());
    WriteInternalEntry(p, idx + 1, sub.right_page, sub.right);
    SetCount(p, ++n);
  }
  if (n <= internal_capacity_) {
    res.left = ComputeSummary(page);
    return res;
  }
  uint32_t left_n = n / 2;
  uint32_t right_n = n - left_n;
  PageId right = file_->Allocate();
  PageHandle rh = file_->Write(right, /*load=*/false);
  char* rp = rh.mutable_data();
  SetHeader(rp, /*leaf=*/false, right_n, kInvalidPageId);
  std::memcpy(InternalEntry(rp, 0), InternalEntry(p, left_n),
              size_t(right_n) * internal_entry_size());
  SetCount(p, left_n);
  res.split = true;
  res.right_page = right;
  res.left = ComputeSummary(page);
  res.right = ComputeSummary(right);
  return res;
}

void BPlusTree::Insert(uint64_t key, const char* value) {
  SplitResult res = InsertRec(root_, key, value);
  if (!res.split) return;
  PageId new_root = file_->Allocate();
  PageHandle ph = file_->Write(new_root, /*load=*/false);
  char* p = ph.mutable_data();
  SetHeader(p, /*leaf=*/false, 2, kInvalidPageId);
  WriteInternalEntry(p, 0, root_, res.left);
  WriteInternalEntry(p, 1, res.right_page, res.right);
  root_ = new_root;
  ++height_;
}

// -- removal ------------------------------------------------------------------

bool BPlusTree::RemoveRec(PageId page, uint64_t key, const char* value,
                          uint32_t match_bytes, Summary* updated) {
  PageHandle ch = file_->Read(page);
  const char* cp = ch.data();
  if (IsLeaf(cp)) {
    uint32_t n = Count(cp);
    for (uint32_t i = 0; i < n; ++i) {
      const char* e = LeafEntry(cp, i);
      uint64_t k = LoadU64(e);
      if (k > key) break;
      if (k == key && std::memcmp(e + 8, value, match_bytes) == 0) {
        PageHandle wh = file_->Write(page);
        char* wp = wh.mutable_data();
        std::memmove(LeafEntry(wp, i), LeafEntry(wp, i + 1),
                     size_t(n - i - 1) * leaf_entry_size());
        SetCount(wp, n - 1);
        --entry_count_;
        *updated = ComputeSummary(page);
        return true;
      }
    }
    return false;
  }
  uint32_t n = Count(cp);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t sep = LoadU64(InternalEntry(cp, i) + 4);
    if (sep < key) continue;  // child max < key: cannot contain it
    PageId child = LoadU32(InternalEntry(cp, i));
    Summary child_sum;
    if (RemoveRec(child, key, value, match_bytes, &child_sum)) {
      PageHandle wh = file_->Write(page);
      char* wp = wh.mutable_data();
      WriteInternalEntry(wp, i, child, child_sum);
      *updated = ComputeSummary(page);
      return true;
    }
    // Duplicate keys may straddle children; keep trying while sep == key.
    if (sep > key) break;
    ch = file_->Read(page);
    cp = ch.data();
  }
  return false;
}

bool BPlusTree::Remove(uint64_t key, const char* value, uint32_t match_bytes) {
  Summary ignored;
  return RemoveRec(root_, key, value, match_bytes, &ignored);
}

// -- bulk load ----------------------------------------------------------------

void BPlusTree::BulkLoad(
    const std::vector<std::pair<uint64_t, std::vector<char>>>& sorted) {
  // Fill leaves left-to-right at ~90% occupancy, then build levels up.
  entry_count_ = sorted.size();
  struct ChildSummary {
    PageId page;
    Summary s;
  };
  std::vector<ChildSummary> level;
  const uint32_t leaf_fill = std::max<uint32_t>(2, leaf_capacity_ * 9 / 10);
  size_t i = 0;
  PageId prev = kInvalidPageId;
  if (sorted.empty()) {
    root_ = file_->Allocate();
    SetHeader(file_->Write(root_, /*load=*/false).mutable_data(), true, 0,
              kInvalidPageId);
    height_ = 1;
    return;
  }
  while (i < sorted.size()) {
    uint32_t take = static_cast<uint32_t>(
        std::min<size_t>(leaf_fill, sorted.size() - i));
    // Avoid a dribble leaf: rebalance the last two.
    if (sorted.size() - i - take > 0 && sorted.size() - i - take < 2) {
      take = static_cast<uint32_t>(sorted.size() - i) / 2;
    }
    PageId page = file_->Allocate();
    PageHandle h = file_->Write(page, /*load=*/false);
    char* p = h.mutable_data();
    SetHeader(p, /*leaf=*/true, take, kInvalidPageId);
    for (uint32_t j = 0; j < take; ++j) {
      char* e = LeafEntry(p, j);
      StoreU64(e, sorted[i + j].first);
      assert(sorted[i + j].second.size() == value_size_);
      std::memcpy(e + 8, sorted[i + j].second.data(), value_size_);
    }
    if (prev != kInvalidPageId) {
      SetNext(file_->Write(prev).mutable_data(), page);
    }
    prev = page;
    level.push_back({page, ComputeSummary(page)});
    i += take;
  }
  height_ = 1;
  const uint32_t int_fill = std::max<uint32_t>(2, internal_capacity_ * 9 / 10);
  while (level.size() > 1) {
    std::vector<ChildSummary> up;
    size_t j = 0;
    while (j < level.size()) {
      uint32_t take = static_cast<uint32_t>(
          std::min<size_t>(int_fill, level.size() - j));
      if (level.size() - j - take > 0 && level.size() - j - take < 2) {
        take = static_cast<uint32_t>(level.size() - j) / 2;
      }
      PageId page = file_->Allocate();
      PageHandle h = file_->Write(page, /*load=*/false);
      char* p = h.mutable_data();
      SetHeader(p, /*leaf=*/false, take, kInvalidPageId);
      for (uint32_t t = 0; t < take; ++t) {
        WriteInternalEntry(p, t, level[j + t].page, level[j + t].s);
      }
      up.push_back({page, ComputeSummary(page)});
      j += take;
    }
    level = std::move(up);
    ++height_;
  }
  root_ = level[0].page;
}

// -- scan ---------------------------------------------------------------------

void BPlusTree::Scan(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const char*)>& fn) const {
  // Descend to the leftmost leaf that may hold `lo`.
  PageId page = root_;
  PageHandle h = file_->Read(page);
  const char* p = h.data();
  while (!IsLeaf(p)) {
    uint32_t n = Count(p);
    uint32_t idx = 0;
    while (idx + 1 < n && LoadU64(InternalEntry(p, idx) + 4) < lo) ++idx;
    page = LoadU32(InternalEntry(p, idx));
    h = file_->Read(page);
    p = h.data();
  }
  while (true) {
    uint32_t n = Count(p);
    for (uint32_t i = 0; i < n; ++i) {
      const char* e = LeafEntry(p, i);
      uint64_t k = LoadU64(e);
      if (k < lo) continue;
      if (k > hi) return;
      if (!fn(k, e + 8)) return;
    }
    PageId next = Next(p);
    if (next == kInvalidPageId) return;
    page = next;
    h = file_->Read(page);
    p = h.data();
  }
}

}  // namespace pmi
