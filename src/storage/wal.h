// Write-ahead log for MetricDB updates.
//
// Every acknowledged Insert/Remove is appended here before it touches
// the index, so a crash after the acknowledgment can always be replayed
// from the newest checkpoint (src/api/metric_db.cc owns that protocol;
// this header owns the log file format and its reader/writer).
//
// Record format (little-endian), one per update:
//
//   [4] u32 body length (= 13 for the current body)
//   [4] u32 CRC32C of the body
//   [*] body: [1] u8 op (WalOp)  [8] u64 sequence  [4] u32 object id
//
// Sequence numbers start at 1, increase by exactly 1 across the whole
// log history (checkpoints record the last sequence they contain, and
// each log file continues where the previous generation stopped), and
// are the recovery layer's corruption tripwire: a reader that observes
// a gap refuses to replay rather than serve a non-prefix state.
//
// Writing is group-committed: Add() only buffers; Commit() appends every
// buffered record in ONE WritableFile::Append -- so a torn write can
// tear at most one commit batch, never split an earlier one -- and then
// applies the SyncMode policy:
//
//   kAlways    fsync every commit.  An OK Commit IS the acknowledgment:
//              the records survive any crash.
//   kInterval  fsync every `sync_interval_commits` commits.  A crash can
//              lose up to that many acknowledged commits, never more.
//   kNever     no fsync (the OS flushes when it pleases).  A crash can
//              lose any unflushed tail; the surviving prefix still
//              replays cleanly.
//
// Reading degrades gracefully by construction: the reader stops at the
// first record whose length is implausible or whose CRC mismatches and
// reports the valid prefix plus a truncated-tail flag -- a torn final
// record is expected crash debris, not corruption of acknowledged data.

#ifndef PMI_STORAGE_WAL_H_
#define PMI_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/storage/env.h"

namespace pmi {

/// CRC32C (Castagnoli), table-driven software implementation.  Stronger
/// mixing than the snapshot FNV for short records, and the conventional
/// choice for log records.
uint32_t Crc32c(const void* data, size_t n);

/// When the WAL forces data to stable storage (see header comment).
enum class SyncMode : uint8_t { kAlways = 0, kInterval = 1, kNever = 2 };

/// Parses "always" / "interval" / "never" (e.g. from PMI_WAL_SYNC);
/// anything else -> kInvalidArgument.
StatusOr<SyncMode> ParseSyncMode(const std::string& name);

/// Logged update operations, the durable mirror of MetricIndex
/// Insert/Remove.
enum class WalOp : uint8_t { kInsert = 1, kRemove = 2 };

struct WalRecord {
  WalOp op = WalOp::kInsert;
  uint64_t seq = 0;
  uint32_t id = 0;
};

/// Appends records to one log file with group commit.  Single-writer,
/// externally synchronized, and sticky on failure: after any non-OK
/// Commit the writer refuses further work (the file tail is suspect;
/// the database must stop acknowledging writes).
class WalWriter {
 public:
  /// Takes ownership of `file` (freshly created via Env).  `mode` and
  /// `sync_interval_commits` implement the policy above (the interval
  /// is clamped to >= 1).
  WalWriter(std::unique_ptr<WritableFile> file, SyncMode mode,
            uint32_t sync_interval_commits);

  /// Buffers one record.  No I/O happens until Commit.
  void Add(const WalRecord& record);

  /// Appends all buffered records as one write, then syncs per policy.
  /// OK means the batch is acknowledged at the current SyncMode's
  /// guarantee level.  An empty buffer commits trivially.
  Status Commit();

  /// Forces an fsync regardless of SyncMode (checkpoint barrier).
  Status Sync();

  const Status& status() const { return status_; }

 private:
  std::unique_ptr<WritableFile> file_;
  SyncMode mode_;
  uint32_t sync_interval_commits_;
  uint32_t commits_since_sync_ = 0;
  std::string pending_;
  Status status_;
};

/// Encodes one record in the on-disk format (exposed for tests).
void AppendWalRecord(const WalRecord& record, std::string* out);

/// The valid prefix of one log file.
struct WalReplay {
  std::vector<WalRecord> records;
  /// True when the file ended in a torn/corrupt record that was dropped.
  bool truncated_tail = false;
  /// Byte length of the valid prefix (where a truncating repair cuts).
  uint64_t valid_bytes = 0;
};

/// Reads the valid record prefix of the log at `path`.  Geometry or CRC
/// damage truncates (graceful); a sequence gap -- against
/// `expect_first_seq` (0 = accept any start) or between adjacent
/// records -- is kDataLoss, because replaying across a gap would serve
/// a non-prefix state.  A missing file is kNotFound.
StatusOr<WalReplay> ReadWalFile(Env* env, const std::string& path,
                                uint64_t expect_first_seq);

}  // namespace pmi

#endif  // PMI_STORAGE_WAL_H_
