// n-dimensional Hilbert space-filling curve.
//
// The SPB-tree (Section 5.4) maps pre-computed pivot distances to integer
// SFC values "while (to some extent) maintaining spatial proximity"; this
// is the curve it uses.  Implementation follows Skilling's public-domain
// transpose algorithm (AxestoTranspose / TransposetoAxes, 2004).

#ifndef PMI_STORAGE_HILBERT_H_
#define PMI_STORAGE_HILBERT_H_

#include <cstdint>

namespace pmi {

/// Hilbert curve over `dims` dimensions with `bits` bits per dimension.
/// Requires dims * bits <= 63 so keys fit a uint64 (and leave headroom
/// for B+-tree sentinel use).
class HilbertCurve {
 public:
  HilbertCurve(uint32_t dims, uint32_t bits);

  uint32_t dims() const { return dims_; }
  uint32_t bits() const { return bits_; }

  /// Largest coordinate value, (1 << bits) - 1.
  uint32_t max_coord() const { return (1u << bits_) - 1; }

  /// Curve position of the cell `coords` (each < 2^bits).
  uint64_t Encode(const uint32_t* coords) const;

  /// Inverse of Encode.
  void Decode(uint64_t key, uint32_t* coords) const;

  /// Convenience: picks the largest usable bits for `dims` (<= 16).
  static uint32_t AutoBits(uint32_t dims) {
    uint32_t b = 63 / dims;
    return b > 16 ? 16 : (b == 0 ? 1 : b);
  }

 private:
  uint32_t dims_;
  uint32_t bits_;
};

}  // namespace pmi

#endif  // PMI_STORAGE_HILBERT_H_
