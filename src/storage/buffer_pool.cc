#include "src/storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "src/storage/wal.h"

namespace pmi {

BufferPool::BufferPool(uint32_t page_size, size_t cache_bytes)
    : page_size_(page_size),
      capacity_frames_(std::max<size_t>(1, cache_bytes / page_size)) {
  assert(page_size_ >= 64);
}

BufferPool::~BufferPool() {
  // Every store must have unregistered (PagedFile does so in its
  // destructor); remaining frames are just memory.
  assert(stores_.empty());
}

uint64_t BufferPool::RegisterStore(PageStore* store,
                                   PerfCounters* fallback_counters) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_store_id_++;
  stores_[id] = StoreEntry{store, fallback_counters};
  return id;
}

void BufferPool::UnregisterStore(uint64_t store_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& up : frames_) {
    Frame* f = up.get();
    if (f->valid && f->store_id == store_id) DetachFrameLocked(f);
  }
  stores_.erase(store_id);
}

/// Unlinks a live frame from the page map; pinned frames are reclaimed
/// lazily by the CLOCK sweep once their last handle drops.
void BufferPool::DetachFrameLocked(Frame* f) {
  map_.erase(FrameKey(f->store_id, f->page));
  f->valid = false;
  f->dirty = false;
  f->referenced = false;
  if (f->pins.load(std::memory_order_acquire) == 0) free_.push_back(f);
}

BufferPool::Frame* BufferPool::NewFrameLocked() {
  frames_.push_back(std::make_unique<Frame>());
  Frame* f = frames_.back().get();
  f->data = std::make_unique<char[]>(page_size_);
  return f;
}

BufferPool::Frame* BufferPool::FindVictimLocked() {
  const size_t n = frames_.size();
  if (n == 0) return nullptr;
  // Two full sweeps: the first may only clear reference bits; a frame
  // skipped for a failed write-back is skipped again rather than spun
  // on forever.
  for (size_t step = 0; step < 2 * n; ++step) {
    Frame* f = frames_[clock_hand_].get();
    clock_hand_ = (clock_hand_ + 1) % n;
    // Acquire pairs with the release decrement in PageHandle::Release:
    // once we observe zero pins under the pool mutex, no new pin can
    // appear (pinning requires the mutex) and the last holder's stores
    // are visible to the write-back below.
    if (f->pins.load(std::memory_order_acquire) != 0) continue;
    if (!f->valid) return f;  // detached earlier, reclaim now
    if (f->referenced) {
      f->referenced = false;
      continue;
    }
    if (f->dirty) {
      auto sit = stores_.find(f->store_id);
      assert(sit != stores_.end());
      Status s = sit->second.store->WriteBack(f->page, f->data.get());
      if (!s.ok()) {
        // Never lose data to make room: the page stays resident and
        // dirty, the failure is counted, the sweep moves on (the pool
        // overcommits if no clean victim exists).
        write_back_failures_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      f->dirty = false;
      write_backs_.fetch_add(1, std::memory_order_relaxed);
      PerfCounters* ctr = CounterScope::Active(sit->second.counters);
      if (ctr != nullptr) ++ctr->physical_writes;
    }
    map_.erase(FrameKey(f->store_id, f->page));
    f->valid = false;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return f;
  }
  return nullptr;
}

BufferPool::Frame* BufferPool::AcquireFrameLocked() {
  if (!free_.empty()) {
    Frame* f = free_.back();
    free_.pop_back();
    return f;
  }
  if (frames_.size() < capacity_frames_) return NewFrameLocked();
  if (Frame* victim = FindVictimLocked()) return victim;
  // Every frame is pinned (or dirty behind a faulted store): overcommit
  // one frame past capacity so progress never deadlocks.  The extra
  // frame rejoins the CLOCK rotation and is reclaimed under later
  // pressure.
  return NewFrameLocked();
}

StatusOr<PageHandle> BufferPool::Pin(uint64_t store_id, PageId page,
                                     bool for_write, bool load) {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = stores_.find(store_id);
  if (sit == stores_.end()) {
    return FailedPreconditionError("buffer pool: pin on unregistered store");
  }
  PerfCounters* ctr = CounterScope::Active(sit->second.counters);
  auto it = map_.find(FrameKey(store_id, page));
  if (it != map_.end()) {
    Frame* f = it->second;
    f->pins.fetch_add(1, std::memory_order_relaxed);
    f->referenced = true;
    if (for_write) f->dirty = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (ctr != nullptr) ++ctr->pool_hits;
    return PageHandle(this, f, for_write);
  }
  Frame* f = AcquireFrameLocked();
  if (load) {
    Status s = sit->second.store->ReadInto(page, f->data.get());
    if (!s.ok()) {
      free_.push_back(f);
      return s;
    }
    if (ctr != nullptr) ++ctr->physical_reads;
  } else {
    std::memset(f->data.get(), 0, page_size_);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  f->store_id = store_id;
  f->page = page;
  f->valid = true;
  f->dirty = for_write;
  f->referenced = true;
  f->pins.store(1, std::memory_order_relaxed);
  map_[FrameKey(store_id, page)] = f;
  return PageHandle(this, f, for_write);
}

void BufferPool::Readahead(uint64_t store_id, PageId first, uint32_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = stores_.find(store_id);
  if (sit == stores_.end()) return;
  PerfCounters* ctr = CounterScope::Active(sit->second.counters);
  for (uint32_t i = 0; i < count; ++i) {
    PageId page = first + i;
    if (map_.count(FrameKey(store_id, page)) != 0) continue;
    // Readahead never evicts: use only free frames or growth headroom.
    Frame* f = nullptr;
    if (!free_.empty()) {
      f = free_.back();
      free_.pop_back();
    } else if (frames_.size() < capacity_frames_) {
      f = NewFrameLocked();
    } else {
      return;
    }
    Status s = sit->second.store->ReadInto(page, f->data.get());
    if (!s.ok()) {
      free_.push_back(f);
      return;
    }
    if (ctr != nullptr) ++ctr->physical_reads;
    readaheads_.fetch_add(1, std::memory_order_relaxed);
    f->store_id = store_id;
    f->page = page;
    f->valid = true;
    f->dirty = false;
    f->referenced = false;  // first in line for eviction until used
    f->pins.store(0, std::memory_order_relaxed);
    map_[FrameKey(store_id, page)] = f;
  }
}

Status BufferPool::FlushStore(uint64_t store_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = stores_.find(store_id);
  if (sit == stores_.end()) {
    return FailedPreconditionError("buffer pool: flush on unregistered store");
  }
  PerfCounters* ctr = CounterScope::Active(sit->second.counters);
  Status first_error;
  for (auto& up : frames_) {
    Frame* f = up.get();
    if (!f->valid || f->store_id != store_id || !f->dirty) continue;
    Status s = sit->second.store->WriteBack(f->page, f->data.get());
    if (!s.ok()) {
      write_back_failures_.fetch_add(1, std::memory_order_relaxed);
      if (first_error.ok()) first_error = s;
      continue;
    }
    f->dirty = false;
    write_backs_.fetch_add(1, std::memory_order_relaxed);
    if (ctr != nullptr) ++ctr->physical_writes;
  }
  return first_error;
}

Status BufferPool::FlushPageIfDirty(uint64_t store_id, PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = stores_.find(store_id);
  if (sit == stores_.end()) return OkStatus();
  auto it = map_.find(FrameKey(store_id, page));
  if (it == map_.end() || !it->second->dirty) return OkStatus();
  Frame* f = it->second;
  Status s = sit->second.store->WriteBack(f->page, f->data.get());
  if (!s.ok()) {
    write_back_failures_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  f->dirty = false;
  // Uncharged (no physical_writes): the snapshot path models wholesale
  // file copy, not a paged workload; the pool-level stat still counts.
  write_backs_.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status BufferPool::EvictPage(uint64_t store_id, PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(FrameKey(store_id, page));
  if (it == map_.end()) return OkStatus();
  Frame* f = it->second;
  if (f->pins.load(std::memory_order_acquire) != 0) {
    return FailedPreconditionError("buffer pool: evicting a pinned page");
  }
  if (f->dirty) {
    auto sit = stores_.find(store_id);
    assert(sit != stores_.end());
    Status s = sit->second.store->WriteBack(f->page, f->data.get());
    if (!s.ok()) {
      // Typed failure, nothing lost: page stays resident and dirty.
      write_back_failures_.fetch_add(1, std::memory_order_relaxed);
      return s;
    }
    f->dirty = false;
    write_backs_.fetch_add(1, std::memory_order_relaxed);
    PerfCounters* ctr = CounterScope::Active(sit->second.counters);
    if (ctr != nullptr) ++ctr->physical_writes;
  }
  map_.erase(it);
  f->valid = false;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  free_.push_back(f);
  return OkStatus();
}

void BufferPool::DropStore(uint64_t store_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& up : frames_) {
    Frame* f = up.get();
    if (f->valid && f->store_id == store_id) DetachFrameLocked(f);
  }
}

void BufferPool::DropCleanFrames() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& up : frames_) {
    Frame* f = up.get();
    if (!f->valid || f->dirty) continue;
    if (f->pins.load(std::memory_order_acquire) != 0) continue;
    map_.erase(FrameKey(f->store_id, f->page));
    f->valid = false;
    f->referenced = false;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    free_.push_back(f);
  }
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.write_backs = write_backs_.load(std::memory_order_relaxed);
  s.write_back_failures = write_back_failures_.load(std::memory_order_relaxed);
  s.readaheads = readaheads_.load(std::memory_order_relaxed);
  return s;
}

size_t BufferPool::resident_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

// ---------------------------------------------------------------------------
// EnvPageStore

namespace {
// One write-back record: [page_id u32][crc u32][page bytes].
constexpr size_t kRecordHeaderBytes = 8;

void PutU32(char* dst, uint32_t v) { std::memcpy(dst, &v, sizeof(v)); }
uint32_t GetU32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
}  // namespace

EnvPageStore::EnvPageStore(Env* env, std::string path, uint32_t page_size)
    : env_(env), path_(std::move(path)), page_size_(page_size) {}

EnvPageStore::~EnvPageStore() = default;

Status EnvPageStore::Open() {
  PMI_ASSIGN_OR_RETURN(file_, env_->NewWritableFile(path_));
  offsets_.clear();
  write_order_.clear();
  next_offset_ = 0;
  return OkStatus();
}

Status EnvPageStore::WriteBack(PageId page, const char* src) {
  if (file_ == nullptr) {
    return FailedPreconditionError("EnvPageStore: WriteBack before Open");
  }
  if (resync_needed_) {
    // A failed append/sync may have left a partial record in the file;
    // re-learn the physical end so the next record lands after it (the
    // offset map never points into the garbage).
    PMI_ASSIGN_OR_RETURN(next_offset_, env_->FileSize(path_));
    resync_needed_ = false;
  }
  std::string record(kRecordHeaderBytes + page_size_, '\0');
  PutU32(&record[0], page);
  PutU32(&record[4], Crc32c(src, page_size_));
  std::memcpy(&record[kRecordHeaderBytes], src, page_size_);
  Status s = file_->Append(record);
  if (s.ok()) s = file_->Sync();
  if (!s.ok()) {
    resync_needed_ = true;
    return s;
  }
  // Only a fully synced record becomes the page's current version: a
  // torn append above leaves the previous offset (or the sparse zero
  // page) readable, so the pool never serves a torn page.
  offsets_[page] = next_offset_;
  next_offset_ += record.size();
  write_order_.push_back(page);
  return OkStatus();
}

Status EnvPageStore::ReadInto(PageId page, char* dst) {
  auto it = offsets_.find(page);
  if (it == offsets_.end()) {
    // Never written back: a sparse store reads as zeroes.
    std::memset(dst, 0, page_size_);
    return OkStatus();
  }
  PMI_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> ra,
                       env_->NewRandomAccessFile(path_));
  std::string buf;
  PMI_RETURN_IF_ERROR(
      ra->Read(it->second, kRecordHeaderBytes + page_size_, &buf));
  if (buf.size() != kRecordHeaderBytes + page_size_) {
    return DataLossError("EnvPageStore: short page record");
  }
  if (GetU32(&buf[0]) != page) {
    return DataLossError("EnvPageStore: page id mismatch");
  }
  if (GetU32(&buf[4]) != Crc32c(&buf[kRecordHeaderBytes], page_size_)) {
    return DataLossError("EnvPageStore: page checksum mismatch");
  }
  std::memcpy(dst, &buf[kRecordHeaderBytes], page_size_);
  return OkStatus();
}

}  // namespace pmi
