#include "src/storage/hilbert.h"

#include <cassert>

namespace pmi {
namespace {

// Skilling's in-place transforms between axes and the "transpose" form of
// the Hilbert index (bit-plane-major).  Public domain (J. Skilling,
// "Programming the Hilbert curve", AIP 2004).
void AxesToTranspose(uint32_t* x, uint32_t bits, uint32_t n) {
  uint32_t m = 1u << (bits - 1);
  // Inverse undo.
  for (uint32_t q = m; q > 1; q >>= 1) {
    uint32_t p = q - 1;
    for (uint32_t i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {
        uint32_t t = (x[0] ^ x[i]) & p;  // exchange
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (uint32_t i = 1; i < n; ++i) x[i] ^= x[i - 1];
  uint32_t t = 0;
  for (uint32_t q = m; q > 1; q >>= 1) {
    if (x[n - 1] & q) t ^= q - 1;
  }
  for (uint32_t i = 0; i < n; ++i) x[i] ^= t;
}

void TransposeToAxes(uint32_t* x, uint32_t bits, uint32_t n) {
  uint32_t nbit = 2u << (bits - 1);
  // Gray decode by H ^ (H/2).
  uint32_t t = x[n - 1] >> 1;
  for (uint32_t i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (uint32_t q = 2; q != nbit; q <<= 1) {
    uint32_t p = q - 1;
    for (uint32_t i = n; i-- > 0;) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

}  // namespace

HilbertCurve::HilbertCurve(uint32_t dims, uint32_t bits)
    : dims_(dims), bits_(bits) {
  assert(dims >= 1 && bits >= 1);
  assert(dims * bits <= 63);
}

uint64_t HilbertCurve::Encode(const uint32_t* coords) const {
  uint32_t x[64];
  for (uint32_t i = 0; i < dims_; ++i) {
    assert(coords[i] <= max_coord());
    x[i] = coords[i];
  }
  AxesToTranspose(x, bits_, dims_);
  // Interleave the transpose bit-planes, MSB plane first: key bit
  // (bits-1-b)*dims + (dims-1-i) ... equivalently walk planes outward.
  uint64_t key = 0;
  for (uint32_t b = bits_; b-- > 0;) {
    for (uint32_t i = 0; i < dims_; ++i) {
      key = (key << 1) | ((x[i] >> b) & 1u);
    }
  }
  return key;
}

void HilbertCurve::Decode(uint64_t key, uint32_t* coords) const {
  uint32_t x[64] = {0};
  uint32_t total = bits_ * dims_;
  for (uint32_t b = bits_; b-- > 0;) {
    for (uint32_t i = 0; i < dims_; ++i) {
      --total;
      x[i] |= static_cast<uint32_t>((key >> total) & 1u) << b;
    }
  }
  TransposeToAxes(x, bits_, dims_);
  for (uint32_t i = 0; i < dims_; ++i) coords[i] = x[i];
}

}  // namespace pmi
