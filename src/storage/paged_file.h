// Simulated disk with a write-back LRU buffer pool.
//
// The paper's disk-based indexes are measured in page accesses (PA), not
// device time, and use a fixed 4 KB page size plus a 128 KB LRU cache
// (Section 6.1).  PagedFile reproduces exactly that accounting: pages
// live in memory, but every fetch that misses the buffer pool counts a
// page read, and every dirty page counts a page write when it is evicted
// or flushed -- the same quantities a real buffer manager would issue to
// disk.

#ifndef PMI_STORAGE_PAGED_FILE_H_
#define PMI_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/counters.h"
#include "src/core/status.h"

namespace pmi {

/// Identifier of a page within one PagedFile.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// In-memory page store with PA accounting through an LRU buffer pool.
class PagedFile {
 public:
  /// `cache_bytes` rounds down to whole frames (>= 1 frame).
  PagedFile(uint32_t page_size, uint32_t cache_bytes, PerfCounters* counters);

  uint32_t page_size() const { return page_size_; }
  uint32_t num_pages() const { return static_cast<uint32_t>(pages_.size()); }
  size_t bytes() const { return size_t(num_pages()) * page_size_; }

  /// Allocates a zeroed page.  No PA is charged until it is written.
  PageId Allocate();

  /// Page contents for reading.  Charges one page read on a pool miss.
  /// A page id outside the file is kDataLoss, never an out-of-bounds
  /// read: ids that cross this API may originate in persisted bytes.
  StatusOr<const char*> ReadPage(PageId id) const;

  /// Page contents for mutation.  Pulls the page into the pool (charging
  /// a read on miss if `load` -- pass false when overwriting wholesale)
  /// and marks it dirty; the page write is charged at eviction or Flush.
  /// Bounds-checked like ReadPage.
  StatusOr<char*> WritePage(PageId id, bool load = true);

  /// Fail-stop forms for the inner index code, whose page ids are
  /// internally generated (a bad one is a program bug, not data
  /// corruption): same accounting, but an out-of-range id aborts with a
  /// message instead of silently reading garbage in release builds.
  const char* Read(PageId id) const;
  char* Write(PageId id, bool load = true);

  /// Writes back all dirty pages (charging page writes) but keeps them
  /// resident.  Called at the end of builds and updates so their write
  /// cost lands in the right measurement window.
  void Flush();

  /// Flush + empty the pool; used to cold-start a measurement phase.
  void DropCache();

  // -- snapshot access --------------------------------------------------------
  // Raw page bytes bypass the buffer pool and charge no PA: snapshot
  // serialization models copying the file wholesale, not a paged workload.

  /// Read-only raw bytes of page `id` (page_size() bytes).
  const char* RawPage(PageId id) const { return pages_[id].get(); }

  /// Drops every page and the whole buffer pool (dirty frames are
  /// discarded, not written back); the caller refills via AppendRawPage.
  void ResetPages() {
    pages_.clear();
    lru_.clear();
    resident_.clear();
  }

  /// Appends one zeroed page and returns its writable raw buffer.
  char* AppendRawPage() {
    pages_.push_back(std::make_unique<char[]>(page_size_));
    char* p = pages_.back().get();
    std::memset(p, 0, page_size_);
    return p;
  }

 private:
  void Touch(PageId id, bool dirty) const;
  void EvictIfNeeded() const;

  uint32_t page_size_;
  uint32_t capacity_frames_;
  PerfCounters* counters_;
  std::vector<std::unique_ptr<char[]>> pages_;

  struct Frame {
    PageId id;
    bool dirty;
  };
  // front = most recently used.
  mutable std::list<Frame> lru_;
  mutable std::unordered_map<PageId, std::list<Frame>::iterator> resident_;
};

}  // namespace pmi

#endif  // PMI_STORAGE_PAGED_FILE_H_
