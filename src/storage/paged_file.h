// Simulated disk with two-level page-access accounting.
//
// The paper's disk-based indexes are measured in page accesses (PA),
// not device time, and use a fixed 4 KB page size plus a 128 KB LRU
// cache (Section 6.1).  PagedFile reproduces exactly that accounting
// with a *logical* LRU simulation: every fetch that misses the
// simulated pool counts a page read, and every dirty page counts a page
// write when it is evicted or flushed -- the same quantities a real
// buffer manager would issue to disk.  The simulation is pure
// bookkeeping (a list of page ids), so logical PA is bit-identical at
// any thread count and any physical cache size.
//
// The page *bytes* are served through a real, shareable BufferPool
// (src/storage/buffer_pool.h): callers get RAII-pinned PageHandles
// instead of raw pointers, many PagedFiles can share one pool with a
// single cache_bytes budget, and physical I/O (pool misses and
// write-backs against this file's backing array) is charged separately
// as physical_reads / physical_writes.  With no pool supplied, the file
// creates a private pool sized like the logical cache.
//
// Charges go through CounterScope::Active, so parallel batch shards
// attribute both logical and physical I/O to the measuring query; the
// logical simulation itself is mutex-guarded and deterministic in the
// order Touch is called.

#ifndef PMI_STORAGE_PAGED_FILE_H_
#define PMI_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/core/counters.h"
#include "src/core/status.h"
#include "src/storage/buffer_pool.h"

namespace pmi {

/// In-memory page store with PA accounting through an LRU simulation,
/// serving page bytes as pinned BufferPool handles.
class PagedFile : private PageStore {
 public:
  /// `cache_bytes` rounds down to whole frames (>= 1 frame) and sizes
  /// the logical simulation.  `pool` is the shared physical cache; when
  /// null a private pool of `cache_bytes` is created.  The pool must
  /// outlive the file (shared_ptr makes that structural).
  PagedFile(uint32_t page_size, uint32_t cache_bytes, PerfCounters* counters,
            std::shared_ptr<BufferPool> pool = nullptr);
  ~PagedFile() override;

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  uint32_t page_size() const { return page_size_; }
  uint32_t num_pages() const { return static_cast<uint32_t>(pages_.size()); }
  size_t bytes() const { return size_t(num_pages()) * page_size_; }

  BufferPool* pool() const { return pool_.get(); }

  /// Allocates a zeroed page.  No PA is charged until it is written.
  PageId Allocate();

  /// Pins page contents for reading.  Charges one logical page read on
  /// a simulated-pool miss (and a physical read if the shared pool also
  /// misses).  A page id outside the file is kDataLoss, never an
  /// out-of-bounds read: ids that cross this API may originate in
  /// persisted bytes.
  StatusOr<PageHandle> ReadPage(PageId id) const;

  /// Pins page contents for mutation.  Pulls the page into the pools
  /// (charging a read on miss if `load` -- pass false when overwriting
  /// wholesale) and marks it dirty; the page write is charged at
  /// eviction or Flush.  Bounds-checked like ReadPage.
  StatusOr<PageHandle> WritePage(PageId id, bool load = true);

  /// Fail-stop forms for the inner index code, whose page ids are
  /// internally generated (a bad one is a program bug, not data
  /// corruption): same accounting, but an out-of-range id aborts with a
  /// message instead of silently reading garbage in release builds.
  PageHandle Read(PageId id) const;
  PageHandle Write(PageId id, bool load = true);

  /// Best-effort physical readahead of `count` pages starting at
  /// `first` (clamped to the file).  Logical accounting is untouched:
  /// readahead is a physical-layer optimization only.
  void ReadaheadPages(PageId first, uint32_t count) const;

  /// Writes back all dirty pages (charging page writes) but keeps them
  /// resident.  Called at the end of builds and updates so their write
  /// cost lands in the right measurement window.
  void Flush();

  /// Flush + empty both the simulated and the physical pool frames of
  /// this file; used to cold-start a measurement phase.
  void DropCache();

  // -- snapshot access --------------------------------------------------------
  // Raw page bytes bypass the buffer pools and charge no PA: snapshot
  // serialization models copying the file wholesale, not a paged workload.

  /// Read-only raw bytes of page `id` (page_size() bytes).  Any dirty
  /// pool frame is written through first so the bytes are current.
  const char* RawPage(PageId id) const;

  /// Drops every page and both pool levels (dirty frames are discarded,
  /// not written back); the caller refills via AppendRawPage.
  void ResetPages();

  /// Appends one zeroed page and returns its writable raw buffer.
  char* AppendRawPage();

 private:
  // PageStore over pages_ (the "disk"); runs under the pool mutex.
  Status ReadInto(PageId page, char* dst) override;
  Status WriteBack(PageId page, const char* src) override;

  void TouchLocked(PageId id, bool dirty) const;
  void EvictIfNeeded() const;

  uint32_t page_size_;
  uint32_t capacity_frames_;
  PerfCounters* counters_;
  std::shared_ptr<BufferPool> pool_;
  uint64_t store_id_ = 0;
  std::vector<std::unique_ptr<char[]>> pages_;

  struct SimFrame {
    PageId id;
    bool dirty;
  };
  // The logical LRU simulation; front = most recently used.  Guarded by
  // sim_mu_ so concurrent readers keep exact (order-dependent) totals.
  mutable std::mutex sim_mu_;
  mutable std::list<SimFrame> lru_;
  mutable std::unordered_map<PageId, std::list<SimFrame>::iterator> resident_;
};

}  // namespace pmi

#endif  // PMI_STORAGE_PAGED_FILE_H_
