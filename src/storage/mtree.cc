#include "src/storage/mtree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace pmi {
namespace {

constexpr uint32_t kHeaderSize = 8;  // u8 leaf | u8 pad | u16 count | u32 used

uint32_t Pad4(uint32_t n) { return (n + 3u) & ~3u; }

// Covering radii and parent distances are stored as float; a plain
// narrowing cast can round *down* and break the upper-bound invariant
// (an object exactly on the ball surface would escape).  Round up.
float FloatCeil(double v) {
  float f = static_cast<float>(v);
  if (double(f) < v) f = std::nextafter(f, std::numeric_limits<float>::max());
  return f;
}

void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void StoreF32(char* p, float v) { std::memcpy(p, &v, 4); }
float LoadF32(const char* p) {
  float v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

MTree::MTree(PagedFile* file, const Dataset* data, DistanceComputer dist,
             Options options, std::function<void(ObjectId, PageId)> on_place)
    : file_(file),
      data_(data),
      dist_(dist),
      options_(options),
      on_place_(std::move(on_place)),
      rng_(options.seed) {
  assert(!options_.store_pivot_data || options_.num_pivots > 0);
  root_ = file_->Allocate();
  MTreeNode empty;
  StoreNode(root_, empty, /*fresh=*/true);
}

// -- serialization ------------------------------------------------------------
//
// Leaf entry:     [oid u32][pd f32][len u32][obj pad4][phi l*f32]
// Internal entry: [child u32][radius f32][pd f32][len u32][ro pad4][mbb 2l*f32]

size_t MTree::LeafEntryBytes(const MTreeLeafEntry& e) const {
  size_t n = 12 + Pad4(static_cast<uint32_t>(e.obj.size()));
  if (options_.store_pivot_data) n += 4 * options_.num_pivots;
  return n;
}

size_t MTree::InternalEntryBytes(const MTreeInternalEntry& e) const {
  size_t n = 16 + Pad4(static_cast<uint32_t>(e.ro.size()));
  if (options_.store_pivot_data) n += 8 * options_.num_pivots;
  return n;
}

size_t MTree::NodeBytes(const MTreeNode& node) const {
  size_t n = kHeaderSize;
  if (node.is_leaf) {
    for (const auto& e : node.leaves) n += LeafEntryBytes(e);
  } else {
    for (const auto& e : node.children) n += InternalEntryBytes(e);
  }
  return n;
}

bool MTree::Fits(const MTreeNode& node) const {
  return NodeBytes(node) <= file_->page_size();
}

void MTree::StoreNode(PageId page, const MTreeNode& node, bool fresh) {
  assert(Fits(node));
  PageHandle h = file_->Write(page, /*load=*/!fresh);
  char* p = h.mutable_data();
  p[0] = node.is_leaf ? 1 : 0;
  p[1] = 0;
  uint16_t cnt = static_cast<uint16_t>(node.count());
  std::memcpy(p + 2, &cnt, 2);
  char* w = p + kHeaderSize;
  if (node.is_leaf) {
    for (const auto& e : node.leaves) {
      StoreU32(w, e.oid);
      StoreF32(w + 4, e.pd);
      StoreU32(w + 8, static_cast<uint32_t>(e.obj.size()));
      std::memcpy(w + 12, e.obj.data(), e.obj.size());
      w += 12 + Pad4(static_cast<uint32_t>(e.obj.size()));
      if (options_.store_pivot_data) {
        assert(e.phi.size() == options_.num_pivots);
        std::memcpy(w, e.phi.data(), 4 * options_.num_pivots);
        w += 4 * options_.num_pivots;
      }
    }
  } else {
    for (const auto& e : node.children) {
      StoreU32(w, e.child);
      StoreF32(w + 4, e.radius);
      StoreF32(w + 8, e.pd);
      StoreU32(w + 12, static_cast<uint32_t>(e.ro.size()));
      std::memcpy(w + 16, e.ro.data(), e.ro.size());
      w += 16 + Pad4(static_cast<uint32_t>(e.ro.size()));
      if (options_.store_pivot_data) {
        assert(e.mbb.size() == 2 * options_.num_pivots);
        std::memcpy(w, e.mbb.data(), 8 * options_.num_pivots);
        w += 8 * options_.num_pivots;
      }
    }
  }
  StoreU32(p + 4, static_cast<uint32_t>(w - p));
}

MTreeNode MTree::LoadNode(PageId page) const {
  PageHandle h = file_->Read(page);
  const char* p = h.data();
  MTreeNode node;
  node.is_leaf = p[0] != 0;
  uint16_t cnt;
  std::memcpy(&cnt, p + 2, 2);
  const char* r = p + kHeaderSize;
  if (node.is_leaf) {
    node.leaves.resize(cnt);
    for (auto& e : node.leaves) {
      e.oid = LoadU32(r);
      e.pd = LoadF32(r + 4);
      uint32_t len = LoadU32(r + 8);
      e.obj.assign(r + 12, r + 12 + len);
      r += 12 + Pad4(len);
      if (options_.store_pivot_data) {
        e.phi.resize(options_.num_pivots);
        std::memcpy(e.phi.data(), r, 4 * options_.num_pivots);
        r += 4 * options_.num_pivots;
      }
    }
  } else {
    node.children.resize(cnt);
    for (auto& e : node.children) {
      e.child = LoadU32(r);
      e.radius = LoadF32(r + 4);
      e.pd = LoadF32(r + 8);
      uint32_t len = LoadU32(r + 12);
      e.ro.assign(r + 16, r + 16 + len);
      r += 16 + Pad4(len);
      if (options_.store_pivot_data) {
        e.mbb.resize(2 * options_.num_pivots);
        std::memcpy(e.mbb.data(), r, 8 * options_.num_pivots);
        r += 8 * options_.num_pivots;
      }
    }
  }
  return node;
}

void MTree::ReportPlacements(PageId page, const MTreeNode& node) {
  if (!on_place_ || !node.is_leaf) return;
  for (const auto& e : node.leaves) on_place_(e.oid, page);
}

// -- insertion ----------------------------------------------------------------

void MTree::Insert(ObjectId oid, const std::vector<float>& phi) {
  MTreeLeafEntry entry;
  entry.oid = oid;
  std::string buf;
  data_->SerializeObject(oid, &buf);
  entry.obj.assign(buf.begin(), buf.end());
  if (options_.store_pivot_data) {
    assert(phi.size() == options_.num_pivots);
    entry.phi = phi;
  }
  ObjectView dummy;
  SplitOutcome out =
      InsertRec(root_, dummy, /*has_parent=*/false, std::move(entry));
  ++size_;
  if (!out.split) return;
  // Grow a new root holding the two promoted entries.
  MTreeNode new_root;
  new_root.is_leaf = false;
  new_root.children.push_back(std::move(out.replacement));
  new_root.children.push_back(std::move(out.sibling));
  PageId page = file_->Allocate();
  StoreNode(page, new_root, /*fresh=*/true);
  root_ = page;
  ++height_;
}

MTree::SplitOutcome MTree::InsertRec(PageId page, const ObjectView& parent_ro,
                                     bool has_parent, MTreeLeafEntry&& entry) {
  MTreeNode node = LoadNode(page);
  ObjectView obj = ViewOf(entry.obj);
  if (node.is_leaf) {
    entry.pd = has_parent ? static_cast<float>(dist_(obj, parent_ro)) : 0.0f;
    if (on_place_) on_place_(entry.oid, page);
    node.leaves.push_back(std::move(entry));
    if (Fits(node)) {
      StoreNode(page, node);
      return {};
    }
    return SplitNode(page, std::move(node), parent_ro, has_parent);
  }

  // Single-way descent: prefer a child already covering the object
  // (minimum distance); otherwise minimum radius enlargement.
  assert(!node.children.empty());
  size_t best_cover = SIZE_MAX, best_any = 0;
  double best_cover_d = 0, best_enlarge = std::numeric_limits<double>::max();
  std::vector<double> d_cache(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) {
    const auto& e = node.children[i];
    double d = dist_(obj, ViewOf(e.ro));
    d_cache[i] = d;
    if (d <= e.radius) {
      if (best_cover == SIZE_MAX || d < best_cover_d) {
        best_cover = i;
        best_cover_d = d;
      }
    } else if (best_cover == SIZE_MAX) {
      double enlarge = d - e.radius;
      if (enlarge < best_enlarge) {
        best_enlarge = enlarge;
        best_any = i;
      }
    }
  }
  size_t idx = best_cover != SIZE_MAX ? best_cover : best_any;
  MTreeInternalEntry& chosen = node.children[idx];
  if (d_cache[idx] > chosen.radius) {
    chosen.radius = FloatCeil(d_cache[idx]);
  }
  if (options_.store_pivot_data) {
    const uint32_t l = options_.num_pivots;
    for (uint32_t j = 0; j < l; ++j) {
      chosen.mbb[j] = std::min(chosen.mbb[j], entry.phi[j]);
      chosen.mbb[l + j] = std::max(chosen.mbb[l + j], entry.phi[j]);
    }
  }
  // Persist the enlargement before descending (the child split path
  // rewrites this node's entry anyway, but the common path needs it).
  ObjectView chosen_ro = ViewOf(chosen.ro);
  SplitOutcome sub =
      InsertRec(chosen.child, chosen_ro, /*has_parent=*/true,
                std::move(entry));
  if (sub.split) {
    // pd of the promoted entries is relative to *this* node's parent.
    if (has_parent) {
      sub.replacement.pd =
          static_cast<float>(dist_(ViewOf(sub.replacement.ro), parent_ro));
      sub.sibling.pd =
          static_cast<float>(dist_(ViewOf(sub.sibling.ro), parent_ro));
    } else {
      sub.replacement.pd = 0;
      sub.sibling.pd = 0;
    }
    node.children[idx] = std::move(sub.replacement);
    node.children.push_back(std::move(sub.sibling));
    if (!Fits(node)) {
      return SplitNode(page, std::move(node), parent_ro, has_parent);
    }
  }
  StoreNode(page, node);
  return {};
}

MTree::SplitOutcome MTree::SplitNode(PageId page, MTreeNode&& node,
                                     const ObjectView& parent_ro,
                                     bool has_parent) {
  const size_t n = node.count();
  assert(n >= 2);
  auto rep_view = [&](size_t i) {
    return node.is_leaf ? ViewOf(node.leaves[i].obj)
                        : ViewOf(node.children[i].ro);
  };

  // Sampled mM_RAD promotion: try `promotion_samples` random candidate
  // pairs, pick the pair minimizing the larger covering radius of the
  // nearest-assignment partition.
  uint32_t tries = std::max<uint32_t>(1, options_.promotion_samples);
  size_t best_a = 0, best_b = 1;
  double best_cost = std::numeric_limits<double>::max();
  std::vector<double> da(n), db(n), best_da(n), best_db(n);
  for (uint32_t t = 0; t < tries; ++t) {
    size_t a = rng_() % n;
    size_t b = rng_() % n;
    if (a == b) b = (b + 1) % n;
    ObjectView va = rep_view(a), vb = rep_view(b);
    double r1 = 0, r2 = 0;
    for (size_t i = 0; i < n; ++i) {
      da[i] = dist_(rep_view(i), va);
      db[i] = dist_(rep_view(i), vb);
      double extra = node.is_leaf ? 0.0 : node.children[i].radius;
      if (da[i] <= db[i]) {
        r1 = std::max(r1, da[i] + extra);
      } else {
        r2 = std::max(r2, db[i] + extra);
      }
    }
    double cost = std::max(r1, r2);
    if (cost < best_cost) {
      best_cost = cost;
      best_a = a;
      best_b = b;
      best_da = da;
      best_db = db;
    }
  }

  MTreeNode part1, part2;
  part1.is_leaf = part2.is_leaf = node.is_leaf;
  double r1 = 0, r2 = 0;
  const uint32_t l = options_.num_pivots;
  std::vector<float> mbb1, mbb2;
  if (options_.store_pivot_data) {
    mbb1.assign(2 * l, 0);
    mbb2.assign(2 * l, 0);
    for (uint32_t j = 0; j < l; ++j) {
      mbb1[j] = mbb2[j] = std::numeric_limits<float>::max();
      mbb1[l + j] = mbb2[l + j] = std::numeric_limits<float>::lowest();
    }
  }
  auto fold_mbb = [&](std::vector<float>& mbb, const float* lo,
                      const float* hi) {
    for (uint32_t j = 0; j < l; ++j) {
      mbb[j] = std::min(mbb[j], lo[j]);
      mbb[l + j] = std::max(mbb[l + j], hi[j]);
    }
  };
  for (size_t i = 0; i < n; ++i) {
    bool to_first = best_da[i] <= best_db[i];
    // Keep the seeds in their own partitions even on ties.
    if (i == best_a) to_first = true;
    if (i == best_b) to_first = false;
    double d = to_first ? best_da[i] : best_db[i];
    if (node.is_leaf) {
      MTreeLeafEntry e = std::move(node.leaves[i]);
      e.pd = static_cast<float>(d);
      if (options_.store_pivot_data) {
        // A point region: both MBB corners are phi itself.
        fold_mbb(to_first ? mbb1 : mbb2, e.phi.data(), e.phi.data());
      }
      (to_first ? r1 : r2) = std::max(to_first ? r1 : r2, d);
      (to_first ? part1 : part2).leaves.push_back(std::move(e));
    } else {
      MTreeInternalEntry e = std::move(node.children[i]);
      e.pd = static_cast<float>(d);
      if (options_.store_pivot_data) {
        fold_mbb(to_first ? mbb1 : mbb2, e.mbb.data(), e.mbb.data() + l);
      }
      (to_first ? r1 : r2) =
          std::max(to_first ? r1 : r2, d + double(e.radius));
      (to_first ? part1 : part2).children.push_back(std::move(e));
    }
  }

  // Routing-object payloads are copies of the promoted representatives
  // (taken before the moves above via the dataset/serialized form).
  SplitOutcome out;
  out.split = true;
  auto make_entry = [&](const MTreeNode& part, size_t seed_idx, double radius,
                        std::vector<float>&& mbb, PageId child_page) {
    MTreeInternalEntry e;
    e.child = child_page;
    e.radius = FloatCeil(radius);
    e.ro = part.is_leaf
               ? part.leaves[seed_idx].obj
               : part.children[seed_idx].ro;
    e.pd = 0;  // caller fills
    if (options_.store_pivot_data) e.mbb = std::move(mbb);
    return e;
  };
  PageId right = file_->Allocate();
  // part1 stays on `page`, part2 on `right`.
  StoreNode(page, part1);
  StoreNode(right, part2, /*fresh=*/true);
  ReportPlacements(page, part1);
  ReportPlacements(right, part2);

  // The promoted routing objects are the seeds; they carry pd == 0 in
  // their partitions by construction (distance to themselves).  An entry
  // that ties at pd == 0 is an identical object and serves equally well.
  size_t s1 = 0, s2 = 0;
  if (node.is_leaf) {
    for (size_t i = 0; i < part1.leaves.size(); ++i) {
      if (part1.leaves[i].pd == 0) s1 = i;
    }
    for (size_t i = 0; i < part2.leaves.size(); ++i) {
      if (part2.leaves[i].pd == 0) s2 = i;
    }
  } else {
    for (size_t i = 0; i < part1.children.size(); ++i) {
      if (part1.children[i].pd == 0) s1 = i;
    }
    for (size_t i = 0; i < part2.children.size(); ++i) {
      if (part2.children[i].pd == 0) s2 = i;
    }
  }
  out.replacement =
      make_entry(part1, s1, r1, std::move(mbb1), page);
  out.sibling = make_entry(part2, s2, r2, std::move(mbb2), right);
  if (has_parent) {
    out.replacement.pd =
        static_cast<float>(dist_(ViewOf(out.replacement.ro), parent_ro));
    out.sibling.pd =
        static_cast<float>(dist_(ViewOf(out.sibling.ro), parent_ro));
  }
  return out;
}

// -- removal ------------------------------------------------------------------

bool MTree::Remove(ObjectId oid) {
  std::string buf;
  data_->SerializeObject(oid, &buf);
  std::vector<char> payload(buf.begin(), buf.end());
  ObjectView obj = data_->DeserializeObject(
      payload.data(), static_cast<uint32_t>(payload.size()));
  bool removed = RemoveRec(root_, obj, oid);
  if (removed) --size_;
  return removed;
}

bool MTree::RemoveRec(PageId page, const ObjectView& obj, ObjectId oid) {
  MTreeNode node = LoadNode(page);
  if (node.is_leaf) {
    for (size_t i = 0; i < node.leaves.size(); ++i) {
      if (node.leaves[i].oid == oid) {
        node.leaves.erase(node.leaves.begin() + i);
        StoreNode(page, node);
        return true;
      }
    }
    return false;
  }
  for (const auto& e : node.children) {
    if (dist_(obj, ViewOf(e.ro)) <= e.radius) {
      if (RemoveRec(e.child, obj, oid)) return true;
    }
  }
  return false;
}

}  // namespace pmi
