// Paged M-tree (Ciaccia, Patella, Zezula), with the PM-tree extension.
//
// The M-tree clusters objects by ball partitioning: an internal entry
// holds a routing object (RO), covering radius, parent distance (PD), and
// child pointer; a leaf entry holds the object and its PD (Section 3.3,
// Fig. 6).  Two surveyed indexes build on it:
//   * CPT stores objects in M-tree leaves to cluster them on disk;
//   * the PM-tree additionally stores the pivot mapping phi(o) in each
//     leaf entry and a pivot-space MBB in each internal entry
//     (Section 5.1), enabled here by `store_pivot_data`.
//
// Entries are variable-size (objects are stored inline), so nodes are
// byte-packed; capacity is whatever fits a page.  Insertion follows the
// classic single-way descent (prefer a covering child, else least radius
// enlargement) with mM_RAD-style sampled promotion on split.  Deletion is
// lazy: the entry is removed and counts updated, covering radii are left
// conservative (correct, possibly looser), matching the high update cost
// the paper reports for object-in-tree structures.

#ifndef PMI_STORAGE_MTREE_H_
#define PMI_STORAGE_MTREE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/metric.h"
#include "src/core/object.h"
#include "src/core/rng.h"
#include "src/storage/paged_file.h"

namespace pmi {

/// Decoded leaf entry.
struct MTreeLeafEntry {
  ObjectId oid = kInvalidObjectId;
  float pd = 0;                 // d(object, parent routing object)
  std::vector<char> obj;        // serialized payload
  std::vector<float> phi;       // pivot distances (PM-tree only)
};

/// Decoded internal entry.
struct MTreeInternalEntry {
  PageId child = kInvalidPageId;
  float radius = 0;             // covering radius of the subtree
  float pd = 0;                 // d(RO, parent RO); +inf markers unused
  std::vector<char> ro;         // serialized routing object payload
  std::vector<float> mbb;       // lo[l] ++ hi[l] in pivot space (PM-tree)
};

/// Decoded node.
struct MTreeNode {
  bool is_leaf = true;
  std::vector<MTreeLeafEntry> leaves;
  std::vector<MTreeInternalEntry> children;

  size_t count() const {
    return is_leaf ? leaves.size() : children.size();
  }
};

/// Disk-resident M-tree / PM-tree node store.
class MTree {
 public:
  struct Options {
    bool store_pivot_data = false;  // PM-tree mode
    uint32_t num_pivots = 0;        // l, required in PM-tree mode
    uint32_t promotion_samples = 8; // candidate pairs per split
    uint64_t seed = 42;
  };

  /// `on_place` (optional) reports every (oid -> leaf page) placement,
  /// including moves caused by splits; CPT uses it to maintain its
  /// distance-table pointers into the tree.
  MTree(PagedFile* file, const Dataset* data, DistanceComputer dist,
        Options options,
        std::function<void(ObjectId, PageId)> on_place = nullptr);

  PageId root() const { return root_; }
  uint32_t height() const { return height_; }
  size_t size() const { return size_; }

  /// Inserts object `oid`; `phi` must hold num_pivots values in PM-tree
  /// mode (ignored otherwise).
  void Insert(ObjectId oid, const std::vector<float>& phi);

  /// Removes object `oid` (payload looked up in the dataset); false when
  /// absent.
  bool Remove(ObjectId oid);

  /// Snapshot restore: points the tree at pages already reloaded into the
  /// backing PagedFile.  The split-sampling RNG restarts from the seed,
  /// so inserts after a restore may pick different promotion candidates
  /// than the original instance would have; queries and removes read only
  /// the restored pages and are unaffected.
  void RestoreState(PageId root, uint32_t height, size_t size) {
    root_ = root;
    height_ = height;
    size_ = size;
  }

  /// Reads and decodes a node, charging one page read (modulo pool hits).
  MTreeNode LoadNode(PageId page) const;

  /// View of a decoded entry's payload as an object.
  ObjectView ViewOf(const std::vector<char>& payload) const {
    return data_->DeserializeObject(payload.data(),
                                    static_cast<uint32_t>(payload.size()));
  }

  size_t disk_bytes() const { return file_->bytes(); }

 private:
  struct SplitOutcome {
    bool split = false;
    MTreeInternalEntry replacement;  // re-describes the old page
    MTreeInternalEntry sibling;      // describes the new page
  };

  size_t LeafEntryBytes(const MTreeLeafEntry& e) const;
  size_t InternalEntryBytes(const MTreeInternalEntry& e) const;
  size_t NodeBytes(const MTreeNode& node) const;
  bool Fits(const MTreeNode& node) const;

  void StoreNode(PageId page, const MTreeNode& node, bool fresh = false);
  void ReportPlacements(PageId page, const MTreeNode& node);

  SplitOutcome InsertRec(PageId page, const ObjectView& parent_ro,
                         bool has_parent, MTreeLeafEntry&& entry);
  SplitOutcome SplitNode(PageId page, MTreeNode&& node,
                         const ObjectView& parent_ro, bool has_parent);
  bool RemoveRec(PageId page, const ObjectView& obj, ObjectId oid);

  PagedFile* file_;
  const Dataset* data_;
  DistanceComputer dist_;
  Options options_;
  std::function<void(ObjectId, PageId)> on_place_;
  mutable Rng rng_;
  PageId root_;
  uint32_t height_ = 1;
  size_t size_ = 0;
};

}  // namespace pmi

#endif  // PMI_STORAGE_MTREE_H_
