// Real-file I/O layer for the durability subsystem.
//
// PagedFile simulates a disk for the paper's page-access accounting; it
// never touches the filesystem.  Durability needs the opposite: actual
// files, actual fsync, actual rename -- and every one of those calls can
// fail, so everything here returns Status instead of asserting.  Env is
// the single seam between the library and the operating system: the
// snapshot writer, the write-ahead log, and checkpoint recovery all do
// their I/O through an Env*, which is what lets the fault-injection
// harness (src/storage/fault_env.h) interpose torn writes, failed
// fsyncs, and full disks without a single #ifdef in production code.
//
// The shapes follow the classic LevelDB env: WritableFile is an
// append-only handle with an explicit Sync barrier (data is NOT durable
// until Sync returns OK), RandomAccessFile is a stateless pread-style
// reader, and Env carries the filesystem verbs (rename, remove, list,
// directory fsync).  Env::Default() is the process-wide POSIX
// implementation.

#ifndef PMI_STORAGE_ENV_H_
#define PMI_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/status.h"

namespace pmi {

/// Append-only file handle.  Writes land in OS buffers; only a
/// successful Sync() makes previously appended bytes crash-durable.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.  On a non-OK return the file
  /// may hold any prefix of `data` (short/torn write) -- the caller must
  /// treat the tail as garbage from then on.
  virtual Status Append(std::string_view data) = 0;

  /// Durability barrier: flushes application and OS buffers to stable
  /// storage.  After a failed Sync the durable state of previously
  /// appended bytes is unknown (the classic fsync-gate); callers should
  /// stop acknowledging writes on this file.
  virtual Status Sync() = 0;

  /// Closes the handle (no implicit Sync).  Idempotent.
  virtual Status Close() = 0;
};

/// Stateless positional reader (pread semantics).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset` into `out` (resized to what was
  /// actually read; shorter than `n` only at end of file).
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;
};

/// A held exclusive advisory lock on one file (see Env::LockFile).
/// Destroying the handle releases the kernel lock; it never removes the
/// file -- a clean release removes the path first (through
/// Env::RemoveFile, while the lock is still held) and then drops the
/// handle, so there is never a moment where the path exists unlocked.
class FileLock {
 public:
  virtual ~FileLock() = default;

  /// The bytes the file held at the moment the lock was acquired (empty
  /// for a freshly created file).  The holder is the file's only
  /// legitimate writer, so this stays accurate until Overwrite.
  virtual const std::string& previous_contents() const = 0;

  /// Replaces the file's contents (truncate + write + fsync) while the
  /// lock is held.
  virtual Status Overwrite(std::string_view contents) = 0;
};

/// The operating-system seam.  All durability I/O goes through one of
/// these; Env::Default() is the real POSIX filesystem.
class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide POSIX environment (never null, never deleted).
  static Env* Default();

  /// Creates (or truncates) `path` for appending.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Atomically creates `path` with `contents` iff it does not already
  /// exist (POSIX O_CREAT|O_EXCL), then fsyncs and closes it.  Returns
  /// kFailedPrecondition when the file exists -- the mutual-exclusion
  /// primitive behind the database LOCK file.
  virtual Status CreateExclusive(const std::string& path,
                                 std::string_view contents) = 0;

  /// Acquires an exclusive kernel advisory lock (flock) on `path`,
  /// creating the file when absent -- never removing or truncating an
  /// existing one.  The kernel tracks holder liveness: the lock dies
  /// with its holder's last open handle, so acquisition can never race
  /// a stale remove-and-recreate.  Returns kFailedPrecondition when
  /// another live holder has the lock.  The cross-process
  /// mutual-exclusion primitive behind the database LOCK file: the
  /// holder is the sole arbiter of the file's contents until the
  /// returned handle is destroyed.
  virtual StatusOr<std::unique_ptr<FileLock>> LockFile(
      const std::string& path) = 0;

  /// Opens `path` for positional reads.
  virtual StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  /// Reads the whole of `path` into a string.
  virtual StatusOr<std::string> ReadFileToString(const std::string& path);

  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;

  /// Names (not paths) of the entries of `dir`, excluding "." / "..".
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  /// Creates `dir`; OK if it already exists as a directory.
  virtual Status CreateDir(const std::string& dir) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// Atomically replaces `to` with `from`.  The rename itself is atomic,
  /// but NOT durable until the parent directory is synced.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// fsyncs the directory entry metadata of `dir`, making completed
  /// renames/creates inside it durable across power loss.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Truncates `path` to `size` bytes (used to drop a torn WAL tail).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
};

/// True when a process with id `pid` currently exists (kill(pid, 0)
/// probe; EPERM counts as alive).  Used for stale-LOCK detection.
bool ProcessAlive(int64_t pid);

/// "dir/name" with exactly one separator.
inline std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

/// Directory part of `path` ("." when there is no separator); the
/// SyncDir target for a file created at `path`.
inline std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace pmi

#endif  // PMI_STORAGE_ENV_H_
