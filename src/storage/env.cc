#include "src/storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pmi {

namespace {

Status ErrnoStatus(const std::string& context, int err) {
  std::string msg = context + ": " + std::strerror(err);
  if (err == ENOENT) return NotFoundError(std::move(msg));
  return UnavailableError(std::move(msg));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}
  ~PosixWritableFile() override { Close(); }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return UnavailableError(path_ + " is closed");
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write " + path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return OkStatus();
  }

  Status Sync() override {
    if (fd_ < 0) return UnavailableError(path_ + " is closed");
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync " + path_, errno);
    return OkStatus();
  }

  Status Close() override {
    if (fd_ < 0) return OkStatus();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close " + path_, errno);
    return OkStatus();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->resize(n);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, out->data() + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread " + path_, errno);
      }
      if (r == 0) break;  // end of file
      got += static_cast<size_t>(r);
    }
    out->resize(got);
    return OkStatus();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixFileLock final : public FileLock {
 public:
  PosixFileLock(std::string path, int fd, std::string previous)
      : path_(std::move(path)), fd_(fd), previous_(std::move(previous)) {}
  ~PosixFileLock() override { ::close(fd_); }  // releases the flock

  const std::string& previous_contents() const override { return previous_; }

  Status Overwrite(std::string_view contents) override {
    if (::ftruncate(fd_, 0) != 0) {
      return ErrnoStatus("ftruncate " + path_, errno);
    }
    const char* p = contents.data();
    size_t left = contents.size();
    off_t offset = 0;
    while (left > 0) {
      ssize_t n = ::pwrite(fd_, p, left, offset);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pwrite " + path_, errno);
      }
      p += n;
      offset += n;
      left -= static_cast<size_t>(n);
    }
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync " + path_, errno);
    return OkStatus();
  }

 private:
  std::string path_;
  int fd_;
  std::string previous_;
};

class PosixEnv final : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return ErrnoStatus("open " + path + " for writing", errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(path, fd));
  }

  Status CreateExclusive(const std::string& path,
                         std::string_view contents) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
      if (errno == EEXIST) {
        return FailedPreconditionError(path + " already exists");
      }
      return ErrnoStatus("open " + path + " exclusively", errno);
    }
    PosixWritableFile file(path, fd);
    PMI_RETURN_IF_ERROR(file.Append(contents));
    PMI_RETURN_IF_ERROR(file.Sync());
    return file.Close();
  }

  StatusOr<std::unique_ptr<FileLock>> LockFile(
      const std::string& path) override {
    // Retried: between our open and flock, a releaser may unlink the
    // path, leaving us a lock on an orphaned inode that excludes
    // nobody.  The fstat/stat identity check detects that and goes
    // again against whatever now lives at the path.
    for (int attempt = 0; attempt < 8; ++attempt) {
      int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
      if (fd < 0) return ErrnoStatus("open " + path + " for locking", errno);
      if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        const int err = errno;
        ::close(fd);
        if (err == EWOULDBLOCK || err == EAGAIN) {
          return FailedPreconditionError(path +
                                         " is locked by another process");
        }
        return ErrnoStatus("flock " + path, err);
      }
      struct stat locked, named;
      if (::fstat(fd, &locked) != 0) {
        const int err = errno;
        ::close(fd);
        return ErrnoStatus("fstat " + path, err);
      }
      if (::stat(path.c_str(), &named) != 0 ||
          named.st_ino != locked.st_ino || named.st_dev != locked.st_dev) {
        ::close(fd);
        continue;
      }
      std::string previous;
      char buf[4096];
      off_t offset = 0;
      while (true) {
        ssize_t n = ::pread(fd, buf, sizeof buf, offset);
        if (n < 0) {
          if (errno == EINTR) continue;
          const int err = errno;
          ::close(fd);
          return ErrnoStatus("pread " + path, err);
        }
        if (n == 0) break;
        previous.append(buf, static_cast<size_t>(n));
        offset += n;
      }
      return std::unique_ptr<FileLock>(
          std::make_unique<PosixFileLock>(path, fd, std::move(previous)));
    }
    return UnavailableError(path + ": kept racing concurrent lock releases");
  }

  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open " + path + " for reading", errno);
    // Opening a directory read-only succeeds on POSIX; reject it here so
    // callers get a typed error instead of EISDIR from the first pread.
    struct stat st;
    if (::fstat(fd, &st) == 0 && S_ISDIR(st.st_mode)) {
      ::close(fd);
      return InvalidArgumentError(path + " is a directory, not a file");
    }
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<PosixRandomAccessFile>(path, fd));
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("stat " + path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return ErrnoStatus("opendir " + dir, errno);
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(d);
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) == 0) return OkStatus();
    if (errno == EEXIST) {
      struct stat st;
      if (::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        return OkStatus();
      }
      return UnavailableError(dir + " exists and is not a directory");
    }
    return ErrnoStatus("mkdir " + dir, errno);
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus("unlink " + path, errno);
    }
    return OkStatus();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to, errno);
    }
    return OkStatus();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open dir " + dir, errno);
    Status s;
    if (::fsync(fd) != 0) s = ErrnoStatus("fsync dir " + dir, errno);
    ::close(fd);
    return s;
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate " + path, errno);
    }
    return OkStatus();
  }
};

}  // namespace

StatusOr<std::string> Env::ReadFileToString(const std::string& path) {
  PMI_ASSIGN_OR_RETURN(uint64_t size, FileSize(path));
  PMI_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                       NewRandomAccessFile(path));
  std::string out;
  PMI_RETURN_IF_ERROR(file->Read(0, size, &out));
  if (out.size() != size) {
    return UnavailableError(path + " shrank while being read");
  }
  return out;
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv;  // leaked: process lifetime
  return env;
}

bool ProcessAlive(int64_t pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  // EPERM: the process exists but is not ours -- alive for lock purposes.
  return errno == EPERM;
}

}  // namespace pmi
