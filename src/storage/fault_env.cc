#include "src/storage/fault_env.h"

#include <random>

namespace pmi {

/// WritableFile wrapper that consults the env before every mutation.
/// Namespace scope (not anonymous) so the friend declaration in
/// FaultInjectingEnv resolves to it.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base,
                    FaultInjectingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(std::string_view data) override {
    FaultKind inject = FaultKind::kNone;
    PMI_RETURN_IF_ERROR(env_->NextMutation(&inject));
    switch (inject) {
      case FaultKind::kNone:
        return base_->Append(data);
      case FaultKind::kTornWrite: {
        // Power loss mid-write: a random strict prefix lands, then the
        // world stops.  The status models the process dying -- the
        // caller must treat the op as unacknowledged.
        // The env is already powered off (NextMutation crashed it with
        // the trigger); only this call's torn prefix still reaches media.
        size_t keep = data.empty() ? 0 : Below(data.size());
        base_->Append(data.substr(0, keep));
        base_->Sync();  // the torn prefix itself may well be on media
        return UnavailableError("simulated crash: torn write");
      }
      case FaultKind::kShortWrite: {
        size_t keep = data.empty() ? 0 : Below(data.size());
        base_->Append(data.substr(0, keep));
        return UnavailableError("simulated short write");
      }
      case FaultKind::kNoSpace:
        return UnavailableError("simulated ENOSPC");
      case FaultKind::kBitFlip: {
        // Silent corruption: flip one bit and report success.
        std::string bytes(data);
        if (!bytes.empty()) {
          size_t pos = Below(bytes.size());
          bytes[pos] = static_cast<char>(
              bytes[pos] ^ (1u << env_->RandomBelow(8)));
        }
        return base_->Append(bytes);
      }
      case FaultKind::kFailedSync:
        // A sync fault landing on an Append: let the write through and
        // leave the fault armed for the next Sync on this env.
        env_->RearmSyncFault();
        return base_->Append(data);
    }
    return base_->Append(data);
  }

  Status Sync() override {
    FaultKind inject = FaultKind::kNone;
    PMI_RETURN_IF_ERROR(env_->NextMutation(&inject));
    if (inject == FaultKind::kFailedSync) {
      return UnavailableError("simulated fsync failure");
    }
    if (inject == FaultKind::kTornWrite) {
      // Power loss at the barrier itself: what persists is whatever the
      // OS already wrote; NextMutation already downed the env.
      return UnavailableError("simulated crash: power loss at fsync");
    }
    if (inject != FaultKind::kNone) {
      // Write-shaped faults armed on a Sync boundary degrade to a
      // failed barrier; the distinction only matters for Appends.
      return UnavailableError("simulated I/O failure at fsync");
    }
    return base_->Sync();
  }

  Status Close() override {
    // Close is not a durability barrier; it never counts as a mutation
    // and keeps working after a crash so RAII cleanup stays quiet.
    return base_->Close();
  }

 private:
  size_t Below(size_t n) { return env_->RandomBelow(n); }

  std::unique_ptr<WritableFile> base_;
  FaultInjectingEnv* env_;
};

void FaultInjectingEnv::Arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  rng_.seed(plan.seed);
  mutations_ = 0;
  triggered_ = false;
  crashed_ = false;
}

Status FaultInjectingEnv::NextMutation(FaultKind* inject) {
  std::lock_guard<std::mutex> lock(mu_);
  *inject = FaultKind::kNone;
  if (crashed_) return UnavailableError("simulated crash: env is down");
  uint64_t index = mutations_++;
  if (plan_.kind != FaultKind::kNone && !triggered_ &&
      index == plan_.trigger) {
    triggered_ = true;
    *inject = plan_.kind;
    // Power loss takes effect HERE, atomically with the trigger
    // decision.  If it were deferred until after the torn prefix lands
    // on media, a harness observing triggered() could re-Arm() the env
    // inside that window and the late crash would down the env with
    // nobody left to clear it.  The faulting call itself writes its
    // prefix through base_ directly, so this does not block it.
    if (plan_.kind == FaultKind::kTornWrite) crashed_ = true;
  }
  return OkStatus();
}

size_t FaultInjectingEnv::RandomBelow(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  return std::uniform_int_distribution<size_t>(0, n - 1)(rng_);
}

void FaultInjectingEnv::RearmSyncFault() {
  std::lock_guard<std::mutex> lock(mu_);
  plan_.trigger = mutations_;
  triggered_ = false;
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  if (crashed()) return UnavailableError("simulated crash: env is down");
  PMI_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                       base_->NewWritableFile(path));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(std::move(base), this));
}

Status FaultInjectingEnv::CreateExclusive(const std::string& path,
                                          std::string_view contents) {
  // Deliberately NOT a counted mutation: lock-file traffic must not
  // shift the trigger positions of the calibrated fault sweeps.
  if (crashed()) return UnavailableError("simulated crash: env is down");
  return base_->CreateExclusive(path, contents);
}

StatusOr<std::unique_ptr<FileLock>> FaultInjectingEnv::LockFile(
    const std::string& path) {
  // Like CreateExclusive: lock traffic is not a counted mutation, but a
  // downed env refuses it.
  if (crashed()) return UnavailableError("simulated crash: env is down");
  return base_->LockFile(path);
}

StatusOr<std::unique_ptr<RandomAccessFile>>
FaultInjectingEnv::NewRandomAccessFile(const std::string& path) {
  if (crashed()) return UnavailableError("simulated crash: env is down");
  return base_->NewRandomAccessFile(path);
}

StatusOr<uint64_t> FaultInjectingEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

StatusOr<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

Status FaultInjectingEnv::CreateDir(const std::string& dir) {
  if (crashed()) return UnavailableError("simulated crash: env is down");
  return base_->CreateDir(dir);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  if (crashed()) return UnavailableError("simulated crash: env is down");
  return base_->RemoveFile(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  FaultKind inject = FaultKind::kNone;
  PMI_RETURN_IF_ERROR(NextMutation(&inject));
  if (inject == FaultKind::kTornWrite) {
    // Power loss before the rename reached the directory (the env is
    // already down courtesy of NextMutation).
    return UnavailableError("simulated crash: power loss at rename");
  }
  if (inject != FaultKind::kNone) {
    return UnavailableError("simulated I/O failure at rename");
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::SyncDir(const std::string& dir) {
  FaultKind inject = FaultKind::kNone;
  PMI_RETURN_IF_ERROR(NextMutation(&inject));
  if (inject == FaultKind::kTornWrite) {
    return UnavailableError("simulated crash: power loss at dir fsync");
  }
  if (inject == FaultKind::kFailedSync) {
    return UnavailableError("simulated dir fsync failure");
  }
  if (inject != FaultKind::kNone) {
    return UnavailableError("simulated I/O failure at dir fsync");
  }
  return base_->SyncDir(dir);
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  if (crashed()) return UnavailableError("simulated crash: env is down");
  return base_->TruncateFile(path, size);
}

}  // namespace pmi
