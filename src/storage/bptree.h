// Paged B+-tree with optional per-entry MBB aggregates.
//
// Three of the surveyed external indexes sit on a B+-tree: the Omni
// B+-tree indexes one pre-computed distance per tree, the M-index indexes
// iDistance-style keys, and the SPB-tree indexes Hilbert SFC values whose
// non-leaf entries additionally carry the minimum bounding box of the
// mapped vectors below them (Section 5.4: "Each non-leaf B+-tree entry e
// stores SFC values min and max ... that represent MBB(e)").  The
// `agg_dims` option enables exactly that: every internal entry carries
// [lo..][hi..] float bounds aggregated from the leaf level, maintained on
// insert/delete and available during custom traversals.
//
// Keys are uint64; duplicate keys are allowed.  Values are fixed-size
// opaque byte strings.  Deletion is lazy (no rebalancing/merging, as in
// many production secondary indexes): underfull nodes persist, empty
// ranges are skipped by scans.

#ifndef PMI_STORAGE_BPTREE_H_
#define PMI_STORAGE_BPTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/storage/paged_file.h"

namespace pmi {

/// Disk-resident B+-tree.
class BPlusTree {
 public:
  /// Computes the `agg_dims` point coordinates of a leaf entry; required
  /// iff agg_dims > 0 (SPB-tree decodes the Hilbert key here).
  using PointFn =
      std::function<void(uint64_t key, const char* value, float* coords)>;

  BPlusTree(PagedFile* file, uint32_t value_size, uint32_t agg_dims = 0,
            PointFn point_fn = nullptr);

  uint32_t value_size() const { return value_size_; }
  uint32_t agg_dims() const { return agg_dims_; }
  uint32_t height() const { return height_; }
  PageId root() const { return root_; }
  uint64_t entry_count() const { return entry_count_; }

  /// Inserts (key, value); duplicates allowed.
  void Insert(uint64_t key, const char* value);

  /// Removes one entry matching `key` whose first `match_bytes` value
  /// bytes equal `value`.  Returns false when absent.
  bool Remove(uint64_t key, const char* value, uint32_t match_bytes);

  /// Builds the tree from entries sorted ascending by key, replacing any
  /// existing contents.  Sequential page writes -- this is how the
  /// external indexes achieve their low construction PA.
  void BulkLoad(const std::vector<std::pair<uint64_t, std::vector<char>>>&
                    sorted_entries);

  /// In-order scan of all entries with lo <= key <= hi.  Return false
  /// from `fn` to stop early.
  void Scan(uint64_t lo, uint64_t hi,
            const std::function<bool(uint64_t key, const char* value)>& fn)
      const;

  // -- Structural read access (custom traversals: SPB best-first) ---------

  /// Decoded, read-only view of a node.  The view holds a buffer-pool
  /// pin, so `raw` and every accessor stay valid (and the frame stays
  /// un-evictable) for the life of the view; copying re-pins.
  struct NodeView {
    bool is_leaf = false;
    uint32_t count = 0;
    PageHandle pin;
    const char* raw = nullptr;
    const BPlusTree* tree = nullptr;

    uint64_t key(uint32_t i) const;          // leaf & internal (separator)
    const char* value(uint32_t i) const;     // leaf only
    PageId child(uint32_t i) const;          // internal only
    const float* agg_lo(uint32_t i) const;   // internal only, agg_dims floats
    const float* agg_hi(uint32_t i) const;   // internal only
    PageId next() const;                     // leaf chain
  };

  /// Reads a node, charging PA through the PagedFile.
  NodeView ReadNode(PageId page) const;

  size_t disk_bytes() const { return file_->bytes(); }

 private:
  struct Summary {
    uint64_t max_key = 0;
    std::vector<float> agg;  // lo[agg_dims] ++ hi[agg_dims]
  };
  struct SplitResult {
    bool split = false;
    PageId right_page = kInvalidPageId;
    Summary left, right;
  };

  uint32_t leaf_entry_size() const { return 8 + value_size_; }
  uint32_t internal_entry_size() const { return 12 + 8 * agg_dims_; }

  // Raw accessors over a page buffer.
  static bool IsLeaf(const char* p);
  static uint32_t Count(const char* p);
  static void SetHeader(char* p, bool leaf, uint32_t count, PageId next);
  static void SetCount(char* p, uint32_t count);
  static PageId Next(const char* p);
  static void SetNext(char* p, PageId next);

  char* LeafEntry(char* p, uint32_t i) const;
  const char* LeafEntry(const char* p, uint32_t i) const;
  char* InternalEntry(char* p, uint32_t i) const;
  const char* InternalEntry(const char* p, uint32_t i) const;

  Summary ComputeSummary(PageId page) const;
  void WriteInternalEntry(char* node, uint32_t i, PageId child,
                          const Summary& s) const;

  SplitResult InsertRec(PageId page, uint64_t key, const char* value);
  bool RemoveRec(PageId page, uint64_t key, const char* value,
                 uint32_t match_bytes, Summary* updated);

  PagedFile* file_;
  uint32_t value_size_;
  uint32_t agg_dims_;
  PointFn point_fn_;
  uint32_t leaf_capacity_;
  uint32_t internal_capacity_;
  PageId root_;
  uint32_t height_ = 1;  // 1 = root is a leaf
  uint64_t entry_count_ = 0;
};

}  // namespace pmi

#endif  // PMI_STORAGE_BPTREE_H_
