#include "src/storage/raf.h"

#include <algorithm>
#include <cstring>

namespace pmi {

RafRef RecordFile::Append(const char* data, uint32_t len) {
  const uint32_t ps = file_->page_size();
  // Keep whole records within a page when they fit in one: records never
  // straddle a boundary unless longer than a page.  This mirrors slotted
  // pages and creates the per-page waste the paper observes for Color
  // objects (Section 6.2, storage discussion).
  if (len <= ps) {
    uint32_t in_page = static_cast<uint32_t>(end_ % ps);
    if (in_page != 0 && in_page + len > ps) end_ += ps - in_page;  // pad
  }
  RafRef ref{end_, len};
  uint64_t pos = end_;
  uint32_t remaining = len;
  const char* src = data;
  while (remaining > 0) {
    uint32_t page_idx = static_cast<uint32_t>(pos / ps);
    uint32_t in_page = static_cast<uint32_t>(pos % ps);
    while (page_idx >= pages_.size()) pages_.push_back(file_->Allocate());
    uint32_t chunk = std::min(remaining, ps - in_page);
    // Fresh append never needs the old page image when starting a page.
    PageHandle h = file_->Write(pages_[page_idx], /*load=*/in_page != 0);
    std::memcpy(h.mutable_data() + in_page, src, chunk);
    pos += chunk;
    src += chunk;
    remaining -= chunk;
  }
  end_ = ref.offset + len;
  return ref;
}

Status RecordFile::ReadRecord(const RafRef& ref,
                              std::vector<char>* out) const {
  if (ref.offset > end_ || ref.length > end_ - ref.offset) {
    return DataLossError(
        "record ref [" + std::to_string(ref.offset) + ", +" +
        std::to_string(ref.length) + ") exceeds the stored " +
        std::to_string(end_) + " bytes");
  }
  out->resize(ref.length);
  const uint32_t ps = file_->page_size();
  uint64_t pos = ref.offset;
  uint32_t remaining = ref.length;
  char* dst = out->data();
  // A record longer than a page spans consecutive file pages: prime the
  // physical pool for the whole span (logical PA is untouched).
  if (ref.length > ps) {
    uint32_t first = static_cast<uint32_t>(pos / ps);
    uint32_t last = static_cast<uint32_t>((pos + ref.length - 1) / ps);
    if (first < pages_.size()) {
      // The span usually maps to consecutively allocated file pages;
      // readahead covers the contiguous prefix.
      uint32_t run = 1;
      while (first + run <= last && first + run < pages_.size() &&
             pages_[first + run] == pages_[first] + run) {
        ++run;
      }
      file_->ReadaheadPages(pages_[first], run);
    }
  }
  while (remaining > 0) {
    uint32_t page_idx = static_cast<uint32_t>(pos / ps);
    uint32_t in_page = static_cast<uint32_t>(pos % ps);
    if (page_idx >= pages_.size()) {
      return DataLossError("record ref reaches past the last RAF page");
    }
    uint32_t chunk = std::min(remaining, ps - in_page);
    PMI_ASSIGN_OR_RETURN(PageHandle h, file_->ReadPage(pages_[page_idx]));
    std::memcpy(dst, h.data() + in_page, chunk);
    pos += chunk;
    dst += chunk;
    remaining -= chunk;
  }
  return OkStatus();
}

}  // namespace pmi
