#include "src/storage/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

namespace pmi {
namespace {

constexpr uint32_t kHeaderSize = 8;  // u8 leaf | u8 pad | u16 count | u32 pad

void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

bool IsLeaf(const char* p) { return p[0] != 0; }
uint32_t Count(const char* p) {
  uint16_t c;
  std::memcpy(&c, p + 2, 2);
  return c;
}
void SetHeader(char* p, bool leaf, uint32_t count) {
  p[0] = leaf ? 1 : 0;
  p[1] = 0;
  uint16_t c = static_cast<uint16_t>(count);
  std::memcpy(p + 2, &c, 2);
  StoreU32(p + 4, 0);
}
void SetCount(char* p, uint32_t count) {
  uint16_t c = static_cast<uint16_t>(count);
  std::memcpy(p + 2, &c, 2);
}

}  // namespace

// Leaf entry layout:     [point dims*f][oid u32][off u64][len u32]
// Internal entry layout: [lo dims*f][hi dims*f][child u32]

RTree::RTree(PagedFile* file, uint32_t dims) : file_(file), dims_(dims) {
  uint32_t leaf_slots = (file_->page_size() - kHeaderSize) / leaf_entry_size();
  uint32_t internal_slots =
      (file_->page_size() - kHeaderSize) / internal_entry_size();
  assert(leaf_slots >= 3 && internal_slots >= 3);
  leaf_capacity_ = leaf_slots - 1;
  internal_capacity_ = internal_slots - 1;
  root_ = file_->Allocate();
  SetHeader(file_->Write(root_, /*load=*/false).mutable_data(), /*leaf=*/true,
            0);
}

char* RTree::LeafEntryPtr(char* p, uint32_t i) const {
  return p + kHeaderSize + size_t(i) * leaf_entry_size();
}

char* RTree::InternalEntryPtr(char* p, uint32_t i) const {
  return p + kHeaderSize + size_t(i) * internal_entry_size();
}

const float* RTree::NodeView::lo(uint32_t i) const {
  return reinterpret_cast<const float*>(
      raw + kHeaderSize + size_t(i) * tree->internal_entry_size());
}
const float* RTree::NodeView::hi(uint32_t i) const {
  return lo(i) + tree->dims_;
}
PageId RTree::NodeView::child(uint32_t i) const {
  return LoadU32(raw + kHeaderSize + size_t(i) * tree->internal_entry_size() +
                 8 * tree->dims_);
}
const float* RTree::NodeView::point(uint32_t i) const {
  return reinterpret_cast<const float*>(
      raw + kHeaderSize + size_t(i) * tree->leaf_entry_size());
}
ObjectId RTree::NodeView::oid(uint32_t i) const {
  return LoadU32(raw + kHeaderSize + size_t(i) * tree->leaf_entry_size() +
                 4 * tree->dims_);
}
RafRef RTree::NodeView::ref(uint32_t i) const {
  const char* e =
      raw + kHeaderSize + size_t(i) * tree->leaf_entry_size() + 4 * tree->dims_;
  RafRef r;
  std::memcpy(&r.offset, e + 4, 8);
  std::memcpy(&r.length, e + 12, 4);
  return r;
}

RTree::NodeView RTree::ReadNode(PageId page) const {
  NodeView v;
  v.pin = file_->Read(page);
  v.raw = v.pin.data();
  v.is_leaf = IsLeaf(v.raw);
  v.count = Count(v.raw);
  v.tree = this;
  return v;
}

RTree::Rect RTree::NodeBox(PageId page) const {
  PageHandle h = file_->Read(page);
  const char* p = h.data();
  Rect box;
  box.lo.assign(dims_, std::numeric_limits<float>::max());
  box.hi.assign(dims_, std::numeric_limits<float>::lowest());
  uint32_t n = Count(p);
  for (uint32_t i = 0; i < n; ++i) {
    if (IsLeaf(p)) {
      const float* pt = reinterpret_cast<const float*>(
          p + kHeaderSize + size_t(i) * leaf_entry_size());
      for (uint32_t d = 0; d < dims_; ++d) {
        box.lo[d] = std::min(box.lo[d], pt[d]);
        box.hi[d] = std::max(box.hi[d], pt[d]);
      }
    } else {
      const float* lo = reinterpret_cast<const float*>(
          p + kHeaderSize + size_t(i) * internal_entry_size());
      const float* hi = lo + dims_;
      for (uint32_t d = 0; d < dims_; ++d) {
        box.lo[d] = std::min(box.lo[d], lo[d]);
        box.hi[d] = std::max(box.hi[d], hi[d]);
      }
    }
  }
  return box;
}

// -- bulk load (STR) ----------------------------------------------------------

void RTree::BulkLoad(std::vector<LeafEntry> entries) {
  if (entries.empty()) {
    root_ = file_->Allocate();
    SetHeader(file_->Write(root_, /*load=*/false).mutable_data(), true, 0);
    height_ = 1;
    return;
  }
  // Recursive STR tiling: sort the current span by dimension `dim` and
  // cut it into ceil(count/target)^(1/remaining) slabs, recursing with
  // the next dimension inside each slab.
  const uint32_t fill = std::max<uint32_t>(2, leaf_capacity_ * 9 / 10);
  std::vector<ChildBox> level;

  struct Tile {
    size_t begin, end;
    uint32_t dim;
  };
  std::vector<Tile> stack{{0, entries.size(), 0}};
  // Fully tile: sort recursively until slabs are leaf-sized, then emit in
  // order.  We materialize slab order by processing the stack depth-first
  // but keeping begin-order (process in reverse push order).
  std::vector<std::pair<size_t, size_t>> leaf_runs;
  while (!stack.empty()) {
    Tile t = stack.back();
    stack.pop_back();
    size_t count = t.end - t.begin;
    if (count <= fill || t.dim >= dims_) {
      // Emit runs of `fill`.
      for (size_t b = t.begin; b < t.end; b += fill) {
        leaf_runs.emplace_back(b, std::min(t.end, b + fill));
      }
      continue;
    }
    std::sort(entries.begin() + t.begin, entries.begin() + t.end,
              [&](const LeafEntry& a, const LeafEntry& b) {
                return a.point[t.dim] < b.point[t.dim];
              });
    size_t num_leaves = (count + fill - 1) / fill;
    uint32_t remaining = dims_ - t.dim;
    size_t slabs = static_cast<size_t>(
        std::ceil(std::pow(double(num_leaves), 1.0 / remaining)));
    slabs = std::max<size_t>(1, std::min(slabs, num_leaves));
    size_t per_slab = (count + slabs - 1) / slabs;
    // Push in reverse so lower slabs are processed (emitted) first.
    std::vector<Tile> tiles;
    for (size_t b = t.begin; b < t.end; b += per_slab) {
      tiles.push_back({b, std::min(t.end, b + per_slab), t.dim + 1});
    }
    for (auto it = tiles.rbegin(); it != tiles.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  std::sort(leaf_runs.begin(), leaf_runs.end());

  for (auto [b, e] : leaf_runs) {
    PageId page = file_->Allocate();
    PageHandle h = file_->Write(page, /*load=*/false);
    char* p = h.mutable_data();
    SetHeader(p, /*leaf=*/true, static_cast<uint32_t>(e - b));
    for (size_t i = b; i < e; ++i) {
      char* ep = LeafEntryPtr(p, static_cast<uint32_t>(i - b));
      std::memcpy(ep, entries[i].point.data(), 4 * dims_);
      StoreU32(ep + 4 * dims_, entries[i].oid);
      std::memcpy(ep + 4 * dims_ + 4, &entries[i].ref.offset, 8);
      std::memcpy(ep + 4 * dims_ + 12, &entries[i].ref.length, 4);
    }
    level.push_back({page, NodeBox(page)});
  }

  height_ = 1;
  const uint32_t int_fill = std::max<uint32_t>(2, internal_capacity_ * 9 / 10);
  while (level.size() > 1) {
    std::vector<ChildBox> up;
    for (size_t j = 0; j < level.size(); j += int_fill) {
      size_t e = std::min(level.size(), j + int_fill);
      PageId page = file_->Allocate();
      PageHandle h = file_->Write(page, /*load=*/false);
      char* p = h.mutable_data();
      SetHeader(p, /*leaf=*/false, static_cast<uint32_t>(e - j));
      for (size_t t = j; t < e; ++t) {
        char* ep = InternalEntryPtr(p, static_cast<uint32_t>(t - j));
        std::memcpy(ep, level[t].box.lo.data(), 4 * dims_);
        std::memcpy(ep + 4 * dims_, level[t].box.hi.data(), 4 * dims_);
        StoreU32(ep + 8 * dims_, level[t].page);
      }
      up.push_back({page, NodeBox(page)});
    }
    level = std::move(up);
    ++height_;
  }
  root_ = level[0].page;
}

// -- insertion ----------------------------------------------------------------

namespace {

// Margin-sum enlargement of box [lo,hi] to cover point pt; robust for the
// degenerate (zero-volume) boxes common in pivot space.
double Enlargement(const float* lo, const float* hi, const float* pt,
                   uint32_t dims) {
  double e = 0;
  for (uint32_t d = 0; d < dims; ++d) {
    if (pt[d] < lo[d]) e += double(lo[d]) - pt[d];
    if (pt[d] > hi[d]) e += double(pt[d]) - hi[d];
  }
  return e;
}

double Margin(const float* lo, const float* hi, uint32_t dims) {
  double m = 0;
  for (uint32_t d = 0; d < dims; ++d) m += double(hi[d]) - lo[d];
  return m;
}

}  // namespace

void RTree::SplitNode(char* p, bool leaf, PageId page, SplitResult* out) {
  const uint32_t n = Count(p);
  const uint32_t esz = leaf ? leaf_entry_size() : internal_entry_size();
  // Quadratic split on entry centers.
  std::vector<const float*> centers(n);
  std::vector<std::vector<float>> center_store;
  center_store.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const char* e = p + kHeaderSize + size_t(i) * esz;
    if (leaf) {
      centers[i] = reinterpret_cast<const float*>(e);
    } else {
      const float* lo = reinterpret_cast<const float*>(e);
      const float* hi = lo + dims_;
      std::vector<float> c(dims_);
      for (uint32_t d = 0; d < dims_; ++d) c[d] = (lo[d] + hi[d]) / 2;
      center_store.push_back(std::move(c));
      centers[i] = center_store.back().data();
    }
  }
  // Seeds: the pair with maximal center distance (Linf).
  uint32_t s1 = 0, s2 = 1;
  double worst = -1;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      double d = 0;
      for (uint32_t k = 0; k < dims_; ++k) {
        d = std::max(d, std::fabs(double(centers[i][k]) - centers[j][k]));
      }
      if (d > worst) {
        worst = d;
        s1 = i;
        s2 = j;
      }
    }
  }
  // Assign each entry to the nearer seed, balanced tail.
  std::vector<uint32_t> g1{s1}, g2{s2};
  for (uint32_t i = 0; i < n; ++i) {
    if (i == s1 || i == s2) continue;
    double d1 = 0, d2 = 0;
    for (uint32_t k = 0; k < dims_; ++k) {
      d1 = std::max(d1, std::fabs(double(centers[i][k]) - centers[s1][k]));
      d2 = std::max(d2, std::fabs(double(centers[i][k]) - centers[s2][k]));
    }
    const uint32_t min_fill = std::max<uint32_t>(1, n / 3);
    if (g1.size() + (n - g1.size() - g2.size()) <= min_fill) {
      g1.push_back(i);
    } else if (g2.size() + (n - g1.size() - g2.size()) <= min_fill) {
      g2.push_back(i);
    } else {
      (d1 <= d2 ? g1 : g2).push_back(i);
    }
  }
  // Materialize: group 1 stays, group 2 moves to a fresh page.
  std::vector<char> scratch(size_t(n) * esz);
  std::memcpy(scratch.data(), p + kHeaderSize, scratch.size());
  auto emit = [&](char* dst, const std::vector<uint32_t>& grp) {
    for (uint32_t i = 0; i < grp.size(); ++i) {
      std::memcpy(dst + kHeaderSize + size_t(i) * esz,
                  scratch.data() + size_t(grp[i]) * esz, esz);
    }
  };
  PageId right = file_->Allocate();
  PageHandle rh = file_->Write(right, /*load=*/false);
  char* rp = rh.mutable_data();
  SetHeader(rp, leaf, static_cast<uint32_t>(g2.size()));
  emit(rp, g2);
  SetHeader(p, leaf, static_cast<uint32_t>(g1.size()));
  emit(p, g1);
  out->split = true;
  out->right_page = right;
  out->left_box = NodeBox(page);
  out->right_box = NodeBox(right);
}

RTree::SplitResult RTree::InsertRec(PageId page, uint32_t level,
                                    const LeafEntry& entry) {
  PageHandle ph = file_->Write(page);
  char* p = ph.mutable_data();
  SplitResult res;
  if (IsLeaf(p)) {
    uint32_t n = Count(p);
    char* ep = LeafEntryPtr(p, n);
    std::memcpy(ep, entry.point.data(), 4 * dims_);
    StoreU32(ep + 4 * dims_, entry.oid);
    std::memcpy(ep + 4 * dims_ + 4, &entry.ref.offset, 8);
    std::memcpy(ep + 4 * dims_ + 12, &entry.ref.length, 4);
    SetCount(p, ++n);
    if (n <= leaf_capacity_) {
      res.left_box = NodeBox(page);
      return res;
    }
    SplitNode(p, /*leaf=*/true, page, &res);
    return res;
  }

  // Choose the child needing least margin enlargement; tie -> smaller box.
  uint32_t n = Count(p);
  assert(n > 0);
  uint32_t best = 0;
  double best_enl = std::numeric_limits<double>::max();
  double best_margin = std::numeric_limits<double>::max();
  for (uint32_t i = 0; i < n; ++i) {
    const char* e = p + kHeaderSize + size_t(i) * internal_entry_size();
    const float* lo = reinterpret_cast<const float*>(e);
    const float* hi = lo + dims_;
    double enl = Enlargement(lo, hi, entry.point.data(), dims_);
    double mar = Margin(lo, hi, dims_);
    if (enl < best_enl || (enl == best_enl && mar < best_margin)) {
      best_enl = enl;
      best_margin = mar;
      best = i;
    }
  }
  PageId child = LoadU32(p + kHeaderSize +
                         size_t(best) * internal_entry_size() + 8 * dims_);
  SplitResult sub = InsertRec(child, level + 1, entry);
  ph = file_->Write(page);  // re-touch (child writes shifted the LRU)
  p = ph.mutable_data();
  {
    char* e = InternalEntryPtr(p, best);
    std::memcpy(e, sub.left_box.lo.data(), 4 * dims_);
    std::memcpy(e + 4 * dims_, sub.left_box.hi.data(), 4 * dims_);
    StoreU32(e + 8 * dims_, child);
  }
  if (sub.split) {
    char* e = InternalEntryPtr(p, n);
    std::memcpy(e, sub.right_box.lo.data(), 4 * dims_);
    std::memcpy(e + 4 * dims_, sub.right_box.hi.data(), 4 * dims_);
    StoreU32(e + 8 * dims_, sub.right_page);
    SetCount(p, ++n);
  }
  if (n <= internal_capacity_) {
    res.left_box = NodeBox(page);
    return res;
  }
  SplitNode(p, /*leaf=*/false, page, &res);
  return res;
}

void RTree::Insert(const LeafEntry& entry) {
  assert(entry.point.size() == dims_);
  SplitResult res = InsertRec(root_, 0, entry);
  if (!res.split) return;
  PageId new_root = file_->Allocate();
  PageHandle ph = file_->Write(new_root, /*load=*/false);
  char* p = ph.mutable_data();
  SetHeader(p, /*leaf=*/false, 2);
  char* e0 = InternalEntryPtr(p, 0);
  std::memcpy(e0, res.left_box.lo.data(), 4 * dims_);
  std::memcpy(e0 + 4 * dims_, res.left_box.hi.data(), 4 * dims_);
  StoreU32(e0 + 8 * dims_, root_);
  char* e1 = InternalEntryPtr(p, 1);
  std::memcpy(e1, res.right_box.lo.data(), 4 * dims_);
  std::memcpy(e1 + 4 * dims_, res.right_box.hi.data(), 4 * dims_);
  StoreU32(e1 + 8 * dims_, res.right_page);
  root_ = new_root;
  ++height_;
}

// -- removal ------------------------------------------------------------------

bool RTree::RemoveRec(PageId page, const float* point, ObjectId oid,
                      Rect* updated) {
  PageHandle ch = file_->Read(page);
  const char* cp = ch.data();
  uint32_t n = Count(cp);
  if (IsLeaf(cp)) {
    for (uint32_t i = 0; i < n; ++i) {
      const char* e = cp + kHeaderSize + size_t(i) * leaf_entry_size();
      if (LoadU32(e + 4 * dims_) != oid) continue;
      PageHandle wh = file_->Write(page);
      char* wp = wh.mutable_data();
      std::memmove(LeafEntryPtr(wp, i), LeafEntryPtr(wp, i + 1),
                   size_t(n - i - 1) * leaf_entry_size());
      SetCount(wp, n - 1);
      *updated = NodeBox(page);
      return true;
    }
    return false;
  }
  for (uint32_t i = 0; i < n; ++i) {
    const char* e = cp + kHeaderSize + size_t(i) * internal_entry_size();
    const float* lo = reinterpret_cast<const float*>(e);
    const float* hi = lo + dims_;
    bool contains = true;
    for (uint32_t d = 0; d < dims_ && contains; ++d) {
      contains = point[d] >= lo[d] && point[d] <= hi[d];
    }
    if (!contains) continue;
    PageId child = LoadU32(e + 8 * dims_);
    Rect child_box;
    if (RemoveRec(child, point, oid, &child_box)) {
      PageHandle wh = file_->Write(page);
      char* wp = wh.mutable_data();
      char* we = InternalEntryPtr(wp, i);
      std::memcpy(we, child_box.lo.data(), 4 * dims_);
      std::memcpy(we + 4 * dims_, child_box.hi.data(), 4 * dims_);
      *updated = NodeBox(page);
      return true;
    }
    ch = file_->Read(page);
    cp = ch.data();
  }
  return false;
}

bool RTree::Remove(const float* point, ObjectId oid) {
  Rect ignored;
  return RemoveRec(root_, point, oid, &ignored);
}

}  // namespace pmi
