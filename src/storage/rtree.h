// Paged R-tree over points in pivot space.
//
// The OmniR-tree (Section 5.2) indexes the mapped vectors phi(o) with an
// R-tree whose leaf entries point into the RAF holding the real objects.
// Construction uses STR (sort-tile-recursive) bulk loading -- sequential
// page writes, matching the construction-cost profile the paper reports
// -- while updates use classic Guttman insertion with quadratic split.
// Deletion is lazy: entries are removed and ancestor MBRs recomputed, but
// underfull nodes are not condensed (documented trade-off; queries remain
// correct because MBRs stay conservative bounds).

#ifndef PMI_STORAGE_RTREE_H_
#define PMI_STORAGE_RTREE_H_

#include <cstdint>
#include <vector>

#include "src/core/object.h"
#include "src/storage/paged_file.h"
#include "src/storage/raf.h"

namespace pmi {

/// Disk-resident R-tree storing (point, oid, RafRef) leaf entries.
class RTree {
 public:
  struct LeafEntry {
    std::vector<float> point;  // dims coords
    ObjectId oid = kInvalidObjectId;
    RafRef ref;
  };

  RTree(PagedFile* file, uint32_t dims);

  uint32_t dims() const { return dims_; }
  PageId root() const { return root_; }
  uint32_t height() const { return height_; }

  /// Replaces contents with an STR bulk load of `entries`.
  void BulkLoad(std::vector<LeafEntry> entries);

  /// Guttman insert with quadratic split.
  void Insert(const LeafEntry& entry);

  /// Removes the entry for `oid` located at `point`; false when absent.
  bool Remove(const float* point, ObjectId oid);

  /// Decoded read-only node view; charges PA through the PagedFile.
  /// Holds a buffer-pool pin: `raw` stays valid for the view's life.
  struct NodeView {
    bool is_leaf = false;
    uint32_t count = 0;
    PageHandle pin;
    const char* raw = nullptr;
    const RTree* tree = nullptr;

    // Internal entries.
    const float* lo(uint32_t i) const;
    const float* hi(uint32_t i) const;
    PageId child(uint32_t i) const;
    // Leaf entries.
    const float* point(uint32_t i) const;
    ObjectId oid(uint32_t i) const;
    RafRef ref(uint32_t i) const;
  };

  NodeView ReadNode(PageId page) const;

  size_t disk_bytes() const { return file_->bytes(); }

 private:
  struct Rect {
    std::vector<float> lo, hi;
  };
  struct ChildBox {
    PageId page;
    Rect box;
  };
  struct SplitResult {
    bool split = false;
    PageId right_page = kInvalidPageId;
    Rect left_box, right_box;
  };

  uint32_t leaf_entry_size() const { return 4 * dims_ + 16; }
  uint32_t internal_entry_size() const { return 8 * dims_ + 4; }

  char* LeafEntryPtr(char* p, uint32_t i) const;
  char* InternalEntryPtr(char* p, uint32_t i) const;
  Rect NodeBox(PageId page) const;

  SplitResult InsertRec(PageId page, uint32_t level, const LeafEntry& entry);
  bool RemoveRec(PageId page, const float* point, ObjectId oid,
                 Rect* updated);
  void SplitNode(char* p, bool leaf, PageId page, SplitResult* out);

  PagedFile* file_;
  uint32_t dims_;
  uint32_t leaf_capacity_;
  uint32_t internal_capacity_;
  PageId root_;
  uint32_t height_ = 1;
};

}  // namespace pmi

#endif  // PMI_STORAGE_RTREE_H_
