// Columnar pivot-distance table -- the scan substrate of the flat
// table-based indexes (LAESA, EPT/EPT*, CPT's in-memory half).
//
// The paper's cost model makes the n x l table scan the dominant CPU term
// of the table indexes.  A row-major layout walks l-doubles-strided memory
// and re-decides "pruned?" with a branchy per-row loop; since Lemma-1
// pruning usually triggers on the *first* pivot, almost all of that
// traffic is wasted.  This table stores the mapping column-major (one
// contiguous array per pivot slot) and scans in blocks of kScanBlock rows:
//
//   1. pivot slot 0 sweeps one contiguous column, writing a byte-mask of
//      block-local survivors (branchless, auto-vectorizable);
//   2. the mask is compacted into a survivor index list;
//   3. each later pivot slot refines only the survivor list (short,
//      gather-indexed loops over its own contiguous column).
//
// The common case -- a row pruned by its first pivot -- therefore touches
// 8 bytes instead of an 8*l-byte row, and the first-pivot sweep runs at
// SIMD width.  Pruning decisions are *identical* to the row-major loop
// (same comparisons, same order), so query results are byte-for-byte
// unchanged; the conformance and pivot_table tests pin this.
//
// Two scan forms cover the two table families:
//   - shared-pivot (LAESA/CPT): column p holds d(o, p_p); the query side
//     is phi(q) = <d(q,p_1), ..., d(q,p_l)> computed once per query.
//   - per-row-pivot (EPT/EPT*): column j holds d(o, p_{c_j(o)}) plus a
//     parallel uint32 column of pool indices c_j(o); the query side
//     gathers d(q, pool[c]) from a per-query pool mapping.

#ifndef PMI_CORE_PIVOT_TABLE_H_
#define PMI_CORE_PIVOT_TABLE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace pmi {

/// Column-major n x l pivot-distance table with blocked Lemma-1 scans.
class PivotTable {
 public:
  /// Rows per scan block: 256 rows = one 2 KB column slab, small enough
  /// that the pivot-0 slab plus the survivor scratch stay L1-resident.
  static constexpr uint32_t kScanBlock = 256;

  PivotTable() = default;

  /// Clears the table and sets the number of pivot slots per row.
  /// `per_row_pivots` selects the EPT-style layout with a parallel
  /// pool-index column per slot.
  void Reset(uint32_t width, bool per_row_pivots = false) {
    width_ = width;
    rows_ = 0;
    cols_.assign(width, {});
    pidx_cols_.assign(per_row_pivots ? width : 0, {});
  }

  void Reserve(size_t rows) {
    for (auto& c : cols_) c.reserve(rows);
    for (auto& c : pidx_cols_) c.reserve(rows);
  }

  /// Preallocates `rows` zeroed rows for index-addressed filling via
  /// SetRow -- the parallel-build form of AppendRow.  rows() becomes
  /// `rows` immediately.
  void ResizeRows(size_t rows) {
    for (auto& c : cols_) c.assign(rows, 0.0);
    for (auto& c : pidx_cols_) c.assign(rows, 0);
    rows_ = rows;
  }

  uint32_t width() const { return width_; }
  size_t rows() const { return rows_; }
  bool per_row_pivots() const { return !pidx_cols_.empty(); }

  /// Appends a row in shared-pivot form: phi[p] = d(o, p_p).
  void AppendRow(const double* phi) {
    for (uint32_t p = 0; p < width_; ++p) cols_[p].push_back(phi[p]);
    ++rows_;
  }

  /// Appends a row in per-row-pivot form: slot j holds distance pdist[j]
  /// to pool pivot pidx[j].
  void AppendRow(const double* pdist, const uint32_t* pidx) {
    for (uint32_t j = 0; j < width_; ++j) {
      cols_[j].push_back(pdist[j]);
      pidx_cols_[j].push_back(pidx[j]);
    }
    ++rows_;
  }

  /// Writes row `row` (< rows(), preallocated via ResizeRows) in
  /// shared-pivot form.  A row's cells are element-private, so concurrent
  /// SetRow calls on distinct rows are race-free -- the contract the
  /// parallel table fills rely on.
  void SetRow(size_t row, const double* phi) {
    for (uint32_t p = 0; p < width_; ++p) cols_[p][row] = phi[p];
  }

  /// Per-row-pivot form of SetRow.
  void SetRow(size_t row, const double* pdist, const uint32_t* pidx) {
    for (uint32_t j = 0; j < width_; ++j) {
      cols_[j][row] = pdist[j];
      pidx_cols_[j][row] = pidx[j];
    }
  }

  /// Removes row `row` by moving the last row into its place (the scan
  /// tables are order-independent, so deletion is O(l) instead of the
  /// O(n*l) erase-and-shift of the row-major layout).
  void RemoveRowSwap(size_t row) {
    const size_t last = rows_ - 1;
    for (auto& c : cols_) {
      c[row] = c[last];
      c.pop_back();
    }
    for (auto& c : pidx_cols_) {
      c[row] = c[last];
      c.pop_back();
    }
    rows_ = last;
  }

  /// Cell-level writers (snapshot loading); row must be < rows().
  void SetCell(size_t row, uint32_t slot, double v) { cols_[slot][row] = v; }
  void SetPivotIndex(size_t row, uint32_t slot, uint32_t v) {
    pidx_cols_[slot][row] = v;
  }

  double distance(size_t row, uint32_t slot) const {
    return cols_[slot][row];
  }
  uint32_t pivot_index(size_t row, uint32_t slot) const {
    return pidx_cols_[slot][row];
  }
  /// Contiguous per-slot distance column (length rows()).
  const double* column(uint32_t slot) const { return cols_[slot].data(); }

  /// Shared-pivot range scan: appends every row index whose mapped vector
  /// intersects the Lemma-1 search region (|phi_o[p] - phi_q[p]| <= r for
  /// all p) to `survivors`, in ascending row order.
  void RangeScan(const double* phi_q, double r,
                 std::vector<uint32_t>* survivors) const;

  /// Per-row-pivot range scan; `d_qp` maps pool pivot index -> d(q, p).
  void RangeScanIndirect(const double* d_qp, double r,
                         std::vector<uint32_t>* survivors) const;

  /// Blocked scan with a shrinking radius -- the MkNNQ form.  `radius()`
  /// is read at block entry for the bulk filter, then re-read per
  /// survivor for an exact re-check before `verify(row)` runs.  The
  /// block-entry radius is never smaller than the row-by-row radius the
  /// row-major loop used (the heap only tightens), so the bulk filter
  /// keeps a superset; the per-survivor re-check then prunes with
  /// *exactly* the radius the old loop would have seen at that row --
  /// verification decisions, results, and compdists all match the
  /// row-major scan bit for bit.  The re-check touches only the few
  /// survivors, so the bulk of the scan still runs at column speed.
  template <typename RadiusFn, typename VerifyFn>
  void ScanDynamic(const double* phi_q, RadiusFn&& radius,
                   VerifyFn&& verify) const {
    uint32_t surv[kScanBlock];
    for (size_t base = 0; base < rows_; base += kScanBlock) {
      const size_t count = std::min<size_t>(kScanBlock, rows_ - base);
      const size_t n = FilterBlock(phi_q, radius(), base, count, surv);
      for (size_t j = 0; j < n; ++j) {
        const size_t row = base + surv[j];
        if (RowSurvives(row, phi_q, radius())) verify(row);
      }
    }
  }

  template <typename RadiusFn, typename VerifyFn>
  void ScanDynamicIndirect(const double* d_qp, RadiusFn&& radius,
                           VerifyFn&& verify) const {
    uint32_t surv[kScanBlock];
    for (size_t base = 0; base < rows_; base += kScanBlock) {
      const size_t count = std::min<size_t>(kScanBlock, rows_ - base);
      const size_t n = FilterBlockIndirect(d_qp, radius(), base, count, surv);
      for (size_t j = 0; j < n; ++j) {
        const size_t row = base + surv[j];
        if (RowSurvivesIndirect(row, d_qp, radius())) verify(row);
      }
    }
  }

  size_t memory_bytes() const {
    return size_t(rows_) * width_ *
           (sizeof(double) + (per_row_pivots() ? sizeof(uint32_t) : 0));
  }

 private:
  /// Single-row Lemma-1 test at radius `r` (the per-survivor re-check of
  /// the dynamic scans).
  bool RowSurvives(size_t row, const double* phi_q, double r) const {
    for (uint32_t p = 0; p < width_; ++p) {
      if (std::fabs(cols_[p][row] - phi_q[p]) > r) return false;
    }
    return true;
  }
  bool RowSurvivesIndirect(size_t row, const double* d_qp, double r) const {
    for (uint32_t p = 0; p < width_; ++p) {
      if (std::fabs(cols_[p][row] - d_qp[pidx_cols_[p][row]]) > r) {
        return false;
      }
    }
    return true;
  }

  /// Writes the block-local indices (0-based within [base, base+count))
  /// of rows surviving all pivot slots at radius `r` into `surv`;
  /// returns how many.
  size_t FilterBlock(const double* phi_q, double r, size_t base,
                     size_t count, uint32_t* surv) const;
  size_t FilterBlockIndirect(const double* d_qp, double r, size_t base,
                             size_t count, uint32_t* surv) const;

  uint32_t width_ = 0;
  size_t rows_ = 0;
  std::vector<std::vector<double>> cols_;        // width_ columns of rows_
  std::vector<std::vector<uint32_t>> pidx_cols_; // per-row-pivot mode only
};

}  // namespace pmi

#endif  // PMI_CORE_PIVOT_TABLE_H_
