// Columnar pivot-distance table -- the scan substrate of the flat
// table-based indexes (LAESA, EPT/EPT*, CPT's in-memory half).
//
// The paper's cost model makes the n x l table scan the dominant CPU term
// of the table indexes.  A row-major layout walks l-doubles-strided memory
// and re-decides "pruned?" with a branchy per-row loop; since Lemma-1
// pruning usually triggers on the *first* pivot, almost all of that
// traffic is wasted.  This table stores the mapping column-major and scans
// in blocks of kScanBlock rows.
//
// Storage is chunked into immutable-sharable blocks: each TableBlock
// holds kScanBlock rows of every column (double distances, the derived
// f32 filter mirror, and -- in per-row-pivot mode -- the pool-index
// column), with column `slot` occupying the contiguous sub-slab
// [slot * kScanBlock, (slot + 1) * kScanBlock).  Blocks are held by
// shared_ptr and copied lazily: copying a PivotTable shares every block
// (O(blocks) pointer copies), and a mutation first deep-copies the one
// 256-row block it touches (MutableBlock).  This is the copy-on-write
// substrate of the epoch-versioned concurrency layer: a writer clones an
// index, mutates a handful of blocks, and publishes, while readers keep
// scanning the shared, now-frozen blocks of the previous version.
// Whether this table owns a block is tracked in an explicit owned_
// bitmap (cleared in BOTH tables by a copy) -- never inferred from
// use_count(), whose relaxed load cannot order against a concurrent
// reader's last access.
//
// Query engine v2 adds a derived float32 *filter column* per double
// column (64-byte-aligned, conservatively comparable -- see
// src/core/simd.h) and runs the bulk filter over those with the
// runtime-dispatched SIMD kernels:
//
//   1. pivot slot 0 sweeps one contiguous f32 column slab 4-16 lanes at
//      a time, compacting block-local survivors as it goes;
//   2. each later pivot slot refines the survivor list against its own
//      f32 column (short, gather-indexed loops);
//   3. every float survivor is re-checked against the *double* columns
//      (RowSurvives*) before it escapes the table.
//
// The float filter uses a radius widened by ConservativeFilterRadius, so
// it keeps a strict superset of the exact double survivors; step 3 then
// narrows that superset back to exactly the set the pre-v2 double scan
// produced.  Survivor lists, query results, verification decisions, and
// compdists are therefore bit-identical to the row-major double loop at
// every dispatch level -- while the bulk of the scan touches 4 bytes per
// row instead of 8 and runs 8-16 lanes wide (half the memory traffic,
// the win bench_micro_scan measures).
//
// Two scan forms cover the two table families:
//   - shared-pivot (LAESA/CPT): column p holds d(o, p_p); the query side
//     is phi(q) = <d(q,p_1), ..., d(q,p_l)> computed once per query.
//   - per-row-pivot (EPT/EPT*): column j holds d(o, p_{c_j(o)}) plus a
//     parallel uint32 column of pool indices c_j(o); the query side
//     gathers d(q, pool[c]) from a per-query pool mapping of `pool_size`
//     entries.

#ifndef PMI_CORE_PIVOT_TABLE_H_
#define PMI_CORE_PIVOT_TABLE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/simd.h"

namespace pmi {

/// Column-major n x l pivot-distance table with blocked, SIMD-filtered
/// Lemma-1 scans and block-granular copy-on-write sharing.
class PivotTable {
 public:
  /// Rows per scan block: 256 rows = one 1 KB f32 column slab, small
  /// enough that the pivot-0 slab plus the survivor scratch stay
  /// L1-resident.  Also the copy-on-write sharing granule.
  static constexpr uint32_t kScanBlock = 256;

  /// Queries per block-major scan tile.  The block-major scans carry
  /// ~1.4 KB of mask + survivor scratch per query; an unbounded batch
  /// would grow that working set past the caches the engine exists to
  /// exploit (and thrash every block against it).  Batches larger than
  /// this stream the table once per tile instead -- the amortization
  /// saturates long before 256 queries, so the extra passes cost
  /// nothing measurable while the scratch stays ~350 KB.
  static constexpr size_t kScanBatchTile = 256;

  PivotTable() = default;

  /// Copies share every block; both tables drop ownership, so the first
  /// mutation on either side copies the touched block out.  The blocks
  /// a copy holds are frozen from its point of view -- the contract the
  /// versioned readers scan under.
  PivotTable(const PivotTable& o)
      : width_(o.width_),
        rows_(o.rows_),
        per_row_(o.per_row_),
        blocks_(o.blocks_) {
    owned_.assign(blocks_.size(), 0);
    std::fill(o.owned_.begin(), o.owned_.end(), 0);
  }
  PivotTable& operator=(const PivotTable& o) {
    if (this == &o) return *this;
    width_ = o.width_;
    rows_ = o.rows_;
    per_row_ = o.per_row_;
    blocks_ = o.blocks_;
    owned_.assign(blocks_.size(), 0);
    std::fill(o.owned_.begin(), o.owned_.end(), 0);
    return *this;
  }
  PivotTable(PivotTable&&) = default;
  PivotTable& operator=(PivotTable&&) = default;

  /// Clears the table and sets the number of pivot slots per row.
  /// `per_row_pivots` selects the EPT-style layout with a parallel
  /// pool-index column per slot.
  void Reset(uint32_t width, bool per_row_pivots = false) {
    width_ = width;
    rows_ = 0;
    per_row_ = per_row_pivots;
    blocks_.clear();
    owned_.clear();
  }

  void Reserve(size_t rows) {
    const size_t nb = (rows + kScanBlock - 1) / kScanBlock;
    blocks_.reserve(nb);
    owned_.reserve(nb);
  }

  /// Preallocates `rows` zeroed rows for index-addressed filling via
  /// SetRow -- the parallel-build form of AppendRow.  rows() becomes
  /// `rows` immediately, and every block is owned (so the parallel fill
  /// never copies).
  void ResizeRows(size_t rows) {
    const size_t nb = (rows + kScanBlock - 1) / kScanBlock;
    blocks_.clear();
    blocks_.reserve(nb);
    for (size_t b = 0; b < nb; ++b) blocks_.push_back(NewBlock());
    owned_.assign(nb, 1);
    rows_ = rows;
  }

  uint32_t width() const { return width_; }
  size_t rows() const { return rows_; }
  bool per_row_pivots() const { return per_row_; }

  /// Appends a row in shared-pivot form: phi[p] = d(o, p_p).
  void AppendRow(const double* phi) {
    TableBlock& b = AppendBlockFor(rows_);
    const size_t o = rows_ % kScanBlock;
    for (uint32_t p = 0; p < width_; ++p) {
      b.d[size_t(p) * kScanBlock + o] = phi[p];
      b.f[size_t(p) * kScanBlock + o] = FilterValue(phi[p]);
    }
    ++rows_;
  }

  /// Appends a row in per-row-pivot form: slot j holds distance pdist[j]
  /// to pool pivot pidx[j].
  void AppendRow(const double* pdist, const uint32_t* pidx) {
    TableBlock& b = AppendBlockFor(rows_);
    const size_t o = rows_ % kScanBlock;
    for (uint32_t j = 0; j < width_; ++j) {
      b.d[size_t(j) * kScanBlock + o] = pdist[j];
      b.f[size_t(j) * kScanBlock + o] = FilterValue(pdist[j]);
      b.pidx[size_t(j) * kScanBlock + o] = pidx[j];
    }
    ++rows_;
  }

  /// Writes row `row` (< rows(), preallocated via ResizeRows) in
  /// shared-pivot form.  A row's cells are element-private (including
  /// the derived f32 mirror) and ResizeRows leaves every block owned,
  /// so concurrent SetRow calls on distinct rows are race-free -- the
  /// contract the parallel table fills rely on.
  void SetRow(size_t row, const double* phi) {
    TableBlock& b = MutableBlock(row / kScanBlock);
    const size_t o = row % kScanBlock;
    for (uint32_t p = 0; p < width_; ++p) {
      b.d[size_t(p) * kScanBlock + o] = phi[p];
      b.f[size_t(p) * kScanBlock + o] = FilterValue(phi[p]);
    }
  }

  /// Per-row-pivot form of SetRow.
  void SetRow(size_t row, const double* pdist, const uint32_t* pidx) {
    TableBlock& b = MutableBlock(row / kScanBlock);
    const size_t o = row % kScanBlock;
    for (uint32_t j = 0; j < width_; ++j) {
      b.d[size_t(j) * kScanBlock + o] = pdist[j];
      b.f[size_t(j) * kScanBlock + o] = FilterValue(pdist[j]);
      b.pidx[size_t(j) * kScanBlock + o] = pidx[j];
    }
  }

  /// Removes row `row` by moving the last row into its place (the scan
  /// tables are order-independent, so deletion is O(l) instead of the
  /// O(n*l) erase-and-shift of the row-major layout).  Copies at most
  /// one block; the vacated tail cell is left stale in a possibly-shared
  /// block (never read: scans bound themselves by rows()).
  void RemoveRowSwap(size_t row) {
    const size_t last = rows_ - 1;
    if (row != last) {
      TableBlock& dst = MutableBlock(row / kScanBlock);
      // Source ref taken after MutableBlock: when both rows live in the
      // same block, the copy-out must not leave `src` dangling.
      const TableBlock& src = *blocks_[last / kScanBlock];
      const size_t so = last % kScanBlock;
      const size_t dof = row % kScanBlock;
      for (uint32_t p = 0; p < width_; ++p) {
        dst.d[size_t(p) * kScanBlock + dof] = src.d[size_t(p) * kScanBlock + so];
        dst.f[size_t(p) * kScanBlock + dof] = src.f[size_t(p) * kScanBlock + so];
      }
      if (per_row_) {
        for (uint32_t p = 0; p < width_; ++p) {
          dst.pidx[size_t(p) * kScanBlock + dof] =
              src.pidx[size_t(p) * kScanBlock + so];
        }
      }
    }
    rows_ = last;
    if (rows_ % kScanBlock == 0 && !blocks_.empty()) {
      blocks_.pop_back();  // the trailing block emptied out
      owned_.pop_back();
    }
  }

  /// Cell-level writers (snapshot loading); row must be < rows().  The
  /// f32 filter cell is derived here too, which is what keeps snapshot
  /// loads format-free: the filter columns are never serialized, only
  /// rebuilt.
  void SetCell(size_t row, uint32_t slot, double v) {
    TableBlock& b = MutableBlock(row / kScanBlock);
    const size_t o = row % kScanBlock;
    b.d[size_t(slot) * kScanBlock + o] = v;
    b.f[size_t(slot) * kScanBlock + o] = FilterValue(v);
  }
  void SetPivotIndex(size_t row, uint32_t slot, uint32_t v) {
    MutableBlock(row / kScanBlock).pidx[size_t(slot) * kScanBlock +
                                        row % kScanBlock] = v;
  }

  double distance(size_t row, uint32_t slot) const {
    return blocks_[row / kScanBlock]
        ->d[size_t(slot) * kScanBlock + row % kScanBlock];
  }
  uint32_t pivot_index(size_t row, uint32_t slot) const {
    return blocks_[row / kScanBlock]
        ->pidx[size_t(slot) * kScanBlock + row % kScanBlock];
  }
  /// Derived f32 filter cell (what the bulk filter compares).
  float filter_value(size_t row, uint32_t slot) const {
    return blocks_[row / kScanBlock]
        ->f[size_t(slot) * kScanBlock + row % kScanBlock];
  }

  /// Contiguous per-slot distance slab of the block containing
  /// block-aligned row `base`; valid for min(kScanBlock, rows() - base)
  /// rows.  (Columns are no longer contiguous across blocks -- callers
  /// iterate block by block, which every scan already did.)
  const double* block_column(uint32_t slot, size_t base) const {
    return ColD(*blocks_[base / kScanBlock], slot);
  }
  /// f32 filter form of block_column (64-byte-aligned slab).
  const float* block_filter_column(uint32_t slot, size_t base) const {
    return ColF(*blocks_[base / kScanBlock], slot);
  }

  /// How many storage blocks this table currently shares with `o`
  /// (copy-on-write introspection for tests).
  size_t blocks_shared_with(const PivotTable& o) const {
    size_t shared = 0;
    for (const auto& b : blocks_) {
      for (const auto& ob : o.blocks_) shared += b == ob ? 1 : 0;
    }
    return shared;
  }

  /// Shared-pivot range scan: appends every row index whose mapped vector
  /// intersects the Lemma-1 search region (|phi_o[p] - phi_q[p]| <= r for
  /// all p) to `survivors`, in ascending row order.  Decisions are made
  /// on the double columns (the f32 filter only pre-narrows), so the
  /// output is bit-identical at every SIMD dispatch level.
  void RangeScan(const double* phi_q, double r,
                 std::vector<uint32_t>* survivors) const;

  /// Per-row-pivot range scan; `d_qp` maps pool pivot index -> d(q, p)
  /// and has `pool_size` entries (every stored pivot index is < that).
  void RangeScanIndirect(const double* d_qp, uint32_t pool_size, double r,
                         std::vector<uint32_t>* survivors) const;

  /// Blocked scan with a shrinking radius -- the MkNNQ form.  `radius()`
  /// is read at block entry for the bulk f32 filter, then re-read per
  /// survivor for an exact double re-check before `verify(row)` runs.
  /// The block-entry radius is never smaller than the row-by-row radius
  /// the row-major loop used (the heap only tightens), and the f32
  /// filter keeps a superset of the double test at that radius, so the
  /// bulk filter keeps a superset; the per-survivor re-check then prunes
  /// with *exactly* the radius the old loop would have seen at that row
  /// -- verification decisions, results, and compdists all match the
  /// row-major double scan bit for bit.  The re-check touches only the
  /// few survivors, so the bulk of the scan still runs at f32 column
  /// speed.
  ///
  /// `prefetch(row)` runs for every f32-filter survivor of a block
  /// before any of the block's re-checks/verifications: the batched
  /// verification hook.  Callers use it to pull the survivors' objects
  /// toward cache while the re-check loop runs ahead of the
  /// BoundedDistance calls; since it is only a hint, prefetching the
  /// f32 superset (including rows the re-check later drops) is
  /// harmless.
  template <typename RadiusFn, typename VerifyFn, typename PrefetchFn>
  void ScanDynamic(const double* phi_q, RadiusFn&& radius, VerifyFn&& verify,
                   PrefetchFn&& prefetch) const {
    uint32_t surv[kScanBlock + kSurvWriteSlack];
    FilterQuery fq;
    PrepareFilterQuery(phi_q, &fq);
    for (size_t base = 0; base < rows_; base += kScanBlock) {
      const size_t count = std::min<size_t>(kScanBlock, rows_ - base);
      UpdateFilterRadius(radius(), &fq);
      const size_t n = FilterBlock(fq, base, count, surv);
      for (size_t j = 0; j < n; ++j) prefetch(base + surv[j]);
      for (size_t j = 0; j < n; ++j) {
        const size_t row = base + surv[j];
        if (RowSurvives(row, phi_q, radius())) verify(row);
      }
    }
  }

  template <typename RadiusFn, typename VerifyFn>
  void ScanDynamic(const double* phi_q, RadiusFn&& radius,
                   VerifyFn&& verify) const {
    ScanDynamic(phi_q, radius, verify, [](size_t) {});
  }

  template <typename RadiusFn, typename VerifyFn, typename PrefetchFn>
  void ScanDynamicIndirect(const double* d_qp, uint32_t pool_size,
                           RadiusFn&& radius, VerifyFn&& verify,
                           PrefetchFn&& prefetch) const {
    uint32_t surv[kScanBlock + kSurvWriteSlack];
    FilterQuery fq;
    PrepareFilterQueryIndirect(d_qp, pool_size, &fq);
    for (size_t base = 0; base < rows_; base += kScanBlock) {
      const size_t count = std::min<size_t>(kScanBlock, rows_ - base);
      UpdateFilterRadius(radius(), &fq);
      const size_t n = FilterBlockIndirect(fq, base, count, surv);
      for (size_t j = 0; j < n; ++j) prefetch(base + surv[j]);
      for (size_t j = 0; j < n; ++j) {
        const size_t row = base + surv[j];
        if (RowSurvivesIndirect(row, d_qp, radius())) verify(row);
      }
    }
  }

  template <typename RadiusFn, typename VerifyFn>
  void ScanDynamicIndirect(const double* d_qp, uint32_t pool_size,
                           RadiusFn&& radius, VerifyFn&& verify) const {
    ScanDynamicIndirect(d_qp, pool_size, radius, verify, [](size_t) {});
  }

  /// Block-major batch scan (shared-pivot form), the core of the batch
  /// query engine: for each kScanBlock row block, runs the filter
  /// cascade for ALL `nq` queries while the block's column slabs are
  /// cache-resident -- one slab load amortized over the whole batch
  /// (FilterBlockMulti), instead of re-streaming every column once per
  /// query as a query-major loop does.
  ///
  /// Per query the execution is EXACTLY the ScanDynamic sequence:
  /// radius(qi) is read at block entry for the bulk f32 filter (the
  /// MkNNQ re-entry point -- a shrinking heap radius is picked up block
  /// by block), and each filter survivor is re-checked against the
  /// double columns at the CURRENT radius(qi) before verify(qi, row)
  /// runs.  Queries only interleave at block boundaries and share no
  /// state, so per-query filter decisions, verification calls (count
  /// and order), and results are bit-identical to running the
  /// single-query scans query by query, at every SIMD dispatch level.
  /// MRQ callers pass a constant radius (the re-check then passes every
  /// survivor, matching RangeScan's candidate list); prefetch(qi, row)
  /// runs for every f32 survivor of a (block, query) pair before that
  /// pair's re-checks, mirroring ScanDynamic's batched-verification
  /// hook.  phi(qi) must return a pointer that stays valid for the
  /// whole scan.  Batches beyond kScanBatchTile are tiled: each tile
  /// runs the full block loop on its own bounded scratch (a query's own
  /// block order -- the MkNNQ radius chain -- is untouched by tiling).
  template <typename PhiFn, typename RadiusFn, typename VerifyFn,
            typename PrefetchFn>
  void ScanBlockMajor(size_t nq, PhiFn&& phi, RadiusFn&& radius,
                      VerifyFn&& verify, PrefetchFn&& prefetch) const {
    if (nq == 0 || rows_ == 0) return;
    const size_t sstride = kScanBlock + kSurvWriteSlack;
    const size_t tile = std::min(nq, kScanBatchTile);
    std::vector<FilterQuery> fqs(tile);
    std::vector<const double*> phis(tile);
    std::vector<uint8_t> keep(tile * size_t(kScanBlock));
    std::vector<uint32_t> surv(tile * sstride);
    std::vector<size_t> counts(tile);
    for (size_t t0 = 0; t0 < nq; t0 += tile) {
      const size_t m = std::min(tile, nq - t0);
      for (size_t j = 0; j < m; ++j) {
        phis[j] = phi(t0 + j);
        PrepareFilterQuery(phis[j], &fqs[j]);
      }
      for (size_t base = 0; base < rows_; base += kScanBlock) {
        const size_t count = std::min<size_t>(kScanBlock, rows_ - base);
        for (size_t j = 0; j < m; ++j) {
          UpdateFilterRadius(radius(t0 + j), &fqs[j]);
        }
        FilterBlockMulti(fqs.data(), m, base, count, keep.data(),
                         surv.data(), counts.data());
        for (size_t j = 0; j < m; ++j) {
          const size_t qi = t0 + j;
          const uint32_t* s = surv.data() + j * sstride;
          for (size_t i = 0; i < counts[j]; ++i) prefetch(qi, base + s[i]);
          for (size_t i = 0; i < counts[j]; ++i) {
            const size_t row = base + s[i];
            if (RowSurvives(row, phis[j], radius(qi))) verify(qi, row);
          }
        }
      }
    }
  }

  /// Per-row-pivot form of ScanBlockMajor; d_qp(qi) maps pool pivot
  /// index -> d(q_qi, p) with `pool_size` entries (one pool shared by
  /// the batch, per-query distances).
  template <typename DqpFn, typename RadiusFn, typename VerifyFn,
            typename PrefetchFn>
  void ScanBlockMajorIndirect(size_t nq, uint32_t pool_size, DqpFn&& d_qp,
                              RadiusFn&& radius, VerifyFn&& verify,
                              PrefetchFn&& prefetch) const {
    if (nq == 0 || rows_ == 0) return;
    const size_t sstride = kScanBlock + kSurvWriteSlack;
    const size_t tile = std::min(nq, kScanBatchTile);
    std::vector<FilterQuery> fqs(tile);
    std::vector<const double*> dqps(tile);
    std::vector<uint8_t> keep(tile * size_t(kScanBlock));
    std::vector<uint32_t> surv(tile * sstride);
    std::vector<size_t> counts(tile);
    for (size_t t0 = 0; t0 < nq; t0 += tile) {
      const size_t m = std::min(tile, nq - t0);
      for (size_t j = 0; j < m; ++j) {
        dqps[j] = d_qp(t0 + j);
        PrepareFilterQueryIndirect(dqps[j], pool_size, &fqs[j]);
      }
      for (size_t base = 0; base < rows_; base += kScanBlock) {
        const size_t count = std::min<size_t>(kScanBlock, rows_ - base);
        for (size_t j = 0; j < m; ++j) {
          UpdateFilterRadius(radius(t0 + j), &fqs[j]);
        }
        FilterBlockIndirectMulti(fqs.data(), m, base, count, keep.data(),
                                 surv.data(), counts.data());
        for (size_t j = 0; j < m; ++j) {
          const size_t qi = t0 + j;
          const uint32_t* s = surv.data() + j * sstride;
          for (size_t i = 0; i < counts[j]; ++i) prefetch(qi, base + s[i]);
          for (size_t i = 0; i < counts[j]; ++i) {
            const size_t row = base + s[i];
            if (RowSurvivesIndirect(row, dqps[j], radius(qi))) {
              verify(qi, row);
            }
          }
        }
      }
    }
  }

  /// Logical footprint of the stored rows (block padding and sharing
  /// excluded: this is the per-table cost model the paper's memory
  /// comparisons use).
  size_t memory_bytes() const {
    return size_t(rows_) * width_ *
           (sizeof(double) + sizeof(float) +
            (per_row_pivots() ? sizeof(uint32_t) : 0));
  }

 private:
  /// One kScanBlock-row chunk of every column.  Arrays are full capacity
  /// (width * kScanBlock) regardless of how many rows are in use, so a
  /// block's slab layout never changes and SIMD lane over-reads within
  /// the slab stay in bounds.  Immutable once shared between tables.
  struct TableBlock {
    std::vector<double, AlignedAllocator<double, 64>> d;
    FilterColumn f;
    std::vector<uint32_t> pidx;  // per-row-pivot mode only (else empty)
  };

  static const double* ColD(const TableBlock& b, uint32_t slot) {
    return b.d.data() + size_t(slot) * kScanBlock;
  }
  static const float* ColF(const TableBlock& b, uint32_t slot) {
    return b.f.data() + size_t(slot) * kScanBlock;
  }
  static const uint32_t* ColI(const TableBlock& b, uint32_t slot) {
    return b.pidx.data() + size_t(slot) * kScanBlock;
  }

  std::shared_ptr<TableBlock> NewBlock() const {
    auto b = std::make_shared<TableBlock>();
    b->d.assign(size_t(width_) * kScanBlock, 0.0);
    b->f.assign(size_t(width_) * kScanBlock, 0.0f);
    if (per_row_) b->pidx.assign(size_t(width_) * kScanBlock, 0);
    return b;
  }

  /// Write access to block `bi`: deep-copies it first when it is shared
  /// with another table.  Reading owned_ is the only cross-block check,
  /// so concurrent writers to distinct rows of an owned block stay
  /// race-free (the parallel-build contract).
  TableBlock& MutableBlock(size_t bi) {
    if (!owned_[bi]) {
      blocks_[bi] = std::make_shared<TableBlock>(*blocks_[bi]);
      owned_[bi] = 1;
    }
    return *blocks_[bi];
  }

  /// The block AppendRow writes row `row` into, growing storage when the
  /// row starts a new block.
  TableBlock& AppendBlockFor(size_t row) {
    if (row % kScanBlock == 0 && row / kScanBlock == blocks_.size()) {
      blocks_.push_back(NewBlock());
      owned_.push_back(1);
      return *blocks_.back();
    }
    return MutableBlock(row / kScanBlock);
  }

  /// Per-query float-filter state: f32 casts of the query-side values
  /// plus the two-sided (wide/narrow) radii of the exact f32 filter.
  /// Prepared once per scan; the radii are refreshed per block when the
  /// dynamic radius moves.
  struct FilterQuery {
    std::vector<float> qf;   // shared: per-slot phi_q; indirect: d_qp pool
    std::vector<float> rw;   // wide radii (shared per-slot; indirect [0])
    std::vector<float> rn;   // narrow radii, same shape
    const double* qd = nullptr;     // phi_q (shared) or d_qp (indirect)
    double qmax_abs = 0;            // indirect form only: max |d_qp|
    double r_cached = std::numeric_limits<double>::quiet_NaN();
    bool indirect = false;
    const SimdOps* ops = nullptr;   // dispatch table, fetched once per scan
  };

  void PrepareFilterQuery(const double* phi_q, FilterQuery* fq) const;
  void PrepareFilterQueryIndirect(const double* d_qp, uint32_t pool_size,
                                  FilterQuery* fq) const;
  /// Recomputes the two-sided radii for radius `r` (no-op when
  /// unchanged).
  static void UpdateFilterRadius(double r, FilterQuery* fq);

  /// Single-row Lemma-1 test at radius `r` on the exact double columns
  /// (the per-survivor re-check of every scan).
  bool RowSurvives(size_t row, const double* phi_q, double r) const {
    const TableBlock& b = *blocks_[row / kScanBlock];
    const size_t o = row % kScanBlock;
    for (uint32_t p = 0; p < width_; ++p) {
      if (std::fabs(b.d[size_t(p) * kScanBlock + o] - phi_q[p]) > r) {
        return false;
      }
    }
    return true;
  }
  bool RowSurvivesIndirect(size_t row, const double* d_qp, double r) const {
    const TableBlock& b = *blocks_[row / kScanBlock];
    const size_t o = row % kScanBlock;
    for (uint32_t p = 0; p < width_; ++p) {
      const size_t at = size_t(p) * kScanBlock + o;
      if (std::fabs(b.d[at] - d_qp[b.pidx[at]]) > r) return false;
    }
    return true;
  }

  /// Exact block filter: writes the block-local indices (0-based within
  /// [base, base+count)) of the rows surviving all pivot slots at the
  /// prepared radius into `surv` (ascending); returns how many.  The
  /// decisions equal the double predicate row for row -- the f32
  /// columns are only the fast path (see src/core/simd.h) -- so the
  /// output is bit-identical to the row-major double loop at every
  /// dispatch level.  `surv` needs kSurvWriteSlack extra capacity past
  /// `count`.
  size_t FilterBlock(const FilterQuery& fq, size_t base, size_t count,
                     uint32_t* surv) const;
  size_t FilterBlockIndirect(const FilterQuery& fq, size_t base,
                             size_t count, uint32_t* surv) const;

  /// The cascade stages after the pivot-0 sweep -- dense mask-ANDs while
  /// profitable, compaction, then f64 refines over the sparse survivor
  /// list.  ONE implementation shared by the single-query FilterBlock*
  /// and the per-query continuations of FilterBlockMulti*, so the
  /// block-major == query-major bit-identity holds by construction, not
  /// by parallel maintenance.  `n` is the pivot-0 survivor count over
  /// `keep`; returns the final count with survivors in `surv`.
  size_t ContinueCascade(const FilterQuery& fq, size_t base, size_t count,
                         size_t n, uint8_t* keep, uint32_t* surv) const;
  size_t ContinueCascadeIndirect(const FilterQuery& fq, size_t base,
                                 size_t count, size_t n, uint8_t* keep,
                                 uint32_t* surv) const;

  /// Batch forms of FilterBlock: one block, `nq` prepared queries.  The
  /// pivot-0 sweep runs through the multi-query kernels in tiles of
  /// kMultiQueryTile (one slab load per row chunk for the whole tile);
  /// each query's cascade then continues exactly as in FilterBlock, so
  /// query qi's survivor row (surv + qi * (kScanBlock + kSurvWriteSlack),
  /// count in counts[qi]) is identical to what FilterBlock would return
  /// for that query alone.  `keep` is nq * kScanBlock scratch bytes.
  void FilterBlockMulti(const FilterQuery* fqs, size_t nq, size_t base,
                        size_t count, uint8_t* keep, uint32_t* surv,
                        size_t* counts) const;
  void FilterBlockIndirectMulti(const FilterQuery* fqs, size_t nq,
                                size_t base, size_t count, uint8_t* keep,
                                uint32_t* surv, size_t* counts) const;

  uint32_t width_ = 0;
  size_t rows_ = 0;
  bool per_row_ = false;
  /// ceil(rows_ / kScanBlock) blocks; block b holds rows
  /// [b * kScanBlock, min((b + 1) * kScanBlock, rows_)).
  std::vector<std::shared_ptr<TableBlock>> blocks_;
  /// owned_[b] == 1 iff this table is the only holder allowed to mutate
  /// blocks_[b] in place.  Mutable because the copy constructor must
  /// drop the SOURCE's ownership too (both sides now share).
  mutable std::vector<uint8_t> owned_;
};

}  // namespace pmi

#endif  // PMI_CORE_PIVOT_TABLE_H_
