// Bounded result heap for MkNNQ processing (Definition 2).
//
// Every MkNNQ implementation follows the paper's second strategy
// (Section 2.1): start with radius = infinity and tighten it as verified
// objects arrive.  KnnHeap encapsulates that contract.

#ifndef PMI_CORE_KNN_HEAP_H_
#define PMI_CORE_KNN_HEAP_H_

#include <algorithm>
#include <limits>
#include <vector>

#include "src/core/object.h"

namespace pmi {

/// One kNN result entry.
struct Neighbor {
  ObjectId id = kInvalidObjectId;
  double dist = 0;

  bool operator<(const Neighbor& o) const {
    return dist < o.dist || (dist == o.dist && id < o.id);
  }
};

/// Max-heap keeping the k nearest objects seen so far.
class KnnHeap {
 public:
  explicit KnnHeap(size_t k) : k_(k) {}

  /// Current pruning radius: distance of the kth neighbor, or +inf while
  /// fewer than k objects have been collected.  k = 0 yields -inf so
  /// every candidate prunes immediately.
  double radius() const {
    if (k_ == 0) return -std::numeric_limits<double>::infinity();
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.front().dist;
  }

  bool full() const { return heap_.size() >= k_; }

  /// Offers (id, dist); keeps it only if it improves the current k-set
  /// under the (dist, id) total order.  Replacing on an equal-distance,
  /// smaller-id tie makes the final k-set the minimum k of that order
  /// regardless of candidate visit order -- so every index (and every
  /// shard of a partitioned table) produces bit-identical results.  The
  /// pruning radius() never changes on a tie replacement, so distance
  /// computation counts are unaffected.
  void Push(ObjectId id, double dist) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back({id, dist});
      std::push_heap(heap_.begin(), heap_.end());
    } else if (Neighbor{id, dist} < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = {id, dist};
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  /// Moves the results, sorted ascending by distance, into `out`.
  void TakeSorted(std::vector<Neighbor>* out) {
    std::sort_heap(heap_.begin(), heap_.end());
    *out = std::move(heap_);
    heap_.clear();
  }

 private:
  size_t k_;
  std::vector<Neighbor> heap_;  // max-heap on dist
};

}  // namespace pmi

#endif  // PMI_CORE_KNN_HEAP_H_
