#include "src/core/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PMI_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#define PMI_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace pmi {
namespace {

constexpr float kFltMax = std::numeric_limits<float>::max();

// ---------------------------------------------------------------------------
// Ambiguity resolution -- shared by every level.
//
// The mask kernels decide each row through the two-sided f32 test:
// certified inside the narrow radius, dead outside the wide one.  The
// sliver in between (a one-in-millions event on real distance data; the
// hand-built boundary tests are what exercise it) is settled here
// against the double column, after which keep[] holds the exact
// double-predicate decision for every row.  The main loops stay
// branch-free and only raise a flag; this rare second pass re-derives
// certification scalar-wise, which matches the vector lanes exactly
// because both evaluate the same IEEE float expressions.
// ---------------------------------------------------------------------------

size_t ResolveAmbiguous(const ExactSlot& s, size_t count, uint8_t* keep) {
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    if (keep[i]) {
      const float x = s.colf[i];
      const float d = std::fabs(x - s.qf);
      if (!(d <= s.rn && std::fabs(x) < kFltMax)) {
        keep[i] = std::fabs(s.cold[i] - s.qd) <= s.rd;
      }
      n += keep[i];
    }
  }
  return n;
}

size_t ResolveAmbiguousGather(const ExactSlotGather& s, size_t count,
                              uint8_t* keep) {
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    if (keep[i]) {
      const float x = s.colf[i];
      const float d = std::fabs(x - s.qf_pool[s.idx[i]]);
      if (!(d <= s.rn && std::fabs(x) < kFltMax)) {
        keep[i] = std::fabs(s.cold[i] - s.qd_pool[s.idx[i]]) <= s.rd;
      }
      n += keep[i];
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// Scalar kernels.  Without hand-written lanes the two-sided f32 trick
// buys nothing -- three predicates per row cost more than one double
// compare -- so the scalar level works the double columns directly: the
// exact predicate in one branch-free compare per cell, the same cascade
// shape (and cost) as the pre-SIMD engine.  The f32 columns are the
// vector levels' fast path only.  Results are identical by definition:
// every level's mask equals the double predicate row for row.
// ---------------------------------------------------------------------------

size_t MaskSweepScalar(const ExactSlot& s, size_t count, uint8_t* keep) {
  const double* __restrict col = s.cold;
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint8_t k = std::fabs(col[i] - s.qd) <= s.rd;
    keep[i] = k;
    n += k;
  }
  return n;
}

size_t MaskSweepGatherScalar(const ExactSlotGather& s, size_t count,
                             uint8_t* keep) {
  const double* __restrict col = s.cold;
  const uint32_t* __restrict idx = s.idx;
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint8_t k = std::fabs(col[i] - s.qd_pool[idx[i]]) <= s.rd;
    keep[i] = k;
    n += k;
  }
  return n;
}

size_t MaskAndScalar(const ExactSlot& s, size_t count, uint8_t* keep) {
  const double* __restrict col = s.cold;
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint8_t k =
        keep[i] & static_cast<uint8_t>(std::fabs(col[i] - s.qd) <= s.rd);
    keep[i] = k;
    n += k;
  }
  return n;
}

size_t MaskAndGatherScalar(const ExactSlotGather& s, size_t count,
                           uint8_t* keep) {
  const double* __restrict col = s.cold;
  const uint32_t* __restrict idx = s.idx;
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint8_t k =
        keep[i] &
        static_cast<uint8_t>(std::fabs(col[i] - s.qd_pool[idx[i]]) <= s.rd);
    keep[i] = k;
    n += k;
  }
  return n;
}

size_t CompactScalar(const uint8_t* __restrict keep, size_t count,
                     uint32_t* __restrict surv) {
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    surv[n] = static_cast<uint32_t>(i);
    n += keep[i];
  }
  return n;
}

size_t RefineF64Scalar(const double* __restrict col, double q, double r,
                       uint32_t* __restrict surv, size_t n) {
  size_t m = 0;
  for (size_t j = 0; j < n; ++j) {
    const uint32_t i = surv[j];
    surv[m] = i;
    m += std::fabs(col[i] - q) <= r;
  }
  return m;
}

size_t RefineF64GatherScalar(const double* __restrict col,
                             const uint32_t* __restrict idx,
                             const double* __restrict q_of_pivot, double r,
                             uint32_t* __restrict surv, size_t n) {
  size_t m = 0;
  for (size_t j = 0; j < n; ++j) {
    const uint32_t i = surv[j];
    surv[m] = i;
    m += std::fabs(col[i] - q_of_pivot[idx[i]]) <= r;
  }
  return m;
}

// Scalar multi-query sweeps: without vector registers there is nothing
// to share per load (the block's double column is L1-resident either
// way), so the multi form is simply the single-query sweep per tile
// query -- same predicate, same masks, minimal code.
void MaskSweepMultiScalar(const ExactSlot* slots, size_t nq, size_t count,
                          uint8_t* keep, size_t keep_stride, size_t* counts) {
  for (size_t qi = 0; qi < nq; ++qi) {
    counts[qi] = MaskSweepScalar(slots[qi], count, keep + qi * keep_stride);
  }
}

void MaskSweepGatherMultiScalar(const ExactSlotGather* slots, size_t nq,
                                size_t count, uint8_t* keep,
                                size_t keep_stride, size_t* counts) {
  for (size_t qi = 0; qi < nq; ++qi) {
    counts[qi] =
        MaskSweepGatherScalar(slots[qi], count, keep + qi * keep_stride);
  }
}

#if PMI_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2: 8 float lanes.  Compare -> 8-bit movemask -> byte-table
// expansion into 0/1 mask bytes (one uint64 store per 8 rows); the AND
// form is a plain word AND.  Since each mask byte is 0 or 1, popcount of
// the packed word counts surviving rows directly.  Ambiguity (wide pass
// without a narrow certificate) just accumulates into a flag word; the
// shared scalar resolver runs afterward in the ~never case it is set.
// ---------------------------------------------------------------------------

struct ByteExpandTable {
  alignas(64) uint64_t v[256];
};

const ByteExpandTable kByteExpand = [] {
  ByteExpandTable t{};
  for (int m = 0; m < 256; ++m) {
    uint64_t packed = 0;
    for (int b = 0; b < 8; ++b) {
      if (m & (1 << b)) packed |= uint64_t(1) << (8 * b);
    }
    t.v[m] = packed;
  }
  return t;
}();

__attribute__((target("avx2,fma"))) inline __m256 Abs256(__m256 v) {
  return _mm256_and_ps(v,
                       _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff)));
}

// Wide/narrow lane masks for 8 contiguous cells starting at col + i.
__attribute__((target("avx2,fma"))) inline void Masks8(
    __m256 x, __m256 vq, __m256 vrw, __m256 vrn, __m256 vmax, unsigned* mw,
    unsigned* mc) {
  const __m256 d = Abs256(_mm256_sub_ps(x, vq));
  *mw = static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_cmp_ps(d, vrw, _CMP_LE_OQ)));
  const __m256 cert = _mm256_and_ps(
      _mm256_cmp_ps(d, vrn, _CMP_LE_OQ),
      _mm256_cmp_ps(Abs256(x), vmax, _CMP_LT_OQ));
  *mc = static_cast<unsigned>(_mm256_movemask_ps(cert));
}

__attribute__((target("avx2,fma"))) size_t MaskSweepAvx2(const ExactSlot& s,
                                                         size_t count,
                                                         uint8_t* keep) {
  const __m256 vq = _mm256_set1_ps(s.qf);
  const __m256 vrw = _mm256_set1_ps(s.rw);
  const __m256 vrn = _mm256_set1_ps(s.rn);
  const __m256 vmax = _mm256_set1_ps(kFltMax);
  size_t n = 0;
  unsigned amb = 0;
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    unsigned mw, mc;
    Masks8(_mm256_loadu_ps(s.colf + i), vq, vrw, vrn, vmax, &mw, &mc);
    const uint64_t bytes = kByteExpand.v[mw];
    std::memcpy(keep + i, &bytes, 8);
    n += static_cast<size_t>(__builtin_popcount(mw));
    amb |= mw & ~mc;
  }
  for (; i < count; ++i) {
    const float x = s.colf[i];
    const float d = std::fabs(x - s.qf);
    const uint8_t kw = d <= s.rw;
    const uint8_t kc = (d <= s.rn) & (std::fabs(x) < kFltMax);
    keep[i] = kw;
    n += kw;
    amb |= kw & (kc ^ 1);
  }
  if (amb != 0) n = ResolveAmbiguous(s, count, keep);
  return n;
}

__attribute__((target("avx2,fma"))) size_t MaskSweepGatherAvx2(
    const ExactSlotGather& s, size_t count, uint8_t* keep) {
  const __m256 vrw = _mm256_set1_ps(s.rw);
  const __m256 vrn = _mm256_set1_ps(s.rn);
  const __m256 vmax = _mm256_set1_ps(kFltMax);
  size_t n = 0;
  unsigned amb = 0;
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s.idx + i));
    const __m256 vq = _mm256_i32gather_ps(s.qf_pool, vidx, 4);
    unsigned mw, mc;
    Masks8(_mm256_loadu_ps(s.colf + i), vq, vrw, vrn, vmax, &mw, &mc);
    const uint64_t bytes = kByteExpand.v[mw];
    std::memcpy(keep + i, &bytes, 8);
    n += static_cast<size_t>(__builtin_popcount(mw));
    amb |= mw & ~mc;
  }
  for (; i < count; ++i) {
    const float x = s.colf[i];
    const float d = std::fabs(x - s.qf_pool[s.idx[i]]);
    const uint8_t kw = d <= s.rw;
    const uint8_t kc = (d <= s.rn) & (std::fabs(x) < kFltMax);
    keep[i] = kw;
    n += kw;
    amb |= kw & (kc ^ 1);
  }
  if (amb != 0) n = ResolveAmbiguousGather(s, count, keep);
  return n;
}

__attribute__((target("avx2,fma"))) size_t MaskAndAvx2(const ExactSlot& s,
                                                       size_t count,
                                                       uint8_t* keep) {
  const __m256 vq = _mm256_set1_ps(s.qf);
  const __m256 vrw = _mm256_set1_ps(s.rw);
  const __m256 vrn = _mm256_set1_ps(s.rn);
  const __m256 vmax = _mm256_set1_ps(kFltMax);
  size_t n = 0;
  unsigned amb = 0;
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    unsigned mw, mc;
    Masks8(_mm256_loadu_ps(s.colf + i), vq, vrw, vrn, vmax, &mw, &mc);
    uint64_t cur;
    std::memcpy(&cur, keep + i, 8);
    cur &= kByteExpand.v[mw];
    std::memcpy(keep + i, &cur, 8);
    n += static_cast<size_t>(__builtin_popcountll(cur));
    // Over-approximate: flag any wide-but-uncertified lane, alive or
    // not.  The resolver only rewrites live rows, so a dead-row flag
    // costs one rare extra pass and never changes the result.
    amb |= mw & ~mc;
  }
  for (; i < count; ++i) {
    const float x = s.colf[i];
    const float d = std::fabs(x - s.qf);
    const uint8_t kw = keep[i] & static_cast<uint8_t>(d <= s.rw);
    const uint8_t kc = (d <= s.rn) & (std::fabs(x) < kFltMax);
    keep[i] = kw;
    n += kw;
    amb |= kw & (kc ^ 1);
  }
  if (amb != 0) n = ResolveAmbiguous(s, count, keep);
  return n;
}

__attribute__((target("avx2,fma"))) size_t MaskAndGatherAvx2(
    const ExactSlotGather& s, size_t count, uint8_t* keep) {
  const __m256 vrw = _mm256_set1_ps(s.rw);
  const __m256 vrn = _mm256_set1_ps(s.rn);
  const __m256 vmax = _mm256_set1_ps(kFltMax);
  size_t n = 0;
  unsigned amb = 0;
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s.idx + i));
    const __m256 vq = _mm256_i32gather_ps(s.qf_pool, vidx, 4);
    unsigned mw, mc;
    Masks8(_mm256_loadu_ps(s.colf + i), vq, vrw, vrn, vmax, &mw, &mc);
    uint64_t cur;
    std::memcpy(&cur, keep + i, 8);
    cur &= kByteExpand.v[mw];
    std::memcpy(keep + i, &cur, 8);
    n += static_cast<size_t>(__builtin_popcountll(cur));
    amb |= mw & ~mc;  // over-approximation, see MaskAndAvx2
  }
  for (; i < count; ++i) {
    const float x = s.colf[i];
    const float d = std::fabs(x - s.qf_pool[s.idx[i]]);
    const uint8_t kw = keep[i] & static_cast<uint8_t>(d <= s.rw);
    const uint8_t kc = (d <= s.rn) & (std::fabs(x) < kFltMax);
    keep[i] = kw;
    n += kw;
    amb |= kw & (kc ^ 1);
  }
  if (amb != 0) n = ResolveAmbiguousGather(s, count, keep);
  return n;
}

// Multi-query sweep: one slab load per 8 rows serves every query of a
// register-resident group -- the register-level form of the block-major
// amortization.  The group size G is a compile-time constant chosen so
// the 3 broadcast registers per query (query value, wide radius, narrow
// radius) all stay in ymm registers across the row loop; a dynamic
// query count would spill them to the stack and the reloads would cost
// more than the shared column load saves.  Groups walk the same
// L1-resident slab, so re-streaming it tile/G times is nearly free.
// Mask bytes and counts per query match MaskSweepAvx2 exactly (same
// lane expressions, same resolver).
template <size_t G>
__attribute__((target("avx2,fma"))) void MaskSweepMultiAvx2Group(
    const ExactSlot* slots, size_t count, uint8_t* keep, size_t keep_stride,
    size_t* counts) {
  __m256 vq[G], vrw[G], vrn[G];
  unsigned amb[G];
  size_t cnt[G];
  for (size_t j = 0; j < G; ++j) {
    vq[j] = _mm256_set1_ps(slots[j].qf);
    vrw[j] = _mm256_set1_ps(slots[j].rw);
    vrn[j] = _mm256_set1_ps(slots[j].rn);
    amb[j] = 0;
    cnt[j] = 0;
  }
  const __m256 vmax = _mm256_set1_ps(kFltMax);
  const float* colf = slots[0].colf;
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256 x = _mm256_loadu_ps(colf + i);
    for (size_t j = 0; j < G; ++j) {
      unsigned mw, mc;
      Masks8(x, vq[j], vrw[j], vrn[j], vmax, &mw, &mc);
      const uint64_t bytes = kByteExpand.v[mw];
      std::memcpy(keep + j * keep_stride + i, &bytes, 8);
      cnt[j] += static_cast<size_t>(__builtin_popcount(mw));
      amb[j] |= mw & ~mc;
    }
  }
  for (; i < count; ++i) {
    const float x = colf[i];
    for (size_t j = 0; j < G; ++j) {
      const float d = std::fabs(x - slots[j].qf);
      const uint8_t kw = d <= slots[j].rw;
      const uint8_t kc = (d <= slots[j].rn) & (std::fabs(x) < kFltMax);
      keep[j * keep_stride + i] = kw;
      cnt[j] += kw;
      amb[j] |= kw & (kc ^ 1);
    }
  }
  for (size_t j = 0; j < G; ++j) {
    counts[j] = amb[j] != 0
                    ? ResolveAmbiguous(slots[j], count, keep + j * keep_stride)
                    : cnt[j];
  }
}

void MaskSweepMultiAvx2(const ExactSlot* slots, size_t nq, size_t count,
                        uint8_t* keep, size_t keep_stride, size_t* counts) {
  size_t t = 0;
  for (; t + 4 <= nq; t += 4) {
    MaskSweepMultiAvx2Group<4>(slots + t, count, keep + t * keep_stride,
                               keep_stride, counts + t);
  }
  for (; t < nq; ++t) {
    counts[t] = MaskSweepAvx2(slots[t], count, keep + t * keep_stride);
  }
}

// Per-row-pivot multi sweep: the cell and pool-index loads are shared
// across the group; only the per-query pool gather differs.
template <size_t G>
__attribute__((target("avx2,fma"))) void MaskSweepGatherMultiAvx2Group(
    const ExactSlotGather* slots, size_t count, uint8_t* keep,
    size_t keep_stride, size_t* counts) {
  __m256 vrw[G], vrn[G];
  unsigned amb[G];
  size_t cnt[G];
  for (size_t j = 0; j < G; ++j) {
    vrw[j] = _mm256_set1_ps(slots[j].rw);
    vrn[j] = _mm256_set1_ps(slots[j].rn);
    amb[j] = 0;
    cnt[j] = 0;
  }
  const __m256 vmax = _mm256_set1_ps(kFltMax);
  const float* colf = slots[0].colf;
  const uint32_t* idx = slots[0].idx;
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256 x = _mm256_loadu_ps(colf + i);
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    for (size_t j = 0; j < G; ++j) {
      const __m256 vq = _mm256_i32gather_ps(slots[j].qf_pool, vidx, 4);
      unsigned mw, mc;
      Masks8(x, vq, vrw[j], vrn[j], vmax, &mw, &mc);
      const uint64_t bytes = kByteExpand.v[mw];
      std::memcpy(keep + j * keep_stride + i, &bytes, 8);
      cnt[j] += static_cast<size_t>(__builtin_popcount(mw));
      amb[j] |= mw & ~mc;
    }
  }
  for (; i < count; ++i) {
    const float x = colf[i];
    for (size_t j = 0; j < G; ++j) {
      const float d = std::fabs(x - slots[j].qf_pool[idx[i]]);
      const uint8_t kw = d <= slots[j].rw;
      const uint8_t kc = (d <= slots[j].rn) & (std::fabs(x) < kFltMax);
      keep[j * keep_stride + i] = kw;
      cnt[j] += kw;
      amb[j] |= kw & (kc ^ 1);
    }
  }
  for (size_t j = 0; j < G; ++j) {
    counts[j] = amb[j] != 0 ? ResolveAmbiguousGather(slots[j], count,
                                                     keep + j * keep_stride)
                            : cnt[j];
  }
}

void MaskSweepGatherMultiAvx2(const ExactSlotGather* slots, size_t nq,
                              size_t count, uint8_t* keep,
                              size_t keep_stride, size_t* counts) {
  size_t t = 0;
  for (; t + 4 <= nq; t += 4) {
    MaskSweepGatherMultiAvx2Group<4>(slots + t, count, keep + t * keep_stride,
                                     keep_stride, counts + t);
  }
  for (; t < nq; ++t) {
    counts[t] = MaskSweepGatherAvx2(slots[t], count, keep + t * keep_stride);
  }
}

// ---------------------------------------------------------------------------
// AVX2 compress-store emulation.  AVX2 has no compress instruction, so
// compaction and the refine kernels previously fell back to scalar; a
// 256-entry shuffle LUT closes most of that gap: each 8-bit survivor
// mask maps to the packed lane ids of its set bits, which
// vpermd (permutevar8x32) applies to left-pack 8 dword indices in two
// instructions.  Stores always write a full 8-lane register and advance
// by popcount, exactly like the AVX-512 compress-stores -- callers
// already guarantee kSurvWriteSlack lanes of slack past the survivor
// count.
// ---------------------------------------------------------------------------

struct CompressLutTable {
  alignas(64) uint64_t v[256];
};

const CompressLutTable kCompressLut = [] {
  CompressLutTable t{};
  for (int m = 0; m < 256; ++m) {
    uint64_t packed = 0;
    int pos = 0;
    for (int b = 0; b < 8; ++b) {
      if (m & (1 << b)) packed |= uint64_t(b) << (8 * pos++);
    }
    t.v[m] = packed;
  }
  return t;
}();

// Left-packs the 8 dwords of `ids` selected by mask `m` (LSB = lane 0)
// to the front of the returned register.
__attribute__((target("avx2"))) inline __m256i Compress8(__m256i ids,
                                                         unsigned m) {
  const __m256i perm =
      _mm256_cvtepu8_epi32(_mm_cvtsi64_si128(int64_t(kCompressLut.v[m])));
  return _mm256_permutevar8x32_epi32(ids, perm);
}

__attribute__((target("avx2"))) size_t CompactAvx2(const uint8_t* keep,
                                                   size_t count,
                                                   uint32_t* surv) {
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m128i zero = _mm_setzero_si128();
  size_t n = 0, i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keep + i));
    const unsigned m16 = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpgt_epi8(b, zero)));
    const unsigned lo = m16 & 0xff, hi = m16 >> 8;
    if (lo != 0) {
      const __m256i ids =
          _mm256_add_epi32(iota, _mm256_set1_epi32(static_cast<int>(i)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(surv + n),
                          Compress8(ids, lo));
      n += static_cast<size_t>(__builtin_popcount(lo));
    }
    if (hi != 0) {
      const __m256i ids =
          _mm256_add_epi32(iota, _mm256_set1_epi32(static_cast<int>(i + 8)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(surv + n),
                          Compress8(ids, hi));
      n += static_cast<size_t>(__builtin_popcount(hi));
    }
  }
  for (; i < count; ++i) {
    surv[n] = static_cast<uint32_t>(i);
    n += keep[i];
  }
  return n;
}

__attribute__((target("avx2"))) inline __m256d AbsPd(__m256d v) {
  return _mm256_and_pd(
      v, _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL)));
}

// Full-mask gathers with a zeroed source register: identical lanes to
// the plain gather intrinsics, without the undefined source operand
// that trips -Wmaybe-uninitialized.
__attribute__((target("avx2"))) inline __m256d GatherPd(const double* base,
                                                        __m128i idx) {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), base, idx,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

__attribute__((target("avx2"))) inline __m256i GatherEpi32(
    const uint32_t* base, __m256i idx) {
  return _mm256_mask_i32gather_epi32(_mm256_setzero_si256(),
                                     reinterpret_cast<const int*>(base), idx,
                                     _mm256_set1_epi32(-1), 4);
}

// In-place survivor refinement against a double column: two 4-double
// gathers per 8 survivors, one LUT compress per verdict byte.  The
// write cursor never passes the read cursor (m <= j), and each store's
// source lanes were loaded before the store, so in-place narrowing is
// safe exactly as in the AVX-512 kernels.
__attribute__((target("avx2"))) size_t RefineF64Avx2(const double* col,
                                                     double q, double r,
                                                     uint32_t* surv,
                                                     size_t n) {
  const __m256d vq = _mm256_set1_pd(q);
  const __m256d vr = _mm256_set1_pd(r);
  size_t m = 0, j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i sv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(surv + j));
    const __m128i sv_lo = _mm256_castsi256_si128(sv);
    const __m128i sv_hi = _mm256_extracti128_si256(sv, 1);
    const __m256d v0 = GatherPd(col, sv_lo);
    const __m256d v1 = GatherPd(col, sv_hi);
    const unsigned k0 = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_cmp_pd(AbsPd(_mm256_sub_pd(v0, vq)), vr, _CMP_LE_OQ)));
    const unsigned k1 = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_cmp_pd(AbsPd(_mm256_sub_pd(v1, vq)), vr, _CMP_LE_OQ)));
    const unsigned k = k0 | (k1 << 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(surv + m),
                        Compress8(sv, k));
    m += static_cast<size_t>(__builtin_popcount(k));
  }
  for (; j < n; ++j) {
    const uint32_t i = surv[j];
    surv[m] = i;
    m += std::fabs(col[i] - q) <= r;
  }
  return m;
}

__attribute__((target("avx2"))) size_t RefineF64GatherAvx2(
    const double* col, const uint32_t* idx, const double* q_of_pivot,
    double r, uint32_t* surv, size_t n) {
  const __m256d vr = _mm256_set1_pd(r);
  size_t m = 0, j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i sv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(surv + j));
    const __m128i sv_lo = _mm256_castsi256_si128(sv);
    const __m128i sv_hi = _mm256_extracti128_si256(sv, 1);
    const __m256i vidx = GatherEpi32(idx, sv);
    const __m128i vidx_lo = _mm256_castsi256_si128(vidx);
    const __m128i vidx_hi = _mm256_extracti128_si256(vidx, 1);
    const __m256d q0 = GatherPd(q_of_pivot, vidx_lo);
    const __m256d q1 = GatherPd(q_of_pivot, vidx_hi);
    const __m256d v0 = GatherPd(col, sv_lo);
    const __m256d v1 = GatherPd(col, sv_hi);
    const unsigned k0 = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_cmp_pd(AbsPd(_mm256_sub_pd(v0, q0)), vr, _CMP_LE_OQ)));
    const unsigned k1 = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_cmp_pd(AbsPd(_mm256_sub_pd(v1, q1)), vr, _CMP_LE_OQ)));
    const unsigned k = k0 | (k1 << 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(surv + m),
                        Compress8(sv, k));
    m += static_cast<size_t>(__builtin_popcount(k));
  }
  for (; j < n; ++j) {
    const uint32_t i = surv[j];
    surv[m] = i;
    m += std::fabs(col[i] - q_of_pivot[idx[i]]) <= r;
  }
  return m;
}

// ---------------------------------------------------------------------------
// AVX-512: 16 float lanes, native mask compares and compress-stores.
// Mask bytes come from maskz_set1_epi8; compaction turns 16 mask bytes
// into a __mmask16 and compress-stores the iota+base indices in one
// instruction.  In the refine kernels the write cursor never passes the
// read cursor, so in-place narrowing is safe.
// ---------------------------------------------------------------------------

#define PMI_AVX512_TARGET \
  __attribute__((target("avx512f,avx512bw,avx512dq,avx512vl")))

PMI_AVX512_TARGET size_t MaskSweepAvx512(const ExactSlot& s, size_t count,
                                         uint8_t* keep) {
  const __m512 vq = _mm512_set1_ps(s.qf);
  const __m512 vrw = _mm512_set1_ps(s.rw);
  const __m512 vrn = _mm512_set1_ps(s.rn);
  const __m512 vmax = _mm512_set1_ps(kFltMax);
  size_t n = 0;
  __mmask16 amb = 0;
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m512 x = _mm512_loadu_ps(s.colf + i);
    const __m512 d = _mm512_abs_ps(_mm512_sub_ps(x, vq));
    const __mmask16 mw = _mm512_cmp_ps_mask(d, vrw, _CMP_LE_OQ);
    const __mmask16 mc =
        _mm512_cmp_ps_mask(d, vrn, _CMP_LE_OQ) &
        _mm512_cmp_ps_mask(_mm512_abs_ps(x), vmax, _CMP_LT_OQ);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(keep + i),
                     _mm_maskz_set1_epi8(mw, 1));
    n += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mw)));
    amb |= mw & ~mc;
  }
  unsigned tail_amb = 0;
  for (; i < count; ++i) {
    const float x = s.colf[i];
    const float d = std::fabs(x - s.qf);
    const uint8_t kw = d <= s.rw;
    const uint8_t kc = (d <= s.rn) & (std::fabs(x) < kFltMax);
    keep[i] = kw;
    n += kw;
    tail_amb |= kw & (kc ^ 1);
  }
  if (amb != 0 || tail_amb != 0) n = ResolveAmbiguous(s, count, keep);
  return n;
}

PMI_AVX512_TARGET size_t MaskSweepGatherAvx512(const ExactSlotGather& s,
                                               size_t count, uint8_t* keep) {
  const __m512 vrw = _mm512_set1_ps(s.rw);
  const __m512 vrn = _mm512_set1_ps(s.rn);
  const __m512 vmax = _mm512_set1_ps(kFltMax);
  size_t n = 0;
  __mmask16 amb = 0;
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m512i vidx = _mm512_loadu_si512(s.idx + i);
    const __m512 vq = _mm512_mask_i32gather_ps(_mm512_setzero_ps(), 0xffff,
                                               vidx, s.qf_pool, 4);
    const __m512 x = _mm512_loadu_ps(s.colf + i);
    const __m512 d = _mm512_abs_ps(_mm512_sub_ps(x, vq));
    const __mmask16 mw = _mm512_cmp_ps_mask(d, vrw, _CMP_LE_OQ);
    const __mmask16 mc =
        _mm512_cmp_ps_mask(d, vrn, _CMP_LE_OQ) &
        _mm512_cmp_ps_mask(_mm512_abs_ps(x), vmax, _CMP_LT_OQ);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(keep + i),
                     _mm_maskz_set1_epi8(mw, 1));
    n += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mw)));
    amb |= mw & ~mc;
  }
  unsigned tail_amb = 0;
  for (; i < count; ++i) {
    const float x = s.colf[i];
    const float d = std::fabs(x - s.qf_pool[s.idx[i]]);
    const uint8_t kw = d <= s.rw;
    const uint8_t kc = (d <= s.rn) & (std::fabs(x) < kFltMax);
    keep[i] = kw;
    n += kw;
    tail_amb |= kw & (kc ^ 1);
  }
  if (amb != 0 || tail_amb != 0) n = ResolveAmbiguousGather(s, count, keep);
  return n;
}

PMI_AVX512_TARGET size_t MaskAndAvx512(const ExactSlot& s, size_t count,
                                       uint8_t* keep) {
  const __m512 vq = _mm512_set1_ps(s.qf);
  const __m512 vrw = _mm512_set1_ps(s.rw);
  const __m512 vrn = _mm512_set1_ps(s.rn);
  const __m512 vmax = _mm512_set1_ps(kFltMax);
  size_t n = 0;
  __mmask16 amb = 0;
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m512 x = _mm512_loadu_ps(s.colf + i);
    const __m512 d = _mm512_abs_ps(_mm512_sub_ps(x, vq));
    const __mmask16 mw = _mm512_cmp_ps_mask(d, vrw, _CMP_LE_OQ);
    const __mmask16 mc =
        _mm512_cmp_ps_mask(d, vrn, _CMP_LE_OQ) &
        _mm512_cmp_ps_mask(_mm512_abs_ps(x), vmax, _CMP_LT_OQ);
    const __m128i cur =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keep + i));
    const __m128i res = _mm_maskz_mov_epi8(mw, cur);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(keep + i), res);
    const __mmask16 alive = _mm_test_epi8_mask(res, res);
    n += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(alive)));
    amb |= alive & ~mc;
  }
  unsigned tail_amb = 0;
  for (; i < count; ++i) {
    const float x = s.colf[i];
    const float d = std::fabs(x - s.qf);
    const uint8_t kw = keep[i] & static_cast<uint8_t>(d <= s.rw);
    const uint8_t kc = (d <= s.rn) & (std::fabs(x) < kFltMax);
    keep[i] = kw;
    n += kw;
    tail_amb |= kw & (kc ^ 1);
  }
  if (amb != 0 || tail_amb != 0) n = ResolveAmbiguous(s, count, keep);
  return n;
}

PMI_AVX512_TARGET size_t MaskAndGatherAvx512(const ExactSlotGather& s,
                                             size_t count, uint8_t* keep) {
  const __m512 vrw = _mm512_set1_ps(s.rw);
  const __m512 vrn = _mm512_set1_ps(s.rn);
  const __m512 vmax = _mm512_set1_ps(kFltMax);
  size_t n = 0;
  __mmask16 amb = 0;
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m512i vidx = _mm512_loadu_si512(s.idx + i);
    const __m512 vq = _mm512_mask_i32gather_ps(_mm512_setzero_ps(), 0xffff,
                                               vidx, s.qf_pool, 4);
    const __m512 x = _mm512_loadu_ps(s.colf + i);
    const __m512 d = _mm512_abs_ps(_mm512_sub_ps(x, vq));
    const __mmask16 mw = _mm512_cmp_ps_mask(d, vrw, _CMP_LE_OQ);
    const __mmask16 mc =
        _mm512_cmp_ps_mask(d, vrn, _CMP_LE_OQ) &
        _mm512_cmp_ps_mask(_mm512_abs_ps(x), vmax, _CMP_LT_OQ);
    const __m128i cur =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keep + i));
    const __m128i res = _mm_maskz_mov_epi8(mw, cur);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(keep + i), res);
    const __mmask16 alive = _mm_test_epi8_mask(res, res);
    n += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(alive)));
    amb |= alive & ~mc;
  }
  unsigned tail_amb = 0;
  for (; i < count; ++i) {
    const float x = s.colf[i];
    const float d = std::fabs(x - s.qf_pool[s.idx[i]]);
    const uint8_t kw = keep[i] & static_cast<uint8_t>(d <= s.rw);
    const uint8_t kc = (d <= s.rn) & (std::fabs(x) < kFltMax);
    keep[i] = kw;
    n += kw;
    tail_amb |= kw & (kc ^ 1);
  }
  if (amb != 0 || tail_amb != 0) n = ResolveAmbiguousGather(s, count, keep);
  return n;
}

PMI_AVX512_TARGET size_t CompactAvx512(const uint8_t* keep, size_t count,
                                       uint32_t* surv) {
  const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                         11, 12, 13, 14, 15);
  size_t n = 0, i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keep + i));
    const __mmask16 m = _mm_test_epi8_mask(b, b);
    const __m512i ids =
        _mm512_add_epi32(iota, _mm512_set1_epi32(static_cast<int>(i)));
    _mm512_mask_compressstoreu_epi32(surv + n, m, ids);
    n += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(m)));
  }
  for (; i < count; ++i) {
    surv[n] = static_cast<uint32_t>(i);
    n += keep[i];
  }
  return n;
}

PMI_AVX512_TARGET size_t RefineF64Avx512(const double* col, double q,
                                         double r, uint32_t* surv, size_t n) {
  const __m512d vq = _mm512_set1_pd(q);
  const __m512d vr = _mm512_set1_pd(r);
  size_t m = 0, j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i sv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(surv + j));
    const __m512d v = _mm512_mask_i32gather_pd(_mm512_setzero_pd(), 0xff, sv,
                                               col, 8);
    const __mmask8 k = _mm512_cmp_pd_mask(
        _mm512_abs_pd(_mm512_sub_pd(v, vq)), vr, _CMP_LE_OQ);
    _mm256_mask_compressstoreu_epi32(surv + m, k, sv);
    m += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(k)));
  }
  for (; j < n; ++j) {
    const uint32_t i = surv[j];
    surv[m] = i;
    m += std::fabs(col[i] - q) <= r;
  }
  return m;
}

PMI_AVX512_TARGET size_t RefineF64GatherAvx512(const double* col,
                                               const uint32_t* idx,
                                               const double* q_of_pivot,
                                               double r, uint32_t* surv,
                                               size_t n) {
  const __m512d vr = _mm512_set1_pd(r);
  size_t m = 0, j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i sv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(surv + j));
    const __m256i vidx = _mm256_mmask_i32gather_epi32(
        _mm256_setzero_si256(), 0xff, sv, idx, 4);
    const __m512d vq = _mm512_mask_i32gather_pd(_mm512_setzero_pd(), 0xff,
                                                vidx, q_of_pivot, 8);
    const __m512d v = _mm512_mask_i32gather_pd(_mm512_setzero_pd(), 0xff, sv,
                                               col, 8);
    const __mmask8 k = _mm512_cmp_pd_mask(
        _mm512_abs_pd(_mm512_sub_pd(v, vq)), vr, _CMP_LE_OQ);
    _mm256_mask_compressstoreu_epi32(surv + m, k, sv);
    m += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(k)));
  }
  for (; j < n; ++j) {
    const uint32_t i = surv[j];
    surv[m] = i;
    m += std::fabs(col[i] - q_of_pivot[idx[i]]) <= r;
  }
  return m;
}

// Multi-query sweeps: one 16-lane slab load per row chunk shared by a
// register-resident group of 8 queries (3 zmm broadcasts per query,
// well under the 32-register file); per-query masks/counts equal
// MaskSweepAvx512's.  See the AVX2 group kernels for why G is a
// compile-time constant.
template <size_t G>
PMI_AVX512_TARGET void MaskSweepMultiAvx512Group(const ExactSlot* slots,
                                                 size_t count, uint8_t* keep,
                                                 size_t keep_stride,
                                                 size_t* counts) {
  __m512 vq[G], vrw[G], vrn[G];
  unsigned amb[G];
  size_t cnt[G];
  for (size_t j = 0; j < G; ++j) {
    vq[j] = _mm512_set1_ps(slots[j].qf);
    vrw[j] = _mm512_set1_ps(slots[j].rw);
    vrn[j] = _mm512_set1_ps(slots[j].rn);
    amb[j] = 0;
    cnt[j] = 0;
  }
  const __m512 vmax = _mm512_set1_ps(kFltMax);
  const float* colf = slots[0].colf;
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m512 x = _mm512_loadu_ps(colf + i);
    const __m512 xabs = _mm512_abs_ps(x);
    for (size_t j = 0; j < G; ++j) {
      const __m512 d = _mm512_abs_ps(_mm512_sub_ps(x, vq[j]));
      const __mmask16 mw = _mm512_cmp_ps_mask(d, vrw[j], _CMP_LE_OQ);
      const __mmask16 mc = _mm512_cmp_ps_mask(d, vrn[j], _CMP_LE_OQ) &
                           _mm512_cmp_ps_mask(xabs, vmax, _CMP_LT_OQ);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(keep + j * keep_stride + i),
                       _mm_maskz_set1_epi8(mw, 1));
      cnt[j] +=
          static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mw)));
      amb[j] |= mw & ~mc;
    }
  }
  for (; i < count; ++i) {
    const float x = colf[i];
    for (size_t j = 0; j < G; ++j) {
      const float d = std::fabs(x - slots[j].qf);
      const uint8_t kw = d <= slots[j].rw;
      const uint8_t kc = (d <= slots[j].rn) & (std::fabs(x) < kFltMax);
      keep[j * keep_stride + i] = kw;
      cnt[j] += kw;
      amb[j] |= kw & (kc ^ 1);
    }
  }
  for (size_t j = 0; j < G; ++j) {
    counts[j] = amb[j] != 0
                    ? ResolveAmbiguous(slots[j], count, keep + j * keep_stride)
                    : cnt[j];
  }
}

void MaskSweepMultiAvx512(const ExactSlot* slots, size_t nq, size_t count,
                          uint8_t* keep, size_t keep_stride, size_t* counts) {
  size_t t = 0;
  for (; t + 8 <= nq; t += 8) {
    MaskSweepMultiAvx512Group<8>(slots + t, count, keep + t * keep_stride,
                                 keep_stride, counts + t);
  }
  if (nq - t >= 4) {
    MaskSweepMultiAvx512Group<4>(slots + t, count, keep + t * keep_stride,
                                 keep_stride, counts + t);
    t += 4;
  }
  for (; t < nq; ++t) {
    counts[t] = MaskSweepAvx512(slots[t], count, keep + t * keep_stride);
  }
}

template <size_t G>
PMI_AVX512_TARGET void MaskSweepGatherMultiAvx512Group(
    const ExactSlotGather* slots, size_t count, uint8_t* keep,
    size_t keep_stride, size_t* counts) {
  __m512 vrw[G], vrn[G];
  unsigned amb[G];
  size_t cnt[G];
  for (size_t j = 0; j < G; ++j) {
    vrw[j] = _mm512_set1_ps(slots[j].rw);
    vrn[j] = _mm512_set1_ps(slots[j].rn);
    amb[j] = 0;
    cnt[j] = 0;
  }
  const __m512 vmax = _mm512_set1_ps(kFltMax);
  const float* colf = slots[0].colf;
  const uint32_t* idx = slots[0].idx;
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m512 x = _mm512_loadu_ps(colf + i);
    const __m512 xabs = _mm512_abs_ps(x);
    const __m512i vidx = _mm512_loadu_si512(idx + i);
    for (size_t j = 0; j < G; ++j) {
      const __m512 vq = _mm512_mask_i32gather_ps(_mm512_setzero_ps(), 0xffff,
                                                 vidx, slots[j].qf_pool, 4);
      const __m512 d = _mm512_abs_ps(_mm512_sub_ps(x, vq));
      const __mmask16 mw = _mm512_cmp_ps_mask(d, vrw[j], _CMP_LE_OQ);
      const __mmask16 mc = _mm512_cmp_ps_mask(d, vrn[j], _CMP_LE_OQ) &
                           _mm512_cmp_ps_mask(xabs, vmax, _CMP_LT_OQ);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(keep + j * keep_stride + i),
                       _mm_maskz_set1_epi8(mw, 1));
      cnt[j] +=
          static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mw)));
      amb[j] |= mw & ~mc;
    }
  }
  for (; i < count; ++i) {
    const float x = colf[i];
    for (size_t j = 0; j < G; ++j) {
      const float d = std::fabs(x - slots[j].qf_pool[idx[i]]);
      const uint8_t kw = d <= slots[j].rw;
      const uint8_t kc = (d <= slots[j].rn) & (std::fabs(x) < kFltMax);
      keep[j * keep_stride + i] = kw;
      cnt[j] += kw;
      amb[j] |= kw & (kc ^ 1);
    }
  }
  for (size_t j = 0; j < G; ++j) {
    counts[j] = amb[j] != 0 ? ResolveAmbiguousGather(slots[j], count,
                                                     keep + j * keep_stride)
                            : cnt[j];
  }
}

void MaskSweepGatherMultiAvx512(const ExactSlotGather* slots, size_t nq,
                                size_t count, uint8_t* keep,
                                size_t keep_stride, size_t* counts) {
  size_t t = 0;
  for (; t + 8 <= nq; t += 8) {
    MaskSweepGatherMultiAvx512Group<8>(slots + t, count,
                                       keep + t * keep_stride, keep_stride,
                                       counts + t);
  }
  if (nq - t >= 4) {
    MaskSweepGatherMultiAvx512Group<4>(slots + t, count,
                                       keep + t * keep_stride, keep_stride,
                                       counts + t);
    t += 4;
  }
  for (; t < nq; ++t) {
    counts[t] =
        MaskSweepGatherAvx512(slots[t], count, keep + t * keep_stride);
  }
}

#undef PMI_AVX512_TARGET

bool CpuSupportsAvx512() {
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
}

#endif  // PMI_SIMD_X86

#if PMI_SIMD_NEON

// ---------------------------------------------------------------------------
// NEON: 4 float lanes for the contiguous sweeps (FABD = abs-difference
// in one rounding, identical to fabsf(a - b)); the gather, compaction,
// and refine forms stay scalar -- AArch64 has no gather, and the
// survivor lists the refines touch are short.
// ---------------------------------------------------------------------------

size_t MaskSweepNeon(const ExactSlot& s, size_t count, uint8_t* keep) {
  const float32x4_t vq = vdupq_n_f32(s.qf);
  const float32x4_t vrw = vdupq_n_f32(s.rw);
  const float32x4_t vrn = vdupq_n_f32(s.rn);
  const float32x4_t vmax = vdupq_n_f32(kFltMax);
  size_t n = 0;
  uint32_t amb = 0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const float32x4_t x = vld1q_f32(s.colf + i);
    const float32x4_t d = vabdq_f32(x, vq);
    const uint32x4_t mw = vcleq_f32(d, vrw);
    const uint32x4_t mc =
        vandq_u32(vcleq_f32(d, vrn), vcltq_f32(vabsq_f32(x), vmax));
    const uint32x4_t a = vbicq_u32(mw, mc);
    uint32_t w[4], av[4];
    vst1q_u32(w, mw);
    vst1q_u32(av, a);
    for (int t = 0; t < 4; ++t) {
      const uint8_t kb = w[t] & 1u;
      keep[i + t] = kb;
      n += kb;
      amb |= av[t];
    }
  }
  for (; i < count; ++i) {
    const float x = s.colf[i];
    const float d = std::fabs(x - s.qf);
    const uint8_t kw = d <= s.rw;
    const uint8_t kc = (d <= s.rn) & (std::fabs(x) < kFltMax);
    keep[i] = kw;
    n += kw;
    amb |= kw & (kc ^ 1);
  }
  if (amb != 0) n = ResolveAmbiguous(s, count, keep);
  return n;
}

size_t MaskAndNeon(const ExactSlot& s, size_t count, uint8_t* keep) {
  const float32x4_t vq = vdupq_n_f32(s.qf);
  const float32x4_t vrw = vdupq_n_f32(s.rw);
  const float32x4_t vrn = vdupq_n_f32(s.rn);
  const float32x4_t vmax = vdupq_n_f32(kFltMax);
  size_t n = 0;
  uint32_t amb = 0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const float32x4_t x = vld1q_f32(s.colf + i);
    const float32x4_t d = vabdq_f32(x, vq);
    const uint32x4_t mw = vcleq_f32(d, vrw);
    const uint32x4_t mc =
        vandq_u32(vcleq_f32(d, vrn), vcltq_f32(vabsq_f32(x), vmax));
    uint32_t w[4], c[4];
    vst1q_u32(w, mw);
    vst1q_u32(c, mc);
    for (int t = 0; t < 4; ++t) {
      const uint8_t kb = keep[i + t] & (w[t] & 1u);
      keep[i + t] = kb;
      n += kb;
      amb |= kb & ((c[t] & 1u) ^ 1u);
    }
  }
  for (; i < count; ++i) {
    const float x = s.colf[i];
    const float d = std::fabs(x - s.qf);
    const uint8_t kw = keep[i] & static_cast<uint8_t>(d <= s.rw);
    const uint8_t kc = (d <= s.rn) & (std::fabs(x) < kFltMax);
    keep[i] = kw;
    n += kw;
    amb |= kw & (kc ^ 1);
  }
  if (amb != 0) n = ResolveAmbiguous(s, count, keep);
  return n;
}

// Multi-query sweep: the 4-lane x load is shared across a
// register-resident group of 4 queries (12 broadcast q-registers of the
// 32 available); the per-lane expressions match MaskSweepNeon exactly.
template <size_t G>
void MaskSweepMultiNeonGroup(const ExactSlot* slots, size_t count,
                             uint8_t* keep, size_t keep_stride,
                             size_t* counts) {
  float32x4_t vq[G], vrw[G], vrn[G];
  uint32_t amb[G];
  size_t cnt[G];
  for (size_t j = 0; j < G; ++j) {
    vq[j] = vdupq_n_f32(slots[j].qf);
    vrw[j] = vdupq_n_f32(slots[j].rw);
    vrn[j] = vdupq_n_f32(slots[j].rn);
    amb[j] = 0;
    cnt[j] = 0;
  }
  const float32x4_t vmax = vdupq_n_f32(kFltMax);
  const float* colf = slots[0].colf;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const float32x4_t x = vld1q_f32(colf + i);
    const uint32x4_t xok = vcltq_f32(vabsq_f32(x), vmax);
    for (size_t j = 0; j < G; ++j) {
      const float32x4_t d = vabdq_f32(x, vq[j]);
      const uint32x4_t mw = vcleq_f32(d, vrw[j]);
      const uint32x4_t mc = vandq_u32(vcleq_f32(d, vrn[j]), xok);
      const uint32x4_t a = vbicq_u32(mw, mc);
      uint32_t w[4], av[4];
      vst1q_u32(w, mw);
      vst1q_u32(av, a);
      for (int t = 0; t < 4; ++t) {
        const uint8_t kb = w[t] & 1u;
        keep[j * keep_stride + i + t] = kb;
        cnt[j] += kb;
        amb[j] |= av[t];
      }
    }
  }
  for (; i < count; ++i) {
    const float x = colf[i];
    for (size_t j = 0; j < G; ++j) {
      const float d = std::fabs(x - slots[j].qf);
      const uint8_t kw = d <= slots[j].rw;
      const uint8_t kc = (d <= slots[j].rn) & (std::fabs(x) < kFltMax);
      keep[j * keep_stride + i] = kw;
      cnt[j] += kw;
      amb[j] |= kw & (kc ^ 1);
    }
  }
  for (size_t j = 0; j < G; ++j) {
    counts[j] = amb[j] != 0
                    ? ResolveAmbiguous(slots[j], count, keep + j * keep_stride)
                    : cnt[j];
  }
}

void MaskSweepMultiNeon(const ExactSlot* slots, size_t nq, size_t count,
                        uint8_t* keep, size_t keep_stride, size_t* counts) {
  size_t t = 0;
  for (; t + 4 <= nq; t += 4) {
    MaskSweepMultiNeonGroup<4>(slots + t, count, keep + t * keep_stride,
                               keep_stride, counts + t);
  }
  for (; t < nq; ++t) {
    counts[t] = MaskSweepNeon(slots[t], count, keep + t * keep_stride);
  }
}

#endif  // PMI_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch resolution.
// ---------------------------------------------------------------------------

SimdLevel DetectBestLevel() {
#if PMI_SIMD_X86
  if (CpuSupportsAvx512()) return SimdLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
#elif PMI_SIMD_NEON
  return SimdLevel::kNeon;
#else
  return SimdLevel::kScalar;
#endif
}

SimdOps MakeOps(SimdLevel level) {
  SimdOps ops;
  ops.level = SimdLevel::kScalar;
  ops.dense_divisor = 0;
  ops.mask_sweep = MaskSweepScalar;
  ops.mask_sweep_gather = MaskSweepGatherScalar;
  ops.mask_sweep_multi = MaskSweepMultiScalar;
  ops.mask_sweep_gather_multi = MaskSweepGatherMultiScalar;
  ops.mask_and = MaskAndScalar;
  ops.mask_and_gather = MaskAndGatherScalar;
  ops.compact = CompactScalar;
  ops.refine_f64 = RefineF64Scalar;
  ops.refine_f64_gather = RefineF64GatherScalar;
  switch (level) {
    case SimdLevel::kScalar:
      break;
#if PMI_SIMD_X86
    case SimdLevel::kAvx2:
      ops.level = SimdLevel::kAvx2;
      ops.dense_divisor = 8;
      ops.dense_divisor_gather = 8;
      ops.mask_sweep = MaskSweepAvx2;
      ops.mask_sweep_gather = MaskSweepGatherAvx2;
      ops.mask_sweep_multi = MaskSweepMultiAvx2;
      ops.mask_sweep_gather_multi = MaskSweepGatherMultiAvx2;
      ops.mask_and = MaskAndAvx2;
      ops.mask_and_gather = MaskAndGatherAvx2;
      // Compress-store emulation via the 256-entry shuffle LUT.
      ops.compact = CompactAvx2;
      ops.refine_f64 = RefineF64Avx2;
      ops.refine_f64_gather = RefineF64GatherAvx2;
      break;
    case SimdLevel::kAvx512:
      ops.level = SimdLevel::kAvx512;
      ops.dense_divisor = 8;
      ops.dense_divisor_gather = 8;
      ops.mask_sweep = MaskSweepAvx512;
      ops.mask_sweep_gather = MaskSweepGatherAvx512;
      ops.mask_sweep_multi = MaskSweepMultiAvx512;
      ops.mask_sweep_gather_multi = MaskSweepGatherMultiAvx512;
      ops.mask_and = MaskAndAvx512;
      ops.mask_and_gather = MaskAndGatherAvx512;
      ops.compact = CompactAvx512;
      ops.refine_f64 = RefineF64Avx512;
      ops.refine_f64_gather = RefineF64GatherAvx512;
      break;
#endif
#if PMI_SIMD_NEON
    case SimdLevel::kNeon:
      ops.level = SimdLevel::kNeon;
      // Contiguous kernels only: the gather form stays on the sparse
      // survivor walk (dense_divisor_gather = 0) -- no NEON gathers.
      ops.dense_divisor = 8;
      ops.mask_sweep = MaskSweepNeon;
      ops.mask_sweep_multi = MaskSweepMultiNeon;
      ops.mask_and = MaskAndNeon;
      break;
#endif
    default:
      break;  // level compiled out: scalar fallback
  }
  return ops;
}

SimdOps ResolveOps() {
  SimdLevel level = DetectBestLevel();
  const char* env = std::getenv("PMI_SIMD");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "auto") != 0) {
    SimdLevel requested;
    if (std::strcmp(env, "scalar") == 0) {
      requested = SimdLevel::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = SimdLevel::kAvx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      requested = SimdLevel::kAvx512;
    } else if (std::strcmp(env, "neon") == 0) {
      requested = SimdLevel::kNeon;
    } else {
      std::fprintf(stderr,
                   "pmi: PMI_SIMD=\"%s\" is not scalar|avx2|avx512|neon|auto; "
                   "using %s\n",
                   env, SimdLevelName(level));
      requested = level;
    }
    if (SimdLevelSupported(requested)) {
      level = requested;
    } else {
      std::fprintf(stderr,
                   "pmi: PMI_SIMD=%s not supported on this CPU/build; "
                   "using %s\n",
                   env, SimdLevelName(level));
    }
  }
  return MakeOps(level);
}

// Written only by ReinitSimdDispatch (startup / single-threaded test
// setup); read-only on the scan hot path.
SimdOps g_ops = MakeOps(SimdLevel::kScalar);

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool SimdLevelSupported(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
#if PMI_SIMD_X86
    case SimdLevel::kAvx2:
      return __builtin_cpu_supports("avx2");
    case SimdLevel::kAvx512:
      return CpuSupportsAvx512();
#endif
#if PMI_SIMD_NEON
    case SimdLevel::kNeon:
      return true;
#endif
    default:
      return false;
  }
}

const SimdOps& SimdDispatch() {
  // Magic-static once-init: the first caller resolves the level; the
  // race-free publication is the C++ guarantee on static local init.
  static const bool resolved = [] {
    ReinitSimdDispatch();
    return true;
  }();
  (void)resolved;
  return g_ops;
}

SimdLevel SimdLevelInUse() { return SimdDispatch().level; }

void ReinitSimdDispatch() { g_ops = ResolveOps(); }

}  // namespace pmi
