// Runtime-dispatched SIMD kernels for the float32 filter engine.
//
// The pivot-table bulk filter (src/core/pivot_table.h) burns almost all
// of the table indexes' query CPU, and at the paper's dimensionalities
// nearly every row dies on the filter, not on verification -- so filter
// throughput *is* query throughput.  This module supplies the kernels
// that sweep the derived float32 filter columns 4-16 lanes at a time:
//
//   filter_sweep          contiguous column slab -> survivor index list
//   filter_sweep_gather   per-row-pivot (EPT) form: the query value is
//                         gathered per row via a parallel index column
//   refine / refine_gather  later pivot slots narrowing a survivor list
//   *_multi               batch forms: the same cells evaluated for
//                         several queries per load (block-major engine)
//
// One implementation set exists per SimdLevel (scalar, AVX2, AVX-512,
// NEON).  The level is resolved ONCE, at first use: the widest set the
// CPU supports, overridable with the PMI_SIMD environment knob
// ("scalar" | "avx2" | "avx512" | "neon" | "auto").  Every level
// computes exactly the same per-element float predicate
//
//   keep(i)  <=>  fabsf(col[i] - q) <= r        (IEEE-754 binary32)
//
// so survivor lists are bit-identical at every dispatch level -- the
// vector paths only change how many lanes evaluate it per cycle
// (tests/simd_filter_test.cc fuzzes this across levels).
//
// Exactness contract: the float predicate is a *conservative* filter.
// Callers must pass a radius widened with ConservativeFilterRadius() so
// that every row passing the exact double test also passes the float
// test; the resulting superset is then narrowed back to the bit-exact
// double answer by the per-survivor re-check in PivotTable.  See the
// derivation at ConservativeFilterRadius below.

#ifndef PMI_CORE_SIMD_H_
#define PMI_CORE_SIMD_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <vector>

namespace pmi {

/// Kernel implementation tiers, narrowest to widest.
enum class SimdLevel : uint8_t {
  kScalar = 0,  ///< portable C++ (still auto-vectorizable by the compiler)
  kNeon = 1,    ///< AArch64 NEON, 4 float lanes
  kAvx2 = 2,    ///< x86 AVX2 + FMA, 8 float lanes
  kAvx512 = 3,  ///< x86 AVX-512 F/BW/DQ/VL, 16 float lanes + compress-store
};

/// Human-readable level name ("scalar", "avx2", ...).
const char* SimdLevelName(SimdLevel level);

/// True when `level` is both compiled in and supported by this CPU.
bool SimdLevelSupported(SimdLevel level);

/// One pivot slot's worth of filter inputs for the exact mask kernels:
/// the f32 filter column with its wide/narrow radii, and the f64 column
/// + exact radius the rare ambiguous rows fall back to.  The kernels'
/// contract is that the produced mask equals the exact double predicate
/// fabs(cold[i] - qd) <= rd for every row -- the f32 side is only the
/// fast path (see the two-sided radius derivation below).
struct ExactSlot {
  const float* colf = nullptr;   ///< f32 filter column (block base)
  const double* cold = nullptr;  ///< f64 column (same base)
  float qf = 0;                  ///< FilterValue(qd)
  float rw = 0;                  ///< wide radius: double-pass => f32-pass
  float rn = 0;                  ///< narrow radius: f32-pass => double-pass
  double qd = 0;                 ///< exact query value
  double rd = 0;                 ///< exact radius
};

/// Per-row-pivot (EPT) form: the query value for row i is
/// qf_pool[idx[i]] / qd_pool[idx[i]].
struct ExactSlotGather {
  const float* colf = nullptr;
  const double* cold = nullptr;
  const uint32_t* idx = nullptr;  ///< pool-index column (block base)
  const float* qf_pool = nullptr;
  const double* qd_pool = nullptr;
  float rw = 0;
  float rn = 0;
  double rd = 0;
};

/// Queries per multi-kernel call.  The batch entry points hand the
/// kernels at most this many queries at a time (FilterBlockMulti tiles
/// larger batches), which bounds the kernels' per-query scratch (lane
/// registers, ambiguity flags) at a compile-time constant and keeps one
/// tile's mask rows inside a few cache lines per row chunk.
inline constexpr size_t kMultiQueryTile = 16;

/// Kernel table for one dispatch level.  Two kernel families cover the
/// two survivor-density regimes of a filter cascade:
///
///   dense  -- 0/1 byte masks over a whole block: mask_sweep produces
///             them, mask_and narrows them against further columns
///             (contiguous, lane-parallel, f32 traffic), compact turns
///             the final mask into ascending indices;
///   sparse -- refine_f64* narrows an explicit survivor index list in
///             place against the double columns (touches only
///             survivors; a sparse gather pulls the whole cache line
///             anyway, so f32 would save nothing there).
///
/// PivotTable switches from dense to sparse once the survivor count
/// drops below a fraction of the block -- a strategy choice only; every
/// kernel produces the exact double-predicate decision for each row, so
/// the final survivor set and order are bit-identical regardless of
/// level or path.
///
/// The vector paths may store up to kSurvWriteSlack garbage indices
/// past the returned count: survivor buffers need that much extra
/// capacity beyond `count`.
struct SimdOps {
  SimdLevel level = SimdLevel::kScalar;

  /// Dense-path profitability: a block stays on the mask-AND path while
  /// survivors * dense_divisor >= block rows.  0 disables the dense path
  /// -- on the scalar level a whole-block re-sweep never beats the
  /// branch-free survivor walk, while the vector levels narrow 8-16
  /// lanes per cycle contiguously.  The gather (per-row-pivot) form has
  /// its own divisor because a level may vectorize only the contiguous
  /// kernels (NEON: no gather hardware), in which case whole-block
  /// gather re-sweeps would cost more than the survivor walk ever does.
  unsigned dense_divisor = 0;
  unsigned dense_divisor_gather = 0;

  /// keep[i] = (fabs(cold[i] - qd) <= rd) ? 1 : 0 for i < count, decided
  /// through the two-sided f32 test with f64 fallback on ambiguity;
  /// returns the number of set bytes.
  size_t (*mask_sweep)(const ExactSlot& s, size_t count, uint8_t* keep);
  size_t (*mask_sweep_gather)(const ExactSlotGather& s, size_t count,
                              uint8_t* keep);

  /// keep[i] &= exact predicate; returns the surviving count.
  size_t (*mask_and)(const ExactSlot& s, size_t count, uint8_t* keep);
  size_t (*mask_and_gather)(const ExactSlotGather& s, size_t count,
                            uint8_t* keep);

  /// Multi-query sweeps, the register-level half of the block-major
  /// batch engine: evaluate the exact predicate of `nq` queries
  /// (1 <= nq <= kMultiQueryTile) over the SAME contiguous cells --
  /// slots[qi].colf / .cold must all point at one column block -- in a
  /// single pass, so one cell load serves every query in the tile.
  /// Query qi's 0/1 mask bytes land at keep + qi * keep_stride and its
  /// survivor count in counts[qi].  Each mask row equals what mask_sweep
  /// would produce for that query alone (the exact double predicate), so
  /// the batch engine inherits the single-query exactness contract
  /// unchanged -- the two-sided rounding argument needs no new analysis.
  void (*mask_sweep_multi)(const ExactSlot* slots, size_t nq, size_t count,
                           uint8_t* keep, size_t keep_stride, size_t* counts);
  void (*mask_sweep_gather_multi)(const ExactSlotGather* slots, size_t nq,
                                  size_t count, uint8_t* keep,
                                  size_t keep_stride, size_t* counts);

  /// surv[0..ret) = ascending i < count with keep[i] != 0.
  size_t (*compact)(const uint8_t* keep, size_t count, uint32_t* surv);

  /// Narrows surv[0..n) in place against a double column (exact
  /// predicate, order preserved); returns the new count.
  size_t (*refine_f64)(const double* col, double q, double r, uint32_t* surv,
                       size_t n);
  size_t (*refine_f64_gather)(const double* col, const uint32_t* idx,
                              const double* q_of_pivot, double r,
                              uint32_t* surv, size_t n);
};

/// Scratch slack the vector compaction stores may write past the
/// survivor count (one full AVX-512 register of lanes).
inline constexpr size_t kSurvWriteSlack = 16;

/// The kernel table in use.  Resolved once (CPU detection + PMI_SIMD) on
/// first call; subsequent calls are a plain load.
const SimdOps& SimdDispatch();

/// The level SimdDispatch() resolved to.
SimdLevel SimdLevelInUse();

/// Re-resolves the dispatch table from PMI_SIMD + CPU support.  For
/// tests and benchmarks that force levels mid-process; NOT thread-safe
/// against concurrent scans -- call only while no queries run.
void ReinitSimdDispatch();

/// Derived float32 copy of a double filter cell.  The plain binary32
/// cast is monotone (x <= y implies float(x) <= float(y)), which is what
/// the conservatism argument below needs; the clamp keeps out-of-range
/// doubles from hitting the undefined out-of-range double->float
/// conversion and compresses huge distances onto FLT_MAX, which only
/// ever *shrinks* float differences, i.e. errs toward keeping rows.
inline float FilterValue(double v) {
  constexpr double kMax = double(std::numeric_limits<float>::max());
  if (v > kMax) return std::numeric_limits<float>::max();
  if (v < -kMax) return -std::numeric_limits<float>::max();
  return static_cast<float>(v);  // round-to-nearest; NaN stays NaN
}

/// Widened float radius making the float filter a strict superset of the
/// double test.  Guarantee: for any finite doubles x (cell) and q (query
/// value) with |q| <= qmax_abs and any radius r, if the exact test
/// fabs(x - q) <= r holds in double arithmetic, then
/// fabsf(FilterValue(x) - FilterValue(q)) <= ConservativeFilterRadius(...)
/// holds in float arithmetic.
///
/// Derivation: a double survivor has |x - q| <= r(1 + 2^-52), so
/// |x| <= |q| + r + eps.  The two casts move each operand by at most
/// 2^-24 of its magnitude (the clamp only moves values toward each
/// other), and the float subtraction adds one more 2^-24 relative
/// rounding, for a total extra slack under 2^-23 (|q| + r) plus a
/// denormal-sized absolute term.  We budget 2^-22 (|q| + r) + 1e-40 --
/// twice the bound -- then round the float conversion up one ulp.  A
/// too-wide radius only admits a few more ambiguous rows for the f64
/// fallback to settle; a too-tight one would change query answers, so
/// all rounding errs wide.
inline float ConservativeFilterRadius(double qmax_abs, double r) {
  if (!(r >= 0)) return -1.0f;  // negative/NaN radius prunes everything
  const double bound = r + std::ldexp(qmax_abs + r, -22) + 1e-40;
  if (!(bound <= double(std::numeric_limits<float>::max()))) {
    return std::numeric_limits<float>::infinity();
  }
  return std::nextafterf(static_cast<float>(bound),
                         std::numeric_limits<float>::infinity());
}

/// The narrow side of the two-sided filter: a float radius such that
/// fabsf(X - Q) <= CertificateFilterRadius(...) *proves* the exact test
/// fabs(x - q) <= r holds in double arithmetic -- provided |X| <
/// FLT_MAX (an unclamped cell; the kernels check that lane-wise, since
/// a clamped X hides an arbitrarily larger x).  Rows between the narrow
/// and wide radii are "ambiguous" and fall back to the double column;
/// with random data that band is empty for all practical purposes, so
/// the filter runs on f32 traffic alone.
///
/// Derivation mirrors ConservativeFilterRadius with the casting slack
/// subtracted instead of added: |x - q| <= S + 2^-23 (|q| + r) + denorm
/// for S = fabsf(X - Q), so S <= r - slack implies the double test.
/// Budgeting 2^-22 (|q| + r) + 1e-40 again leaves 2x margin, and the
/// final float conversion rounds down one ulp.  Degenerate cases
/// (negative/NaN/zero-leftover radius, query beyond float range) return
/// -1: nothing certifies, everything ambiguous falls back to f64 --
/// slower, never wrong.
inline float CertificateFilterRadius(double qmax_abs, double r) {
  if (!(r >= 0) || !(qmax_abs <= double(std::numeric_limits<float>::max()))) {
    return -1.0f;
  }
  const double rn = r - std::ldexp(qmax_abs + r, -22) - 1e-40;
  if (!(rn > 0)) return -1.0f;
  const double capped =
      std::min(rn, double(std::numeric_limits<float>::max()));
  return std::nextafterf(static_cast<float>(capped),
                         -std::numeric_limits<float>::infinity());
}

/// Read-prefetch hint (no-op where unsupported).  Used by the batched
/// verification paths to pull survivor objects toward L1 before the
/// BoundedDistance loop touches them.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/2);
#else
  (void)p;
#endif
}

/// Minimal aligned allocator so the filter columns start on cache-line
/// boundaries (64-byte-aligned slabs keep the 16-lane loads split-free).
template <typename T, std::size_t kAlign = 64>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, kAlign>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlign)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(kAlign));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, kAlign>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// 64-byte-aligned float column, the storage type of the filter columns.
using FilterColumn = std::vector<float, AlignedAllocator<float, 64>>;

}  // namespace pmi

#endif  // PMI_CORE_SIMD_H_
