// Pivot selection strategies.
//
// The paper's central methodological point is that all indexes must be
// compared under the *same* pivot selection strategy (Section 1).  The
// shared strategy is HFI -- the HF-based incremental selection of the
// SPB-tree paper [12], which the authors call state-of-the-art
// (Section 6.1).  HF (the Omni "hull of foci" outlier finder [17]) is
// both a standalone strategy and the candidate generator for HFI and for
// EPT*'s PSA (Algorithm 1).

#ifndef PMI_CORE_PIVOT_SELECTION_H_
#define PMI_CORE_PIVOT_SELECTION_H_

#include <cstdint>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/metric.h"
#include "src/core/pivots.h"
#include "src/core/rng.h"

namespace pmi {

/// Tuning for the selection algorithms; defaults follow the paper.
struct PivotSelectionOptions {
  /// Objects sampled for focus/candidate evaluation.
  uint32_t sample_size = 2000;
  /// Object pairs sampled for HFI's precision objective.
  uint32_t pair_sample = 500;
  uint64_t seed = 42;
};

/// Uniformly random distinct objects; BKT's per-subtree strategy.
std::vector<ObjectId> SelectPivotsRandom(const Dataset& data, uint32_t count,
                                         Rng& rng);

/// HF ("hull of foci", Omni-family): picks `count` outliers lying near the
/// convex hull of the dataset.  Distance computations are attributed
/// through `dist`.
std::vector<ObjectId> SelectPivotsHF(const Dataset& data,
                                     const DistanceComputer& dist,
                                     uint32_t count,
                                     const PivotSelectionOptions& options);

/// HFI: generates HF outlier candidates, then greedily adds the candidate
/// maximizing the mean pivot-space / metric-space distance ratio
///   mean over pairs (a,b) of  max_i |d(a,p_i) - d(b,p_i)| / d(a,b),
/// i.e. how faithfully the pivot mapping preserves the original metric.
/// `candidate_count` of 0 defaults to max(4 * count, 40) candidates.
std::vector<ObjectId> SelectPivotsHFI(const Dataset& data,
                                      const DistanceComputer& dist,
                                      uint32_t count,
                                      const PivotSelectionOptions& options,
                                      uint32_t candidate_count = 0);

/// Convenience: the shared pivot set every index receives -- HFI over the
/// dataset, counters discarded (selection cost is not part of any
/// reported experiment; each index re-computes its own mapping at build).
PivotSet SelectSharedPivots(const Dataset& data, const Metric& metric,
                            uint32_t count,
                            const PivotSelectionOptions& options = {});

}  // namespace pmi

#endif  // PMI_CORE_PIVOT_SELECTION_H_
