// Parallel execution engine: a fork-join thread pool and ParallelFor.
//
// The construction phase (the n x l pivot-table fill, the HF/HFI scoring
// loops) and batch query workloads are embarrassingly parallel, but the
// paper's cost accounting demands *exact* compdists totals and this
// repository additionally promises bit-identical results at any thread
// count.  The engine therefore stays deliberately simple:
//
//   - Fork-join, no work stealing: Dispatch(slots, fn) runs fn(slot) for
//     each slot -- slot 0 on the calling thread, the rest on dedicated
//     workers -- and returns after all complete.  Every parallel region
//     is a single barrier; there is no task queue whose drain order could
//     leak into results.
//   - Fixed arithmetic partitioning: ParallelFor splits [0, n) into one
//     contiguous chunk per slot.  Which thread runs a chunk never matters
//     because bodies write only to element-indexed or slot-indexed state;
//     reductions are combined in ascending slot order so first-wins
//     tie-breaks match the serial loop.
//   - Counters stay non-atomic: workers count into per-slot PerfCounters
//     shards, folded into the owner's counters at the barrier (see
//     CounterScope / FoldCounters in src/core/counters.h).
//
// The pool size defaults to PMI_THREADS (validated) or the hardware
// concurrency; a pool of size 1 runs every region inline, making the
// serial path the literal special case of the parallel one.

#ifndef PMI_CORE_THREAD_POOL_H_
#define PMI_CORE_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pmi {

/// Fork-join worker pool.  One instance is shared process-wide via
/// Global(); benchmarks reconfigure it with SetGlobalThreads.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller of Dispatch is the
  /// remaining execution slot).  `threads` of 0 or 1 spawns none.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution slots available to Dispatch (workers + the caller).
  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs fn(slot) for every slot in [0, slots) -- slot 0 on the calling
  /// thread -- and returns when all invocations have finished.  `slots`
  /// must not exceed size().  Concurrent top-level Dispatch calls (e.g.
  /// two application threads issuing batch queries against *distinct*
  /// indexes through the shared Global() pool) serialize on an internal
  /// mutex -- each region still runs fully parallel, the regions just run
  /// one after another.  (A MetricIndex instance itself is externally
  /// synchronized: concurrent operations on the *same* index race on its
  /// cost counters.)  Not reentrant: fn must not call Dispatch on the
  /// same pool.
  void Dispatch(unsigned slots, const std::function<void(unsigned)>& fn);

  /// Non-blocking Dispatch: runs the region if the pool is free, returns
  /// false untouched if another region currently holds it.  Callers that
  /// can execute the work inline (every partitioning-invariant region)
  /// use this so concurrent readers degrade to inline execution instead
  /// of queueing on the region lock.
  bool TryDispatch(unsigned slots, const std::function<void(unsigned)>& fn);

  /// PMI_THREADS if set to a valid positive integer (a warning goes to
  /// stderr otherwise), else std::thread::hardware_concurrency(), else 1.
  static unsigned DefaultThreads();

  /// The process-wide pool, created on first use with DefaultThreads().
  static ThreadPool& Global();

  /// Replaces the global pool with one of `threads` slots (0 = back to
  /// DefaultThreads()).  Call only between parallel regions -- e.g. the
  /// benchmark harness sweeping thread counts.
  static void SetGlobalThreads(unsigned threads);

 private:
  void WorkerLoop(unsigned slot);
  /// Region body shared by Dispatch/TryDispatch; caller holds
  /// dispatch_mu_.
  void DispatchLocked(unsigned slots, const std::function<void(unsigned)>& fn);

  std::mutex dispatch_mu_;  // serializes whole regions (one at a time)
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;  // valid during a region
  unsigned job_slots_ = 0;
  unsigned running_ = 0;     // workers still inside the current job
  uint64_t generation_ = 0;  // bumped per Dispatch; wakes the workers
  bool stop_ = false;
  std::vector<std::thread> workers_;  // worker i serves slot i + 1
};

/// Splits [0, n) into one contiguous chunk per execution slot -- chunk s
/// is [n*s/slots, n*(s+1)/slots) -- and runs body(begin, end, slot) on
/// each, returning after all complete.  The body may write only to
/// element-indexed state (each element belongs to exactly one chunk) and
/// slot-indexed scratch such as PerfCounters shards; under that contract
/// results are bit-identical at any thread count.  n of 0 or 1 slot runs
/// the body inline on the calling thread.
template <typename Body>
void ParallelFor(ThreadPool& pool, size_t n, Body&& body) {
  if (n == 0) return;
  const unsigned slots =
      static_cast<unsigned>(std::min<size_t>(pool.size(), n));
  if (slots <= 1) {
    body(size_t{0}, n, 0u);
    return;
  }
  const std::function<void(unsigned)> task = [&](unsigned s) {
    const size_t begin = n * s / slots;
    const size_t end = n * (s + 1) / slots;
    if (begin < end) body(begin, end, s);
  };
  pool.Dispatch(slots, task);
}

/// Partitioning helper of the block-major batch engine: runs
/// body(begin, end) over one contiguous chunk of [0, n) per execution
/// slot of the global pool when `parallel` is set, inline on the calling
/// thread otherwise (and Global() is never touched in that case, so
/// serial-only processes stay worker-thread-free).  Unlike ParallelFor
/// the body receives no slot id: the batch engine attributes every count
/// to element-indexed per-query state, so slot-indexed scratch never
/// enters the picture and results cannot depend on which thread ran a
/// chunk.  The engine parallelizes over *query* chunks and keeps the
/// block loop inside each chunk -- a blocks x queries tiling where each
/// worker streams the pivot table once for its whole query subset --
/// because the MkNNQ shrinking-radius chain makes a query's blocks
/// sequentially dependent while distinct queries stay independent.
/// Pool contention degrades gracefully: the region is attempted with
/// TryDispatch, and when another region holds the pool (e.g. several
/// reader threads batch-querying one published snapshot) the chunk loop
/// runs inline on the calling thread instead of queueing -- legal
/// because results are partitioning-invariant by the body contract.
template <typename Body>
void ParallelQueryChunks(bool parallel, size_t n, Body&& body) {
  if (n == 0) return;
  if (parallel && n > 1) {
    ThreadPool& pool = ThreadPool::Global();
    const unsigned slots =
        static_cast<unsigned>(std::min<size_t>(pool.size(), n));
    if (slots > 1) {
      const std::function<void(unsigned)> task = [&](unsigned s) {
        const size_t begin = n * s / slots;
        const size_t end = n * (s + 1) / slots;
        if (begin < end) body(begin, end);
      };
      if (pool.TryDispatch(slots, task)) return;
    }
  }
  body(size_t{0}, n);
}

}  // namespace pmi

#endif  // PMI_CORE_THREAD_POOL_H_
