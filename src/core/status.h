// Recoverable error handling for the public API layer.
//
// The inner survey harness (MetricIndex, the registry, the benchmarks)
// keeps its assert/abort contract: experiment code wants to die loudly on
// programmer error.  The facade layer (src/api/) instead returns
// pmi::Status / pmi::StatusOr<T> so a service embedding the library can
// reject bad input, surface corrupt snapshots, and keep running.  The
// shapes follow the abseil conventions (code + message, MoveValueOrDie
// via value()), implemented standalone so the library stays
// dependency-free.

#ifndef PMI_CORE_STATUS_H_
#define PMI_CORE_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>

namespace pmi {

/// Canonical error space (subset of the abseil/gRPC codes the library
/// actually produces).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 3,    // caller passed bad options / queries
  kDeadlineExceeded = 4,   // request deadline elapsed before completion
  kNotFound = 5,           // unknown index or metric name, missing file
  kResourceExhausted = 8,  // admission queue full (backpressure)
  kFailedPrecondition = 9, // operation invalid in the current state
  kUnimplemented = 12,     // e.g. an index without snapshot support
  kInternal = 13,          // invariant violation while loading
  kUnavailable = 14,       // I/O failure (full disk, failed fsync, ...)
  kDataLoss = 15,          // corrupt or truncated snapshot / WAL
};

/// Human-readable code name, e.g. "INVALID_ARGUMENT".
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

/// Success-or-error result of an operation without a payload.
class Status {
 public:
  /// Default is success.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "INVALID_ARGUMENT: page_size must be nonzero" (or "OK").
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DataLossError(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}

/// A Status or, on success, a value of type T.  T must be movable; the
/// value is accessed with value()/operator* only when ok().
template <typename T>
class StatusOr {
 public:
  /// Implicit from an error Status (must not be OK).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK without a value");
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from OK without a value");
    }
  }

  /// Implicit from a value.
  StatusOr(T value) : has_value_(true) {  // NOLINT
    new (&storage_) T(std::move(value));
  }

  StatusOr(StatusOr&& other) noexcept
      : status_(std::move(other.status_)), has_value_(other.has_value_) {
    if (has_value_) new (&storage_) T(std::move(*other.ptr()));
  }

  StatusOr& operator=(StatusOr&& other) noexcept {
    if (this == &other) return *this;
    Destroy();
    status_ = std::move(other.status_);
    has_value_ = other.has_value_;
    if (has_value_) new (&storage_) T(std::move(*other.ptr()));
    return *this;
  }

  StatusOr(const StatusOr&) = delete;
  StatusOr& operator=(const StatusOr&) = delete;

  ~StatusOr() { Destroy(); }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  T& value() & {
    assert(has_value_);
    return *ptr();
  }
  const T& value() const& {
    assert(has_value_);
    return *ptr();
  }
  T&& value() && {
    assert(has_value_);
    return std::move(*ptr());
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  T* ptr() { return std::launder(reinterpret_cast<T*>(&storage_)); }
  const T* ptr() const {
    return std::launder(reinterpret_cast<const T*>(&storage_));
  }
  void Destroy() {
    if (has_value_) {
      ptr()->~T();
      has_value_ = false;
    }
  }

  Status status_;
  bool has_value_ = false;
  alignas(T) unsigned char storage_[sizeof(T)];
};

/// Fail-stop for the inner harness layer, which keeps the die-loudly
/// contract (see file comment): aborts with the status message when not
/// OK, in every build mode.  Facade code never calls this -- it
/// propagates.
inline void CheckOk(const Status& status, const char* context) {
  if (status.ok()) return;
  std::fprintf(stderr, "pmi fatal: %s: %s\n", context,
               status.ToString().c_str());
  std::abort();
}

/// Propagates a non-OK Status out of the enclosing function.
#define PMI_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::pmi::Status pmi_status_ = (expr);        \
    if (!pmi_status_.ok()) return pmi_status_; \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors; on success the
/// value is moved into `lhs` (a declaration or an assignable lvalue).
#define PMI_ASSIGN_OR_RETURN(lhs, expr)                    \
  PMI_ASSIGN_OR_RETURN_IMPL_(                              \
      PMI_STATUS_CONCAT_(pmi_statusor_, __LINE__), lhs, expr)
#define PMI_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr)         \
  auto var = (expr);                                       \
  if (!var.ok()) return var.status();                      \
  lhs = std::move(var).value()
#define PMI_STATUS_CONCAT_(a, b) PMI_STATUS_CONCAT_2_(a, b)
#define PMI_STATUS_CONCAT_2_(a, b) a##b

}  // namespace pmi

#endif  // PMI_CORE_STATUS_H_
