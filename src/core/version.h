// Epoch-versioned publication of immutable table snapshots.
//
// The concurrent read/write core of the database facade: the single
// writer builds each new state as an immutable TableVersion (sharing
// unchanged 256-row pivot-table blocks with its predecessor via
// PivotTable's copy-on-write storage) and publishes it through one
// atomic pointer; readers pin a version through an EpochDomain slot and
// run range / kNN / batch queries against it lock-free, while retired
// versions wait in the domain's limbo list until the last reader that
// could hold them unpins.
//
// Ownership: VersionedTable keeps the current version alive through a
// shared_ptr (`owner_`, guarded by a tiny mutex that only Publish and
// the slot-exhausted fallback path touch); every superseded version
// moves into the epoch domain's limbo.  The destructor drains the
// domain, so a VersionedTable never dies while a reader is pinned.

#ifndef PMI_CORE_VERSION_H_
#define PMI_CORE_VERSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/epoch.h"
#include "src/core/index.h"
#include "src/core/metric.h"
#include "src/core/pivots.h"

namespace pmi {

/// One immutable published state: the index snapshot plus everything it
/// references and the liveness/sequence bookkeeping a reader needs to
/// interpret results.  Never mutated after publication.
struct TableVersion {
  std::shared_ptr<const Dataset> data;
  std::shared_ptr<const Metric> metric;
  std::shared_ptr<const PivotSet> pivots;
  std::shared_ptr<const MetricIndex> index;
  std::vector<uint8_t> live;  // liveness bitmap, one byte per object id
  uint64_t sequence = 0;      // WAL sequence this version reflects
};

/// Single-writer / many-reader version cell.  Publish() is externally
/// serialized (the facade's writer lock); Pin()/Acquire() are safe from
/// any number of concurrent reader threads.
class VersionedTable {
 public:
  /// RAII pin over one version.  Move-only; the pinned version stays
  /// valid exactly as long as the pin lives.  Obtained via Pin() --
  /// epoch-slot-backed on the fast path, refcount-backed when the
  /// domain's slots are exhausted (same lifetime contract either way).
  class ReadPin {
   public:
    ReadPin() = default;
    ReadPin(ReadPin&& o) noexcept
        : owner_(std::exchange(o.owner_, nullptr)),
          slot_(std::exchange(o.slot_, EpochDomain::kNoSlot)),
          version_(std::exchange(o.version_, nullptr)),
          fallback_(std::move(o.fallback_)) {}
    ReadPin& operator=(ReadPin&& o) noexcept {
      if (this != &o) {
        Release();
        owner_ = std::exchange(o.owner_, nullptr);
        slot_ = std::exchange(o.slot_, EpochDomain::kNoSlot);
        version_ = std::exchange(o.version_, nullptr);
        fallback_ = std::move(o.fallback_);
      }
      return *this;
    }
    ~ReadPin() { Release(); }

    ReadPin(const ReadPin&) = delete;
    ReadPin& operator=(const ReadPin&) = delete;

    const TableVersion* get() const { return version_; }
    const TableVersion& operator*() const { return *version_; }
    const TableVersion* operator->() const { return version_; }
    explicit operator bool() const { return version_ != nullptr; }

    /// True when this pin went through the shared_ptr fallback rather
    /// than an epoch slot (test introspection).
    bool refcounted() const { return fallback_ != nullptr; }

   private:
    friend class VersionedTable;
    void Release() {
      if (slot_ != EpochDomain::kNoSlot) {
        owner_->domain_.Unpin(slot_);
        slot_ = EpochDomain::kNoSlot;
      }
      owner_ = nullptr;
      version_ = nullptr;
      fallback_.reset();
    }

    const VersionedTable* owner_ = nullptr;
    int slot_ = EpochDomain::kNoSlot;
    const TableVersion* version_ = nullptr;
    std::shared_ptr<const TableVersion> fallback_;
  };

  explicit VersionedTable(std::shared_ptr<const TableVersion> initial);

  /// Drains the epoch domain: blocks until every ReadPin is released.
  /// Out of line on purpose -- a defaulted destructor would destroy
  /// members in reverse declaration order, releasing owner_ (the only
  /// shared_ptr keeping the current version alive) before domain_'s own
  /// destructor drains, and an epoch-pinned reader holding a raw
  /// TableVersion* would dereference freed memory.
  ~VersionedTable();

  VersionedTable(const VersionedTable&) = delete;
  VersionedTable& operator=(const VersionedTable&) = delete;

  /// Pins the current version for reading.  Lock-free on the fast path
  /// (one CAS on a reader-private cache line); falls back to a
  /// mutex-guarded shared_ptr copy when all epoch slots are busy.
  ReadPin Pin() const;

  /// Refcounted acquire of the current version -- for long holds
  /// (checkpoint serialization) that should not occupy an epoch slot.
  std::shared_ptr<const TableVersion> Acquire() const;

  /// Atomically replaces the current version and retires the old one.
  /// Single writer only (externally serialized).
  void Publish(std::shared_ptr<const TableVersion> next);

  /// Sequence number of the currently published version.
  uint64_t sequence() const {
    return current_.load(std::memory_order_seq_cst)->sequence;
  }

  /// Retired-but-unreclaimed version count (test introspection).
  size_t limbo_size() const { return domain_.limbo_size(); }

 private:
  mutable EpochDomain domain_;
  mutable std::mutex owner_mu_;
  std::shared_ptr<const TableVersion> owner_;  // keeps current_ alive
  std::atomic<const TableVersion*> current_;
};

}  // namespace pmi

#endif  // PMI_CORE_VERSION_H_
