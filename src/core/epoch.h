// Epoch-based reclamation for read-mostly shared structures.
//
// The concurrency layer publishes immutable versions through a single
// atomic pointer; readers must be able to pin the version they dereference
// without writing any shared cache line a writer contends on -- a
// shared_ptr refcount would turn every query into an atomic RMW on one
// hot counter.  EpochDomain gives readers a wait-free-in-practice pin:
// claim one of a fixed array of padded slots, stamp it with the current
// global epoch, and the writer's reclamation simply refuses to free any
// retired object whose retire epoch is still covered by a pinned slot.
//
// Protocol (all epoch operations are seq_cst; the proof below leans on
// the single total order S of C++ seq_cst operations):
//
//   reader Pin:    e = global; CAS(slot: kIdle -> e)       (claim+publish)
//                  while ((now = global) != e)             (re-check)
//                    { e = now; slot = e; }
//                  ... then load the published pointer ...
//   writer Retire: limbo.push({global, obj}); global += 1; reclaim
//   reclaim:       free limbo entries with epoch < min over pinned slots
//
// Why the re-check loop makes this safe: suppose the writer retires an
// object at epoch g (publishing its replacement pointer *before* the
// `global += 1`).  A reader whose final slot value is <= g keeps every
// limbo entry with epoch >= its pin alive -- the entry tagged g is
// protected.  A reader whose final slot value is > g observed
// `global == g + 1` in S *after* the writer's increment, which in turn
// follows the replacement-pointer store; its subsequent pointer load
// therefore returns the replacement, never the retired object.  Either
// way no pinned reader can dereference freed memory.
//
// All 64 slots busy is not an error: Pin returns kNoSlot and the caller
// falls back to a refcounted acquire (see VersionedTable::Pin).

#ifndef PMI_CORE_EPOCH_H_
#define PMI_CORE_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace pmi {

/// One reclamation domain: a bounded pin-slot array plus the limbo list
/// of retired objects.  Readers use Pin/Unpin (lock-free, one CAS on an
/// exclusively-owned cache line); the writer side (Retire) and the
/// destructor take a small mutex -- writers are serialized by the caller
/// anyway (MetricDB's writer lock), the mutex just keeps the domain
/// internally coherent under misuse.
class EpochDomain {
 public:
  static constexpr int kSlots = 64;
  static constexpr int kNoSlot = -1;

  EpochDomain() = default;
  ~EpochDomain() { DrainAndReclaimAll(); }

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Claims a pin slot stamped with the current global epoch.  Returns
  /// the slot index, or kNoSlot when all slots are busy (caller falls
  /// back to refcounting).  The caller may dereference epoch-protected
  /// pointers only between a successful Pin and the matching Unpin.
  int Pin();

  /// Releases a slot returned by Pin.
  void Unpin(int slot);

  /// Hands `obj` to the domain for deferred destruction: it is released
  /// once every slot pinned at or before the current epoch has unpinned.
  /// Reclaims eagerly -- a quiescent domain frees `obj` immediately.
  void Retire(std::shared_ptr<const void> obj);

  /// Blocks (yield-spinning) until every pin is released and every
  /// retired object has been freed.  Called by the destructor, and by
  /// owners that must not outlive their readers.
  void DrainAndReclaimAll();

  /// Retired-but-not-yet-freed object count (test introspection).
  size_t limbo_size() const;

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  static constexpr uint64_t kIdle = 0;

  /// Frees limbo entries no pinned slot still covers.  Caller holds
  /// limbo_mu_.
  void ReclaimLocked();

  /// True when some slot is pinned (epoch != kIdle).
  bool AnyPinned() const;

  std::atomic<uint64_t> global_{1};  // kIdle is reserved for free slots
  Slot slots_[kSlots];
  mutable std::mutex limbo_mu_;
  std::vector<std::pair<uint64_t, std::shared_ptr<const void>>> limbo_;
};

}  // namespace pmi

#endif  // PMI_CORE_EPOCH_H_
