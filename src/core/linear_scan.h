// Brute-force sequential scan.
//
// Not part of the survey; serves as (a) the correctness oracle for every
// index conformance test and (b) the "no index" baseline in examples.

#ifndef PMI_CORE_LINEAR_SCAN_H_
#define PMI_CORE_LINEAR_SCAN_H_

#include <vector>

#include "src/core/index.h"

namespace pmi {

/// Exhaustive scan: every query computes d(q, o) for every live object.
class LinearScan final : public MetricIndex {
 public:
  explicit LinearScan(IndexOptions options = {}) : MetricIndex(options) {}

  std::string name() const override { return "LinearScan"; }
  bool disk_based() const override { return false; }
  // Audited: the query path uses only local state + dist() (counters
  // are redirected per thread by the batch entry points).
  bool concurrent_queries() const override { return true; }
  std::unique_ptr<MetricIndex> Clone() const override;
  size_t memory_bytes() const override { return live_.capacity() / 8; }

 protected:
  void BuildImpl() override;
  void RangeImpl(const ObjectView& q, double r,
                 std::vector<ObjectId>* out) const override;
  void KnnImpl(const ObjectView& q, size_t k,
               std::vector<Neighbor>* out) const override;
  void InsertImpl(ObjectId id) override;
  void RemoveImpl(ObjectId id) override;
  Status SaveImpl(ByteSink* out) const override;
  Status LoadImpl(ByteSource* in) override;

 private:
  std::vector<bool> live_;
};

}  // namespace pmi

#endif  // PMI_CORE_LINEAR_SCAN_H_
