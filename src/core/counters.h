// Performance counters shared by all index structures.
//
// Every cost the paper reports -- the number of distance computations
// ("compdists"), the number of page accesses ("PA"), and CPU time -- is
// accounted through this module so that all indexes are measured on an
// equal footing (Section 6.1 of the paper).

#ifndef PMI_CORE_COUNTERS_H_
#define PMI_CORE_COUNTERS_H_

#include <chrono>
#include <cstdint>

namespace pmi {

/// Monotonic counters attributed to one index instance.
///
/// Page reads and writes are counted by the storage layer (a buffer-pool
/// hit costs nothing); distance computations are counted by
/// DistanceComputer.  Snapshots of this struct bracket a build, query, or
/// update to produce the per-operation costs reported by the benchmarks.
struct PerfCounters {
  uint64_t dist_computations = 0;
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;

  void Reset() { *this = PerfCounters{}; }

  /// Total page accesses, the paper's "PA" metric.
  uint64_t page_accesses() const { return page_reads + page_writes; }

  PerfCounters operator-(const PerfCounters& rhs) const {
    PerfCounters d;
    d.dist_computations = dist_computations - rhs.dist_computations;
    d.page_reads = page_reads - rhs.page_reads;
    d.page_writes = page_writes - rhs.page_writes;
    return d;
  }
};

/// Wall-clock stopwatch used for the CPU-time measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Restart() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pmi

#endif  // PMI_CORE_COUNTERS_H_
