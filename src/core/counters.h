// Performance counters shared by all index structures.
//
// Every cost the paper reports -- the number of distance computations
// ("compdists"), the number of page accesses ("PA"), and CPU time -- is
// accounted through this module so that all indexes are measured on an
// equal footing (Section 6.1 of the paper).

#ifndef PMI_CORE_COUNTERS_H_
#define PMI_CORE_COUNTERS_H_

#include <chrono>
#include <cstdint>
#include <vector>

namespace pmi {

/// Monotonic counters attributed to one index instance.
///
/// Page reads and writes are counted by the storage layer (a buffer-pool
/// hit costs nothing); distance computations are counted by
/// DistanceComputer.  Snapshots of this struct bracket a build, query, or
/// update to produce the per-operation costs reported by the benchmarks.
///
/// Two page-access levels are kept side by side.  `page_reads` /
/// `page_writes` are LOGICAL accesses: what the paper's fixed-size LRU
/// simulation (Section 6.1) would issue, independent of any real cache
/// sitting underneath -- this is the comparable "PA" quantity every
/// conformance test pins.  `pool_hits` / `physical_reads` /
/// `physical_writes` are PHYSICAL accesses through the shared BufferPool
/// (src/storage/buffer_pool.h): what actually crossed the backing-store
/// seam after the pool absorbed repeats.  A warm pool drives
/// pa_physical() toward zero while pa() is unchanged.
struct PerfCounters {
  uint64_t dist_computations = 0;
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pool_hits = 0;
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;

  void Reset() { *this = PerfCounters{}; }

  /// Total logical page accesses, the paper's "PA" metric.
  uint64_t page_accesses() const { return page_reads + page_writes; }

  /// Accesses that reached the backing store through the buffer pool.
  uint64_t pa_physical() const { return physical_reads + physical_writes; }

  PerfCounters operator-(const PerfCounters& rhs) const {
    PerfCounters d;
    d.dist_computations = dist_computations - rhs.dist_computations;
    d.page_reads = page_reads - rhs.page_reads;
    d.page_writes = page_writes - rhs.page_writes;
    d.pool_hits = pool_hits - rhs.pool_hits;
    d.physical_reads = physical_reads - rhs.physical_reads;
    d.physical_writes = physical_writes - rhs.physical_writes;
    return d;
  }

  PerfCounters& operator+=(const PerfCounters& rhs) {
    dist_computations += rhs.dist_computations;
    page_reads += rhs.page_reads;
    page_writes += rhs.page_writes;
    pool_hits += rhs.pool_hits;
    physical_reads += rhs.physical_reads;
    physical_writes += rhs.physical_writes;
    return *this;
  }
};

/// RAII redirection of this thread's counter sink, the heart of the
/// thread-safe cost accounting (see README "Execution model").
///
/// Counting must stay a plain non-atomic increment on the hot path, yet
/// parallel build and batch-query regions have many threads counting on
/// behalf of one index.  Each worker task opens a CounterScope over its
/// own PerfCounters shard; MetricIndex::dist() consults Active() so every
/// DistanceComputer created inside the task counts into the shard.  At
/// the task boundary (the ParallelFor barrier) the shard deltas are
/// folded into the index's counters with FoldCounters -- uint64 addition
/// is exact and order-free, so totals are identical at any thread count.
class CounterScope {
 public:
  explicit CounterScope(PerfCounters* shard) : prev_(current_) {
    current_ = shard;
  }
  ~CounterScope() { current_ = prev_; }

  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

  /// The shard of the innermost open scope on this thread, or `fallback`
  /// when none is open (the serial path).
  static PerfCounters* Active(PerfCounters* fallback) {
    return current_ != nullptr ? current_ : fallback;
  }

 private:
  PerfCounters* prev_;
  static inline thread_local PerfCounters* current_ = nullptr;
};

/// Cache-line-isolated per-slot counter shard for parallel regions.
/// Adjacent PerfCounters in a plain vector would share 64-byte lines,
/// and the hot-path increment (one read-modify-write per distance
/// computation) would ping-pong those lines between cores -- the
/// alignment keeps each slot's counting genuinely private.
struct alignas(64) CounterShard {
  PerfCounters counters;
};

/// Folds per-slot counter shards into `total` -- the task-boundary
/// aggregation of the parallel execution engine.
inline void FoldCounters(const std::vector<CounterShard>& shards,
                         PerfCounters* total) {
  for (const CounterShard& s : shards) *total += s.counters;
}

/// Wall-clock stopwatch used for the CPU-time measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Restart() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pmi

#endif  // PMI_CORE_COUNTERS_H_
