#include "src/core/pivot_table.h"

#include <cmath>

namespace pmi {

// Scan-side query preparation.  The f32 casts are made once per scan;
// the two-sided (wide/narrow) radii depend on the (possibly shrinking)
// radius, so UpdateFilterRadius refreshes them at block entry and
// short-circuits when the radius has not moved -- the common case, since
// a kNN heap tightens only when a closer neighbor is found.

void PivotTable::PrepareFilterQuery(const double* phi_q,
                                    FilterQuery* fq) const {
  fq->ops = &SimdDispatch();
  fq->indirect = false;
  // NaN compares unequal to every radius, so the first UpdateFilterRadius
  // after a (re-)prepare always recomputes rw/rn -- a reused FilterQuery
  // (the batch tiling loop) must never keep radii derived from the
  // previous occupant's query values.
  fq->r_cached = std::numeric_limits<double>::quiet_NaN();
  fq->qd = phi_q;
  fq->qf.resize(width_);
  fq->rw.resize(width_);
  fq->rn.resize(width_);
  for (uint32_t p = 0; p < width_; ++p) fq->qf[p] = FilterValue(phi_q[p]);
}

void PivotTable::PrepareFilterQueryIndirect(const double* d_qp,
                                            uint32_t pool_size,
                                            FilterQuery* fq) const {
  fq->ops = &SimdDispatch();
  fq->indirect = true;
  fq->r_cached = std::numeric_limits<double>::quiet_NaN();  // see above
  fq->qd = d_qp;
  fq->qf.resize(pool_size);
  fq->rw.resize(1);
  fq->rn.resize(1);
  fq->qmax_abs = 0;
  for (uint32_t p = 0; p < pool_size; ++p) {
    fq->qf[p] = FilterValue(d_qp[p]);
    fq->qmax_abs = std::max(fq->qmax_abs, std::fabs(d_qp[p]));
  }
}

void PivotTable::UpdateFilterRadius(double r, FilterQuery* fq) {
  if (r == fq->r_cached) return;
  fq->r_cached = r;
  if (fq->indirect) {
    // One radius pair covers every row: the per-row query value is
    // bounded by the largest pool distance.
    if (!fq->rw.empty()) {
      fq->rw[0] = ConservativeFilterRadius(fq->qmax_abs, r);
      fq->rn[0] = CertificateFilterRadius(fq->qmax_abs, r);
    }
    return;
  }
  for (size_t p = 0; p < fq->rw.size(); ++p) {
    const double qa = std::fabs(fq->qd[p]);
    fq->rw[p] = ConservativeFilterRadius(qa, r);
    fq->rn[p] = CertificateFilterRadius(qa, r);
  }
}

namespace {

// Dense/sparse strategy switch: while enough of the block survives
// (per-level dense_divisor), narrowing by contiguous lane-parallel f32
// mask-ANDs beats walking the survivor list (which pays a gather per
// survivor); below that the short list is cheaper to refine directly
// against the double columns -- a sparse access pulls a whole cache
// line either way, so f32 saves nothing there.  The threshold only
// picks the evaluation strategy: both paths make the exact
// double-predicate decision per row, so the output is identical either
// way.
inline bool DenseEnough(unsigned divisor, size_t n, size_t count) {
  return divisor != 0 && n * divisor >= count;
}

}  // namespace

size_t PivotTable::ContinueCascade(const FilterQuery& fq, size_t base,
                                   size_t count, size_t n, uint8_t* keep,
                                   uint32_t* surv) const {
  if (n == 0) return 0;
  const SimdOps& ops = *fq.ops;
  const TableBlock& blk = *blocks_[base / kScanBlock];
  ExactSlot s;
  s.rd = fq.r_cached;
  uint32_t p = 1;
  for (; p < width_ && DenseEnough(ops.dense_divisor, n, count); ++p) {
    s.colf = ColF(blk, p);
    s.cold = ColD(blk, p);
    s.qf = fq.qf[p];
    s.rw = fq.rw[p];
    s.rn = fq.rn[p];
    s.qd = fq.qd[p];
    n = ops.mask_and(s, count, keep);
    if (n == 0) return 0;
  }
  n = ops.compact(keep, count, surv);
  for (; p < width_ && n > 0; ++p) {
    n = ops.refine_f64(ColD(blk, p), fq.qd[p], fq.r_cached, surv, n);
  }
  return n;
}

size_t PivotTable::ContinueCascadeIndirect(const FilterQuery& fq,
                                           size_t base, size_t count,
                                           size_t n, uint8_t* keep,
                                           uint32_t* surv) const {
  if (n == 0) return 0;
  const SimdOps& ops = *fq.ops;
  const TableBlock& blk = *blocks_[base / kScanBlock];
  ExactSlotGather s;
  s.qf_pool = fq.qf.data();
  s.qd_pool = fq.qd;
  s.rw = fq.rw[0];
  s.rn = fq.rn[0];
  s.rd = fq.r_cached;
  uint32_t p = 1;
  for (; p < width_ && DenseEnough(ops.dense_divisor_gather, n, count); ++p) {
    s.colf = ColF(blk, p);
    s.cold = ColD(blk, p);
    s.idx = ColI(blk, p);
    n = ops.mask_and_gather(s, count, keep);
    if (n == 0) return 0;
  }
  n = ops.compact(keep, count, surv);
  for (; p < width_ && n > 0; ++p) {
    n = ops.refine_f64_gather(ColD(blk, p), ColI(blk, p), fq.qd,
                              fq.r_cached, surv, n);
  }
  return n;
}

size_t PivotTable::FilterBlock(const FilterQuery& fq, size_t base,
                               size_t count, uint32_t* surv) const {
  if (width_ == 0) {  // no pivots: nothing prunes
    for (size_t i = 0; i < count; ++i) surv[i] = static_cast<uint32_t>(i);
    return count;
  }
  const SimdOps& ops = *fq.ops;
  const TableBlock& blk = *blocks_[base / kScanBlock];
  uint8_t keep[kScanBlock];
  ExactSlot s;
  s.colf = ColF(blk, 0);
  s.cold = ColD(blk, 0);
  s.qf = fq.qf[0];
  s.rw = fq.rw[0];
  s.rn = fq.rn[0];
  s.qd = fq.qd[0];
  s.rd = fq.r_cached;
  const size_t n = ops.mask_sweep(s, count, keep);
  return ContinueCascade(fq, base, count, n, keep, surv);
}

size_t PivotTable::FilterBlockIndirect(const FilterQuery& fq, size_t base,
                                       size_t count, uint32_t* surv) const {
  if (width_ == 0) {
    for (size_t i = 0; i < count; ++i) surv[i] = static_cast<uint32_t>(i);
    return count;
  }
  const SimdOps& ops = *fq.ops;
  const TableBlock& blk = *blocks_[base / kScanBlock];
  uint8_t keep[kScanBlock];
  ExactSlotGather s;
  s.colf = ColF(blk, 0);
  s.cold = ColD(blk, 0);
  s.idx = ColI(blk, 0);
  s.qf_pool = fq.qf.data();
  s.qd_pool = fq.qd;
  s.rw = fq.rw[0];
  s.rn = fq.rn[0];
  s.rd = fq.r_cached;
  const size_t n = ops.mask_sweep_gather(s, count, keep);
  return ContinueCascadeIndirect(fq, base, count, n, keep, surv);
}

void PivotTable::FilterBlockMulti(const FilterQuery* fqs, size_t nq,
                                  size_t base, size_t count, uint8_t* keep,
                                  uint32_t* surv, size_t* counts) const {
  const size_t sstride = kScanBlock + kSurvWriteSlack;
  if (width_ == 0) {  // no pivots: nothing prunes, for any query
    for (size_t qi = 0; qi < nq; ++qi) {
      uint32_t* sq = surv + qi * sstride;
      for (size_t i = 0; i < count; ++i) sq[i] = static_cast<uint32_t>(i);
      counts[qi] = count;
    }
    return;
  }
  const SimdOps& ops = *fqs[0].ops;
  const TableBlock& blk = *blocks_[base / kScanBlock];
  // Stage 0: the pivot-0 sweep for every query, one kMultiQueryTile
  // group at a time -- the slab-load amortization the block-major
  // engine exists for.
  ExactSlot slots[kMultiQueryTile];
  for (size_t t = 0; t < nq; t += kMultiQueryTile) {
    const size_t m = std::min(kMultiQueryTile, nq - t);
    for (size_t j = 0; j < m; ++j) {
      const FilterQuery& fq = fqs[t + j];
      ExactSlot& s = slots[j];
      s.colf = ColF(blk, 0);
      s.cold = ColD(blk, 0);
      s.qf = fq.qf[0];
      s.rw = fq.rw[0];
      s.rn = fq.rn[0];
      s.qd = fq.qd[0];
      s.rd = fq.r_cached;
    }
    ops.mask_sweep_multi(slots, m, count, keep + t * size_t(kScanBlock),
                         kScanBlock, counts + t);
  }
  // Per-query continuation: the exact FilterBlock cascade, over column
  // slabs the stage-0 pass just made block-resident.
  for (size_t qi = 0; qi < nq; ++qi) {
    counts[qi] =
        ContinueCascade(fqs[qi], base, count, counts[qi],
                        keep + qi * size_t(kScanBlock), surv + qi * sstride);
  }
}

void PivotTable::FilterBlockIndirectMulti(const FilterQuery* fqs, size_t nq,
                                          size_t base, size_t count,
                                          uint8_t* keep, uint32_t* surv,
                                          size_t* counts) const {
  const size_t sstride = kScanBlock + kSurvWriteSlack;
  if (width_ == 0) {
    for (size_t qi = 0; qi < nq; ++qi) {
      uint32_t* sq = surv + qi * sstride;
      for (size_t i = 0; i < count; ++i) sq[i] = static_cast<uint32_t>(i);
      counts[qi] = count;
    }
    return;
  }
  const SimdOps& ops = *fqs[0].ops;
  const TableBlock& blk = *blocks_[base / kScanBlock];
  ExactSlotGather slots[kMultiQueryTile];
  for (size_t t = 0; t < nq; t += kMultiQueryTile) {
    const size_t m = std::min(kMultiQueryTile, nq - t);
    for (size_t j = 0; j < m; ++j) {
      const FilterQuery& fq = fqs[t + j];
      ExactSlotGather& s = slots[j];
      s.colf = ColF(blk, 0);
      s.cold = ColD(blk, 0);
      s.idx = ColI(blk, 0);
      s.qf_pool = fq.qf.data();
      s.qd_pool = fq.qd;
      s.rw = fq.rw[0];
      s.rn = fq.rn[0];
      s.rd = fq.r_cached;
    }
    ops.mask_sweep_gather_multi(slots, m, count,
                                keep + t * size_t(kScanBlock), kScanBlock,
                                counts + t);
  }
  for (size_t qi = 0; qi < nq; ++qi) {
    counts[qi] = ContinueCascadeIndirect(fqs[qi], base, count, counts[qi],
                                         keep + qi * size_t(kScanBlock),
                                         surv + qi * sstride);
  }
}

void PivotTable::RangeScan(const double* phi_q, double r,
                           std::vector<uint32_t>* survivors) const {
  uint32_t surv[kScanBlock + kSurvWriteSlack];
  FilterQuery fq;
  PrepareFilterQuery(phi_q, &fq);
  UpdateFilterRadius(r, &fq);
  for (size_t base = 0; base < rows_; base += kScanBlock) {
    const size_t count = std::min<size_t>(kScanBlock, rows_ - base);
    const size_t n = FilterBlock(fq, base, count, surv);
    for (size_t j = 0; j < n; ++j) {
      survivors->push_back(static_cast<uint32_t>(base) + surv[j]);
    }
  }
}

void PivotTable::RangeScanIndirect(const double* d_qp, uint32_t pool_size,
                                   double r,
                                   std::vector<uint32_t>* survivors) const {
  uint32_t surv[kScanBlock + kSurvWriteSlack];
  FilterQuery fq;
  PrepareFilterQueryIndirect(d_qp, pool_size, &fq);
  UpdateFilterRadius(r, &fq);
  for (size_t base = 0; base < rows_; base += kScanBlock) {
    const size_t count = std::min<size_t>(kScanBlock, rows_ - base);
    const size_t n = FilterBlockIndirect(fq, base, count, surv);
    for (size_t j = 0; j < n; ++j) {
      survivors->push_back(static_cast<uint32_t>(base) + surv[j]);
    }
  }
}

}  // namespace pmi
