#include "src/core/pivot_table.h"

#include <cmath>

namespace pmi {
namespace {

// Pivot-slot-0 sweep: one contiguous column slab -> byte mask.  Branchless
// compare-and-store over restrict-qualified flat arrays; GCC/Clang turn
// this into packed SIMD compares at -O2.
inline void MaskSweep(const double* __restrict col, double q, double r,
                      size_t count, uint8_t* __restrict keep) {
  for (size_t i = 0; i < count; ++i) {
    keep[i] = std::fabs(col[i] - q) <= r;
  }
}

// Mask -> survivor index list (branch-free compaction).
inline size_t Compact(const uint8_t* __restrict keep, size_t count,
                      uint32_t* __restrict surv) {
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    surv[n] = static_cast<uint32_t>(i);
    n += keep[i];
  }
  return n;
}

// Later pivot slots only touch the current survivors: a short gather loop
// over that slot's contiguous column, compacting in place.
inline size_t Refine(const double* __restrict col, double q, double r,
                     uint32_t* __restrict surv, size_t n) {
  size_t m = 0;
  for (size_t j = 0; j < n; ++j) {
    const uint32_t i = surv[j];
    surv[m] = i;
    m += std::fabs(col[i] - q) <= r;
  }
  return m;
}

}  // namespace

size_t PivotTable::FilterBlock(const double* phi_q, double r, size_t base,
                               size_t count, uint32_t* surv) const {
  if (width_ == 0) {  // no pivots: nothing prunes
    for (size_t i = 0; i < count; ++i) surv[i] = static_cast<uint32_t>(i);
    return count;
  }
  uint8_t keep[kScanBlock];
  MaskSweep(cols_[0].data() + base, phi_q[0], r, count, keep);
  size_t n = Compact(keep, count, surv);
  for (uint32_t p = 1; p < width_ && n > 0; ++p) {
    n = Refine(cols_[p].data() + base, phi_q[p], r, surv, n);
  }
  return n;
}

size_t PivotTable::FilterBlockIndirect(const double* d_qp, double r,
                                       size_t base, size_t count,
                                       uint32_t* surv) const {
  if (width_ == 0) {
    for (size_t i = 0; i < count; ++i) surv[i] = static_cast<uint32_t>(i);
    return count;
  }
  // Slot 0: gather the per-row query-pivot distance, then the same mask +
  // compact dance as the shared form.  The gather keeps this sweep off the
  // pure-SIMD path, but both indexed arrays are contiguous column slabs,
  // so it still runs at cache-line speed.
  uint8_t keep[kScanBlock];
  {
    const double* __restrict col = cols_[0].data() + base;
    const uint32_t* __restrict idx = pidx_cols_[0].data() + base;
    for (size_t i = 0; i < count; ++i) {
      keep[i] = std::fabs(col[i] - d_qp[idx[i]]) <= r;
    }
  }
  size_t n = Compact(keep, count, surv);
  for (uint32_t p = 1; p < width_ && n > 0; ++p) {
    const double* __restrict col = cols_[p].data() + base;
    const uint32_t* __restrict idx = pidx_cols_[p].data() + base;
    size_t m = 0;
    for (size_t j = 0; j < n; ++j) {
      const uint32_t i = surv[j];
      surv[m] = i;
      m += std::fabs(col[i] - d_qp[idx[i]]) <= r;
    }
    n = m;
  }
  return n;
}

void PivotTable::RangeScan(const double* phi_q, double r,
                           std::vector<uint32_t>* survivors) const {
  uint32_t surv[kScanBlock];
  for (size_t base = 0; base < rows_; base += kScanBlock) {
    const size_t count = std::min<size_t>(kScanBlock, rows_ - base);
    const size_t n = FilterBlock(phi_q, r, base, count, surv);
    for (size_t j = 0; j < n; ++j) {
      survivors->push_back(static_cast<uint32_t>(base) + surv[j]);
    }
  }
}

void PivotTable::RangeScanIndirect(const double* d_qp, double r,
                                   std::vector<uint32_t>* survivors) const {
  uint32_t surv[kScanBlock];
  for (size_t base = 0; base < rows_; base += kScanBlock) {
    const size_t count = std::min<size_t>(kScanBlock, rows_ - base);
    const size_t n = FilterBlockIndirect(d_qp, r, base, count, surv);
    for (size_t j = 0; j < n; ++j) {
      survivors->push_back(static_cast<uint32_t>(base) + surv[j]);
    }
  }
}

}  // namespace pmi
